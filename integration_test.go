package repro

import (
	"sync/atomic"
	"testing"

	"repro/internal/cml"
	"repro/internal/core"
	"repro/internal/gcsync"
	"repro/internal/m3"
	"repro/internal/mlheap"
	"repro/internal/proc"
	"repro/internal/sel"
	"repro/internal/signals"
	"repro/internal/syncx"
	"repro/internal/threads"
	"repro/internal/workloads"
)

// Full-stack integration tests: every client layer composed in one
// program, the way the paper's systems actually ran (ML Threads + CML +
// locks + signals over one MP platform).

func TestIntegrationPipelineAcrossLayers(t *testing.T) {
	// sel channels feed a CML dispatcher which resolves m3 futures, all
	// under one scheduler, with syncx coordinating shutdown.
	s := threads.New(proc.New(4), threads.Options{})
	msys := m3.New(s)
	const n = 40
	var delivered atomic.Int64

	s.Run(func() {
		raw := sel.NewChan[int](s) // Fig. 5 channel
		evts := cml.NewChan[int]() // CML channel
		done := syncx.NewWaitGroup(s, 1)

		// Stage 1: producers on the sel channel.
		for i := 1; i <= n; i++ {
			i := i
			s.Fork(func() { raw.Send(i) })
		}

		// Stage 2: bridge thread moves values from sel to CML.
		s.Fork(func() {
			for i := 0; i < n; i++ {
				v := raw.Receive()
				cml.Sync(s, evts.SendEvt(v))
			}
		})

		// Stage 3: an m3 thread consumes CML events and sums.
		summer := m3.Fork(msys, func() int64 {
			var sum int64
			for i := 0; i < n; i++ {
				sum += int64(cml.Sync(s, evts.RecvEvt()))
			}
			return sum
		})

		s.Fork(func() {
			v, err := summer.Join()
			if err != nil {
				t.Errorf("join: %v", err)
			}
			delivered.Store(v)
			done.Done()
		})
		done.Wait()
	})

	if want := int64(n * (n + 1) / 2); delivered.Load() != want {
		t.Fatalf("sum = %d, want %d", delivered.Load(), want)
	}
}

func TestIntegrationWorkloadWithPreemption(t *testing.T) {
	// A real benchmark on the enhanced evaluation scheduler: distributed
	// run queues + preemption checks, verifying the checksum still
	// matches the sequential reference.
	s := threads.New(proc.New(4), threads.Options{Distributed: true})
	var got int64
	s.Run(func() { got = workloads.MM(s, 4, 50, 3) })
	if want := workloads.MMReference(50, 3); got != want {
		t.Fatalf("mm = %d, want %d", got, want)
	}
}

func TestIntegrationSignalDrivenYield(t *testing.T) {
	// §3.4 preemption as the paper did it: a signal handler that yields.
	// The "alarm" is delivered by another thread; compute threads poll at
	// safe points and the handler hands the proc over.
	pl := proc.New(2)
	s := threads.New(pl, threads.Options{})
	tab := signals.New(pl.MaxProcs())
	var yieldsFromHandler atomic.Int64
	tab.Install(signals.SigAlarm, func(sig signals.Sig, procID int) {
		yieldsFromHandler.Add(1)
		s.Yield()
	})

	var order []int
	orderLock := core.NewMutexLock()
	s.Run(func() {
		wg := syncx.NewWaitGroup(s, 2)
		for id := 0; id < 2; id++ {
			id := id
			s.Fork(func() {
				for i := 0; i < 30; i++ {
					tab.Deliver(signals.SigAlarm) // alarm tick
					tab.Poll()                    // safe point: handler may yield
					orderLock.Lock()
					order = append(order, id)
					orderLock.Unlock()
				}
				wg.Done()
			})
		}
		wg.Wait()
	})

	if yieldsFromHandler.Load() == 0 {
		t.Fatal("signal handler never ran")
	}
	// With handler-driven yields on one lock-stepped pair, the two
	// threads must interleave rather than run back-to-back.
	switches := 0
	for i := 1; i < len(order); i++ {
		if order[i] != order[i-1] {
			switches++
		}
	}
	if switches == 0 {
		t.Fatalf("no interleaving despite %d handler yields", yieldsFromHandler.Load())
	}
}

func TestIntegrationHeapUnderThreads(t *testing.T) {
	// One worker thread per proc, each with its own per-proc allocation
	// handle, building ML lists through real collections while the
	// scheduler runs — mlheap + gcsync + threads together.
	const procs = 3
	world := gcsync.NewWorld(mlheap.Config{
		NurseryWords: 4096, SemiWords: 1 << 18, ChunkWords: 128, Procs: procs,
	})
	heads := make([]mlheap.Value, procs)
	for i := range heads {
		world.AddRoot(&heads[i])
	}

	s := threads.New(proc.New(procs), threads.Options{})
	s.Run(func() {
		wg := syncx.NewWaitGroup(s, procs)
		for w := 0; w < procs; w++ {
			w := w
			s.Fork(func() {
				a := world.Attach()
				defer a.Detach()
				for i := 0; i < 3000; i++ {
					heads[w] = a.Record(mlheap.Int(int64(w*10000+i)), heads[w])
				}
				wg.Done()
			})
		}
		wg.Wait()
	})

	if world.GCs() == 0 {
		t.Fatal("no collections exercised")
	}
	h := world.Heap()
	for w := 0; w < procs; w++ {
		v := heads[w]
		for i := 2999; i >= 0; i-- {
			if h.Get(v, 0).Int() != int64(w*10000+i) {
				t.Fatalf("worker %d cell %d corrupted", w, i)
			}
			v = h.Get(v, 1)
		}
	}
}

func TestIntegrationDatumIsolation(t *testing.T) {
	// Thread ids (stored in per-proc datum, §3.2) must stay coherent even
	// while sel communication migrates threads between procs.
	s := threads.New(proc.New(4), threads.Options{})
	bad := atomic.Bool{}
	s.Run(func() {
		ch := sel.NewChan[int](s)
		for i := 0; i < 20; i++ {
			s.Fork(func() {
				me := s.ID()
				ch.Send(me)
				if s.ID() != me {
					bad.Store(true)
				}
			})
			s.Fork(func() {
				me := s.ID()
				_ = ch.Receive()
				if s.ID() != me {
					bad.Store(true)
				}
			})
		}
	})
	if bad.Load() {
		t.Fatal("thread id changed across a channel rendezvous")
	}
}

func TestIntegrationCoreFacade(t *testing.T) {
	// The public core surface (paper §3) used directly, without any
	// client package: callcc + acquire/release + locks.
	pl := core.NewPlatform(2)
	l := core.NewMutexLock()
	shared := 0
	pl.Run(func() {
		core.SetDatum("root")
		done := make(chan struct{})
		core.Callcc(func(k *core.UnitCont) core.Unit {
			if err := pl.Acquire(core.PS{K: k, Datum: "second"}); err != nil {
				t.Errorf("acquire: %v", err)
				core.Throw(k, core.Unit{})
			}
			// Body continues on the root proc.
			l.Lock()
			shared++
			l.Unlock()
			close(done)
			pl.Release()
			return core.Unit{}
		})
		// Resumed on the second proc.
		if core.GetDatum() != "second" {
			t.Errorf("datum = %v, want second", core.GetDatum())
		}
		<-done
		l.Lock()
		shared++
		l.Unlock()
	}, nil)
	if shared != 2 {
		t.Fatalf("shared = %d, want 2", shared)
	}
}
