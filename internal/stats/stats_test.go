package stats

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Fatalf("mean = %f", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Fatalf("min/max = %f/%f", Min(xs), Max(xs))
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty inputs should yield 0")
	}
}

func TestStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if math.Abs(StdDev(xs)-2.0) > 1e-9 {
		t.Fatalf("stddev = %f, want 2", StdDev(xs))
	}
}

func TestSelfRelative(t *testing.T) {
	times := []time.Duration{100, 50, 25}
	s := SelfRelative(times)
	if s[0] != 1 || s[1] != 2 || s[2] != 4 {
		t.Fatalf("speedups = %v", s)
	}
}

func TestQuickMinLeMeanLeMax(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return Min(clean) <= m+1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCountGo(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package x\n\n// two\n")
	write("a_test.go", "package x\n")
	write("note.txt", "hello\n")
	loc, err := CountGo(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Files != 1 || loc.Lines != 3 {
		t.Fatalf("loc = %+v, want 1 file / 3 lines", loc)
	}
}

func TestCountGoTree(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	os.WriteFile(filepath.Join(dir, "a.go"), []byte("package x\n"), 0o644)
	os.WriteFile(filepath.Join(sub, "b.go"), []byte("package y\nvar Z int\n"), 0o644)
	loc, err := CountGoTree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Files != 2 || loc.Lines != 3 {
		t.Fatalf("loc = %+v, want 2 files / 3 lines", loc)
	}
}
