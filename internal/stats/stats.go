// Package stats provides the small numeric and census helpers shared by
// the benchmark harnesses: summary statistics, self-relative speedup
// series, and the line-of-code census behind the portability table.
package stats

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// SelfRelative converts a series of times indexed by proc count (times[0]
// is one proc) into self-relative speedups: speedup[i] = times[0] /
// times[i].
func SelfRelative(times []time.Duration) []float64 {
	out := make([]float64, len(times))
	if len(times) == 0 || times[0] <= 0 {
		return out
	}
	for i, t := range times {
		if t > 0 {
			out[i] = float64(times[0]) / float64(t)
		}
	}
	return out
}

// LoC is a line census of one directory.
type LoC struct {
	Dir   string
	Files int
	Lines int // all lines, including comments and whitespace, as the paper counts
}

// CountGo counts the lines of non-test Go source directly in dir (no
// recursion), the unit of the portability table.
func CountGo(dir string) (LoC, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return LoC{}, err
	}
	out := LoC{Dir: dir}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return LoC{}, err
		}
		out.Files++
		out.Lines += strings.Count(string(data), "\n")
	}
	return out, nil
}

// CountGoTree counts non-test Go lines under root, recursively.
func CountGoTree(root string) (LoC, error) {
	out := LoC{Dir: root}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out.Files++
		out.Lines += strings.Count(string(data), "\n")
		return nil
	})
	return out, err
}
