// Package experiments is the evaluation harness: it runs the simulated
// workloads across proc counts and machine models, computes the paper's
// metrics (self-relative speedup with and without GC time, bus traffic,
// idle and lock-contention fractions), and formats the rows and series the
// paper reports.  DESIGN.md's experiment index (E1–E7) maps each public
// entry point here to a table or figure in §6.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/simwork"
)

// Point is one (program, machine, procs) measurement.
type Point struct {
	Procs       int
	MakespanNS  int64
	Speedup     float64 // self-relative, GC time included (Fig. 6)
	NoGCSpeedup float64 // GC time excluded (§6 ¶5)
	IdleFrac    float64
	LockFrac    float64
	BusMBps     float64
	GCs         int
	GCFrac      float64 // GC wall time / makespan
}

// Series is one curve of Figure 6.
type Series struct {
	Program string
	Machine string
	Points  []Point
}

// Figure6 reproduces the paper's Figure 6 on the named machine model:
// self-relative speedup for allpairs, mst, abisort, simple, mm and seq at
// p = 1..maxP.  Self-relative means T(1)/T(p) for the real benchmarks; for
// the seq control (p independent copies) it is p*T(1)/T(p), so a machine
// with no coupling at all would plot the identity line.
func Figure6(cfgName string, maxP int, seed int64) ([]Series, error) {
	mk, ok := machine.Configs[cfgName]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown machine %q", cfgName)
	}
	cfg := mk()
	if maxP <= 0 || maxP > cfg.Procs {
		maxP = cfg.Procs
	}
	var out []Series
	for _, pr := range simwork.Programs() {
		s := Series{Program: pr.Name, Machine: cfg.Name}
		base := simwork.Run(pr, cfg, 1, seed)
		baseNoGC := base.Makespan - base.GCNS
		for p := 1; p <= maxP; p++ {
			r := simwork.Run(pr, cfg, p, seed)
			pt := Point{
				Procs:      p,
				MakespanNS: r.Makespan,
				IdleFrac:   r.IdleFrac(),
				LockFrac:   r.LockFrac(),
				BusMBps:    r.BusMBps(),
				GCs:        r.GCs,
			}
			if r.Makespan > 0 {
				pt.Speedup = float64(base.Makespan) / float64(r.Makespan)
				pt.GCFrac = float64(r.GCNS) / float64(r.Makespan)
			}
			if noGC := r.Makespan - r.GCNS; noGC > 0 {
				pt.NoGCSpeedup = float64(baseNoGC) / float64(noGC)
			}
			if pr.Independent {
				// p copies of the whole application: perfect scaling keeps
				// T(p) = T(1), i.e. speedup p.
				pt.Speedup *= float64(p)
				pt.NoGCSpeedup *= float64(p)
			}
			s.Points = append(s.Points, pt)
		}
		out = append(out, s)
	}
	return out, nil
}

// Detail runs one program at one proc count and returns the §6 diagnostic
// row: idle fraction, lock fraction, bus traffic, GC share.
func Detail(program, cfgName string, procs int, seed int64) (simwork.Result, error) {
	mk, ok := machine.Configs[cfgName]
	if !ok {
		return simwork.Result{}, fmt.Errorf("experiments: unknown machine %q", cfgName)
	}
	pr, ok := simwork.ByName(program)
	if !ok {
		return simwork.Result{}, fmt.Errorf("experiments: unknown program %q", program)
	}
	cfg := mk()
	if procs <= 0 || procs > cfg.Procs {
		procs = cfg.Procs
	}
	return simwork.Run(pr, cfg, procs, seed), nil
}

// SpeedupTable renders series as the Figure 6 data table.
func SpeedupTable(series []Series, noGC bool) string {
	if len(series) == 0 {
		return ""
	}
	var b strings.Builder
	metric := "speedup (GC included)"
	if noGC {
		metric = "speedup (GC excluded)"
	}
	fmt.Fprintf(&b, "Self-relative %s on %s\n", metric, series[0].Machine)
	fmt.Fprintf(&b, "%-6s", "procs")
	for _, s := range series {
		fmt.Fprintf(&b, "%10s", s.Program)
	}
	b.WriteByte('\n')
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%-6d", series[0].Points[i].Procs)
		for _, s := range series {
			v := s.Points[i].Speedup
			if noGC {
				v = s.Points[i].NoGCSpeedup
			}
			fmt.Fprintf(&b, "%10.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders series as comma-separated values for plotting.
func CSV(series []Series) string {
	var b strings.Builder
	b.WriteString("machine,program,procs,makespan_ns,speedup,nogc_speedup,idle_frac,lock_frac,bus_mbps,gcs,gc_frac\n")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%s,%s,%d,%d,%.4f,%.4f,%.4f,%.4f,%.3f,%d,%.4f\n",
				s.Machine, s.Program, p.Procs, p.MakespanNS, p.Speedup,
				p.NoGCSpeedup, p.IdleFrac, p.LockFrac, p.BusMBps, p.GCs, p.GCFrac)
		}
	}
	return b.String()
}

// AsciiChart renders the speedup curves as a rough terminal plot, enough
// to eyeball the Figure 6 shape.
func AsciiChart(series []Series, width, height int) string {
	if len(series) == 0 {
		return ""
	}
	maxP := 0
	maxS := 1.0
	for _, s := range series {
		for _, p := range s.Points {
			if p.Procs > maxP {
				maxP = p.Procs
			}
			if p.Speedup > maxS {
				maxS = p.Speedup
			}
		}
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'a', 'm', 'b', 's', 'M', 'q'} // allpairs mst abisort simple mm seq
	for si, s := range series {
		mark := byte('0' + si)
		if si < len(marks) {
			mark = marks[si]
		}
		for _, p := range s.Points {
			x := (p.Procs - 1) * (width - 1) / max(maxP-1, 1)
			y := height - 1 - int(p.Speedup/maxS*float64(height-1))
			if y >= 0 && y < height && x >= 0 && x < width {
				grid[y][x] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speedup (max %.1f) vs procs (1..%d) on %s\n", maxS, maxP, series[0].Machine)
	for _, row := range grid {
		b.WriteString("  |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n   legend: ")
	for si, s := range series {
		mark := byte('0' + si)
		if si < len(marks) {
			mark = marks[si]
		}
		fmt.Fprintf(&b, "%c=%s ", mark, s.Program)
	}
	b.WriteByte('\n')
	return b.String()
}

// Summary extracts the headline claims checked in EXPERIMENTS.md.
type Summary struct {
	MMFinalSpeedup     float64
	SeqFinalSpeedup    float64
	SimpleFinalSpeedup float64
	SimpleIdleAt10     float64
	MMBusMBpsAt16      float64
	Order              []string // programs sorted by final speedup, best first
	NoGCGainAllpairs   float64  // nogc/gc speedup ratio at max procs
	NoGCGainAbisort    float64
}

// Summarize computes the Summary from Figure 6 series (Sequent layout).
func Summarize(series []Series) Summary {
	var sum Summary
	last := func(s Series) Point { return s.Points[len(s.Points)-1] }
	at := func(s Series, p int) (Point, bool) {
		for _, pt := range s.Points {
			if pt.Procs == p {
				return pt, true
			}
		}
		return Point{}, false
	}
	type fin struct {
		name string
		s    float64
	}
	var fins []fin
	for _, s := range series {
		pt := last(s)
		fins = append(fins, fin{s.Program, pt.Speedup})
		switch s.Program {
		case "mm":
			sum.MMFinalSpeedup = pt.Speedup
			if p16, ok := at(s, 16); ok {
				sum.MMBusMBpsAt16 = p16.BusMBps
			} else {
				sum.MMBusMBpsAt16 = pt.BusMBps
			}
		case "seq":
			sum.SeqFinalSpeedup = pt.Speedup
		case "simple":
			sum.SimpleFinalSpeedup = pt.Speedup
			if p10, ok := at(s, 10); ok {
				sum.SimpleIdleAt10 = p10.IdleFrac
			}
		case "allpairs":
			if pt.Speedup > 0 {
				sum.NoGCGainAllpairs = pt.NoGCSpeedup / pt.Speedup
			}
		case "abisort":
			if pt.Speedup > 0 {
				sum.NoGCGainAbisort = pt.NoGCSpeedup / pt.Speedup
			}
		}
	}
	sort.Slice(fins, func(i, j int) bool { return fins[i].s > fins[j].s })
	for _, f := range fins {
		sum.Order = append(sum.Order, f.name)
	}
	return sum
}
