package experiments

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/simwork"
)

// FutureWorkRow is one program's speedups under the §7 proposals.
type FutureWorkRow struct {
	Program      string
	Baseline     float64 // 1993 design: bus-crossing allocation, STW GC
	CacheNursery float64 // cache-resident young generation
	ConcGC       float64 // concurrent collection
	Both         float64
}

// FutureWork measures the paper's §7 predictions on the Sequent model at
// full procs: "Potentially better strategies include using a
// multi-generational collector with very small young generations that can
// fit in the cache" (CacheNursery) and "concurrent garbage collection"
// (ConcGC).  The returned rows show self-relative speedup at p = procs
// for each variant.
func FutureWork(cfgName string, seed int64) ([]FutureWorkRow, error) {
	mk, ok := machine.Configs[cfgName]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown machine %q", cfgName)
	}
	variants := []struct {
		name  string
		tweak func(*machine.Config)
	}{
		{"baseline", func(*machine.Config) {}},
		{"cache", func(c *machine.Config) { c.CacheResidentNursery = true }},
		{"concgc", func(c *machine.Config) { c.ConcurrentGC = true }},
		{"both", func(c *machine.Config) { c.CacheResidentNursery = true; c.ConcurrentGC = true }},
	}
	var rows []FutureWorkRow
	for _, pr := range simwork.Programs() {
		row := FutureWorkRow{Program: pr.Name}
		for _, v := range variants {
			cfg := mk()
			v.tweak(&cfg)
			base := simwork.Run(pr, cfg, 1, seed)
			r := simwork.Run(pr, cfg, cfg.Procs, seed)
			s := float64(base.Makespan) / float64(r.Makespan)
			if pr.Independent {
				s *= float64(cfg.Procs)
			}
			switch v.name {
			case "baseline":
				row.Baseline = s
			case "cache":
				row.CacheNursery = s
			case "concgc":
				row.ConcGC = s
			case "both":
				row.Both = s
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FutureWorkTable formats the rows.
func FutureWorkTable(rows []FutureWorkRow, cfgName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Speedup at full procs on %s under the paper's §7 proposals\n", cfgName)
	fmt.Fprintf(&b, "%-10s %10s %12s %10s %10s\n",
		"program", "baseline", "cache-nursery", "conc-GC", "both")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %10.2f %12.2f %10.2f %10.2f\n",
			r.Program, r.Baseline, r.CacheNursery, r.ConcGC, r.Both)
	}
	return b.String()
}
