package experiments

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/machine"
	"repro/internal/simwork"
)

// The tests in this file are the acceptance criteria for the reproduction:
// each corresponds to a quantitative or qualitative claim in the paper's
// §6 and is indexed in DESIGN.md (E1-E7).

var (
	f6Once sync.Once
	f6     []Series
	f6Err  error
)

func figure6(t *testing.T) []Series {
	t.Helper()
	f6Once.Do(func() { f6, f6Err = Figure6("sequent", 16, 1) })
	if f6Err != nil {
		t.Fatal(f6Err)
	}
	return f6
}

func bySeries(series []Series, name string) Series {
	for _, s := range series {
		if s.Program == name {
			return s
		}
	}
	panic("missing series " + name)
}

func last(s Series) Point { return s.Points[len(s.Points)-1] }

// E1: the Figure 6 curve family — seq best and near linear, mm close
// behind, allpairs mid, abisort/mst lower, simple worst.
func TestE1Figure6Ordering(t *testing.T) {
	sum := Summarize(figure6(t))
	want := []string{"seq", "mm", "allpairs"}
	for i, w := range want {
		if sum.Order[i] != w {
			t.Fatalf("speedup order = %v, want prefix %v", sum.Order, want)
		}
	}
	if sum.Order[len(sum.Order)-1] != "simple" {
		t.Fatalf("worst case = %s, want simple (order %v)",
			sum.Order[len(sum.Order)-1], sum.Order)
	}
}

func TestE1SeqNearLinear(t *testing.T) {
	seq := bySeries(figure6(t), "seq")
	pt := last(seq)
	if pt.Speedup < 14.0 {
		t.Fatalf("seq speedup at 16 = %.2f, want near-linear (>= 14)", pt.Speedup)
	}
	// And monotone nondecreasing within 2%.
	prev := 0.0
	for _, p := range seq.Points {
		if p.Speedup < prev*0.98 {
			t.Fatalf("seq speedup not monotone: %.2f after %.2f", p.Speedup, prev)
		}
		prev = p.Speedup
	}
}

func TestE1MMExcellentAlmostSeq(t *testing.T) {
	series := figure6(t)
	mm := last(bySeries(series, "mm"))
	others := []string{"allpairs", "mst", "abisort", "simple"}
	for _, o := range others {
		if mm.Speedup <= last(bySeries(series, o)).Speedup {
			t.Fatalf("mm (%.2f) should beat %s (%.2f)", mm.Speedup, o,
				last(bySeries(series, o)).Speedup)
		}
	}
	if mm.Speedup < 9 {
		t.Fatalf("mm speedup at 16 = %.2f, want 'excellent' (>= 9)", mm.Speedup)
	}
}

// E2: mm generates about 20 MB/s of bus traffic at 16 procs against a
// 25 MB/s bus.
func TestE2MMBusTraffic(t *testing.T) {
	mm := last(bySeries(figure6(t), "mm"))
	if mm.BusMBps < 15 || mm.BusMBps > 25 {
		t.Fatalf("mm bus traffic at 16 procs = %.1f MB/s, want ~20 (15..25)", mm.BusMBps)
	}
}

// E3: with GC time excluded, abisort and allpairs speed up considerably
// more, with the same rough shape.
func TestE3NoGCConsiderablyHigher(t *testing.T) {
	series := figure6(t)
	for _, name := range []string{"allpairs", "abisort"} {
		pt := last(bySeries(series, name))
		gain := pt.NoGCSpeedup / pt.Speedup
		if gain < 1.2 {
			t.Fatalf("%s: nogc/gc speedup gain = %.2f, want considerable (>= 1.2)", name, gain)
		}
	}
	// mm and seq should barely change: their GC share is small.
	for _, name := range []string{"seq"} {
		pt := last(bySeries(series, name))
		if gain := pt.NoGCSpeedup / pt.Speedup; gain > 1.15 {
			t.Fatalf("%s: nogc gain = %.2f, want ~1", name, gain)
		}
	}
}

// E4: simple has average processor idle rates above 50% for 10 or more
// procs, and shows moderate (but nonzero) lock contention; the other
// applications show no significant lock contention.
func TestE4SimpleIdleAndContention(t *testing.T) {
	series := figure6(t)
	simple := bySeries(series, "simple")
	for _, p := range simple.Points {
		if p.Procs >= 10 && p.IdleFrac <= 0.5 {
			t.Fatalf("simple idle at p=%d is %.0f%%, want > 50%%", p.Procs, p.IdleFrac*100)
		}
	}
	pt := last(simple)
	if pt.LockFrac <= 0 {
		t.Fatal("simple shows no lock contention; paper reports moderate contention")
	}
	for _, name := range []string{"mm", "seq"} {
		if lf := last(bySeries(series, name)).LockFrac; lf > 0.02 {
			t.Fatalf("%s lock contention = %.1f%%, want insignificant", name, lf*100)
		}
	}
	if mmLock := last(bySeries(series, "mm")).LockFrac; pt.LockFrac <= mmLock {
		t.Fatal("simple should show more lock contention than mm")
	}
}

// E6: lock latency 46 µs on the Sequent versus 6 µs on the SGI.
func TestE6LockLatency(t *testing.T) {
	seq := machine.New(machine.SequentS81(), 1, 0).LockLatency()
	sgi := machine.New(machine.SGI4D380S(), 1, 0).LockLatency()
	if seq != 46_000 {
		t.Fatalf("sequent lock pair = %d ns, want 46µs", seq)
	}
	if sgi != 6_000 {
		t.Fatalf("sgi lock pair = %d ns, want 6µs", sgi)
	}
	if float64(seq)/float64(sgi) < 7 {
		t.Fatalf("latency ratio %.1f, want ~7.7x", float64(seq)/float64(sgi))
	}
}

// E7: on the SGI, memory contention swamps all other effects — GC, idle
// time and lock contention are not significant factors, and every curve
// is compressed toward the bus ceiling.
func TestE7SGIBusBound(t *testing.T) {
	series, err := Figure6("sgi", 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		pt := last(s)
		if s.Program == "simple" || s.Program == "mst" {
			continue // parallelism-starved regardless of machine
		}
		// Bus utilization should be high: fast processors against a
		// marginally faster bus.
		if pt.BusMBps < 10 {
			t.Errorf("%s on sgi: bus only %.1f MB/s; expected bus-bound behaviour",
				s.Program, pt.BusMBps)
		}
	}
	// The allocation-heavy programs should be further from linear on the
	// SGI (bus-swamped) than on the Sequent at the same proc count.
	seq16, _ := Figure6("sequent", 8, 1)
	for _, name := range []string{"allpairs", "abisort"} {
		sgiS := last(bySeries(series, name)).Speedup
		seqS := last(bySeries(seq16, name)).Speedup
		if sgiS > seqS {
			t.Errorf("%s: sgi speedup %.2f exceeds sequent %.2f at p=8; "+
				"memory contention should dominate on the sgi", name, sgiS, seqS)
		}
	}
}

func TestSpeedupTableFormat(t *testing.T) {
	series := figure6(t)
	tbl := SpeedupTable(series, false)
	for _, want := range []string{"allpairs", "mst", "abisort", "simple", "mm", "seq", "procs"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table missing %q:\n%s", want, tbl)
		}
	}
	if lines := strings.Count(tbl, "\n"); lines != 18 { // header*2 + 16 rows
		t.Fatalf("table has %d lines, want 18", lines)
	}
}

func TestCSVWellFormed(t *testing.T) {
	series := figure6(t)
	csv := CSV(series)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+6*16 {
		t.Fatalf("csv rows = %d, want 97", len(lines))
	}
	cols := strings.Count(lines[0], ",") + 1
	for i, l := range lines {
		if strings.Count(l, ",")+1 != cols {
			t.Fatalf("row %d has wrong arity: %s", i, l)
		}
	}
}

func TestAsciiChartRenders(t *testing.T) {
	chart := AsciiChart(figure6(t), 60, 20)
	if !strings.Contains(chart, "legend") || len(chart) < 400 {
		t.Fatalf("chart too small:\n%s", chart)
	}
}

func TestDetail(t *testing.T) {
	r, err := Detail("simple", "sequent", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Procs != 10 || r.Program != "simple" {
		t.Fatalf("detail = %+v", r)
	}
	if r.IdleFrac() <= 0.5 {
		t.Fatalf("simple idle at 10 procs = %.2f, want > 0.5", r.IdleFrac())
	}
}

func TestUnknownInputs(t *testing.T) {
	if _, err := Figure6("pdp11", 4, 1); err == nil {
		t.Fatal("unknown machine accepted")
	}
	if _, err := Detail("quicksort", "sequent", 4, 1); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, _ := Figure6("sequent", 4, 7)
	b, _ := Figure6("sequent", 4, 7)
	for i := range a {
		for j := range a[i].Points {
			if a[i].Points[j] != b[i].Points[j] {
				t.Fatalf("nondeterministic result at %s p=%d", a[i].Program, j+1)
			}
		}
	}
}

func TestTotalWorkAccounting(t *testing.T) {
	for _, pr := range simwork.Programs() {
		instr, words := pr.TotalWork()
		if instr <= 0 {
			t.Fatalf("%s: nonpositive work", pr.Name)
		}
		if words < 0 {
			t.Fatalf("%s: negative allocation", pr.Name)
		}
		r := simwork.Run(pr, machine.SequentS81(), 1, 1)
		wantWords := words
		if pr.Independent {
			// one copy per proc; p=1 means one copy
		}
		if r.Totals.AllocWords != wantWords {
			t.Fatalf("%s: simulated alloc %d words, program defines %d",
				pr.Name, r.Totals.AllocWords, wantWords)
		}
	}
}

// F1: the §7 future-work proposals must actually help where the paper
// predicts — the cache-resident nursery lifts allocation-heavy programs,
// and combining both proposals beats either alone for mm.
func TestF1FutureWork(t *testing.T) {
	rows, err := FutureWork("sequent", 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]FutureWorkRow{}
	for _, r := range rows {
		byName[r.Program] = r
	}
	for _, name := range []string{"abisort", "allpairs", "mm"} {
		r := byName[name]
		if r.CacheNursery <= r.Baseline {
			t.Errorf("%s: cache-resident nursery did not help (%.2f <= %.2f)",
				name, r.CacheNursery, r.Baseline)
		}
	}
	mm := byName["mm"]
	if mm.Both <= mm.CacheNursery || mm.Both <= mm.ConcGC {
		t.Errorf("mm: proposals do not compose: both=%.2f cache=%.2f concgc=%.2f",
			mm.Both, mm.CacheNursery, mm.ConcGC)
	}
	tbl := FutureWorkTable(rows, "sequent")
	if !strings.Contains(tbl, "cache-nursery") {
		t.Error("table missing header")
	}
}

func TestF1UnknownMachine(t *testing.T) {
	if _, err := FutureWork("cray", 1); err == nil {
		t.Fatal("unknown machine accepted")
	}
}
