package shard

// The front world: the fabric's own MP threads.  frontMain is the root
// thread of the front system; it forks the clock pump, the rebalancer,
// and the acceptor, then becomes the drain supervisor.  The acceptor
// forks one connection thread per admitted client; a connection thread
// owns its socket for the connection's keep-alive lifetime, reading
// pipelined requests through serve.Conn and forwarding each to its
// routed shard.

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/proc"
	"repro/internal/serve"
)

func (fab *Fabric) frontMain() {
	fab.frontSys.Fork(func() { fab.pump() })
	if fab.opts.RebalanceTicks > 0 {
		fab.frontSys.Fork(func() { fab.rebalancer() })
	} else {
		fab.state.Lock()
		fab.rebalDone = true
		fab.state.Unlock()
	}
	fab.frontSys.Fork(func() { fab.acceptor() })
	fab.supervise()
}

// pump advances the front clock from wall time, exactly as the serve
// pump does; every front park (reply waits, supervisor, rebalancer)
// wakes through it.  It exits last, once the supervisor has drained the
// backends and the rebalancer has stopped.
func (fab *Fabric) pump() {
	start := time.Now()
	var emitted int64
	for {
		target := int64(time.Since(start) / fab.opts.Tick)
		if d := target - emitted; d > 0 {
			fab.clock.Advance(fab.frontSys, d)
			emitted = target
		}
		fab.state.Lock()
		done := fab.cascadeDone && fab.rebalDone
		fab.state.Unlock()
		if done {
			return
		}
		fab.frontSys.CheckPreempt()
		time.Sleep(fab.opts.Tick / 4)
		fab.frontSys.Yield()
	}
}

// supervise is the drain cascade's ordering point: it waits (parking on
// the front clock) until the fabric is draining, the acceptor has
// stopped, and the last connection thread has closed — at which moment
// every forwarded request has been answered and every ring is empty —
// and only then drains the backends.  Zero in-flight requests dropped,
// by construction.
func (fab *Fabric) supervise() {
	for {
		fab.state.Lock()
		ready := fab.draining && fab.acceptorDone && fab.activeConns == 0
		fab.state.Unlock()
		if ready {
			break
		}
		fab.park(1)
	}
	fab.emit(fab.evDrain, 0)
	for _, b := range fab.backends {
		b.srv.Drain()
	}
	// Shrink the front's own allowance too: the paper's drain discipline.
	fab.frontPl.SetLimit(1)
	fab.state.Lock()
	fab.cascadeDone = true
	fab.state.Unlock()
}

// acceptor admits connections with the cooperative poll-accept loop and
// forks a connection thread per client, shedding with 503 when the
// front's connection bound is reached.
func (fab *Fabric) acceptor() {
	for {
		fab.state.Lock()
		stop := fab.draining
		fab.state.Unlock()
		if stop {
			break
		}
		fab.ln.SetDeadline(time.Now().Add(fab.opts.PollWindow))
		nc, err := fab.ln.Accept()
		if err != nil {
			if isTimeout(err) {
				fab.frontSys.CheckPreempt()
				fab.frontSys.Yield()
				continue
			}
			fab.m.acceptErrs.Inc(proc.Self())
			fab.frontSys.Yield()
			continue
		}
		self := proc.Self()
		fab.m.accepted.Inc(self)
		fab.emit(fab.evAccept, fab.clock.Now())

		fab.state.Lock()
		if fab.draining || fab.activeConns >= fab.opts.MaxConns {
			draining := fab.draining
			fab.state.Unlock()
			fab.shedConn(nc, draining)
			if draining {
				break
			}
			continue
		}
		fab.activeConns++
		fab.state.Unlock()
		fab.m.conns.Inc(self)
		fab.frontSys.Fork(func() { fab.connThread(nc) })
	}
	fab.ln.Close()
	fab.state.Lock()
	fab.acceptorDone = true
	fab.state.Unlock()
}

// shedConn refuses a connection at the front with 503 + Retry-After.
func (fab *Fabric) shedConn(nc net.Conn, draining bool) {
	fab.m.shedConns.Inc(proc.Self())
	why := "front connection limit"
	if draining {
		why = "draining"
	}
	c := serve.NewConn(nc, fab.ccfg)
	c.WriteResponse(serve.Response{
		Status:     503,
		Body:       []byte("shedding load: " + why + "\n"),
		RetryAfter: fab.opts.RetryAfter,
	}, fab.clock.Now()+20, false)
	nc.Close()
}

// connThread serves one client connection for its keep-alive lifetime:
// read a request, route it, forward it over the shard's ring, park until
// the reply cell fills, write the response, repeat.
func (fab *Fabric) connThread(nc net.Conn) {
	c := serve.NewConn(nc, fab.ccfg)
	home := connShard(nc.RemoteAddr().String(), len(fab.backends))
	served := 0
	for {
		headBudget := fab.opts.DeadlineTicks
		if served > 0 {
			headBudget = fab.opts.IdleTicks
		}
		req, err := c.ReadRequest(fab.clock.Now()+headBudget, fab.opts.DeadlineTicks)
		var resp serve.Response
		silent := false
		switch {
		case err == nil:
			resp = fab.dispatch(req, home)
		case errors.Is(err, serve.ErrDeadline):
			if served > 0 && !c.Partial() {
				silent = true
				break
			}
			resp = serve.Response{Status: 504, Body: []byte("deadline exceeded reading request\n")}
		case errors.Is(err, serve.ErrAborted):
			if !c.Partial() {
				silent = true
				break
			}
			resp = serve.Response{
				Status:     503,
				Body:       []byte("shedding load: draining\n"),
				RetryAfter: fab.opts.RetryAfter,
			}
		case errors.Is(err, serve.ErrTooLarge):
			resp = serve.Response{Status: 413, Body: []byte("request too large\n")}
		case errors.Is(err, serve.ErrBadRequest):
			resp = serve.Response{Status: 400, Body: []byte("malformed request\n")}
		default:
			silent = true
		}
		if silent {
			break
		}
		keepAlive := false
		capTick := fab.clock.Now() + 20
		if req != nil {
			keepAlive = err == nil && !req.Close && !fab.Draining()
			capTick = req.Deadline + 20
		}
		werr := c.WriteResponse(resp, capTick, keepAlive)
		served++
		if werr != nil || !keepAlive {
			break
		}
	}
	nc.Close()
	fab.m.conns.Add(proc.Self(), -1)
	fab.state.Lock()
	fab.activeConns--
	fab.state.Unlock()
}

// dispatch routes one parsed request and forwards it, parking until the
// shard replies.  /fabricz is answered at the front itself — the
// fabric's own status endpoint.
func (fab *Fabric) dispatch(req *serve.Request, home int) serve.Response {
	if req.Path == "/fabricz" {
		return fab.statusResponse()
	}
	self := proc.Self()
	target := home
	if key := req.Header(fab.opts.RouteHeader); key != "" {
		target = fab.sticky.lookup(key)
		fab.m.routedKey.Inc(self)
	} else {
		fab.m.routedHash.Inc(self)
	}
	fab.emit(fab.evRoute, int64(target))
	remaining := req.Deadline - fab.clock.Now()
	rep := &reply{}
	if !fab.backends[target].ring.push(job{req: req, remaining: remaining, rep: rep}) {
		fab.m.ringFull.Inc(self)
		return serve.Response{
			Status:     503,
			Body:       []byte("shedding load: shard ring full\n"),
			RetryAfter: fab.opts.RetryAfter,
		}
	}
	fab.m.forwarded[target].Inc(self)
	fab.emit(fab.evForward, int64(target))
	t0 := fab.clock.Now()
	resp := rep.wait(fab.frontSys.Yield, fab.park)
	fab.m.replies.Inc(self)
	fab.m.waitTicks.Observe(self, fab.clock.Now()-t0)
	fab.emit(fab.evReply, int64(resp.Status))
	return resp
}

// statusResponse renders /fabricz: per-shard allowance and load.
func (fab *Fabric) statusResponse() serve.Response {
	loads := fab.shardLoads()
	limits := fab.Limits()
	body := fmt.Sprintf("shards %d\n", len(fab.backends))
	for i := range fab.backends {
		body += fmt.Sprintf("shard %d limit %d load %d ring %d\n",
			i, limits[i], loads[i], fab.backends[i].ring.depth())
	}
	snap := fab.frontSys.Metrics().Snapshot()
	body += fmt.Sprintf("conns %d rebalances %d\n",
		snap.Get("shard.conns"), snap.Get("shard.rebalances"))
	return serve.Response{Status: 200, Body: []byte(body)}
}

// isTimeout reports whether err is a network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
