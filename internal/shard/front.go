package shard

// The front world: the fabric's own MP threads.  frontMain is the root
// thread of the front system; it forks the clock pump, the rebalancer,
// and the acceptor, then becomes the drain supervisor.  The acceptor
// forks one connection thread per admitted client; a connection thread
// owns its socket for the connection's keep-alive lifetime, reading
// pipelined requests through serve.Conn and forwarding each to its
// routed shard.

import (
	"errors"
	"fmt"
	"net"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/pubsub"
	"repro/internal/serve"
)

func (fab *Fabric) frontMain() {
	fab.frontSys.Fork(func() { fab.pump() })
	if fab.opts.RebalanceTicks > 0 || fab.Elastic() {
		fab.frontSys.Fork(func() { fab.policy() })
	} else {
		fab.state.Lock()
		fab.rebalDone = true
		fab.state.Unlock()
	}
	for _, p := range fab.pollers {
		p := p
		fab.frontSys.Fork(func() { fab.pollerMain(p) })
	}
	fab.frontSys.Fork(func() { fab.acceptor() })
	fab.supervise()
}

// pump advances the front clock from wall time, exactly as the serve
// pump does; every front park (reply waits, supervisor, rebalancer)
// wakes through it.  It exits last, once the supervisor has drained the
// backends and the rebalancer has stopped.
func (fab *Fabric) pump() {
	start := time.Now()
	var emitted int64
	for {
		target := int64(time.Since(start) / fab.opts.Tick)
		if d := target - emitted; d > 0 {
			fab.clock.Advance(fab.frontSys, d)
			emitted = target
		}
		fab.state.Lock()
		done := fab.cascadeDone && fab.rebalDone
		fab.state.Unlock()
		if done {
			return
		}
		fab.frontSys.CheckPreempt()
		time.Sleep(fab.opts.Tick / 4)
		fab.frontSys.Yield()
	}
}

// supervise is the drain cascade's ordering point: it waits (parking on
// the front clock) until the fabric is draining, the acceptor has
// stopped, and the last connection thread has closed — at which moment
// every forwarded request has been answered and every ring is empty —
// and only then drains the backends.  Zero in-flight requests dropped,
// by construction.
func (fab *Fabric) supervise() {
	for {
		fab.state.Lock()
		ready := fab.draining && fab.acceptorDone && fab.activeConns == 0
		fab.state.Unlock()
		if ready {
			break
		}
		fab.park(1)
	}
	fab.emit(fab.evDrain, 0)
	fab.state.Lock()
	bs := append([]*backend(nil), fab.backends...)
	fab.state.Unlock()
	for _, b := range bs {
		b.srv.Drain() // idempotent: released members are already drained
	}
	// Shrink the front's own allowance too: the paper's drain discipline.
	fab.frontPl.SetLimit(1)
	fab.state.Lock()
	fab.cascadeDone = true
	fab.state.Unlock()
}

// acceptor admits connections with the cooperative poll-accept loop and
// forks a connection thread per client, shedding with 503 when the
// front's connection bound is reached.
func (fab *Fabric) acceptor() {
	nextPoller := 0
	for {
		fab.state.Lock()
		stop := fab.draining
		fab.state.Unlock()
		if stop {
			break
		}
		fab.ln.SetDeadline(time.Now().Add(fab.opts.PollWindow))
		nc, err := fab.ln.Accept()
		if err != nil {
			if isTimeout(err) {
				fab.frontSys.CheckPreempt()
				fab.frontSys.Yield()
				continue
			}
			fab.m.acceptErrs.Inc(proc.Self())
			fab.frontSys.Yield()
			continue
		}
		self := proc.Self()
		fab.m.accepted.Inc(self)
		fab.emit(fab.evAccept, fab.clock.Now())

		fab.state.Lock()
		if fab.draining || fab.activeConns >= fab.opts.MaxConns {
			draining := fab.draining
			fab.state.Unlock()
			fab.shedConn(nc, draining)
			if draining {
				break
			}
			continue
		}
		fab.activeConns++
		fab.state.Unlock()
		fab.m.conns.Inc(self)
		if len(fab.pollers) > 0 {
			// Multiplexed front: hand the socket to the next poller
			// round-robin instead of forking a connection thread.
			fab.pollers[nextPoller%len(fab.pollers)].enqueueConn(nc)
			nextPoller++
			continue
		}
		fab.frontSys.Fork(func() { fab.connThread(nc) })
	}
	fab.ln.Close()
	fab.state.Lock()
	fab.acceptorDone = true
	fab.state.Unlock()
}

// shedConn refuses a connection at the front with 503 + Retry-After.
func (fab *Fabric) shedConn(nc net.Conn, draining bool) {
	fab.m.shedConns.Inc(proc.Self())
	why := "front connection limit"
	if draining {
		why = "draining"
	}
	c := serve.NewConn(nc, fab.ccfg)
	c.WriteResponse(serve.Response{
		Status:     503,
		Body:       []byte("shedding load: " + why + "\n"),
		RetryAfter: fab.opts.RetryAfter,
	}, fab.clock.Now()+20, false)
	nc.Close()
}

// connThread serves one client connection for its keep-alive lifetime:
// read a head request, drain every fully-buffered pipelined successor
// behind it, forward the whole batch shard-by-shard as multi-pushes,
// park once until the batch's reply group completes, then write the
// whole run of responses with one coalesced (or vectored) socket write.
func (fab *Fabric) connThread(nc net.Conn) {
	c := serve.NewConn(nc, fab.ccfg)
	// The connection's route hash is fixed; the member it resolves to is
	// looked up per batch against the current membership, so an elastic
	// fabric re-spreads long-lived connections as shards come and go.
	chash := fnv1a(nc.RemoteAddr().String())
	served := 0
	reqs := make([]*serve.Request, 0, fab.opts.BatchMax)
	resps := make([]serve.Response, 0, fab.opts.BatchMax)
	pend := make([]pendingReply, fab.opts.BatchMax)
	jbuf := make([]job, fab.opts.BatchMax)
	cells := make([]reply, fab.opts.BatchMax)
	grp := &replyGroup{}
	sp := newSpinState(fab.opts.ReplySpin)
	for {
		headBudget := fab.opts.DeadlineTicks
		if served > 0 {
			headBudget = fab.opts.IdleTicks
		}
		req, err := c.ReadRequest(fab.clock.Now()+headBudget, fab.opts.DeadlineTicks)
		if err == nil {
			// The blocking read cost is paid; everything the client
			// pipelined behind this request is already buffered and parses
			// for free.  A Close request ends the batch — nothing after it
			// will be answered.
			reqs = append(reqs[:0], req)
			var rerr error
			for len(reqs) < fab.opts.BatchMax && !reqs[len(reqs)-1].Close {
				nxt, ok, e := c.ReadBuffered(fab.opts.DeadlineTicks)
				if e != nil {
					rerr = e
					break
				}
				if !ok {
					break
				}
				reqs = append(reqs, nxt)
			}
			// Snapshot the write cap before dispatch: Submit rebases
			// req.Deadline onto the owning shard's clock (independent of
			// the front clock, and starting at zero for a shard acquired
			// at runtime), so after the batch returns the request objects
			// no longer carry front-domain ticks.
			last := reqs[len(reqs)-1]
			capTick := last.Deadline + 20
			resps = fab.dispatchBatch(reqs, chash, pend, jbuf, cells, grp, &sp, resps[:0])
			if si := streamIndex(resps); si >= 0 {
				fab.streamConn(c, resps, si, capTick)
				break
			}
			keepAlive := rerr == nil && !last.Close && !fab.Draining()
			if rerr != nil {
				// Poisoned pipeline: the buffered bytes can never become a
				// valid request, so answer the malformed successor too and
				// close instead of re-parsing the same garbage forever.
				bresp := serve.Response{Status: 400, Body: []byte("malformed request\n")}
				if errors.Is(rerr, serve.ErrTooLarge) {
					bresp = serve.Response{Status: 413, Body: []byte("request too large\n")}
				}
				resps = append(resps, bresp)
			}
			var werr error
			if fab.opts.PerCellReplies {
				// Benchmark baseline: the pre-coalescing write path, one
				// render and one socket write per response.
				for i := range resps {
					werr = c.WriteResponse(resps[i], capTick, i < len(resps)-1 || keepAlive)
					if werr != nil {
						break
					}
				}
			} else {
				werr = c.WriteResponses(resps, capTick, keepAlive)
			}
			served += len(resps)
			if werr != nil || !keepAlive {
				break
			}
			continue
		}
		var resp serve.Response
		silent := false
		switch {
		case errors.Is(err, serve.ErrDeadline):
			if served > 0 && !c.Partial() {
				silent = true
				break
			}
			resp = serve.Response{Status: 504, Body: []byte("deadline exceeded reading request\n")}
		case errors.Is(err, serve.ErrAborted):
			if !c.Partial() {
				silent = true
				break
			}
			resp = serve.Response{
				Status:     503,
				Body:       []byte("shedding load: draining\n"),
				RetryAfter: fab.opts.RetryAfter,
			}
		case errors.Is(err, serve.ErrTooLarge):
			resp = serve.Response{Status: 413, Body: []byte("request too large\n")}
		case errors.Is(err, serve.ErrBadRequest):
			resp = serve.Response{Status: 400, Body: []byte("malformed request\n")}
		default:
			silent = true
		}
		if silent {
			break
		}
		c.WriteResponse(resp, fab.clock.Now()+20, false)
		break
	}
	nc.Close()
	fab.m.conns.Add(proc.Self(), -1)
	fab.state.Lock()
	fab.activeConns--
	fab.state.Unlock()
}

// topicKey returns the routing key for a pub/sub request — its topic —
// or "" for everything else.  Routing by topic is what makes a topic
// live on exactly one shard.
func (fab *Fabric) topicKey(req *serve.Request) string {
	if !fab.opts.PubSub {
		return ""
	}
	switch req.Path {
	case "/publish", "/subscribe", "/unsubscribe":
		return req.Query("topic")
	}
	return ""
}

// streamIndex finds the first streaming response in a batch, -1 if none.
func streamIndex(resps []serve.Response) int {
	for i := range resps {
		if resps[i].Stream != nil {
			return i
		}
	}
	return -1
}

// streamConn hands a connection thread to a streaming response: flush
// the responses batched ahead of it (keep-alive — the stream header
// follows on the same socket), then pump frames until the stream closes
// or the client dies.  Responses pipelined behind the stream are
// dropped — a stream takes the connection to its end — with their own
// streams, if any, canceled rather than leaked.
func (fab *Fabric) streamConn(c *serve.Conn, resps []serve.Response, si int, capTick int64) {
	self := proc.Self()
	sresp := resps[si]
	for _, r := range resps[si+1:] {
		if r.Stream != nil {
			r.Stream.Cancel()
		}
	}
	if err := c.WriteResponses(resps[:si], capTick, true); err != nil {
		sresp.Stream.Cancel()
		return
	}
	fab.m.streamConns.Inc(self)
	sresp.Stream = &countedStream{s: sresp.Stream, n: fab.m.streamFrames}
	c.StreamResponse(sresp, fab.opts.HeartbeatTicks, fab.opts.DeadlineTicks)
	fab.m.streamConns.Add(self, -1)
}

// countedStream charges shard.stream_frames for every frame the
// connection-thread front pulls (the mux front counts at its own pull
// site in pumpStreams).
type countedStream struct {
	s serve.Streamer
	n *metrics.Counter
}

func (cs *countedStream) Pull() ([]byte, bool, bool) {
	f, ok, open := cs.s.Pull()
	if ok {
		cs.n.Inc(proc.Self())
	}
	return f, ok, open
}

func (cs *countedStream) Cancel() { cs.s.Cancel() }

// pendingReply is one slot of a dispatch batch: either a reply cell to
// await (rep non-nil, bound for tgt) or an immediately-known response
// (/fabricz and /scale answered at the front, ring-full sheds).  tgt is
// the backend itself, not an index: a membership flip mid-batch cannot
// re-point a pending cell at a different member.
type pendingReply struct {
	rep  *reply
	tgt  *backend
	pin  bool // topic-routed: the job must run on tgt, never be stolen
	resp serve.Response
}

// dispatchBatch routes a batch of pipelined requests, forwards each run
// of consecutive same-shard requests as one multi-push (one spinlock
// acquisition per run instead of per request), awaits the batch's reply
// group — one adaptive-spin wait for the whole batch, since the last
// delivery publishes it — and appends the responses to resps in request
// order.  In Options.PerCellReplies mode the group is bypassed and each
// cell is awaited in order (the benchmark baseline), through the same
// adaptive spin budget.  /fabricz is answered at the front itself — the
// fabric's own status endpoint.  pend, jbuf, and cells are caller-owned
// scratch (≥ len(reqs) each); cells and grp are reusable because a wait
// only returns once every pushed cell's delivery has fully completed.
func (fab *Fabric) dispatchBatch(reqs []*serve.Request, chash uint32,
	pend []pendingReply, jbuf []job, cells []reply, grp *replyGroup,
	sp *spinState, resps []serve.Response) []serve.Response {
	g := grp
	if fab.opts.PerCellReplies {
		g = nil
	} else {
		grp.open()
	}
	members := fab.forwardBatch(reqs, chash, pend, jbuf, cells, g)
	if g != nil {
		// Cells shed on a full ring never reach a backend: retire them
		// from the membership before waiting.
		g.seal(members)
		if members > 0 {
			fab.waitReply(g.done, sp)
		}
		sp = nil // group already waited; collect is pure reads
	}
	return fab.collectBatch(reqs, pend, sp, resps)
}

// forwardBatch is the non-waiting front half of a dispatch: route every
// request (answering /fabricz inline and enrolling the rest in cells
// bound to g), then forward each run of consecutive same-target requests
// as one multi-push, shedding with 503 where a ring is full.  It returns
// the number of cells actually pushed — the group membership the caller
// seals.  The multiplexed front calls this directly and polls the group
// instead of blocking.
func (fab *Fabric) forwardBatch(reqs []*serve.Request, chash uint32,
	pend []pendingReply, jbuf []job, cells []reply, g *replyGroup) int {
	self := proc.Self()
	// One membership snapshot per batch: every request in the batch
	// routes against the same epoch, and the snapshot is immutable, so a
	// flip landing mid-loop cannot tear the routing.
	mem := fab.mem.Load()
	// Route every request first so run grouping sees final targets.
	for i, req := range reqs {
		switch req.Path {
		case "/fabricz":
			pend[i] = pendingReply{resp: fab.statusResponse()}
			continue
		case "/scale":
			pend[i] = pendingReply{resp: fab.scaleResponse(req)}
			continue
		}
		var tgt *backend
		pin := false
		if t := fab.topicKey(req); t != "" {
			// Pub/sub requests route by topic through the same consistent
			// ring as sticky keys: one shard's broker owns each topic, so a
			// publish always meets the topic thread holding its subscribers.
			// The job is pinned: sibling shards must not steal it, because
			// only the owner's broker holds the topic's subscriber set.
			tgt = mem.shards[mem.ring.lookup(t)]
			pin = true
			fab.m.routedTopic.Inc(self)
		} else if key := req.Header(fab.opts.RouteHeader); key != "" {
			tgt = mem.shards[mem.ring.lookup(key)]
			fab.m.routedKey.Inc(self)
		} else {
			tgt = mem.shards[mem.home(chash)]
			fab.m.routedHash.Inc(self)
		}
		fab.emit(fab.evRoute, int64(tgt.id))
		cells[i] = reply{grp: g}
		pend[i] = pendingReply{rep: &cells[i], tgt: tgt, pin: pin}
	}
	// Forward: consecutive same-target requests become one pushN.
	now := fab.clock.Now()
	members := 0
	for i := 0; i < len(reqs); {
		if pend[i].rep == nil {
			i++
			continue
		}
		tgt := pend[i].tgt
		n := 0
		j := i
		for ; j < len(reqs) && pend[j].rep != nil && pend[j].tgt == tgt; j++ {
			jbuf[n] = job{
				req:       reqs[j],
				remaining: reqs[j].Deadline - now,
				pushed:    now,
				rep:       pend[j].rep,
				pinned:    pend[j].pin,
			}
			n++
		}
		pushed := tgt.ring.pushN(jbuf[:n])
		members += pushed
		if pushed > 0 {
			fab.m.pushBatch.Observe(self, int64(pushed))
			fab.m.forwarded[tgt.id].Add(self, int64(pushed))
			fab.emit(fab.evForward, int64(tgt.id))
		}
		for k := pushed; k < n; k++ {
			fab.m.ringFull.Inc(self)
			pend[i+k] = pendingReply{resp: serve.Response{
				Status:     503,
				Body:       []byte("shedding load: shard ring full\n"),
				RetryAfter: fab.opts.RetryAfter,
			}}
		}
		i = j
	}
	for n := range jbuf {
		jbuf[n] = job{} // drop request references
	}
	return members
}

// collectBatch appends the batch's responses to resps in request order,
// clearing pend as it goes.  With sp non-nil each cell is awaited in
// order (the per-cell baseline); with sp nil every cell must already be
// delivered — after a group wait, or a poller's grp.done() — so the
// loop is pure reads.
func (fab *Fabric) collectBatch(reqs []*serve.Request, pend []pendingReply,
	sp *spinState, resps []serve.Response) []serve.Response {
	self := proc.Self()
	for i := range reqs {
		if pend[i].rep == nil {
			resps = append(resps, pend[i].resp)
		} else {
			rep := pend[i].rep
			if sp != nil {
				fab.waitReply(rep.done.Load, sp)
			}
			fab.m.replies.Inc(self)
			fab.emit(fab.evReply, int64(rep.resp.Status))
			resps = append(resps, rep.resp)
		}
		pend[i] = pendingReply{}
	}
	return resps
}

// waitReply blocks the calling front thread until cond holds — a reply
// cell's done flag or a group's countdown — through the connection's
// adaptive spin budget (or, under Options.FairLocks, the memoryless
// bounded fair wait), charging the reply-wait instruments.
func (fab *Fabric) waitReply(cond func() bool, sp *spinState) {
	t0 := fab.clock.Now()
	var spins, parks int
	if fab.opts.FairLocks {
		spins, parks = fairWait(cond, fab.opts.ReplySpin, fab.frontSys.Yield, fab.park)
	} else {
		spins, parks = spinWait(cond, sp, fab.frontSys.Yield, fab.park)
	}
	self := proc.Self()
	if spins > 0 {
		fab.m.replySpins.Add(self, int64(spins))
	}
	if parks > 0 {
		fab.m.replyParks.Add(self, int64(parks))
	}
	fab.m.waitTicks.Observe(self, fab.clock.Now()-t0)
}

// statusResponse renders /fabricz: membership state (epoch, per-member
// lifecycle phase, vnode ownership) plus per-shard allowance and load.
// histLine renders one histogram snapshot as a single /fabricz line of
// "le<bound>:<count>" fields with the overflow bucket as "inf:<count>",
// or nothing when the histogram is empty.
func histLine(name string, h metrics.HistogramSnapshot) string {
	if h.Count == 0 {
		return ""
	}
	line := name
	for i, c := range h.Counts {
		if i < len(h.Bounds) {
			line += fmt.Sprintf(" le%d:%d", h.Bounds[i], c)
		} else {
			line += fmt.Sprintf(" inf:%d", c)
		}
	}
	return line + "\n"
}

func (fab *Fabric) statusResponse() serve.Response {
	mem := fab.mem.Load()
	loads := fab.shardLoads(mem.shards)
	limits := fab.Limits()
	body := fmt.Sprintf("shards %d\n", len(mem.shards))
	for i, b := range mem.shards {
		body += fmt.Sprintf("shard %d limit %d load %d ring %d\n",
			b.id, limits[i], loads[i], b.ring.depth())
	}
	snap := fab.frontSys.Metrics().Snapshot()
	body += fmt.Sprintf("epoch %d active %d min %d max %d elastic %v autoscale %v\n",
		mem.epoch, len(mem.shards), fab.opts.MinShards, fab.opts.MaxShards,
		fab.Elastic(), fab.opts.Autoscale)
	vn := mem.ring.ownerCounts(len(mem.shards))
	fab.state.Lock()
	all := append([]*backend(nil), fab.backends...)
	fab.state.Unlock()
	for _, b := range all {
		vnodes := 0
		for i, a := range mem.shards {
			if a == b {
				vnodes = vn[i]
				break
			}
		}
		body += fmt.Sprintf("member %d phase %s limit %d ring %d vnodes %d\n",
			b.id, phaseName(b.phase.Load()), fab.limitOf(b.id), b.ring.depth(), vnodes)
		if line := b.srv.MLStatsLine(); line != "" {
			body += fmt.Sprintf("member %d %s\n", b.id, line)
		}
	}
	body += fmt.Sprintf("scale_ups %d scale_downs %d joins %d leaves %d stale_discarded %d handoff_topics %d handoff_subs %d\n",
		snap.Get("shard.scale_ups"), snap.Get("shard.scale_downs"),
		snap.Get("shard.member_joins"), snap.Get("shard.member_leaves"),
		snap.Get("shard.scale_stale_discarded"),
		snap.Get("shard.handoff_topics"), snap.Get("shard.handoff_subs"))
	body += fmt.Sprintf("conns %d rebalances %d\n",
		snap.Get("shard.conns"), snap.Get("shard.rebalances"))
	rw := snap.Histograms["shard.ring_wait_ticks"]
	var rwOver int64
	if n := len(rw.Counts); n > 0 {
		rwOver = rw.Counts[n-1] // claims past the largest bound: the tail the protocol bounds
	}
	body += fmt.Sprintf("fair_locks %v ring_waits %d ring_wait_over %d reply_spin %d reply_park %d\n",
		fab.opts.FairLocks, rw.Count, rwOver,
		snap.Get("shard.reply_spin"), snap.Get("shard.reply_park"))
	// Full wait bucket dumps (bound:count, last bucket = past the largest
	// bound) so the bench harness can record both distributions: ring
	// claim waits in claim-loop yields, reply waits in clock ticks.
	body += histLine("ring_wait_hist", rw)
	body += histLine("reply_wait_hist", snap.Histograms["shard.reply_wait_ticks"])
	body += fmt.Sprintf("steals %d stolen %d attempts %d aborts %d ring_expired %d\n",
		snap.Get("shard.steals"), snap.Get("shard.stolen"),
		snap.Get("shard.steal_attempts"), snap.Get("shard.steal_aborts"),
		snap.Get("shard.ring_expired"))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	body += fmt.Sprintf("pollers %d conns_parked %d poll_wakeups %d resume_batches %d\n",
		len(fab.pollers), snap.Get("serve.conns_parked"),
		snap.Get("serve.poll_wakeups"), snap.Histograms["serve.resume_batch"].Count)
	if fab.opts.PubSub {
		var ps pubsub.Stats
		for _, b := range all {
			s := b.broker.Stats()
			ps.Topics += s.Topics
			ps.Subs += s.Subs
			ps.Published += s.Published
			ps.Delivered += s.Delivered
			ps.QuotaDenied += s.QuotaDenied
			ps.DroppedSlow += s.DroppedSlow
		}
		body += fmt.Sprintf("pubsub topics %d subs %d published %d delivered %d quota_denied %d dropped_slow %d\n",
			ps.Topics, ps.Subs, ps.Published, ps.Delivered, ps.QuotaDenied, ps.DroppedSlow)
		body += fmt.Sprintf("stream_conns %d stream_frames %d routed_topic %d\n",
			snap.Get("shard.stream_conns"), snap.Get("shard.stream_frames"),
			snap.Get("shard.routed_topic"))
	}
	body += fmt.Sprintf("goroutines %d threads %d heap_alloc %d\n",
		runtime.NumGoroutine(), pprof.Lookup("threadcreate").Count(), ms.HeapAlloc)
	return serve.Response{Status: 200, Body: []byte(body)}
}

// isTimeout reports whether err is a network timeout.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
