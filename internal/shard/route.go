package shard

// Request routing.  The default discipline hashes the client's remote
// address once per connection; the hash is resolved against the current
// membership per batch, so a connection follows the active shard set
// (cheap, cache-friendly, no coordination).  Requests carrying the
// routing header (and pub/sub requests, by topic) instead consult a
// consistent-hash ring keyed on the member's *slot id*: sticky routing
// that survives reconfiguration — when a shard joins or leaves, only
// ~1/N of the key space moves, the classic consistent-hashing property.
// Keying vnodes on the slot rather than the active index is what makes
// the property hold under elasticity: a surviving member's points never
// move, whatever its position in the actives array.

import (
	"fmt"
	"sort"
)

// fnv1a is the 32-bit FNV-1a hash; written out here (it is four lines)
// so the routing layer carries no dependencies.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// chashRing is a consistent-hash ring: vnodes virtual points per member
// slot, sorted by hash; a key routes to the owner of the first point at
// or after the key's hash, wrapping at the top.  owner is an index into
// the membership's actives array, so a lookup against a snapshot is one
// sort.Search plus one slice index — no id translation on the hot path.
type chashRing struct {
	points []chashPoint
}

type chashPoint struct {
	hash  uint32
	owner int // index into membership.shards
}

// newChashRing builds the ring for the given member slots; slots[i] is
// the slot id of actives[i].  The hash input depends only on the slot
// id, never on i: a membership change re-labels owners but leaves every
// surviving slot's points exactly where they were.
func newChashRing(slots []int, vnodes int) *chashRing {
	r := &chashRing{points: make([]chashPoint, 0, len(slots)*vnodes)}
	for owner, s := range slots {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, chashPoint{
				hash:  fnv1a(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				owner: owner,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// lookup returns the actives index owning key.
func (r *chashRing) lookup(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner
}

// ownerCounts tallies vnode ownership per actives index — the /fabricz
// observability satellite's data.
func (r *chashRing) ownerCounts(n int) []int {
	counts := make([]int, n)
	for _, p := range r.points {
		if p.owner >= 0 && p.owner < n {
			counts[p.owner]++
		}
	}
	return counts
}
