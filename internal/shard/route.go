package shard

// Request routing.  The default discipline hashes the client's remote
// address once per connection, so a connection's requests all land on
// one shard (cheap, cache-friendly, no coordination).  Requests carrying
// the routing header instead consult a consistent-hash ring keyed on the
// header's value: sticky routing that survives reconfiguration — when
// the shard count changes, only ~1/N of the key space moves, the
// classic consistent-hashing property.

import (
	"fmt"
	"sort"
)

// fnv1a is the 32-bit FNV-1a hash; written out here (it is four lines)
// so the routing layer carries no dependencies.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// connShard routes a connection by remote-address hash.
func connShard(remote string, shards int) int {
	return int(fnv1a(remote) % uint32(shards))
}

// chashRing is a consistent-hash ring: vnodes virtual points per shard,
// sorted by hash; a key routes to the owner of the first point at or
// after the key's hash, wrapping at the top.
type chashRing struct {
	points []chashPoint
}

type chashPoint struct {
	hash  uint32
	shard int
}

func newChashRing(shards, vnodes int) *chashRing {
	r := &chashRing{points: make([]chashPoint, 0, shards*vnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, chashPoint{
				hash:  fnv1a(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// lookup returns the shard owning key.
func (r *chashRing) lookup(key string) int {
	h := fnv1a(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
