package shard

// Unit tests for the reply path's completion structures: the group
// countdown's open/seal bias accounting (cells may deliver before the
// final membership is known), and the adaptive spin discipline.

import (
	"testing"

	"repro/internal/serve"
)

// TestReplyGroupCompletesOnLastDelivery: a sealed group publishes
// exactly when its last member delivers, and each delivered cell's
// response is readable through the cell.
func TestReplyGroupCompletesOnLastDelivery(t *testing.T) {
	grp := &replyGroup{}
	grp.open()
	cells := make([]reply, 3)
	for i := range cells {
		cells[i] = reply{grp: grp}
	}
	cells[0].deliver(serve.Response{Status: 200, Body: []byte("a")})
	cells[1].deliver(serve.Response{Status: 404, Body: []byte("b")})
	grp.seal(3)
	if grp.done() {
		t.Fatal("group done with one member undelivered")
	}
	cells[2].deliver(serve.Response{Status: 200, Body: []byte("c")})
	if !grp.done() {
		t.Fatal("group not done after the last delivery")
	}
	for i, want := range []int{200, 404, 200} {
		if cells[i].resp.Status != want {
			t.Errorf("cell %d status %d, want %d", i, cells[i].resp.Status, want)
		}
	}
}

// TestReplyGroupToleratesEarlyDeliveryAndSheds is the open-bias
// contract: deliveries racing ahead of seal, and ring-full sheds that
// shrink the membership below the cells created, must both account
// correctly.
func TestReplyGroupToleratesEarlyDeliveryAndSheds(t *testing.T) {
	grp := &replyGroup{}
	grp.open()
	a := reply{grp: grp}
	_ = reply{grp: grp} // created, but its push will be shed
	a.deliver(serve.Response{Status: 200})
	// Only one cell actually reached a backend: membership is 1.
	grp.seal(1)
	if !grp.done() {
		t.Fatal("group not done: the shed cell must not count")
	}

	// Empty batch (everything shed or answered at the front): done at seal.
	grp.open()
	grp.seal(0)
	if !grp.done() {
		t.Fatal("empty membership must complete immediately")
	}

	// Reuse after completion: open re-arms.
	grp.open()
	if grp.done() {
		t.Fatal("freshly opened group reports done")
	}
	grp.seal(0)
}

// TestSpinWaitAdaptsBudget: a wait that overruns into parks halves the
// budget; spin-phase wins double it back toward the cap, never past it.
func TestSpinWaitAdaptsBudget(t *testing.T) {
	sp := newSpinState(64)
	if sp.budget != 64 || sp.min != 1 || sp.max != 64 {
		t.Fatalf("fresh state %+v", sp)
	}

	// Condition never holds during the spin phase: all 64 yields spent,
	// then parks until the 3rd park flips it.
	var parksSeen int
	cond := func() bool { return parksSeen >= 3 }
	spins, parks := spinWait(cond, &sp, func() {}, func(int64) { parksSeen++ })
	if spins != 64 || parks != 3 {
		t.Fatalf("spent (%d spins, %d parks), want (64, 3)", spins, parks)
	}
	if sp.budget != 32 {
		t.Errorf("budget after a parked wait = %d, want 32 (halved)", sp.budget)
	}

	// Repeated parked waits keep halving, floored at min.
	for i := 0; i < 10; i++ {
		parksSeen = 0
		spinWait(cond, &sp, func() {}, func(int64) { parksSeen++ })
	}
	if sp.budget != sp.min {
		t.Errorf("budget after sustained parking = %d, want floor %d", sp.budget, sp.min)
	}

	// A spin-phase win doubles the budget back toward the cap.
	yields := 0
	won, wonParks := spinWait(func() bool { return yields >= 1 }, &sp, func() { yields++ }, func(int64) { t.Fatal("parked on an imminent condition") })
	if won != 1 || wonParks != 0 {
		t.Fatalf("spent (%d spins, %d parks), want (1, 0)", won, wonParks)
	}
	if sp.budget != 2 {
		t.Errorf("budget after a spin win = %d, want 2 (doubled)", sp.budget)
	}
	for i := 0; i < 10; i++ {
		spinWait(func() bool { return true }, &sp, func() { t.Fatal("yielded on a true condition") }, nil)
	}
	if sp.budget != sp.max {
		t.Errorf("budget after sustained wins = %d, want cap %d", sp.budget, sp.max)
	}
}

// TestNoAllocsReplyPath: the steady-state completion machinery — group
// open/seal, cell delivery, the done poll, and a spin-phase wait — must
// not touch the heap; it runs once per forwarded batch on the hot path.
func TestNoAllocsReplyPath(t *testing.T) {
	grp := &replyGroup{}
	cells := make([]reply, 8)
	sp := newSpinState(64)
	if n := testing.AllocsPerRun(200, func() {
		grp.open()
		for i := range cells {
			cells[i].resp = serve.Response{}
			cells[i].done.Store(false)
			cells[i].grp = grp
		}
		for i := range cells {
			cells[i].deliver(serve.Response{Status: 200})
		}
		grp.seal(len(cells))
		spinWait(grp.done, &sp, func() {}, func(int64) {})
	}); n != 0 {
		t.Fatalf("reply completion path allocates %.1f times per batch", n)
	}
}

// TestSpinWaitChecksAfterEveryYield: a yield can cost a whole scheduler
// rotation, so the condition must be re-checked after each one — a wait
// whose condition holds after the Nth yield spends exactly N.
func TestSpinWaitChecksAfterEveryYield(t *testing.T) {
	sp := newSpinState(64)
	yields := 0
	spins, parks := spinWait(func() bool { return yields >= 3 }, &sp,
		func() { yields++ }, func(int64) { t.Fatal("parked") })
	if spins != 3 || parks != 0 {
		t.Errorf("spent (%d spins, %d parks), want (3, 0)", spins, parks)
	}
}

// TestSpinWaitGrowthClampedAtMax pins the doubling edge: a budget
// sitting above the cap (the cap can drop between waits when a state is
// rebuilt with a smaller ReplySpin) must saturate at max on a win, not
// double past it — and a budget at exactly max must stay there, never
// growing without bound.
func TestSpinWaitGrowthClampedAtMax(t *testing.T) {
	sp := spinState{budget: 1 << 40, min: 1, max: 64}
	spinWait(func() bool { return true }, &sp, nil, nil)
	if sp.budget != 64 {
		t.Errorf("oversized budget after a win = %d, want clamped to 64", sp.budget)
	}
	for i := 0; i < 5; i++ {
		spinWait(func() bool { return true }, &sp, nil, nil)
	}
	if sp.budget != 64 {
		t.Errorf("budget after sustained wins at the cap = %d, want 64", sp.budget)
	}
}

// TestSpinWaitRecoversFromZeroBudget pins the decay edge: a budget that
// reached 0 (the zero-value spinState, or a min of 0) must not stay 0
// forever — 0×2 = 0, so without the clamp such a wait never spins again
// and every future wait goes straight to a park.  A degenerate state
// must converge back into [1, max] and spin on its next waits.
func TestSpinWaitRecoversFromZeroBudget(t *testing.T) {
	var sp spinState // zero value: budget 0, min 0, max 0
	parked := 0
	spinWait(func() bool { return parked >= 1 }, &sp,
		func() { t.Fatal("yielded with a zero budget") }, func(int64) { parked++ })
	if sp.min < 1 || sp.max < 1 {
		t.Fatalf("degenerate bounds not normalized: %+v", sp)
	}
	if sp.budget < 1 {
		t.Fatalf("budget still %d after a parked wait; the floor must hold it ≥ 1", sp.budget)
	}
	// A win from the floor must grow the budget, proving 0 is escaped.
	spinWait(func() bool { return true }, &sp, nil, nil)
	if sp.budget < 1 {
		t.Fatalf("budget %d after a win; doubling from 0 must clamp up to ≥ 1", sp.budget)
	}
	yields := 0
	spins, _ := spinWait(func() bool { return yields >= 1 }, &sp,
		func() { yields++ }, func(int64) { t.Fatal("parked instead of spinning") })
	if spins != 1 {
		t.Errorf("recovered state spun %d, want 1", spins)
	}
}

// TestFairWaitIsMemoryless: the fair reply wait spends exactly the same
// bounded spin phase on every invocation — no adaptation, no history —
// and overruns into parks only past the fixed budget.
func TestFairWaitIsMemoryless(t *testing.T) {
	for round := 0; round < 3; round++ {
		parked := 0
		spins, parks := fairWait(func() bool { return parked >= 2 }, 8,
			func() {}, func(int64) { parked++ })
		if spins != 8 || parks != 2 {
			t.Fatalf("round %d spent (%d spins, %d parks), want (8, 2) every round", round, spins, parks)
		}
	}
	// Imminent conditions resolve inside the spin phase, no park.
	yields := 0
	spins, parks := fairWait(func() bool { return yields >= 3 }, 8,
		func() { yields++ }, func(int64) { t.Fatal("parked") })
	if spins != 3 || parks != 0 {
		t.Errorf("spent (%d spins, %d parks), want (3, 0)", spins, parks)
	}
	// A degenerate budget still spins at least once rather than parking
	// on every wait forever.
	yields = 0
	spins, _ = fairWait(func() bool { return yields >= 1 }, 0,
		func() { yields++ }, func(int64) { t.Fatal("parked with a clamped budget") })
	if spins != 1 {
		t.Errorf("zero budget spun %d, want 1 (clamped)", spins)
	}
}
