package shard

// Cross-shard request stealing: the complement to the rebalancer.  The
// rebalancer shifts proc *allowance* between shards, with hysteresis
// measured in whole rebalance periods — the right tool for sustained
// skew, useless for a burst that arrives and dies inside one period.
// Stealing moves the *queued work itself*: when a shard's intake finds
// its own ring empty, it claims a batch from the most-loaded sibling's
// ring and runs those requests here, deadlines rebased across clock
// domains exactly as the front's forward path rebases them.
//
// The claim/release discipline follows Chalmers & Pedersen's handoff
// for cooperatively scheduled runtimes: the thief takes the victim's
// ring spinlock with TryLock only, and aborts on contention instead of
// spinning — the lock being held means the owner (or another thief) is
// already draining that ring, so there is nothing worth waiting for,
// and a thief must never busy-spin on a foreign shard's hot lock.  Two
// further guards keep the protocol livelock-free: a shard only steals
// when its own ring is empty (thieves are idle by definition), and only
// from victims at or above StealMin occupancy (probed lock-free via the
// ring's atomic depth mirror), so near-empty rings are never fought
// over.

import (
	"repro/internal/proc"
)

// steal claims up to len(dst) jobs (half the victim's queue at most)
// from the most-loaded sibling ring, returning how many jobs landed in
// dst; 0 when no sibling is loaded enough or the claim aborted.  Called
// by shard b's intake thread — a backend-world proc, which is safe on
// both sides: stealN touches only the victim ring's spinlock (spinlocks
// never park on foreign schedulers), and the front-registry counters
// mask the proc index.
func (fab *Fabric) steal(b *backend, dst []job) int {
	// A member that is not active must not pull new work in: a joining
	// shard has not been probed, and a draining one is trying to empty —
	// a steal would re-fill the ring the release choreography waits on.
	if b.phase.Load() != phaseActive {
		return 0
	}
	// Victims come from the current membership: a drained-out member's
	// closed ring is never scanned.
	var victim *backend
	best := fab.opts.StealMin - 1
	for _, o := range fab.mem.Load().shards {
		if o == b {
			continue
		}
		if d := o.ring.depth(); d > best {
			best = d
			victim = o
		}
	}
	if victim == nil {
		return 0
	}
	self := proc.Self()
	fab.m.stealAttempts.Inc(self)
	n := victim.ring.stealN(dst)
	if n < 0 {
		fab.m.stealAborts.Inc(self)
		return 0
	}
	if n == 0 {
		// Drained between the lock-free probe and the claim; benign.
		return 0
	}
	fab.m.steals.Inc(self)
	fab.m.stolen.Add(self, int64(n))
	fab.m.stealBatch.Observe(self, int64(n))
	fab.emit(fab.evSteal, int64(victim.id))
	return n
}
