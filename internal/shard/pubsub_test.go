//go:build linux

package shard

// Pub/sub-through-the-fabric tests: topic-keyed routing pins a topic to
// one shard so publish and subscribe meet, streaming subscriptions are
// carried by both fronts (a connection thread pumping StreamResponse,
// and the mux pollers cycling StateStreaming), the drain cascade closes
// every stream with the chunked terminator after all acked publishes
// are delivered, and /fabricz aggregates the broker counters.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"
)

func pubsubOpts(extra func(*Options)) Options {
	opts := Options{
		Shards:         2,
		PubSub:         true,
		RebalanceTicks: NoRebalance,
	}
	if extra != nil {
		extra(&opts)
	}
	return opts
}

// streamSub is a live /subscribe connection reading chunked frames.
type streamSub struct {
	nc net.Conn
	br *bufio.Reader
	id string
}

func openSub(t *testing.T, addr, topic string) *streamSub {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(60 * time.Second))
	req := fmt.Sprintf("GET /subscribe?topic=%s HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n", topic)
	if _, err := nc.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	line, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(line, "200") {
		t.Fatalf("subscribe status line %q", line)
	}
	chunked := false
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(h) == "" {
			break
		}
		if strings.Contains(strings.ToLower(h), "transfer-encoding") &&
			strings.Contains(strings.ToLower(h), "chunked") {
			chunked = true
		}
	}
	if !chunked {
		t.Fatal("subscribe response is not chunked")
	}
	ss := &streamSub{nc: nc, br: br}
	frame, term := ss.next(t, 20*time.Second)
	if term || !strings.HasPrefix(frame, "id:") {
		t.Fatalf("first frame = %q (term=%v), want id:<n>", frame, term)
	}
	ss.id = frame[3:]
	return ss
}

// next returns one data frame, skipping heartbeat padding; term reports
// the chunked terminator.
func (ss *streamSub) next(t *testing.T, timeout time.Duration) (string, bool) {
	t.Helper()
	for {
		ss.nc.SetReadDeadline(time.Now().Add(timeout))
		line, err := ss.br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 32)
		if err != nil {
			t.Fatalf("bad chunk size %q", line)
		}
		if size == 0 {
			ss.br.ReadString('\n')
			return "", true
		}
		buf := make([]byte, size+2)
		if _, err := io.ReadFull(ss.br, buf); err != nil {
			t.Fatal(err)
		}
		if f := string(buf[:size]); f != "\n" {
			return f, false
		}
	}
}

// post issues one one-shot POST and returns the status.
func post(t *testing.T, addr, path string, body []byte) int {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(20 * time.Second))
	var b bytes.Buffer
	fmt.Fprintf(&b, "POST %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: %d\r\n\r\n", path, len(body))
	b.Write(body)
	if _, err := nc.Write(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(nc).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) < 2 {
		t.Fatalf("bad status line %q", line)
	}
	st, err := strconv.Atoi(parts[1])
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestPubSubTopicRoutedToOneShard: with two shards and no routing
// header on any request, a topic's subscribe and publish must still
// meet on one shard — the topic key routes through the consistent-hash
// ring ahead of the sticky header.  Several topics spread across both
// shards; every one must deliver.
func TestPubSubTopicRoutedToOneShard(t *testing.T) {
	tf := startFabric(t, pubsubOpts(nil), nil)
	const topics = 6
	subs := make([]*streamSub, topics)
	for i := range subs {
		subs[i] = openSub(t, tf.addr(), fmt.Sprintf("t%d", i))
	}
	for i := 0; i < topics; i++ {
		msg := fmt.Sprintf("payload-%d", i)
		if st := post(t, tf.addr(), fmt.Sprintf("/publish?topic=t%d", i), []byte(msg)); st != 200 {
			t.Fatalf("publish t%d: status %d", i, st)
		}
		if frame, term := subs[i].next(t, 20*time.Second); term || frame != msg {
			t.Fatalf("topic t%d: frame = %q (term=%v), want %q", i, frame, term, msg)
		}
	}
	if got := tf.fab.FrontMetrics().Snapshot().Get("shard.routed_topic"); got < int64(2*topics) {
		t.Errorf("shard.routed_topic = %d, want >= %d (every pub/sub op topic-routed)", got, 2*topics)
	}
}

// TestPubSubStreamingOnConnThreadFront: subscribe, receive a burst,
// unsubscribe, and read the clean terminator — the conn-thread front's
// StreamResponse pump end to end.
func TestPubSubStreamingOnConnThreadFront(t *testing.T) {
	tf := startFabric(t, pubsubOpts(nil), nil)
	ss := openSub(t, tf.addr(), "burst")
	for i := 0; i < 5; i++ {
		if st := post(t, tf.addr(), "/publish?topic=burst", []byte(fmt.Sprintf("b%d", i))); st != 200 {
			t.Fatalf("publish %d: status %d", i, st)
		}
	}
	for i := 0; i < 5; i++ {
		if frame, term := ss.next(t, 20*time.Second); term || frame != fmt.Sprintf("b%d", i) {
			t.Fatalf("frame %d = %q (term=%v)", i, frame, term)
		}
	}
	if st := post(t, tf.addr(), "/unsubscribe?topic=burst&id="+ss.id, nil); st != 200 {
		t.Fatalf("unsubscribe: status %d", st)
	}
	if _, term := ss.next(t, 20*time.Second); !term {
		t.Fatal("no chunked terminator after unsubscribe")
	}
	if got := tf.fab.FrontMetrics().Snapshot().Get("shard.stream_frames"); got < 5 {
		t.Errorf("shard.stream_frames = %d, want >= 5", got)
	}
}

// TestPubSubStreamingOnMuxFront: the same contract under the poller
// pool — subscriptions held as parked StateStreaming machines, frames
// pumped by pollers, terminator on unsubscribe.
func TestPubSubStreamingOnMuxFront(t *testing.T) {
	tf := startFabric(t, pubsubOpts(func(o *Options) {
		o.Mux = true
		o.Pollers = 2
	}), nil)
	const nsubs = 4
	subs := make([]*streamSub, nsubs)
	for i := range subs {
		subs[i] = openSub(t, tf.addr(), "mx")
	}
	for i := 0; i < 3; i++ {
		if st := post(t, tf.addr(), "/publish?topic=mx", []byte(fmt.Sprintf("m%d", i))); st != 200 {
			t.Fatalf("publish %d: status %d", i, st)
		}
	}
	for si, ss := range subs {
		for i := 0; i < 3; i++ {
			if frame, term := ss.next(t, 30*time.Second); term || frame != fmt.Sprintf("m%d", i) {
				t.Fatalf("sub %d frame %d = %q (term=%v)", si, i, frame, term)
			}
		}
	}
	if st := post(t, tf.addr(), "/unsubscribe?topic=mx&id="+subs[0].id, nil); st != 200 {
		t.Fatalf("unsubscribe: status %d", st)
	}
	if _, term := subs[0].next(t, 30*time.Second); !term {
		t.Fatal("no chunked terminator after unsubscribe on the mux front")
	}
	snap := tf.fab.FrontMetrics().Snapshot()
	if got := snap.Get("shard.stream_conns"); got != nsubs-1 {
		t.Errorf("shard.stream_conns = %d, want %d still held", got, nsubs-1)
	}
	if got := snap.Get("shard.stream_frames"); got < 3*nsubs {
		t.Errorf("shard.stream_frames = %d, want >= %d", got, 3*nsubs)
	}
}

// TestPubSubDrainDeliversAckedThenCloses is the fabric-level zero-loss
// drain: every publish acked before the cascade must reach every
// subscriber before its stream ends with the terminator, on both fronts.
func TestPubSubDrainDeliversAckedThenCloses(t *testing.T) {
	for _, front := range []string{"conn", "mux"} {
		front := front
		t.Run(front, func(t *testing.T) {
			tf := startFabric(t, pubsubOpts(func(o *Options) {
				if front == "mux" {
					o.Mux = true
					o.Pollers = 2
				}
			}), nil)
			const nsubs, npubs = 3, 4
			subs := make([]*streamSub, nsubs)
			for i := range subs {
				subs[i] = openSub(t, tf.addr(), "dz")
			}
			for i := 0; i < npubs; i++ {
				if st := post(t, tf.addr(), "/publish?topic=dz", []byte(fmt.Sprintf("d%d", i))); st != 200 {
					t.Fatalf("publish %d: status %d", i, st)
				}
			}
			tf.drainAndWait(t)
			for si, ss := range subs {
				got := 0
				for {
					frame, term := ss.next(t, 20*time.Second)
					if term {
						break
					}
					if want := fmt.Sprintf("d%d", got); frame != want {
						t.Fatalf("sub %d frame %d = %q, want %q", si, got, frame, want)
					}
					got++
				}
				if got != npubs {
					t.Errorf("sub %d saw %d of %d acked publishes before the terminator", si, got, npubs)
				}
			}
		})
	}
}

// TestFabriczAggregatesPubsubCounters: the status page shows the
// broker's aggregate and the front's streaming instruments.
func TestFabriczAggregatesPubsubCounters(t *testing.T) {
	tf := startFabric(t, pubsubOpts(nil), nil)
	ss := openSub(t, tf.addr(), "st")
	if st := post(t, tf.addr(), "/publish?topic=st", []byte("x")); st != 200 {
		t.Fatal("publish failed")
	}
	if frame, term := ss.next(t, 20*time.Second); term || frame != "x" {
		t.Fatalf("frame = %q (term=%v)", frame, term)
	}
	kc := dialKA(t, tf.addr())
	if err := kc.send("/fabricz", "Connection: close"); err != nil {
		t.Fatal(err)
	}
	st, body, err := kc.recv(10 * time.Second)
	if err != nil || st != 200 {
		t.Fatalf("status %d err %v", st, err)
	}
	for _, want := range []string{"pubsub topics 1", "subs 1", "published 1", "delivered 1", "stream_conns 1", "routed_topic"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/fabricz body missing %q:\n%s", want, body)
		}
	}
}
