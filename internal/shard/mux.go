package shard

// The event-multiplexed front: a fixed pool of poller MP threads, each
// owning a netpoll.Poller (epoll on linux) and driving many resumable
// serve.Conn state machines — the paper's thesis applied to connections
// instead of threads.  Where the per-connection-thread front pins an MP
// thread (plus stacks of scratch) to every accepted socket, a poller
// thread multiplexes thousands: an idle keep-alive connection costs only
// its parked muxConn (a trimmed residual buffer and a few clock ticks of
// bookkeeping), so the connection ceiling moves from "threads the front
// can sustain" to "file descriptors the process may hold".
//
// Ownership is strictly partitioned: the acceptor hands each admitted
// socket to one poller (round-robin through a locked inbox, the only
// cross-thread structure here) and from then on that poller alone
// touches the connection — its fd table, free lists, and scratch are
// single-owner, so the hot path takes no locks at all.  Forwarding rides
// the exact same route/push/reply-group machinery as connection threads
// (front.go's forwardBatch/collectBatch); the only difference is that a
// poller never blocks on a reply group — dispatched connections sit on a
// list the poller sweeps between readiness waits, so one stalled shard
// cannot stop every other connection's progress.
//
// The purity rule holds: poller threads are front MP threads
// (threads.Fork), the inbox is a core spinlock, and all socket I/O is
// raw fd reads/writes through serve's resumable path — no goroutines,
// channels, or runtime netpoller involvement.

import (
	"errors"
	"net"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netpoll"
	"repro/internal/proc"
	"repro/internal/serve"
)

// muxInbox is the acceptor→poller handoff: the only structure in the
// mux shared across threads, guarded by a core spinlock.
type muxInbox struct {
	lock core.Lock
	nc   []net.Conn
}

// frame is one in-flight dispatch batch: the scratch a connection
// thread kept on its stack, made heap state so a connection can park in
// StateDispatched while its batch crosses the shard boundary.  Frames
// are pooled per poller and released the moment the batch's responses
// are staged, so the frame population tracks in-flight batches, not
// connections.
type frame struct {
	reqs    []*serve.Request
	pend    []pendingReply
	jbuf    []job
	cells   []reply
	resps   []serve.Response
	grp     replyGroup
	badTail serve.Response // 400/413 for a poisoned pipelined successor
	next    *frame         // free list
}

// muxConn is one poller-owned connection: the resumable serve.Conn plus
// the routing, idle, and write-cap bookkeeping its former thread kept in
// locals.  This struct (and the Conn's trimmed buffers) is the entire
// per-idle-connection cost of the multiplexed front.
type muxConn struct {
	c         *serve.Conn
	nc        net.Conn
	fd        int
	chash     uint32 // connection route hash, resolved per batch
	served    int    // responses written on this connection
	idleAt    int64  // front tick the conn last became idle
	wrCap     int64  // write deadline (ticks) for the staged batch
	fr        *frame
	keepAlive bool
	closing   bool // close after the staged write drains
	wantWrite bool // current poller interest includes writability
	queued    bool // already on this pass's ready list

	// Streaming subscriber state: the response's frame source, whether
	// the connection is in a stream's grip, the last tick bytes went out
	// (heartbeat accounting), and list membership for pumpStreams.  A
	// muxConn may be recycled while still on the stream list —
	// inStreamList survives Reset and the next pump pass reconciles it.
	stream       serve.Streamer
	streaming    bool
	streamLast   int64
	inStreamList bool

	next *muxConn // free list
}

// poller is one poller thread's world: its netpoll instance, inbox, fd
// table, and free lists.  Everything except the inbox is single-owner.
type poller struct {
	id    int
	np    *netpoll.Poller
	inbox muxInbox

	conns       []*muxConn // fd-indexed ownership table
	owned       int
	dispatched  []*muxConn // conns parked in StateDispatched
	dispNext    []*muxConn // double buffer for the completion sweep
	ready       []*muxConn
	streams     []*muxConn // conns held by a streaming response
	streamsNext []*muxConn // double buffer for the stream pump's compaction
	chunk       [][]byte   // frame burst scratch for StageChunks
	evs         []netpoll.Event
	scratch     []byte     // shared read block for every owned conn
	take        []net.Conn // inbox drain scratch
	one         [1]serve.Response

	freeConns  *muxConn
	freeFrames *frame
	lastScan   int64
	parkedRep  int64 // conns_parked contribution already reported
}

// newPoller builds one poller thread's world.  The inbox guard comes
// from the caller: a plain spin lock by default, the FIFO claim/release
// lock under Options.FairLocks — the accept inbox is the mux front's
// one cross-thread lock, so under a connection storm it is where an
// unfair TAS race would starve one side.
func newPoller(id int, lockf core.LockFactory) (*poller, error) {
	np, err := netpoll.New()
	if err != nil {
		return nil, err
	}
	return &poller{id: id, np: np, inbox: muxInbox{lock: lockf()}}, nil
}

// enqueueConn hands an accepted socket to poller p (called by the
// acceptor, the one producer).
func (p *poller) enqueueConn(nc net.Conn) {
	p.inbox.lock.Lock()
	p.inbox.nc = append(p.inbox.nc, nc)
	p.inbox.lock.Unlock()
}

// rawFD borrows a connection's file descriptor.  Go's accepted sockets
// are already non-blocking; Control only guarantees validity during the
// callback, but the fd cannot change for the socket's lifetime and the
// poller closes the conn itself, so caching it is sound.  (net.TCPConn's
// File() is NOT usable here: it duplicates the fd and flips it to
// blocking.)
func rawFD(nc net.Conn) (int, bool) {
	sc, ok := nc.(syscall.Conn)
	if !ok {
		return -1, false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return -1, false
	}
	fd := -1
	rc.Control(func(f uintptr) { fd = int(f) })
	return fd, fd >= 0
}

// pollerMain is one poller thread's loop: adopt new connections, wait
// for readiness, resume ready machines, collect completed dispatches,
// and periodically sweep deadlines.  It exits once the fabric is
// draining, the acceptor can enqueue no more, and every owned
// connection has closed.
func (fab *Fabric) pollerMain(p *poller) {
	p.evs = make([]netpoll.Event, 256)
	p.scratch = make([]byte, 32<<10)
	pollMS := int(fab.opts.PollWindow / time.Millisecond)
	if pollMS < 1 {
		pollMS = 1
	}
	idleRounds := 0
	for {
		self := proc.Self()

		// Adopt: drain the inbox under its lock, register outside it.
		p.inbox.lock.Lock()
		p.take = append(p.take[:0], p.inbox.nc...)
		for i := range p.inbox.nc {
			p.inbox.nc[i] = nil
		}
		p.inbox.nc = p.inbox.nc[:0]
		p.inbox.lock.Unlock()
		for i, nc := range p.take {
			fab.adoptConn(p, nc)
			p.take[i] = nil
		}

		// Wait for readiness.  With dispatched batches pending the wait
		// must not block — their completion comes from backend procs, not
		// from this epoll set.
		timeout := pollMS
		if len(p.dispatched) > 0 {
			timeout = 0
		}
		n, _ := p.np.Wait(p.evs, timeout)
		if n > 0 {
			fab.m.pollWakeups.Inc(self)
		}

		// Classify events into the ready list.  Dispatched conns are
		// skipped (level-triggered epoll will re-report); writing conns
		// resume only for writability or a dead peer.
		p.ready = p.ready[:0]
		for i := 0; i < n; i++ {
			ev := p.evs[i]
			if ev.FD < 0 || ev.FD >= len(p.conns) {
				continue
			}
			mc := p.conns[ev.FD]
			if mc == nil || mc.queued {
				continue
			}
			switch mc.c.State() {
			case serve.StateDispatched:
				continue
			case serve.StateStreaming:
				// A streaming conn never joins the ready list — the stream
				// pump owns its writes.  Events only matter as liveness: a
				// dead peer closes it, client bytes are discarded.
				if ev.Closed {
					fab.closeMuxConn(p, mc)
				} else if ev.Readable && mc.c.ProbeDiscard(p.scratch) != nil {
					fab.closeMuxConn(p, mc)
				}
				continue
			case serve.StateWriting:
				if !ev.Writable && !ev.Closed {
					continue
				}
			}
			mc.queued = true
			p.ready = append(p.ready, mc)
		}
		progress := len(p.ready) > 0
		if progress {
			fab.m.resumeBatch.Observe(self, int64(len(p.ready)))
		}
		for i, mc := range p.ready {
			mc.queued = false
			fab.resumeConn(p, mc)
			p.ready[i] = nil
		}

		// Completed dispatches: poll each parked batch's reply group.
		// Double-buffered because resuming a finished connection can
		// dispatch its next pipelined batch, appending to p.dispatched.
		work := p.dispatched
		p.dispatched = p.dispNext[:0]
		for i, mc := range work {
			work[i] = nil
			if mc.fr.grp.done() {
				progress = true
				fab.finishDispatch(p, mc)
				fab.resumeConn(p, mc)
			} else {
				p.dispatched = append(p.dispatched, mc)
			}
		}
		p.dispNext = work[:0]

		// Stream pump: advance every streaming subscriber whose staged
		// bytes have drained — pull a frame burst, stage it as chunks,
		// drive the write inline.
		now := fab.clock.Now()
		if fab.pumpStreams(p, now) {
			progress = true
		}

		// Deadline sweep: cheap and periodic.  Under drain it runs every
		// pass — parked connections get no events, so the sweep is what
		// pushes them through their abort/close paths.
		draining := fab.Draining()
		if draining || now-p.lastScan >= fab.opts.IdleScanTicks {
			p.lastScan = now
			fab.sweepConns(p, now)
		}

		// conns_parked gauge: owned connections not in a dispatch.
		parked := int64(p.owned - len(p.dispatched))
		if parked != p.parkedRep {
			fab.m.connsParked.Add(self, parked-p.parkedRep)
			p.parkedRep = parked
		}

		if draining && p.owned == 0 {
			fab.state.Lock()
			accDone := fab.acceptorDone
			fab.state.Unlock()
			p.inbox.lock.Lock()
			empty := len(p.inbox.nc) == 0
			p.inbox.lock.Unlock()
			if accDone && empty {
				if p.parkedRep != 0 {
					fab.m.connsParked.Add(self, -p.parkedRep)
					p.parkedRep = 0
				}
				p.np.Close()
				return
			}
		}

		fab.frontSys.CheckPreempt()
		// Reply-wait discipline, the poller analogue of spinWait: while
		// dispatches are pending, busy passes (Wait timeout 0) poll the
		// groups; after ReplySpin fruitless passes, nap a fraction of a
		// tick so a saturated shard doesn't cost a spinning proc.
		if len(p.dispatched) > 0 && !progress {
			idleRounds++
			if idleRounds > fab.opts.ReplySpin {
				time.Sleep(fab.opts.Tick / 4)
			}
		} else {
			idleRounds = 0
		}
		fab.frontSys.Yield()
	}
}

// adoptConn takes ownership of an accepted socket: bind (or recycle) a
// muxConn, cache the raw fd, and register read interest.  The acceptor
// already counted the connection; a registration failure uncounts it.
func (fab *Fabric) adoptConn(p *poller, nc net.Conn) {
	fd, ok := rawFD(nc)
	if ok {
		ok = p.np.Add(fd, false) == nil
	}
	if !ok {
		nc.Close()
		fab.m.conns.Add(proc.Self(), -1)
		fab.m.acceptErrs.Inc(proc.Self())
		fab.state.Lock()
		fab.activeConns--
		fab.state.Unlock()
		return
	}
	mc := p.freeConns
	if mc != nil {
		p.freeConns = mc.next
		mc.next = nil
		mc.c.Reset(nc, fd)
	} else {
		mc = &muxConn{c: serve.NewConn(nc, fab.ccfg)}
		mc.c.SetFD(fd)
	}
	mc.nc = nc
	mc.fd = fd
	mc.chash = fnv1a(nc.RemoteAddr().String())
	mc.served = 0
	mc.idleAt = fab.clock.Now()
	mc.wrCap = 0
	mc.keepAlive = false
	mc.closing = false
	mc.wantWrite = false
	mc.queued = false
	mc.stream = nil
	mc.streaming = false
	mc.streamLast = 0 // inStreamList stays: the pump pass reconciles it
	for fd >= len(p.conns) {
		p.conns = append(p.conns, nil)
	}
	p.conns[fd] = mc
	p.owned++
}

// resumeConn drives one connection's state machine until it parks
// again: read requests while bytes flow, dispatch full batches, drain
// staged writes, loop straight back to reading when pipelined residue
// is already buffered.
func (fab *Fabric) resumeConn(p *poller, mc *muxConn) {
	for {
		switch mc.c.State() {
		case serve.StateDispatched:
			return // completion sweep owns this transition
		case serve.StateStreaming:
			return // the stream pump owns this transition
		case serve.StateWriting:
			if !fab.muxWrite(p, mc) {
				return
			}
		default: // StateIdle, StateReading
			if !fab.muxRead(p, mc) {
				return
			}
		}
	}
}

// muxRead advances the read phase: poll for a parsed request, gather
// every fully-buffered pipelined successor, and forward the batch.  It
// returns true when the caller should keep driving the machine (a batch
// finished inline, or an error response was staged) and false when the
// connection parked or closed.
func (fab *Fabric) muxRead(p *poller, mc *muxConn) bool {
	headBudget := fab.opts.DeadlineTicks
	if mc.served > 0 {
		headBudget = fab.opts.IdleTicks
	}
	req, err := mc.c.PollRead(p.scratch, mc.idleAt+headBudget, fab.opts.DeadlineTicks)
	if err != nil {
		if err == serve.ErrWouldBlock {
			return false
		}
		return fab.muxReadErr(p, mc, err)
	}
	fr := p.getFrame(fab.opts.BatchMax)
	mc.fr = fr
	fr.reqs = append(fr.reqs[:0], req)
	var rerr error
	for len(fr.reqs) < fab.opts.BatchMax && !fr.reqs[len(fr.reqs)-1].Close {
		nxt, ok, e := mc.c.ReadBuffered(fab.opts.DeadlineTicks)
		if e != nil {
			rerr = e
			break
		}
		if !ok {
			break
		}
		fr.reqs = append(fr.reqs, nxt)
	}
	if rerr != nil {
		// Poisoned pipeline: answer the malformed successor and close
		// after the batch's write, exactly as a connection thread would.
		fr.badTail = serve.Response{Status: 400, Body: []byte("malformed request\n")}
		if errors.Is(rerr, serve.ErrTooLarge) {
			fr.badTail = serve.Response{Status: 413, Body: []byte("request too large\n")}
		}
	}
	last := fr.reqs[len(fr.reqs)-1]
	mc.keepAlive = rerr == nil && !last.Close && !fab.Draining()
	mc.wrCap = last.Deadline + 20
	fr.grp.open()
	members := fab.forwardBatch(fr.reqs, mc.chash, fr.pend, fr.jbuf, fr.cells, &fr.grp)
	fr.grp.seal(members)
	mc.c.SetState(serve.StateDispatched)
	if fr.grp.done() { // all answered inline (/fabricz, ring-full sheds)
		fab.finishDispatch(p, mc)
		return true
	}
	p.dispatched = append(p.dispatched, mc)
	return false
}

// muxReadErr is the connection-thread error taxonomy, resumable form:
// silent closes happen now; answered errors stage their response and
// let the write phase (and closing flag) finish the job.
func (fab *Fabric) muxReadErr(p *poller, mc *muxConn, err error) bool {
	var resp serve.Response
	switch {
	case errors.Is(err, serve.ErrDeadline):
		if mc.served > 0 && !mc.c.Partial() {
			fab.closeMuxConn(p, mc)
			return false
		}
		resp = serve.Response{Status: 504, Body: []byte("deadline exceeded reading request\n")}
	case errors.Is(err, serve.ErrAborted):
		if !mc.c.Partial() {
			fab.closeMuxConn(p, mc)
			return false
		}
		resp = serve.Response{
			Status:     503,
			Body:       []byte("shedding load: draining\n"),
			RetryAfter: fab.opts.RetryAfter,
		}
	case errors.Is(err, serve.ErrTooLarge):
		resp = serve.Response{Status: 413, Body: []byte("request too large\n")}
	case errors.Is(err, serve.ErrBadRequest):
		resp = serve.Response{Status: 400, Body: []byte("malformed request\n")}
	default: // EOF, resets
		fab.closeMuxConn(p, mc)
		return false
	}
	mc.closing = true
	mc.wrCap = fab.clock.Now() + 20
	p.one[0] = resp
	mc.c.StageResponses(p.one[:], false)
	p.one[0] = serve.Response{}
	return true
}

// finishDispatch collects a completed batch's responses in request
// order, stages them on the connection, and releases the frame — the
// frame's lifetime is exactly forward→stage, so frames track in-flight
// batches, not connections.
func (fab *Fabric) finishDispatch(p *poller, mc *muxConn) {
	fr := mc.fr
	resps := fab.collectBatch(fr.reqs, fr.pend, nil, fr.resps[:0])
	if fr.badTail.Status != 0 {
		resps = append(resps, fr.badTail)
		mc.closing = true
	}
	if si := streamIndex(resps); si >= 0 && !mc.closing {
		fab.startMuxStream(p, mc, resps, si)
	} else {
		for i := range resps {
			if resps[i].Stream != nil { // poisoned batch: never stream, never leak
				resps[i].Stream.Cancel()
			}
		}
		mc.c.StageResponses(resps, mc.keepAlive)
	}
	mc.served += len(resps)
	fr.resps = resps // keep the (possibly grown) backing array with the frame
	mc.fr = nil
	p.putFrame(fr)
}

// muxStreamBatch caps frames staged per stream per pump pass, bounding
// the staged bytes a parked subscriber can pin (serve's own flush bound
// is the same figure).
const muxStreamBatch = 32

// muxHB is the heartbeat frame: StageChunks renders it as the same
// 1-byte chunk the blocking face writes.
var muxHB = [][]byte{[]byte("\n")}

// startMuxStream converts a completed dispatch carrying a streaming
// response into a parked subscriber: responses ahead of the stream plus
// the chunked header are staged in one write, the connection joins the
// poller's stream list, and keep-alive ends — a stream takes the
// connection to its close.  Streams pipelined behind the first are
// canceled, exactly as the blocking fronts do.
func (fab *Fabric) startMuxStream(p *poller, mc *muxConn, resps []serve.Response, si int) {
	sresp := resps[si]
	for _, r := range resps[si+1:] {
		if r.Stream != nil {
			r.Stream.Cancel()
		}
	}
	mc.c.StageStream(resps[:si], sresp)
	mc.stream = sresp.Stream
	mc.streaming = true
	mc.streamLast = fab.clock.Now()
	mc.keepAlive = false
	mc.wrCap = mc.streamLast + fab.opts.DeadlineTicks
	fab.m.streamConns.Inc(proc.Self())
	if !mc.inStreamList {
		mc.inStreamList = true
		p.streams = append(p.streams, mc)
	}
}

// pumpStreams advances every streaming connection whose staged bytes
// have drained (machine parked in StateStreaming): pull a bounded frame
// burst, stage it as chunks — the terminator too, when the source
// closed — and drive the write inline.  Quiet streams past the
// heartbeat budget get the 1-byte chunk that doubles as dead-peer
// detection.  The list compacts as connections leave streaming (closed
// peers, recycled muxConns); membership is reconciled here and nowhere
// else.
func (fab *Fabric) pumpStreams(p *poller, now int64) bool {
	if len(p.streams) == 0 {
		return false
	}
	self := proc.Self()
	progress := false
	keep := p.streamsNext[:0]
	for i, mc := range p.streams {
		p.streams[i] = nil
		if !mc.streaming {
			mc.inStreamList = false
			continue
		}
		keep = append(keep, mc)
		if mc.c.State() != serve.StateStreaming {
			continue // staged burst still draining; muxWrite re-parks it here
		}
		p.chunk = p.chunk[:0]
		final := false
		for len(p.chunk) < muxStreamBatch {
			f, ok, open := mc.stream.Pull()
			if ok {
				p.chunk = append(p.chunk, f)
				continue
			}
			final = !open
			break
		}
		switch {
		case len(p.chunk) > 0 || final:
			progress = true
			if len(p.chunk) > 0 {
				fab.m.streamFrames.Add(self, int64(len(p.chunk)))
			}
			mc.c.StageChunks(p.chunk, final)
			if final {
				mc.closing = true
				mc.stream = nil // fully drained; nothing left to cancel
			}
			mc.streamLast = now
			mc.wrCap = now + fab.opts.DeadlineTicks
			fab.muxWrite(p, mc)
		case fab.opts.HeartbeatTicks > 0 && now-mc.streamLast >= fab.opts.HeartbeatTicks:
			mc.c.StageChunks(muxHB, false)
			mc.streamLast = now
			mc.wrCap = now + fab.opts.DeadlineTicks
			fab.muxWrite(p, mc)
		}
	}
	for i := range p.chunk {
		p.chunk[i] = nil
	}
	p.streamsNext = p.streams[:0]
	p.streams = keep
	return progress
}

// muxWrite drains the staged write.  True means "keep driving" — the
// batch flushed and pipelined residue is already buffered; false means
// the connection parked on writability, went idle, or closed.
func (fab *Fabric) muxWrite(p *poller, mc *muxConn) bool {
	done, err := mc.c.PollWrite()
	if err != nil {
		fab.closeMuxConn(p, mc)
		return false
	}
	if !done {
		fab.setWriteInterest(p, mc, true)
		return false
	}
	fab.setWriteInterest(p, mc, false)
	if mc.streaming && !mc.closing {
		// The staged burst drained; the machine parks in StateStreaming
		// until the pump stages the next one.
		mc.c.SetState(serve.StateStreaming)
		return false
	}
	if mc.closing || !mc.keepAlive {
		fab.closeMuxConn(p, mc)
		return false
	}
	mc.c.ParkIdle()
	mc.idleAt = fab.clock.Now()
	// A pipelined successor already buffered generates no epoll event;
	// loop straight back into the read phase.
	return mc.c.Partial()
}

// setWriteInterest toggles EPOLLOUT, skipping the syscall when the
// interest already matches — the hot path (writes that never block)
// never touches epoll_ctl.
func (fab *Fabric) setWriteInterest(p *poller, mc *muxConn, on bool) {
	if mc.wantWrite == on {
		return
	}
	mc.wantWrite = on
	p.np.Modify(mc.fd, on)
}

// sweepConns walks the fd table pushing expired connections through the
// state machine: an idle or mid-read conn past its deadline resumes
// into PollRead, which surfaces ErrDeadline (or ErrAborted under drain)
// and runs the normal error path; a staged write past its cap closes.
// The walk is O(owned) and runs every IdleScanTicks (every pass under
// drain), so its cost amortizes to noise.
func (fab *Fabric) sweepConns(p *poller, now int64) {
	draining := fab.Draining()
	for _, mc := range p.conns {
		if mc == nil || mc.queued {
			continue
		}
		switch mc.c.State() {
		case serve.StateDispatched:
			continue // the backend always answers; completion sweep finishes it
		case serve.StateStreaming:
			continue // liveness is the heartbeat's job; drain closes the source
		case serve.StateWriting:
			if now >= mc.wrCap {
				fab.closeMuxConn(p, mc)
			}
			continue
		}
		expired := false
		if dl, started := mc.c.ReadDeadline(); started {
			expired = now >= dl
		} else {
			headBudget := fab.opts.DeadlineTicks
			if mc.served > 0 {
				headBudget = fab.opts.IdleTicks
			}
			expired = now >= mc.idleAt+headBudget
		}
		if expired || draining {
			fab.resumeConn(p, mc)
		}
	}
}

// closeMuxConn releases a connection: deregister before close (never
// rely on close's implicit epoll removal), uncount, and recycle the
// muxConn.  Callers guarantee the conn is not in StateDispatched — a
// dispatched conn's cells are live backend targets and must complete
// before the muxConn can be reused.
func (fab *Fabric) closeMuxConn(p *poller, mc *muxConn) {
	p.np.Remove(mc.fd)
	mc.nc.Close()
	if mc.fd >= 0 && mc.fd < len(p.conns) {
		p.conns[mc.fd] = nil
	}
	p.owned--
	fab.m.conns.Add(proc.Self(), -1)
	fab.state.Lock()
	fab.activeConns--
	fab.state.Unlock()
	if mc.fr != nil { // staged-error paths never hold one; belt and braces
		p.putFrame(mc.fr)
		mc.fr = nil
	}
	if mc.streaming {
		if mc.stream != nil {
			mc.stream.Cancel()
			mc.stream = nil
		}
		mc.streaming = false // pumpStreams drops the list entry next pass
		fab.m.streamConns.Add(proc.Self(), -1)
	}
	mc.c.Reset(nil, -1)
	mc.nc = nil
	mc.fd = -1
	mc.next = p.freeConns
	p.freeConns = mc
}

// getFrame takes a pooled dispatch frame or builds one sized to the
// batch bound (forwardBatch indexes pend/jbuf/cells by request slot, so
// they carry full length, not just capacity).
func (p *poller) getFrame(batchMax int) *frame {
	if fr := p.freeFrames; fr != nil {
		p.freeFrames = fr.next
		fr.next = nil
		return fr
	}
	return &frame{
		reqs:  make([]*serve.Request, 0, batchMax),
		pend:  make([]pendingReply, batchMax),
		jbuf:  make([]job, batchMax),
		cells: make([]reply, batchMax),
		resps: make([]serve.Response, 0, batchMax+1),
	}
}

// putFrame clears the frame's references (request pointers, delivered
// responses, reply cells) and returns it to the free list.
func (p *poller) putFrame(fr *frame) {
	fr.reqs = fr.reqs[:0]
	for i := range fr.cells {
		fr.cells[i] = reply{}
	}
	for i := range fr.resps {
		fr.resps[i] = serve.Response{}
	}
	fr.resps = fr.resps[:0]
	fr.badTail = serve.Response{}
	fr.next = p.freeFrames
	p.freeFrames = fr
}
