// Package shard is the sharded serving fabric: N independent
// serve.Server shards — each with its own proc platform, thread system,
// metrics registry, and trace rings — behind one front acceptor that
// demultiplexes persistent HTTP/1.1 keep-alive connections onto them.
//
// The front is itself a small MP world (its own platform + system): an
// acceptor thread admits connections, a connection thread per client
// reads pipelined requests through serve.Conn, routes each to a shard
// (connection hash by default, consistent hashing on a routing header
// for sticky workloads), and forwards it over that shard's MPSC ring; a
// per-shard intake thread — an MP thread of the *backend's* system —
// pops the ring and injects the request into the shard's admission
// pipeline with serve.Server.Submit.  Replies travel back through a
// single-assignment cell the forwarding thread parks on.  The packages'
// purity rule extends here: no go statements, no channels, no select, no
// net/http, no sync (the go/scanner test in purity_test.go enforces it);
// the only OS-level concurrency is the host calling each element of
// Runners in its own goroutine, exactly as every System.Run host already
// must.
//
// A rebalancer thread on the front system implements scheduling policy
// in the language, the paper's thesis applied across shards: every
// RebalanceTicks it reads each shard's queue-depth and in-flight gauges
// from the metrics spine, and when load skews past a slack threshold for
// HysteresisRounds consecutive readings it shifts one proc of allowance
// from the least- to the most-loaded shard via proc.SetLimit — global
// total conserved, no shard below its floor, and the donor's procs
// release themselves only at safe points (§3.1 revocation).
//
// Drain cascades: the front stops accepting, connection threads finish
// the request in flight (forwarded requests are always answered — the
// reply cell is single-assignment and the backend delivers exactly
// once), idle connections close, and only when the front counts zero
// active connections are the backends drained, so no in-flight request
// is ever dropped.
package shard

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/cml"
	"repro/internal/core"
	"repro/internal/gcsync"
	"repro/internal/metrics"
	"repro/internal/mlio"
	"repro/internal/proc"
	"repro/internal/pubsub"
	"repro/internal/serve"
	"repro/internal/threads"
	"repro/internal/trace"
)

// Options parameterize a Fabric.
type Options struct {
	// Addr is the front listener's address; empty means "127.0.0.1:0".
	Addr string
	// Shards is the number of backend serve.Server shards (default 2).
	Shards int
	// FrontProcs is the front platform's processor allowance (default 2).
	FrontProcs int
	// BackendProcs is each shard's initial allowance (default 2).  Each
	// backend platform's capacity is Shards*BackendProcs so rebalancing
	// can grow any one shard toward the global budget.
	BackendProcs int
	// RingDepth bounds each shard's forward ring; a full ring sheds the
	// request with 503 at the front (default 256).
	RingDepth int
	// BatchMax bounds every batched transfer on the request path: pipelined
	// requests forwarded per multi-push, jobs drained per intake pass, jobs
	// claimed per steal, and each backend dispatcher's items batch
	// (default 16; 1 restores the per-unit PR 3 hot path).
	BatchMax int
	// StealMin is the minimum ring occupancy a sibling must show before an
	// idle shard's intake claims a batch from it — the anti-livelock
	// threshold: below it a steal could not move enough work to pay for
	// the claim.  NoSteal disables stealing (default 2).
	StealMin int
	// MaxConns bounds concurrently-served front connections (default 256).
	MaxConns int
	// Mux replaces the per-connection front threads with a fixed pool of
	// poller threads driving resumable connection state machines off
	// readiness events (internal/netpoll).  Off by default — the
	// per-connection-thread front stays available as the ablation
	// baseline.
	Mux bool
	// Pollers is the poller-thread count in Mux mode (default 2).
	Pollers int
	// IdleScanTicks is how often, in front clock ticks, each poller
	// sweeps its connections for idle and deadline expiry (default 50).
	IdleScanTicks int64
	// RouteHeader, when a request carries it, switches that request from
	// connection hashing to consistent hashing on the header's value —
	// sticky routing for keyed workloads (default "X-Shard-Key").
	RouteHeader string
	// RebalanceTicks is the rebalancer's period in front clock ticks;
	// 0 disables rebalancing (default 50).
	RebalanceTicks int64
	// RebalanceSlack is the load difference (queued + in-flight + ring)
	// between the most- and least-loaded shards below which no shift is
	// proposed (default 4).
	RebalanceSlack int
	// ProcFloor is the allowance no shard is shrunk below (default 1).
	ProcFloor int
	// HysteresisRounds is how many consecutive periods must propose the
	// same donor→recipient shift before it is applied (default 2).
	HysteresisRounds int
	// ReplySpin caps the adaptive spin budget — yields a connection
	// thread pays waiting on a reply batch before parking on the clock.
	// The live budget halves whenever a wait overruns it into a park and
	// doubles back toward this cap when the spin phase wins (default 64).
	ReplySpin int
	// PerCellReplies restores the pre-coalescing reply path — per-cell
	// in-order reply waits and one render + socket write per response —
	// as the benchmark baseline for the batched reply path.
	PerCellReplies bool
	// FairLocks swaps the fabric's hot-path spin locks for the FIFO
	// claim/release protocol (syncx.FairLock): the forward rings'
	// push/pop/steal lock, the mux accept inbox, and each backend's
	// admission guards queue contenders in claim order and hand off on
	// release instead of re-racing, and reply waits drop the adaptive
	// spin budget for a fixed bounded one — under skewed load no front
	// thread can lose the acquisition race unboundedly, flattening the
	// wait tail.  Claim waits are charged to the shard.ring_wait_ticks
	// histogram (in claim-loop yields).  On an MLAlloc fabric the fair
	// claim loop polls the GC section exactly as the GC-aware spin locks
	// do (unless MLGCPlainLocks), so a saturated claim queue never stalls
	// a collection.  Off by default — the PR 4/5 spin path remains the
	// ablation baseline.
	FairLocks bool
	// DeadlineTicks is the per-request deadline (front clock ticks from
	// first byte; forwarded with the request, default 2000).
	DeadlineTicks int64
	// IdleTicks bounds a keep-alive connection's wait between requests
	// (default DeadlineTicks).
	IdleTicks int64
	// QueueDepth and MaxInFlight configure each backend shard (defaults
	// as in serve.Options).
	QueueDepth  int
	MaxInFlight int
	// Tick is one clock tick of wall time, for the front and every shard
	// (default 1ms).
	Tick time.Duration
	// Quantum, if nonzero, enables preemptive timeslicing on every
	// member's thread system (threads.Options.Quantum): compute-heavy
	// handlers like /work/mlalloc yield at their CheckPreempt safe
	// points, so requests overlap inside the ML section and stop
	// barriers gather promptly.
	Quantum time.Duration
	// PollWindow caps blocking socket calls (default 1ms).
	PollWindow time.Duration
	// RetryAfter is the Retry-After hint on front sheds (default 1).
	RetryAfter int
	// PubSub installs a pubsub.Broker on every shard: /publish,
	// /subscribe, /unsubscribe endpoints, topic-keyed routing through the
	// consistent-hash ring (a topic lives on one shard), and streaming
	// subscriber connections on both fronts.  Off by default.
	PubSub bool
	// TenantQuota is each tenant's publish admission rate in
	// publishes/second; 0 means unlimited (pubsub.Options.QuotaPerSec).
	TenantQuota int
	// TenantHeader names the tenant-id request header (default "X-Tenant").
	TenantHeader string
	// StreamDepth is each subscriber's buffered frame ring (default
	// pubsub's, 256).
	StreamDepth int
	// HeartbeatTicks is how long a streaming subscriber connection may sit
	// with no frames before the front writes a 1-byte heartbeat chunk to
	// surface dead peers (front clock ticks; default 2500, < 0 disables).
	HeartbeatTicks int64
	// Tracer, if non-nil, receives front fabric events (accept, route,
	// forward, reply, rebalance, drain).
	Tracer *trace.Tracer
	// Spawn, when non-nil, makes membership elastic: runtime shard
	// acquire/release needs a host goroutine per new backend world, and
	// the fabric itself may start none (the purity rule), so the host
	// passes its own "run f on a fresh goroutine" hook here — mpserved
	// wires it to its WaitGroup.  Nil pins membership at Shards.
	Spawn func(func())
	// Autoscale lets the policy thread acquire/release whole shards on
	// sustained load, within [MinShards, MaxShards]; manual /scale works
	// whenever Spawn is set, autoscaled or not.
	Autoscale bool
	// MinShards/MaxShards bound the active member count (defaults 1 and
	// 2×Shards; MaxShards is clamped to the proc budget, since every
	// member needs at least one proc).
	MinShards int
	MaxShards int
	// ScaleUpLoad and ScaleDownLoad are the mean per-shard load (queued +
	// in-flight + ring) thresholds the autoscaler acts on, with the same
	// HysteresisRounds discipline as proc shifts (defaults 8 and 2).
	ScaleUpLoad   int
	ScaleDownLoad int
	// HandoffGraceTicks is how long (front clock ticks) the coordinator
	// waits after a membership flip before detaching handed-off topics
	// from their old owners — the window for traffic routed against a
	// stale snapshot to finish (default 32).
	HandoffGraceTicks int64
	// MLAlloc installs the allocating /work/mlalloc kernel on every
	// member: each backend gets its own gcsync.World (ML heap plus the
	// clean-point collection barrier), handler threads attach to it as
	// procs per request, and the member's forward-ring lock is wrapped
	// GC-aware so a front thread spinning on a push helps a pending
	// collection instead of convoying the stop.  Off by default.
	MLAlloc bool
	// MLNursery/MLSemi/MLChunk/MLRegion size each member's ML heap in
	// words (defaults 1<<16, 1<<20, 1024, 512).
	MLNursery int
	MLSemi    int
	MLChunk   int
	MLRegion  int
	// MLGCSequential selects the paper's one-collector stop-the-world
	// instead of parallel collection — the BENCH_gc ablation baseline.
	MLGCSequential bool
	// MLGCPlainLocks drops the GC-aware wrapping from the ring and
	// admission locks (the second ablation axis): spinners then convoy
	// any collection raised while they hold or await a lock.
	MLGCPlainLocks bool
}

func (o *Options) fill() {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.FrontProcs <= 0 {
		o.FrontProcs = 2
	}
	if o.BackendProcs <= 0 {
		o.BackendProcs = 2
	}
	if o.RingDepth <= 0 {
		o.RingDepth = 256
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 16
	}
	if o.StealMin < 0 {
		o.StealMin = 0 // NoSteal
	} else if o.StealMin == 0 {
		o.StealMin = 2
	}
	if o.MaxConns <= 0 {
		o.MaxConns = 256
	}
	if o.Pollers <= 0 {
		o.Pollers = 2
	}
	if o.IdleScanTicks <= 0 {
		o.IdleScanTicks = 50
	}
	if o.RouteHeader == "" {
		o.RouteHeader = "X-Shard-Key"
	}
	if o.RebalanceTicks < 0 {
		o.RebalanceTicks = 0
	} else if o.RebalanceTicks == 0 {
		o.RebalanceTicks = 50
	}
	if o.RebalanceSlack <= 0 {
		o.RebalanceSlack = 4
	}
	if o.ProcFloor <= 0 {
		o.ProcFloor = 1
	}
	if o.HysteresisRounds <= 0 {
		o.HysteresisRounds = 2
	}
	if o.ReplySpin <= 0 {
		o.ReplySpin = 64
	}
	if o.DeadlineTicks <= 0 {
		o.DeadlineTicks = 2000
	}
	if o.IdleTicks <= 0 {
		o.IdleTicks = o.DeadlineTicks
	}
	if o.Tick <= 0 {
		o.Tick = time.Millisecond
	}
	if o.PollWindow <= 0 {
		o.PollWindow = time.Millisecond
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 1
	}
	if o.TenantHeader == "" {
		o.TenantHeader = "X-Tenant"
	}
	if o.HeartbeatTicks == 0 {
		o.HeartbeatTicks = 2500
	} else if o.HeartbeatTicks < 0 {
		o.HeartbeatTicks = 0
	}
	if o.MinShards <= 0 {
		o.MinShards = 1
	}
	if o.MinShards > o.Shards {
		o.MinShards = o.Shards
	}
	if o.MaxShards <= 0 {
		o.MaxShards = 2 * o.Shards
	}
	if budget := o.Shards * o.BackendProcs; o.MaxShards > budget {
		o.MaxShards = budget // every member needs ≥ 1 proc of the budget
	}
	if o.MaxShards < o.Shards {
		o.MaxShards = o.Shards
	}
	if o.ScaleUpLoad <= 0 {
		o.ScaleUpLoad = 8
	}
	if o.ScaleDownLoad <= 0 {
		o.ScaleDownLoad = 2
	}
	if o.ScaleDownLoad >= o.ScaleUpLoad {
		o.ScaleDownLoad = o.ScaleUpLoad - 1
	}
	if o.HandoffGraceTicks <= 0 {
		o.HandoffGraceTicks = 32
	}
	if o.MLAlloc {
		if o.MLNursery <= 0 {
			o.MLNursery = 1 << 16
		}
		if o.MLSemi <= 0 {
			o.MLSemi = 1 << 20
		}
		if o.MLChunk <= 0 {
			o.MLChunk = 1024
		}
		if o.MLRegion <= 0 {
			o.MLRegion = 512
		}
	}
}

// NoRebalance is the Options.RebalanceTicks value that disables the
// rebalancer (0 means "default period").
const NoRebalance = -1

// NoSteal is the Options.StealMin value that disables cross-shard
// stealing (0 means "default threshold").
const NoSteal = -1

// backend is one shard: its own MP world plus the forward ring into it.
// id is the member's stable *slot*: the consistent ring's vnodes, the
// forwarded_<id> counter, and the limits entry are all keyed on it, and
// it outlives the member's position in the actives array.
type backend struct {
	id     int
	pl     *proc.Platform
	sys    *threads.System
	srv    *serve.Server
	ring   *ring
	broker *pubsub.Broker // Options.PubSub; nil otherwise
	world  *gcsync.World  // Options.MLAlloc; nil otherwise

	phase atomic.Int32 // joining → active → draining → gone
	live  atomic.Int64 // host goroutines currently running this backend's worlds
}

// fabricMetrics caches the front registry's instrument handles.
type fabricMetrics struct {
	accepted   *metrics.Counter
	acceptErrs *metrics.Counter
	conns      *metrics.Counter // gauge: active front connections
	shedConns  *metrics.Counter
	routedHash *metrics.Counter
	routedKey  *metrics.Counter
	forwarded  []*metrics.Counter // per shard
	ringFull   *metrics.Counter
	replies    *metrics.Counter
	checks     *metrics.Counter // rebalancer periods evaluated
	rebalances *metrics.Counter // shifts applied
	waitTicks  *metrics.Histogram

	// Fair claim/release instruments (Options.FairLocks): how long each
	// contended claim waited in the FIFO queue, in claim-loop yields.
	// Registered unconditionally so ablation runs diff the same snapshot
	// shape; stays zero on the spin path.
	ringWaitTicks *metrics.Histogram

	// Reply-path instruments: the adaptive spin discipline's outcomes and
	// the coalesced write batch sizes.
	replySpins *metrics.Counter   // yields spent inside reply spin phases
	replyParks *metrics.Counter   // clock parks after a spin budget ran out
	writeBatch *metrics.Histogram // responses coalesced per front socket write

	// Batching & stealing instruments (intake-side counters are bumped
	// from backend procs; Counter masks the shard index, so cross-world
	// increments on the front registry are safe).
	pushBatch     *metrics.Histogram // jobs moved per front multi-push
	ringExpired   *metrics.Counter   // 504s for deadline expiry inside a ring
	stealAttempts *metrics.Counter
	steals        *metrics.Counter // successful claims
	stealAborts   *metrics.Counter // TryLock met contention
	stolen        *metrics.Counter // jobs moved by successful claims
	stealBatch    *metrics.Histogram

	// Multiplexed-front instruments: connections parked awaiting
	// readiness, poller waits that returned events, and connections
	// resumed per wakeup.
	connsParked *metrics.Counter // gauge: owned conns not in a dispatch
	pollWakeups *metrics.Counter
	resumeBatch *metrics.Histogram

	// Pub/sub instruments: requests routed by topic key, subscriber
	// connections currently streaming, and frames flushed to them.
	routedTopic  *metrics.Counter
	streamConns  *metrics.Counter // gauge
	streamFrames *metrics.Counter

	// Elastic-membership instruments: epoch flips (epoch = flips + 1),
	// shards acquired/released, autoscaler/manual scale steps applied,
	// policy decisions discarded for epoch staleness, and topics/subs
	// moved by handoffs.
	epochFlips    *metrics.Counter // shard.member_epoch
	memberJoins   *metrics.Counter
	memberLeaves  *metrics.Counter
	scaleUps      *metrics.Counter
	scaleDowns    *metrics.Counter
	scaleStale    *metrics.Counter // shard.scale_stale_discarded
	handoffTopics *metrics.Counter
	handoffSubs   *metrics.Counter
}

// Fabric is the sharded serving fabric; create with New, start each of
// Runners in its own goroutine, stop with Drain.
type Fabric struct {
	opts Options
	ln   *net.TCPListener

	frontPl  *proc.Platform
	frontSys *threads.System
	clock    *cml.Clock
	pool     *serve.BufPool
	ccfg     serve.ConnConfig
	pollers  []*poller // multiplexed front (Options.Mux); nil otherwise

	// mem is the versioned membership snapshot every routing decision
	// resolves against: immutable once published, flipped only by the
	// policy thread.  backends is the all-ever member list (appends under
	// the state lock; gone members stay, their registries readable).
	mem      atomic.Pointer[membership]
	budget   int // global proc budget: Shards × BackendProcs at boot
	scaleBox *cml.Mailbox[int]
	subIDs   atomic.Int64 // shared pub/sub sub-id allocator across brokers

	state        core.Lock // guards the fields below
	draining     bool
	acceptorDone bool
	activeConns  int
	cascadeDone  bool // backends drained (supervisor finished)
	rebalDone    bool
	backends     []*backend
	handlers     []handlerEntry // replayed onto runtime-spawned members
	limits       []int          // per-slot allowance (policy bookkeeping)
	lastShift    int64          // front tick of the last applied shift

	logrt  *mlio.Runtime
	logpol mlio.Policy

	m      fabricMetrics
	tracer *trace.Tracer
	evAccept, evRoute, evForward, evReply,
	evRebalance, evSteal, evDrain trace.EventID
}

// handlerEntry records one Fabric.Handle registration for replay onto
// runtime-spawned members.
type handlerEntry struct {
	pattern string
	h       serve.Handler
}

// New builds the fabric: front listener + platform, and Shards backend
// serve.Servers in NoListener mode sharing one access-log runtime under
// one per-stream lock (so concurrent shards' lines interleave un-torn,
// each carrying its shard id).  Nothing runs until the host starts the
// Runners.
func New(opts Options) (*Fabric, error) {
	opts.fill()
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, err
	}
	tln, ok := ln.(*net.TCPListener)
	if !ok {
		ln.Close()
		return nil, fmt.Errorf("shard: listener %T is not a *net.TCPListener", ln)
	}
	frontPl := proc.New(opts.FrontProcs)
	fab := &Fabric{
		opts:     opts,
		ln:       tln,
		frontPl:  frontPl,
		frontSys: threads.New(frontPl, threads.Options{}),
		clock:    cml.NewClock(),
		pool:     serve.NewBufPool(opts.FrontProcs),
		budget:   opts.Shards * opts.BackendProcs,
		scaleBox: cml.NewMailbox[int](),
		state:    core.NewMutexLock(),
		limits:   make([]int, opts.MaxShards),
		logrt:    mlio.NewRuntime(),
		logpol:   mlio.NewPerStream(),
		tracer:   opts.Tracer,
	}
	reg := fab.frontSys.Metrics()
	slots := make([]int, opts.Shards)
	for i := 0; i < opts.Shards; i++ {
		b, err := fab.newBackend(i, opts.BackendProcs)
		if err != nil {
			tln.Close()
			return nil, err
		}
		b.phase.Store(phaseActive)
		fab.backends = append(fab.backends, b)
		fab.limits[i] = opts.BackendProcs
		slots[i] = i
	}
	fab.mem.Store(&membership{
		epoch:  1,
		shards: append([]*backend(nil), fab.backends...),
		ring:   newChashRing(slots, ringVnodes),
	})
	if opts.Mux {
		inboxLock := core.LockFactory(core.NewMutexLock)
		if opts.FairLocks {
			inboxLock = fab.fairLockFactory(nil)
		}
		for i := 0; i < opts.Pollers; i++ {
			p, err := newPoller(i, inboxLock)
			if err != nil {
				tln.Close()
				return nil, err
			}
			fab.pollers = append(fab.pollers, p)
		}
	}
	bounds := []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	fab.m = fabricMetrics{
		accepted:   reg.Counter("shard.accepted"),
		acceptErrs: reg.Counter("shard.accept_errors"),
		conns:      reg.Counter("shard.conns"),
		shedConns:  reg.Counter("shard.shed_conns"),
		routedHash: reg.Counter("shard.routed_hash"),
		routedKey:  reg.Counter("shard.routed_sticky"),
		ringFull:   reg.Counter("shard.ring_full"),
		replies:    reg.Counter("shard.replies"),
		checks:     reg.Counter("shard.rebalance_checks"),
		rebalances: reg.Counter("shard.rebalances"),
		waitTicks:  reg.Histogram("shard.reply_wait_ticks", bounds),
		// Ring claim waits are measured in claim-loop yields, not clock
		// ticks: a claim that straddles a descheduled holder burns many
		// cheap yields, so the bounds stretch four decades.  Overflow
		// (>100k yields) is the heavy tail the fair protocol rules out.
		ringWaitTicks: reg.Histogram("shard.ring_wait_ticks",
			[]int64{1, 2, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000}),
		replySpins: reg.Counter("shard.reply_spin"),
		replyParks: reg.Counter("shard.reply_park"),
		writeBatch: reg.Histogram("shard.write_batch",
			[]int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
		pushBatch: reg.Histogram("shard.push_batch",
			[]int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
		ringExpired:   reg.Counter("shard.ring_expired"),
		stealAttempts: reg.Counter("shard.steal_attempts"),
		steals:        reg.Counter("shard.steals"),
		stealAborts:   reg.Counter("shard.steal_aborts"),
		stolen:        reg.Counter("shard.stolen"),
		stealBatch: reg.Histogram("shard.steal_batch",
			[]int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
		connsParked: reg.Counter("serve.conns_parked"),
		pollWakeups: reg.Counter("serve.poll_wakeups"),
		resumeBatch: reg.Histogram("serve.resume_batch",
			[]int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}),
		routedTopic:  reg.Counter("shard.routed_topic"),
		streamConns:  reg.Counter("shard.stream_conns"),
		streamFrames: reg.Counter("shard.stream_frames"),
	}
	// Forwarded counters are slot-indexed and pre-created for every slot
	// a member could ever hold, so a runtime-spawned shard never races a
	// registry mutation on the forward hot path.
	for i := 0; i < opts.MaxShards; i++ {
		fab.m.forwarded = append(fab.m.forwarded,
			reg.Counter(fmt.Sprintf("shard.forwarded_%d", i)))
	}
	fab.m.epochFlips = reg.Counter("shard.member_epoch")
	fab.m.memberJoins = reg.Counter("shard.member_joins")
	fab.m.memberLeaves = reg.Counter("shard.member_leaves")
	fab.m.scaleUps = reg.Counter("shard.scale_ups")
	fab.m.scaleDowns = reg.Counter("shard.scale_downs")
	fab.m.scaleStale = reg.Counter("shard.scale_stale_discarded")
	fab.m.handoffTopics = reg.Counter("shard.handoff_topics")
	fab.m.handoffSubs = reg.Counter("shard.handoff_subs")
	if fab.tracer != nil {
		fab.evAccept = fab.tracer.Define("shard.accept")
		fab.evRoute = fab.tracer.Define("shard.route")
		fab.evForward = fab.tracer.Define("shard.forward")
		fab.evReply = fab.tracer.Define("shard.reply")
		fab.evRebalance = fab.tracer.Define("shard.rebalance")
		fab.evSteal = fab.tracer.Define("shard.steal")
		fab.evDrain = fab.tracer.Define("shard.drain")
	}
	fab.ccfg = serve.ConnConfig{
		Clock:        fab.clock,
		Park:         fab.park,
		PollWindow:   opts.PollWindow,
		Tick:         opts.Tick,
		Pool:         fab.pool,
		OnWriteBatch: func(n int) { fab.m.writeBatch.Observe(proc.Self(), int64(n)) },
		Aborted:      fab.Draining,
	}
	return fab, nil
}

// Addr returns the front listener's address.
func (fab *Fabric) Addr() net.Addr { return fab.ln.Addr() }

// Shard returns member i's server (its metrics registry, access to
// Handle, etc.).  Indexes the all-ever member list: a released member's
// registry stays readable after it leaves.
func (fab *Fabric) Shard(i int) *serve.Server {
	fab.state.Lock()
	defer fab.state.Unlock()
	return fab.backends[i].srv
}

// Shards returns the all-ever member count (actives + joined-then-
// released); ActiveShards counts the current membership.
func (fab *Fabric) Shards() int {
	fab.state.Lock()
	defer fab.state.Unlock()
	return len(fab.backends)
}

// FrontMetrics returns the front system's registry (shard.* counters).
func (fab *Fabric) FrontMetrics() *metrics.Registry { return fab.frontSys.Metrics() }

// Handle registers a handler on every member (they must agree on
// routes; register before starting the Runners).  The registration is
// recorded so members acquired later serve the same routes.
func (fab *Fabric) Handle(pattern string, h serve.Handler) {
	fab.state.Lock()
	fab.handlers = append(fab.handlers, handlerEntry{pattern: pattern, h: h})
	bs := append([]*backend(nil), fab.backends...)
	fab.state.Unlock()
	for _, b := range bs {
		b.srv.Handle(pattern, h)
	}
}

// Limits returns the current per-active-member allowance view, in
// membership order.
func (fab *Fabric) Limits() []int {
	mem := fab.mem.Load()
	fab.state.Lock()
	defer fab.state.Unlock()
	out := make([]int, len(mem.shards))
	for i, b := range mem.shards {
		out[i] = fab.limits[b.id]
	}
	return out
}

// limitOf returns one slot's current allowance (policy bookkeeping).
func (fab *Fabric) limitOf(slot int) int {
	fab.state.Lock()
	defer fab.state.Unlock()
	return fab.limits[slot]
}

// AccessLog snapshots the fabric-wide access log: every shard writes
// through the same mlio runtime and per-stream lock, so lines from
// concurrent shards interleave whole, prefixed by their shard id.
func (fab *Fabric) AccessLog() []byte { return fab.logrt.Contents("access") }

// Draining reports whether Drain has been called.
func (fab *Fabric) Draining() bool {
	fab.state.Lock()
	defer fab.state.Unlock()
	return fab.draining
}

// Drain initiates the cascaded shutdown; safe from any goroutine
// (signal handlers included), idempotent.  The cascade: front acceptor
// stops → connection threads finish their in-flight request and close →
// when the front counts zero connections the supervisor drains every
// backend → backends finish queued work, their systems quiesce, and the
// front system exits last.
func (fab *Fabric) Drain() {
	fab.state.Lock()
	fab.draining = true
	fab.state.Unlock()
	// Brokers must begin draining now, not when the backends do: a
	// streaming subscriber connection stays open (and counted) until its
	// stream closes, and the supervisor waits for zero connections before
	// it ever reaches srv.Drain.  Broker.Close settles every pending
	// fan-out, then closes the subscriber rings; the fronts see each
	// stream's close, write the chunked terminator, and release the
	// connection — which is what lets the cascade proceed.
	fab.state.Lock()
	bs := append([]*backend(nil), fab.backends...)
	fab.state.Unlock()
	for _, b := range bs {
		if b.broker != nil {
			b.broker.Close() // idempotent: a released member's is already closed
		}
	}
}

// Runners returns one entry point per OS-level host goroutine the fabric
// needs: element 0 is the front world (acceptor, connection threads,
// rebalancer, supervisor, clock pump), then each shard contributes its
// backend world (serve pipeline + ring intake) and, under Options.PubSub,
// its broker's delivery world.  The host must call
// each in its own goroutine — this package starts none itself — and all
// of them return after Drain completes.
func (fab *Fabric) Runners() []func() {
	rs := []func(){func() { fab.frontSys.Run(func() { fab.frontMain() }) }}
	for _, b := range fab.backends {
		rs = append(rs, fab.backendRunners(b)...)
	}
	return rs
}

// park suspends the calling front thread for ticks on the front clock.
func (fab *Fabric) park(ticks int64) {
	cml.Sync(fab.frontSys, fab.clock.AfterEvt(ticks))
}

// emit records a front trace event on the calling proc's ring.
func (fab *Fabric) emit(ev trace.EventID, arg int64) {
	fab.tracer.Emit(proc.Self(), ev, arg)
}

// intake is shard b's ring consumer: an MP thread of the backend's own
// system, so injected requests enter the shard's admission pipeline from
// inside its scheduling world.  Each pass drains a batch from the ring —
// one spinlock acquisition for up to BatchMax jobs — bounded by the
// shard's queue headroom: when the shard is saturated, jobs deliberately
// stay in the ring where an idle sibling's intake can steal them.  When
// its own ring is empty the intake tries exactly that against the most
// loaded sibling.  Every drained job's deadline budget is charged with
// its front-clock ring dwell before SubmitMany rebases it onto this
// shard's clock; jobs whose budget died in the ring are answered 504
// here without ever entering the queue.  The thread exits once the shard
// is draining and the ring is empty (the front guarantees no more pushes
// by then: backends drain only after the last front connection closed,
// and a job stolen into this ring keeps its forwarding connection open
// until the reply is delivered).
func (fab *Fabric) intake(b *backend) {
	jobs := make([]job, fab.opts.BatchMax)
	subs := make([]serve.SubmitJob, fab.opts.BatchMax)
	for {
		limit := b.srv.QueueHeadroom()
		if limit > len(jobs) {
			limit = len(jobs)
		}
		n := 0
		if limit > 0 {
			n = b.ring.popN(jobs[:limit])
			if n == 0 && fab.opts.StealMin > 0 && !b.srv.Draining() {
				n = fab.steal(b, jobs[:limit])
			}
		}
		if n == 0 {
			if b.srv.Draining() {
				return
			}
			// Idle-wait by sleeping a fraction of a tick then yielding (the
			// clock pump's own discipline) rather than parking on the shard
			// clock: the pump may exit during drain before a parked intake's
			// wakeup, and nothing would advance the clock again.
			time.Sleep(fab.opts.Tick / 4)
			b.sys.Yield()
			continue
		}
		now := fab.clock.Now()
		m := 0
		for i := 0; i < n; i++ {
			j := jobs[i]
			jobs[i] = job{}
			remaining := j.remaining - (now - j.pushed)
			if remaining < 1 {
				fab.m.ringExpired.Inc(proc.Self())
				j.rep.deliver(serve.Response{
					Status: 504,
					Body:   []byte("deadline exceeded in forward ring\n"),
				})
				continue
			}
			rep := j.rep
			subs[m] = serve.SubmitJob{
				Req:       j.req,
				Remaining: remaining,
				Deliver:   func(resp serve.Response) { rep.deliver(resp) },
			}
			m++
		}
		admitted := b.srv.SubmitMany(subs[:m])
		for i := admitted; i < m; i++ {
			subs[i].Deliver(serve.Response{
				Status:     503,
				Body:       []byte("shedding load: shard saturated\n"),
				RetryAfter: fab.opts.RetryAfter,
			})
		}
		for i := 0; i < m; i++ {
			subs[i] = serve.SubmitJob{}
		}
		b.sys.CheckPreempt()
	}
}
