package shard

// Fabric end-to-end tests.  Test files are the client side of the wire
// plus the host that runs each Runners entry in a goroutine — exactly
// the role cmd/mpserved plays — so raw goroutines and channels are fine
// here; the purity test scans only non-test sources.

import (
	"bytes"
	"fmt"
	"net"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

// kaConn is a keep-alive test client framing responses by Content-Length.
type kaConn struct {
	nc  net.Conn
	acc []byte
}

func dialKA(t *testing.T, addr string) *kaConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &kaConn{nc: nc}
}

func (k *kaConn) send(path string, hdrs ...string) error {
	var b bytes.Buffer
	fmt.Fprintf(&b, "GET %s HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n", path)
	for _, h := range hdrs {
		b.WriteString(h + "\r\n")
	}
	b.WriteString("\r\n")
	_, err := k.nc.Write(b.Bytes())
	return err
}

func (k *kaConn) recv(timeout time.Duration) (int, []byte, error) {
	deadline := time.Now().Add(timeout)
	buf := make([]byte, 4096)
	for {
		if head, rest, ok := bytes.Cut(k.acc, []byte("\r\n\r\n")); ok {
			lines := strings.Split(string(head), "\r\n")
			parts := strings.SplitN(lines[0], " ", 3)
			if len(parts) < 2 {
				return 0, nil, fmt.Errorf("bad status line %q", lines[0])
			}
			status, err := strconv.Atoi(parts[1])
			if err != nil {
				return 0, nil, err
			}
			clen := -1
			for _, ln := range lines[1:] {
				if kk, v, ok := strings.Cut(ln, ":"); ok &&
					strings.EqualFold(strings.TrimSpace(kk), "Content-Length") {
					clen, err = strconv.Atoi(strings.TrimSpace(v))
					if err != nil {
						return 0, nil, err
					}
				}
			}
			if clen < 0 {
				return 0, nil, fmt.Errorf("no Content-Length in %q", head)
			}
			for len(rest) < clen {
				k.nc.SetReadDeadline(deadline)
				n, err := k.nc.Read(buf)
				if n > 0 {
					rest = append(rest, buf[:n]...)
				} else if err != nil {
					return 0, nil, err
				}
			}
			k.acc = append([]byte(nil), rest[clen:]...)
			return status, append([]byte(nil), rest[:clen]...), nil
		}
		k.nc.SetReadDeadline(deadline)
		n, err := k.nc.Read(buf)
		if n > 0 {
			k.acc = append(k.acc, buf[:n]...)
		} else if err != nil {
			return 0, nil, err
		}
	}
}

type testFabric struct {
	fab  *Fabric
	done chan struct{}
}

func (tf *testFabric) addr() string { return tf.fab.Addr().String() }

// drainAndWait cascades the drain and blocks until every runner has
// returned; idempotent so tests may call it before the cleanup does.
func (tf *testFabric) drainAndWait(t *testing.T) {
	t.Helper()
	tf.fab.Drain()
	select {
	case <-tf.done:
	case <-time.After(60 * time.Second):
		t.Fatal("fabric did not quiesce after drain")
	}
}

// startFabric hosts a fabric: each Runners entry in its own goroutine,
// health-checked through the front, drained at cleanup.
func startFabric(t *testing.T, opts Options, register func(*Fabric)) *testFabric {
	t.Helper()
	opts.Addr = "127.0.0.1:0"
	fab, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if register != nil {
		register(fab)
	}
	tf := &testFabric{fab: fab, done: make(chan struct{})}
	runners := fab.Runners()
	joined := make(chan struct{}, len(runners))
	for _, r := range runners {
		r := r
		go func() {
			r()
			joined <- struct{}{}
		}()
	}
	go func() {
		for range runners {
			<-joined
		}
		close(tf.done)
	}()
	healthy := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		kc, err := net.DialTimeout("tcp", tf.addr(), time.Second)
		if err == nil {
			c := &kaConn{nc: kc}
			if err := c.send("/healthz", "Connection: close"); err == nil {
				if st, _, err := c.recv(2 * time.Second); err == nil && st == 200 {
					healthy = true
				}
			}
			kc.Close()
		}
		if healthy {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !healthy {
		t.Fatal("fabric did not become healthy")
	}
	t.Cleanup(func() { tf.drainAndWait(t) })
	return tf
}

// parkHandler parks the handling thread ?ticks= shard-clock ticks.
func parkHandler(req *serve.Request) serve.Response {
	target := int64(req.QueryInt("ticks", 10))
	for elapsed := int64(0); elapsed < target; elapsed++ {
		if req.Expired() {
			return serve.Response{Status: 504, Body: []byte("cancelled\n")}
		}
		req.Park(1)
	}
	return serve.Response{Status: 200, Body: []byte("parked\n")}
}

func TestFabricKeepAliveEndToEnd(t *testing.T) {
	tf := startFabric(t, Options{Shards: 2}, nil)
	base := tf.fab.FrontMetrics().Snapshot() // startup health checks count too
	kc := dialKA(t, tf.addr())
	const reqs = 6
	for i := 0; i < reqs; i++ {
		msg := fmt.Sprintf("m%d", i)
		if err := kc.send("/echo?msg=" + msg); err != nil {
			t.Fatal(err)
		}
		st, body, err := kc.recv(10 * time.Second)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if st != 200 || string(body) != msg {
			t.Fatalf("request %d: status %d body %q", i, st, body)
		}
	}
	snap := tf.fab.FrontMetrics().Snapshot()
	if got := snap.Get("shard.replies") - base.Get("shard.replies"); got < reqs {
		t.Errorf("shard.replies = %d, want >= %d", got, reqs)
	}
	var forwarded int64
	for i := 0; i < tf.fab.Shards(); i++ {
		name := fmt.Sprintf("shard.forwarded_%d", i)
		forwarded += snap.Get(name) - base.Get(name)
	}
	if forwarded < reqs {
		t.Errorf("total forwarded = %d, want >= %d", forwarded, reqs)
	}
	if got := snap.Get("shard.accepted") - base.Get("shard.accepted"); got != 1 {
		t.Errorf("shard.accepted = %d, want 1 (one keep-alive conn)", got)
	}
	// Uniform light load: sequential requests never leave two jobs in any
	// ring, so no shard ever qualifies as a steal victim — the claim
	// protocol must stay entirely quiet (no aborted-claim churn).
	if got := snap.Get("shard.steal_aborts"); got != 0 {
		t.Errorf("shard.steal_aborts = %d under uniform light load, want 0", got)
	}
}

func TestStickyRoutingByHeader(t *testing.T) {
	tf := startFabric(t, Options{Shards: 4}, nil)
	base := tf.fab.FrontMetrics().Snapshot()
	want := tf.fab.ownerOf("alpha")
	const reqs = 8
	for i := 0; i < reqs; i++ { // fresh conn each time: routing must follow the key, not the conn
		kc := dialKA(t, tf.addr())
		if err := kc.send("/healthz", "X-Shard-Key: alpha", "Connection: close"); err != nil {
			t.Fatal(err)
		}
		if st, _, err := kc.recv(10 * time.Second); err != nil || st != 200 {
			t.Fatalf("request %d: status %d err %v", i, st, err)
		}
		kc.nc.Close()
	}
	snap := tf.fab.FrontMetrics().Snapshot()
	name := fmt.Sprintf("shard.forwarded_%d", want)
	if got := snap.Get(name) - base.Get(name); got != reqs {
		t.Errorf("sticky shard %d forwarded = %d, want %d", want, got, reqs)
	}
	if got := snap.Get("shard.routed_sticky") - base.Get("shard.routed_sticky"); got != reqs {
		t.Errorf("shard.routed_sticky = %d, want %d", got, reqs)
	}
}

func TestChashRingStableAndCovering(t *testing.T) {
	r := newChashRing([]int{0, 1, 2, 3}, 64)
	hit := map[int]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		s := r.lookup(key)
		if s2 := r.lookup(key); s2 != s {
			t.Fatalf("lookup(%q) unstable: %d then %d", key, s, s2)
		}
		hit[s]++
	}
	for s := 0; s < 4; s++ {
		if hit[s] == 0 {
			t.Errorf("shard %d receives no keys", s)
		}
	}
}

func TestRingPushPopOrderAndBounds(t *testing.T) {
	r := newRing(3)
	for i := 0; i < 3; i++ {
		if !r.push(job{remaining: int64(i)}) {
			t.Fatalf("push %d refused below capacity", i)
		}
	}
	if r.push(job{}) {
		t.Error("push succeeded on a full ring")
	}
	if r.depth() != 3 {
		t.Errorf("depth = %d, want 3", r.depth())
	}
	for i := 0; i < 3; i++ {
		j, ok := r.pop()
		if !ok || j.remaining != int64(i) {
			t.Fatalf("pop %d: ok=%v remaining=%d", i, ok, j.remaining)
		}
	}
	if _, ok := r.pop(); ok {
		t.Error("pop succeeded on an empty ring")
	}
}

// TestRingBatchPushPopWraparound drives pushN/popN across the buffer
// seam with a partial batch at capacity: pushN admits exactly the prefix
// that fits, popN drains in FIFO order across the wrap, and both are
// no-ops on empty inputs.
func TestRingBatchPushPopWraparound(t *testing.T) {
	r := newRing(4)
	// Advance head off zero so the batch ops must wrap.
	if !r.push(job{remaining: 100}) || !r.push(job{remaining: 101}) {
		t.Fatal("seed pushes refused below capacity")
	}
	if j, ok := r.pop(); !ok || j.remaining != 100 {
		t.Fatalf("seed pop: ok=%v remaining=%d, want 100", ok, j.remaining)
	}
	// head=1, count=1: four offered, three fit; the admitted jobs are a
	// prefix and the last slot wraps to index 0.
	in := []job{{remaining: 0}, {remaining: 1}, {remaining: 2}, {remaining: 3}}
	if n := r.pushN(in); n != 3 {
		t.Fatalf("pushN at capacity = %d, want 3 (admitted prefix)", n)
	}
	if got := r.depth(); got != 4 {
		t.Fatalf("depth = %d, want 4", got)
	}
	if n := r.pushN(in); n != 0 {
		t.Errorf("pushN on a full ring = %d, want 0", n)
	}
	if n := r.pushN(nil); n != 0 {
		t.Errorf("pushN(nil) = %d, want 0", n)
	}
	dst := make([]job, 8)
	n := r.popN(dst)
	if n != 4 {
		t.Fatalf("popN = %d, want 4", n)
	}
	for i, want := range []int64{101, 0, 1, 2} {
		if dst[i].remaining != want {
			t.Errorf("popN[%d].remaining = %d, want %d (FIFO across the seam)",
				i, dst[i].remaining, want)
		}
	}
	if n := r.popN(dst); n != 0 {
		t.Errorf("popN on an empty ring = %d, want 0", n)
	}
	if n := r.popN(nil); n != 0 {
		t.Errorf("popN(nil) = %d, want 0", n)
	}
	// A bounded dst takes a partial batch and leaves the rest queued.
	if n := r.pushN(in); n != 4 {
		t.Fatalf("refill pushN = %d, want 4", n)
	}
	if n := r.popN(dst[:3]); n != 3 {
		t.Fatalf("bounded popN = %d, want 3", n)
	}
	if j, ok := r.pop(); !ok || j.remaining != 3 {
		t.Errorf("leftover after bounded popN: ok=%v remaining=%d, want 3", ok, j.remaining)
	}
}

// TestRingStealClaimsOldestHalf pins the claim protocol's semantics: a
// steal takes the oldest half (rounded up) bounded by dst, leaves the
// newer jobs for the owner, returns 0 on an empty uncontended ring, and
// aborts with -1 — without blocking — when the lock is held.
func TestRingStealClaimsOldestHalf(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 5; i++ {
		r.push(job{remaining: int64(i)})
	}
	dst := make([]job, 8)
	if n := r.stealN(dst); n != 3 {
		t.Fatalf("stealN = %d, want 3 ((5+1)/2 oldest)", n)
	}
	for i := 0; i < 3; i++ {
		if dst[i].remaining != int64(i) {
			t.Errorf("stolen[%d].remaining = %d, want %d (oldest first)", i, dst[i].remaining, i)
		}
	}
	// The owner keeps the newest two, still in order.
	for _, want := range []int64{3, 4} {
		if j, ok := r.pop(); !ok || j.remaining != want {
			t.Fatalf("owner pop after steal: ok=%v remaining=%d, want %d", ok, j.remaining, want)
		}
	}
	if n := r.stealN(dst); n != 0 {
		t.Errorf("stealN on an empty ring = %d, want 0", n)
	}
	// dst bounds the claim below the half.
	for i := 0; i < 6; i++ {
		r.push(job{remaining: int64(10 + i)})
	}
	if n := r.stealN(dst[:2]); n != 2 {
		t.Errorf("bounded stealN = %d, want 2", n)
	}
	// Contention: with the spinlock held, the thief must abort, not spin.
	r.lock.Lock()
	abortDone := make(chan int, 1)
	go func() { abortDone <- r.stealN(dst) }()
	select {
	case n := <-abortDone:
		if n != -1 {
			t.Errorf("stealN under contention = %d, want -1 (abort)", n)
		}
	case <-time.After(5 * time.Second):
		t.Error("stealN blocked on a held lock; the claim must abort")
	}
	r.lock.Unlock()
}

// TestRingStealVsPopRace races the owner's batched popN against a
// thief's stealN (and a pushing producer) under -race: every job must be
// claimed by exactly one side, abort returns (-1) must never be counted
// as progress, and nothing may be lost or duplicated.
func TestRingStealVsPopRace(t *testing.T) {
	const total = 4000
	r := newRing(64)
	seen := make([]atomic.Int32, total)
	var got, aborts atomic.Int64
	go func() { // producer: front multi-pushes of up to 8
		batch := make([]job, 8)
		next := 0
		for next < total {
			n := 0
			for ; n < len(batch) && next+n < total; n++ {
				batch[n] = job{remaining: int64(next + n)}
			}
			pushed := r.pushN(batch[:n])
			next += pushed
			if pushed < n {
				runtime.Gosched()
			}
		}
	}()
	collect := func(dst []job, n int) {
		for i := 0; i < n; i++ {
			seen[dst[i].remaining].Add(1)
		}
		got.Add(int64(n))
	}
	go func() { // owner: batched dequeue
		dst := make([]job, 16)
		for got.Load() < total {
			if n := r.popN(dst); n > 0 {
				collect(dst, n)
			} else {
				runtime.Gosched()
			}
		}
	}()
	go func() { // thief: claim-or-abort
		dst := make([]job, 16)
		for got.Load() < total {
			switch n := r.stealN(dst); {
			case n > 0:
				collect(dst, n)
			case n < 0:
				aborts.Add(1)
				runtime.Gosched()
			default:
				runtime.Gosched()
			}
		}
	}()
	for deadline := time.Now().Add(30 * time.Second); got.Load() < total; {
		if time.Now().After(deadline) {
			t.Fatalf("claimed %d of %d jobs — work lost between popN and stealN", got.Load(), total)
		}
		time.Sleep(time.Millisecond)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("job %d claimed %d times, want exactly 1", i, n)
		}
	}
	t.Logf("steal-vs-pop race: %d jobs, %d thief aborts", total, aborts.Load())
}

// TestStealMovesQueuedWorkToIdleShard saturates one shard (one slot, one
// queue seat) with a pipelined batch of sticky-keyed parks: the excess
// backs up in its forward ring, where the idle sibling's intake must
// claim it — nonzero steal counters and every request still answered.
func TestStealMovesQueuedWorkToIdleShard(t *testing.T) {
	tf := startFabric(t, Options{
		Shards:         2,
		BackendProcs:   1,
		MaxInFlight:    1,
		QueueDepth:     1,
		RebalanceTicks: NoRebalance,
	}, func(fab *Fabric) { fab.Handle("/park", parkHandler) })
	base := tf.fab.FrontMetrics().Snapshot()

	const reqs = 12
	deadline := time.Now().Add(30 * time.Second)
	for round := 0; ; round++ {
		kc := dialKA(t, tf.addr())
		var batch bytes.Buffer
		for i := 0; i < reqs; i++ {
			batch.WriteString("GET /park?ticks=20 HTTP/1.1\r\nHost: t\r\n" +
				"Content-Length: 0\r\nX-Shard-Key: hot\r\n\r\n")
		}
		if _, err := kc.nc.Write(batch.Bytes()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < reqs; i++ {
			st, _, err := kc.recv(20 * time.Second)
			if err != nil {
				t.Fatalf("round %d response %d: %v", round, i, err)
			}
			if st != 200 {
				t.Fatalf("round %d response %d: status %d, want 200 (nothing sheds at this load)",
					round, i, st)
			}
		}
		kc.nc.Close()
		snap := tf.fab.FrontMetrics().Snapshot()
		if steals := snap.Get("shard.steals") - base.Get("shard.steals"); steals >= 1 {
			if stolen := snap.Get("shard.stolen") - base.Get("shard.stolen"); stolen < steals {
				t.Errorf("shard.stolen = %d with %d steals; every claim must move >= 1 job",
					stolen, steals)
			}
			if attempts := snap.Get("shard.steal_attempts") - base.Get("shard.steal_attempts"); attempts < steals {
				t.Errorf("shard.steal_attempts = %d < steals %d", attempts, steals)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no steal observed under forced saturation (attempts=%d aborts=%d)",
				snap.Get("shard.steal_attempts")-base.Get("shard.steal_attempts"),
				snap.Get("shard.steal_aborts")-base.Get("shard.steal_aborts"))
		}
	}
}

func TestPlanShift(t *testing.T) {
	cases := []struct {
		name        string
		loads, lims []int
		floor, cap  int
		slack       int
		from, to    int
		ok          bool
	}{
		{"balanced", []int{3, 3}, []int{2, 2}, 1, 4, 4, 0, 0, false},
		{"skew", []int{0, 9}, []int{2, 2}, 1, 4, 4, 0, 1, true},
		{"donor at floor", []int{0, 9}, []int{1, 3}, 1, 4, 4, 0, 0, false},
		{"recipient at cap", []int{0, 9}, []int{0, 4}, 0, 4, 4, 0, 0, false},
		{"below slack", []int{2, 5}, []int{2, 2}, 1, 4, 4, 0, 0, false},
		{"three way", []int{5, 0, 20}, []int{2, 2, 2}, 1, 6, 4, 1, 2, true},
		{"single shard", []int{9}, []int{2}, 1, 4, 1, 0, 0, false},
	}
	for _, c := range cases {
		from, to, ok := planShift(c.loads, c.lims, c.floor, c.cap, c.slack)
		if ok != c.ok || (ok && (from != c.from || to != c.to)) {
			t.Errorf("%s: planShift = (%d,%d,%v), want (%d,%d,%v)",
				c.name, from, to, ok, c.from, c.to, c.ok)
		}
	}
}

// TestRebalanceConservesTotalAllowance forces a load skew (every request
// carries the same sticky key), waits for at least one applied SetLimit
// shift, and asserts the invariants the whole time: the global allowance
// total never changes and no shard drops below its floor.
func TestRebalanceConservesTotalAllowance(t *testing.T) {
	const shards, perShard = 2, 2
	tf := startFabric(t, Options{
		Shards:           shards,
		BackendProcs:     perShard,
		RebalanceTicks:   10,
		RebalanceSlack:   1,
		HysteresisRounds: 2,
		// Stealing off: an idle sibling stealing the hot shard's queue
		// moves real load to the cold shard, and the rebalancer then
		// (correctly) shifts allowance toward the thief — which this
		// test would misread as a wrong-direction shift.
		StealMin: NoSteal,
	}, func(fab *Fabric) {
		fab.Handle("/park", parkHandler)
	})

	hot := tf.fab.ownerOf("hot")
	stop := make(chan struct{})
	const clients = 6
	for i := 0; i < clients; i++ {
		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				kc, err := net.DialTimeout("tcp", tf.addr(), time.Second)
				if err != nil {
					continue
				}
				c := &kaConn{nc: kc}
				for r := 0; r < 50; r++ {
					if c.send("/park?ticks=30", "X-Shard-Key: hot") != nil {
						break
					}
					if _, _, err := c.recv(10 * time.Second); err != nil {
						break
					}
				}
				kc.Close()
			}
		}()
	}
	defer close(stop)

	total := shards * perShard
	deadline := time.Now().Add(30 * time.Second)
	sawShift := false
	for time.Now().Before(deadline) {
		limits := tf.fab.Limits()
		sum := 0
		for i, l := range limits {
			sum += l
			if l < 1 {
				t.Fatalf("shard %d allowance %d below floor", i, l)
			}
		}
		if sum != total {
			t.Fatalf("allowance total %d, want %d (limits %v)", sum, total, limits)
		}
		if tf.fab.FrontMetrics().Snapshot().Get("shard.rebalances") >= 1 {
			sawShift = true
			// The shift must have moved allowance toward the hot shard.
			if limits[hot] <= perShard {
				// Re-read: the shift may have landed between our two reads.
				limits = tf.fab.Limits()
			}
			if limits[hot] <= perShard {
				t.Errorf("hot shard %d allowance %d not grown past %d (limits %v)",
					hot, limits[hot], perShard, limits)
			}
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawShift {
		t.Fatal("no rebalance observed under forced skew")
	}
}

// TestShrinkWhileBusyReleasesProcsAtSafePoints shrinks a busy shard's
// allowance mid-flight: every in-flight request still completes (procs
// release only at safe points, never mid-handler) and the shard's live
// proc count then settles at the new limit.
func TestShrinkWhileBusyReleasesProcsAtSafePoints(t *testing.T) {
	tf := startFabric(t, Options{
		Shards:         2,
		BackendProcs:   2,
		RebalanceTicks: NoRebalance,
	}, func(fab *Fabric) {
		fab.Handle("/park", parkHandler)
	})
	hot := tf.fab.ownerOf("busykey")
	b := tf.fab.backends[hot]

	const clients = 4
	results := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			kc, err := net.DialTimeout("tcp", tf.addr(), 2*time.Second)
			if err != nil {
				results <- err
				return
			}
			defer kc.Close()
			c := &kaConn{nc: kc}
			if err := c.send("/park?ticks=150", "X-Shard-Key: busykey", "Connection: close"); err != nil {
				results <- err
				return
			}
			st, _, err := c.recv(20 * time.Second)
			if err == nil && st != 200 {
				err = fmt.Errorf("status %d", st)
			}
			results <- err
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the parks get in flight
	b.pl.SetLimit(1)
	for i := 0; i < clients; i++ {
		if err := <-results; err != nil {
			t.Errorf("in-flight request dropped by shrink: %v", err)
		}
	}
	settled := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if b.pl.Live() <= 1 {
			settled = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !settled {
		t.Errorf("shard %d live procs = %d, want <= 1 after shrink", hot, b.pl.Live())
	}
}

// TestDrainCascadeZeroDropped calls Drain with requests in flight: each
// must complete (the cascade waits for the front's connections before
// draining backends), new connections must be refused, and every runner
// must return.
func TestDrainCascadeZeroDropped(t *testing.T) {
	tf := startFabric(t, Options{Shards: 2, RebalanceTicks: NoRebalance},
		func(fab *Fabric) { fab.Handle("/park", parkHandler) })

	const clients = 3
	results := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func() {
			kc, err := net.DialTimeout("tcp", tf.addr(), 2*time.Second)
			if err != nil {
				results <- -1
				return
			}
			defer kc.Close()
			c := &kaConn{nc: kc}
			if c.send("/park?ticks=80", "Connection: close") != nil {
				results <- -1
				return
			}
			st, _, err := c.recv(30 * time.Second)
			if err != nil {
				st = -1
			}
			results <- st
		}()
	}
	time.Sleep(30 * time.Millisecond) // requests reach the shards
	tf.drainAndWait(t)
	for i := 0; i < clients; i++ {
		if st := <-results; st != 200 {
			t.Errorf("in-flight request got %d during drain, want 200", st)
		}
	}
	if _, err := net.DialTimeout("tcp", tf.addr(), 500*time.Millisecond); err == nil {
		t.Error("fabric still accepting connections after drain")
	}
}

// TestMultiShardAccessLogUnTorn drives traffic through every shard into
// the shared access log and checks each line is whole — exactly the
// seven "shard tick proc status latency method path" fields — with at
// least two distinct shard ids present.
func TestMultiShardAccessLogUnTorn(t *testing.T) {
	tf := startFabric(t, Options{Shards: 2, RebalanceTicks: NoRebalance}, nil)
	// Pick sticky keys that provably cover both shards.
	var keys []string
	perShard := map[int]int{}
	for i := 0; len(keys) < 8; i++ {
		key := fmt.Sprintf("key-%d", i)
		if s := tf.fab.ownerOf(key); perShard[s] < 4 {
			perShard[s]++
			keys = append(keys, key)
		}
	}
	done := make(chan error, len(keys))
	for _, key := range keys {
		key := key
		go func() {
			kc, err := net.DialTimeout("tcp", tf.addr(), 2*time.Second)
			if err != nil {
				done <- err
				return
			}
			defer kc.Close()
			c := &kaConn{nc: kc}
			for i := 0; i < 10; i++ {
				if err := c.send("/echo?msg=x", "X-Shard-Key: "+key); err != nil {
					done <- err
					return
				}
				if st, _, err := c.recv(10 * time.Second); err != nil || st != 200 {
					done <- fmt.Errorf("status %d err %v", st, err)
					return
				}
			}
			done <- nil
		}()
	}
	for range keys {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	tf.drainAndWait(t)

	log := tf.fab.AccessLog()
	lines := bytes.Split(bytes.TrimSpace(log), []byte("\n"))
	if len(lines) < len(keys)*10 {
		t.Fatalf("access log has %d lines, want >= %d", len(lines), len(keys)*10)
	}
	shardsSeen := map[string]bool{}
	for _, ln := range lines {
		f := bytes.Fields(ln)
		if len(f) != 7 {
			t.Errorf("torn or malformed access-log line %q", ln)
			continue
		}
		shardsSeen[string(f[0])] = true
	}
	if len(shardsSeen) < 2 {
		t.Errorf("access log lines carry %d distinct shard ids, want >= 2 (%v)",
			len(shardsSeen), shardsSeen)
	}
}

// TestFabriczStatusEndpoint sanity-checks the front's own endpoint.
func TestFabriczStatusEndpoint(t *testing.T) {
	tf := startFabric(t, Options{Shards: 2, RebalanceTicks: NoRebalance}, nil)
	kc := dialKA(t, tf.addr())
	if err := kc.send("/fabricz", "Connection: close"); err != nil {
		t.Fatal(err)
	}
	st, body, err := kc.recv(10 * time.Second)
	if err != nil || st != 200 {
		t.Fatalf("status %d err %v", st, err)
	}
	if !bytes.Contains(body, []byte("shards 2")) || !bytes.Contains(body, []byte("shard 0 limit")) {
		t.Errorf("unexpected /fabricz body: %q", body)
	}
}

// TestRingStealSkipsPinned: pinned (topic-routed) jobs never leave
// their owner's ring — a stolen publish would be acked by a broker
// holding none of the topic's subscribers.  Unpinned neighbours are
// still claimable, and both the stolen run and the survivors keep
// their relative order.
func TestRingStealSkipsPinned(t *testing.T) {
	r := newRing(8)
	for i := 0; i < 6; i++ {
		r.push(job{remaining: int64(i), pinned: i%2 == 0})
	}
	dst := make([]job, 8)
	n := r.stealN(dst)
	if n != 3 {
		t.Fatalf("stealN = %d, want 3 (the unpinned half)", n)
	}
	for i, want := range []int64{1, 3, 5} {
		if dst[i].pinned || dst[i].remaining != want {
			t.Errorf("stolen[%d] = {remaining %d pinned %v}, want {%d false}",
				i, dst[i].remaining, dst[i].pinned, want)
		}
	}
	// The owner drains the pinned survivors, oldest first.
	for _, want := range []int64{0, 2, 4} {
		j, ok := r.pop()
		if !ok || j.remaining != want || !j.pinned {
			t.Fatalf("owner pop = {ok %v remaining %d pinned %v}, want {true %d true}",
				ok, j.remaining, j.pinned, want)
		}
	}
	// A ring of only pinned jobs yields nothing but is not an error.
	for i := 0; i < 4; i++ {
		r.push(job{remaining: int64(i), pinned: true})
	}
	if n := r.stealN(dst); n != 0 {
		t.Errorf("stealN over all-pinned ring = %d, want 0", n)
	}
	if r.depth() != 4 {
		t.Errorf("depth after refused steal = %d, want 4", r.depth())
	}
}
