//go:build linux

package shard

// End-to-end elastic membership: scale 2 → 4 → 2 through the admin
// /scale endpoint while streaming pub/sub subscriptions and keep-alive
// request traffic ride across both transitions, asserting the two
// zero-loss invariants — every request answered, every acked publish
// delivered to every pre-flip subscriber on its ORIGINAL stream.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fabriczBody fetches /fabricz over an existing keep-alive connection.
func fabriczBody(t *testing.T, kc *kaConn) string {
	t.Helper()
	if err := kc.send("/fabricz"); err != nil {
		t.Fatal(err)
	}
	st, body, err := kc.recv(10 * time.Second)
	if err != nil || st != 200 {
		t.Fatalf("/fabricz: status %d err %v", st, err)
	}
	return string(body)
}

// scaleAndWait issues /scale?shards=n and polls /fabricz until the
// membership settles at n active members.
func scaleAndWait(t *testing.T, kc *kaConn, n int) {
	t.Helper()
	if err := kc.send(fmt.Sprintf("/scale?shards=%d", n)); err != nil {
		t.Fatal(err)
	}
	st, body, err := kc.recv(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st != 202 && st != 200 {
		t.Fatalf("/scale?shards=%d: status %d body %q", n, st, body)
	}
	want := fmt.Sprintf("active %d min", n)
	deadline := time.Now().Add(60 * time.Second)
	for {
		if strings.Contains(fabriczBody(t, kc), want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership did not reach %d active shards", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestElasticScaleUpDownZeroLoss(t *testing.T) {
	// The Spawn hook's goroutines must be joined after the fabric drains;
	// cleanups run LIFO, so register the join BEFORE startFabric's drain.
	var wg sync.WaitGroup
	t.Cleanup(func() { wg.Wait() })
	opts := Options{
		Shards:         2,
		BackendProcs:   2,
		PubSub:         true,
		RebalanceTicks: NoRebalance,
		Spawn: func(r func()) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r()
			}()
		},
	}
	tf := startFabric(t, opts, nil)

	// Streaming subscribers on several topics: the consistent-hash ring
	// spreads them over the members, so both scale events must hand some
	// of them off — and each must keep receiving on the same stream.
	const topics = 6
	subs := make([]*streamSub, topics)
	acked := make([]int, topics)
	for i := range subs {
		subs[i] = openSub(t, tf.addr(), fmt.Sprintf("e%d", i))
	}

	// publishRound publishes one frame per topic.  During a handoff a
	// topic's old owner answers 409 (tombstone) for the brief window
	// before the flip — retryable by contract, so retry; anything else
	// non-200 is a dropped publish and fails the test.
	publishRound := func(round int) {
		t.Helper()
		for i := 0; i < topics; i++ {
			payload := fmt.Sprintf("r%d-e%d", round, i)
			deadline := time.Now().Add(30 * time.Second)
			for {
				st := post(t, tf.addr(), fmt.Sprintf("/publish?topic=e%d", i), []byte(payload))
				if st == 200 {
					acked[i]++
					break
				}
				if st != 409 && st != 503 {
					t.Fatalf("publish %s: status %d", payload, st)
				}
				if time.Now().After(deadline) {
					t.Fatalf("publish %s: still unavailable (last status %d)", payload, st)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}
	}
	// readRound reads that frame from every subscriber's original stream.
	readRound := func(round int) {
		t.Helper()
		for i, ss := range subs {
			want := fmt.Sprintf("r%d-e%d", round, i)
			if frame, term := ss.next(t, 30*time.Second); term || frame != want {
				t.Fatalf("sub e%d: frame = %q (term=%v), want %q", i, frame, term, want)
			}
		}
	}
	// ping asserts plain request traffic is answered across transitions.
	ping := func(kc *kaConn, n int) {
		t.Helper()
		for j := 0; j < n; j++ {
			if err := kc.send("/echo?msg=up"); err != nil {
				t.Fatal(err)
			}
			st, body, err := kc.recv(10 * time.Second)
			if err != nil {
				t.Fatalf("ping %d: %v", j, err)
			}
			if st != 200 || string(body) != "up" {
				t.Fatalf("ping %d: status %d body %q", j, st, body)
			}
		}
	}

	admin := dialKA(t, tf.addr())
	pinger := dialKA(t, tf.addr())

	publishRound(0)
	readRound(0)
	ping(pinger, 5)

	scaleAndWait(t, admin, 4) // two acquisitions
	ping(pinger, 5)
	publishRound(1)
	readRound(1)

	scaleAndWait(t, admin, 2) // two zero-loss drain-outs
	ping(pinger, 5)
	publishRound(2)
	readRound(2)

	// Membership observability: epoch counts the four flips, the
	// released slots report gone, and the scale counters add up.
	body := fabriczBody(t, admin)
	for _, want := range []string{
		"epoch 5 active 2",
		"scale_ups 2 scale_downs 2 joins 2 leaves 2",
		"phase gone",
		"vnodes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/fabricz missing %q:\n%s", want, body)
		}
	}

	// Zero missing acked deliveries: every frame acked above was already
	// matched by readRound on the original stream.  Drain and confirm
	// each stream ends with the clean terminator and no unread frames —
	// nothing was duplicated by the dual-registration overlap either.
	tf.drainAndWait(t)
	for i, ss := range subs {
		if frame, term := ss.next(t, 20*time.Second); !term {
			t.Errorf("sub e%d: unexpected extra frame %q after drain (acked %d)", i, frame, acked[i])
		}
	}
}

// TestElasticReleaseDrainsInFlight: a long request parked on the victim
// shard when the scale-down begins must still be answered — the release
// choreography waits for the victim's ring and server to drain before
// the shard's worlds exit.
func TestElasticReleaseDrainsInFlight(t *testing.T) {
	var wg sync.WaitGroup
	t.Cleanup(func() { wg.Wait() })
	opts := Options{
		Shards:         2,
		BackendProcs:   2,
		RebalanceTicks: NoRebalance,
		Spawn: func(r func()) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				r()
			}()
		},
	}
	tf := startFabric(t, opts, nil)
	admin := dialKA(t, tf.addr())
	scaleAndWait(t, admin, 3)

	// Park long requests on every member via distinct sticky keys, so at
	// least one rides the victim through the drain-out.
	const parked = 6
	done := make(chan int, parked)
	for i := 0; i < parked; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			kc := dialKA(t, tf.addr())
			if err := kc.send("/park?ticks=400", fmt.Sprintf("X-Shard-Key: k%d", i)); err != nil {
				done <- -1
				return
			}
			st, _, err := kc.recv(60 * time.Second)
			if err != nil {
				done <- -1
				return
			}
			done <- st
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the parks land in the rings
	scaleAndWait(t, admin, 2)
	for i := 0; i < parked; i++ {
		if st := <-done; st != 200 {
			t.Errorf("parked request %d: status %d, want 200 (zero dropped in-flight)", i, st)
		}
	}
}
