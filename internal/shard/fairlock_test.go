package shard

// End-to-end coverage for Options.FairLocks: the fabric serving
// correctly with every hot-path lock swapped for the FIFO claim/release
// protocol, on both fronts, and the new wait instruments surfacing on
// /fabricz.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFabricFairLocksEndToEnd drives concurrent keep-alive clients
// through a fair-locked fabric: every ring push/pop, steal claim, and
// reply wait goes through the claim/release path, and every request
// must still be answered correctly.
func TestFabricFairLocksEndToEnd(t *testing.T) {
	tf := startFabric(t, Options{Shards: 2, FairLocks: true}, nil)
	const clients, reqs = 4, 8
	var wg sync.WaitGroup
	errs := make(chan error, clients*reqs)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			kc := dialKA(t, tf.addr())
			for i := 0; i < reqs; i++ {
				msg := fmt.Sprintf("c%dm%d", c, i)
				if err := kc.send("/echo?msg=" + msg); err != nil {
					errs <- err
					return
				}
				st, body, err := kc.recv(10 * time.Second)
				if err != nil {
					errs <- fmt.Errorf("client %d request %d: %w", c, i, err)
					return
				}
				if st != 200 || string(body) != msg {
					errs <- fmt.Errorf("client %d request %d: status %d body %q", c, i, st, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// /fabricz must surface the fair-lock state and wait instruments.
	kc := dialKA(t, tf.addr())
	if err := kc.send("/fabricz", "Connection: close"); err != nil {
		t.Fatal(err)
	}
	st, body, err := kc.recv(10 * time.Second)
	if err != nil || st != 200 {
		t.Fatalf("/fabricz: status %d err %v", st, err)
	}
	if !strings.Contains(string(body), "fair_locks true") {
		t.Errorf("/fabricz does not report fair_locks true:\n%s", body)
	}
	if !strings.Contains(string(body), "ring_waits ") {
		t.Errorf("/fabricz does not report ring_waits:\n%s", body)
	}
}

// TestFabricFairLocksMux covers the mux front's fair inbox: the
// acceptor→poller handoff lock is a FairLock, and the poller pool must
// still adopt and serve connections.
func TestFabricFairLocksMux(t *testing.T) {
	tf := startFabric(t, Options{Shards: 2, Mux: true, Pollers: 2, FairLocks: true}, nil)
	for i := 0; i < 3; i++ {
		kc := dialKA(t, tf.addr())
		msg := fmt.Sprintf("mux%d", i)
		if err := kc.send("/echo?msg=" + msg); err != nil {
			t.Fatal(err)
		}
		st, body, err := kc.recv(10 * time.Second)
		if err != nil || st != 200 || string(body) != msg {
			t.Fatalf("request %d: status %d body %q err %v", i, st, body, err)
		}
		kc.nc.Close()
	}
}

// TestFabricSpinBaselineReportsFairOff pins the ablation contract: the
// default (spin) fabric reports fair_locks false on /fabricz, so the
// CI soak and bench legs can assert which path they measured.
func TestFabricSpinBaselineReportsFairOff(t *testing.T) {
	tf := startFabric(t, Options{Shards: 2}, nil)
	kc := dialKA(t, tf.addr())
	if err := kc.send("/fabricz", "Connection: close"); err != nil {
		t.Fatal(err)
	}
	st, body, err := kc.recv(10 * time.Second)
	if err != nil || st != 200 {
		t.Fatalf("/fabricz: status %d err %v", st, err)
	}
	if !strings.Contains(string(body), "fair_locks false") {
		t.Errorf("/fabricz does not report fair_locks false:\n%s", body)
	}
}
