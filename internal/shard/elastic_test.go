package shard

// Elastic membership unit tests: the consistent-hash movement bound the
// slot-keyed ring exists to provide, and the autoscaler's pure kernel.
// The end-to-end scale choreography is exercised in elastic_e2e_test.go.

import (
	"fmt"
	"testing"
)

// TestChashMovementBound pins the property that justifies keying vnodes
// on slot ids: growing the member set by one moves about 1/N of the key
// space to the newcomer (bounded here at 1.5/N over a key sample), and
// shrinking by one moves ONLY the keys the departed slot owned — a
// surviving member never loses a key to another survivor.
func TestChashMovementBound(t *testing.T) {
	const keys = 4000
	small := []int{0, 1, 2, 3}
	grown := []int{0, 1, 2, 3, 4}
	rSmall := newChashRing(small, ringVnodes)
	rGrown := newChashRing(grown, ringVnodes)

	moved, toNewcomer := 0, 0
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before := small[rSmall.lookup(k)]
		after := grown[rGrown.lookup(k)]
		if before != after {
			moved++
			if after == 4 {
				toNewcomer++
			}
		}
	}
	if moved == 0 {
		t.Fatal("adding a slot moved no keys; the ring is not spreading")
	}
	// ~1/5 of keys should move; 1.5/5 = 30% is the tolerance for vnode
	// placement variance at 64 vnodes/slot.
	if max := keys * 3 / 10; moved > max {
		t.Errorf("adding 1 of 5 slots moved %d/%d keys, want <= %d (~1.5/N)", moved, keys, max)
	}
	// Every moved key must have moved TO the newcomer: growth never
	// shuffles keys between survivors.
	if moved != toNewcomer {
		t.Errorf("%d keys moved but only %d to the new slot; %d shuffled between survivors",
			moved, toNewcomer, moved-toNewcomer)
	}

	// Removal is the same comparison read the other way: going from the
	// grown ring back to the small one, only keys owned by slot 4 change
	// owner.
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before := grown[rGrown.lookup(k)]
		after := small[rSmall.lookup(k)]
		if before != 4 && before != after {
			t.Fatalf("key %q moved from surviving slot %d to %d on removal of slot 4", k, before, after)
		}
	}
}

// TestChashSlotStability: the same slot set always yields the same ring,
// and reordering the actives array relabels owners without moving any
// key between slots — the invariant flips depend on.
func TestChashSlotStability(t *testing.T) {
	a := newChashRing([]int{0, 1, 2}, ringVnodes)
	b := newChashRing([]int{2, 0, 1}, ringVnodes)
	fwd := []int{0, 1, 2}
	rev := []int{2, 0, 1}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("s-%d", i)
		if fwd[a.lookup(k)] != rev[b.lookup(k)] {
			t.Fatalf("key %q maps to slot %d in one ordering, %d in the other",
				k, fwd[a.lookup(k)], rev[b.lookup(k)])
		}
	}
}

// TestPlanScale covers the autoscaler kernel's decision table.
func TestPlanScale(t *testing.T) {
	cases := []struct {
		name                     string
		loads                    []int
		min, max, up, down, want int
	}{
		{"hot scales up", []int{10, 10}, 1, 4, 8, 2, 1},
		{"idle scales down", []int{0, 1}, 1, 4, 8, 2, -1},
		{"steady holds", []int{5, 5}, 1, 4, 8, 2, 0},
		{"at max holds", []int{10, 10}, 1, 2, 8, 2, 0},
		{"at min holds", []int{0, 0}, 2, 4, 8, 2, 0},
		{"mean not member max", []int{16, 0}, 1, 4, 8, 2, 1},
		{"empty fleet holds", nil, 1, 4, 8, 2, 0},
	}
	for _, c := range cases {
		if got := planScale(c.loads, c.min, c.max, c.up, c.down); got != c.want {
			t.Errorf("%s: planScale(%v, min=%d max=%d up=%d down=%d) = %d, want %d",
				c.name, c.loads, c.min, c.max, c.up, c.down, got, c.want)
		}
	}
}

// TestShares: the proc budget is conserved and spread within one proc of
// even across any member count.
func TestShares(t *testing.T) {
	for budget := 1; budget <= 16; budget++ {
		for n := 1; n <= budget; n++ {
			sh := shares(budget, n)
			sum, min, max := 0, sh[0], sh[0]
			for _, s := range sh {
				sum += s
				if s < min {
					min = s
				}
				if s > max {
					max = s
				}
			}
			if sum != budget {
				t.Fatalf("shares(%d, %d) sums to %d", budget, n, sum)
			}
			if max-min > 1 || min < 1 {
				t.Fatalf("shares(%d, %d) = %v: uneven or starved", budget, n, sh)
			}
		}
	}
}

// TestScaleToRequiresElastic: without a Spawn hook the fabric refuses
// membership changes rather than wedging.
func TestScaleToRequiresElastic(t *testing.T) {
	tf := startFabric(t, Options{Shards: 2}, nil)
	if err := tf.fab.ScaleTo(3); err == nil {
		t.Error("ScaleTo on a non-elastic fabric did not error")
	}
	if got := tf.fab.ActiveShards(); got != 2 {
		t.Errorf("ActiveShards = %d, want 2", got)
	}
	if got := tf.fab.Epoch(); got != 1 {
		t.Errorf("Epoch = %d, want 1 (no flips)", got)
	}
}
