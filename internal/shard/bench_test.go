package shard

// Guard on the committed benchmark artifact: the sharded keep-alive
// fabric must beat the single-shard Connection: close baseline it
// replaced, and the keep-alive load generator must actually have reused
// connections when producing it.

import (
	"encoding/json"
	"os"
	"testing"
)

type benchSummary struct {
	KeepAlive   bool    `json:"keepalive"`
	OK          int64   `json:"ok"`
	ConnsDialed int64   `json:"conns_dialed"`
	ReusedRatio float64 `json:"reused_ratio"`
	Throughput  float64 `json:"throughput_rps"`
}

func TestBenchArtifactShardBeatsBaseline(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_shard.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var bench struct {
		Before benchSummary `json:"before"`
		After  benchSummary `json:"after"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Before.Throughput <= 0 || bench.After.Throughput <= 0 {
		t.Fatal("benchmark artifact has non-positive throughput")
	}
	if bench.After.Throughput <= bench.Before.Throughput {
		t.Errorf("4-shard keep-alive throughput %.1f not strictly above single-shard baseline %.1f",
			bench.After.Throughput, bench.Before.Throughput)
	}
	if !bench.After.KeepAlive || bench.Before.KeepAlive {
		t.Error("artifact modes inverted: after must be keep-alive, before must not be")
	}
	if bench.After.ReusedRatio < 0.5 {
		t.Errorf("keep-alive run reused-conn ratio %.3f, want >= 0.5", bench.After.ReusedRatio)
	}
	if bench.After.ConnsDialed >= bench.After.OK {
		t.Errorf("keep-alive run dialed %d conns for %d responses — connections were not reused",
			bench.After.ConnsDialed, bench.After.OK)
	}
}
