package shard

// Guard on the committed benchmark artifact: the sharded keep-alive
// fabric must beat the single-shard Connection: close baseline it
// replaced, and the keep-alive load generator must actually have reused
// connections when producing it.

import (
	"encoding/json"
	"os"
	"testing"
)

type benchSummary struct {
	KeepAlive   bool    `json:"keepalive"`
	Pipeline    int     `json:"pipeline"`
	OK          int64   `json:"ok"`
	ConnsDialed int64   `json:"conns_dialed"`
	ReusedRatio float64 `json:"reused_ratio"`
	Throughput  float64 `json:"throughput_rps"`
	SocketReads int64   `json:"socket_reads"`
	RespPerRead float64 `json:"responses_per_read"`
}

type stealCounters struct {
	Steals        int64 `json:"steals"`
	Stolen        int64 `json:"stolen"`
	StealAttempts int64 `json:"steal_attempts"`
	StealAborts   int64 `json:"steal_aborts"`
	RingExpired   int64 `json:"ring_expired"`
}

func TestBenchArtifactShardBeatsBaseline(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_shard.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var bench struct {
		Before benchSummary `json:"before"`
		After  benchSummary `json:"after"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Before.Throughput <= 0 || bench.After.Throughput <= 0 {
		t.Fatal("benchmark artifact has non-positive throughput")
	}
	if bench.After.Throughput <= bench.Before.Throughput {
		t.Errorf("4-shard keep-alive throughput %.1f not strictly above single-shard baseline %.1f",
			bench.After.Throughput, bench.Before.Throughput)
	}
	if !bench.After.KeepAlive || bench.Before.KeepAlive {
		t.Error("artifact modes inverted: after must be keep-alive, before must not be")
	}
	if bench.After.ReusedRatio < 0.5 {
		t.Errorf("keep-alive run reused-conn ratio %.3f, want >= 0.5", bench.After.ReusedRatio)
	}
	if bench.After.ConnsDialed >= bench.After.OK {
		t.Errorf("keep-alive run dialed %d conns for %d responses — connections were not reused",
			bench.After.ConnsDialed, bench.After.OK)
	}
}

// TestBenchArtifactBatchingBeatsSingleDequeue guards the PR-4 artifact:
// the batched + stealing fabric must beat the single-dequeue configuration
// of the *same* binary by at least 10% on an identical pipelined keep-alive
// workload, the skewed run must actually exercise the steal path, and the
// uniform run must show zero aborted claims (no steal livelock when load is
// balanced).
func TestBenchArtifactBatchingBeatsSingleDequeue(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_batch.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var bench struct {
		Before      benchSummary  `json:"before"`
		After       benchSummary  `json:"after"`
		AfterServer stealCounters `json:"after_server_counters"`
		Skew        benchSummary  `json:"skew"`
		SkewServer  stealCounters `json:"skew_server_counters"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Before.Throughput <= 0 || bench.After.Throughput <= 0 {
		t.Fatal("benchmark artifact has non-positive throughput")
	}
	if got := bench.After.Throughput / bench.Before.Throughput; got < 1.10 {
		t.Errorf("batched throughput %.1f is only %.2fx the single-dequeue baseline %.1f, want >= 1.10x",
			bench.After.Throughput, got, bench.Before.Throughput)
	}
	// Both legs must be the workload that can form batches at all: keep-alive
	// connections writing pipelined runs of >= 2 requests.
	for name, leg := range map[string]benchSummary{"before": bench.Before, "after": bench.After} {
		if !leg.KeepAlive {
			t.Errorf("%s leg is not keep-alive; the comparison must hold the client fixed", name)
		}
		if leg.Pipeline < 2 {
			t.Errorf("%s leg pipeline = %d, want >= 2 so multi-push batches can form", name, leg.Pipeline)
		}
	}
	// The skewed run drives one hot shard: siblings must have stolen work.
	if bench.SkewServer.Steals < 1 {
		t.Errorf("skewed run recorded %d successful steals, want >= 1", bench.SkewServer.Steals)
	}
	if bench.SkewServer.Stolen < bench.SkewServer.Steals {
		t.Errorf("skewed run stolen %d < steals %d — each claim must move at least one job",
			bench.SkewServer.Stolen, bench.SkewServer.Steals)
	}
	// Uniform load must not devolve into claim/abort churn.
	if bench.AfterServer.StealAborts != 0 {
		t.Errorf("uniform run recorded %d aborted steal claims, want 0", bench.AfterServer.StealAborts)
	}
	if bench.AfterServer.RingExpired != 0 || bench.SkewServer.RingExpired != 0 {
		t.Errorf("ring-dwell expiries (after=%d skew=%d) in runs sized to avoid shedding, want 0",
			bench.AfterServer.RingExpired, bench.SkewServer.RingExpired)
	}
}

// TestBenchArtifactReplyCoalescing guards the PR-5 artifact: group reply
// completion plus batched response rendering must beat the per-cell
// wait / per-response write configuration of the *same* binary by at
// least 15% on an identical pipelined keep-alive workload.  Both legs
// must be a workload where reply batches can form at all (keep-alive,
// pipeline >= 2), and the coalesced leg must actually have coalesced:
// the client's framed reads should each carry more than one response.
func TestBenchArtifactReplyCoalescing(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_reply.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var bench struct {
		Before benchSummary `json:"before"`
		After  benchSummary `json:"after"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Before.Throughput <= 0 || bench.After.Throughput <= 0 {
		t.Fatal("benchmark artifact has non-positive throughput")
	}
	if got := bench.After.Throughput / bench.Before.Throughput; got < 1.15 {
		t.Errorf("coalesced-reply throughput %.1f is only %.2fx the per-cell baseline %.1f, want >= 1.15x",
			bench.After.Throughput, got, bench.Before.Throughput)
	}
	for name, leg := range map[string]benchSummary{"before": bench.Before, "after": bench.After} {
		if !leg.KeepAlive {
			t.Errorf("%s leg is not keep-alive; the comparison must hold the client fixed", name)
		}
		if leg.Pipeline < 2 {
			t.Errorf("%s leg pipeline = %d, want >= 2 so reply batches can form", name, leg.Pipeline)
		}
	}
	// The coalesced leg's wire must show batching: strictly more
	// responses per data-bearing client read than the per-cell leg, and
	// comfortably more than one.
	if bench.After.RespPerRead <= 1.2 {
		t.Errorf("coalesced leg responses/read = %.2f, want > 1.2 — writes were not coalesced",
			bench.After.RespPerRead)
	}
	if bench.After.RespPerRead <= bench.Before.RespPerRead {
		t.Errorf("coalesced leg responses/read %.2f not above per-cell leg %.2f",
			bench.After.RespPerRead, bench.Before.RespPerRead)
	}
}

type muxLatency struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

type muxLeg struct {
	benchSummary
	Errors    int64      `json:"errors"`
	IdleConns int64      `json:"idle_conns"`
	IdleHeld  int64      `json:"idle_held"`
	IdleSent  int64      `json:"idle_sent"`
	IdleOK    int64      `json:"idle_ok"`
	IdleDrops int64      `json:"idle_drops"`
	Latency   muxLatency `json:"latency_ms"`
}

type muxServerStats struct {
	Pollers       int64 `json:"pollers"`
	ConnsParked   int64 `json:"conns_parked"`
	PollWakeups   int64 `json:"poll_wakeups"`
	ResumeBatches int64 `json:"resume_batches"`
	Goroutines    int64 `json:"goroutines"`
	Threads       int64 `json:"threads"`
	HeapAlloc     int64 `json:"heap_alloc"`
}

// TestBenchArtifactMux guards the PR-6 artifact: the event-multiplexed
// front must hold a mostly-idle keep-alive population at the reference
// host's fd ceiling (hard NOFILE rlimit 20000, unraisable there, so the
// population is sized to 18k — not the ISSUE's 50-100k, which needs a
// host with a liftable limit; the artifact records the environment)
// with zero liveness-ping drops, a flat OS thread count, bounded
// per-connection heap, and the active subset still served.
func TestBenchArtifactMux(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_mux.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var bench struct {
		Env struct {
			NofileLimit int64 `json:"nofile_limit"`
		} `json:"env"`
		Before muxLeg `json:"before"`
		After  muxLeg `json:"after"`
		Server struct {
			Base muxServerStats `json:"base"`
			Held muxServerStats `json:"held"`
		} `json:"server"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}

	// The population: at the recorded fd ceiling, fully held, no drops.
	if bench.Env.NofileLimit > 0 && bench.After.IdleConns < bench.Env.NofileLimit-2048 {
		t.Errorf("idle population %d not sized to the recorded fd ceiling %d",
			bench.After.IdleConns, bench.Env.NofileLimit)
	}
	if bench.After.IdleConns < 15000 {
		t.Errorf("idle population %d, want >= 15000", bench.After.IdleConns)
	}
	if bench.After.IdleHeld < bench.After.IdleConns {
		t.Errorf("peak idle conns held %d < requested %d — the population never fully held",
			bench.After.IdleHeld, bench.After.IdleConns)
	}
	if bench.After.IdleDrops != 0 {
		t.Errorf("idle liveness pings dropped %d connections, want 0", bench.After.IdleDrops)
	}
	if bench.After.IdleOK < bench.After.IdleConns {
		t.Errorf("idle pings ok %d < population %d — not every held conn proved live",
			bench.After.IdleOK, bench.After.IdleConns)
	}
	if bench.Before.IdleConns != 0 {
		t.Error("baseline leg carries an idle population; it must be active-only")
	}
	for name, leg := range map[string]muxLeg{"before": bench.Before, "after": bench.After} {
		if !leg.KeepAlive {
			t.Errorf("%s leg is not keep-alive; the comparison must hold the client fixed", name)
		}
		if leg.Errors != 0 {
			t.Errorf("%s leg recorded %d transport errors, want 0", name, leg.Errors)
		}
		if leg.OK < 1 {
			t.Errorf("%s leg served no active requests", name)
		}
	}

	// The server: the population parked on a fixed poller pool, not on
	// per-connection threads or goroutines, with small parked state.
	if bench.Server.Held.ConnsParked < 15000 {
		t.Errorf("conns_parked at hold = %d, want >= 15000", bench.Server.Held.ConnsParked)
	}
	if bench.Server.Held.Pollers < 1 || bench.Server.Held.Pollers > 16 {
		t.Errorf("pollers = %d, want a small fixed pool", bench.Server.Held.Pollers)
	}
	if got := bench.Server.Held.Threads - bench.Server.Base.Threads; got > 64 {
		t.Errorf("OS threads grew by %d while holding the population, want flat (<= 64)", got)
	}
	if bench.Server.Held.Goroutines-bench.Server.Base.Goroutines > 64 {
		t.Errorf("goroutines grew by %d while holding the population, want flat (<= 64)",
			bench.Server.Held.Goroutines-bench.Server.Base.Goroutines)
	}
	if parked := bench.Server.Held.ConnsParked; parked > 0 {
		perConn := (bench.Server.Held.HeapAlloc - bench.Server.Base.HeapAlloc) / parked
		if perConn > 8192 {
			t.Errorf("heap grew %d bytes per parked conn, want <= 8192", perConn)
		}
	}
	if bench.Server.Held.PollWakeups < 1 || bench.Server.Held.ResumeBatches < 1 {
		t.Errorf("poller instruments flat (wakeups=%d resume_batches=%d): the pool never drove a resume",
			bench.Server.Held.PollWakeups, bench.Server.Held.ResumeBatches)
	}

	// The active subset must remain served at sane latency next to the
	// parked population.  The bound is loose — the reference host has
	// one CPU and the liveness pings are real added load — but it rules
	// out the population starving the active path outright.
	if b, a := bench.Before.Latency.P99, bench.After.Latency.P99; b > 0 && a > b*3+25 {
		t.Errorf("active p99 %.1fms with population held vs %.1fms baseline — parked conns are not cheap",
			a, b)
	}
}

type fairLeg struct {
	benchSummary
	Skew    float64 `json:"skew_hot_fraction"`
	Latency struct {
		P999 float64 `json:"p999"`
	} `json:"latency_ms"`
}

type fairServer struct {
	FairLocks     bool             `json:"fair_locks"`
	RingWaits     int64            `json:"ring_waits"`
	RingWaitOver  int64            `json:"ring_wait_over"`
	ReplySpin     int64            `json:"reply_spin"`
	ReplyPark     int64            `json:"reply_park"`
	RingWaitHist  map[string]int64 `json:"ring_wait_hist"`
	ReplyWaitHist map[string]int64 `json:"reply_wait_hist"`
}

// TestBenchArtifactFairLock guards the PR-10 artifact: the fair FIFO
// claim/release configuration must hold throughput within 5% of the
// TAS-spin baseline of the *same* binary under skewed keep-alive load,
// flatten the client p99.9 (the bounded-wait claim), and show a
// bounded, non-heavy-tail claim-wait distribution on the instrumented
// ring histogram.  Both legs must be the workload the claim is about:
// keep-alive, pipelined, with a sticky hot key.
func TestBenchArtifactFairLock(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_fairlock.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var bench struct {
		Spin       fairLeg    `json:"spin"`
		Fair       fairLeg    `json:"fair"`
		SpinServer fairServer `json:"spin_server"`
		FairServer fairServer `json:"fair_server"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	if bench.Spin.Throughput <= 0 || bench.Fair.Throughput <= 0 {
		t.Fatal("benchmark artifact has non-positive throughput")
	}
	// Throughput within 5% of the spin baseline (here it is above it, but
	// the ISSUE's bound is the contract).
	if got := bench.Fair.Throughput / bench.Spin.Throughput; got < 0.95 {
		t.Errorf("fair-lock throughput %.1f is only %.3fx the spin baseline %.1f, want >= 0.95x",
			bench.Fair.Throughput, got, bench.Spin.Throughput)
	}
	// The tail-flattening claim: fair p99.9 strictly below the spin
	// baseline's.
	if bench.Spin.Latency.P999 <= 0 || bench.Fair.Latency.P999 <= 0 {
		t.Fatal("artifact is missing p99.9 latency")
	}
	if bench.Fair.Latency.P999 >= bench.Spin.Latency.P999 {
		t.Errorf("fair p99.9 %.2fms not strictly below spin baseline %.2fms",
			bench.Fair.Latency.P999, bench.Spin.Latency.P999)
	}
	// Both legs must be the skewed keep-alive workload, error-free.
	for name, leg := range map[string]fairLeg{"spin": bench.Spin, "fair": bench.Fair} {
		if !leg.KeepAlive {
			t.Errorf("%s leg is not keep-alive; the comparison must hold the client fixed", name)
		}
		if leg.Pipeline < 2 {
			t.Errorf("%s leg pipeline = %d, want >= 2", name, leg.Pipeline)
		}
		if leg.Skew < 0.5 {
			t.Errorf("%s leg hot-key skew %.2f, want >= 0.5 — the claim is about contended rings", name, leg.Skew)
		}
	}
	// The legs must have measured what they say: fair locks on/off.
	if !bench.FairServer.FairLocks || bench.SpinServer.FairLocks {
		t.Error("artifact legs inverted: fair_server must report fair_locks true, spin_server false")
	}
	// The claim-wait instrument must be live on the fair leg...
	if bench.FairServer.RingWaits < 1 {
		t.Error("fair leg recorded no contended ring claims; the wait histogram never fired")
	}
	// ...and its distribution bounded: no more than 1% of contended
	// claims past the largest bucket bound (the heavy tail the protocol
	// rules out), and the overflow field consistent with the histogram.
	if over := bench.FairServer.RingWaitHist["inf"]; over != bench.FairServer.RingWaitOver {
		t.Errorf("ring_wait_over %d disagrees with histogram overflow bucket %d",
			bench.FairServer.RingWaitOver, over)
	}
	if share := float64(bench.FairServer.RingWaitOver) / float64(bench.FairServer.RingWaits); share > 0.01 {
		t.Errorf("claim-wait overflow share %.3f (over %d of %d), want <= 0.01 — heavy tail",
			share, bench.FairServer.RingWaitOver, bench.FairServer.RingWaits)
	}
	// The bounded-wait mechanism on the reply path: the memoryless fair
	// wait must not park more than the adaptive spin baseline (park
	// storms from budget collapse are the spin path's tail pathology).
	if bench.FairServer.ReplyPark > bench.SpinServer.ReplyPark {
		t.Errorf("fair leg parked %d reply waits vs %d on the spin baseline — bounded waits should park less",
			bench.FairServer.ReplyPark, bench.SpinServer.ReplyPark)
	}
}

// TestBenchArtifactElastic guards the elastic-membership artifact: a
// runtime 2->4 scale-up must lift the steady keep-alive plateau by at
// least 1.2x, the drain-out back to 2 shards must drop zero in-flight
// requests, the concurrent pub/sub load must lose zero acked
// deliveries across both handoffs, and the transition dip must stay
// bounded to its two scale buckets.
func TestBenchArtifactElastic(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_elastic.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var bench struct {
		Elastic struct {
			TwoShardRPS  float64 `json:"two_shard_rps"`
			FourShardRPS float64 `json:"four_shard_rps"`
			PostDrainRPS float64 `json:"post_drain_rps"`
			Dip          struct {
				MinTransitionRPS float64 `json:"min_transition_rps"`
				BelowPlateau     int     `json:"buckets_below_two_shard_plateau"`
				Sheds            int64   `json:"sheds_during_transitions"`
				Errors           int64   `json:"errors_during_transitions"`
			} `json:"dip"`
			Counters struct {
				ScaleUps      int64 `json:"scale_ups"`
				ScaleDowns    int64 `json:"scale_downs"`
				Joins         int64 `json:"member_joins"`
				Leaves        int64 `json:"member_leaves"`
				HandoffTopics int64 `json:"handoff_topics"`
				HandoffSubs   int64 `json:"handoff_subs"`
			} `json:"membership_counters"`
			Park struct {
				OK      int64 `json:"ok"`
				Errors  int64 `json:"errors"`
				Expired int64 `json:"expired"`
			} `json:"park"`
			PubSub struct {
				Acked        int64 `json:"pub_acked"`
				Delivered    int64 `json:"delivered"`
				MissingAcked int64 `json:"missing_acked"`
				CleanClosed  int64 `json:"sub_clean_closed"`
				Subscribers  int64 `json:"subscribers"`
			} `json:"pubsub"`
		} `json:"elastic"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	e := bench.Elastic
	if e.TwoShardRPS <= 0 || e.FourShardRPS <= 0 {
		t.Fatal("artifact has non-positive plateau throughput")
	}
	if e.FourShardRPS < 1.2*e.TwoShardRPS {
		t.Errorf("4-shard steady throughput %.1f below 1.2x the 2-shard plateau %.1f",
			e.FourShardRPS, e.TwoShardRPS)
	}
	if e.PostDrainRPS < 0.8*e.TwoShardRPS {
		t.Errorf("post-drain throughput %.1f collapsed below the 2-shard plateau %.1f",
			e.PostDrainRPS, e.TwoShardRPS)
	}
	if e.Park.Errors != 0 || e.Park.Expired != 0 {
		t.Errorf("park load saw %d errors / %d expired across the scale cycle, want 0/0",
			e.Park.Errors, e.Park.Expired)
	}
	if e.Dip.Errors != 0 {
		t.Errorf("transition buckets saw %d errors, want 0 (sheds are the only allowed dip)", e.Dip.Errors)
	}
	if e.Dip.Sheds > 10 {
		t.Errorf("transition buckets shed %d requests, want a handful at most", e.Dip.Sheds)
	}
	if e.Counters.ScaleUps < 1 || e.Counters.ScaleDowns < 1 {
		t.Errorf("cycle must contain at least one scale-up and one drain-out, got %d/%d",
			e.Counters.ScaleUps, e.Counters.ScaleDowns)
	}
	if e.Counters.Joins < 1 || e.Counters.Leaves < 1 || e.Counters.HandoffTopics < 1 {
		t.Errorf("membership counters show no real handoff: joins %d leaves %d handoff_topics %d",
			e.Counters.Joins, e.Counters.Leaves, e.Counters.HandoffTopics)
	}
	if e.PubSub.MissingAcked != 0 {
		t.Errorf("pubsub lost %d acked deliveries across the handoffs, want 0", e.PubSub.MissingAcked)
	}
	if e.PubSub.CleanClosed != e.PubSub.Subscribers {
		t.Errorf("only %d of %d subscriptions closed cleanly (ledger not fully checked)",
			e.PubSub.CleanClosed, e.PubSub.Subscribers)
	}
	if e.PubSub.Acked <= 0 || e.PubSub.Delivered < e.PubSub.Acked {
		t.Errorf("pubsub artifact inconsistent: acked %d delivered %d", e.PubSub.Acked, e.PubSub.Delivered)
	}
}
