package shard

// Load-driven proc rebalancing: scheduling policy written in the
// language, across shards.  The rebalancer is an ordinary MP thread of
// the front system; every RebalanceTicks it reads each shard's load off
// the metrics spine — the serve.queue_depth and serve.inflight gauges
// that shard's own pipeline maintains, plus the forward ring's
// occupancy — and proposes moving one proc of allowance from the
// least-loaded shard that is above its floor to the most-loaded shard
// with headroom.  A proposal is applied only after HysteresisRounds
// consecutive periods agree on the same donor and recipient, so a
// transient spike cannot thrash allowance back and forth.  Application
// is two proc.SetLimit calls whose deltas cancel: the global total is
// conserved by construction, and the donor's procs release themselves at
// their next safe point — the paper's §3.1 revocation protocol doing
// live load balancing.

import (
	"repro/internal/proc"
)

// planShift is the pure policy kernel: given per-shard loads and
// current allowances, it proposes moving one proc from shard `from` to
// shard `to`, or reports ok=false when the fleet is balanced enough.
// Constraints: the donor stays at or above floor, the recipient stays at
// or below cap, and the load imbalance must exceed slack.
func planShift(loads, limits []int, floor, cap, slack int) (from, to int, ok bool) {
	if len(loads) < 2 || len(loads) != len(limits) {
		return 0, 0, false
	}
	from, to = -1, -1
	for i := range loads {
		if limits[i] > floor && (from < 0 || loads[i] < loads[from]) {
			from = i
		}
		if limits[i] < cap && (to < 0 || loads[i] > loads[to]) {
			to = i
		}
	}
	if from < 0 || to < 0 || from == to || loads[to]-loads[from] <= slack {
		return 0, 0, false
	}
	return from, to, true
}

// shardLoads reads every shard's current load from its metrics registry
// plus its forward ring.  The gauges are counters summed over per-proc
// slots, so a snapshot racing an inc on one slot and the matching dec
// on another can transiently read negative — clamp each component, or a
// busy shard can look less loaded than an idle one and the rebalancer
// shifts allowance the wrong way.
func (fab *Fabric) shardLoads() []int {
	loads := make([]int, len(fab.backends))
	for i, b := range fab.backends {
		snap := b.sys.Metrics().Snapshot()
		loads[i] = clampNonNeg(snap.Get("serve.queue_depth")) +
			clampNonNeg(snap.Get("serve.inflight")) +
			b.ring.depth()
	}
	return loads
}

func clampNonNeg(v int64) int {
	if v < 0 {
		return 0
	}
	return int(v)
}

// rebalancer is the policy thread; it exits when the fabric drains.
func (fab *Fabric) rebalancer() {
	capacity := fab.opts.Shards * fab.opts.BackendProcs
	agreeing := 0
	prevFrom, prevTo := -1, -1
	for {
		fab.park(fab.opts.RebalanceTicks)
		if fab.Draining() {
			break
		}
		self := proc.Self()
		fab.m.checks.Inc(self)
		loads := fab.shardLoads()
		limits := fab.Limits()
		from, to, ok := planShift(loads, limits, fab.opts.ProcFloor, capacity, fab.opts.RebalanceSlack)
		if !ok {
			agreeing, prevFrom, prevTo = 0, -1, -1
			continue
		}
		if from != prevFrom || to != prevTo {
			agreeing, prevFrom, prevTo = 1, from, to
		} else {
			agreeing++
		}
		if agreeing < fab.opts.HysteresisRounds {
			continue
		}
		agreeing, prevFrom, prevTo = 0, -1, -1

		fab.state.Lock()
		fab.limits[from]--
		fab.limits[to]++
		newFrom, newTo := fab.limits[from], fab.limits[to]
		fab.lastShift = fab.clock.Now()
		fab.state.Unlock()
		// The donor's shrink takes effect at its procs' next safe points;
		// the recipient's growth is immediate headroom.  The two deltas
		// cancel: sum(limits) is invariant.
		fab.backends[from].pl.SetLimit(newFrom)
		fab.backends[to].pl.SetLimit(newTo)
		fab.m.rebalances.Inc(self)
		fab.emit(fab.evRebalance, int64(from)<<8|int64(to))
	}
	fab.state.Lock()
	fab.rebalDone = true
	fab.state.Unlock()
}
