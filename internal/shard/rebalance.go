package shard

// Load-driven scheduling policy written in the language, across shards.
// The policy thread is an ordinary MP thread of the front system with
// two instruments at two granularities:
//
//   - proc shifts (PR 3): every period it reads each active member's
//     load off the metrics spine and proposes moving one proc of
//     allowance from the least-loaded member above its floor to the
//     most-loaded with headroom — sustained skew correction inside a
//     fixed membership.
//
//   - whole-shard scaling (Options.Autoscale): when the *mean* load per
//     member stays above ScaleUpLoad, it acquires a shard; when it
//     stays below ScaleDownLoad, it releases one — member.go's
//     choreography, bounded by [MinShards, MaxShards].
//
// Both run under the same HysteresisRounds agreement discipline, so a
// transient spike can neither thrash allowance nor membership.  Every
// decision is stamped with the membership epoch its readings came from:
// agreement accumulated across a flip is discarded (and counted in
// shard.scale_stale_discarded) rather than applied — a shift computed
// against a stale member set could resize a shard that is mid-drain.
// The thread also serves the manual /scale mailbox; a manual scale
// event invalidates in-progress agreement the same way.

import (
	"repro/internal/cml"
	"repro/internal/proc"
)

// planShift is the pure policy kernel: given per-member loads and
// current allowances, it proposes moving one proc of allowance from
// member `from` to member `to`, or reports ok=false when the fleet is
// balanced enough.  Constraints: the donor stays at or above floor, the
// recipient stays at or below cap, and the load imbalance must exceed
// slack.
func planShift(loads, limits []int, floor, cap, slack int) (from, to int, ok bool) {
	if len(loads) < 2 || len(loads) != len(limits) {
		return 0, 0, false
	}
	from, to = -1, -1
	for i := range loads {
		if limits[i] > floor && (from < 0 || loads[i] < loads[from]) {
			from = i
		}
		if limits[i] < cap && (to < 0 || loads[i] > loads[to]) {
			to = i
		}
	}
	if from < 0 || to < 0 || from == to || loads[to]-loads[from] <= slack {
		return 0, 0, false
	}
	return from, to, true
}

// planScale is the autoscaler's pure kernel: +1 to acquire a shard when
// the mean per-member load reaches upLoad, -1 to release one when it is
// at or below downLoad, 0 otherwise — always within [min, max] members.
func planScale(loads []int, min, max, upLoad, downLoad int) int {
	n := len(loads)
	if n == 0 {
		return 0
	}
	total := 0
	for _, l := range loads {
		total += l
	}
	avg := total / n
	if avg >= upLoad && n < max {
		return 1
	}
	if avg <= downLoad && n > min {
		return -1
	}
	return 0
}

// shardLoads reads each given member's current load from its metrics
// registry plus its forward ring.  The gauges are counters summed over
// per-proc slots, so a snapshot racing an inc on one slot and the
// matching dec on another can transiently read negative — clamp each
// component, or a busy shard can look less loaded than an idle one and
// the policy shifts allowance the wrong way.
func (fab *Fabric) shardLoads(shards []*backend) []int {
	loads := make([]int, len(shards))
	for i, b := range shards {
		snap := b.sys.Metrics().Snapshot()
		loads[i] = clampNonNeg(snap.Get("serve.queue_depth")) +
			clampNonNeg(snap.Get("serve.inflight")) +
			b.ring.depth()
	}
	return loads
}

func clampNonNeg(v int64) int {
	if v < 0 {
		return 0
	}
	return int(v)
}

// policy is the policy thread; it exits when the fabric drains.  Each
// wait selects between the manual-scale mailbox and the period tick, so
// a /scale request is handled the moment it arrives.
func (fab *Fabric) policy() {
	period := fab.opts.RebalanceTicks
	if period <= 0 {
		period = 50 // elastic-only mode: ticks still drive the autoscaler exit
	}
	shifting := fab.opts.RebalanceTicks > 0
	agreeing, prevFrom, prevTo := 0, -1, -1
	scaleAgree, prevDir := 0, 0
	epoch := fab.mem.Load().epoch
	// discard throws away in-progress agreement because the membership
	// changed under it — the epoch-staleness rule.
	discard := func(self int) {
		if agreeing > 0 || scaleAgree > 0 {
			fab.m.scaleStale.Inc(self)
		}
		agreeing, prevFrom, prevTo = 0, -1, -1
		scaleAgree, prevDir = 0, 0
	}
	for {
		cmd := cml.Select(fab.frontSys,
			fab.scaleBox.RecvEvt(),
			cml.Wrap(fab.clock.AfterEvt(period), func(int64) int { return -1 }))
		if fab.Draining() {
			break
		}
		self := proc.Self()
		if cmd >= 0 {
			// Manual /scale: run it, then invalidate whatever agreement the
			// periodic readings had built against the old membership.
			fab.scaleTo(cmd)
			epoch = fab.mem.Load().epoch
			discard(self)
			continue
		}
		fab.m.checks.Inc(self)
		mem := fab.mem.Load()
		if mem.epoch != epoch {
			epoch = mem.epoch
			discard(self)
			continue
		}
		loads := fab.shardLoads(mem.shards)

		// Whole-shard scaling first: when a scale step fires, any proc
		// shift computed from this tick's readings is stale by definition.
		if fab.opts.Autoscale && fab.Elastic() {
			dir := planScale(loads, fab.opts.MinShards, fab.opts.MaxShards,
				fab.opts.ScaleUpLoad, fab.opts.ScaleDownLoad)
			switch {
			case dir == 0:
				scaleAgree, prevDir = 0, 0
			case dir != prevDir:
				scaleAgree, prevDir = 1, dir
			default:
				scaleAgree++
			}
			if scaleAgree >= fab.opts.HysteresisRounds {
				fab.scaleTo(len(mem.shards) + dir)
				epoch = fab.mem.Load().epoch
				discard(self)
				continue
			}
		}

		// Proc shift between the actives (the PR 3 rebalancer, now
		// membership-aware).  Hysteresis identity uses slot ids, not
		// positions: positions shuffle on flips, slots never do.
		if !shifting || len(mem.shards) < 2 {
			continue
		}
		limits := make([]int, len(mem.shards))
		fab.state.Lock()
		for i, b := range mem.shards {
			limits[i] = fab.limits[b.id]
		}
		fab.state.Unlock()
		from, to, ok := planShift(loads, limits, fab.opts.ProcFloor, fab.budget, fab.opts.RebalanceSlack)
		if !ok {
			agreeing, prevFrom, prevTo = 0, -1, -1
			continue
		}
		fromID, toID := mem.shards[from].id, mem.shards[to].id
		if fromID != prevFrom || toID != prevTo {
			agreeing, prevFrom, prevTo = 1, fromID, toID
		} else {
			agreeing++
		}
		if agreeing < fab.opts.HysteresisRounds {
			continue
		}
		agreeing, prevFrom, prevTo = 0, -1, -1
		if fab.mem.Load().epoch != epoch {
			// Belt and braces: flips are this thread's own doing today, but
			// the apply-time check is the invariant, not the architecture.
			epoch = fab.mem.Load().epoch
			fab.m.scaleStale.Inc(self)
			continue
		}
		fab.state.Lock()
		fab.limits[fromID]--
		fab.limits[toID]++
		newFrom, newTo := fab.limits[fromID], fab.limits[toID]
		fab.lastShift = fab.clock.Now()
		fab.state.Unlock()
		// The donor's shrink takes effect at its procs' next safe points;
		// the recipient's growth is immediate headroom.  The two deltas
		// cancel: sum(limits) is invariant.
		mem.shards[from].pl.SetLimit(newFrom)
		mem.shards[to].pl.SetLimit(newTo)
		fab.m.rebalances.Inc(self)
		fab.emit(fab.evRebalance, int64(fromID)<<8|int64(toID))
	}
	fab.state.Lock()
	fab.rebalDone = true
	fab.state.Unlock()
}
