package shard

// Fabric end-to-end tests for the allocating /work/mlalloc kernel: the
// tentpole's serving-path measurement must hold on the sharded fabric
// too — every member owns an ML world, requests collect in parallel at
// clean-point barriers behind the forward ring, and /fabricz reports
// each member's GC state.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// mlOpts sizes member heaps small enough that the test load collects.
func mlOpts(base Options) Options {
	base.MLAlloc = true
	base.MLNursery = 1 << 14
	base.MLSemi = 1 << 18
	base.MLChunk = 512
	base.MLRegion = 256
	return base
}

func fabricGCs(tf *testFabric) (gcs int) {
	for _, b := range tf.fab.mem.Load().shards {
		gcs += b.world.GCs()
	}
	return gcs
}

func runMLAllocLoad(t *testing.T, tf *testFabric, clients, reqs, cells int) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			kc := dialKA(t, tf.addr())
			for r := 0; r < reqs; r++ {
				path := fmt.Sprintf("/work/mlalloc?n=%d&seed=%d", cells, c*1000+r)
				if err := kc.send(path); err != nil {
					errs <- fmt.Errorf("client %d send: %v", c, err)
					return
				}
				st, body, err := kc.recv(30 * time.Second)
				if err != nil {
					errs <- fmt.Errorf("client %d recv: %v", c, err)
					return
				}
				if st != 200 || !strings.Contains(string(body), fmt.Sprintf("cells=%d", cells)) {
					errs <- fmt.Errorf("client %d: status %d body %q", c, st, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestFabricMLAllocEndToEnd(t *testing.T) {
	tf := startFabric(t, mlOpts(Options{Shards: 2, BackendProcs: 2}), nil)
	runMLAllocLoad(t, tf, 6, 4, 3000)

	if fabricGCs(tf) == 0 {
		t.Fatal("fabric load performed no collections on any member")
	}
	kc := dialKA(t, tf.addr())
	if err := kc.send("/fabricz"); err != nil {
		t.Fatal(err)
	}
	st, body, err := kc.recv(10 * time.Second)
	if err != nil || st != 200 {
		t.Fatalf("/fabricz: %d %v", st, err)
	}
	if !strings.Contains(string(body), "gc: gcs=") {
		t.Fatalf("/fabricz missing per-member gc line:\n%s", body)
	}
}

// TestFabricMLAllocMux drives the same allocating kernel through the
// event-multiplexed front: the poller pool forwards into members whose
// procs are collecting, which is exactly where a non-GC-aware ring
// lock would convoy.
func TestFabricMLAllocMux(t *testing.T) {
	tf := startFabric(t, mlOpts(Options{Shards: 2, BackendProcs: 2, Mux: true}), nil)
	runMLAllocLoad(t, tf, 6, 4, 3000)
	if fabricGCs(tf) == 0 {
		t.Fatal("mux fabric load performed no collections on any member")
	}
}

// TestFabricMLAllocSequentialAblation pins the -gc-seq + plain-lock
// configuration the BENCH_gc baseline runs with.
func TestFabricMLAllocSequentialAblation(t *testing.T) {
	opts := mlOpts(Options{Shards: 2, BackendProcs: 2})
	opts.MLGCSequential = true
	opts.MLGCPlainLocks = true
	tf := startFabric(t, opts, nil)
	runMLAllocLoad(t, tf, 4, 3, 3000)
	if fabricGCs(tf) == 0 {
		t.Fatal("sequential fabric performed no collections")
	}
}
