package shard

// Elastic shard membership: shards as first-class acquirable/releasable
// resources, the paper's acquire_proc/release_proc lifted one level —
// where PR 3's rebalancer moves proc *allowance* between a fixed shard
// set, this layer adds and removes whole shards at runtime.
//
// The core is a versioned membership snapshot behind one atomic
// pointer: epoch, the dense array of active backends, and the
// consistent-hash ring whose owners index that array.  Every routing
// decision (connection hash, sticky key, topic) resolves against one
// snapshot — immutable once published, so the hot path takes no lock —
// and every policy decision is stamped with the epoch it read, to be
// discarded if a flip lands first.
//
// Membership changes are choreographed by the policy thread (an MP
// thread of the front system) with make-before-break ordering:
//
//   acquire: shrink the actives' allowances to (n+1)-member shares →
//     build the newcomer's whole world (platform, system, server,
//     broker, ring) → spawn its host goroutines via Options.Spawn →
//     probe it with a synthetic /healthz through its own forward ring →
//     hand off the topics the grown ring assigns to it → flip.
//
//   release: pick the victim (highest slot id) → mark it draining
//     (its intake stops stealing) → shrink it to one proc, survivors
//     share budget-1 → hand off every topic it owns → flip → grace →
//     detach → wait its ring dry → close the ring (stale-snapshot
//     pushes shed 503 like any full ring) → drain its server (the
//     OnDrain hook closes its broker) → wait its worlds exit → the
//     full budget returns to the survivors and the slot frees.
//
// Zero-loss invariants: a request already in a ring is always answered
// (the victim's intake keeps draining until its server drains, and a
// closed ring's shed is answered at the front); an acked pub/sub
// delivery is never lost (subscribers are registered on both brokers
// across the flip — pubsub/migrate.go — and each frame is fanned out by
// exactly one broker, so the overlap duplicates nothing).  The proc
// budget (Shards×BackendProcs at boot) is conserved across every
// membership: shares are computed from the budget, never accumulated.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gcsync"
	"repro/internal/mlheap"
	"repro/internal/proc"
	"repro/internal/pubsub"
	"repro/internal/serve"
	"repro/internal/spinlock"
	"repro/internal/syncx"
	"repro/internal/threads"
)

// fairLockFactory builds the FIFO claim/release locks Options.FairLocks
// deploys on the fabric's hot paths, charging every *contended* claim's
// queue wait (in claim-loop yields) to the shard.ring_wait_ticks
// histogram.  A non-nil gcw makes each claim-loop iteration a GC safe
// point.  The observer reads fab.m lazily: backends and pollers are
// built before New populates the instrument struct, and nothing locks
// until the host starts the Runners.
func (fab *Fabric) fairLockFactory(gcw spinlock.GCWorld) core.LockFactory {
	return syncx.FairFactory(gcw, func(iters int64) {
		if h := fab.m.ringWaitTicks; h != nil && iters > 0 {
			h.Observe(proc.Self(), iters)
		}
	})
}

// Backend lifecycle phases (backend.phase).
const (
	phaseJoining int32 = iota
	phaseActive
	phaseDraining
	phaseGone
)

func phaseName(p int32) string {
	switch p {
	case phaseJoining:
		return "joining"
	case phaseActive:
		return "active"
	case phaseDraining:
		return "draining"
	case phaseGone:
		return "gone"
	}
	return "unknown"
}

// ringVnodes is the virtual-point count per member slot; 64 keeps the
// per-member key share within a few percent of 1/N.
const ringVnodes = 64

// membership is one immutable snapshot of the active shard set.  The
// ring's owners index shards; shards[i].id is the stable slot the
// ring's vnodes are keyed on.
type membership struct {
	epoch  int64
	shards []*backend // active members, dense
	ring   *chashRing // owner values index shards
}

// home routes a connection-hash to an actives index.  Plain modulo, not
// the ring: un-keyed traffic has no stickiness to preserve, so the
// cheapest spread wins.
func (mem *membership) home(h uint32) int {
	return int(h % uint32(len(mem.shards)))
}

// Elastic reports whether membership can change at runtime: the fabric
// itself may start no goroutines (purity rule), so elasticity exists
// exactly when the host supplied Options.Spawn.
func (fab *Fabric) Elastic() bool { return fab.opts.Spawn != nil }

// Epoch returns the current membership epoch (starts at 1, +1 per flip).
func (fab *Fabric) Epoch() int64 { return fab.mem.Load().epoch }

// ActiveShards returns the current active member count.
func (fab *Fabric) ActiveShards() int { return len(fab.mem.Load().shards) }

// ownerOf reports the slot id of the member owning a sticky key under
// the current membership — the observable the movement-bound tests pin.
func (fab *Fabric) ownerOf(key string) int {
	mem := fab.mem.Load()
	return mem.shards[mem.ring.lookup(key)].id
}

// ScaleTo asks the policy thread to scale to n active shards; it
// returns immediately (scaling is asynchronous — watch /fabricz).
func (fab *Fabric) ScaleTo(n int) error {
	if !fab.Elastic() {
		return errNotElastic
	}
	if n < fab.opts.MinShards || n > fab.opts.MaxShards {
		return errScaleBounds
	}
	fab.scaleBox.Send(fab.frontSys, n)
	return nil
}

type scaleErr string

func (e scaleErr) Error() string { return string(e) }

const (
	errNotElastic  = scaleErr("fabric is not elastic (no Options.Spawn)")
	errScaleBounds = scaleErr("target outside [MinShards, MaxShards]")
)

// shares splits budget procs over n members: base share each, the
// remainder spread one-per-member from the front.
func shares(budget, n int) []int {
	sh := make([]int, n)
	base, rem := budget/n, budget%n
	for i := range sh {
		sh[i] = base
		if i < rem {
			sh[i]++
		}
	}
	return sh
}

// freeSlotLocked returns the smallest slot id below MaxShards not held
// by a live (non-gone) backend, or -1.  Caller holds fab.state.
func (fab *Fabric) freeSlotLocked() int {
	used := make([]bool, fab.opts.MaxShards)
	for _, b := range fab.backends {
		if b.phase.Load() != phaseGone && b.id < len(used) {
			used[b.id] = true
		}
	}
	for s, u := range used {
		if !u {
			return s
		}
	}
	return -1
}

// newBackend builds one shard's whole world — platform (capacity = the
// global budget, so rebalancing can grow it), thread system, server,
// forward ring, broker — without starting anything.  Handlers
// registered so far are replayed so a runtime-spawned shard serves the
// same routes as its boot-time siblings.
func (fab *Fabric) newBackend(slot, procs int) (*backend, error) {
	pl := proc.New(fab.budget)
	pl.SetLimit(procs)
	sys := threads.New(pl, threads.Options{Quantum: fab.opts.Quantum})
	// One ML world per member (Options.MLAlloc): its proc slots must
	// cover every handler thread that can be attached at once, which
	// admission bounds at MaxInFlight.
	var world *gcsync.World
	if fab.opts.MLAlloc {
		slots := fab.opts.MaxInFlight
		if slots <= 0 {
			slots = 64 // serve's MaxInFlight default
		}
		world = gcsync.NewWorld(mlheap.Config{
			NurseryWords: fab.opts.MLNursery,
			SemiWords:    fab.opts.MLSemi,
			ChunkWords:   fab.opts.MLChunk,
			RegionWords:  fab.opts.MLRegion,
			Procs:        slots,
		})
		world.SetSequential(fab.opts.MLGCSequential)
	}
	srv, err := serve.New(sys, serve.Options{
		NoListener:         true,
		ShardID:            slot,
		MLWorld:            world,
		MLGCAware:          !fab.opts.MLGCPlainLocks,
		FairLocks:          fab.opts.FairLocks,
		MaxInFlight:        fab.opts.MaxInFlight,
		QueueDepth:         fab.opts.QueueDepth,
		DeadlineTicks:      fab.opts.DeadlineTicks,
		DispatchBatch:      fab.opts.BatchMax,
		KeepAliveIdleTicks: fab.opts.IdleTicks,
		Tick:               fab.opts.Tick,
		PollWindow:         fab.opts.PollWindow,
		RetryAfter:         fab.opts.RetryAfter,
		Log:                fab.logrt,
		LogPolicy:          fab.logpol,
		ExtraMetrics:       []serve.NamedRegistry{{Name: "front", Reg: fab.frontSys.Metrics()}},
	})
	if err != nil {
		return nil, err
	}
	var broker *pubsub.Broker
	if fab.opts.PubSub {
		broker = pubsub.New(sys, srv.Clock(), sys.Metrics(), pubsub.Options{
			TenantHeader: fab.opts.TenantHeader,
			StreamDepth:  fab.opts.StreamDepth,
			QuotaPerSec:  fab.opts.TenantQuota,
			Tick:         fab.opts.Tick,
			SubIDs:       &fab.subIDs,
		})
		pubsub.Install(srv, broker)
	}
	b := &backend{
		id: slot, pl: pl, sys: sys, srv: srv,
		ring: newRing(fab.opts.RingDepth), broker: broker, world: world,
	}
	var gcw spinlock.GCWorld
	if world != nil && !fab.opts.MLGCPlainLocks {
		gcw = world
	}
	switch {
	case fab.opts.FairLocks:
		// Fair claim/release on the forward ring: pushers, the intake, and
		// thieves queue in claim order and the release hands off, so under
		// skew no side loses the TAS race repeatedly.  The claim loop polls
		// the same GC section the GC-aware spin wrap does (gcw nil on a
		// non-ML member or under the plain-locks ablation).
		b.ring.lock = fab.fairLockFactory(gcw)()
	case gcw != nil:
		// The ring's two sides live in different worlds: front threads
		// push while this member's procs pop.  Wrap the ring lock
		// GC-aware so whichever side spins mid-collection helps the copy
		// (an attached proc joins the barrier, a front thread runs work
		// units) instead of convoying the stop — the MPL lockTake move.
		b.ring.lock = spinlock.GCAware(core.NewMutexLock, world)()
	}
	b.phase.Store(phaseJoining)
	fab.state.Lock()
	fab.limits[slot] = procs // keep the policy thread's bookkeeping view in step
	hs := append([]handlerEntry(nil), fab.handlers...)
	fab.state.Unlock()
	for _, he := range hs {
		srv.Handle(he.pattern, he.h)
	}
	return b, nil
}

// backendRunners returns shard b's host entry points (serve world +
// broker world), each wrapped to track b.live so release can wait for
// the worlds to actually exit.  live is incremented here, before any
// goroutine starts, so a zero read always means "everything exited".
func (fab *Fabric) backendRunners(b *backend) []func() {
	b.live.Add(1)
	rs := []func(){func() {
		b.sys.Run(func() {
			b.srv.Serve()
			fab.intake(b) // the root thread becomes the ring intake
		})
		b.live.Add(-1)
	}}
	if b.broker != nil {
		b.live.Add(1)
		run := b.broker.Runner()
		rs = append(rs, func() {
			run()
			b.live.Add(-1)
		})
	}
	return rs
}

// probe pushes a synthetic /healthz through the newcomer's forward ring
// and waits for the answer — proof the whole path (ring, intake,
// admission, dispatch, builtin handler, reply cell) is live before any
// client traffic can route there.  False only when the fabric drained
// mid-join; the supervisor then drains the newcomer with everyone else.
func (fab *Fabric) probe(b *backend) bool {
	var cell reply
	j := job{
		req:       &serve.Request{Method: "GET", Path: "/healthz", Proto: "HTTP/1.1"},
		remaining: fab.opts.DeadlineTicks,
		pushed:    fab.clock.Now(),
		rep:       &cell,
	}
	for !b.ring.push(j) {
		if fab.Draining() {
			return false
		}
		fab.park(1)
	}
	for !cell.done.Load() {
		if fab.Draining() {
			return false
		}
		fab.park(1)
	}
	return cell.resp.Status == 200
}

// setShares applies a share vector to the given members: limits under
// the state lock first (the policy thread's bookkeeping view), then the
// platform SetLimits — shrinks land at the members' procs' next safe
// points, growths are immediate headroom.
func (fab *Fabric) setShares(members []*backend, sh []int) {
	fab.state.Lock()
	for i, b := range members {
		fab.limits[b.id] = sh[i]
	}
	fab.state.Unlock()
	for i, b := range members {
		b.pl.SetLimit(sh[i])
	}
}

// addShard acquires one shard: the runtime half of the paper's
// acquire_proc, at shard granularity.  Returns false when the fabric is
// draining, at MaxShards, or the newcomer could not be built.
func (fab *Fabric) addShard() bool {
	old := fab.mem.Load()
	n := len(old.shards) + 1
	if n > fab.opts.MaxShards {
		return false
	}
	fab.state.Lock()
	if fab.draining {
		fab.state.Unlock()
		return false
	}
	slot := fab.freeSlotLocked()
	fab.state.Unlock()
	if slot < 0 {
		return false
	}
	sh := shares(fab.budget, n)
	b, err := fab.newBackend(slot, sh[n-1])
	if err != nil {
		return false
	}
	// Make before break: the incumbents shrink to their n-member shares
	// before the newcomer's allowance exists, so the budget is never
	// exceeded even transiently.
	fab.setShares(old.shards, sh[:n-1])
	fab.state.Lock()
	fab.backends = append(fab.backends, b)
	rs := fab.backendRunners(b)
	fab.state.Unlock()
	for _, r := range rs {
		fab.opts.Spawn(r)
	}
	if !fab.probe(b) {
		return false // draining mid-join; supervise drains b with the rest
	}
	actives := make([]*backend, 0, n)
	actives = append(append(actives, old.shards...), b)
	fab.flipTo(old, actives)
	b.phase.Store(phaseActive)
	fab.m.memberJoins.Inc(proc.Self())
	return true
}

// removeShard releases one shard with zero-loss drain-out.  Returns
// false when the fabric is draining or at MinShards.
func (fab *Fabric) removeShard() bool {
	old := fab.mem.Load()
	if len(old.shards) <= fab.opts.MinShards {
		return false
	}
	// Victim: the active with the highest slot id — deterministic, and
	// it frees the largest slot for reuse.
	vi := 0
	for i, b := range old.shards {
		if b.id > old.shards[vi].id {
			vi = i
		}
	}
	victim := old.shards[vi]
	fab.state.Lock()
	if fab.draining {
		fab.state.Unlock()
		return false
	}
	fab.state.Unlock()
	// Draining phase first: the victim's intake stops stealing work in,
	// before anything else changes.
	victim.phase.Store(phaseDraining)
	actives := make([]*backend, 0, len(old.shards)-1)
	for i, b := range old.shards {
		if i != vi {
			actives = append(actives, b)
		}
	}
	// The victim keeps one proc to drain with; survivors share the rest.
	fab.setShares(actives, shares(fab.budget-1, len(actives)))
	fab.setShares([]*backend{victim}, []int{1})

	fab.flipTo(old, actives)

	// The ring must empty before it closes (a job in a ring is always
	// answered), and must be checked again after — a front thread's push
	// from a stale snapshot can land between the check and the close.
	// After the close, late pushes shed 503 at the front like any full
	// ring, and the intake drains what landed.
	for victim.ring.depth() > 0 {
		if fab.Draining() {
			return false
		}
		fab.park(1)
	}
	victim.ring.close()
	for victim.ring.depth() > 0 {
		if fab.Draining() {
			return false
		}
		fab.park(1)
	}
	// Drain the victim's server: queued and in-flight requests finish,
	// the OnDrain hook closes its broker (whose topics were handed off
	// above; stragglers' streams close with the chunked terminator), the
	// intake exits, and the worlds quiesce.
	victim.srv.Drain()
	for victim.live.Load() > 0 {
		if fab.Draining() {
			return false
		}
		fab.park(1)
	}
	victim.phase.Store(phaseGone)
	fab.state.Lock()
	fab.limits[victim.id] = 0 // the slot holds no allowance until reused
	fab.state.Unlock()
	// The full budget returns to the survivors; the slot is free.
	fab.setShares(actives, shares(fab.budget, len(actives)))
	fab.m.memberLeaves.Inc(proc.Self())
	return true
}

// flipTo publishes the new membership: hand off every topic whose owner
// changes (registered on both brokers across the flip), store the new
// snapshot, wait the grace window for stale-snapshot traffic to drain,
// then detach the moved topics from their old owners.
func (fab *Fabric) flipTo(old *membership, actives []*backend) {
	slots := make([]int, len(actives))
	for i, b := range actives {
		slots[i] = b.id
	}
	next := &membership{
		epoch:  old.epoch + 1,
		shards: actives,
		ring:   newChashRing(slots, ringVnodes),
	}
	migs := fab.beginHandoffs(old, next)
	fab.mem.Store(next)
	fab.m.epochFlips.Inc(proc.Self())
	if len(migs) > 0 {
		fab.park(fab.opts.HandoffGraceTicks)
		fab.finishHandoffs(migs)
	}
}

// handoff is one topic mid-migration: the source-side handle plus
// whether the destination accepted (it refuses only when draining, in
// which case the subscribers stay owned — and are closed — by the
// source).
type handoff struct {
	src *pubsub.Broker
	mig *pubsub.Migration
	ok  bool
}

// beginHandoffs tombstones and re-registers every topic whose owner
// changes between old and next.  On return each moved topic's
// subscribers are registered with BOTH brokers: whichever side a
// publish lands on during the flip fans out to all of them, exactly
// once (one broker runs each publish).  Publishes reaching the source
// after its tombstone answer 409 — the brief, retryable unavailability
// window the bench measures as the dip.
func (fab *Fabric) beginHandoffs(old, next *membership) []handoff {
	if !fab.opts.PubSub {
		return nil
	}
	self := proc.Self()
	var hs []handoff
	for _, src := range old.shards {
		for _, name := range src.broker.TopicNames() {
			dst := next.shards[next.ring.lookup(name)]
			if dst == src {
				continue
			}
			mig := src.broker.BeginMigrate(name)
			for !mig.Peeked() && !mig.Detached() {
				if fab.Draining() {
					return hs
				}
				fab.park(1)
			}
			subs := mig.Subs()
			ho := dst.broker.Adopt(name, subs)
			for !ho.Done() {
				if fab.Draining() {
					return hs
				}
				fab.park(1)
			}
			hs = append(hs, handoff{src: src.broker, mig: mig, ok: ho.OK()})
			fab.m.handoffTopics.Inc(self)
			fab.m.handoffSubs.Add(self, int64(len(subs)))
		}
	}
	return hs
}

// finishHandoffs detaches each moved topic from its old owner once its
// in-flight control messages have settled — after this no old-owner
// fan-out can exist, so forgetting the subscribers (without closing
// their streams) completes the zero-loss handoff.
func (fab *Fabric) finishHandoffs(hs []handoff) {
	for _, h := range hs {
		if !h.ok {
			continue // destination was draining; source keeps the subs
		}
		for !h.mig.Quiesced() {
			if fab.Draining() {
				return
			}
			fab.park(1)
		}
		h.src.Detach(h.mig)
		for !h.mig.Detached() {
			if fab.Draining() {
				return
			}
			fab.park(1)
		}
	}
}

// scaleTo walks membership one shard at a time toward n, counting each
// applied step.  Runs on the policy thread.
func (fab *Fabric) scaleTo(n int) {
	self := proc.Self()
	for {
		cur := len(fab.mem.Load().shards)
		if cur == n || fab.Draining() {
			return
		}
		if n > cur {
			if !fab.addShard() {
				return
			}
			fab.m.scaleUps.Inc(self)
		} else {
			if !fab.removeShard() {
				return
			}
			fab.m.scaleDowns.Inc(self)
		}
	}
}

// scaleResponse answers the admin /scale endpoint (front-inline, like
// /fabricz): GET /scale?shards=N requests a manual scale event.
func (fab *Fabric) scaleResponse(req *serve.Request) serve.Response {
	if !fab.Elastic() {
		return serve.Response{Status: 400, Body: []byte("fabric is not elastic (start with -autoscale or a Spawn hook)\n")}
	}
	n := req.QueryInt("shards", -1)
	if n < fab.opts.MinShards || n > fab.opts.MaxShards {
		return serve.Response{Status: 400, Body: []byte(fmt.Sprintf(
			"shards must be in [%d, %d]\n", fab.opts.MinShards, fab.opts.MaxShards))}
	}
	if n == len(fab.mem.Load().shards) {
		return serve.Response{Status: 200, Body: []byte(fmt.Sprintf("already at %d shards\n", n))}
	}
	fab.scaleBox.Send(fab.frontSys, n)
	return serve.Response{Status: 202, Body: []byte(fmt.Sprintf("scaling to %d shards\n", n))}
}
