package shard

// The forward path's data structure: a bounded MPSC ring per shard
// (many front connection threads push, one backend intake thread pops).
// The reply cells and batch-completion groups travelling the other way
// live in reply.go.
//
// The ring is guarded by a core mutex lock — the paper's spinlock — not
// a semaphore, precisely because its two sides live in different thread
// systems: a spinlock never parks a thread on a foreign scheduler, so
// pushing from the front world into a backend's ring is safe by
// construction.

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/serve"
)

// job is one forwarded request: the parsed request, its remaining
// deadline budget in ticks (rebased onto the shard's clock at Submit),
// the front-clock tick it entered the ring (so intake can charge ring
// dwell against the budget), and the reply cell.
type job struct {
	req       *serve.Request
	remaining int64
	pushed    int64 // front-clock tick at push
	rep       *reply
}

// ring is the bounded MPSC forward ring.  Occupancy is mirrored in an
// atomic so load probes (rebalancer, steal victim selection) read depth
// without touching the spinlock the hot path contends on.
type ring struct {
	lock  core.Lock
	buf   []job
	head  int // next pop
	count int
	occ   atomic.Int64 // == count, updated inside the critical sections
}

func newRing(depth int) *ring {
	return &ring{lock: core.NewMutexLock(), buf: make([]job, depth)}
}

// push appends a job; false when full (the caller sheds with 503).
func (r *ring) push(j job) bool {
	r.lock.Lock()
	if r.count == len(r.buf) {
		r.lock.Unlock()
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = j
	r.count++
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return true
}

// pushN appends up to len(js) jobs under one lock acquisition and
// returns how many fit — the multi-push a front connection thread uses
// to forward a whole pipelined batch for the price of one spinlock
// round-trip.  The admitted jobs are a prefix of js; the caller sheds
// the rest with 503.
func (r *ring) pushN(js []job) int {
	if len(js) == 0 {
		return 0
	}
	r.lock.Lock()
	n := len(r.buf) - r.count
	if n > len(js) {
		n = len(js)
	}
	for i := 0; i < n; i++ {
		r.buf[(r.head+r.count+i)%len(r.buf)] = js[i]
	}
	r.count += n
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return n
}

// pop removes the oldest job; false when empty.
func (r *ring) pop() (job, bool) {
	r.lock.Lock()
	if r.count == 0 {
		r.lock.Unlock()
		return job{}, false
	}
	j := r.buf[r.head]
	r.buf[r.head] = job{} // drop references for the collector
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return j, true
}

// popN removes up to len(dst) oldest jobs under one lock acquisition and
// returns how many it moved — the batched dequeue the shard's intake
// thread drains its ring with.
func (r *ring) popN(dst []job) int {
	if len(dst) == 0 {
		return 0
	}
	r.lock.Lock()
	n := r.count
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.buf[r.head]
		r.buf[r.head] = job{}
		r.head = (r.head + 1) % len(r.buf)
	}
	r.count -= n
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return n
}

// stealN claims up to half the victim's queued jobs (oldest first, so a
// stolen request never overtakes one left behind) for an idle sibling.
// It uses TryLock — the claim/release handoff: a thief that meets
// contention aborts immediately (-1) rather than spinning on a foreign
// shard's hot lock, since the owner being inside the critical section
// means the ring is being drained anyway.  Returns 0 when the ring is
// uncontended but empty.
func (r *ring) stealN(dst []job) int {
	if !r.lock.TryLock() {
		return -1
	}
	n := (r.count + 1) / 2
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.buf[r.head]
		r.buf[r.head] = job{}
		r.head = (r.head + 1) % len(r.buf)
	}
	r.count -= n
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return n
}

// depth reports the current occupancy (a rebalancer load input and the
// steal victim-selection key) from the atomic mirror — no lock, so
// probing N sibling rings does not disturb their hot paths.
func (r *ring) depth() int {
	return int(r.occ.Load())
}
