package shard

// The forward path's data structures: a bounded MPSC ring per shard
// (many front connection threads push, one backend intake thread pops)
// and the single-assignment reply cell a forwarding thread parks on.
//
// The ring is guarded by a core mutex lock — the paper's spinlock — not
// a semaphore, precisely because its two sides live in different thread
// systems: a spinlock never parks a thread on a foreign scheduler, so
// pushing from the front world into a backend's ring is safe by
// construction.  The reply cell crosses the same boundary the other way
// with a single release/acquire flag: the backend worker stores the
// response then sets done; the front thread polls done (parking on its
// own clock between polls) and only then reads the response.

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/serve"
)

// reply is the single-assignment completion cell for one forwarded
// request.
type reply struct {
	resp serve.Response
	done atomic.Bool
}

// deliver publishes the response; the done flag's store is the release
// edge that makes resp visible to the front thread's acquire load.
func (r *reply) deliver(resp serve.Response) {
	r.resp = resp
	r.done.Store(true)
}

// wait suspends the calling front thread until the response is
// published: it yields first — shard replies usually land within
// microseconds, far inside one clock tick — and falls back to parking
// on the clock once the reply is clearly not imminent.
func (r *reply) wait(yield func(), park func(int64)) serve.Response {
	for i := 0; !r.done.Load(); i++ {
		if i < 64 {
			yield()
		} else {
			park(1)
		}
	}
	return r.resp
}

// job is one forwarded request: the parsed request, its remaining
// deadline budget in ticks (rebased onto the shard's clock at Submit),
// and the reply cell.
type job struct {
	req       *serve.Request
	remaining int64
	rep       *reply
}

// ring is the bounded MPSC forward ring.
type ring struct {
	lock  core.Lock
	buf   []job
	head  int // next pop
	count int
}

func newRing(depth int) *ring {
	return &ring{lock: core.NewMutexLock(), buf: make([]job, depth)}
}

// push appends a job; false when full (the caller sheds with 503).
func (r *ring) push(j job) bool {
	r.lock.Lock()
	if r.count == len(r.buf) {
		r.lock.Unlock()
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = j
	r.count++
	r.lock.Unlock()
	return true
}

// pop removes the oldest job; false when empty.
func (r *ring) pop() (job, bool) {
	r.lock.Lock()
	if r.count == 0 {
		r.lock.Unlock()
		return job{}, false
	}
	j := r.buf[r.head]
	r.buf[r.head] = job{} // drop references for the collector
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.lock.Unlock()
	return j, true
}

// depth reports the current occupancy (a rebalancer load input).
func (r *ring) depth() int {
	r.lock.Lock()
	defer r.lock.Unlock()
	return r.count
}
