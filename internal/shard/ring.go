package shard

// The forward path's data structure: a bounded MPSC ring per shard
// (many front connection threads push, one backend intake thread pops).
// The reply cells and batch-completion groups travelling the other way
// live in reply.go.
//
// The ring is guarded by a core mutex lock — the paper's spinlock — not
// a semaphore, precisely because its two sides live in different thread
// systems: a spinlock never parks a thread on a foreign scheduler, so
// pushing from the front world into a backend's ring is safe by
// construction.

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/serve"
)

// job is one forwarded request: the parsed request, its remaining
// deadline budget in ticks (rebased onto the shard's clock at Submit),
// the front-clock tick it entered the ring (so intake can charge ring
// dwell against the budget), and the reply cell.
type job struct {
	req       *serve.Request
	remaining int64
	pushed    int64 // front-clock tick at push
	rep       *reply
	pinned    bool // topic-routed: must run on this ring's owner, never stolen
}

// ring is the bounded MPSC forward ring.  Occupancy is mirrored in an
// atomic so load probes (rebalancer, steal victim selection) read depth
// without touching the spinlock the hot path contends on.
type ring struct {
	lock   core.Lock
	buf    []job
	head   int // next pop
	count  int
	closed bool         // released member: pushes refuse, pops drain
	occ    atomic.Int64 // == count, updated inside the critical sections
}

func newRing(depth int) *ring {
	return &ring{lock: core.NewMutexLock(), buf: make([]job, depth)}
}

// close permanently refuses new pushes — the released member's ring
// behaves like a full ring (front sheds 503), while pops keep draining
// what already landed.  A job in a ring is always answered.
func (r *ring) close() {
	r.lock.Lock()
	r.closed = true
	r.lock.Unlock()
}

// push appends a job; false when full or closed (the caller sheds 503).
func (r *ring) push(j job) bool {
	r.lock.Lock()
	if r.count == len(r.buf) || r.closed {
		r.lock.Unlock()
		return false
	}
	r.buf[(r.head+r.count)%len(r.buf)] = j
	r.count++
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return true
}

// pushN appends up to len(js) jobs under one lock acquisition and
// returns how many fit — the multi-push a front connection thread uses
// to forward a whole pipelined batch for the price of one spinlock
// round-trip.  The admitted jobs are a prefix of js; the caller sheds
// the rest with 503.
func (r *ring) pushN(js []job) int {
	if len(js) == 0 {
		return 0
	}
	r.lock.Lock()
	n := len(r.buf) - r.count
	if r.closed {
		n = 0
	}
	if n > len(js) {
		n = len(js)
	}
	for i := 0; i < n; i++ {
		r.buf[(r.head+r.count+i)%len(r.buf)] = js[i]
	}
	r.count += n
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return n
}

// pop removes the oldest job; false when empty.
func (r *ring) pop() (job, bool) {
	r.lock.Lock()
	if r.count == 0 {
		r.lock.Unlock()
		return job{}, false
	}
	j := r.buf[r.head]
	r.buf[r.head] = job{} // drop references for the collector
	r.head = (r.head + 1) % len(r.buf)
	r.count--
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return j, true
}

// popN removes up to len(dst) oldest jobs under one lock acquisition and
// returns how many it moved — the batched dequeue the shard's intake
// thread drains its ring with.
func (r *ring) popN(dst []job) int {
	if len(dst) == 0 {
		return 0
	}
	r.lock.Lock()
	n := r.count
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] = r.buf[r.head]
		r.buf[r.head] = job{}
		r.head = (r.head + 1) % len(r.buf)
	}
	r.count -= n
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return n
}

// stealN claims up to half the victim's queued jobs (oldest first, so a
// stolen request never overtakes one left behind) for an idle sibling.
// Pinned jobs — pub/sub requests whose topic state lives only on this
// ring's owner — are never taken: a stolen publish would be acked by a
// broker holding none of the topic's subscribers, silently dropping the
// fan-out.  Skipping them keeps both the stolen run and the survivors
// in their original relative order, at the cost of an O(count) compact
// under the lock — acceptable on the cold steal path.  It uses TryLock
// — the claim/release handoff: a thief that meets contention aborts
// immediately (-1) rather than spinning on a foreign shard's hot lock,
// since the owner being inside the critical section means the ring is
// being drained anyway.  Returns 0 when the ring is uncontended but
// empty (or holds only pinned jobs).
func (r *ring) stealN(dst []job) int {
	if !r.lock.TryLock() {
		return -1
	}
	limit := (r.count + 1) / 2
	if limit > len(dst) {
		limit = len(dst)
	}
	taken, kept := 0, 0
	for i := 0; i < r.count; i++ {
		j := r.buf[(r.head+i)%len(r.buf)]
		if taken < limit && !j.pinned {
			dst[taken] = j
			taken++
		} else {
			r.buf[(r.head+kept)%len(r.buf)] = j
			kept++
		}
	}
	for i := kept; i < r.count; i++ {
		r.buf[(r.head+i)%len(r.buf)] = job{}
	}
	r.count = kept
	r.occ.Store(int64(r.count))
	r.lock.Unlock()
	return taken
}

// depth reports the current occupancy (a rebalancer load input and the
// steal victim-selection key) from the atomic mirror — no lock, so
// probing N sibling rings does not disturb their hot paths.
func (r *ring) depth() int {
	return int(r.occ.Load())
}
