package shard

// The reply path's completion structures: the single-assignment reply
// cell a forwarded request is answered through, the per-batch countdown
// group that lets a connection thread park once per batch instead of
// once per straggler, and the adaptive spin discipline both waits share.
//
// Like the forward ring (ring.go), everything here crosses the
// front/backend thread-system boundary, so the primitives are bare
// atomics rather than semaphores: a backend worker must never park a
// front thread on the backend's scheduler or vice versa.  The backend
// stores the response then flips the cell's done flag (release); the
// front polls (acquire) with yields and clock parks of its own.

import (
	"sync/atomic"

	"repro/internal/serve"
)

// reply is the single-assignment completion cell for one forwarded
// request.  A cell enrolled in a replyGroup also decrements the group's
// countdown on delivery, so the batch wait observes "all delivered"
// from a single word.
type reply struct {
	resp serve.Response
	done atomic.Bool
	grp  *replyGroup
}

// deliver publishes the response; the done flag's store is the release
// edge that makes resp visible to the front thread's acquire load, and
// the group decrement after it is what the batched wait parks on.
func (r *reply) deliver(resp serve.Response) {
	r.resp = resp
	r.done.Store(true)
	if r.grp != nil {
		r.grp.remaining.Add(-1)
	}
}

// openBias is the count parked in a replyGroup while its batch is still
// being forwarded.  Cells can be delivered — and decrement the group —
// before the final membership is known (a ring-full shed drops cells
// mid-forward), so the counter cannot simply start at the batch size:
// it starts at the bias, absorbs early decrements, and seal() retires
// the bias against the real membership.  Any value comfortably above
// every possible in-flight decrement works; 2^40 is unreachable.
const openBias = int64(1) << 40

// replyGroup is the per-batch completion countdown: the last delivery
// drives remaining to zero, publishing the whole batch at once.
type replyGroup struct {
	remaining atomic.Int64
}

// open arms the group for a new batch.  The owning connection thread
// only reuses a group after done() returned true, so the store cannot
// race a straggling delivery.
func (g *replyGroup) open() { g.remaining.Store(openBias) }

// seal fixes the batch membership at members cells, retiring the open
// bias.  After seal, remaining counts exactly the undelivered cells.
func (g *replyGroup) seal(members int) { g.remaining.Add(int64(members) - openBias) }

// done reports whether every sealed member has delivered.  The atomic
// load orders after the final deliver's decrement, which itself orders
// after that cell's response store — so done() implies every member's
// resp is readable.
func (g *replyGroup) done() bool { return g.remaining.Load() == 0 }

// spinState is a connection thread's adaptive reply-spin budget.
// Replies usually land within one clock tick, so spinning (yielding)
// briefly beats parking; but when the routed shard is saturated,
// spinning is pure waste.  The budget backs off exponentially: it
// halves each time a wait overruns it into a park, and doubles back
// toward max each time the spin phase wins, so a thread talking to a
// fast shard spins and a thread stuck behind a deep queue parks almost
// immediately.  The condition is re-checked after every single yield —
// a yield can cost a whole scheduler rotation (the pump's sleep, the
// acceptor's poll window), so skipping checks to "back off" would turn
// microseconds of slack into milliseconds of overshoot.
type spinState struct {
	budget int // current spin allowance, in yields
	min    int
	max    int
}

// newSpinState returns a budget starting (and capped) at max yields.
func newSpinState(max int) spinState {
	if max < 1 {
		max = 1
	}
	return spinState{budget: max, min: 1, max: max}
}

// spinWait waits until cond holds: up to budget yields with a check
// after each, then park(1) rounds.  It returns the yields and parks
// spent (metrics inputs) and adapts sp for the next wait.  Both
// adaptation edges clamp defensively: growth saturates at max (no
// unbounded doubling, no overflow past a budget that somehow exceeds
// the cap) and decay floors at min ≥ 1 — so even a degenerate sp (the
// zero value, whose budget of 0 would otherwise stay 0 forever since
// 0×2 = 0) converges back into [min, max] on its next win.
func spinWait(cond func() bool, sp *spinState, yield func(), park func(int64)) (spins, parks int) {
	if sp.max < 1 {
		sp.max = 1
	}
	if sp.min < 1 {
		sp.min = 1
	}
	for {
		if cond() {
			if parks == 0 {
				switch {
				case sp.budget < sp.min:
					sp.budget = sp.min
				case sp.budget > sp.max/2:
					sp.budget = sp.max
				default:
					sp.budget *= 2
				}
			}
			return spins, parks
		}
		if spins < sp.budget {
			yield()
			spins++
			continue
		}
		if parks == 0 {
			if sp.budget /= 2; sp.budget < sp.min {
				sp.budget = sp.min
			}
		}
		park(1)
		parks++
	}
}

// fairWait is the reply-wait discipline under Options.FairLocks: a
// fixed allowance of budget yields, then park(1) rounds until cond
// holds.  Where spinWait adapts — so one connection's history buys it a
// longer spin phase than its neighbors get — the fair wait is
// memoryless: every waiter pays exactly the same bounded spin before
// parking, the reply-side analogue of the claim queue's bounded-wait
// guarantee.  Returns the yields and parks spent (metrics inputs).
func fairWait(cond func() bool, budget int, yield func(), park func(int64)) (spins, parks int) {
	if budget < 1 {
		budget = 1
	}
	for !cond() {
		if spins < budget {
			yield()
			spins++
			continue
		}
		park(1)
		parks++
	}
	return spins, parks
}
