//go:build linux

package shard

// End-to-end tests of the event-multiplexed front: the same wire
// behavior the per-connection-thread front guarantees (keep-alive,
// pipelined ordering, silent idle closes, zero-drop drain) must hold
// when a fixed poller pool drives the connections, plus the mux-only
// properties — many idle connections held concurrently and the parked /
// wakeup / resume-batch instruments.  Linux-only because the resumable
// path reads raw fds (the netpoll fallback never reports idle conns
// quiet, so these assertions are only meaningful on epoll).

import (
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func muxOpts(extra func(*Options)) Options {
	opts := Options{
		Shards:         2,
		Mux:            true,
		Pollers:        2,
		RebalanceTicks: NoRebalance,
	}
	if extra != nil {
		extra(&opts)
	}
	return opts
}

// TestMuxKeepAliveSequential reuses one connection for many requests
// through the poller-driven front and checks the poller instruments
// actually moved.
func TestMuxKeepAliveSequential(t *testing.T) {
	tf := startFabric(t, muxOpts(nil), nil)
	kc := dialKA(t, tf.addr())
	const reqs = 8
	for i := 0; i < reqs; i++ {
		msg := fmt.Sprintf("m%d", i)
		if err := kc.send("/echo?msg=" + msg); err != nil {
			t.Fatal(err)
		}
		st, body, err := kc.recv(10 * time.Second)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if st != 200 || string(body) != msg {
			t.Fatalf("request %d: status %d body %q", i, st, body)
		}
	}
	snap := tf.fab.FrontMetrics().Snapshot()
	if got := snap.Get("serve.poll_wakeups"); got < 1 {
		t.Errorf("serve.poll_wakeups = %d after %d served requests, want >= 1", got, reqs)
	}
	if h, ok := snap.Histograms["serve.resume_batch"]; !ok || h.Count < 1 {
		t.Errorf("serve.resume_batch histogram = %+v, want >= 1 observation", h)
	}
}

// TestMuxPipelinedRequestsAnsweredInOrder writes a back-to-back burst
// before reading anything; the resumable read phase must batch what is
// buffered and answer in order.
func TestMuxPipelinedRequestsAnsweredInOrder(t *testing.T) {
	tf := startFabric(t, muxOpts(nil), nil)
	kc := dialKA(t, tf.addr())
	const reqs = 5
	var batch []byte
	for i := 0; i < reqs; i++ {
		batch = append(batch, []byte(fmt.Sprintf(
			"GET /echo?msg=p%d HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n", i))...)
	}
	if _, err := kc.nc.Write(batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reqs; i++ {
		st, body, err := kc.recv(10 * time.Second)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		want := fmt.Sprintf("p%d", i)
		if st != 200 || string(body) != want {
			t.Fatalf("response %d: status %d body %q, want 200 %q", i, st, body, want)
		}
	}
}

// TestMuxIdleConnClosedSilently parks a served keep-alive connection
// past the idle budget: the deadline sweep must close it without
// writing a byte.
func TestMuxIdleConnClosedSilently(t *testing.T) {
	tf := startFabric(t, muxOpts(func(o *Options) {
		o.IdleTicks = 40
		o.IdleScanTicks = 10
	}), nil)
	kc := dialKA(t, tf.addr())
	if err := kc.send("/echo?msg=x"); err != nil {
		t.Fatal(err)
	}
	if st, _, err := kc.recv(10 * time.Second); err != nil || st != 200 {
		t.Fatalf("status %d err %v", st, err)
	}
	kc.nc.SetReadDeadline(time.Now().Add(15 * time.Second))
	n, err := kc.nc.Read(make([]byte, 64))
	if n != 0 || err != io.EOF {
		t.Errorf("idle conn: read %d bytes err %v, want 0 and EOF", n, err)
	}
}

// TestMuxConnectionCloseHonored: a Connection: close request is
// answered and the connection actually closes.
func TestMuxConnectionCloseHonored(t *testing.T) {
	tf := startFabric(t, muxOpts(nil), nil)
	kc := dialKA(t, tf.addr())
	if err := kc.send("/echo?msg=bye", "Connection: close"); err != nil {
		t.Fatal(err)
	}
	st, body, err := kc.recv(10 * time.Second)
	if err != nil || st != 200 || string(body) != "bye" {
		t.Fatalf("status %d body %q err %v", st, body, err)
	}
	kc.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := kc.nc.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("read after Connection: close response: %v, want EOF", err)
	}
}

// TestMuxMalformedRequestAnswered400: garbage on the wire gets a 400
// and a close, via the staged-error write path.
func TestMuxMalformedRequestAnswered400(t *testing.T) {
	tf := startFabric(t, muxOpts(nil), nil)
	kc := dialKA(t, tf.addr())
	if _, err := kc.nc.Write([]byte("NONSENSE\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	st, _, err := kc.recv(10 * time.Second)
	if err != nil || st != 400 {
		t.Fatalf("status %d err %v, want 400", st, err)
	}
	kc.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := kc.nc.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("read after 400: %v, want EOF", err)
	}
}

// TestMuxManyIdleConnsStayLive holds a population of idle keep-alive
// connections while active traffic runs, then proves every idle
// connection still answers — the tentpole property, scaled down to a
// -race-friendly population.  conns_parked must have observed the
// population.
func TestMuxManyIdleConnsStayLive(t *testing.T) {
	const idle = 128
	tf := startFabric(t, muxOpts(func(o *Options) {
		o.MaxConns = idle + 32
		// The population must outlive the active phase: the default
		// idle budget is 2s and a loaded host can stretch the phase
		// past it, turning legitimate idle expiry into a flake.  The
		// silent-close sweep has its own test.
		o.IdleTicks = 120000
	}), nil)

	idles := make([]*kaConn, idle)
	for i := range idles {
		kc := dialKA(t, tf.addr())
		if err := kc.send("/echo?msg=warm"); err != nil {
			t.Fatal(err)
		}
		if st, _, err := kc.recv(10 * time.Second); err != nil || st != 200 {
			t.Fatalf("idle conn %d warmup: status %d err %v", i, st, err)
		}
		idles[i] = kc
	}

	// Active traffic on separate connections while the population parks.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			kc, err := net.DialTimeout("tcp", tf.addr(), 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer kc.Close()
			c := &kaConn{nc: kc}
			for i := 0; i < 25; i++ {
				if err := c.send("/echo?msg=a"); err != nil {
					t.Error(err)
					return
				}
				if st, _, err := c.recv(10 * time.Second); err != nil || st != 200 {
					t.Errorf("active: status %d err %v", st, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	snap := tf.fab.FrontMetrics().Snapshot()
	if got := snap.Get("serve.conns_parked"); got < idle {
		t.Errorf("serve.conns_parked = %d with %d idle conns held, want >= %d", got, idle, idle)
	}

	// Every parked connection must still be live.
	for i, kc := range idles {
		if err := kc.send("/echo?msg=still"); err != nil {
			t.Fatalf("idle conn %d went dead: %v", i, err)
		}
		if st, body, err := kc.recv(10 * time.Second); err != nil || st != 200 || string(body) != "still" {
			t.Fatalf("idle conn %d: status %d body %q err %v", i, st, body, err)
		}
	}
}

// TestMuxDrainZeroDropped mirrors the conn-thread drain guarantee: a
// drain with dispatched requests in flight answers them all, refuses
// new connections, and quiesces every runner (pollers included).
func TestMuxDrainZeroDropped(t *testing.T) {
	tf := startFabric(t, muxOpts(nil),
		func(fab *Fabric) { fab.Handle("/park", parkHandler) })

	const clients = 3
	results := make(chan int, clients)
	for i := 0; i < clients; i++ {
		go func() {
			kc, err := net.DialTimeout("tcp", tf.addr(), 2*time.Second)
			if err != nil {
				results <- -1
				return
			}
			defer kc.Close()
			c := &kaConn{nc: kc}
			if c.send("/park?ticks=80", "Connection: close") != nil {
				results <- -1
				return
			}
			st, _, err := c.recv(30 * time.Second)
			if err != nil {
				st = -1
			}
			results <- st
		}()
	}
	// Wait until every client's request is actually dispatched on a
	// shard before draining — a fixed sleep races the client
	// goroutines on a loaded host and turns dial/read failures into
	// spurious non-200s.
	deadline := time.Now().Add(10 * time.Second)
	for {
		dispatched := 0
		for i := 0; i < tf.fab.Shards(); i++ {
			dispatched += tf.fab.Shard(i).InFlight()
		}
		if dispatched >= clients {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests dispatched before drain", dispatched, clients)
		}
		time.Sleep(5 * time.Millisecond)
	}
	tf.drainAndWait(t)
	for i := 0; i < clients; i++ {
		if st := <-results; st != 200 {
			t.Errorf("in-flight request got %d during drain, want 200", st)
		}
	}
	if _, err := net.DialTimeout("tcp", tf.addr(), 500*time.Millisecond); err == nil {
		t.Error("fabric still accepting connections after drain")
	}
}
