// Package spinlock implements the Lock half of the MP platform (paper
// §3.3): one-bit mutex locks that can be atomically tested and set, are
// typically used as spin locks, and may be unlocked by any proc — not
// necessarily the one that set them.  That last property rules out
// sync.Mutex-style owner tracking, so the locks here are built directly on
// atomics.
//
// The paper's LOCK signature provides mutex_lock (creation), try_lock,
// lock, and unlock, and notes that `lock` is semantically the trivial spin
//
//	fun lock sl = while not(try_lock sl) do ()
//
// but is included in the interface because platforms may spin more
// efficiently, e.g. with backoff techniques [Anderson 90].  Accordingly the
// package offers several spin strategies — test-and-set, test-and-test-and-
// set, TTAS with randomized exponential backoff, a ticket lock, and an
// Anderson array lock — behind one interface, and the repository's A1
// ablation benchmark compares them under contention.
package spinlock

import (
	"math/rand"
	"runtime"
	"sync/atomic"
)

// Lock is the paper's mutex_lock abstraction.  The zero value of each
// concrete type in this package is an unlocked lock.
type Lock interface {
	// TryLock attempts to set the lock and reports success without
	// blocking.
	TryLock() bool
	// Lock spins until the lock is acquired.
	Lock()
	// Unlock releases the lock.  Any proc may call it, not only the one
	// that set the lock.
	Unlock()
}

// Factory creates fresh unlocked locks; clients are parameterized by one
// just as the paper's functors are parameterized by structures.
type Factory func() Lock

// yieldEvery bounds pure spinning: with more spinners than CPUs a
// non-yielding loop could starve the lock holder, so every spin strategy
// calls runtime.Gosched periodically.
const yieldEvery = 64

// OnContention, when non-nil, is called at the end of every contended
// Lock with the number of failed acquisition attempts the caller spun
// through.  The observability layer installs a sharded counter here;
// the nil default keeps the uncontended path to a single predictable
// branch, so this package stays free of metrics dependencies.  Install
// before any lock is shared between procs; the hook must not itself
// take a lock from this package.
var OnContention func(spins int64)

// contended reports a contended acquisition to the hook, if any.
func contended(spins int64) {
	if h := OnContention; h != nil && spins > 0 {
		h(spins)
	}
}

// TAS is the naive test-and-set lock: every acquisition attempt is a
// read-modify-write, generating coherence traffic on each spin.
type TAS struct {
	v atomic.Bool
}

// NewTAS returns an unlocked test-and-set lock.
func NewTAS() Lock { return new(TAS) }

func (l *TAS) TryLock() bool { return !l.v.Swap(true) }

func (l *TAS) Lock() {
	var spins int64
	for i := 1; !l.TryLock(); i++ {
		spins++
		if i%yieldEvery == 0 {
			runtime.Gosched()
		}
	}
	contended(spins)
}

func (l *TAS) Unlock() {
	if !l.v.Swap(false) {
		panic("spinlock: unlock of unlocked TAS lock")
	}
}

// TTAS spins on a plain read and attempts the atomic swap only when the
// lock appears free, the classic test-and-test-and-set refinement.
type TTAS struct {
	v atomic.Bool
}

// NewTTAS returns an unlocked test-and-test-and-set lock.
func NewTTAS() Lock { return new(TTAS) }

func (l *TTAS) TryLock() bool { return !l.v.Load() && !l.v.Swap(true) }

func (l *TTAS) Lock() {
	var spins int64
	for i := 1; ; i++ {
		if !l.v.Load() && !l.v.Swap(true) {
			contended(spins)
			return
		}
		spins++
		if i%yieldEvery == 0 {
			runtime.Gosched()
		}
	}
}

func (l *TTAS) Unlock() {
	if !l.v.Swap(false) {
		panic("spinlock: unlock of unlocked TTAS lock")
	}
}

// Backoff is TTAS with randomized exponential backoff between attempts,
// the strategy Anderson found best for shared-bus machines like the
// Sequent the paper evaluates on.
type Backoff struct {
	v atomic.Bool
}

// NewBackoff returns an unlocked TTAS lock with exponential backoff.
func NewBackoff() Lock { return new(Backoff) }

func (l *Backoff) TryLock() bool { return !l.v.Load() && !l.v.Swap(true) }

func (l *Backoff) Lock() {
	limit := 4
	var spins int64
	for {
		if !l.v.Load() && !l.v.Swap(true) {
			contended(spins)
			return
		}
		spins++
		for i, n := 0, rand.Intn(limit); i < n; i++ {
			if l.v.Load() {
				// Keep waiting; the read keeps the delay loop from
				// being optimized into nothing.
				continue
			}
		}
		runtime.Gosched()
		if limit < 1<<12 {
			limit *= 2
		}
	}
}

func (l *Backoff) Unlock() {
	if !l.v.Swap(false) {
		panic("spinlock: unlock of unlocked Backoff lock")
	}
}

// Ticket is a FIFO lock: acquirers draw a ticket and spin until the
// now-serving counter reaches it, eliminating the thundering herd at the
// cost of strict ordering.
//
// syncx.FairLock extends this claim/release shape into the fair,
// spin-free protocol the fabric's Options.FairLocks deploys: the same
// ticket FIFO, but waiters yield cooperatively on every check instead
// of spinning a budget, the claim loop doubles as a GC safe point
// (GCWorld), and TryLock refuses to overtake a queued claim.  This
// package keeps only the spinning flavors so the A1 ablation stays a
// pure spin-strategy sweep.
type Ticket struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// NewTicket returns an unlocked ticket lock.
func NewTicket() Lock { return new(Ticket) }

func (l *Ticket) TryLock() bool {
	t := l.serving.Load()
	return l.next.CompareAndSwap(t, t+1)
}

func (l *Ticket) Lock() {
	t := l.next.Add(1) - 1
	var spins int64
	for i := 1; l.serving.Load() != t; i++ {
		spins++
		if i%yieldEvery == 0 {
			runtime.Gosched()
		}
	}
	contended(spins)
}

func (l *Ticket) Unlock() {
	l.serving.Add(1)
}

// andersonSlots bounds the number of simultaneous waiters on an Anderson
// array lock; 128 exceeds any proc count the platform configures.
const andersonSlots = 128

// Anderson is Anderson's array-based queueing lock: each waiter spins on
// its own slot, so a release invalidates one waiter's line instead of all
// of them.
type Anderson struct {
	slots [andersonSlots]struct {
		flag atomic.Bool
		_    [56]byte // pad to a cache line to avoid false sharing
	}
	next    atomic.Uint64
	serving atomic.Uint64 // ticket of the current holder; lets any proc unlock
}

// NewAnderson returns an unlocked Anderson array lock.
func NewAnderson() Lock {
	l := new(Anderson)
	l.slots[0].flag.Store(true)
	return l
}

func (l *Anderson) TryLock() bool {
	t := l.next.Load()
	if !l.slots[t%andersonSlots].flag.Load() {
		return false
	}
	if !l.next.CompareAndSwap(t, t+1) {
		return false
	}
	l.slots[t%andersonSlots].flag.Store(false)
	l.serving.Store(t)
	return true
}

func (l *Anderson) Lock() {
	t := l.next.Add(1) - 1
	slot := &l.slots[t%andersonSlots]
	var spins int64
	for i := 1; !slot.flag.Load(); i++ {
		spins++
		if i%yieldEvery == 0 {
			runtime.Gosched()
		}
	}
	slot.flag.Store(false)
	l.serving.Store(t)
	contended(spins)
}

func (l *Anderson) Unlock() {
	s := l.serving.Load()
	l.slots[(s+1)%andersonSlots].flag.Store(true)
}

// Variants names every lock flavor for ablation sweeps.
var Variants = []struct {
	Name string
	New  Factory
}{
	{"tas", NewTAS},
	{"ttas", NewTTAS},
	{"backoff", NewBackoff},
	{"ticket", NewTicket},
	{"anderson", NewAnderson},
}
