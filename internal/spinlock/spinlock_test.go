package spinlock

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func forEachVariant(t *testing.T, f func(t *testing.T, name string, mk Factory)) {
	for _, v := range Variants {
		v := v
		t.Run(v.Name, func(t *testing.T) { f(t, v.Name, v.New) })
	}
}

func TestTryLockOnFresh(t *testing.T) {
	forEachVariant(t, func(t *testing.T, name string, mk Factory) {
		l := mk()
		if !l.TryLock() {
			t.Fatal("TryLock on fresh lock failed")
		}
		if l.TryLock() {
			t.Fatal("TryLock on held lock succeeded")
		}
		l.Unlock()
		if !l.TryLock() {
			t.Fatal("TryLock after Unlock failed")
		}
		l.Unlock()
	})
}

func TestLockUnlockCycle(t *testing.T) {
	forEachVariant(t, func(t *testing.T, name string, mk Factory) {
		l := mk()
		for i := 0; i < 100; i++ {
			l.Lock()
			l.Unlock()
		}
	})
}

func TestUnlockByOtherGoroutine(t *testing.T) {
	// Paper §3.3: unlock "may be called by any proc (not necessarily the
	// one that set the lock)".
	forEachVariant(t, func(t *testing.T, name string, mk Factory) {
		l := mk()
		l.Lock()
		done := make(chan struct{})
		go func() {
			l.Unlock()
			close(done)
		}()
		<-done
		if !l.TryLock() {
			t.Fatal("lock still held after foreign unlock")
		}
		l.Unlock()
	})
}

func TestMutualExclusion(t *testing.T) {
	forEachVariant(t, func(t *testing.T, name string, mk Factory) {
		l := mk()
		const (
			goroutines = 8
			iters      = 2000
		)
		counter := 0
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					l.Lock()
					counter++
					l.Unlock()
				}
			}()
		}
		wg.Wait()
		if counter != goroutines*iters {
			t.Fatalf("counter = %d, want %d (mutual exclusion violated)",
				counter, goroutines*iters)
		}
	})
}

func TestMutualExclusionViaTryLock(t *testing.T) {
	forEachVariant(t, func(t *testing.T, name string, mk Factory) {
		l := mk()
		const goroutines = 8
		counter := 0
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					for !l.TryLock() {
					}
					counter++
					l.Unlock()
				}
			}()
		}
		wg.Wait()
		if counter != goroutines*500 {
			t.Fatalf("counter = %d, want %d", counter, goroutines*500)
		}
	})
}

// TestQuickLockSequences drives each lock through random serialized
// TryLock/Unlock scripts and checks it behaves as a one-bit state machine.
func TestQuickLockSequences(t *testing.T) {
	forEachVariant(t, func(t *testing.T, name string, mk Factory) {
		prop := func(script []bool) bool {
			l := mk()
			held := false
			for _, tryLock := range script {
				if tryLock {
					got := l.TryLock()
					if got == held {
						return false // acquired while held, or failed while free
					}
					if got {
						held = true
					}
				} else if held {
					l.Unlock()
					held = false
				}
			}
			return true
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
			t.Error(err)
		}
	})
}

// TestOnContentionHook checks that every variant reports contended
// acquisitions through the hook and stays silent when uncontended.
func TestOnContentionHook(t *testing.T) {
	forEachVariant(t, func(t *testing.T, name string, mk Factory) {
		var calls, spins atomic.Int64
		OnContention = func(n int64) {
			calls.Add(1)
			spins.Add(n)
		}
		defer func() { OnContention = nil }()

		l := mk()
		l.Lock()
		l.Unlock()
		if calls.Load() != 0 {
			t.Fatalf("hook fired %d times on uncontended lock", calls.Load())
		}

		// Retry until the waiter demonstrably spun: the goroutine may win
		// the race and acquire without contention on any given attempt.
		for attempt := 0; attempt < 100 && calls.Load() == 0; attempt++ {
			l.Lock()
			started := make(chan struct{})
			done := make(chan struct{})
			go func() {
				close(started)
				l.Lock()
				l.Unlock()
				close(done)
			}()
			<-started
			runtime.Gosched() // let the waiter reach its spin loop
			l.Unlock()
			<-done
		}
		if calls.Load() == 0 || spins.Load() == 0 {
			t.Fatalf("hook not called for contended lock (calls=%d spins=%d)",
				calls.Load(), spins.Load())
		}
	})
}

func BenchmarkUncontended(b *testing.B) {
	for _, v := range Variants {
		b.Run(v.Name, func(b *testing.B) {
			l := v.New()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Lock()
				l.Unlock()
			}
		})
	}
}

func BenchmarkContended(b *testing.B) {
	for _, v := range Variants {
		b.Run(v.Name, func(b *testing.B) {
			l := v.New()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					l.Unlock()
				}
			})
		})
	}
}
