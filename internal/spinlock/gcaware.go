package spinlock

import "runtime"

// GCWorld is the slice of gcsync.World a GC-aware lock needs: a
// lock-free flag saying a stop-the-world collection is pending, and a
// clean point the spinner can take mid-spin.  Declared here as an
// interface so this package stays dependency-free, exactly as the
// paper's functors are closed over structures.
type GCWorld interface {
	// InSection reports a pending or running collection (one atomic load).
	InSection() bool
	// SectionPoint joins or helps the pending collection; safe from any
	// goroutine at any time.
	SectionPoint()
}

// GCAware wraps a lock factory so every acquisition polls the world's
// GC section, MPL-style (Parallel_lockTake polling Proc_threadInSection
// before each take attempt): a proc acquiring a lock during a pending
// collection enters the collection first — joining the clean-point
// barrier if its goroutine is bound to an allocating proc, stealing
// copying work otherwise — instead of burning cycles while the entire
// world waits for it, or worse, while the lock holder is itself stopped
// in the collection.  Without this, a spinner whose holder has arrived
// at the barrier convoys the collection for the whole stop.  The poll
// runs before the *first* try too: serving-path critical sections are
// sub-microsecond, so a spinner alone would almost never observe the
// section flag — the pre-try poll is what makes every lock acquisition
// a safe point.
//
// The wrapper spins on the inner lock's TryLock, so the inner flavor's
// acquisition-order guarantees (Ticket/Anderson FIFO) do not survive
// wrapping; its memory-visibility guarantees do.  Use it for locks that
// may be held or wanted across allocation points on a gcsync world —
// shard rings, reply cells, steal claims.
func GCAware(f Factory, w GCWorld) Factory {
	return func() Lock { return &gcAware{inner: f(), w: w} }
}

type gcAware struct {
	inner Lock
	w     GCWorld
}

func (l *gcAware) TryLock() bool { return l.inner.TryLock() }

func (l *gcAware) Lock() {
	var spins int64
	for i := 1; ; i++ {
		if l.w.InSection() {
			l.w.SectionPoint()
		}
		if l.inner.TryLock() {
			break
		}
		spins++
		if i%yieldEvery == 0 {
			runtime.Gosched()
		}
	}
	contended(spins)
}

func (l *gcAware) Unlock() { l.inner.Unlock() }
