package pubsub

// Broker tests.  Test files are the host and the client side of the
// wire — raw goroutines and channels are fine here; the purity test
// scans only non-test sources.  The end-to-end tests run a real
// serve.Server with the broker installed, exactly as cmd/mpserved
// wires it; the unit tests drive the SubStream ring directly.

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/serve"
	"repro/internal/threads"
)

type testBroker struct {
	srv   *serve.Server
	b     *Broker
	done  chan struct{}
	wdone chan struct{}
}

func (tb *testBroker) addr() string { return tb.srv.Addr().String() }

// startBroker hosts a server with the broker installed: the server's
// threads on their own system, the delivery world on its own goroutine,
// both drained and awaited at cleanup.
func startBroker(t *testing.T, procs int, sopts serve.Options, popts Options) *testBroker {
	t.Helper()
	pl := proc.New(procs)
	sys := threads.New(pl, threads.Options{})
	sopts.Addr = "127.0.0.1:0"
	srv, err := serve.New(sys, sopts)
	if err != nil {
		t.Fatal(err)
	}
	b := New(sys, srv.Clock(), sys.Metrics(), popts)
	Install(srv, b)
	tb := &testBroker{srv: srv, b: b, done: make(chan struct{}), wdone: make(chan struct{})}
	go func() {
		b.Runner()()
		close(tb.wdone)
	}()
	go func() {
		sys.Run(func() { srv.Serve() })
		close(tb.done)
	}()
	healthy := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if st, _, _, err := psReq(tb.addr(), "GET", "/healthz", nil, nil, time.Second); err == nil && st == 200 {
			healthy = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !healthy {
		t.Fatal("server did not become healthy")
	}
	t.Cleanup(func() {
		srv.Drain()
		for _, ch := range []chan struct{}{tb.done, tb.wdone} {
			select {
			case <-ch:
			case <-time.After(30 * time.Second):
				t.Error("broker host did not quiesce after drain")
			}
		}
	})
	return tb
}

// psReq is a one-shot HTTP client: Connection: close, Content-Length
// framed response body.
func psReq(addr, method, path string, hdrs []string, body []byte, timeout time.Duration) (int, map[string]string, []byte, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, nil, nil, err
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(timeout))
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: %d\r\n", method, path, len(body))
	for _, h := range hdrs {
		b.WriteString(h + "\r\n")
	}
	b.WriteString("\r\n")
	b.Write(body)
	if _, err := nc.Write(b.Bytes()); err != nil {
		return 0, nil, nil, err
	}
	br := bufio.NewReader(nc)
	status, hdr, err := readHead(br)
	if err != nil {
		return 0, nil, nil, err
	}
	clen, _ := strconv.Atoi(hdr["content-length"])
	respBody := make([]byte, clen)
	if _, err := ioReadFull(br, respBody); err != nil {
		return 0, nil, nil, err
	}
	return status, hdr, respBody, nil
}

func ioReadFull(br *bufio.Reader, p []byte) (int, error) {
	n := 0
	for n < len(p) {
		m, err := br.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func readHead(br *bufio.Reader) (int, map[string]string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, nil, err
	}
	parts := strings.SplitN(strings.TrimSpace(line), " ", 3)
	if len(parts) < 2 {
		return 0, nil, fmt.Errorf("bad status line %q", line)
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, nil, err
	}
	hdr := map[string]string{}
	for {
		h, err := br.ReadString('\n')
		if err != nil {
			return 0, nil, err
		}
		h = strings.TrimSpace(h)
		if h == "" {
			return status, hdr, nil
		}
		if k, v, ok := strings.Cut(h, ":"); ok {
			hdr[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
		}
	}
}

// subClient is a live subscription: the chunked stream and its id.
type subClient struct {
	nc net.Conn
	br *bufio.Reader
	id string
}

func subscribe(t *testing.T, addr, topic string, hdrs ...string) *subClient {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	nc.SetDeadline(time.Now().Add(30 * time.Second))
	var b bytes.Buffer
	fmt.Fprintf(&b, "GET /subscribe?topic=%s HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n", topic)
	for _, h := range hdrs {
		b.WriteString(h + "\r\n")
	}
	b.WriteString("\r\n")
	if _, err := nc.Write(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	status, hdr, err := readHead(br)
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("subscribe status = %d", status)
	}
	if !strings.Contains(strings.ToLower(hdr["transfer-encoding"]), "chunked") {
		t.Fatalf("subscribe response not chunked: %v", hdr)
	}
	sc := &subClient{nc: nc, br: br}
	frame, term := sc.next(t, 10*time.Second)
	if term || !strings.HasPrefix(frame, "id:") {
		t.Fatalf("first frame = %q (term=%v), want id:<n>", frame, term)
	}
	sc.id = frame[3:]
	return sc
}

// next reads one chunked frame, skipping heartbeat padding.
func (sc *subClient) next(t *testing.T, timeout time.Duration) (string, bool) {
	t.Helper()
	for {
		sc.nc.SetReadDeadline(time.Now().Add(timeout))
		line, err := sc.br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream read: %v", err)
		}
		size, err := strconv.ParseInt(strings.TrimSpace(line), 16, 32)
		if err != nil {
			t.Fatalf("bad chunk size %q", line)
		}
		if size == 0 {
			sc.br.ReadString('\n')
			return "", true
		}
		buf := make([]byte, size+2)
		if _, err := ioReadFull(sc.br, buf); err != nil {
			t.Fatal(err)
		}
		if f := string(buf[:size]); f != "\n" {
			return f, false
		}
	}
}

// ------------------------------------------------------------ end to end

func TestPublishSubscribeDeliverEndToEnd(t *testing.T) {
	tb := startBroker(t, 2, serve.Options{}, Options{})
	sc := subscribe(t, tb.addr(), "a")

	st, _, body, err := psReq(tb.addr(), "POST", "/publish?topic=a", nil, []byte("hello subs"), 10*time.Second)
	if err != nil || st != 200 {
		t.Fatalf("publish: %d %q %v", st, body, err)
	}
	if frame, term := sc.next(t, 10*time.Second); term || frame != "hello subs" {
		t.Fatalf("delivered frame = %q (term=%v)", frame, term)
	}

	// Unsubscribe closes the stream cleanly: terminator after pending
	// frames.
	st, _, _, err = psReq(tb.addr(), "POST", "/unsubscribe?topic=a&id="+sc.id, nil, nil, 10*time.Second)
	if err != nil || st != 200 {
		t.Fatalf("unsubscribe: %d %v", st, err)
	}
	if _, term := sc.next(t, 10*time.Second); !term {
		t.Fatal("stream did not end with the chunked terminator after unsubscribe")
	}

	s := tb.b.Stats()
	if s.Published != 1 || s.Delivered != 1 {
		t.Errorf("stats = %+v, want published 1 delivered 1", s)
	}
	if s.DroppedSlow != 0 {
		t.Errorf("dropped_slow = %d, want 0", s.DroppedSlow)
	}
}

func TestPublishFanoutToManySubscribers(t *testing.T) {
	tb := startBroker(t, 2, serve.Options{}, Options{})
	const n = 8
	subs := make([]*subClient, n)
	for i := range subs {
		subs[i] = subscribe(t, tb.addr(), "fan")
	}
	st, _, _, err := psReq(tb.addr(), "POST", "/publish?topic=fan", nil, []byte("boom"), 10*time.Second)
	if err != nil || st != 200 {
		t.Fatalf("publish: %d %v", st, err)
	}
	for i, sc := range subs {
		if frame, term := sc.next(t, 10*time.Second); term || frame != "boom" {
			t.Fatalf("sub %d: frame = %q (term=%v)", i, frame, term)
		}
	}
	if d := tb.b.Stats().Delivered; d != n {
		t.Errorf("delivered = %d, want %d", d, n)
	}
}

func TestPublishQuotaDenied429(t *testing.T) {
	tb := startBroker(t, 2, serve.Options{}, Options{QuotaPerSec: 1, QuotaBurst: 2})
	var ok200, denied429 int
	var retryAfter string
	for i := 0; i < 10; i++ {
		st, hdr, _, err := psReq(tb.addr(), "POST", "/publish?topic=q",
			[]string{"X-Tenant: noisy"}, []byte("x"), 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		switch st {
		case 200:
			ok200++
		case 429:
			denied429++
			retryAfter = hdr["retry-after"]
		default:
			t.Fatalf("publish %d: status %d", i, st)
		}
	}
	if ok200 == 0 || denied429 == 0 {
		t.Fatalf("ok=%d denied=%d, want both the burst admitted and the excess denied", ok200, denied429)
	}
	if retryAfter == "" {
		t.Error("429 carried no Retry-After")
	}
	if q := tb.b.Stats().QuotaDenied; q != int64(denied429) {
		t.Errorf("quota_denied counter = %d, want %d", q, denied429)
	}
}

func TestUnsubscribeUnknown(t *testing.T) {
	tb := startBroker(t, 2, serve.Options{}, Options{})
	if st, _, _, _ := psReq(tb.addr(), "POST", "/unsubscribe?topic=missing&id=1", nil, nil, 10*time.Second); st != 404 {
		t.Fatalf("unknown topic: status %d, want 404", st)
	}
	subscribe(t, tb.addr(), "u")
	if st, _, _, _ := psReq(tb.addr(), "POST", "/unsubscribe?topic=u&id=999", nil, nil, 10*time.Second); st != 404 {
		t.Fatalf("unknown id: status %d, want 404", st)
	}
}

// TestDrainZeroLostAckedDeliveries is the zero-loss guarantee end to
// end: every publish acked with 200 before the drain must reach every
// live subscriber before its stream's terminator.
func TestDrainZeroLostAckedDeliveries(t *testing.T) {
	tb := startBroker(t, 2, serve.Options{}, Options{})
	const nsubs, npubs = 3, 5
	subs := make([]*subClient, nsubs)
	for i := range subs {
		subs[i] = subscribe(t, tb.addr(), "z")
	}
	for i := 0; i < npubs; i++ {
		st, _, _, err := psReq(tb.addr(), "POST", "/publish?topic=z", nil,
			[]byte(fmt.Sprintf("m%d", i)), 10*time.Second)
		if err != nil || st != 200 {
			t.Fatalf("publish %d: %d %v", i, st, err)
		}
	}

	tb.srv.Drain()

	for i, sc := range subs {
		got := 0
		for {
			frame, term := sc.next(t, 20*time.Second)
			if term {
				break
			}
			if want := fmt.Sprintf("m%d", got); frame != want {
				t.Fatalf("sub %d frame %d = %q, want %q (in order)", i, got, frame, want)
			}
			got++
		}
		if got != npubs {
			t.Errorf("sub %d saw %d of %d acked publishes before the terminator", i, got, npubs)
		}
	}

	// Post-drain operations reject.
	if st, _, _, err := psReq(tb.addr(), "POST", "/publish?topic=z", nil, []byte("late"), 10*time.Second); err == nil && st != 503 {
		t.Errorf("publish after drain: status %d, want 503 (or refused)", st)
	}
}

// --------------------------------------------------------------- the ring

func TestSubStreamOrderOverflowAndClose(t *testing.T) {
	st := newSubStream(4)
	for i := 0; i < 4; i++ {
		if r := st.push([]byte{byte('a' + i)}, int64(i)); r != pushOK {
			t.Fatalf("push %d = %d, want pushOK", i, r)
		}
	}
	if r := st.push([]byte("x"), 9); r != pushFull {
		t.Fatalf("overflow push = %d, want pushFull", r)
	}
	st.close()
	// Pending frames drain in FIFO order before the close surfaces.
	for i := 0; i < 4; i++ {
		data, tick, ok, open := st.pullTick()
		if !ok || !open || string(data) != string(byte('a'+i)) || tick != int64(i) {
			t.Fatalf("pull %d = %q tick=%d ok=%v open=%v", i, data, tick, ok, open)
		}
	}
	if _, ok, open := st.Pull(); ok || open {
		t.Fatalf("drained closed ring: ok=%v open=%v, want false/false", ok, open)
	}
	if r := st.push([]byte("y"), 1); r != pushGone {
		t.Fatalf("push after close = %d, want pushGone", r)
	}
}

func TestSubStreamCancelDropsPendingAndReadsDead(t *testing.T) {
	st := newSubStream(4)
	st.push([]byte("a"), 1)
	if st.dead() {
		t.Fatal("fresh ring reads dead")
	}
	st.Cancel()
	st.Cancel() // idempotent
	if !st.dead() {
		t.Fatal("canceled ring must read dead")
	}
	if _, ok, open := st.Pull(); ok || open {
		t.Fatalf("canceled ring Pull: ok=%v open=%v, want false/false", ok, open)
	}
	if r := st.push([]byte("b"), 2); r != pushGone {
		t.Fatalf("push after cancel = %d, want pushGone", r)
	}
}
