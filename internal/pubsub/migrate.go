package pubsub

// Topic handoff between brokers: the mechanism behind elastic shard
// membership (internal/shard/member.go).  A topic — its subscriber set,
// each subscriber's SubStream still attached to a live client
// connection in the front world — moves from one broker to another
// without the clients noticing and without losing one acked frame.
//
// The key property making this safe is that every publish is fanned out
// by exactly one broker (the one whose handler received it), so a
// subscriber registered with BOTH brokers during the window never sees
// a duplicate: old-owner fan-outs and new-owner fan-outs push into the
// same SubStream ring under its own spinlock, and each frame is pushed
// once.  The coordinator therefore runs make-before-break:
//
//  1. BeginMigrate on the old owner: tombstone the topic (new publish/
//     subscribe/unsubscribe answer 409 "topic moved"), then snapshot
//     the subscriber list via a control message.  In-flight messages
//     that passed admission before the tombstone keep fanning out to
//     the still-registered subscribers.
//  2. Adopt on the new owner: clear any tombstone there and register
//     the handed-off subscribers.  From here the subscribers are
//     reachable from both sides.
//  3. The coordinator flips the routing ring; new traffic reaches the
//     new owner.
//  4. Once the old topic's in-flight control messages have all been
//     consumed (Quiesced), Detach forgets the subscribers on the old
//     side WITHOUT closing their streams and retires the topic thread.
//
// Ordering across the handoff is preserved per subscriber: a publisher
// that saw frame F1 acked before submitting F2 had F1 pushed into every
// ring before F2's fan-out began, whichever broker ran it.

import (
	"sync/atomic"
)

// Migration phases (Migration.st).
const (
	migPending int32 = iota
	migPeeked
	migDetached
)

// Migration is the coordinator's handle on one topic moving OUT of a
// broker.  The coordinator lives in a different scheduling world (the
// fabric's front system), so every wait is a poll — Peeked, Quiesced,
// Detached — that the coordinator interleaves with parks on its own
// clock; nothing here blocks on the broker's scheduler.
type Migration struct {
	b    *Broker
	name string
	tp   *topic // nil: the topic never existed here (tombstone only)
	st   atomic.Int32
	subs []*Sub // valid once st >= migPeeked
}

// TopicNames snapshots the names of the topics this broker currently
// owns — the work list for migrating a whole shard out.
func (b *Broker) TopicNames() []string {
	b.state.Lock()
	names := make([]string, 0, len(b.topics))
	for name, tp := range b.topics {
		if !tp.moved {
			names = append(names, name)
		}
	}
	b.state.Unlock()
	return names
}

// BeginMigrate tombstones the topic on this broker and asks its thread
// for the live subscriber list.  After this returns, no new control
// message for the topic can be created here (handlers answer 409), so
// the topic's queued count can only fall.  Safe to call for a topic
// that does not exist: the tombstone still guards against a stale
// publish recreating an orphan after the ring flips.
func (b *Broker) BeginMigrate(name string) *Migration {
	m := &Migration{b: b, name: name}
	b.state.Lock()
	b.moved[name] = true
	tp := b.topics[name]
	if tp != nil && tp.moved {
		tp = nil // already migrated; nothing live to peek
	}
	if tp != nil {
		tp.queued++
	}
	b.state.Unlock()
	m.tp = tp
	if tp == nil {
		m.st.Store(migDetached)
		return m
	}
	tp.ctrl.Send(b.sys, topicMsg{kind: msgPeek, mig: m})
	return m
}

// Peeked reports whether the subscriber snapshot is available.
func (m *Migration) Peeked() bool { return m.st.Load() >= migPeeked }

// Subs returns the snapshot taken at BeginMigrate; call after Peeked.
func (m *Migration) Subs() []*Sub { return m.subs }

// Quiesced reports whether every control message admitted before the
// tombstone has been consumed by the topic thread — the point after
// which no old-owner fan-out for this topic can still be created, and
// Detach becomes safe.
func (m *Migration) Quiesced() bool {
	if m.tp == nil {
		return true
	}
	m.b.state.Lock()
	q := m.tp.queued
	m.b.state.Unlock()
	return q == 0
}

// Detach forgets the handed-off subscribers on the old owner without
// closing their streams and retires the topic thread.  Call only after
// Quiesced (and after the new owner adopted the subscribers).
func (b *Broker) Detach(m *Migration) {
	if m.tp == nil {
		return
	}
	b.state.Lock()
	m.tp.queued++
	b.state.Unlock()
	m.tp.ctrl.Send(b.sys, topicMsg{kind: msgDetach, mig: m})
}

// Detached reports whether the old owner has forgotten the topic.
func (m *Migration) Detached() bool { return m.st.Load() >= migDetached }

// Handoff is the coordinator's poll handle on an Adopt.
type Handoff struct{ g gate }

// Done reports whether the adoption settled.
func (h *Handoff) Done() bool { return h.g.v.Load() != gatePending }

// OK reports whether the adoption succeeded (false: the adopting broker
// is draining; the subscribers stay owned by the old broker, whose own
// drain will close them).
func (h *Handoff) OK() bool { return h.g.v.Load() == gateOK }

// Adopt clears any tombstone for the topic on this broker and registers
// the handed-off subscribers with its (created-if-needed) topic thread.
// Call with the subscribers from a Migration.Subs on the old owner,
// BEFORE the routing flip, so a publish arriving the instant the ring
// changes already fans out to them.  An empty subs slice still clears
// the tombstone — required when a topic bounces back to a broker that
// migrated it away earlier.
func (b *Broker) Adopt(name string, subs []*Sub) *Handoff {
	h := &Handoff{}
	b.state.Lock()
	delete(b.moved, name)
	if b.draining {
		b.state.Unlock()
		h.g.set(gateRejected)
		return h
	}
	if len(subs) == 0 {
		b.state.Unlock()
		h.g.set(gateOK)
		return h
	}
	tp, created, startJanitor := b.topicLocked(name)
	b.state.Unlock()
	b.forkTopic(tp, created, startJanitor)
	tp.ctrl.Send(b.sys, topicMsg{kind: msgAdopt, subs: subs, done: &h.g})
	return h
}
