package pubsub

// SubStream is one subscriber's delivery buffer: a fixed-capacity ring
// of frames pushed by the broker's delivery world and pulled by
// whatever owns the subscriber's connection — a serve worker thread, a
// fabric connection thread, or a mux poller, all in *other* scheduling
// worlds than the pusher.  A plain spinlock is the only primitive both
// sides can share; holders do O(1) work so the lock never convoys.
//
// The ring is where the zero-loss guarantee lives: a publish is acked
// only after its frame is in every live subscriber's ring, and Pull
// drains pending frames before surfacing a close, so an acked frame can
// be lost only by the subscriber's own death (or by eviction when its
// ring overflows — the slow-consumer policy, counted, never silent).

import (
	"repro/internal/core"
)

// sframe is one buffered frame plus the broker-clock tick it was
// published at, for delivery-lag accounting at the consumer.
type sframe struct {
	data []byte
	tick int64
}

// push results.
const (
	pushOK   = iota
	pushFull // ring at capacity: slow consumer, caller evicts
	pushGone // closed or canceled: no delivery owed
)

// SubStream implements the producer/consumer ring behind one Sub.
type SubStream struct {
	lock     core.Lock
	buf      []sframe
	head     int
	n        int
	closed   bool // producer ended (unsubscribe / broker drain)
	canceled bool // consumer gone (connection died or refused)
}

func newSubStream(depth int) *SubStream {
	if depth < 2 {
		depth = 2
	}
	return &SubStream{lock: core.NewMutexLock(), buf: make([]sframe, depth)}
}

// push appends a frame from the delivery world.
func (st *SubStream) push(data []byte, tick int64) int {
	st.lock.Lock()
	if st.closed || st.canceled {
		st.lock.Unlock()
		return pushGone
	}
	if st.n == len(st.buf) {
		st.lock.Unlock()
		return pushFull
	}
	st.buf[(st.head+st.n)%len(st.buf)] = sframe{data: data, tick: tick}
	st.n++
	st.lock.Unlock()
	return pushOK
}

// Pull implements serve.Streamer's frame source: pending frames drain
// before a close is surfaced, so an acked publish is never lost to a
// racing drain.
func (st *SubStream) Pull() (data []byte, ok, open bool) {
	st.lock.Lock()
	if st.n > 0 {
		f := st.buf[st.head]
		st.buf[st.head] = sframe{}
		st.head = (st.head + 1) % len(st.buf)
		st.n--
		st.lock.Unlock()
		return f.data, true, true
	}
	open = !st.closed && !st.canceled
	st.lock.Unlock()
	return nil, false, open
}

// pullTick is Pull plus the frame's publish tick — the form consumers
// that track delivery lag (tests) use.
func (st *SubStream) pullTick() (data []byte, tick int64, ok, open bool) {
	st.lock.Lock()
	if st.n > 0 {
		f := st.buf[st.head]
		st.buf[st.head] = sframe{}
		st.head = (st.head + 1) % len(st.buf)
		st.n--
		st.lock.Unlock()
		return f.data, f.tick, true, true
	}
	open = !st.closed && !st.canceled
	st.lock.Unlock()
	return nil, 0, false, open
}

// Cancel implements serve.Streamer: the consumer is gone, buffered
// frames are undeliverable.  Idempotent; the topic thread prunes the
// subscriber at its next tick.
func (st *SubStream) Cancel() {
	st.lock.Lock()
	st.canceled = true
	for st.n > 0 {
		st.buf[st.head] = sframe{}
		st.head = (st.head + 1) % len(st.buf)
		st.n--
	}
	st.lock.Unlock()
}

// close ends the producer side; buffered frames still drain through
// Pull before open goes false.
func (st *SubStream) close() {
	st.lock.Lock()
	st.closed = true
	st.lock.Unlock()
}

// dead reports whether the consumer canceled.
func (st *SubStream) dead() bool {
	st.lock.Lock()
	d := st.canceled
	st.lock.Unlock()
	return d
}

// Sub is one live subscription: the value a /subscribe response carries
// to the connection owner as its serve.Streamer, and the handle the
// topic thread fans out to.
type Sub struct {
	id     int64
	topic  string
	tenant *tenant
	st     *SubStream
}

// ID returns the subscription id (the first frame announces it to the
// client as "id:<n>", the handle /unsubscribe takes).
func (s *Sub) ID() int64 { return s.id }

// Pull implements serve.Streamer.
func (s *Sub) Pull() ([]byte, bool, bool) { return s.st.Pull() }

// Cancel implements serve.Streamer.
func (s *Sub) Cancel() { s.st.Cancel() }

// Stream exposes the underlying ring (tests).
func (s *Sub) Stream() *SubStream { return s.st }
