package pubsub

// The purity rule extends to the broker: topic threads, the delivery
// world, subscriber rings, and the admission path are all built
// strictly on the MP public surface plus CML events.  Same scanner as
// internal/serve's and internal/shard's: tokenize every non-test source
// and reject the Go concurrency keywords and the imports that would
// smuggle them in.  The only OS-level concurrency the broker needs is
// the host goroutine running Broker.Runner — started by the host,
// never in here.

import (
	"go/parser"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func pubsubSources(t *testing.T) []string {
	t.Helper()
	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		t.Fatal("no sources found")
	}
	return files
}

func TestBrokerUsesOnlyMPPrimitives(t *testing.T) {
	forbidden := map[token.Token]string{
		token.GO:     "go statement",
		token.CHAN:   "chan type",
		token.ARROW:  "channel send/receive",
		token.SELECT: "select statement",
	}
	for _, file := range pubsubSources(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		var s scanner.Scanner
		s.Init(fset.AddFile(file, fset.Base(), len(src)), src, nil, 0)
		for {
			pos, tok, _ := s.Scan()
			if tok == token.EOF {
				break
			}
			if why, bad := forbidden[tok]; bad {
				t.Errorf("%s: %s — the broker must use MP primitives only", fset.Position(pos), why)
			}
		}
	}
}

// TestPurityScanCoversBrokerFiles pins the scan's coverage: the files
// carrying the broker, delivery, and stream paths must all be present
// in the directory listing the scanners iterate, so a rename or split
// cannot silently drop one from the purity rule.
func TestPurityScanCoversBrokerFiles(t *testing.T) {
	required := []string{"pubsub.go", "qos.go", "stream.go", "migrate.go"}
	have := map[string]bool{}
	for _, f := range pubsubSources(t) {
		have[f] = true
	}
	for _, want := range required {
		if !have[want] {
			t.Errorf("purity scan does not cover %s — file missing or renamed", want)
		}
	}
}

func TestBrokerForbiddenImports(t *testing.T) {
	banned := map[string]string{
		"net/http": "spawns goroutines per connection, bypassing the MP scheduler",
		"sync":     "raw Go synchronization; use core locks / syncx",
	}
	for _, file := range pubsubSources(t) {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, bad := banned[path]; bad {
				t.Errorf("%s imports %s: %s", filepath.Base(file), path, why)
			}
		}
	}
}
