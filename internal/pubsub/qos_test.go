package pubsub

// QoS unit tests: claim ordering under the virtual-time fair-share
// policy (deterministic — claim is plain code under a lock), the rejoin
// catch-up rule, and the live delivery world acking jobs and evicting
// slow consumers.  Hosting goroutines are fine in tests.

import (
	"testing"
	"time"

	"repro/internal/cml"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/threads"
)

// bareBroker builds a broker with no server attached — enough for the
// delivery world and the tenant table.
func bareBroker(opts Options) *Broker {
	pl := proc.New(1)
	sys := threads.New(pl, threads.Options{})
	return New(sys, cml.NewClock(), metrics.NewRegistry(1), opts)
}

func (b *Broker) testTenant(name string) *tenant {
	b.state.Lock()
	t := b.tenantLocked(name)
	b.state.Unlock()
	return t
}

func mkJob(t *tenant, frame string, nsubs, depth int) *fanJob {
	subs := make([]*Sub, nsubs)
	for i := range subs {
		subs[i] = &Sub{id: int64(i), tenant: t, st: newSubStream(depth)}
	}
	j := &fanJob{frame: []byte(frame), subs: subs, done: &gate{}, tenant: t}
	j.left.Store(int64(nsubs))
	return j
}

// TestClaimFairSharePrefersLaggingTenant: once the noisy tenant has
// accrued virtual time for a quantum, the quiet tenant's queue is
// claimed next even though the noisy one enqueued first and still has
// a backlog.
func TestClaimFairSharePrefersLaggingTenant(t *testing.T) {
	b := bareBroker(Options{DeliveryBatch: 4})
	d := b.dw
	noisy := b.testTenant("noisy")
	quiet := b.testTenant("quiet")

	big := string(make([]byte, 4096))
	for i := 0; i < 3; i++ {
		d.enqueue(noisy, mkJob(noisy, big, 4, 8))
	}
	d.enqueue(quiet, mkJob(quiet, "small", 2, 8))

	var order []string
	for {
		j, _, n, _ := d.claim()
		if j == nil {
			break
		}
		order = append(order, j.tenant.name)
		_ = n
	}
	if len(order) < 4 {
		t.Fatalf("claims = %v, expected every job claimed", order)
	}
	if order[0] != "noisy" {
		t.Fatalf("claims = %v: the first quantum goes to the first-enqueued tenant", order)
	}
	if order[1] != "quiet" {
		t.Fatalf("claims = %v: after one expensive noisy quantum the quiet tenant must overtake", order)
	}
	for _, rest := range order[2:] {
		if rest != "noisy" {
			t.Fatalf("claims = %v: only noisy work remains after quiet drains", order)
		}
	}
	if noisy.vtime <= quiet.vtime {
		t.Errorf("vtime noisy=%.1f quiet=%.1f: expensive fan-out must accrue faster", noisy.vtime, quiet.vtime)
	}
}

// TestClaimChargesByFrameSize: same subscriber count, bigger frame —
// more virtual time, so big-payload tenants sink in the queue.
func TestClaimChargesByFrameSize(t *testing.T) {
	b := bareBroker(Options{DeliveryBatch: 8})
	d := b.dw
	big := b.testTenant("big")
	small := b.testTenant("small")
	d.enqueue(big, mkJob(big, string(make([]byte, 8192)), 2, 4))
	d.enqueue(small, mkJob(small, "x", 2, 4))
	for {
		j, _, _, _ := d.claim()
		if j == nil {
			break
		}
	}
	if big.vtime <= small.vtime {
		t.Errorf("vtime big=%.1f small=%.1f: frame size must weight the charge", big.vtime, small.vtime)
	}
}

// TestEnqueueRejoinCatchesUpToMin: a tenant re-entering after idling
// starts at the current active minimum — fair share from now on, not an
// unbounded deficit claim.
func TestEnqueueRejoinCatchesUpToMin(t *testing.T) {
	b := bareBroker(Options{})
	d := b.dw
	vet := b.testTenant("veteran")
	vet.vtime = 500
	d.enqueue(vet, mkJob(vet, "x", 1, 4))
	late := b.testTenant("latecomer")
	d.enqueue(late, mkJob(late, "y", 1, 4))
	if late.vtime != 500 {
		t.Fatalf("latecomer vtime = %.1f, want caught up to the active min 500", late.vtime)
	}
}

// TestDeliveryWorldAcksAndEvictsSlow runs the real dispatcher threads:
// a job is acked only once every subscriber slot settles, a full ring
// evicts its slow consumer (counted), and the world exits clean on stop.
func TestDeliveryWorldAcksAndEvictsSlow(t *testing.T) {
	b := bareBroker(Options{Tick: 100 * time.Microsecond})
	d := b.dw
	done := make(chan struct{})
	go func() {
		b.Runner()()
		close(done)
	}()

	tn := b.testTenant("t")
	j := mkJob(tn, "payload", 3, 4)
	// Pre-jam subscriber 2's ring so the push overflows and evicts it.
	slow := j.subs[2].st
	for slow.push([]byte("jam"), 0) == pushOK {
	}
	d.enqueue(tn, j)

	deadline := time.Now().Add(10 * time.Second)
	for j.done.v.Load() == gatePending {
		if time.Now().After(deadline) {
			t.Fatal("fan-out never settled")
		}
		time.Sleep(time.Millisecond)
	}
	if got := j.done.v.Load(); got != gateOK {
		t.Fatalf("gate = %d, want gateOK", got)
	}
	for i := 0; i < 2; i++ {
		if data, ok, _ := j.subs[i].st.Pull(); !ok || string(data) != "payload" {
			t.Fatalf("sub %d: frame = %q ok=%v", i, data, ok)
		}
	}
	if !slow.dead() {
		t.Error("overflowed subscriber was not evicted")
	}
	if got := b.m.droppedSlow.Value(); got != 1 {
		t.Errorf("dropped_slow = %d, want 1", got)
	}
	if got := b.m.delivered.Value(); got != 2 {
		t.Errorf("delivered = %d, want 2", got)
	}
	if p := d.pending.Load(); p != 0 {
		t.Errorf("pending = %d after settle, want 0", p)
	}

	d.stop.Store(true)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("delivery world did not exit after stop")
	}
}
