package pubsub

// Guard on the committed pub/sub benchmark artifact: the multi-tenant
// QoS legs must show the quiet tenant's delivery-lag p99 holding within
// 2x its solo baseline while a concurrent unpaced noisy tenant is
// quota-limited, and the fan-out leg must show >= 1k concurrent
// subscribers on the mux front losing zero acked deliveries through a
// SIGTERM drain.

import (
	"encoding/json"
	"os"
	"testing"
)

type benchQuantiles struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type benchTenant struct {
	Acked       int64           `json:"acked"`
	QuotaDenied int64           `json:"quota_denied"`
	Rejected    int64           `json:"rejected"`
	Delivered   int64           `json:"delivered"`
	Lag         *benchQuantiles `json:"lag_ms"`
}

type benchLeg struct {
	Topics      int                     `json:"topics"`
	Publishers  int                     `json:"publishers"`
	Subscribers int                     `json:"subscribers"`
	PubAcked    int64                   `json:"pub_acked"`
	QuotaDenied int64                   `json:"pub_quota_denied"`
	Rejected    int64                   `json:"pub_rejected"`
	Delivered   int64                   `json:"delivered"`
	CleanClosed int64                   `json:"sub_clean_closed"`
	SubDrops    int64                   `json:"sub_drops"`
	Missing     int64                   `json:"missing_acked"`
	Lag         *benchQuantiles         `json:"delivery_lag_ms"`
	Tenants     map[string]*benchTenant `json:"tenants"`
}

func loadPubsubBench(t *testing.T) (qosSolo, qosQuiet, qosNoisy, fanout benchLeg) {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_pubsub.json")
	if err != nil {
		t.Fatalf("missing benchmark artifact: %v", err)
	}
	var bench struct {
		QoS struct {
			Solo      benchLeg `json:"solo"`
			SkewQuiet benchLeg `json:"skew_quiet"`
			SkewNoisy benchLeg `json:"skew_noisy"`
		} `json:"qos"`
		Fanout struct {
			Run benchLeg `json:"run"`
		} `json:"fanout"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	return bench.QoS.Solo, bench.QoS.SkewQuiet, bench.QoS.SkewNoisy, bench.Fanout.Run
}

// TestBenchArtifactQuietTenantIsolated: under a concurrent unpaced
// noisy storm the quiet tenant's delivery p99 stays within 2x its solo
// baseline, and the noisy tenant is actually quota-limited (denials
// observed, but still making capped progress).
func TestBenchArtifactQuietTenantIsolated(t *testing.T) {
	solo, quiet, noisy, _ := loadPubsubBench(t)
	sq := solo.Tenants["quiet"]
	kq := quiet.Tenants["quiet"]
	if sq == nil || sq.Lag == nil || kq == nil || kq.Lag == nil {
		t.Fatal("artifact missing quiet-tenant lag quantiles")
	}
	if sq.Lag.P99 <= 0 || sq.Delivered == 0 {
		t.Fatal("solo leg has no quiet deliveries")
	}
	if ratio := kq.Lag.P99 / sq.Lag.P99; ratio > 2.0 {
		t.Errorf("quiet tenant p99 under skew %.2fms is %.2fx its solo baseline %.2fms, want <= 2x",
			kq.Lag.P99, ratio, sq.Lag.P99)
	}
	if kq.QuotaDenied != 0 {
		t.Errorf("quiet tenant was quota-denied %d times; its paced rate must fit the quota", kq.QuotaDenied)
	}
	nt := noisy.Tenants["noisy"]
	if nt == nil {
		t.Fatal("artifact missing noisy tenant")
	}
	if nt.QuotaDenied < 1 {
		t.Error("noisy tenant saw zero quota denials — the storm was not admission-limited")
	}
	if nt.Acked == 0 {
		t.Error("noisy tenant was starved outright; the quota should cap, not block")
	}
	if nt.QuotaDenied <= nt.Acked {
		t.Errorf("noisy denials %d <= acks %d — the offered load did not meaningfully exceed the quota",
			nt.QuotaDenied, nt.Acked)
	}
}

// TestBenchArtifactFanoutZeroLossDrain: the mux front held >= 1k
// concurrent subscribers, every one of them read the chunked terminator
// (so the zero-loss ledger ran), and no acked publish went undelivered
// through the SIGTERM drain.
func TestBenchArtifactFanoutZeroLossDrain(t *testing.T) {
	_, _, _, fan := loadPubsubBench(t)
	if fan.Subscribers < 1000 {
		t.Errorf("fanout leg ran %d subscribers, want >= 1000", fan.Subscribers)
	}
	if fan.CleanClosed < int64(fan.Subscribers) {
		t.Errorf("only %d of %d subscriptions ended with the chunked terminator — the drain did not close cleanly",
			fan.CleanClosed, fan.Subscribers)
	}
	if fan.Missing != 0 {
		t.Errorf("%d acked deliveries missing at stream close — drain lost acked publishes", fan.Missing)
	}
	if fan.SubDrops != 0 {
		t.Errorf("%d subscriber streams dropped mid-run", fan.SubDrops)
	}
	if fan.PubAcked == 0 || fan.Delivered == 0 {
		t.Fatal("fanout leg recorded no traffic")
	}
	perTopic := int64(fan.Subscribers / fan.Topics)
	if fan.Delivered < fan.PubAcked*perTopic {
		t.Errorf("delivered %d < acked %d x %d subscribers/topic — fan-out under-delivered",
			fan.Delivered, fan.PubAcked, perTopic)
	}
}
