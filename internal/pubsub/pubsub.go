// Package pubsub is a CML-native publish/subscribe broker: topics,
// subscriptions, and fan-out are MP threads synchronizing on CML events
// — each topic is one thread selecting (cml.Choose) between its control
// mailbox and a periodic clock event, so the subscriber list needs no
// lock at all.  The same purity rule as internal/serve and
// internal/shard applies (no go/chan/<-/select; enforced by
// purity_test.go): the paper's claim, extended — procs + locks +
// continuations carry a message-passing broker, not just examples.
//
// Shape of the subsystem:
//
//	/publish ─▶ handler ──Mailbox.Send──▶ topic thread ──enqueue──▶
//	delivery world (PrioSystem, fair-share by tenant virtual time)
//	──SubStream.push──▶ subscriber ring ──Pull──▶ connection owner
//	(serve worker / fabric conn thread / mux poller) ──chunks──▶ client
//
// The publish ack (HTTP 200) is issued only after the fan-out job has
// settled every subscriber slot — frame in the ring or the slot's owner
// evicted/dead — and drain closes streams only after every pending
// fan-out settles, so an acked message is delivered to every subscriber
// that stays alive to read it.  A subscription costs no broker thread:
// live delivery state is the SubStream ring the connection owner pulls,
// which is what lets thousands of subscribers park on the mux front.
//
// Multi-tenant QoS (qos.go): per-tenant token-bucket publish admission
// (429 past the burst) and fair-share delivery dispatch on the
// priority scheduler.
package pubsub

import (
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cml"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/serve"
	"repro/internal/threads"
)

// Options parameterize a Broker.
type Options struct {
	// TenantHeader names the request header carrying the tenant id
	// (default "X-Tenant"); absent means DefaultTenant.
	TenantHeader string
	// DefaultTenant is the tenant of unlabelled requests (default "anon").
	DefaultTenant string
	// StreamDepth is each subscriber's buffered frame ring; a subscriber
	// whose ring overflows is evicted as a slow consumer (default 256).
	StreamDepth int
	// QuotaPerSec is the per-tenant publish admission rate in
	// publishes/second; 0 means unlimited.
	QuotaPerSec int
	// QuotaBurst is the token-bucket depth (default max(QuotaPerSec, 8)).
	QuotaBurst int
	// Tick is the wall duration of one tick on the broker's clock — must
	// match the owning server's Options.Tick for quota math (default 1ms).
	Tick time.Duration
	// TopicTick is the topic-thread housekeeping period in ticks: dead
	// subscribers are pruned and drain is observed this often (default 25).
	TopicTick int64
	// DeliveryProcs is the delivery world's processor allowance (default 1).
	DeliveryProcs int
	// DeliveryThreads is the number of dispatcher threads (default 2).
	DeliveryThreads int
	// DeliveryBatch bounds subscriber pushes per dispatch quantum — the
	// granularity of fair-share interleaving between tenants (default 64).
	DeliveryBatch int
	// SubIDs, when non-nil, is a shared subscription-id allocator.  A
	// fabric hosting several brokers passes one allocator to all of them
	// so a subscription handed off between brokers (migrate.go) can never
	// collide with a subscription the adopting broker minted itself; nil
	// keeps the broker's private counter.
	SubIDs *atomic.Int64
}

func (o *Options) fill() {
	if o.TenantHeader == "" {
		o.TenantHeader = "X-Tenant"
	}
	if o.DefaultTenant == "" {
		o.DefaultTenant = "anon"
	}
	if o.StreamDepth <= 0 {
		o.StreamDepth = 256
	}
	if o.QuotaBurst <= 0 {
		o.QuotaBurst = o.QuotaPerSec
		if o.QuotaBurst < 8 {
			o.QuotaBurst = 8
		}
	}
	if o.Tick <= 0 {
		o.Tick = time.Millisecond
	}
	if o.TopicTick <= 0 {
		o.TopicTick = 25
	}
	if o.DeliveryProcs <= 0 {
		o.DeliveryProcs = 1
	}
	if o.DeliveryThreads <= 0 {
		o.DeliveryThreads = 2
	}
	if o.DeliveryBatch <= 0 {
		o.DeliveryBatch = 64
	}
}

// topic control-message kinds.
const (
	msgPub = iota
	msgSub
	msgUnsub
	msgTick
	msgPeek   // migration: snapshot the subscriber list (migrate.go)
	msgAdopt  // migration: absorb subscribers handed off by another broker
	msgDetach // migration: forget handed-off subscribers without closing them
)

// topicMsg is one control message to a topic thread.
type topicMsg struct {
	kind   int
	frame  []byte
	tenant *tenant
	sub    *Sub
	subID  int64
	subs   []*Sub // msgAdopt
	mig    *Migration
	done   *gate
}

// topic is one topic: a mailbox-driven MP thread owning the subscriber
// list.  queued counts control messages sent but not yet consumed,
// guarded by the broker state lock — the handshake that lets the thread
// exit under drain without stranding an in-flight message.
type topic struct {
	name   string
	ctrl   *cml.Mailbox[topicMsg]
	queued int
	moved  bool // migrated away: thread exits once queued == 0
	subs   []*Sub
}

// gate is a single-assignment completion cell between a handler thread
// and the topic/delivery side; the handler spins briefly then parks on
// the clock (Broker.await).
type gate struct{ v atomic.Int32 }

const (
	gatePending int32 = iota
	gateOK
	gateRejected
	gateNotFound
	gateMoved
)

func (g *gate) set(v int32) { g.v.Store(v) }

// brokerMetrics caches the broker's instrument handles on the owning
// registry; dynamic per-tenant counters are created on first sight
// (Registry.Counter is get-or-create).
type brokerMetrics struct {
	topics       *metrics.Counter // gauge
	subs         *metrics.Counter // gauge
	subscribes   *metrics.Counter
	unsubscribes *metrics.Counter
	published    *metrics.Counter
	rejected     *metrics.Counter // 503 drain rejections
	quotaDenied  *metrics.Counter // 429 admission denials
	delivered    *metrics.Counter
	droppedSlow  *metrics.Counter
	moved        *metrics.Counter // 409s: requests for a migrated topic
	fanout       *metrics.Histogram
	deliveryLag  *metrics.Histogram
}

// Broker is the pub/sub subsystem for one serve.Server (one shard).
// Create with New, wire with Install, run the delivery world via
// Runner, stop with Close.
type Broker struct {
	sys   *threads.System
	clock *cml.Clock
	reg   *metrics.Registry
	opts  Options
	m     brokerMetrics

	ratePerTick float64
	burst       float64

	state       core.Lock // guards the fields below + topic.queued + tenant admission
	topics      map[string]*topic
	tenants     map[string]*tenant
	moved       map[string]bool // tombstones: topics migrated to another broker
	nextSub     int64
	topicsLive  int
	started     bool // janitor forked (with the first topic)
	draining    bool
	releaseHold func()

	dw *deliveryWorld
}

// New prepares a broker scheduling its topic threads on sys, telling
// time by clock (the owning server's), and instrumenting reg.
func New(sys *threads.System, clock *cml.Clock, reg *metrics.Registry, opts Options) *Broker {
	opts.fill()
	b := &Broker{
		sys:     sys,
		clock:   clock,
		reg:     reg,
		opts:    opts,
		state:   core.NewMutexLock(),
		topics:  make(map[string]*topic),
		tenants: make(map[string]*tenant),
		moved:   make(map[string]bool),
	}
	if opts.QuotaPerSec > 0 {
		b.ratePerTick = float64(opts.QuotaPerSec) * float64(opts.Tick) / float64(time.Second)
		b.burst = float64(opts.QuotaBurst)
	}
	bounds := []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	b.m = brokerMetrics{
		topics:       reg.Counter("pubsub.topics"),
		subs:         reg.Counter("pubsub.subs"),
		subscribes:   reg.Counter("pubsub.subscribes"),
		unsubscribes: reg.Counter("pubsub.unsubscribes"),
		published:    reg.Counter("pubsub.published"),
		rejected:     reg.Counter("pubsub.publish_rejected"),
		quotaDenied:  reg.Counter("pubsub.quota_denied"),
		delivered:    reg.Counter("pubsub.delivered"),
		droppedSlow:  reg.Counter("pubsub.dropped_slow"),
		moved:        reg.Counter("pubsub.moved_rejected"),
		fanout:       reg.Histogram("pubsub.fanout", bounds),
		deliveryLag:  reg.Histogram("pubsub.delivery_lag_ticks", bounds),
	}
	b.dw = newDeliveryWorld(b, opts.DeliveryProcs, opts.DeliveryThreads,
		opts.DeliveryBatch, opts.Tick)
	return b
}

// Install registers the broker's endpoints on srv and wires its
// lifecycle to the server's: a Hold keeps the server's pumps alive
// until the broker has flushed and closed every stream, and OnDrain
// triggers Close so a SIGTERM drain tears streams down in order.
func Install(srv *serve.Server, b *Broker) {
	srv.Handle("/publish", b.HandlePublish)
	srv.Handle("/subscribe", b.HandleSubscribe)
	srv.Handle("/unsubscribe", b.HandleUnsubscribe)
	b.releaseHold = srv.Hold()
	srv.OnDrain(b.Close)
}

// Runner returns the delivery world's host entry point: like
// Fabric.Runners, the host calls it on a goroutine of its own; it
// returns once Close has fired and every pending delivery has settled.
func (b *Broker) Runner() func() { return b.dw.run }

// Close begins broker shutdown; idempotent and callable from any
// goroutine (signal handlers, serve.OnDrain).  New publishes and
// subscribes reject immediately with 503; topic threads exit as their
// in-flight messages settle; the janitor then waits for pending
// fan-outs, closes every subscriber stream (subscribers see the
// chunked terminator), stops the delivery world, and releases the
// server Hold.  When no topic was ever created there is no janitor and
// Close finishes inline.
func (b *Broker) Close() {
	b.state.Lock()
	already := b.draining
	b.draining = true
	started := b.started
	b.state.Unlock()
	if already {
		return
	}
	if !started {
		b.finishClose()
	}
}

// finishClose closes every subscriber stream, stops the delivery
// world, and releases the server hold — the last acts of a drain.
func (b *Broker) finishClose() {
	b.state.Lock()
	var subs []*Sub
	for _, tp := range b.topics {
		subs = append(subs, tp.subs...)
	}
	rel := b.releaseHold
	b.releaseHold = nil
	b.state.Unlock()
	for _, s := range subs {
		s.st.close()
	}
	b.dw.stop.Store(true)
	if rel != nil {
		rel()
	}
}

// janitor is the broker's drain finisher, forked alongside the first
// topic thread.  It naps on the broker clock until Close has fired,
// every topic thread has exited (topicsLive == 0 — all in-flight
// control messages settled), and the delivery world has no pending
// fan-outs; only then do streams close.  That ordering is the zero-loss
// guarantee: every acked publish's frames are in the subscriber rings
// before the rings' close is visible.
func (b *Broker) janitor() {
	for {
		cml.Sync(b.sys, b.clock.AfterEvt(b.opts.TopicTick))
		b.state.Lock()
		ready := b.draining && b.topicsLive == 0
		b.state.Unlock()
		if ready && b.dw.pending.Load() == 0 {
			b.finishClose()
			return
		}
	}
}

// Stats is an aggregated snapshot for status pages (/fabricz).
type Stats struct {
	Topics      int64
	Subs        int64
	Published   int64
	Delivered   int64
	QuotaDenied int64
	DroppedSlow int64
}

// Stats reads the aggregate counters.
func (b *Broker) Stats() Stats {
	return Stats{
		Topics:      b.m.topics.Value(),
		Subs:        b.m.subs.Value(),
		Published:   b.m.published.Value(),
		Delivered:   b.m.delivered.Value(),
		QuotaDenied: b.m.quotaDenied.Value(),
		DroppedSlow: b.m.droppedSlow.Value(),
	}
}

// ------------------------------------------------------------- handlers

// tenantOf resolves the request's tenant label.
func (b *Broker) tenantOf(req *serve.Request) string {
	if t := req.Header(b.opts.TenantHeader); t != "" {
		return t
	}
	return b.opts.DefaultTenant
}

// drainResp is the 503 every pub/sub operation answers while draining.
func (b *Broker) drainResp() serve.Response {
	b.m.rejected.Inc(proc.Self())
	return serve.Response{
		Status:     503,
		Body:       []byte("pubsub draining\n"),
		RetryAfter: 1,
	}
}

// movedResp is the 409 a tombstoned topic answers: the topic has been
// handed off to another broker, and accepting the request here would
// either ack a publish no handed-off subscriber can see or recreate an
// orphan topic.  Deliberately 4xx, not 5xx: it is the client's stale
// route, not a broker failure, and a retry re-routes through the
// current ring to the new owner.
func (b *Broker) movedResp() serve.Response {
	b.m.moved.Inc(proc.Self())
	return serve.Response{
		Status:     409,
		Body:       []byte("topic moved\n"),
		RetryAfter: 1,
	}
}

// allocSubID mints a subscription id — from the shared allocator when
// the host wired one (fabric-wide uniqueness across handoffs), else the
// broker's private counter; call with the state lock held.
func (b *Broker) allocSubID() int64 {
	if b.opts.SubIDs != nil {
		return b.opts.SubIDs.Add(1)
	}
	b.nextSub++
	return b.nextSub
}

// tenantLocked returns (creating on first sight) the tenant record;
// call with the state lock held.
func (b *Broker) tenantLocked(name string) *tenant {
	t := b.tenants[name]
	if t == nil {
		t = &tenant{
			name:      name,
			tokens:    b.burst,
			refillAt:  b.clock.Now(),
			published: b.reg.Counter("pubsub.tenant_pub_" + name),
			delivered: b.reg.Counter("pubsub.tenant_delivered_" + name),
		}
		b.tenants[name] = t
	}
	return t
}

// admitPublish charges one publish against the tenant's token bucket;
// call with the state lock held.  The bucket refills continuously at
// the per-tick rate and holds at most burst tokens.
func (b *Broker) admitPublish(t *tenant, now int64) bool {
	if b.ratePerTick <= 0 {
		return true
	}
	if now > t.refillAt {
		t.tokens += float64(now-t.refillAt) * b.ratePerTick
		if t.tokens > b.burst {
			t.tokens = b.burst
		}
		t.refillAt = now
	}
	if t.tokens < 1 {
		return false
	}
	t.tokens--
	return true
}

// topicLocked returns (creating if needed) the named topic and charges
// one control message to its queued count; call with the state lock
// held.  The caller must fork the topic thread (and the janitor, once)
// after releasing the lock — never fork while holding a spinlock.
func (b *Broker) topicLocked(name string) (tp *topic, created, startJanitor bool) {
	tp = b.topics[name]
	if tp != nil && tp.moved {
		// A migrated-away topic whose thread has not exited yet counts as
		// absent: a fresh topic replaces the map entry (the old thread's
		// exit only deletes the entry if it still points at itself).
		tp = nil
	}
	if tp == nil {
		tp = &topic{name: name, ctrl: cml.NewMailbox[topicMsg]()}
		b.topics[name] = tp
		b.topicsLive++
		created = true
		if !b.started {
			b.started = true
			startJanitor = true
		}
	}
	tp.queued++
	return tp, created, startJanitor
}

// forkTopic starts the freshly created topic's thread (and the janitor
// with the very first topic).  The mailbox buffers anything sent before
// the thread is scheduled.
func (b *Broker) forkTopic(tp *topic, created, startJanitor bool) {
	if created {
		b.m.topics.Inc(proc.Self())
		b.sys.Fork(func() { b.topicThread(tp) })
	}
	if startJanitor {
		b.sys.Fork(func() { b.janitor() })
	}
}

// await parks the handler until the gate settles: a short yield burst
// for the common fast path, then clock naps.
func (b *Broker) await(g *gate) int32 {
	for i := 0; ; i++ {
		if v := g.v.Load(); v != gatePending {
			return v
		}
		if i < 64 {
			b.sys.Yield()
		} else {
			cml.Sync(b.sys, b.clock.AfterEvt(1))
		}
	}
}

// HandlePublish: POST /publish?topic=T with the frame as the body.
// Admission (drain check, tenant quota) happens under one state-lock
// critical section; the ack (200) comes back only after the topic
// thread has fanned the frame out into every live subscriber's ring.
func (b *Broker) HandlePublish(req *serve.Request) serve.Response {
	name := req.Query("topic")
	if name == "" {
		return serve.Response{Status: 400, Body: []byte("missing topic\n")}
	}
	self := proc.Self()
	now := b.clock.Now()
	b.state.Lock()
	if b.draining {
		b.state.Unlock()
		return b.drainResp()
	}
	if b.moved[name] {
		b.state.Unlock()
		return b.movedResp()
	}
	t := b.tenantLocked(b.tenantOf(req))
	if !b.admitPublish(t, now) {
		b.state.Unlock()
		b.m.quotaDenied.Inc(self)
		return serve.Response{
			Status:     429,
			Body:       []byte("publish quota exceeded\n"),
			RetryAfter: 1,
		}
	}
	tp, created, startJanitor := b.topicLocked(name)
	b.state.Unlock()
	b.forkTopic(tp, created, startJanitor)
	// The request body points into the connection's arena, which is
	// recycled the moment this handler returns — the frame must own its
	// bytes.
	frame := append([]byte(nil), req.Body...)
	g := &gate{}
	tp.ctrl.Send(b.sys, topicMsg{kind: msgPub, frame: frame, tenant: t, done: g})
	if b.await(g) != gateOK {
		return b.drainResp()
	}
	b.m.published.Inc(self)
	t.published.Inc(self)
	return serve.Response{Status: 200, Body: []byte("ok\n")}
}

// HandleSubscribe: GET /subscribe?topic=T.  The response carries the
// subscription as its Stream: the connection owner (worker thread or
// mux poller) writes the chunked header and pulls frames from the
// subscriber's ring for the connection's remaining life.  The first
// frame is "id:<n>" — the handle /unsubscribe takes.
func (b *Broker) HandleSubscribe(req *serve.Request) serve.Response {
	name := req.Query("topic")
	if name == "" {
		return serve.Response{Status: 400, Body: []byte("missing topic\n")}
	}
	self := proc.Self()
	b.state.Lock()
	if b.draining {
		b.state.Unlock()
		return b.drainResp()
	}
	if b.moved[name] {
		b.state.Unlock()
		return b.movedResp()
	}
	t := b.tenantLocked(b.tenantOf(req))
	id := b.allocSubID()
	tp, created, startJanitor := b.topicLocked(name)
	b.state.Unlock()
	b.forkTopic(tp, created, startJanitor)
	sub := &Sub{id: id, topic: name, tenant: t, st: newSubStream(b.opts.StreamDepth)}
	sub.st.push([]byte("id:"+strconv.FormatInt(id, 10)), b.clock.Now())
	g := &gate{}
	tp.ctrl.Send(b.sys, topicMsg{kind: msgSub, sub: sub, done: g})
	if b.await(g) != gateOK {
		return b.drainResp()
	}
	b.m.subscribes.Inc(self)
	return serve.Response{Status: 200, Stream: sub}
}

// HandleUnsubscribe: POST /unsubscribe?topic=T&id=N.  The subscriber's
// stream closes cleanly: buffered frames drain, then the terminator.
func (b *Broker) HandleUnsubscribe(req *serve.Request) serve.Response {
	name := req.Query("topic")
	id, err := strconv.ParseInt(req.Query("id"), 10, 64)
	if name == "" || err != nil {
		return serve.Response{Status: 400, Body: []byte("missing topic or id\n")}
	}
	b.state.Lock()
	if b.draining {
		b.state.Unlock()
		return b.drainResp()
	}
	if b.moved[name] {
		b.state.Unlock()
		return b.movedResp()
	}
	tp := b.topics[name]
	if tp == nil {
		b.state.Unlock()
		return serve.Response{Status: 404, Body: []byte("no such topic\n")}
	}
	tp.queued++
	b.state.Unlock()
	g := &gate{}
	tp.ctrl.Send(b.sys, topicMsg{kind: msgUnsub, subID: id, done: g})
	switch b.await(g) {
	case gateOK:
		return serve.Response{Status: 200, Body: []byte("ok\n")}
	case gateNotFound:
		return serve.Response{Status: 404, Body: []byte("no such subscription\n")}
	default:
		return b.drainResp()
	}
}

// ---------------------------------------------------------- topic thread

// topicThread owns one topic for the topic's whole life: every
// subscribe, unsubscribe, and publish serializes through its mailbox,
// so the subscriber list is plain thread-local state.  The periodic
// clock event in the Choose — a real CML select between a mailbox and a
// timeout — is where dead subscribers are pruned and drain is observed.
// Exit: draining with no in-flight control messages (queued == 0 under
// the state lock; after draining is set nothing can re-increment it).
func (b *Broker) topicThread(tp *topic) {
	self := proc.Self()
	for {
		tickEvt := cml.Wrap(b.clock.AfterEvt(b.opts.TopicTick),
			func(int64) topicMsg { return topicMsg{kind: msgTick} })
		msg := cml.Sync(b.sys, cml.Choose(tp.ctrl.RecvEvt(), tickEvt))
		switch msg.kind {
		case msgTick:
			b.pruneSubs(tp)
			if b.topicDone(tp) {
				return
			}

		case msgSub:
			draining := b.consume(tp)
			if draining {
				msg.done.set(gateRejected)
				continue
			}
			tp.subs = append(tp.subs, msg.sub)
			b.m.subs.Inc(self)
			msg.done.set(gateOK)

		case msgUnsub:
			b.consume(tp)
			found := false
			for i, s := range tp.subs {
				if s.id == msg.subID {
					s.st.close()
					copy(tp.subs[i:], tp.subs[i+1:])
					tp.subs[len(tp.subs)-1] = nil
					tp.subs = tp.subs[:len(tp.subs)-1]
					b.m.subs.Add(self, -1)
					b.m.unsubscribes.Inc(self)
					found = true
					break
				}
			}
			if found {
				msg.done.set(gateOK)
			} else {
				msg.done.set(gateNotFound)
			}

		case msgPeek:
			// Migration step 1: the coordinator tombstoned the topic (no
			// new control messages can be created) and wants the live
			// subscriber set to hand to the adopting broker.  Messages
			// already in flight keep fanning out to these subscribers —
			// they stay registered here until msgDetach.
			b.consume(tp)
			b.pruneSubs(tp)
			msg.mig.subs = append([]*Sub(nil), tp.subs...)
			msg.mig.st.Store(migPeeked)

		case msgAdopt:
			if b.consume(tp) {
				msg.done.set(gateRejected)
				continue
			}
			for _, s := range msg.subs {
				if s.st.dead() {
					continue
				}
				dup := false
				for _, e := range tp.subs {
					if e == s {
						dup = true
						break
					}
				}
				if !dup {
					tp.subs = append(tp.subs, s)
					b.m.subs.Inc(self)
				}
			}
			msg.done.set(gateOK)

		case msgDetach:
			// Migration final step: every pre-tombstone message has been
			// consumed (the coordinator waited for queued == 0), so the
			// handed-off subscribers are forgotten here WITHOUT closing
			// their streams — the adopting broker owns them now.  moved
			// makes the thread exit at its next tick.
			b.consume(tp)
			if n := len(tp.subs); n > 0 {
				b.m.subs.Add(self, -int64(n))
			}
			for i := range tp.subs {
				tp.subs[i] = nil
			}
			tp.subs = tp.subs[:0]
			b.state.Lock()
			tp.moved = true // under the lock: topicLocked reads it
			b.state.Unlock()
			msg.mig.st.Store(migDetached)

		case msgPub:
			if b.consume(tp) {
				msg.done.set(gateRejected)
				continue
			}
			b.pruneSubs(tp)
			b.m.fanout.Observe(self, int64(len(tp.subs)))
			if len(tp.subs) == 0 {
				msg.done.set(gateOK)
				continue
			}
			j := &fanJob{
				frame:   msg.frame,
				subs:    append([]*Sub(nil), tp.subs...),
				pubTick: b.clock.Now(),
				done:    msg.done,
				tenant:  msg.tenant,
			}
			j.left.Store(int64(len(j.subs)))
			b.dw.enqueue(msg.tenant, j)
		}
	}
}

// consume retires one in-flight control message and reports drain.
func (b *Broker) consume(tp *topic) bool {
	b.state.Lock()
	tp.queued--
	d := b.draining
	b.state.Unlock()
	return d
}

// topicDone checks the exit condition under the same lock that guards
// queued increments: once draining (or the topic's moved tombstone) is
// set no producer can add another message, so queued == 0 is final.  A
// migrated topic is also deleted from the map so the broker's own drain
// cannot later close streams that another broker now owns; its
// tombstone in b.moved stays until an Adopt brings the name back.
func (b *Broker) topicDone(tp *topic) bool {
	b.state.Lock()
	done := (b.draining || tp.moved) && tp.queued == 0
	if done {
		b.topicsLive--
		if tp.moved && b.topics[tp.name] == tp {
			delete(b.topics, tp.name)
		}
	}
	b.state.Unlock()
	if done && tp.moved {
		b.m.topics.Add(proc.Self(), -1)
	}
	return done
}

// pruneSubs drops subscribers whose consumer canceled (dead
// connections, evicted slow consumers).
func (b *Broker) pruneSubs(tp *topic) {
	self := proc.Self()
	kept := tp.subs[:0]
	for _, s := range tp.subs {
		if s.st.dead() {
			b.m.subs.Add(self, -1)
			continue
		}
		kept = append(kept, s)
	}
	for i := len(kept); i < len(tp.subs); i++ {
		tp.subs[i] = nil
	}
	tp.subs = kept
}
