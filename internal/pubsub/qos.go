package pubsub

// Multi-tenant QoS: two mechanisms, both cheap where they must be.
//
// Admission is a per-tenant token bucket charged on /publish under the
// broker's state lock (already held for topic lookup): past the burst
// the publisher gets 429 + Retry-After instead of a queue slot, so one
// tenant's publish storm cannot occupy the broker at all.
//
// Delivery dispatch is fair-share over threads.PrioSystem — the paper's
// priority-queue footnote made load-bearing.  Each tenant accrues
// virtual time as its frames are delivered (weighted by fan-out and
// frame size); dispatcher threads always claim a quantum from the
// active tenant with the smallest virtual time, then Yield at a
// priority equal to that tenant's normalized virtual time.  A tenant
// whose fan-out is expensive therefore sinks in the priority queue and
// the quiet tenant's deliveries overtake it — starvation-free because
// virtual time is monotone and a re-joining tenant is caught up to the
// current minimum rather than allowed to claim an unbounded deficit.
//
// Discipline the dispatchers obey everywhere: the delivery lock is
// never held across a Yield or a stream push, so a preempted dispatcher
// can never make the lock's holder unschedulable below a spinning
// claimant — the classic inversion the prio tests pin.

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/threads"
)

// tenant is one tenant's QoS state.  The admission fields (tokens,
// refillAt) are guarded by the broker state lock; the dispatch fields
// (vtime, q) by the delivery world's lock.  The counters are sharded
// and lock-free.
type tenant struct {
	name string

	tokens   float64
	refillAt int64

	vtime float64
	q     []*fanJob

	published *metrics.Counter
	delivered *metrics.Counter
}

// fanJob is one acked-pending publish fanned out to a snapshot of the
// topic's subscribers.  cursor is guarded by the delivery lock; left
// counts undelivered subscribers and the transition to zero — made
// outside the lock by whichever dispatcher finishes last — acks the
// publish.
type fanJob struct {
	frame   []byte
	subs    []*Sub
	cursor  int
	left    atomic.Int64
	pubTick int64
	done    *gate
	tenant  *tenant
}

// deliveryWorld is the broker's second scheduling world: its own
// platform under a PrioSystem, running DeliveryThreads dispatchers.
// Keeping delivery off the broker's serving system means a fan-out
// burst contends for delivery procs, not for the procs parsing requests
// — QoS between tenants, isolation between subsystems.
type deliveryWorld struct {
	b  *Broker
	pl *proc.Platform
	ps *threads.PrioSystem

	lock    core.Lock
	active  []*tenant // invariant: t ∈ active ⇔ len(t.q) > 0
	pending atomic.Int64
	stop    atomic.Bool

	threads int
	batch   int
	tick    time.Duration
}

// idlePrio parks idle dispatchers at the bottom of the priority queue
// so a freshly-charged tenant's quantum always runs first.
const idlePrio = 1 << 30

func newDeliveryWorld(b *Broker, procs, threadN, batch int, tick time.Duration) *deliveryWorld {
	return &deliveryWorld{
		b:       b,
		pl:      proc.New(procs),
		lock:    core.NewMutexLock(),
		threads: threadN,
		batch:   batch,
		tick:    tick,
	}
}

// run is the host entry point (Broker.Runner): bootstrap the priority
// system with the dispatchers and block until they all exit after stop.
func (d *deliveryWorld) run() {
	d.ps = threads.NewPrio(d.pl)
	d.ps.Run(func() {
		for i := 1; i < d.threads; i++ {
			d.ps.Fork(d.dispatcher, 0, 0)
		}
		d.dispatcher()
	})
}

// enqueue adds a fan-out job to its tenant's queue.  pending is
// incremented before the job is visible so the janitor's drain check
// (topicsLive == 0 && pending == 0) can never observe the gap.
func (d *deliveryWorld) enqueue(t *tenant, j *fanJob) {
	d.pending.Add(1)
	d.lock.Lock()
	if len(t.q) == 0 {
		// A tenant re-entering after idling starts at the current
		// minimum virtual time: fair share from now on, not an unbounded
		// catch-up burst against tenants that kept publishing.
		if min, ok := d.minVtimeLocked(); ok && t.vtime < min {
			t.vtime = min
		}
		d.active = append(d.active, t)
	}
	t.q = append(t.q, j)
	d.lock.Unlock()
}

// minVtimeLocked returns the smallest virtual time among active
// tenants; call with the delivery lock held.
func (d *deliveryWorld) minVtimeLocked() (float64, bool) {
	if len(d.active) == 0 {
		return 0, false
	}
	min := d.active[0].vtime
	for _, t := range d.active[1:] {
		if t.vtime < min {
			min = t.vtime
		}
	}
	return min, true
}

// claim picks the active tenant with the smallest virtual time and
// takes up to batch subscriber slots from its head job, charging the
// tenant's virtual time for the quantum up front.  Delivery happens
// outside the lock.  prio is the claiming dispatcher's next yield
// priority: the tenant's post-charge virtual time normalized against
// the active minimum, so dispatchers working for a lagging tenant
// outrank those working for a gorging one.
func (d *deliveryWorld) claim() (j *fanJob, start, n, prio int) {
	d.lock.Lock()
	var t *tenant
	ti := -1
	for i, c := range d.active {
		if t == nil || c.vtime < t.vtime {
			t, ti = c, i
		}
	}
	if t == nil {
		d.lock.Unlock()
		return nil, 0, 0, 0
	}
	j = t.q[0]
	start = j.cursor
	n = len(j.subs) - start
	if n > d.batch {
		n = d.batch
	}
	j.cursor += n
	if j.cursor == len(j.subs) {
		copy(t.q, t.q[1:])
		t.q[len(t.q)-1] = nil
		t.q = t.q[:len(t.q)-1]
		if len(t.q) == 0 {
			d.active[ti] = d.active[len(d.active)-1]
			d.active[len(d.active)-1] = nil
			d.active = d.active[:len(d.active)-1]
		}
	}
	// One virtual-time unit per subscriber push, weighted by frame size
	// so large payloads don't ride free.
	t.vtime += float64(n) * (1 + float64(len(j.frame))/1024)
	min, _ := d.minVtimeLocked()
	prio = int(t.vtime - min)
	if prio < 0 {
		prio = 0
	}
	d.lock.Unlock()
	return j, start, n, prio
}

// dispatcher is one delivery thread: claim a quantum from the
// fairest-behind tenant, push it into subscriber rings (lock NOT held),
// yield at the tenant's normalized virtual time, repeat.  Exit: stop
// flagged and nothing pending.
func (d *deliveryWorld) dispatcher() {
	for {
		j, start, n, prio := d.claim()
		if j == nil {
			if d.stop.Load() && d.pending.Load() == 0 {
				return
			}
			time.Sleep(d.tick / 4)
			d.ps.Yield(idlePrio)
			continue
		}
		self := proc.Self()
		delivered := int64(0)
		for i := start; i < start+n; i++ {
			sub := j.subs[i]
			switch sub.st.push(j.frame, j.pubTick) {
			case pushOK:
				delivered++
			case pushFull:
				// Slow subscriber: evict rather than let its backlog
				// stall the tenant's other subscribers or the publisher's
				// ack.  The topic thread prunes it at the next tick.
				sub.st.Cancel()
				d.b.m.droppedSlow.Inc(self)
			case pushGone:
				// Dead or departed subscriber; nothing owed.
			}
		}
		if delivered > 0 {
			d.b.m.delivered.Add(self, delivered)
			j.tenant.delivered.Add(self, delivered)
			d.b.m.deliveryLag.Observe(self, d.b.clock.Now()-j.pubTick)
		}
		if j.left.Add(-int64(n)) == 0 {
			// Every subscriber slot of this publish is settled: frames
			// are in the rings (or their owners evicted) — ack.
			j.done.set(gateOK)
			d.pending.Add(-1)
		}
		d.ps.Yield(prio)
	}
}
