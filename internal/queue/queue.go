// Package queue implements the paper's QUEUE signature (Fig. 1):
//
//	signature QUEUE = sig
//	    type 'a queue
//	    val create : unit -> '1a queue
//	    val enq : 'a queue -> 'a -> unit
//	    val deq : 'a queue -> 'a          (* raises Empty *)
//	    exception Empty
//	end
//
// The signature deliberately does not fix a queuing discipline: "FIFO and
// randomized queue implementations will both match the signature.  Thus,
// thread scheduling policy can be changed simply by varying the functor's
// argument."  This package supplies FIFO, LIFO, randomized, priority, and
// bounded-ring disciplines behind one generic interface, and the thread
// package is a functor over a Factory exactly as in the paper.
//
// Queues are deliberately unsynchronized: in the paper, MP clients guard
// shared queues with mutex locks themselves (Fig. 3's ready_lock), keeping
// the locking policy out of the data structure.
package queue

import (
	"container/heap"
	"errors"
	"math/rand"
)

// ErrEmpty is the paper's exception Empty, raised on dequeue when empty.
var ErrEmpty = errors.New("queue: empty")

// Queue is the QUEUE signature.
type Queue[T any] interface {
	// Enq appends x according to the queue's discipline.
	Enq(x T)
	// Deq removes and returns the next element, or ErrEmpty.
	Deq() (T, error)
	// Len reports the number of queued elements.
	Len() int
}

// Factory creates fresh empty queues; the thread functor takes one as its
// QUEUE argument.
type Factory[T any] func() Queue[T]

// Fifo is a first-in-first-out queue backed by a growable ring buffer.
type Fifo[T any] struct {
	buf        []T
	head, size int
}

// NewFifo returns an empty FIFO queue.
func NewFifo[T any]() Queue[T] { return &Fifo[T]{} }

func (q *Fifo[T]) Enq(x T) {
	if q.size == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.size)%len(q.buf)] = x
	q.size++
}

func (q *Fifo[T]) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 8
	}
	buf := make([]T, n)
	for i := 0; i < q.size; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf, q.head = buf, 0
}

func (q *Fifo[T]) Deq() (T, error) {
	var zero T
	if q.size == 0 {
		return zero, ErrEmpty
	}
	x := q.buf[q.head]
	q.buf[q.head] = zero // release for GC
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return x, nil
}

func (q *Fifo[T]) Len() int { return q.size }

// Lifo is a last-in-first-out queue (a stack); as a run-queue discipline
// it gives depth-first, locality-friendly scheduling.
type Lifo[T any] struct {
	buf []T
}

// NewLifo returns an empty LIFO queue.
func NewLifo[T any]() Queue[T] { return &Lifo[T]{} }

func (q *Lifo[T]) Enq(x T) { q.buf = append(q.buf, x) }

func (q *Lifo[T]) Deq() (T, error) {
	var zero T
	n := len(q.buf)
	if n == 0 {
		return zero, ErrEmpty
	}
	x := q.buf[n-1]
	q.buf[n-1] = zero
	q.buf = q.buf[:n-1]
	return x, nil
}

func (q *Lifo[T]) Len() int { return len(q.buf) }

// Random dequeues a uniformly random element, the paper's example of an
// alternative scheduling discipline matching the same signature.
type Random[T any] struct {
	buf []T
	rng *rand.Rand
}

// NewRandom returns an empty randomized queue seeded deterministically.
func NewRandom[T any]() Queue[T] { return NewRandomSeeded[T](1) }

// NewRandomSeeded returns an empty randomized queue with the given seed.
func NewRandomSeeded[T any](seed int64) Queue[T] {
	return &Random[T]{rng: rand.New(rand.NewSource(seed))}
}

func (q *Random[T]) Enq(x T) { q.buf = append(q.buf, x) }

func (q *Random[T]) Deq() (T, error) {
	var zero T
	n := len(q.buf)
	if n == 0 {
		return zero, ErrEmpty
	}
	i := q.rng.Intn(n)
	x := q.buf[i]
	q.buf[i] = q.buf[n-1]
	q.buf[n-1] = zero
	q.buf = q.buf[:n-1]
	return x, nil
}

func (q *Random[T]) Len() int { return len(q.buf) }

// Priority dequeues the least element first according to a comparison
// function — the "minor signature change" the paper footnotes for priority
// scheduling, realized here by fixing the priority at construction time.
type Priority[T any] struct {
	h prioHeap[T]
}

type prioItem[T any] struct {
	x   T
	seq uint64 // FIFO tie-break for equal priorities
}

type prioHeap[T any] struct {
	items []prioItem[T]
	less  func(a, b T) bool
	seq   uint64
}

func (h prioHeap[T]) Len() int { return len(h.items) }
func (h prioHeap[T]) Less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.less(a.x, b.x) {
		return true
	}
	if h.less(b.x, a.x) {
		return false
	}
	return a.seq < b.seq
}
func (h prioHeap[T]) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *prioHeap[T]) Push(x any)   { h.items = append(h.items, x.(prioItem[T])) }
func (h *prioHeap[T]) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}

// NewPriority returns an empty priority queue ordered by less.
func NewPriority[T any](less func(a, b T) bool) Queue[T] {
	return &Priority[T]{h: prioHeap[T]{less: less}}
}

func (q *Priority[T]) Enq(x T) {
	q.h.seq++
	heap.Push(&q.h, prioItem[T]{x, q.h.seq})
}

func (q *Priority[T]) Deq() (T, error) {
	var zero T
	if len(q.h.items) == 0 {
		return zero, ErrEmpty
	}
	return heap.Pop(&q.h).(prioItem[T]).x, nil
}

func (q *Priority[T]) Len() int { return len(q.h.items) }

// Ring is a fixed-capacity FIFO; Enq on a full ring panics, making it
// suitable for statically bounded structures such as per-proc mailboxes.
type Ring[T any] struct {
	buf        []T
	head, size int
}

// NewRing returns an empty bounded FIFO of the given capacity.
func NewRing[T any](capacity int) Queue[T] {
	if capacity <= 0 {
		panic("queue: ring capacity must be positive")
	}
	return &Ring[T]{buf: make([]T, capacity)}
}

func (q *Ring[T]) Enq(x T) {
	if q.size == len(q.buf) {
		panic("queue: ring overflow")
	}
	q.buf[(q.head+q.size)%len(q.buf)] = x
	q.size++
}

func (q *Ring[T]) Deq() (T, error) {
	var zero T
	if q.size == 0 {
		return zero, ErrEmpty
	}
	x := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	return x, nil
}

func (q *Ring[T]) Len() int { return q.size }
