package queue

import (
	"sort"
	"testing"
	"testing/quick"
)

func disciplines() []struct {
	name string
	mk   Factory[int]
} {
	return []struct {
		name string
		mk   Factory[int]
	}{
		{"fifo", NewFifo[int]},
		{"lifo", NewLifo[int]},
		{"random", NewRandom[int]},
		{"priority", func() Queue[int] { return NewPriority(func(a, b int) bool { return a < b }) }},
		{"ring", func() Queue[int] { return NewRing[int](4096) }},
	}
}

func TestEmptyDeq(t *testing.T) {
	for _, d := range disciplines() {
		t.Run(d.name, func(t *testing.T) {
			q := d.mk()
			if _, err := q.Deq(); err != ErrEmpty {
				t.Fatalf("Deq on empty = %v, want ErrEmpty", err)
			}
			q.Enq(1)
			if _, err := q.Deq(); err != nil {
				t.Fatalf("Deq = %v", err)
			}
			if _, err := q.Deq(); err != ErrEmpty {
				t.Fatalf("Deq after drain = %v, want ErrEmpty", err)
			}
		})
	}
}

func TestFifoOrder(t *testing.T) {
	q := NewFifo[int]()
	for i := 0; i < 100; i++ {
		q.Enq(i)
	}
	for i := 0; i < 100; i++ {
		x, err := q.Deq()
		if err != nil || x != i {
			t.Fatalf("Deq #%d = %d, %v", i, x, err)
		}
	}
}

func TestFifoInterleaved(t *testing.T) {
	q := NewFifo[int]()
	next, want := 0, 0
	for round := 0; round < 50; round++ {
		for i := 0; i < round%7+1; i++ {
			q.Enq(next)
			next++
		}
		for i := 0; i < round%5+1 && q.Len() > 0; i++ {
			x, err := q.Deq()
			if err != nil || x != want {
				t.Fatalf("round %d: Deq = %d, %v; want %d", round, x, err, want)
			}
			want++
		}
	}
}

func TestLifoOrder(t *testing.T) {
	q := NewLifo[int]()
	for i := 0; i < 10; i++ {
		q.Enq(i)
	}
	for i := 9; i >= 0; i-- {
		x, _ := q.Deq()
		if x != i {
			t.Fatalf("Deq = %d, want %d", x, i)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	q := NewPriority(func(a, b int) bool { return a < b })
	in := []int{5, 3, 9, 1, 7, 3}
	for _, x := range in {
		q.Enq(x)
	}
	want := append([]int(nil), in...)
	sort.Ints(want)
	for _, w := range want {
		x, err := q.Deq()
		if err != nil || x != w {
			t.Fatalf("Deq = %d, %v; want %d", x, err, w)
		}
	}
}

func TestPriorityFIFOTieBreak(t *testing.T) {
	type job struct{ prio, seq int }
	q := NewPriority(func(a, b job) bool { return a.prio < b.prio })
	for i := 0; i < 10; i++ {
		q.Enq(job{prio: 1, seq: i})
	}
	for i := 0; i < 10; i++ {
		j, _ := q.Deq()
		if j.seq != i {
			t.Fatalf("equal-priority order broken: got seq %d at pos %d", j.seq, i)
		}
	}
}

func TestRingBounds(t *testing.T) {
	q := NewRing[int](3)
	q.Enq(1)
	q.Enq(2)
	q.Enq(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("overflow did not panic")
			}
		}()
		q.Enq(4)
	}()
	for want := 1; want <= 3; want++ {
		x, _ := q.Deq()
		if x != want {
			t.Fatalf("ring order: got %d want %d", x, want)
		}
	}
}

func TestRingCapacityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRing(0) did not panic")
		}
	}()
	NewRing[int](0)
}

func TestRandomIsPermutation(t *testing.T) {
	q := NewRandomSeeded[int](42)
	for i := 0; i < 100; i++ {
		q.Enq(i)
	}
	seen := map[int]bool{}
	inOrder := true
	for i := 0; i < 100; i++ {
		x, err := q.Deq()
		if err != nil {
			t.Fatal(err)
		}
		if seen[x] {
			t.Fatalf("duplicate element %d", x)
		}
		seen[x] = true
		if x != i {
			inOrder = false
		}
	}
	if len(seen) != 100 {
		t.Fatalf("lost elements: %d of 100", len(seen))
	}
	if inOrder {
		t.Error("randomized queue dequeued in FIFO order (suspicious for n=100)")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	drain := func(seed int64) []int {
		q := NewRandomSeeded[int](seed)
		for i := 0; i < 50; i++ {
			q.Enq(i)
		}
		var out []int
		for q.Len() > 0 {
			x, _ := q.Deq()
			out = append(out, x)
		}
		return out
	}
	a, b := drain(7), drain(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
	}
}

// TestQuickConservation: for every discipline, any script of enqueues and
// dequeues conserves elements — the multiset out is a sub-multiset of in,
// Len is consistent, and draining returns exactly what remains.
func TestQuickConservation(t *testing.T) {
	for _, d := range disciplines() {
		d := d
		t.Run(d.name, func(t *testing.T) {
			prop := func(ops []int16) bool {
				q := d.mk()
				in := map[int]int{}
				out := map[int]int{}
				n := 0
				for _, op := range ops {
					if op >= 0 && n < 4000 {
						q.Enq(int(op))
						in[int(op)]++
						n++
					} else if n > 0 {
						x, err := q.Deq()
						if err != nil {
							return false
						}
						out[x]++
						n--
					}
					if q.Len() != n {
						return false
					}
				}
				for q.Len() > 0 {
					x, err := q.Deq()
					if err != nil {
						return false
					}
					out[x]++
				}
				for k, v := range out {
					if in[k] != v {
						return false
					}
				}
				for k, v := range in {
					if out[k] != v {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
				t.Error(err)
			}
		})
	}
}

func BenchmarkFifoEnqDeq(b *testing.B) {
	q := NewFifo[int]()
	for i := 0; i < b.N; i++ {
		q.Enq(i)
		q.Deq()
	}
}
