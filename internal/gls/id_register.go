//go:build amd64 || arm64

package gls

// getg returns the runtime's current-goroutine pointer, read from the
// platform's goroutine register (TLS on amd64, the dedicated g register on
// arm64).  The value is used strictly as an opaque identity key — it is
// held as an integer, never dereferenced, and never kept alive past the
// goroutine's own Del — so it does not pin runtime memory or depend on any
// g struct layout.
func getg() uintptr

// gKey returns the current goroutine's identity key.
func gKey() uint64 { return uint64(getg()) }
