package gls

import (
	"sync"
	"testing"
)

func TestIDStable(t *testing.T) {
	a, b := ID(), ID()
	if a != b {
		t.Fatalf("ID not stable within a goroutine: %d vs %d", a, b)
	}
}

func TestIDDistinctAcrossGoroutines(t *testing.T) {
	self := ID()
	ch := make(chan uint64)
	go func() { ch <- ID() }()
	other := <-ch
	if self == other {
		t.Fatalf("two goroutines share id %d", self)
	}
}

func TestSetGetDel(t *testing.T) {
	if _, ok := Get(); ok {
		t.Fatal("fresh goroutine has a baton")
	}
	Set("hello")
	v, ok := Get()
	if !ok || v != "hello" {
		t.Fatalf("Get = %v, %v; want hello, true", v, ok)
	}
	Set(42)
	if v, _ := Get(); v != 42 {
		t.Fatalf("overwrite failed: got %v", v)
	}
	Del()
	if _, ok := Get(); ok {
		t.Fatal("baton survives Del")
	}
}

func TestIsolationAcrossGoroutines(t *testing.T) {
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Set(i)
			defer Del()
			for j := 0; j < 100; j++ {
				v, ok := Get()
				if !ok || v != i {
					errs <- "cross-goroutine contamination"
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestLenCountsLeaks(t *testing.T) {
	before := Len()
	done := make(chan struct{})
	release := make(chan struct{})
	go func() {
		Set("leak")
		done <- struct{}{}
		<-release
		Del()
		done <- struct{}{}
	}()
	<-done
	if Len() != before+1 {
		t.Fatalf("Len = %d, want %d", Len(), before+1)
	}
	close(release)
	<-done
	if Len() != before {
		t.Fatalf("after Del, Len = %d, want %d", Len(), before)
	}
}

func BenchmarkID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ID()
	}
}

func BenchmarkGet(b *testing.B) {
	Set("bench")
	defer Del()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Get()
	}
}
