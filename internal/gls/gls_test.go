package gls

import (
	"sync"
	"testing"
)

func TestIDStable(t *testing.T) {
	a, b := ID(), ID()
	if a != b {
		t.Fatalf("ID not stable within a goroutine: %d vs %d", a, b)
	}
}

func TestIDDistinctAcrossGoroutines(t *testing.T) {
	self := ID()
	ch := make(chan uint64)
	go func() { ch <- ID() }()
	other := <-ch
	if self == other {
		t.Fatalf("two goroutines share id %d", self)
	}
}

func TestSetGetDel(t *testing.T) {
	if _, ok := Get(); ok {
		t.Fatal("fresh goroutine has a baton")
	}
	Set("hello")
	v, ok := Get()
	if !ok || v != "hello" {
		t.Fatalf("Get = %v, %v; want hello, true", v, ok)
	}
	Set(42)
	if v, _ := Get(); v != 42 {
		t.Fatalf("overwrite failed: got %v", v)
	}
	Del()
	if _, ok := Get(); ok {
		t.Fatal("baton survives Del")
	}
}

func TestIsolationAcrossGoroutines(t *testing.T) {
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Set(i)
			defer Del()
			for j := 0; j < 100; j++ {
				v, ok := Get()
				if !ok || v != i {
					errs <- "cross-goroutine contamination"
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestLenCountsLeaks(t *testing.T) {
	before := Len()
	done := make(chan struct{})
	release := make(chan struct{})
	go func() {
		Set("leak")
		done <- struct{}{}
		<-release
		Del()
		done <- struct{}{}
	}()
	<-done
	if Len() != before+1 {
		t.Fatalf("Len = %d, want %d", Len(), before+1)
	}
	close(release)
	<-done
	if Len() != before {
		t.Fatalf("after Del, Len = %d, want %d", Len(), before)
	}
}

func BenchmarkID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ID()
	}
}

func BenchmarkGet(b *testing.B) {
	Set("bench")
	defer Del()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Get()
	}
}

// TestIDStableAcrossStackGrowth pins the register path's contract: the
// identity must survive stack growth and moves (g structs never move even
// when their stacks are copied).
func TestIDStableAcrossStackGrowth(t *testing.T) {
	id := ID()
	var grow func(n int) uint64
	grow = func(n int) uint64 {
		var pad [1 << 10]byte
		pad[0] = byte(n)
		if n == 0 {
			return ID()
		}
		deep := grow(n - 1)
		_ = pad
		return deep
	}
	// ~256KB of frames forces several stack copies.
	if deep := grow(256); deep != id {
		t.Fatalf("ID changed across stack growth: %#x -> %#x", id, deep)
	}
	if after := ID(); after != id {
		t.Fatalf("ID changed after stack shrink: %#x -> %#x", id, after)
	}
}

// TestIDDistinctAmongLiveGoroutines: identities of concurrently-live
// goroutines never collide (dead goroutines may donate theirs onward, so
// all must be held live while compared).
func TestIDDistinctAmongLiveGoroutines(t *testing.T) {
	const n = 256
	ids := make([]uint64, n)
	var wg, ready sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < n; i++ {
		wg.Add(1)
		ready.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = ID()
			ready.Done()
			<-release
		}(i)
	}
	ready.Wait()
	seen := make(map[uint64]int, n)
	for i, id := range ids {
		if j, dup := seen[id]; dup {
			t.Fatalf("goroutines %d and %d share id %#x", i, j, id)
		}
		seen[id] = i
	}
	close(release)
	wg.Wait()
}
