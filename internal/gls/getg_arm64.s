//go:build arm64

#include "textflag.h"

// func getg() uintptr
//
// arm64 dedicates a register (R28, spelled "g" in Go assembly) to the
// current goroutine.
TEXT ·getg(SB), NOSPLIT, $0-8
	MOVD g, R0
	MOVD R0, ret+0(FP)
	RET
