//go:build amd64

#include "textflag.h"

// func getg() uintptr
//
// The runtime keeps the current g in thread-local storage on amd64; the
// assembler's TLS pseudo-register resolves to it under both internal and
// external linking.
TEXT ·getg(SB), NOSPLIT, $0-8
	MOVQ (TLS), AX
	MOVQ AX, ret+0(FP)
	RET
