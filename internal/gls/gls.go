// Package gls provides goroutine-local storage for the MP platform.
//
// SML/NJ stores the per-proc datum in a dedicated virtual register of its
// abstract machine (paper §5).  Go exposes no such register and no
// goroutine-local variables, so the platform keeps a single "baton" slot per
// goroutine in a sharded table keyed by goroutine id.  The baton is the
// *proc.Proc currently held by the goroutine; every continuation throw and
// proc acquire/release updates it, so a read always observes the proc that
// is executing the reading code — exactly the invariant the hardware
// register gave SML/NJ.
//
// The goroutine id is recovered by parsing the header line of
// runtime.Stack, a well-known (if unlovely) technique.  It costs on the
// order of a microsecond, comparable to the cost the 1993 platform paid for
// its slowest per-proc-datum path (indirect access through the stack
// pointer on register-poor machines).
package gls

import (
	"fmt"
	"runtime"
	"sync"
)

const shardCount = 64

type shard struct {
	mu sync.Mutex
	m  map[uint64]any
}

var table [shardCount]shard

func init() {
	for i := range table {
		table[i].m = make(map[uint64]any, 16)
	}
}

// ID returns the current goroutine's id.
func ID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// The header looks like "goroutine 123 [running]:".
	const prefix = len("goroutine ")
	if n <= prefix {
		panic(fmt.Sprintf("gls: malformed stack header %q", buf[:n]))
	}
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	if id == 0 {
		panic(fmt.Sprintf("gls: malformed stack header %q", buf[:n]))
	}
	return id
}

// Get returns the current goroutine's baton, if one is set.
func Get() (any, bool) {
	id := ID()
	s := &table[id%shardCount]
	s.mu.Lock()
	v, ok := s.m[id]
	s.mu.Unlock()
	return v, ok
}

// Set installs v as the current goroutine's baton.
func Set(v any) {
	id := ID()
	s := &table[id%shardCount]
	s.mu.Lock()
	s.m[id] = v
	s.mu.Unlock()
}

// Del removes the current goroutine's baton.  Every goroutine that Sets a
// baton must Del it before exiting so the table does not grow without
// bound.
func Del() {
	id := ID()
	s := &table[id%shardCount]
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// Len reports the number of live baton entries; used by tests to check for
// leaks.
func Len() int {
	n := 0
	for i := range table {
		table[i].mu.Lock()
		n += len(table[i].m)
		table[i].mu.Unlock()
	}
	return n
}
