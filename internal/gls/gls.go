// Package gls provides goroutine-local storage for the MP platform.
//
// SML/NJ stores the per-proc datum in a dedicated virtual register of its
// abstract machine (paper §5).  Go exposes no such register and no
// goroutine-local variables, so the platform keeps a single "baton" slot per
// goroutine in a sharded table keyed by goroutine identity.  The baton is
// the *proc.Proc currently held by the goroutine; every continuation throw
// and proc acquire/release updates it, so a read always observes the proc
// that is executing the reading code — exactly the invariant the hardware
// register gave SML/NJ.
//
// Goroutine identity comes from one of two sources:
//
//   - On amd64 and arm64, a two-instruction assembly stub reads the
//     runtime's g pointer (the thread-local "current goroutine" register,
//     stable for the goroutine's whole life because g structs never move).
//     This is the moral equivalent of the paper's virtual register: a
//     single register read, a handful of nanoseconds.
//   - Elsewhere, the id is parsed from the header line of runtime.Stack, a
//     well-known (if unlovely) technique.  It is dramatically slower —
//     runtime.Stack symbolizes the whole stack, and continuation-heavy MP
//     stacks run deep — which is why the register path exists: profiling
//     the serving fabric showed the parser consuming ~90% of total CPU.
//
// Identity discipline: because a dead goroutine's g may be reused by a
// future goroutine, every goroutine that Sets a baton MUST Del it before
// exiting.  A leaked entry is not just a table leak — under g-pointer
// keying a later goroutine could adopt the stale baton.  All platform
// goroutine roots (cont.Callcc, cont.Start, proc.Run) Del on every exit
// path, and cont's tests watch Len for leaks.
package gls

import "sync"

const shardCount = 64

type shard struct {
	mu sync.Mutex
	m  map[uint64]any
}

var table [shardCount]shard

func init() {
	for i := range table {
		table[i].m = make(map[uint64]any, 16)
	}
}

// shardOf mixes the id before sharding: g pointers are heap addresses with
// strong alignment structure, so id%shardCount alone would pile every
// goroutine onto a few shards.
func shardOf(id uint64) *shard {
	h := id * 0x9E3779B97F4A7C15 // Fibonacci hashing
	return &table[h>>(64-6)]
}

// ID returns the current goroutine's identity: the g pointer on
// register-path architectures, the runtime.Stack goroutine id elsewhere.
// It is stable for the life of the goroutine and distinct among live
// goroutines; ids of dead goroutines may be reused.
func ID() uint64 { return gKey() }

// Get returns the current goroutine's baton, if one is set.
func Get() (any, bool) {
	id := gKey()
	s := shardOf(id)
	s.mu.Lock()
	v, ok := s.m[id]
	s.mu.Unlock()
	return v, ok
}

// Set installs v as the current goroutine's baton.
func Set(v any) {
	id := gKey()
	s := shardOf(id)
	s.mu.Lock()
	s.m[id] = v
	s.mu.Unlock()
}

// Del removes the current goroutine's baton.  Every goroutine that Sets a
// baton must Del it before exiting: the table does not otherwise shrink,
// and a reused goroutine identity must not observe a predecessor's baton.
func Del() {
	id := gKey()
	s := shardOf(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}

// Len reports the number of live baton entries; used by tests to check for
// leaks.
func Len() int {
	n := 0
	for i := range table {
		table[i].mu.Lock()
		n += len(table[i].m)
		table[i].mu.Unlock()
	}
	return n
}
