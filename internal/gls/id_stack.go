//go:build !amd64 && !arm64

package gls

import (
	"fmt"
	"runtime"
	"sync"
)

// Architectures without a getg stub fall back to parsing the goroutine id
// from the header line of runtime.Stack.  Correct everywhere, but orders
// of magnitude slower than the register path: runtime.Stack symbolizes the
// caller's whole stack to print it, and MP stacks are continuation-deep.

// stackBufs recycles the header buffers gKey hands to runtime.Stack: the
// slice escapes through the runtime call, so a plain stack array would
// cost one 64-byte heap allocation per lookup — on every proc.Self(),
// i.e. on the hottest paths in the system.
var stackBufs = sync.Pool{New: func() any { return new([64]byte) }}

// gKey returns the current goroutine's identity key.
func gKey() uint64 {
	bp := stackBufs.Get().(*[64]byte)
	buf := bp[:]
	n := runtime.Stack(buf, false)
	// The header looks like "goroutine 123 [running]:".
	const prefix = len("goroutine ")
	if n <= prefix {
		panic(fmt.Sprintf("gls: malformed stack header %q", buf[:n]))
	}
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	if id == 0 {
		panic(fmt.Sprintf("gls: malformed stack header %q", buf[:n]))
	}
	stackBufs.Put(bp)
	return id
}
