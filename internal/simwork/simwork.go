// Package simwork expresses the paper's five evaluation benchmarks (§6)
// plus the `seq` baseline as simulated task programs for the machine
// models.  Each program is a sequence of stages; a stage is a bag of
// equal-sized tasks drawn from a central run queue protected by a mutex
// (the shape of the MPThread scheduler the evaluation ran on), ended by a
// barrier.  Task work, allocation rate (SML/NJ allocates roughly one word
// per 3-7 instructions for symbolic code, much less for tight integer
// loops), data-lock usage, stage widths and survival rates are the
// calibration knobs; the chosen values are physically motivated and
// recorded in EXPERIMENTS.md along with the resulting curves.
//
// What each program models:
//
//   - allpairs: Floyd's all-shortest-paths on a 75-node graph [Mohr]: 75
//     dependent phases (one per intermediate vertex k), each a bag of 75
//     row tasks, moderately allocation-heavy.
//   - mst: Prim's minimum spanning tree on 200 points [Mohr]: 200 phases,
//     each a small parallel min-reduction followed by a sequential update
//     — very fine-grained synchronization.
//   - abisort: adaptive bitonic sort of 2^12 integers [Bilardi & Nicolau;
//     Mohr]: a log-depth network of compare/merge phases over tree
//     structures, the most allocation-intensive program.
//   - simple: the SIMPLE hydrodynamics code [Crowley et al.], one
//     timestep on a 100x100 grid: alternating narrow (sequential
//     reductions, boundary sweeps) and limited-width stages — the paper's
//     worst case, idle more than half the time at p >= 10, with moderate
//     run-queue and data-lock contention.
//   - mm: 100x100 integer matrix multiply: 100 independent coarse row
//     tasks, a tight loop with a low allocation rate whose speedup is
//     limited mainly by bus traffic.
//   - seq: p independent copies of a small SML/NJ application, the
//     paper's control for lock/parallelism effects: only the shared bus
//     couples the copies.
package simwork

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/metrics"
)

// Stage is one phase of a program: Tasks equal tasks, each WorkInstr
// instructions computing and AllocWords words of heap allocation, with
// DataLockOps short critical sections on a shared data lock.
type Stage struct {
	Name        string
	Tasks       int
	WorkInstr   int64
	AllocWords  int64
	DataLockOps int
}

// Program is a benchmark: named stages run in order by all procs, with a
// barrier after each stage.  Independent programs (seq) instead run one
// full private copy of the stage list per proc, with no shared queue or
// barriers.
type Program struct {
	Name        string
	Survival    float64 // fraction of allocation live at GC time
	Independent bool
	Stages      []Stage
}

// TotalWork sums the program's instructions and allocation (one copy).
func (pr Program) TotalWork() (instr, words int64) {
	for _, st := range pr.Stages {
		instr += int64(st.Tasks) * st.WorkInstr
		words += int64(st.Tasks) * st.AllocWords
	}
	return
}

// Allpairs is Floyd's algorithm on a 75-node graph.
func Allpairs() Program {
	const n = 75
	stages := make([]Stage, n)
	for k := range stages {
		stages[k] = Stage{
			Name:       fmt.Sprintf("k%d", k),
			Tasks:      n,
			WorkInstr:  n * 12,     // relax one row: n compare/update steps
			AllocWords: n * 12 / 6, // symbolic: ~1 word per 6 instructions
		}
	}
	return Program{Name: "allpairs", Survival: 0.03, Stages: stages}
}

// MST is Prim's algorithm on 200 random points.
func MST() Program {
	const n = 200
	var stages []Stage
	for round := 0; round < n-1; round++ {
		remaining := int64(n - round)
		stages = append(stages,
			Stage{
				Name:       fmt.Sprintf("min%d", round),
				Tasks:      12, // chunked parallel min-reduction
				WorkInstr:  remaining * 60 / 12,
				AllocWords: remaining * 60 / 12 / 8,
			},
			Stage{
				Name:       fmt.Sprintf("upd%d", round),
				Tasks:      1, // sequential tree extension
				WorkInstr:  200,
				AllocWords: 30,
			},
		)
	}
	return Program{Name: "mst", Survival: 0.04, Stages: stages}
}

// Abisort is adaptive bitonic sorting of 2^12 integers.
func Abisort() Program {
	const lg = 12 // 4096 elements
	var stages []Stage
	for i := 1; i <= lg; i++ {
		for j := i; j >= 1; j-- {
			stages = append(stages, Stage{
				Name:       fmt.Sprintf("s%d.%d", i, j),
				Tasks:      16,
				WorkInstr:  (1 << (lg - 1)) * 14 / 16,     // 2048 compare/swap tree ops
				AllocWords: (1 << (lg - 1)) * 14 / 16 / 5, // tree rebuilding: allocation heavy
			})
		}
	}
	return Program{Name: "abisort", Survival: 0.10, Stages: stages}
}

// Simple is one timestep of the SIMPLE hydrodynamics benchmark on a
// 100x100 grid.
func Simple() Program {
	var stages []Stage
	for sweep := 0; sweep < 10; sweep++ {
		stages = append(stages,
			Stage{
				Name:      fmt.Sprintf("dt%d", sweep),
				Tasks:     1, // global timestep reduction: sequential
				WorkInstr: 30_000,
			},
			Stage{
				Name:        fmt.Sprintf("sweep%d", sweep),
				Tasks:       5, // coarse band decomposition: limited width
				WorkInstr:   60_000,
				AllocWords:  60_000 / 10,
				DataLockOps: 24, // shared boundary cells
			},
			Stage{
				Name:       fmt.Sprintf("point%d", sweep),
				Tasks:      12, // pointwise state update: wider but small
				WorkInstr:  9_000,
				AllocWords: 9_000 / 10,
			},
		)
	}
	return Program{Name: "simple", Survival: 0.04, Stages: stages}
}

// MM is a 100x100 integer matrix multiply.
func MM() Program {
	const n = 100
	return Program{
		Name:     "mm",
		Survival: 0.02,
		Stages: []Stage{{
			Name:       "rows",
			Tasks:      n,
			WorkInstr:  n * n * 8,     // one output row: n*n multiply-adds
			AllocWords: n * n * 8 / 8, // ~20 MB/s aggregate at 16 procs
		}},
	}
}

// Seq is the paper's control: p independent copies of a simple SML/NJ
// application (one per proc), sharing nothing but the bus.
func Seq() Program {
	return Program{
		Name:        "seq",
		Survival:    0.10,
		Independent: true,
		Stages: []Stage{{
			Name:       "app",
			Tasks:      1,
			WorkInstr:  4_000_000,
			AllocWords: 4_000_000 / 24,
		}},
	}
}

// Programs lists the Figure 6 curves in the paper's legend order.
func Programs() []Program {
	return []Program{Allpairs(), MST(), Abisort(), Simple(), MM(), Seq()}
}

// ByName returns the named program.
func ByName(name string) (Program, bool) {
	for _, p := range Programs() {
		if p.Name == name {
			return p, true
		}
	}
	return Program{}, false
}

// Result is one simulated run.  Metrics is the machine registry's
// unified snapshot; Totals and PerProc are the legacy struct views of
// the same counters.
type Result struct {
	Program  string
	Machine  string
	Procs    int
	Makespan int64 // virtual ns
	GCs      int
	GCNS     int64
	BusBytes int64
	Metrics  metrics.Snapshot
	Totals   machine.ProcStats
	PerProc  []machine.ProcStats
}

// BusMBps is the average bus traffic over the run in MB/s.
func (r Result) BusMBps() float64 {
	if r.Makespan == 0 {
		return 0
	}
	return float64(r.BusBytes) / (float64(r.Makespan) / 1e9) / 1e6
}

// IdleFrac is the fraction of total proc time spent idle (no ready task),
// read from the unified snapshot.
func (r Result) IdleFrac() float64 {
	total := int64(r.Procs) * r.Makespan
	if total == 0 {
		return 0
	}
	idle := r.Metrics.Get("machine.idle_ns") + r.Metrics.Get("machine.gcstall_ns")
	return float64(idle) / float64(total)
}

// LockFrac is the fraction of total proc time spent waiting on locks,
// read from the unified snapshot.
func (r Result) LockFrac() float64 {
	total := int64(r.Procs) * r.Makespan
	if total == 0 {
		return 0
	}
	return float64(r.Metrics.Get("machine.lockwait_ns")) / float64(total)
}

// Run executes a program on procs processors of the given machine model.
func Run(pr Program, cfg machine.Config, procs int, seed int64) Result {
	if procs < 1 || procs > cfg.Procs {
		panic(fmt.Sprintf("simwork: %d procs on a %d-proc %s", procs, cfg.Procs, cfg.Name))
	}
	if pr.Independent {
		// Independent copies are separate SML/NJ images, each with its own
		// heap: the shared bus is the only coupling, so the allocation
		// region scales with the number of copies.
		cfg.NurseryWords *= int64(procs)
	}
	m := machine.New(cfg, seed, pr.Survival)

	if pr.Independent {
		for i := 0; i < procs; i++ {
			m.Spawn(func(p *machine.P) {
				for _, st := range pr.Stages {
					for t := 0; t < st.Tasks; t++ {
						p.Work(st.WorkInstr, st.AllocWords)
					}
				}
			})
		}
	} else {
		queueLock := m.NewLock()
		dataLock := m.NewLock()
		barrier := m.NewBarrier(procs)
		next := make([]int, len(pr.Stages))
		for i := 0; i < procs; i++ {
			m.Spawn(func(p *machine.P) {
				for si, st := range pr.Stages {
					for {
						// Draw a task from the stage's central queue, the
						// MPThread dispatch pattern.
						p.Lock(queueLock)
						t := next[si]
						next[si]++
						p.Unlock(queueLock)
						if t >= st.Tasks {
							break
						}
						if st.DataLockOps > 0 {
							slice := st.WorkInstr / int64(st.DataLockOps+1)
							alloc := st.AllocWords / int64(st.DataLockOps+1)
							for l := 0; l < st.DataLockOps; l++ {
								p.Work(slice, alloc)
								p.Lock(dataLock)
								p.Compute(40) // short shared-data update
								p.Unlock(dataLock)
							}
							p.Work(st.WorkInstr-slice*int64(st.DataLockOps),
								st.AllocWords-alloc*int64(st.DataLockOps))
						} else {
							p.Work(st.WorkInstr, st.AllocWords)
						}
					}
					p.Await(barrier)
				}
			})
		}
	}

	makespan := m.Run()
	gcs, gcNS := m.GCs()
	return Result{
		Program:  pr.Name,
		Machine:  cfg.Name,
		Procs:    procs,
		Makespan: makespan,
		GCs:      gcs,
		GCNS:     gcNS,
		BusBytes: m.BusBytes(),
		Metrics:  m.Metrics().Snapshot(),
		Totals:   m.Totals(),
		PerProc:  m.Stats(),
	}
}
