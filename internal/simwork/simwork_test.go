package simwork

import (
	"testing"

	"repro/internal/machine"
)

func TestProgramsComplete(t *testing.T) {
	want := map[string]bool{
		"allpairs": true, "mst": true, "abisort": true,
		"simple": true, "mm": true, "seq": true,
	}
	for _, p := range Programs() {
		if !want[p.Name] {
			t.Fatalf("unexpected program %q", p.Name)
		}
		delete(want, p.Name)
	}
	if len(want) != 0 {
		t.Fatalf("missing programs: %v", want)
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("mm"); !ok || p.Name != "mm" {
		t.Fatal("ByName(mm) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName(nope) succeeded")
	}
}

func TestRunCompletesOnAllMachines(t *testing.T) {
	for name, mk := range machine.Configs {
		cfg := mk()
		r := Run(MM(), cfg, cfg.Procs, 1)
		if r.Makespan <= 0 {
			t.Fatalf("%s: nonpositive makespan", name)
		}
	}
}

func TestMoreProcsNeverSlowerMuch(t *testing.T) {
	// Sanity: for mm (coarse independent tasks) makespan at p procs is
	// never more than 5% above makespan at p-1.
	cfg := machine.SequentS81()
	prev := int64(0)
	for p := 1; p <= 16; p++ {
		r := Run(MM(), cfg, p, 1)
		if prev > 0 && float64(r.Makespan) > float64(prev)*1.05 {
			t.Fatalf("mm slowdown from p=%d to p=%d: %d -> %d", p-1, p, prev, r.Makespan)
		}
		prev = r.Makespan
	}
}

func TestIndependentScalesNursery(t *testing.T) {
	// seq copies have private heaps: the GC count must not explode with p.
	cfg := machine.SequentS81()
	r1 := Run(Seq(), cfg, 1, 1)
	r16 := Run(Seq(), cfg, 16, 1)
	if r16.GCs > r1.GCs*2+1 {
		t.Fatalf("seq GCs grew from %d to %d; copies should have private heaps",
			r1.GCs, r16.GCs)
	}
}

func TestTaskConservation(t *testing.T) {
	// Every stage's tasks are executed exactly once regardless of procs:
	// total busy work must not depend on the proc count beyond lock costs.
	cfg := machine.SequentS81()
	instr, _ := Allpairs().TotalWork()
	for _, p := range []int{1, 7, 16} {
		r := Run(Allpairs(), cfg, p, 1)
		minBusy := int64(float64(instr) / cfg.MIPS * 1e9)
		if r.Totals.BusyNS < minBusy {
			t.Fatalf("p=%d: busy %d ns < work %d ns: tasks lost", p, r.Totals.BusyNS, minBusy)
		}
	}
}

func TestAllocConservation(t *testing.T) {
	cfg := machine.SequentS81()
	_, words := Abisort().TotalWork()
	for _, p := range []int{1, 5, 16} {
		r := Run(Abisort(), cfg, p, 1)
		if r.Totals.AllocWords != words {
			t.Fatalf("p=%d: allocated %d words, program defines %d",
				p, r.Totals.AllocWords, words)
		}
	}
}

func TestBadProcCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 17 procs on a 16-proc machine")
		}
	}()
	Run(MM(), machine.SequentS81(), 17, 1)
}

func TestMetricsRanges(t *testing.T) {
	r := Run(Simple(), machine.SequentS81(), 10, 1)
	if f := r.IdleFrac(); f < 0 || f > 1 {
		t.Fatalf("idle frac %f out of range", f)
	}
	if f := r.LockFrac(); f < 0 || f > 1 {
		t.Fatalf("lock frac %f out of range", f)
	}
	if r.BusMBps() < 0 {
		t.Fatal("negative bus traffic")
	}
}
