package cml_test

import (
	"fmt"

	"repro/internal/cml"
	"repro/internal/proc"
	"repro/internal/threads"
)

// Events are first-class: compose a receive with Wrap and commit it with
// Sync.
func ExampleSync() {
	s := threads.New(proc.New(2), threads.Options{})
	s.Run(func() {
		ch := cml.NewChan[int]()
		s.Fork(func() { ch.Send(s, 21) })
		doubled := cml.Sync(s, cml.Wrap(ch.RecvEvt(), func(v int) int {
			return v * 2
		}))
		fmt.Println(doubled)
	})
	// Output:
	// 42
}

// Choose commits to exactly one of several receive events.
func ExampleChoose() {
	s := threads.New(proc.New(2), threads.Options{})
	s.Run(func() {
		fast := cml.NewChan[string]()
		slow := cml.NewChan[string]()
		s.Fork(func() { fast.Send(s, "fast wins") })
		s.Yield() // let the sender park on fast
		fmt.Println(cml.Select(s, fast.RecvEvt(), slow.RecvEvt()))
	})
	// Output:
	// fast wins
}

// An IVar delivers one write-once value to any number of readers.
func ExampleIVar() {
	s := threads.New(proc.New(2), threads.Options{})
	s.Run(func() {
		iv := cml.NewIVar[string]()
		s.Fork(func() { fmt.Println("reader 1:", iv.Read(s)) })
		s.Fork(func() { fmt.Println("reader 2:", iv.Read(s)) })
		s.Yield()
		iv.Put(s, "ready")
		s.Yield()
	})
	// Unordered output:
	// reader 1: ready
	// reader 2: ready
}
