package cml

import (
	"sync/atomic"
	"testing"
)

func TestSwapExchangesValues(t *testing.T) {
	s := newSys(2)
	var a, b int
	s.Run(func() {
		sc := NewSwapChan[int]()
		s.Fork(func() { a = sc.Swap(s, 1) })
		b = sc.Swap(s, 2)
	})
	if a != 2 || b != 1 {
		t.Fatalf("swap results a=%d b=%d, want 2 and 1", a, b)
	}
}

func TestSwapManyPairs(t *testing.T) {
	const pairs = 40
	s := newSys(4)
	var sum atomic.Int64
	s.Run(func() {
		sc := NewSwapChan[int]()
		for i := 0; i < 2*pairs; i++ {
			i := i
			s.Fork(func() {
				got := sc.Swap(s, i)
				sum.Add(int64(got))
			})
		}
	})
	// Every offered value is received by exactly one partner.
	want := int64(2*pairs-1) * int64(2*pairs) / 2
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestSwapPairsDisjoint(t *testing.T) {
	// With two swappers, each must get the other's value — never its own.
	for round := 0; round < 20; round++ {
		s := newSys(2)
		results := make(map[int]int)
		s.Run(func() {
			sc := NewSwapChan[int]()
			done := NewChan[struct{ who, got int }]()
			s.Fork(func() { done.Send(s, struct{ who, got int }{1, sc.Swap(s, 1)}) })
			s.Fork(func() { done.Send(s, struct{ who, got int }{2, sc.Swap(s, 2)}) })
			for i := 0; i < 2; i++ {
				r := done.Recv(s)
				results[r.who] = r.got
			}
		})
		if results[1] != 2 || results[2] != 1 {
			t.Fatalf("round %d: results = %v", round, results)
		}
	}
}

func TestMulticastEveryPortSeesEveryMessage(t *testing.T) {
	s := newSys(4)
	const ports, msgs = 4, 10
	sums := make([]int, ports)
	s.Run(func() {
		mc := NewMulticast[int]()
		var boxes []*Mailbox[int]
		for i := 0; i < ports; i++ {
			boxes = append(boxes, mc.Port())
		}
		for m := 1; m <= msgs; m++ {
			mc.Send(s, m)
		}
		for i, p := range boxes {
			for m := 0; m < msgs; m++ {
				sums[i] += p.Recv(s)
			}
		}
	})
	want := msgs * (msgs + 1) / 2
	for i, got := range sums {
		if got != want {
			t.Fatalf("port %d sum = %d, want %d", i, got, want)
		}
	}
}

func TestMulticastLateBindingPort(t *testing.T) {
	s := newSys(2)
	var early, late int
	s.Run(func() {
		mc := NewMulticast[int]()
		p1 := mc.Port()
		mc.Send(s, 1)
		p2 := mc.Port() // attached after the first send: must not see it
		mc.Send(s, 2)
		early = p1.Recv(s) + p1.Recv(s)
		late = p2.Recv(s)
	})
	if early != 3 {
		t.Fatalf("early port got %d, want 3", early)
	}
	if late != 2 {
		t.Fatalf("late port got %d, want 2", late)
	}
}

func TestMulticastPortsAreSelectable(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		mc := NewMulticast[int]()
		p := mc.Port()
		dead := NewChan[int]()
		s.Fork(func() { mc.Send(s, 6) })
		got = Select(s, p.RecvEvt(), dead.RecvEvt())
	})
	if got != 6 {
		t.Fatalf("got %d", got)
	}
}

func TestSwapUnderChoosePanics(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		sc := NewSwapChan[int]()
		defer func() {
			if recover() == nil {
				t.Error("swap under Choose did not panic")
			}
		}()
		Select(s, swapEvt[int]{sc: sc, v: 1}, Never[int]())
	})
}
