// Package cml is a multiprocessor prototype of Concurrent ML (Reppy),
// which the paper reports building on top of MP: "MP has also been used to
// construct a multiprocessor prototype of Concurrent ML (CML), an ML
// dialect supporting threads, channels, synchronous communication events
// (e.g., CSP-style nondeterministic choice)."
//
// The event algebra is CML's: base events (channel send/receive, ivar and
// mvar reads, Always, Never) composed with Choose, Wrap and Guard, and
// committed with Sync.  The rendezvous protocol is the paper's Fig. 5
// committed-lock protocol: a syncing thread that must block creates one
// `committed` mutex lock shared by all of its registered base events; the
// first party to try-lock it wins the right to resume the thread, so the
// thread commits to exactly one branch of a choice.
//
// Like the paper's own prototype (whose protocol is receive-side
// nondeterministic choice, Figs. 4–5), choice is supported over
// *receive-like* events: RecvEvt, ReadEvt, TakeEvt, RecvMBEvt, Always,
// Never, and Wrap/Guard/Choose combinations of these.  SendEvt may be
// synchronized on its own (Send blocks until a receiver takes the value)
// but not combined under Choose: blocked senders are unconditional
// rendezvous offers in this protocol, and a sender with alternatives would
// need the two-phase commit of Reppy's full implementation.  Sync enforces
// the restriction with a clear panic.  The substitution is recorded in
// DESIGN.md.
package cml

import (
	"math/rand"

	"repro/internal/cont"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/queue"
)

// Protocol counters on the default registry, sharded by the syncing
// thread's id.  sends/receives count channel poll attempts (one per
// Sync per channel branch reached); commits count Syncs that completed;
// aborted_polls count committed-lock races lost against another branch.
var (
	mSyncs   = metrics.Default.Counter("cml.syncs")
	mSends   = metrics.Default.Counter("cml.sends")
	mRecvs   = metrics.Default.Counter("cml.receives")
	mCommits = metrics.Default.Counter("cml.commits")
	mAborts  = metrics.Default.Counter("cml.aborted_polls")
)

// Scheduler is the slice of the thread package the protocol needs;
// threads.System implements it.
type Scheduler interface {
	Reschedule(run func(), id int)
	Dispatch()
	ID() int
}

// commitRef identifies one syncing thread during its block phase: the
// shared committed lock, the thread id, and a resume hook that reschedules
// the thread's continuation with the event result.
type commitRef[T any] struct {
	committed core.Lock // nil for singleton non-selectable syncs
	id        int
	resume    func(T)
}

type blockKind int

const (
	parked       blockKind = iota // registered; wait for a partner
	committedNow                  // found a partner and committed ourselves
	already                       // some partner already committed us
)

type blockRes[T any] struct {
	kind blockKind
	val  T
}

// Event is a first-class synchronous operation yielding a T when
// synchronized.
type Event[T any] interface {
	// force evaluates Guard thunks, yielding a guard-free event.
	force(s Scheduler) Event[T]
	// poll attempts an immediate commit on behalf of a running thread.
	poll(s Scheduler) (T, bool)
	// block registers the syncing thread on the event's wait queues.
	block(s Scheduler, w commitRef[T]) blockRes[T]
	// selectable reports whether the event may appear under Choose.
	selectable() bool
}

// cachedID wraps a Scheduler so the repeated ID lookups inside one Sync
// (metric shards, wait-queue entries) resolve to a single goroutine-local
// read done at Sync entry.
type cachedID struct {
	Scheduler
	id int
}

func (c cachedID) ID() int { return c.id }

// Sync synchronizes on an event, blocking the calling thread until the
// event commits, and returns the event's result (CML: sync).
func Sync[T any](s Scheduler, ev Event[T]) T {
	self := s.ID()
	mSyncs.Inc(self)
	cs := cachedID{Scheduler: s, id: self}
	ev = ev.force(cs)
	if v, ok := ev.poll(cs); ok {
		mCommits.Inc(self)
		return v
	}
	return cont.Callcc(func(k *cont.Cont[T]) T {
		w := commitRef[T]{id: self}
		if ev.selectable() {
			w.committed = core.NewMutexLock()
		}
		w.resume = func(v T) {
			s.Reschedule(func() { cont.Throw(k, v) }, w.id)
		}
		r := ev.block(cs, w)
		switch r.kind {
		case committedNow:
			mCommits.Inc(self)
			return r.val // implicit throw to k
		default:
			// Parked, or already committed by a partner: either way the
			// continuation k is (or will be) scheduled by someone else.
			s.Dispatch()
			panic("cml: Dispatch returned")
		}
	})
}

// Select synchronizes on the choice of the given events (CML: select).
func Select[T any](s Scheduler, evs ...Event[T]) T {
	return Sync(s, Choose(evs...))
}

// ---------------------------------------------------------------- always

type alwaysEvt[T any] struct{ v T }

// Always returns an event that is always ready with value v (CML:
// alwaysEvt).
func Always[T any](v T) Event[T] { return alwaysEvt[T]{v} }

func (e alwaysEvt[T]) force(Scheduler) Event[T] { return e }
func (e alwaysEvt[T]) poll(Scheduler) (T, bool) { return e.v, true }
func (e alwaysEvt[T]) selectable() bool         { return true }
func (e alwaysEvt[T]) block(s Scheduler, w commitRef[T]) blockRes[T] {
	if w.committed == nil || w.committed.TryLock() {
		return blockRes[T]{kind: committedNow, val: e.v}
	}
	return blockRes[T]{kind: already}
}

// ----------------------------------------------------------------- never

type neverEvt[T any] struct{}

// Never returns an event that is never ready (CML: neverEvt).
func Never[T any]() Event[T] { return neverEvt[T]{} }

func (e neverEvt[T]) force(Scheduler) Event[T] { return e }
func (e neverEvt[T]) poll(Scheduler) (T, bool) {
	var zero T
	return zero, false
}
func (e neverEvt[T]) selectable() bool                          { return true }
func (e neverEvt[T]) block(Scheduler, commitRef[T]) blockRes[T] { return blockRes[T]{kind: parked} }

// ------------------------------------------------------------------ wrap

type wrapEvt[A, B any] struct {
	inner Event[A]
	f     func(A) B
}

// Wrap returns an event that applies f to ev's result (CML: wrap).
func Wrap[A, B any](ev Event[A], f func(A) B) Event[B] {
	return wrapEvt[A, B]{inner: ev, f: f}
}

func (e wrapEvt[A, B]) force(s Scheduler) Event[B] {
	return wrapEvt[A, B]{inner: e.inner.force(s), f: e.f}
}

func (e wrapEvt[A, B]) poll(s Scheduler) (B, bool) {
	if a, ok := e.inner.poll(s); ok {
		return e.f(a), true
	}
	var zero B
	return zero, false
}

func (e wrapEvt[A, B]) selectable() bool { return e.inner.selectable() }

func (e wrapEvt[A, B]) block(s Scheduler, w commitRef[B]) blockRes[B] {
	inner := commitRef[A]{
		committed: w.committed,
		id:        w.id,
		resume:    func(a A) { w.resume(e.f(a)) },
	}
	r := e.inner.block(s, inner)
	out := blockRes[B]{kind: r.kind}
	if r.kind == committedNow {
		out.val = e.f(r.val)
	}
	return out
}

// ----------------------------------------------------------------- guard

type guardEvt[T any] struct{ g func() Event[T] }

// Guard returns an event that evaluates g anew at each synchronization
// (CML: guard).
func Guard[T any](g func() Event[T]) Event[T] { return guardEvt[T]{g} }

func (e guardEvt[T]) force(s Scheduler) Event[T] { return e.g().force(s) }
func (e guardEvt[T]) poll(s Scheduler) (T, bool) { return e.force(s).poll(s) }
func (e guardEvt[T]) selectable() bool           { return true }
func (e guardEvt[T]) block(s Scheduler, w commitRef[T]) blockRes[T] {
	return e.force(s).block(s, w)
}

// ---------------------------------------------------------------- choose

type chooseEvt[T any] struct{ evs []Event[T] }

// Choose returns the nondeterministic choice of the given events (CML:
// choose).  Every branch must be receive-like; see the package comment.
func Choose[T any](evs ...Event[T]) Event[T] {
	return chooseEvt[T]{evs: evs}
}

func (e chooseEvt[T]) force(s Scheduler) Event[T] {
	out := make([]Event[T], len(e.evs))
	for i, ev := range e.evs {
		out[i] = ev.force(s)
		if !out[i].selectable() {
			panic("cml: send events cannot appear under Choose in this prototype" +
				" (the Fig. 5 protocol supports receive-side choice; see package doc)")
		}
	}
	return chooseEvt[T]{evs: out}
}

func (e chooseEvt[T]) selectable() bool {
	for _, ev := range e.evs {
		if !ev.selectable() {
			return false
		}
	}
	return true
}

func (e chooseEvt[T]) poll(s Scheduler) (T, bool) {
	for _, i := range rand.Perm(len(e.evs)) {
		if v, ok := e.evs[i].poll(s); ok {
			return v, true
		}
	}
	var zero T
	return zero, false
}

func (e chooseEvt[T]) block(s Scheduler, w commitRef[T]) blockRes[T] {
	if !e.selectable() {
		panic("cml: send events cannot appear under Choose in this prototype" +
			" (the Fig. 5 protocol supports receive-side choice; see package doc)")
	}
	for _, i := range rand.Perm(len(e.evs)) {
		if r := e.evs[i].block(s, w); r.kind != parked {
			return r
		}
	}
	return blockRes[T]{kind: parked}
}

// --------------------------------------------------------------- channel

// csndr is a blocked sender: an unconditional rendezvous offer.
type csndr[T any] struct {
	val    T
	resume func()
	id     int
}

// crcvr is a blocked receiver: guarded by the receiver's committed lock.
type crcvr[T any] struct {
	committed core.Lock
	resume    func(T)
	id        int
}

// Chan is a CML synchronous channel.
type Chan[T any] struct {
	lk    core.Lock
	sndrs queue.Queue[csndr[T]]
	rcvrs queue.Queue[crcvr[T]]
}

// NewChan creates a channel (CML: channel()).
func NewChan[T any]() *Chan[T] {
	return &Chan[T]{
		lk:    core.NewMutexLock(),
		sndrs: queue.NewFifo[csndr[T]](),
		rcvrs: queue.NewFifo[crcvr[T]](),
	}
}

type recvEvt[T any] struct{ ch *Chan[T] }

// RecvEvt returns the event of receiving a value from ch (CML: recvEvt).
func (ch *Chan[T]) RecvEvt() Event[T] { return recvEvt[T]{ch} }

func (e recvEvt[T]) force(Scheduler) Event[T] { return e }
func (e recvEvt[T]) selectable() bool         { return true }

func (e recvEvt[T]) poll(s Scheduler) (T, bool) {
	mRecvs.Inc(s.ID())
	ch := e.ch
	ch.lk.Lock()
	snd, err := ch.sndrs.Deq()
	ch.lk.Unlock()
	if err != nil {
		var zero T
		return zero, false
	}
	// Blocked senders are unconditional offers: taking one commits it.
	// The resume hook reschedules the sender's continuation itself.
	snd.resume()
	return snd.val, true
}

func (e recvEvt[T]) block(s Scheduler, w commitRef[T]) blockRes[T] {
	ch := e.ch
	ch.lk.Lock()
	if snd, err := ch.sndrs.Deq(); err == nil {
		if w.committed == nil || w.committed.TryLock() {
			ch.lk.Unlock()
			snd.resume()
			return blockRes[T]{kind: committedNow, val: snd.val}
		}
		// Some other branch already committed us; put the sender back.
		mAborts.Inc(w.id)
		ch.sndrs.Enq(snd)
		ch.lk.Unlock()
		return blockRes[T]{kind: already}
	}
	ch.rcvrs.Enq(crcvr[T]{committed: w.committed, resume: w.resume, id: w.id})
	ch.lk.Unlock()
	return blockRes[T]{kind: parked}
}

type sendEvt[T any] struct {
	ch *Chan[T]
	v  T
}

// SendEvt returns the event of sending v on ch (CML: sendEvt).  It may be
// synchronized alone but not combined under Choose; see the package doc.
func (ch *Chan[T]) SendEvt(v T) Event[core.Unit] { return sendEvt[T]{ch, v} }

func (e sendEvt[T]) force(Scheduler) Event[core.Unit] { return e }
func (e sendEvt[T]) selectable() bool                 { return false }

func (e sendEvt[T]) poll(s Scheduler) (core.Unit, bool) {
	self := s.ID()
	mSends.Inc(self)
	ch := e.ch
	ch.lk.Lock()
	for {
		r, err := ch.rcvrs.Deq()
		if err != nil {
			ch.lk.Unlock()
			return core.Unit{}, false
		}
		if r.committed == nil || r.committed.TryLock() {
			ch.lk.Unlock()
			r.resume(e.v)
			return core.Unit{}, true
		}
		// Stale receiver entry (committed via another channel): discard.
		mAborts.Inc(self)
	}
}

func (e sendEvt[T]) block(s Scheduler, w commitRef[core.Unit]) blockRes[core.Unit] {
	ch := e.ch
	ch.lk.Lock()
	for {
		r, err := ch.rcvrs.Deq()
		if err != nil {
			break
		}
		if r.committed == nil || r.committed.TryLock() {
			ch.lk.Unlock()
			r.resume(e.v)
			return blockRes[core.Unit]{kind: committedNow, val: core.Unit{}}
		}
		mAborts.Inc(w.id)
	}
	resume := w.resume
	ch.sndrs.Enq(csndr[T]{val: e.v, resume: func() { resume(core.Unit{}) }, id: w.id})
	ch.lk.Unlock()
	return blockRes[core.Unit]{kind: parked}
}

// Send sends v on the channel, blocking until it is received (CML: send).
func (ch *Chan[T]) Send(s Scheduler, v T) { Sync(s, ch.SendEvt(v)) }

// Recv receives a value from the channel, blocking until one is sent
// (CML: recv).
func (ch *Chan[T]) Recv(s Scheduler) T { return Sync(s, ch.RecvEvt()) }

// Spawn forks a new CML thread (CML: spawn).
func Spawn(s interface{ Fork(func()) }, f func()) { s.Fork(f) }
