package cml

import (
	"sync/atomic"
	"testing"
)

// These tests target the commit-protocol corner cases: stale entries,
// already-committed branches, and choices racing across cell kinds.

func TestChooseIVarLoserEntriesAreStale(t *testing.T) {
	// A chooser parked on two IVars commits via the first Put; the second
	// IVar's Put must skip the stale entry without resuming anyone twice.
	s := newSys(2)
	var resumed atomic.Int32
	s.Run(func() {
		a, b := NewIVar[int](), NewIVar[int]()
		s.Fork(func() {
			Select(s, a.ReadEvt(), b.ReadEvt())
			resumed.Add(1)
		})
		s.Yield() // park the chooser on both
		a.Put(s, 1)
		b.Put(s, 2) // must find a stale waiter and drop it
		// A fresh reader of b still sees the value.
		if b.Read(s) != 2 {
			t.Error("b lost its value")
		}
	})
	if resumed.Load() != 1 {
		t.Fatalf("chooser resumed %d times", resumed.Load())
	}
}

func TestMVarStaleTakerSkipped(t *testing.T) {
	// A chooser parked on an MVar and a channel commits via the channel;
	// a later Put must skip the stale taker and keep the value for the
	// next real taker.
	s := newSys(2)
	var got int
	s.Run(func() {
		mv := NewMVar[int]()
		ch := NewChan[int]()
		s.Fork(func() {
			Select(s, mv.TakeEvt(), ch.RecvEvt())
		})
		s.Yield()
		ch.Send(s, 5) // chooser commits via the channel
		mv.Put(s, 9)  // stale taker skipped; value stored
		got = mv.Take(s)
	})
	if got != 9 {
		t.Fatalf("got %d, want 9 (value lost to a stale taker)", got)
	}
}

func TestMailboxStaleWaiterSkipped(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		mb := NewMailbox[int]()
		ch := NewChan[int]()
		s.Fork(func() {
			Select(s, mb.RecvEvt(), ch.RecvEvt())
		})
		s.Yield()
		ch.Send(s, 1) // chooser commits via the channel
		mb.Send(s, 7) // stale waiter skipped; buffered instead
		got = mb.Recv(s)
	})
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestIVarManyChoosersAllResumeOnPut(t *testing.T) {
	// IVar reads are non-destructive: every parked chooser whose choice
	// has not committed elsewhere gets the value from one Put.
	s := newSys(4)
	var sum atomic.Int64
	s.Run(func() {
		iv := NewIVar[int]()
		dead := NewChan[int]() // never-ready alternative
		for i := 0; i < 8; i++ {
			s.Fork(func() {
				sum.Add(int64(Select(s, iv.ReadEvt(), dead.RecvEvt())))
			})
		}
		s.Yield()
		iv.Put(s, 3)
	})
	if sum.Load() != 24 {
		t.Fatalf("sum = %d, want 24", sum.Load())
	}
}

func TestNeverAloneDeadlocksQuietly(t *testing.T) {
	// Sync(Never) parks forever; the program quiesces with the thread
	// still parked — the documented Go-level behaviour for abandoned
	// threads.
	s := newSys(2)
	reached := false
	s.Run(func() {
		s.Fork(func() {
			Sync(s, Never[int]())
			t.Error("Never synchronized")
		})
		reached = true
	})
	if !reached {
		t.Fatal("root did not complete")
	}
}

func TestWrapPollFalsePath(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		ch := NewChan[int]()
		ev := Wrap(ch.RecvEvt(), func(v int) int { return v * 2 })
		// Nothing ready: Sync must take the block path, then commit when
		// the sender arrives.
		s.Fork(func() { got = Sync(s, ev) })
		s.Yield()
		ch.Send(s, 21)
	})
	if got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestGuardSelectable(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		ch := NewChan[int]()
		ev := Guard(func() Event[int] { return ch.RecvEvt() })
		s.Fork(func() { got = Select(s, ev, Never[int]()) })
		s.Yield()
		ch.Send(s, 11)
	})
	if got != 11 {
		t.Fatalf("got %d", got)
	}
}

func TestAlwaysUnderChooseWhileBlocked(t *testing.T) {
	// Choose(never-ready channel, Always) must commit to Always even in
	// the block phase walk order; run many times to cover both orders.
	for i := 0; i < 10; i++ {
		s := newSys(1)
		s.Run(func() {
			ch := NewChan[int]()
			if v := Select(s, ch.RecvEvt(), Always(9)); v != 9 {
				t.Fatalf("got %d", v)
			}
		})
	}
}
