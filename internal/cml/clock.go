package cml

import (
	"math"

	"repro/internal/core"
	"repro/internal/spinlock"
)

// Clock is a virtual clock providing CML's timeout events (timeOutEvt /
// atTimeEvt) without wall time: the MP platform has no timers — the
// paper's runtime used Unix alarms, which the Go layer cannot deliver
// asynchronously — so time is advanced explicitly by the program (for
// instance from a scheduler tick or a driver loop), keeping every test
// and simulation deterministic.
//
// Advance is the serving pumps' per-tick hot path, so wakeups are
// coalesced: the clock tracks the earliest parked deadline, an Advance
// that reaches no deadline is a single O(1) spinlock critical section
// (no waiter scan), and an Advance that does cross deadlines fires every
// due waiter in one scan — N expiring deadlines cost one Advance, not N.
type Clock struct {
	lk      spinlock.Lock
	now     int64
	next    int64 // earliest parked deadline (may be stale low, never high)
	waiters []clockWaiter
}

type clockWaiter struct {
	deadline int64
	w        crcvr[int64]
}

// NewClock returns a clock at time zero.
func NewClock() *Clock {
	return &Clock{lk: core.NewMutexLock(), next: math.MaxInt64}
}

// Now returns the current virtual time.
func (c *Clock) Now() int64 {
	c.lk.Lock()
	defer c.lk.Unlock()
	return c.now
}

// Advance moves the clock forward by d ticks and fires every due timeout
// event (waiters whose choices already committed elsewhere are
// discarded, per the Fig. 5 protocol).
func (c *Clock) Advance(s Scheduler, d int64) {
	if d < 0 {
		panic("cml: clock cannot run backwards")
	}
	c.lk.Lock()
	c.now += d
	now := c.now
	if now < c.next {
		// Nothing is due (next may be stale low after committed-elsewhere
		// drops, but never high): the common per-tick Advance is O(1).
		c.lk.Unlock()
		return
	}
	var due []crcvr[int64]
	next := int64(math.MaxInt64)
	remaining := c.waiters[:0]
	for _, cw := range c.waiters {
		if cw.deadline <= now {
			if cw.w.committed == nil || cw.w.committed.TryLock() {
				due = append(due, cw.w)
			}
			// Committed-elsewhere waiters are dropped either way.
		} else {
			if cw.deadline < next {
				next = cw.deadline
			}
			remaining = append(remaining, cw)
		}
	}
	c.waiters = remaining
	c.next = next
	c.lk.Unlock()
	for _, w := range due {
		w.resume(now)
	}
}

type atEvt struct {
	c        *Clock
	deadline int64
}

// AtEvt returns the event of the clock reaching the absolute time t; it
// yields the clock value at commit (CML: atTimeEvt).
func (c *Clock) AtEvt(t int64) Event[int64] { return atEvt{c: c, deadline: t} }

// AfterEvt returns the event of d more ticks passing (CML: timeOutEvt).
// The deadline is fixed when the event is synchronized, via Guard.
func (c *Clock) AfterEvt(d int64) Event[int64] {
	return Guard(func() Event[int64] { return c.AtEvt(c.Now() + d) })
}

func (e atEvt) force(Scheduler) Event[int64] { return e }
func (e atEvt) selectable() bool             { return true }

func (e atEvt) poll(Scheduler) (int64, bool) {
	e.c.lk.Lock()
	now := e.c.now
	e.c.lk.Unlock()
	return now, now >= e.deadline
}

func (e atEvt) block(s Scheduler, w commitRef[int64]) blockRes[int64] {
	c := e.c
	c.lk.Lock()
	if c.now >= e.deadline {
		now := c.now
		if w.committed == nil || w.committed.TryLock() {
			c.lk.Unlock()
			return blockRes[int64]{kind: committedNow, val: now}
		}
		c.lk.Unlock()
		return blockRes[int64]{kind: already}
	}
	c.waiters = append(c.waiters, clockWaiter{
		deadline: e.deadline,
		w:        crcvr[int64]{committed: w.committed, resume: w.resume, id: w.id},
	})
	if e.deadline < c.next {
		c.next = e.deadline
	}
	c.lk.Unlock()
	return blockRes[int64]{kind: parked}
}
