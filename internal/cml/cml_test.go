package cml

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/threads"
)

func newSys(procs int) *threads.System {
	return threads.New(proc.New(procs), threads.Options{})
}

func TestSendRecv(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		ch := NewChan[int]()
		s.Fork(func() { ch.Send(s, 5) })
		got = ch.Recv(s)
	})
	if got != 5 {
		t.Fatalf("got %d", got)
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		ch := NewChan[int]()
		s.Fork(func() { got = ch.Recv(s) })
		s.Yield()
		ch.Send(s, 9)
	})
	if got != 9 {
		t.Fatalf("got %d", got)
	}
}

func TestAlways(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		if v := Sync(s, Always(3)); v != 3 {
			t.Errorf("Always = %d", v)
		}
	})
}

func TestWrap(t *testing.T) {
	s := newSys(2)
	var got string
	s.Run(func() {
		ch := NewChan[int]()
		s.Fork(func() { ch.Send(s, 4) })
		got = Sync(s, Wrap(ch.RecvEvt(), func(v int) string {
			if v == 4 {
				return "four"
			}
			return "other"
		}))
	})
	if got != "four" {
		t.Fatalf("got %q", got)
	}
}

func TestGuardEvaluatedPerSync(t *testing.T) {
	s := newSys(1)
	var evals atomic.Int32
	s.Run(func() {
		ev := Guard(func() Event[int] {
			evals.Add(1)
			return Always(int(evals.Load()))
		})
		if v := Sync(s, ev); v != 1 {
			t.Errorf("first sync = %d", v)
		}
		if v := Sync(s, ev); v != 2 {
			t.Errorf("second sync = %d (guard not re-evaluated)", v)
		}
	})
}

func TestChooseTakesReadyBranch(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		a, b := NewChan[int](), NewChan[int]()
		s.Fork(func() { a.Send(s, 1) })
		s.Yield() // let the sender park on a
		got = Select(s, a.RecvEvt(), b.RecvEvt())
	})
	if got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestChooseBlocksThenCommitsOnce(t *testing.T) {
	// A chooser parked on two channels is resumed exactly once even when
	// senders arrive on both; the losing send must be received later.
	for round := 0; round < 20; round++ {
		s := newSys(4)
		var first, second int
		s.Run(func() {
			a, b := NewChan[int](), NewChan[int]()
			s.Fork(func() { a.Send(s, 1) })
			s.Fork(func() { b.Send(s, 2) })
			first = Select(s, a.RecvEvt(), b.RecvEvt())
			second = Select(s, a.RecvEvt(), b.RecvEvt())
		})
		if first+second != 3 {
			t.Fatalf("round %d: got %d then %d", round, first, second)
		}
	}
}

func TestChooseWithNeverIgnoresNever(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		ch := NewChan[int]()
		s.Fork(func() { ch.Send(s, 8) })
		got = Select(s, Never[int](), ch.RecvEvt(), Never[int]())
	})
	if got != 8 {
		t.Fatalf("got %d", got)
	}
}

func TestChooseWithAlwaysNeverBlocks(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		ch := NewChan[int]()
		if v := Select(s, ch.RecvEvt(), Always(42)); v != 42 {
			t.Errorf("got %d", v)
		}
	})
}

func TestSendEvtUnderChoosePanics(t *testing.T) {
	s := newSys(2)
	s.Run(func() {
		ch := NewChan[int]()
		defer func() {
			if recover() == nil {
				t.Error("Choose over SendEvt did not panic")
			}
		}()
		// No receiver exists, so the choice must reach the block phase,
		// where the restriction is enforced.
		Select(s, ch.SendEvt(1), Wrap(ch.SendEvt(2), func(core.Unit) core.Unit { return core.Unit{} }))
	})
}

func TestManyToOneChannel(t *testing.T) {
	const n = 100
	s := newSys(4)
	var sum atomic.Int64
	s.Run(func() {
		ch := NewChan[int]()
		for i := 1; i <= n; i++ {
			i := i
			s.Fork(func() { ch.Send(s, i) })
		}
		for i := 0; i < n; i++ {
			sum.Add(int64(ch.Recv(s)))
		}
	})
	if want := int64(n * (n + 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestExactlyOnceUnderContention(t *testing.T) {
	const n = 150
	s := newSys(4)
	var delivered atomic.Int64
	s.Run(func() {
		a, b := NewChan[int](), NewChan[int]()
		for i := 0; i < n; i++ {
			i := i
			if i%2 == 0 {
				s.Fork(func() { a.Send(s, i) })
			} else {
				s.Fork(func() { b.Send(s, i) })
			}
		}
		for i := 0; i < n; i++ {
			s.Fork(func() {
				Select(s, a.RecvEvt(), b.RecvEvt())
				delivered.Add(1)
			})
		}
	})
	if delivered.Load() != n {
		t.Fatalf("delivered = %d, want %d", delivered.Load(), n)
	}
}

func TestIVar(t *testing.T) {
	s := newSys(4)
	var sum atomic.Int64
	s.Run(func() {
		iv := NewIVar[int]()
		for i := 0; i < 10; i++ {
			s.Fork(func() { sum.Add(int64(iv.Read(s))) })
		}
		s.Yield()
		iv.Put(s, 7)
		// Late reader sees the value immediately.
		sum.Add(int64(iv.Read(s)))
	})
	if sum.Load() != 77 {
		t.Fatalf("sum = %d, want 77", sum.Load())
	}
}

func TestIVarDoublePutPanics(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		iv := NewIVar[int]()
		iv.Put(s, 1)
		defer func() {
			if recover() == nil {
				t.Error("second Put did not panic")
			}
		}()
		iv.Put(s, 2)
	})
}

func TestMVarHandoff(t *testing.T) {
	s := newSys(4)
	var taken atomic.Int64
	s.Run(func() {
		mv := NewMVar[int]()
		for i := 0; i < 10; i++ {
			s.Fork(func() {
				taken.Add(int64(mv.Take(s)))
			})
		}
		for i := 0; i < 10; i++ {
			mv.Put(s, 1)
			s.Yield()
		}
	})
	if taken.Load() != 10 {
		t.Fatalf("taken = %d, want 10 (each Put consumed exactly once)", taken.Load())
	}
}

func TestMVarPutFullPanics(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		mv := NewMVar[int]()
		mv.Put(s, 1)
		defer func() {
			if recover() == nil {
				t.Error("Put on full MVar did not panic")
			}
		}()
		mv.Put(s, 2)
	})
}

func TestMailboxBuffersWithoutBlocking(t *testing.T) {
	s := newSys(1)
	var got []int
	s.Run(func() {
		mb := NewMailbox[int]()
		for i := 0; i < 5; i++ {
			mb.Send(s, i) // must not block even with no receiver
		}
		for i := 0; i < 5; i++ {
			got = append(got, mb.Recv(s))
		}
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestMailboxSelectable(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		mb := NewMailbox[int]()
		ch := NewChan[int]()
		s.Fork(func() { mb.Send(s, 3) })
		got = Select(s, ch.RecvEvt(), mb.RecvEvt())
	})
	if got != 3 {
		t.Fatalf("got %d", got)
	}
}

func TestChooseOverCellKinds(t *testing.T) {
	// Mixed choice across an ivar, an mvar, a mailbox and a channel.
	s := newSys(2)
	var got string
	s.Run(func() {
		iv := NewIVar[string]()
		mv := NewMVar[string]()
		mb := NewMailbox[string]()
		ch := NewChan[string]()
		s.Fork(func() { mv.Put(s, "mvar") })
		s.Yield()
		got = Select(s,
			iv.ReadEvt(), mv.TakeEvt(), mb.RecvEvt(), ch.RecvEvt())
	})
	if got != "mvar" {
		t.Fatalf("got %q", got)
	}
}

func TestSwapViaWrapGuard(t *testing.T) {
	// The classic CML swap-channel built from guard+wrap+choose on two
	// plain channels... simplified to a guarded wrapped receive.
	s := newSys(2)
	var got int
	s.Run(func() {
		ch := NewChan[int]()
		ev := Guard(func() Event[int] {
			return Wrap(ch.RecvEvt(), func(v int) int { return v * 10 })
		})
		s.Fork(func() { ch.Send(s, 7) })
		got = Sync(s, ev)
	})
	if got != 70 {
		t.Fatalf("got %d, want 70", got)
	}
}
