package cml

import (
	"sync/atomic"
	"testing"
)

func TestClockAdvancesAndFires(t *testing.T) {
	s := newSys(2)
	var firedAt int64
	s.Run(func() {
		c := NewClock()
		s.Fork(func() { firedAt = Sync(s, c.AtEvt(10)) })
		s.Yield() // park the waiter
		c.Advance(s, 4)
		if firedAt != 0 {
			t.Error("fired early")
		}
		c.Advance(s, 6) // reaches 10
		s.Yield()
	})
	if firedAt != 10 {
		t.Fatalf("fired at %d, want 10", firedAt)
	}
}

func TestClockPastDeadlinePollsImmediately(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		c := NewClock()
		c.Advance(s, 100)
		if v := Sync(s, c.AtEvt(50)); v != 100 {
			t.Errorf("got %d, want 100 (current time at commit)", v)
		}
	})
}

func TestTimeoutInChoiceFiresWhenChannelSilent(t *testing.T) {
	s := newSys(2)
	var got string
	s.Run(func() {
		c := NewClock()
		ch := NewChan[string]()
		s.Fork(func() {
			got = Select(s,
				ch.RecvEvt(),
				Wrap(c.AfterEvt(5), func(int64) string { return "timeout" }))
		})
		s.Yield()
		c.Advance(s, 5)
	})
	if got != "timeout" {
		t.Fatalf("got %q, want timeout", got)
	}
}

func TestTimeoutInChoiceLosesToData(t *testing.T) {
	s := newSys(2)
	var got string
	s.Run(func() {
		c := NewClock()
		ch := NewChan[string]()
		s.Fork(func() {
			got = Select(s,
				ch.RecvEvt(),
				Wrap(c.AfterEvt(5), func(int64) string { return "timeout" }))
		})
		s.Yield()
		ch.Send(s, "data")
		c.Advance(s, 100) // late ticks must not double-resume the chooser
	})
	if got != "data" {
		t.Fatalf("got %q, want data", got)
	}
}

func TestManyTimersFireInOneAdvance(t *testing.T) {
	s := newSys(4)
	var fired atomic.Int32
	s.Run(func() {
		c := NewClock()
		for i := 1; i <= 10; i++ {
			i := i
			s.Fork(func() {
				Sync(s, c.AtEvt(int64(i)))
				fired.Add(1)
			})
		}
		s.Yield()
		c.Advance(s, 10) // all deadlines due at once
	})
	if fired.Load() != 10 {
		t.Fatalf("fired = %d, want 10", fired.Load())
	}
}

// TestClockNextTrackingAcrossPartialFires exercises the coalesced-wakeup
// bookkeeping: after a scan fires only the due waiters, the recomputed
// earliest deadline must still fire the survivors, and a waiter parked
// after the scan must pull the horizon back in.  One proc keeps the
// interleaving deterministic: each Yield runs the forked waiters to
// their park points before the main thread resumes.
func TestClockNextTrackingAcrossPartialFires(t *testing.T) {
	s := newSys(1)
	var at5, at10, at7 int64
	s.Run(func() {
		c := NewClock()
		s.Fork(func() { at5 = Sync(s, c.AtEvt(5)) })
		s.Fork(func() { at10 = Sync(s, c.AtEvt(10)) })
		s.Yield()
		c.Advance(s, 3) // 3: nothing due, O(1) early return
		c.Advance(s, 3) // 6: fires the 5-deadline, next becomes 10
		s.Yield()
		if at5 != 6 || at10 != 0 {
			t.Errorf("after t=6: at5=%d at10=%d, want 6 and 0", at5, at10)
		}
		if v := Sync(s, c.AtEvt(4)); v != 6 { // already past: commits at once
			t.Errorf("past-deadline sync at t=6 got %d, want 6", v)
		}
		s.Fork(func() { at7 = Sync(s, c.AtEvt(8)) }) // parks, pulls next from 10 to 8
		s.Yield()
		c.Advance(s, 2) // 8: fires the new waiter, not the 10
		s.Yield()
		if at7 != 8 || at10 != 0 {
			t.Errorf("after t=8: at7=%d at10=%d, want 8 and 0", at7, at10)
		}
		c.Advance(s, 2) // 10
		s.Yield()
	})
	if at10 != 10 {
		t.Fatalf("at10 = %d, want 10", at10)
	}
}

func TestAfterEvtDeadlineFixedAtSync(t *testing.T) {
	s := newSys(2)
	var a, b int64
	s.Run(func() {
		c := NewClock()
		ev := c.AfterEvt(3) // guard: deadline = now+3 at each Sync
		s.Fork(func() { a = Sync(s, ev) })
		s.Yield()
		c.Advance(s, 3) // fires at 3
		s.Yield()
		s.Fork(func() { b = Sync(s, ev) })
		s.Yield()
		c.Advance(s, 3) // second sync fixed deadline 3+3=6
		s.Yield()
	})
	if a != 3 || b != 6 {
		t.Fatalf("a=%d b=%d, want 3 and 6", a, b)
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		c := NewClock()
		defer func() {
			if recover() == nil {
				t.Error("negative Advance did not panic")
			}
		}()
		c.Advance(s, -1)
	})
}
