package cml

import (
	"sync/atomic"
	"testing"
)

func TestClockAdvancesAndFires(t *testing.T) {
	s := newSys(2)
	var firedAt int64
	s.Run(func() {
		c := NewClock()
		s.Fork(func() { firedAt = Sync(s, c.AtEvt(10)) })
		s.Yield() // park the waiter
		c.Advance(s, 4)
		if firedAt != 0 {
			t.Error("fired early")
		}
		c.Advance(s, 6) // reaches 10
		s.Yield()
	})
	if firedAt != 10 {
		t.Fatalf("fired at %d, want 10", firedAt)
	}
}

func TestClockPastDeadlinePollsImmediately(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		c := NewClock()
		c.Advance(s, 100)
		if v := Sync(s, c.AtEvt(50)); v != 100 {
			t.Errorf("got %d, want 100 (current time at commit)", v)
		}
	})
}

func TestTimeoutInChoiceFiresWhenChannelSilent(t *testing.T) {
	s := newSys(2)
	var got string
	s.Run(func() {
		c := NewClock()
		ch := NewChan[string]()
		s.Fork(func() {
			got = Select(s,
				ch.RecvEvt(),
				Wrap(c.AfterEvt(5), func(int64) string { return "timeout" }))
		})
		s.Yield()
		c.Advance(s, 5)
	})
	if got != "timeout" {
		t.Fatalf("got %q, want timeout", got)
	}
}

func TestTimeoutInChoiceLosesToData(t *testing.T) {
	s := newSys(2)
	var got string
	s.Run(func() {
		c := NewClock()
		ch := NewChan[string]()
		s.Fork(func() {
			got = Select(s,
				ch.RecvEvt(),
				Wrap(c.AfterEvt(5), func(int64) string { return "timeout" }))
		})
		s.Yield()
		ch.Send(s, "data")
		c.Advance(s, 100) // late ticks must not double-resume the chooser
	})
	if got != "data" {
		t.Fatalf("got %q, want data", got)
	}
}

func TestManyTimersFireInOneAdvance(t *testing.T) {
	s := newSys(4)
	var fired atomic.Int32
	s.Run(func() {
		c := NewClock()
		for i := 1; i <= 10; i++ {
			i := i
			s.Fork(func() {
				Sync(s, c.AtEvt(int64(i)))
				fired.Add(1)
			})
		}
		s.Yield()
		c.Advance(s, 10) // all deadlines due at once
	})
	if fired.Load() != 10 {
		t.Fatalf("fired = %d, want 10", fired.Load())
	}
}

func TestAfterEvtDeadlineFixedAtSync(t *testing.T) {
	s := newSys(2)
	var a, b int64
	s.Run(func() {
		c := NewClock()
		ev := c.AfterEvt(3) // guard: deadline = now+3 at each Sync
		s.Fork(func() { a = Sync(s, ev) })
		s.Yield()
		c.Advance(s, 3) // fires at 3
		s.Yield()
		s.Fork(func() { b = Sync(s, ev) })
		s.Yield()
		c.Advance(s, 3) // second sync fixed deadline 3+3=6
		s.Yield()
	})
	if a != 3 || b != 6 {
		t.Fatalf("a=%d b=%d, want 3 and 6", a, b)
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		c := NewClock()
		defer func() {
			if recover() == nil {
				t.Error("negative Advance did not panic")
			}
		}()
		c.Advance(s, -1)
	})
}
