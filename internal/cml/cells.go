package cml

import (
	"repro/internal/core"
	"repro/internal/queue"
)

// IVar is a write-once synchronizing cell (CML: ivar).  Reads before the
// write block; after the write every read yields the value immediately.
type IVar[T any] struct {
	lk      core.Lock
	full    bool
	val     T
	waiters queue.Queue[crcvr[T]]
}

// NewIVar returns an empty IVar.
func NewIVar[T any]() *IVar[T] {
	return &IVar[T]{lk: core.NewMutexLock(), waiters: queue.NewFifo[crcvr[T]]()}
}

// Put writes the IVar exactly once and wakes every parked reader; a second
// Put panics, as iPut raises Put in CML.
func (iv *IVar[T]) Put(s Scheduler, v T) {
	iv.lk.Lock()
	if iv.full {
		iv.lk.Unlock()
		panic("cml: IVar written twice")
	}
	iv.full = true
	iv.val = v
	var wake []crcvr[T]
	for {
		r, err := iv.waiters.Deq()
		if err != nil {
			break
		}
		// IVar reads are non-destructive: every reader whose choice has
		// not already committed elsewhere gets the value.
		if r.committed == nil || r.committed.TryLock() {
			wake = append(wake, r)
		}
	}
	iv.lk.Unlock()
	for _, r := range wake {
		r.resume(v)
	}
}

type ivarReadEvt[T any] struct{ iv *IVar[T] }

// ReadEvt returns the event of reading the IVar (CML: iGetEvt).
func (iv *IVar[T]) ReadEvt() Event[T] { return ivarReadEvt[T]{iv} }

func (e ivarReadEvt[T]) force(Scheduler) Event[T] { return e }
func (e ivarReadEvt[T]) selectable() bool         { return true }

func (e ivarReadEvt[T]) poll(Scheduler) (T, bool) {
	e.iv.lk.Lock()
	full, v := e.iv.full, e.iv.val
	e.iv.lk.Unlock()
	return v, full
}

func (e ivarReadEvt[T]) block(s Scheduler, w commitRef[T]) blockRes[T] {
	iv := e.iv
	iv.lk.Lock()
	if iv.full {
		v := iv.val
		if w.committed == nil || w.committed.TryLock() {
			iv.lk.Unlock()
			return blockRes[T]{kind: committedNow, val: v}
		}
		iv.lk.Unlock()
		return blockRes[T]{kind: already}
	}
	iv.waiters.Enq(crcvr[T]{committed: w.committed, resume: w.resume, id: w.id})
	iv.lk.Unlock()
	return blockRes[T]{kind: parked}
}

// Read synchronizes on ReadEvt.
func (iv *IVar[T]) Read(s Scheduler) T { return Sync(s, iv.ReadEvt()) }

// MVar is a single-slot synchronizing cell with destructive take (CML:
// mvar).
type MVar[T any] struct {
	lk      core.Lock
	full    bool
	val     T
	waiters queue.Queue[crcvr[T]] // parked takers
}

// NewMVar returns an MVar, optionally filled with an initial value.
func NewMVar[T any]() *MVar[T] {
	return &MVar[T]{lk: core.NewMutexLock(), waiters: queue.NewFifo[crcvr[T]]()}
}

// Put fills the MVar, handing the value directly to a parked taker if one
// exists.  Filling a full MVar panics, as mPut raises Put in CML.
func (mv *MVar[T]) Put(s Scheduler, v T) {
	mv.lk.Lock()
	if mv.full {
		mv.lk.Unlock()
		panic("cml: Put on full MVar")
	}
	for {
		r, err := mv.waiters.Deq()
		if err != nil {
			break
		}
		if r.committed == nil || r.committed.TryLock() {
			// Exactly one taker gets the value; the cell stays empty.
			mv.lk.Unlock()
			r.resume(v)
			return
		}
		// Stale taker (committed elsewhere): discard and try the next.
	}
	mv.full = true
	mv.val = v
	mv.lk.Unlock()
}

type mvarTakeEvt[T any] struct{ mv *MVar[T] }

// TakeEvt returns the event of destructively taking the MVar's value
// (CML: mTakeEvt).
func (mv *MVar[T]) TakeEvt() Event[T] { return mvarTakeEvt[T]{mv} }

func (e mvarTakeEvt[T]) force(Scheduler) Event[T] { return e }
func (e mvarTakeEvt[T]) selectable() bool         { return true }

func (e mvarTakeEvt[T]) poll(Scheduler) (T, bool) {
	mv := e.mv
	mv.lk.Lock()
	if !mv.full {
		mv.lk.Unlock()
		var zero T
		return zero, false
	}
	v := mv.val
	var zero T
	mv.val, mv.full = zero, false
	mv.lk.Unlock()
	return v, true
}

func (e mvarTakeEvt[T]) block(s Scheduler, w commitRef[T]) blockRes[T] {
	mv := e.mv
	mv.lk.Lock()
	if mv.full {
		if w.committed == nil || w.committed.TryLock() {
			v := mv.val
			var zero T
			mv.val, mv.full = zero, false
			mv.lk.Unlock()
			return blockRes[T]{kind: committedNow, val: v}
		}
		mv.lk.Unlock()
		return blockRes[T]{kind: already}
	}
	mv.waiters.Enq(crcvr[T]{committed: w.committed, resume: w.resume, id: w.id})
	mv.lk.Unlock()
	return blockRes[T]{kind: parked}
}

// Take synchronizes on TakeEvt.
func (mv *MVar[T]) Take(s Scheduler) T { return Sync(s, mv.TakeEvt()) }

// Mailbox is an unbounded buffered channel (CML: mailbox): sends never
// block; receives are selectable events.
type Mailbox[T any] struct {
	lk      core.Lock
	buf     queue.Queue[T]
	waiters queue.Queue[crcvr[T]]
}

// NewMailbox returns an empty mailbox.
func NewMailbox[T any]() *Mailbox[T] {
	return &Mailbox[T]{
		lk:      core.NewMutexLock(),
		buf:     queue.NewFifo[T](),
		waiters: queue.NewFifo[crcvr[T]](),
	}
}

// Send deposits v without blocking (CML: send for mailboxes).
func (mb *Mailbox[T]) Send(s Scheduler, v T) {
	mb.lk.Lock()
	for {
		r, err := mb.waiters.Deq()
		if err != nil {
			break
		}
		if r.committed == nil || r.committed.TryLock() {
			mb.lk.Unlock()
			r.resume(v)
			return
		}
	}
	mb.buf.Enq(v)
	mb.lk.Unlock()
}

type mbRecvEvt[T any] struct{ mb *Mailbox[T] }

// RecvEvt returns the event of receiving from the mailbox (CML: recvEvt
// for mailboxes).
func (mb *Mailbox[T]) RecvEvt() Event[T] { return mbRecvEvt[T]{mb} }

func (e mbRecvEvt[T]) force(Scheduler) Event[T] { return e }
func (e mbRecvEvt[T]) selectable() bool         { return true }

func (e mbRecvEvt[T]) poll(Scheduler) (T, bool) {
	mb := e.mb
	mb.lk.Lock()
	v, err := mb.buf.Deq()
	mb.lk.Unlock()
	return v, err == nil
}

func (e mbRecvEvt[T]) block(s Scheduler, w commitRef[T]) blockRes[T] {
	mb := e.mb
	mb.lk.Lock()
	if v, err := mb.buf.Deq(); err == nil {
		if w.committed == nil || w.committed.TryLock() {
			mb.lk.Unlock()
			return blockRes[T]{kind: committedNow, val: v}
		}
		mb.buf.Enq(v) // not ours to take; we are already committed
		mb.lk.Unlock()
		return blockRes[T]{kind: already}
	}
	mb.waiters.Enq(crcvr[T]{committed: w.committed, resume: w.resume, id: w.id})
	mb.lk.Unlock()
	return blockRes[T]{kind: parked}
}

// Recv synchronizes on RecvEvt.
func (mb *Mailbox[T]) Recv(s Scheduler) T { return Sync(s, mb.RecvEvt()) }
