package cml

import (
	"repro/internal/core"
	"repro/internal/queue"
	"repro/internal/spinlock"
)

// SwapChan is CML's swap channel: a symmetric rendezvous where both
// parties offer a value and receive their partner's.  The classic CML
// construction guards a choice of send and receive events; that needs
// the symmetric-choice protocol this prototype deliberately omits
// (package doc), so SwapChan implements the rendezvous directly with the
// same offer-queue discipline the Fig. 5 channels use.  Swap is a
// synchronous operation, not a selectable event.
type SwapChan[T any] struct {
	lk     spinlock.Lock
	offers queue.Queue[swapOffer[T]]
}

type swapOffer[T any] struct {
	val    T
	resume func(T)
	id     int
}

// NewSwapChan creates a swap channel.
func NewSwapChan[T any]() *SwapChan[T] {
	return &SwapChan[T]{lk: core.NewMutexLock(), offers: queue.NewFifo[swapOffer[T]]()}
}

// Swap offers v and blocks until a partner arrives; it returns the
// partner's value, and the partner receives v.
func (sc *SwapChan[T]) Swap(s Scheduler, v T) T {
	return Sync(s, swapEvt[T]{sc: sc, v: v})
}

// swapEvt is the internal non-selectable event backing Swap.  An offer
// behaves like a blocked sender whose resume hook delivers the partner's
// value; the block phase re-checks the offer queue under the lock before
// parking (the standard recheck-then-park that prevents lost wakeups).
type swapEvt[T any] struct {
	sc *SwapChan[T]
	v  T
}

func (e swapEvt[T]) force(Scheduler) Event[T] { return e }
func (e swapEvt[T]) selectable() bool         { return false }

func (e swapEvt[T]) poll(s Scheduler) (T, bool) {
	sc := e.sc
	sc.lk.Lock()
	if o, err := sc.offers.Deq(); err == nil {
		sc.lk.Unlock()
		o.resume(e.v)
		return o.val, true
	}
	sc.lk.Unlock()
	var zero T
	return zero, false
}

func (e swapEvt[T]) block(s Scheduler, w commitRef[T]) blockRes[T] {
	sc := e.sc
	sc.lk.Lock()
	if o, err := sc.offers.Deq(); err == nil {
		sc.lk.Unlock()
		o.resume(e.v)
		return blockRes[T]{kind: committedNow, val: o.val}
	}
	sc.offers.Enq(swapOffer[T]{val: e.v, resume: w.resume, id: w.id})
	sc.lk.Unlock()
	return blockRes[T]{kind: parked}
}

// Multicast is CML's multicast channel: every port attached to the
// channel receives every message sent after the port was created.
type Multicast[T any] struct {
	lk    spinlock.Lock
	ports []*Mailbox[T]
}

// NewMulticast creates a multicast channel with no ports.
func NewMulticast[T any]() *Multicast[T] {
	return &Multicast[T]{lk: core.NewMutexLock()}
}

// Port attaches a new receive port; it sees messages sent from now on.
func (mc *Multicast[T]) Port() *Mailbox[T] {
	p := NewMailbox[T]()
	mc.lk.Lock()
	mc.ports = append(mc.ports, p)
	mc.lk.Unlock()
	return p
}

// Send delivers v to every port without blocking (ports buffer).
func (mc *Multicast[T]) Send(s Scheduler, v T) {
	mc.lk.Lock()
	ports := append([]*Mailbox[T](nil), mc.ports...)
	mc.lk.Unlock()
	for _, p := range ports {
		p.Send(s, v)
	}
}
