package threads

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/queue"
	"repro/internal/spinlock"
	"repro/internal/trace"
)

func newSys(maxProcs int, opts Options) *System {
	return New(proc.New(maxProcs), opts)
}

func TestForkRunsChildExactlyOnce(t *testing.T) {
	for _, dist := range []bool{false, true} {
		s := newSys(4, Options{Distributed: dist})
		var ran atomic.Int32
		s.Run(func() {
			for i := 0; i < 50; i++ {
				s.Fork(func() { ran.Add(1) })
			}
		})
		if ran.Load() != 50 {
			t.Fatalf("distributed=%v: ran = %d, want 50", dist, ran.Load())
		}
	}
}

func TestThreadIDsUnique(t *testing.T) {
	s := newSys(4, Options{})
	var mu spinlock.Lock = spinlock.NewTTAS()
	seen := map[int]int{}
	s.Run(func() {
		for i := 0; i < 40; i++ {
			s.Fork(func() {
				id := s.ID()
				mu.Lock()
				seen[id]++
				mu.Unlock()
			})
		}
	})
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("thread id %d observed %d times", id, n)
		}
	}
	if len(seen) != 40 {
		t.Fatalf("saw %d distinct ids, want 40", len(seen))
	}
}

func TestYieldInterleaves(t *testing.T) {
	// On a single proc, two threads alternating yields must interleave.
	s := newSys(1, Options{})
	var trace []int
	s.Run(func() {
		s.Fork(func() {
			for i := 0; i < 3; i++ {
				trace = append(trace, 1)
				s.Yield()
			}
		})
		// Fork with a full platform (1 proc) queues the parent, so the
		// child runs first; when the child yields, the parent resumes.
		for i := 0; i < 3; i++ {
			trace = append(trace, 2)
			s.Yield()
		}
	})
	ones, twos := 0, 0
	for _, v := range trace {
		if v == 1 {
			ones++
		} else {
			twos++
		}
	}
	if ones != 3 || twos != 3 {
		t.Fatalf("trace = %v", trace)
	}
	// Strict alternation is not required by the spec, but FIFO scheduling
	// on one proc gives it; check no thread ran twice in a row.
	for i := 1; i < len(trace); i++ {
		if trace[i] == trace[i-1] {
			t.Fatalf("no interleaving: trace = %v", trace)
		}
	}
}

func TestManyThreadsFewProcs(t *testing.T) {
	// Hundreds of threads on a handful of procs — the paper's
	// "hundreds or even thousands of continuation-based threads".
	s := newSys(4, Options{})
	const n = 500
	var sum atomic.Int64
	s.Run(func() {
		for i := 0; i < n; i++ {
			i := i
			s.Fork(func() {
				s.Yield()
				sum.Add(int64(i))
			})
		}
	})
	want := int64(n * (n - 1) / 2)
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForkUsesIdleProcs(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	s := newSys(2, Options{})
	var peak atomic.Int32
	var cur atomic.Int32
	s.Run(func() {
		done := make(chan struct{})
		s.Fork(func() {
			n := cur.Add(1)
			for peak.Load() < n {
				peak.Store(n)
			}
			<-done
			cur.Add(-1)
		})
		n := cur.Add(1)
		for peak.Load() < n {
			peak.Store(n)
		}
		close(done)
		cur.Add(-1)
	})
	if peak.Load() != 2 {
		t.Fatalf("peak concurrency = %d, want 2 (fork should acquire the idle proc)", peak.Load())
	}
}

func TestSchedulingPolicyIsPluggable(t *testing.T) {
	// A chain of nested forks parks each ancestor on the ready queue; the
	// order ancestors resume in is exactly the queue discipline, so FIFO
	// and LIFO must produce different, fully deterministic traces.
	order := func(mk queue.Factory[Entry]) []int {
		s := New(proc.New(1), Options{NewQueue: mk})
		var got []int
		var chain func(i int)
		chain = func(i int) {
			if i < 3 {
				s.Fork(func() { chain(i + 1) })
			}
			got = append(got, i)
		}
		s.Run(func() { chain(0) })
		return got
	}
	fifo := order(queue.NewFifo[Entry])
	lifo := order(queue.NewLifo[Entry])
	wantFifo := []int{3, 0, 1, 2}
	wantLifo := []int{3, 2, 1, 0}
	for i := range wantFifo {
		if fifo[i] != wantFifo[i] {
			t.Fatalf("fifo trace = %v, want %v", fifo, wantFifo)
		}
		if lifo[i] != wantLifo[i] {
			t.Fatalf("lifo trace = %v, want %v", lifo, wantLifo)
		}
	}
}

func TestDistributedStealing(t *testing.T) {
	s := newSys(4, Options{Distributed: true})
	var ran atomic.Int32
	s.Run(func() {
		for i := 0; i < 200; i++ {
			s.Fork(func() {
				s.Yield()
				ran.Add(1)
			})
		}
	})
	if ran.Load() != 200 {
		t.Fatalf("ran = %d, want 200", ran.Load())
	}
}

func TestPreemption(t *testing.T) {
	s := newSys(2, Options{Quantum: time.Millisecond})
	var spun atomic.Int64
	s.Run(func() {
		for i := 0; i < 4; i++ {
			s.Fork(func() {
				deadline := time.Now().Add(50 * time.Millisecond)
				for time.Now().Before(deadline) {
					spun.Add(1)
					s.CheckPreempt()
				}
			})
		}
	})
	if got := s.Stats().Preempts; got == 0 {
		t.Fatalf("no preemptions after %d iterations", spun.Load())
	}
}

func TestStatsCount(t *testing.T) {
	s := newSys(2, Options{})
	s.Run(func() {
		for i := 0; i < 10; i++ {
			s.Fork(func() { s.Yield() })
		}
	})
	st := s.Stats()
	if st.Forks != 10 {
		t.Errorf("forks = %d, want 10", st.Forks)
	}
	if st.Yields < 10 {
		t.Errorf("yields = %d, want >= 10", st.Yields)
	}
	if st.Dispatches == 0 {
		t.Error("no dispatches recorded")
	}
}

func TestUniFidelity(t *testing.T) {
	u := NewUni(nil)
	var trace []string
	u.Run(func() {
		if u.ID() != 0 {
			t.Errorf("root id = %d, want 0", u.ID())
		}
		u.Fork(func() {
			trace = append(trace, "child")
			if u.ID() != 1 {
				t.Errorf("child id = %d, want 1", u.ID())
			}
			u.Yield()
			trace = append(trace, "child2")
		})
		trace = append(trace, "parent")
		u.Yield()
		trace = append(trace, "parent2")
	})
	// Fig. 1 semantics: fork queues the parent and runs the child now.
	want := []string{"child", "parent", "child2", "parent2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestUniManyThreads(t *testing.T) {
	u := NewUni(nil)
	count := 0
	u.Run(func() {
		for i := 0; i < 1000; i++ {
			u.Fork(func() { count++ })
		}
	})
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
}

func TestUniRandomPolicy(t *testing.T) {
	u := NewUni(queue.NewRandom[Entry])
	var ids []int
	u.Run(func() {
		for i := 0; i < 20; i++ {
			u.Fork(func() {
				u.Yield()
				ids = append(ids, u.ID())
			})
		}
	})
	if len(ids) != 20 {
		t.Fatalf("got %d completions, want 20", len(ids))
	}
}

func TestRevocationShrinksRunningProcs(t *testing.T) {
	// §3.1: the OS withdraws processors mid-computation; threads keep
	// making progress on the survivors and every thread still completes.
	pl := proc.New(4)
	s := New(pl, Options{})
	var completed atomic.Int32
	s.Run(func() {
		for i := 0; i < 40; i++ {
			s.Fork(func() {
				for j := 0; j < 20; j++ {
					s.CheckPreempt() // safe point: honors revocation
					s.Yield()
				}
				completed.Add(1)
			})
		}
		// Withdraw processors while the storm is in flight.
		pl.SetLimit(1)
	})
	if completed.Load() != 40 {
		t.Fatalf("completed = %d, want 40 despite revocation", completed.Load())
	}
	if live := pl.Live(); live != 0 {
		t.Fatalf("live procs after quiescence = %d", live)
	}
}

// TestSetLimitShrinkWhileBusyReleasesAtSafePoints sharpens the
// revocation test above: it observes the shrink actually *happen*
// mid-run.  After SetLimit(1) lands under a fork storm, the live proc
// count must fall to the new allowance at Dispatch safe points while
// most of the work is still outstanding — processors leave with work
// queued, they do not linger until the queue empties — and every thread
// must still complete on the survivor.
func TestSetLimitShrinkWhileBusyReleasesAtSafePoints(t *testing.T) {
	const nThreads = 32
	pl := proc.New(4)
	s := New(pl, Options{})
	var completed atomic.Int32
	var peakBefore atomic.Int32
	var leftBehind atomic.Int32 // threads unfinished when Live() first hit the new limit
	var shrunk atomic.Bool      // monitor observed Live() at the new limit
	s.Run(func() {
		for i := 0; i < nThreads; i++ {
			s.Fork(func() {
				// Keep yielding until the monitor has observed the shrink, so
				// the observation window cannot close early on a slow or
				// heavily-loaded host; the generous bound turns a broken
				// revocation into a test failure instead of a hang.
				for j := 0; j < 300 || (!shrunk.Load() && j < 1_000_000); j++ {
					s.CheckPreempt()
					s.Yield()
				}
				completed.Add(1)
			})
		}
		s.Fork(func() {
			// Let the storm spread across the full allowance first.
			for pl.Live() < 4 && completed.Load() < nThreads/4 {
				s.Yield()
			}
			peakBefore.Store(int32(pl.Live()))
			pl.SetLimit(1)
			for completed.Load() < nThreads {
				if pl.Live() <= 1 {
					leftBehind.Store(nThreads - completed.Load())
					shrunk.Store(true)
					return
				}
				s.Yield()
			}
			shrunk.Store(true)
		})
	})
	if completed.Load() != nThreads {
		t.Fatalf("completed = %d, want %d", completed.Load(), nThreads)
	}
	if peakBefore.Load() < 2 {
		t.Errorf("peak live before shrink = %d; storm never spread, shrink not exercised", peakBefore.Load())
	}
	if leftBehind.Load() == 0 {
		t.Error("live procs never dropped to the shrunken allowance while work remained: revocation did not release at safe points")
	} else {
		t.Logf("shrink 4→1 observed with %d/%d threads still outstanding", leftBehind.Load(), nThreads)
	}
	if live := pl.Live(); live != 0 {
		t.Fatalf("live procs after quiescence = %d", live)
	}
}

func TestRevocationThenRegrow(t *testing.T) {
	pl := proc.New(4)
	s := New(pl, Options{})
	var peakAfterRegrow atomic.Int32
	s.Run(func() {
		pl.SetLimit(1)
		for i := 0; i < 10; i++ {
			s.Fork(func() { s.Yield() })
		}
		pl.SetLimit(4) // processors come back
		var cur atomic.Int32
		for i := 0; i < 10; i++ {
			s.Fork(func() {
				n := cur.Add(1)
				for {
					p := peakAfterRegrow.Load()
					if n <= p || peakAfterRegrow.CompareAndSwap(p, n) {
						break
					}
				}
				s.Yield()
				cur.Add(-1)
			})
		}
	})
	// With the limit restored, forks should have spread across procs
	// again (at least able to: on a 1-CPU host concurrency may be 1).
	if pl.Stats().Refused == 0 {
		t.Log("note: no refusals observed; limit mechanics exercised via SetLimit")
	}
}

// TestTracedSystemNoRace runs a saturating fork/yield workload with a
// tracer attached, exercising every platform emit path concurrently:
// acquire on recycled tokens, release, and refused acquires.  Its job is
// to fail under `go test -race` if any trace ring ever has two writers
// (the rings are single-writer by contract; see package trace).
func TestTracedSystemNoRace(t *testing.T) {
	const maxProcs = 4
	tr := trace.New(maxProcs, 512)
	tr.Enable()
	pl := proc.New(maxProcs)
	s := New(pl, Options{Distributed: true, Tracer: tr})
	var ran atomic.Int32
	s.Run(func() {
		for i := 0; i < 200; i++ {
			s.Fork(func() {
				ran.Add(1)
				s.Yield()
			})
		}
	})
	if ran.Load() != 200 {
		t.Fatalf("ran = %d, want 200", ran.Load())
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded with tracing enabled")
	}
	for _, e := range evs {
		if e.Proc < 0 || e.Proc >= maxProcs {
			t.Fatalf("event %q on ring %d, want [0,%d)", e.Name, e.Proc, maxProcs)
		}
	}
}
