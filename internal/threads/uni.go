package threads

import (
	"repro/internal/cont"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/queue"
)

// Uni is the uniprocessor thread package of Fig. 1: no locks, a single
// ready queue of continuations, and a plain shared current-id cell — all
// safe because exactly one proc ever runs.  Like the paper's UniThread
// functor it is parameterized by a queue discipline.
type Uni struct {
	pl        *proc.Platform
	ready     queue.Queue[Entry]
	currentID int
	nextID    int
}

// NewUni applies the Fig. 1 functor to a queue discipline (nil for FIFO).
func NewUni(newQueue queue.Factory[Entry]) *Uni {
	if newQueue == nil {
		newQueue = queue.NewFifo[Entry]
	}
	return &Uni{
		pl:     proc.New(1),
		ready:  newQueue(),
		nextID: 1,
	}
}

// Run executes root as thread 0 and returns when all threads have
// finished.
func (u *Uni) Run(root func()) {
	u.currentID, u.nextID = 0, 1
	u.pl.Run(func() {
		root()
		u.dispatch()
	}, nil)
}

func (u *Uni) reschedule(k *core.UnitCont, id int) {
	u.ready.Enq(Entry{Run: func() { cont.Throw(k, core.Unit{}) }, ID: id})
}

// dispatch transfers control to the next ready thread; with an empty queue
// the computation is finished and the proc is released.  (Fig. 1's dispatch
// simply lets Queue.Empty propagate; releasing is the MP-era refinement.)
func (u *Uni) dispatch() {
	e, err := u.ready.Deq()
	if err != nil {
		u.pl.Release()
	}
	u.currentID = e.ID
	e.Run()
	panic("threads: Entry.Run returned")
}

// Fork starts a new thread executing child (Fig. 1: fork).  The parent is
// placed on the ready queue and the child runs immediately.
func (u *Uni) Fork(child func()) {
	cont.Callcc(func(parent *core.UnitCont) core.Unit {
		u.reschedule(parent, u.currentID)
		u.currentID = u.nextID
		u.nextID++
		child()
		u.dispatch()
		return core.Unit{} // unreachable
	})
}

// Yield gives up the processor to the next ready thread (Fig. 1: yield).
func (u *Uni) Yield() {
	cont.Callcc(func(k *core.UnitCont) core.Unit {
		u.reschedule(k, u.currentID)
		u.dispatch()
		return core.Unit{} // unreachable
	})
}

// ID returns the current thread's identifier (Fig. 1: id).
func (u *Uni) ID() int { return u.currentID }
