package threads_test

import (
	"fmt"

	"repro/internal/proc"
	"repro/internal/queue"
	"repro/internal/threads"
)

// The Fig. 3 thread package in miniature: fork threads over a proc
// platform, coordinate with yields, and rely on quiescence for the join.
func Example() {
	pl := proc.New(1) // one proc: cooperative multiplexing, no data races
	sys := threads.New(pl, threads.Options{})
	sum := 0
	sys.Run(func() {
		for i := 1; i <= 4; i++ {
			i := i
			sys.Fork(func() { sum += i })
		}
	})
	fmt.Println("sum:", sum)
	// Output:
	// sum: 10
}

// Scheduling policy is the functor's queue argument: a LIFO ready queue
// turns the same program into depth-first execution.
func Example_schedulingPolicy() {
	sys := threads.New(proc.New(1), threads.Options{
		NewQueue: queue.NewLifo[threads.Entry],
	})
	var order []int
	sys.Run(func() {
		var chain func(int)
		chain = func(i int) {
			if i < 3 {
				sys.Fork(func() { chain(i + 1) })
			}
			order = append(order, i)
		}
		chain(0)
	})
	fmt.Println(order)
	// Output:
	// [3 2 1 0]
}

// The uniprocessor package of Fig. 1.
func ExampleUni() {
	u := threads.NewUni(nil)
	u.Run(func() {
		u.Fork(func() {
			fmt.Println("child runs first (Fig. 1 fork semantics)")
		})
		fmt.Println("parent resumes from the ready queue")
	})
	// Output:
	// child runs first (Fig. 1 fork semantics)
	// parent resumes from the ready queue
}
