package threads

import (
	"sync/atomic"
	"testing"

	"repro/internal/proc"
)

func TestPrioHigherRunsFirst(t *testing.T) {
	s := NewPrio(proc.New(1))
	var order []int
	s.Run(func() {
		// Park several threads at distinct priorities, then let the
		// dispatcher drain them: it must run them in priority order, not
		// creation order.
		for _, prio := range []int{5, 1, 9, 3, 7} {
			prio := prio
			s.Fork(func() {
				s.Yield(prio) // park self at the assigned priority
				order = append(order, prio)
			}, prio, 0) // root re-queues at highest priority to keep forking
		}
	})
	want := []int{1, 3, 5, 7, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPrioStarvationByDesign(t *testing.T) {
	// Strict priority scheduling means a low-priority thread runs only
	// when nothing higher is ready — the policy really is the queue.
	s := NewPrio(proc.New(1))
	var order []string
	s.Run(func() {
		s.Fork(func() {
			s.Yield(10)
			order = append(order, "low")
		}, 10, 0)
		s.Fork(func() {
			s.Yield(1)
			order = append(order, "high")
			s.Yield(1)
			order = append(order, "high2")
		}, 1, 0)
	})
	if len(order) != 3 || order[0] != "high" || order[1] != "high2" || order[2] != "low" {
		t.Fatalf("order = %v", order)
	}
}

func TestPrioIDsStillUnique(t *testing.T) {
	s := NewPrio(proc.New(1))
	seen := map[int]bool{}
	var ids []int
	s.Run(func() {
		for i := 0; i < 10; i++ {
			s.Fork(func() {
				ids = append(ids, s.ID())
			}, 5, 0)
		}
	})
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate thread id %d", id)
		}
		seen[id] = true
	}
}

// TestPrioLockDisciplinePreventsInversion pins the discipline the
// pub/sub delivery world depends on (internal/pubsub/qos.go): a shared
// lock is never held across a Yield, so on a strict-priority scheduler
// with one proc a high-priority claimant can never spin above an
// unschedulable low-priority holder — the classic inversion livelock.
// The holder runs first (forked before the claimant exists) and takes
// the lock once per iteration, always releasing before yielding; the
// claimant then outranks it and must find the lock free on every
// attempt.  If the release-before-yield discipline (or the scheduler's
// run-to-yield atomicity) regresses, contended attempts become nonzero
// and — rather than hanging the suite — the bounded retry surfaces it.
func TestPrioLockDisciplinePreventsInversion(t *testing.T) {
	s := NewPrio(proc.New(1))
	var lock atomic.Int32 // 0 = free, 1 = held
	var holderTurns, claimerTurns, contended int
	const iters = 50
	s.Run(func() {
		// Low-priority holder: starts before the claimant exists, so it
		// demonstrably interleaves lock ownership with the claimant's
		// attempts rather than running after it.
		s.Fork(func() {
			for i := 0; i < iters; i++ {
				if !lock.CompareAndSwap(0, 1) {
					contended++
					continue
				}
				holderTurns++
				lock.Store(0) // release BEFORE the yield — the discipline
				s.Yield(9)
			}
		}, 9, 0)
		s.Fork(func() {
			for i := 0; i < iters; i++ {
				got := false
				for try := 0; try < 4; try++ {
					if lock.CompareAndSwap(0, 1) {
						got = true
						break
					}
					contended++
					s.Yield(1)
				}
				if !got {
					return // counted; the test fails on contended != 0
				}
				claimerTurns++
				lock.Store(0)
				s.Yield(1)
			}
		}, 1, 0)
	})
	if contended != 0 {
		t.Fatalf("contended lock attempts = %d, want 0: a yield happened with the lock held", contended)
	}
	if holderTurns != iters || claimerTurns != iters {
		t.Fatalf("holder=%d claimer=%d, want both = %d", holderTurns, claimerTurns, iters)
	}
}

// TestPrioFairShareMixedDispatchers is the delivery world's dispatch
// loop in miniature, run with the race detector in mind: three
// dispatcher threads on two procs claim quanta from the tenant with the
// least virtual time (lock dropped before any yield), then re-queue
// themselves at that tenant's normalized virtual time.  The noisy
// tenant has a long expensive backlog enqueued first; the quiet
// tenant's few cheap jobs must still all complete in the first third of
// the combined completion order — fair share, not FIFO.
func TestPrioFairShareMixedDispatchers(t *testing.T) {
	type job struct {
		tenant string
		cost   int
	}
	type tstate struct {
		vtime float64
		q     []job
	}
	tenants := map[string]*tstate{"noisy": {}, "quiet": {}}
	for i := 0; i < 30; i++ {
		tenants["noisy"].q = append(tenants["noisy"].q, job{"noisy", 5})
	}
	for i := 0; i < 5; i++ {
		tenants["quiet"].q = append(tenants["quiet"].q, job{"quiet", 1})
	}

	var lock atomic.Int32
	acquire := func(s *PrioSystem, prio int) {
		for !lock.CompareAndSwap(0, 1) {
			s.Yield(prio) // never spin without rescheduling
		}
	}
	release := func() { lock.Store(0) }

	var order []string // guarded by lock
	s := NewPrio(proc.New(2))
	dispatcher := func() {
		prio := 0
		for {
			acquire(s, prio)
			var min *tstate
			for _, ts := range tenants {
				if len(ts.q) > 0 && (min == nil || ts.vtime < min.vtime) {
					min = ts
				}
			}
			if min == nil {
				release()
				return
			}
			j := min.q[0]
			min.q = min.q[1:]
			min.vtime += float64(j.cost)
			order = append(order, j.tenant)
			low := min.vtime
			for _, ts := range tenants {
				if len(ts.q) > 0 && ts.vtime < low {
					low = ts.vtime
				}
			}
			prio = int(min.vtime - low)
			release()
			s.Yield(prio) // lock NOT held across the yield
		}
	}
	s.Run(func() {
		s.Fork(dispatcher, 0, 0)
		s.Fork(dispatcher, 0, 0)
		dispatcher()
	})

	if len(order) != 35 {
		t.Fatalf("completions = %d, want 35", len(order))
	}
	lastQuiet := -1
	for i, tn := range order {
		if tn == "quiet" {
			lastQuiet = i
		}
	}
	if lastQuiet < 0 || lastQuiet > 12 {
		t.Fatalf("last quiet completion at index %d of %d, want within the first 13 — "+
			"fair share must let the cheap tenant overtake the noisy backlog", lastQuiet, len(order))
	}
}
