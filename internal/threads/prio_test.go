package threads

import (
	"testing"

	"repro/internal/proc"
)

func TestPrioHigherRunsFirst(t *testing.T) {
	s := NewPrio(proc.New(1))
	var order []int
	s.Run(func() {
		// Park several threads at distinct priorities, then let the
		// dispatcher drain them: it must run them in priority order, not
		// creation order.
		for _, prio := range []int{5, 1, 9, 3, 7} {
			prio := prio
			s.Fork(func() {
				s.Yield(prio) // park self at the assigned priority
				order = append(order, prio)
			}, prio, 0) // root re-queues at highest priority to keep forking
		}
	})
	want := []int{1, 3, 5, 7, 9}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPrioStarvationByDesign(t *testing.T) {
	// Strict priority scheduling means a low-priority thread runs only
	// when nothing higher is ready — the policy really is the queue.
	s := NewPrio(proc.New(1))
	var order []string
	s.Run(func() {
		s.Fork(func() {
			s.Yield(10)
			order = append(order, "low")
		}, 10, 0)
		s.Fork(func() {
			s.Yield(1)
			order = append(order, "high")
			s.Yield(1)
			order = append(order, "high2")
		}, 1, 0)
	})
	if len(order) != 3 || order[0] != "high" || order[1] != "high2" || order[2] != "low" {
		t.Fatalf("order = %v", order)
	}
}

func TestPrioIDsStillUnique(t *testing.T) {
	s := NewPrio(proc.New(1))
	seen := map[int]bool{}
	var ids []int
	s.Run(func() {
		for i := 0; i < 10; i++ {
			s.Fork(func() {
				ids = append(ids, s.ID())
			}, 5, 0)
		}
	})
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate thread id %d", id)
		}
		seen[id] = true
	}
}
