package threads

import (
	"repro/internal/cont"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/queue"
)

// PrioEntry is a ready thread with a scheduling priority — the paper's
// footnote 1: "Many useful scheduling policies would require minor
// changes to the signature; for example, priority queues would need a
// priority to be passed to the enqueue operation."  This type and the
// PrioSystem below are exactly that minor signature change.
type PrioEntry struct {
	Entry
	Prio int // smaller runs first
}

// PrioSystem is the Fig. 3 thread package with the priority-scheduling
// signature: fork, yield and reschedule carry a priority, and the ready
// queue is a priority queue.  Scheduling remains strictly a property of
// the queue discipline, as the paper's design intends.
type PrioSystem struct {
	pl        *proc.Platform
	readyLock core.Lock
	ready     queue.Queue[PrioEntry]

	nextIDLock core.Lock
	nextID     int
}

// NewPrio applies the priority-thread functor to a platform.
func NewPrio(pl *proc.Platform) *PrioSystem {
	return &PrioSystem{
		pl:        pl,
		readyLock: core.NewMutexLock(),
		ready: queue.NewPriority(func(a, b PrioEntry) bool {
			return a.Prio < b.Prio
		}),
		nextIDLock: core.NewMutexLock(),
	}
}

// Run bootstraps the platform with root as thread 0 and blocks until
// quiescence.
func (s *PrioSystem) Run(root func()) {
	s.nextID = 1
	s.pl.Run(func() {
		root()
		s.Dispatch()
	}, 0)
}

// ID returns the current thread's identifier.
func (s *PrioSystem) ID() int { return proc.GetDatum().(int) }

func (s *PrioSystem) newID() int {
	s.nextIDLock.Lock()
	id := s.nextID
	s.nextID++
	s.nextIDLock.Unlock()
	return id
}

// Reschedule makes a ready thread runnable at the given priority — the
// footnote's changed enqueue signature.
func (s *PrioSystem) Reschedule(run func(), id, prio int) {
	s.readyLock.Lock()
	s.ready.Enq(PrioEntry{Entry: Entry{Run: run, ID: id}, Prio: prio})
	s.readyLock.Unlock()
}

// Dispatch transfers control to the highest-priority ready thread, or
// releases the proc; it never returns.
func (s *PrioSystem) Dispatch() {
	s.readyLock.Lock()
	e, err := s.ready.Deq()
	s.readyLock.Unlock()
	if err != nil {
		s.pl.Release()
		panic("threads: Release returned")
	}
	proc.SetDatum(e.ID)
	e.Run()
	panic("threads: Entry.Run returned")
}

// Fork starts a new thread executing child at the given priority.  As in
// Fig. 3 the parent moves to a fresh proc if one is available and is
// otherwise queued — at its own priority, passed here because the queue
// now demands one.
func (s *PrioSystem) Fork(child func(), childPrio, parentPrio int) {
	cont.Callcc(func(parent *core.UnitCont) core.Unit {
		parentID := s.ID()
		if err := s.pl.Acquire(proc.PS{K: parent, Datum: parentID}); err != nil {
			if err != proc.ErrNoMoreProcs {
				panic(err)
			}
			s.Reschedule(func() { cont.Throw(parent, core.Unit{}) }, parentID, parentPrio)
		}
		proc.SetDatum(s.newID())
		_ = childPrio // the child holds the proc; its priority matters at its next yield
		child()
		s.Dispatch()
		return core.Unit{} // unreachable
	})
}

// Yield gives up the processor, re-queueing the caller at prio.
func (s *PrioSystem) Yield(prio int) {
	cont.Callcc(func(k *core.UnitCont) core.Unit {
		s.Reschedule(func() { cont.Throw(k, core.Unit{}) }, s.ID(), prio)
		s.Dispatch()
		return core.Unit{} // unreachable
	})
}
