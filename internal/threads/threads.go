// Package threads implements the paper's thread packages: the uniprocessor
// functor of Fig. 1 (Uni), the multiprocessor functor of Fig. 3 (System
// with a central run queue), and the enhanced package used in the
// evaluation (§6): Fig. 3 plus a distributed run queue and a preemption
// mechanism.
//
// The key representation decision is the paper's: waiting threads are a
// queue of first-class continuations, so scheduling policy is changed
// simply by varying the queue discipline the functor is applied to, and
// synchronization constructs (packages sel, cml, syncx) are built by
// capturing continuations and parking them on their own wait queues.
//
// A queued thread is an Entry: a thunk that, when run, throws the thread's
// continuation (the paper's `unit cont`, generalized so that clients such
// as Fig. 5's reschedule_thread can bind a value into the continuation
// before queueing it), paired with the thread's integer id, which dispatch
// installs in the per-proc datum before transferring control.
package threads

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/cont"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/queue"
	"repro/internal/spinlock"
	"repro/internal/trace"
)

// Entry is a ready thread: Run throws the thread's continuation and never
// returns; ID is the thread identifier dispatch installs as the proc datum.
type Entry struct {
	Run func()
	ID  int
}

// Options parameterize the functor, exactly as MPThread is parameterized
// by QUEUE and LOCK structures.
type Options struct {
	// NewQueue supplies the ready-queue discipline; nil means FIFO.
	NewQueue queue.Factory[Entry]
	// NewLock supplies the mutex flavor; nil means the platform default.
	NewLock spinlock.Factory
	// Distributed selects per-proc run queues with stealing, the
	// evaluation package's "distributed run queue".
	Distributed bool
	// Quantum, if nonzero, enables the preemption mechanism: a timer
	// periodically requests that each proc yield; threads honor the
	// request at safe points (Yield, CheckPreempt).  The paper used alarm
	// signals; Go cannot interrupt a goroutine, so this is the
	// timer-driven-polling simulation the paper itself suggests (§3.4).
	Quantum time.Duration
	// Tracer, if non-nil, receives fork/yield/dispatch/steal/preempt
	// events on the acting proc's ring.
	Tracer *trace.Tracer
}

// Stats counts scheduler activity.  It is a merged view of the
// system's per-proc metrics shards.
type Stats struct {
	Forks      int64
	Yields     int64
	Dispatches int64
	Steals     int64
	Preempts   int64
}

type runQueue struct {
	lock spinlock.Lock
	q    queue.Queue[Entry]
	_    [metrics.CacheLineBytes - 32]byte // pad to a full cache line (128 B covers
	// 64/128-byte lines and adjacent-line prefetch) so per-proc queues
	// never share a line
}

// sysMetrics caches the scheduler's counter handles; every counter is
// sharded per proc, so the hot paths touch no shared cache line — the
// shared-atomic Stats struct this replaces bounced its lines across all
// 16 procs on exactly the operations the evaluation counts.
type sysMetrics struct {
	forks      *metrics.Counter
	yields     *metrics.Counter
	dispatches *metrics.Counter
	steals     *metrics.Counter
	preempts   *metrics.Counter
}

// System is a multiprocessor thread package over the MP platform (Fig. 3).
type System struct {
	pl          *proc.Platform
	distributed bool
	queues      []runQueue // one entry in central mode, MaxProcs in distributed

	nextIDLock spinlock.Lock
	nextID     int

	quantum time.Duration
	preempt []atomic.Bool

	reg *metrics.Registry
	m   sysMetrics

	tracer     *trace.Tracer
	evFork     trace.EventID
	evYield    trace.EventID
	evDispatch trace.EventID
	evSteal    trace.EventID
	evPreempt  trace.EventID
}

// New applies the thread functor to a platform and options.
func New(pl *proc.Platform, opts Options) *System {
	if opts.NewQueue == nil {
		opts.NewQueue = queue.NewFifo[Entry]
	}
	if opts.NewLock == nil {
		opts.NewLock = core.NewMutexLock
	}
	n := 1
	if opts.Distributed {
		n = pl.MaxProcs()
	}
	s := &System{
		pl:          pl,
		distributed: opts.Distributed,
		queues:      make([]runQueue, n),
		nextIDLock:  opts.NewLock(),
		quantum:     opts.Quantum,
		preempt:     make([]atomic.Bool, pl.MaxProcs()),
		reg:         pl.Metrics(),
		tracer:      opts.Tracer,
	}
	s.m = sysMetrics{
		forks:      s.reg.Counter("threads.forks"),
		yields:     s.reg.Counter("threads.yields"),
		dispatches: s.reg.Counter("threads.dispatches"),
		steals:     s.reg.Counter("threads.steals"),
		preempts:   s.reg.Counter("threads.preempts"),
	}
	if s.tracer != nil {
		s.evFork = s.tracer.Define("threads.fork")
		s.evYield = s.tracer.Define("threads.yield")
		s.evDispatch = s.tracer.Define("threads.dispatch")
		s.evSteal = s.tracer.Define("threads.steal")
		s.evPreempt = s.tracer.Define("threads.preempt")
		pl.SetTracer(s.tracer)
	}
	for i := range s.queues {
		s.queues[i].lock = opts.NewLock()
		s.queues[i].q = opts.NewQueue()
	}
	return s
}

// Platform returns the underlying MP platform.
func (s *System) Platform() *proc.Platform { return s.pl }

// Stats returns a snapshot of scheduler counters, merged across the
// per-proc shards on this (cold) read side.
func (s *System) Stats() Stats {
	return Stats{
		Forks:      s.m.forks.Value(),
		Yields:     s.m.yields.Value(),
		Dispatches: s.m.dispatches.Value(),
		Steals:     s.m.steals.Value(),
		Preempts:   s.m.preempts.Value(),
	}
}

// Metrics exposes the registry shared with the underlying platform, so
// harnesses read scheduler and proc counters in one unified snapshot.
func (s *System) Metrics() *metrics.Registry { return s.reg }

// Run bootstraps the platform with root as thread 0 and blocks until the
// computation quiesces (every proc released).  This is how client programs
// join: when the last thread finishes, the last dispatch finds the run
// queues empty and releases its proc.
func (s *System) Run(root func()) {
	var stop chan struct{}
	if s.quantum > 0 {
		stop = make(chan struct{})
		go s.ticker(stop)
	}
	s.nextID = 1
	s.pl.Run(func() {
		root()
		s.Dispatch()
	}, 0)
	if stop != nil {
		close(stop)
	}
}

func (s *System) ticker(stop chan struct{}) {
	t := time.NewTicker(s.quantum)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			for i := range s.preempt {
				s.preempt[i].Store(true)
			}
		}
	}
}

// ID returns the identifier of the thread executing on the calling proc
// (Fig. 1/3: id).  Thread ids live in the per-proc datum, as §3.2
// prescribes.
func (s *System) ID() int { return threadID(proc.Current()) }

// threadID reads the thread id out of a proc's datum.
func threadID(p *proc.Proc) int {
	d := p.Datum()
	id, ok := d.(int)
	if !ok {
		panic(fmt.Sprintf("threads: proc datum is %T, not a thread id", d))
	}
	return id
}

func (s *System) newID() int {
	s.nextIDLock.Lock()
	id := s.nextID
	s.nextID++
	s.nextIDLock.Unlock()
	return id
}

// Reschedule makes a ready thread runnable (Fig. 3: reschedule).  In
// distributed mode the entry is pushed on the calling proc's own queue.
func (s *System) Reschedule(run func(), id int) {
	self := 0
	if s.distributed {
		self = proc.Self()
	}
	s.reschedule(self, run, id)
}

// reschedule queues an entry on the given proc's queue (queue 0 in
// central mode); self is the caller's proc id, resolved once upstream.
func (s *System) reschedule(self int, run func(), id int) {
	qi := 0
	if s.distributed {
		qi = self % len(s.queues)
	}
	rq := &s.queues[qi]
	rq.lock.Lock()
	rq.q.Enq(Entry{Run: run, ID: id})
	rq.lock.Unlock()
}

// RescheduleCont queues a plain unit continuation, the common case.
func (s *System) RescheduleCont(k *core.UnitCont, id int) {
	s.Reschedule(func() { cont.Throw(k, core.Unit{}) }, id)
}

// Dispatch transfers control to some ready thread, or releases the calling
// proc if none is available (Fig. 3: dispatch).  It never returns.
// Dispatch is also a revocation safe point: if the OS has reduced the
// physical-processor allowance (§3.1), the proc is released here and the
// queued work is left for the survivors.
func (s *System) Dispatch() { s.dispatch(proc.Current()) }

// dispatch is Dispatch with the calling proc already resolved: every
// per-proc counter and queue below shards by its id, so the (goroutine-
// local) lookup happens exactly once per scheduler operation.
func (s *System) dispatch(p *proc.Proc) {
	self := p.ID()
	s.m.dispatches.Inc(self)
	if s.pl.Revoked() {
		s.pl.Release()
		panic("threads: Release returned")
	}
	if e, ok := s.pop(self); ok {
		p.SetDatum(e.ID)
		s.tracer.Emit(self, s.evDispatch, int64(e.ID))
		e.Run()
		panic("threads: Entry.Run returned")
	}
	s.pl.Release()
	panic("threads: Release returned")
}

// pop takes the next ready entry: the local queue first, then — in
// distributed mode — a sweep of the other procs' queues (work stealing).
func (s *System) pop(self int) (Entry, bool) {
	if s.distributed {
		self %= len(s.queues)
	} else {
		self = 0
	}
	n := len(s.queues)
	for i := 0; i < n; i++ {
		rq := &s.queues[(self+i)%n]
		rq.lock.Lock()
		e, err := rq.q.Deq()
		rq.lock.Unlock()
		if err == nil {
			if i != 0 {
				s.m.steals.Inc(self)
				s.tracer.Emit(self, s.evSteal, int64((self+i)%n))
			}
			return e, true
		}
	}
	return Entry{}, false
}

// Fork starts a new thread executing child (Fig. 3: fork).  The kernel
// first attempts to allocate a new proc on which to continue running the
// parent; only if this fails is the parent blocked on the ready queue.
// The child runs on the current proc under a fresh thread id.
func (s *System) Fork(child func()) {
	p := proc.Current()
	self := p.ID()
	s.m.forks.Inc(self)
	cont.Callcc(func(parent *core.UnitCont) core.Unit {
		parentID := threadID(p)
		if err := s.pl.Acquire(proc.PS{K: parent, Datum: parentID}); err != nil {
			if err != proc.ErrNoMoreProcs {
				panic(err)
			}
			s.reschedule(self, func() { cont.Throw(parent, core.Unit{}) }, parentID)
		}
		childID := s.newID()
		p.SetDatum(childID)
		s.tracer.Emit(self, s.evFork, int64(childID))
		child()
		// child may have yielded and been resumed on a different proc, so
		// the proc captured above can be stale here: re-resolve it.
		s.dispatch(proc.Current())
		return core.Unit{} // unreachable
	})
}

// Yield temporarily gives up the processor to another ready thread
// (Fig. 3: yield).
func (s *System) Yield() {
	p := proc.Current()
	self := p.ID()
	s.m.yields.Inc(self)
	s.tracer.Emit(self, s.evYield, 0)
	cont.Callcc(func(k *core.UnitCont) core.Unit {
		s.reschedule(self, func() { cont.Throw(k, core.Unit{}) }, threadID(p))
		s.dispatch(p)
		return core.Unit{} // unreachable
	})
}

// Exit terminates the calling thread and dispatches another; it never
// returns.  (Threads forked with Fork also exit implicitly when child
// returns.)
func (s *System) Exit() {
	s.Dispatch()
}

// CheckPreempt is the safe point of the preemption mechanism: if the
// quantum has expired on this proc, the calling thread yields.  Compute
// loops call it periodically, standing in for the paper's signal-driven
// preemption.  It also answers processor revocation (§3.1): a yield from
// a revoked proc parks the thread and releases the proc in Dispatch.
func (s *System) CheckPreempt() {
	if s.pl.Revoked() {
		s.Yield()
		return
	}
	if s.quantum == 0 {
		return
	}
	i := proc.Self()
	if i < len(s.preempt) && s.preempt[i].CompareAndSwap(true, false) {
		s.m.preempts.Inc(i)
		s.tracer.Emit(i, s.evPreempt, 0)
		s.Yield()
	}
}
