package proc

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/cont"
)

func TestRunRootReturns(t *testing.T) {
	pl := New(4)
	ran := false
	pl.Run(func() { ran = true }, nil)
	if !ran {
		t.Fatal("root did not run")
	}
	st := pl.Stats()
	if st.Released != 1 {
		t.Fatalf("root not released implicitly: %+v", st)
	}
}

func TestInitialDatum(t *testing.T) {
	pl := New(2)
	var got any
	pl.Run(func() { got = GetDatum() }, 17)
	if got != 17 {
		t.Fatalf("initial datum = %v, want 17", got)
	}
}

func TestSetGetDatum(t *testing.T) {
	pl := New(2)
	var got any
	pl.Run(func() {
		SetDatum("x")
		got = GetDatum()
	}, nil)
	if got != "x" {
		t.Fatalf("datum = %v, want x", got)
	}
}

func TestAcquireRunsInParallel(t *testing.T) {
	pl := New(4)
	var count atomic.Int32
	pl.Run(func() {
		for i := 0; i < 3; i++ {
			cont.Callcc(func(k *cont.Cont[cont.Unit]) cont.Unit {
				// Start a new proc running the rest of *this* thread;
				// the body continues as a separate activity that bumps
				// the counter and releases its proc.
				if err := pl.Acquire(PS{K: k, Datum: 100 + i}); err != nil {
					t.Errorf("Acquire: %v", err)
					cont.Throw(k, cont.Unit{})
				}
				count.Add(1)
				pl.Release()
				return cont.Unit{}
			})
		}
	}, 0)
	if count.Load() != 3 {
		t.Fatalf("count = %d, want 3", count.Load())
	}
}

func TestNoMoreProcs(t *testing.T) {
	pl := New(1) // root takes the only proc
	var err error
	pl.Run(func() {
		err = pl.Acquire(PS{K: newParkedCont(), Datum: nil})
	}, nil)
	if err != ErrNoMoreProcs {
		t.Fatalf("err = %v, want ErrNoMoreProcs", err)
	}
	if pl.Stats().Refused != 1 {
		t.Fatalf("refused = %d, want 1", pl.Stats().Refused)
	}
}

// newParkedCont builds a continuation that is never resumed; only valid
// for Acquire calls that are expected to fail.
func newParkedCont() *cont.Cont[cont.Unit] {
	ch := make(chan *cont.Cont[cont.Unit], 1)
	pl := New(1)
	go pl.Run(func() {
		cont.Callcc(func(k *cont.Cont[cont.Unit]) cont.Unit {
			ch <- k
			pl.Release()
			return cont.Unit{}
		})
	}, nil)
	return <-ch
}

func TestReleaseReuse(t *testing.T) {
	pl := New(2)
	var reused int
	pl.Run(func() {
		for i := 0; i < 5; i++ {
			done := make(chan struct{})
			err := pl.Acquire(PS{K: releaseImmediately(pl, done), Datum: nil})
			if err != nil {
				t.Errorf("Acquire %d: %v", i, err)
				return
			}
			<-done
		}
		reused = pl.Stats().Reused
	}, nil)
	if reused < 4 {
		t.Fatalf("reused = %d, want >= 4 (released procs must be re-used)", reused)
	}
	if pl.Stats().Created > 2 {
		t.Fatalf("created = %d procs, limit 2", pl.Stats().Created)
	}
}

// releaseImmediately returns a continuation that, when started on a fresh
// proc, signals done and releases the proc.
func releaseImmediately(pl *Platform, done chan struct{}) *cont.Cont[cont.Unit] {
	ch := make(chan *cont.Cont[cont.Unit], 1)
	boot := New(1)
	go boot.Run(func() {
		cont.Callcc(func(k *cont.Cont[cont.Unit]) cont.Unit {
			ch <- k
			boot.Release()
			return cont.Unit{}
		})
		// Resumed on a proc of pl.
		close(done)
		pl.Release()
	}, nil)
	return <-ch
}

func TestDatumFollowsProcNotThread(t *testing.T) {
	// A thread that hops procs must observe the datum of the proc it is
	// currently on (paper §3.2: each processor requires a private copy).
	pl := New(2)
	var seen []any
	pl.Run(func() {
		SetDatum("root-datum")
		seen = append(seen, GetDatum())
		cont.Callcc(func(k *cont.Cont[cont.Unit]) cont.Unit {
			if err := pl.Acquire(PS{K: k, Datum: "new-proc-datum"}); err != nil {
				t.Errorf("Acquire: %v", err)
				cont.Throw(k, cont.Unit{})
			}
			// This body still runs on the root proc.
			if GetDatum() != "root-datum" {
				t.Errorf("body datum = %v, want root-datum", GetDatum())
			}
			pl.Release()
			return cont.Unit{}
		})
		// Resumed on the newly acquired proc.
		seen = append(seen, GetDatum())
	}, nil)
	if len(seen) != 2 || seen[0] != "root-datum" || seen[1] != "new-proc-datum" {
		t.Fatalf("seen = %v", seen)
	}
}

func TestQuiescenceWaitsForAllProcs(t *testing.T) {
	pl := New(8)
	var done atomic.Int32
	pl.Run(func() {
		for i := 0; i < 3; i++ {
			cont.Callcc(func(k *cont.Cont[cont.Unit]) cont.Unit {
				if err := pl.Acquire(PS{K: k, Datum: nil}); err != nil {
					cont.Throw(k, cont.Unit{})
				}
				// Busy work on the extra proc before releasing.
				for j := 0; j < 100; j++ {
					runtime.Gosched()
				}
				done.Add(1)
				pl.Release()
				return cont.Unit{}
			})
		}
	}, nil)
	if done.Load() != 3 {
		t.Fatalf("Run returned before procs quiesced: done = %d", done.Load())
	}
}

func TestRunNotReentrant(t *testing.T) {
	pl := New(1)
	pl.Run(func() {
		defer func() {
			if recover() == nil {
				t.Error("nested Run did not panic")
			}
		}()
		pl.Run(func() {}, nil)
	}, nil)
}

func TestMaxProcsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestSelfIDs(t *testing.T) {
	pl := New(3)
	ids := make(chan int, 3)
	pl.Run(func() {
		ids <- Self()
		for i := 0; i < 2; i++ {
			cont.Callcc(func(k *cont.Cont[cont.Unit]) cont.Unit {
				if err := pl.Acquire(PS{K: k, Datum: nil}); err != nil {
					cont.Throw(k, cont.Unit{})
				}
				ids <- Self()
				pl.Release()
				return cont.Unit{}
			})
		}
	}, nil)
	close(ids)
	seen := map[int]bool{}
	for id := range ids {
		seen[id] = true
	}
	if len(seen) == 0 || !seen[0] {
		t.Fatalf("ids = %v, want to include root id 0", seen)
	}
}

// TestPoolInvariantsUnderChurn: thirty acquire/release cycles on a
// three-proc pool must never mint more than three tokens and must re-use
// released ones.
func TestPoolInvariantsUnderChurn(t *testing.T) {
	pl := New(3)
	pl.Run(func() {
		for i := 0; i < 30; i++ {
			done := make(chan struct{})
			err := pl.Acquire(PS{K: releaseImmediately(pl, done), Datum: nil})
			if err != nil {
				t.Errorf("iteration %d: %v", i, err)
				return
			}
			<-done
		}
	}, nil)
	st := pl.Stats()
	if st.Created > 3 {
		t.Fatalf("created %d proc tokens with limit 3", st.Created)
	}
	if st.Reused < 25 {
		t.Fatalf("reused only %d of 30 acquisitions", st.Reused)
	}
}

func TestDynamicLimitRefusesAcquire(t *testing.T) {
	pl := New(4)
	pl.SetLimit(1) // OS grants only one processor
	var err error
	pl.Run(func() {
		err = pl.Acquire(PS{K: newParkedCont(), Datum: nil})
	}, nil)
	if err != ErrNoMoreProcs {
		t.Fatalf("err = %v, want ErrNoMoreProcs under a shrunken limit", err)
	}
}

func TestSetLimitClamps(t *testing.T) {
	pl := New(4)
	pl.SetLimit(0)
	if pl.Limit() != 1 {
		t.Fatalf("limit = %d, want clamp to 1", pl.Limit())
	}
	pl.SetLimit(99)
	if pl.Limit() != 4 {
		t.Fatalf("limit = %d, want clamp to max 4", pl.Limit())
	}
}

func TestRevokedSignal(t *testing.T) {
	pl := New(2)
	pl.Run(func() {
		if pl.Revoked() {
			t.Error("revoked with live <= limit")
		}
		pl.SetLimit(1)
		// Only the root proc is live (1 <= 1): no revocation yet.
		if pl.Revoked() {
			t.Error("revoked with live == limit")
		}
		pl.SetLimit(2)
		done := make(chan struct{})
		if err := pl.Acquire(PS{K: releaseOnSignal(pl, done)}); err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		pl.SetLimit(1) // now two live against a limit of one
		if !pl.Revoked() {
			t.Error("not revoked with live > limit")
		}
		close(done) // let the second proc release
	}, nil)
}

// releaseOnSignal returns a continuation that waits on done and then
// releases its proc.
func releaseOnSignal(pl *Platform, done chan struct{}) *cont.Cont[cont.Unit] {
	ch := make(chan *cont.Cont[cont.Unit], 1)
	boot := New(1)
	go boot.Run(func() {
		cont.Callcc(func(k *cont.Cont[cont.Unit]) cont.Unit {
			ch <- k
			boot.Release()
			return cont.Unit{}
		})
		<-done
		pl.Release()
	}, nil)
	return <-ch
}
