// Package proc implements the Proc half of the MP platform (paper §3.1,
// §3.2): a language-level view of a kernel thread executing on a physical
// processor.
//
// A proc here is a *token* drawn from a bounded pool.  At any instant
// exactly one goroutine holds each live token; holding the token is what
// it means to "be" that proc, and the Go scheduler supplies the actual
// parallelism (up to GOMAXPROCS) just as Irix/Dynix/Mach supplied it to
// SML/NJ.  The pool reproduces the paper's semantics precisely:
//
//   - a compile-time-style constant (MaxProcs) bounds the procs the
//     runtime will provide; Acquire past the limit returns ErrNoMoreProcs
//     (the exception No_More_Procs);
//   - Release returns the token and may later be re-used by a subsequent
//     Acquire, mirroring "the runtime system may choose to re-use a
//     previously released kernel thread";
//   - each proc carries a single client-defined datum, read and written by
//     GetDatum/SetDatum; the datum follows the proc, not the thread, and
//     is conveyed across continuation throws by the baton protocol in
//     package cont.
//
// Initially a single root proc executes the client's root function; the
// platform's Run returns when every proc has been released (quiescence),
// which is how client programs join.
package proc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cont"
	"repro/internal/gls"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// ErrNoMoreProcs is the paper's exception No_More_Procs: the proc limit
// has been reached and no released proc is available for re-use.
var ErrNoMoreProcs = errors.New("mp: no more procs")

// Proc is a processor token.  Its fields are accessed only by the single
// goroutine currently holding it; hand-off between goroutines happens via
// channel sends, which establish the necessary happens-before edges.
type Proc struct {
	id       int
	datum    any
	released atomic.Bool
	pl       *Platform
}

// ID returns the proc's small dense identifier (0 is the root proc).
func (p *Proc) ID() int { return p.id }

// Datum returns the proc's private datum.  Like GetDatum it is only
// safe on the goroutine currently holding the proc; clients that
// already hold a Current() result use it to avoid a second
// goroutine-local lookup.
func (p *Proc) Datum() any { return p.datum }

// SetDatum overwrites the proc's private datum; same holder-only
// contract as Datum.
func (p *Proc) SetDatum(d any) { p.datum = d }

// PS is the paper's proc_state: the continuation a newly acquired proc
// starts executing, plus the initial per-proc datum.
type PS struct {
	K     *cont.Cont[cont.Unit]
	Datum any
}

// Stats counts platform activity; useful for tests and the evaluation
// harness.  It is a merged view of the platform's metrics registry.
type Stats struct {
	Created  int // distinct proc tokens ever created
	Acquired int // successful Acquire calls (including re-use)
	Reused   int // Acquires satisfied from the free list
	Refused  int // Acquires that returned ErrNoMoreProcs
	Released int // Release calls
}

// platformMetrics caches the platform's counter handles so the
// registry's name lookup never appears on the acquire/release path.
type platformMetrics struct {
	created  *metrics.Counter
	acquired *metrics.Counter
	reused   *metrics.Counter
	refused  *metrics.Counter
	released *metrics.Counter
}

// Platform is the MP processor manager.
type Platform struct {
	max     int
	mu      sync.Mutex
	free    []*Proc
	created int
	limit   int // current physical-processor allowance (≤ max)
	live    sync.WaitGroup
	running atomic.Bool

	reg *metrics.Registry
	m   platformMetrics

	tracer    *trace.Tracer
	evAcquire trace.EventID
	evRelease trace.EventID
	evRefuse  trace.EventID
}

// New returns a platform that will provide at most maxProcs procs, the
// analogue of the runtime's compile-time proc limit.  Typical clients set
// maxProcs to the number of physical processors (runtime.GOMAXPROCS(0)).
func New(maxProcs int) *Platform {
	if maxProcs < 1 {
		panic("proc: platform needs at least one proc")
	}
	pl := &Platform{max: maxProcs, limit: maxProcs, reg: metrics.NewRegistry(maxProcs)}
	pl.m = platformMetrics{
		created:  pl.reg.Counter("proc.created"),
		acquired: pl.reg.Counter("proc.acquired"),
		reused:   pl.reg.Counter("proc.reused"),
		refused:  pl.reg.Counter("proc.refused"),
		released: pl.reg.Counter("proc.released"),
	}
	return pl
}

// MaxProcs reports the platform's proc limit.
func (pl *Platform) MaxProcs() int { return pl.max }

// SetLimit changes the number of physical processors the platform may
// use, clamped to [1, MaxProcs].  The paper's §3.1: "the number of
// physical processors available to an SML/NJ image can change without
// warning during a computation, as a result of activity by other users
// and by the operating system itself."  Shrinking the limit does not
// preempt anyone — procs discover the revocation at their next safe
// point via Revoked and release themselves, the cooperative model the
// paper's clients use for everything.
func (pl *Platform) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	if n > pl.max {
		n = pl.max
	}
	pl.mu.Lock()
	pl.limit = n
	pl.mu.Unlock()
}

// Limit reports the current physical-processor allowance.
func (pl *Platform) Limit() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.limit
}

// Live reports how many procs are currently held by clients.
func (pl *Platform) Live() int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.created - len(pl.free)
}

// Revoked reports whether more procs are live than the current limit
// allows, i.e. whether the calling proc should save its state and
// Release at its next safe point.  Any proc may answer the revocation;
// the signal clears as soon as enough have.
func (pl *Platform) Revoked() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.created-len(pl.free) > pl.limit
}

// Stats returns a merged snapshot of the platform counters.  The read
// is lock-free — per-shard atomic loads, never the platform mutex — so
// sampling stats mid-benchmark cannot perturb Acquire/Release timing.
func (pl *Platform) Stats() Stats {
	return Stats{
		Created:  int(pl.m.created.Value()),
		Acquired: int(pl.m.acquired.Value()),
		Reused:   int(pl.m.reused.Value()),
		Refused:  int(pl.m.refused.Value()),
		Released: int(pl.m.released.Value()),
	}
}

// Metrics exposes the platform's registry so harnesses can fold proc
// counters into a unified snapshot.
func (pl *Platform) Metrics() *metrics.Registry { return pl.reg }

// SetTracer attaches an event tracer.  Call before Run.
//
// Ring discipline (trace rings are single-writer): acquire is emitted on
// the acquired proc's ring by the acquirer, which owns the token
// exclusively between popping it from the free list and handing it to
// cont.Start; release is emitted by the releasing holder before the
// token re-enters the free list; a refused acquire is emitted on the
// *calling* proc's ring (there is no affected proc), and not at all when
// Acquire is called from outside the platform.
func (pl *Platform) SetTracer(t *trace.Tracer) {
	pl.tracer = t
	if t != nil {
		pl.evAcquire = t.Define("proc.acquire")
		pl.evRelease = t.Define("proc.release")
		pl.evRefuse = t.Define("proc.refuse")
	}
}

// Acquire starts a new proc executing the continuation in ps, with ps.Datum
// as its per-proc datum (paper: acquire_proc).  It returns ErrNoMoreProcs
// when the proc limit is reached, which clients typically handle by
// enqueueing the continuation on a ready queue instead (Fig. 3).
func (pl *Platform) Acquire(ps PS) error {
	if ps.K == nil {
		panic("proc: Acquire with nil continuation")
	}
	pl.mu.Lock()
	if pl.created-len(pl.free) >= pl.limit {
		// Within capacity but beyond the OS's current allowance.
		pl.mu.Unlock()
		pl.refuse()
		return ErrNoMoreProcs
	}
	var p *Proc
	reused := false
	switch {
	case len(pl.free) > 0:
		p = pl.free[len(pl.free)-1]
		pl.free = pl.free[:len(pl.free)-1]
		reused = true
	case pl.created < pl.max:
		p = &Proc{id: pl.created, pl: pl}
		pl.created++
	default:
		pl.mu.Unlock()
		pl.refuse()
		return ErrNoMoreProcs
	}
	// Safe: Acquire is only callable from code running on a live proc, so
	// the live counter is nonzero here.
	pl.live.Add(1)
	pl.mu.Unlock()

	if reused {
		pl.m.reused.Inc(p.id)
	} else {
		pl.m.created.Inc(p.id)
	}
	pl.m.acquired.Inc(p.id)
	// Emitting on ring p.id from the acquirer's goroutine is race-free:
	// the previous holder's release emit happens-before the free-list
	// append (see release), the pop above orders it before this write
	// under pl.mu, and cont.Start's goroutine creation orders this write
	// before anything the started proc emits.  One writer at a time.
	pl.tracer.Emit(p.id, pl.evAcquire, int64(p.id))
	p.released.Store(false)
	p.datum = ps.Datum
	cont.Start(ps.K, cont.Unit{}, p)
	return nil
}

// refuse accounts a failed Acquire on the calling proc's shard and ring.
// Refusal is the common Fork path once procs saturate, so hard-coding
// shard 0 here would bounce one cache line across every forking proc —
// exactly the contention the sharded registry exists to avoid.  Off-proc
// callers (setup code, tests) fall back to shard 0 for the counter and
// skip the trace emit, preserving the rings' single-writer invariant.
func (pl *Platform) refuse() {
	self, onProc := callerID()
	pl.m.refused.Inc(self)
	if onProc {
		pl.tracer.Emit(self, pl.evRefuse, 0)
	}
}

// callerID returns the id of the proc held by the calling goroutine, or
// (0, false) when the goroutine holds none.
func callerID() (int, bool) {
	if v, ok := gls.Get(); ok {
		if p, ok := v.(*Proc); ok {
			return p.id, true
		}
	}
	return 0, false
}

// Release stops the calling proc and returns it to the pool (paper:
// release_proc, of ML type unit -> 'a).  It never returns; the calling
// goroutine is unwound.  Clients wishing to save their execution state
// first capture a continuation with Callcc.
func (pl *Platform) Release() {
	p := Current()
	pl.release(p)
	cont.Exit()
}

// release is idempotent so that the root wrapper's deferred release cannot
// double-free a proc the root function already released.
func (pl *Platform) release(p *Proc) {
	if !p.released.CompareAndSwap(false, true) {
		return
	}
	p.datum = nil
	pl.m.released.Inc(p.id)
	// Emit before the token re-enters the free list: once the append below
	// publishes it, a concurrent Acquire may pop the token and write ring
	// p.id, and the rings are single-writer.  The mutex hand-off is the
	// happens-before edge between this emit and the acquirer's.
	pl.tracer.Emit(p.id, pl.evRelease, int64(p.id))
	pl.mu.Lock()
	pl.free = append(pl.free, p)
	pl.mu.Unlock()
	pl.live.Done()
}

// Current returns the proc held by the calling goroutine.
func Current() *Proc {
	v, ok := gls.Get()
	if !ok {
		panic("mp: operation outside Platform.Run")
	}
	p, ok := v.(*Proc)
	if !ok {
		panic(fmt.Sprintf("mp: foreign baton %T on this goroutine", v))
	}
	return p
}

// GetDatum returns the calling proc's private datum (paper: get_datum).
func GetDatum() any { return Current().datum }

// SetDatum overwrites the calling proc's private datum (paper: set_datum).
func SetDatum(d any) { Current().datum = d }

// Self returns the calling proc's id; a convenience beyond the paper's
// interface, used by the evaluation harness and the distributed scheduler.
func Self() int { return Current().id }

// TrySelf returns the calling proc's id, or (0, false) when the calling
// goroutine holds no proc — code running outside Platform.Run, such as a
// host bootstrap goroutine.  Callers use it to pick a sharded-structure
// slot without requiring the MP world.
func TrySelf() (int, bool) { return callerID() }

// Run bootstraps the root proc executing root with the given initial
// datum (paper: initial_datum) and blocks until the platform quiesces —
// i.e. until every proc, including the root, has been released.  If root
// returns normally, the proc it is then holding is released implicitly.
func (pl *Platform) Run(root func(), initialDatum any) {
	if !pl.running.CompareAndSwap(false, true) {
		panic("proc: Platform.Run is not reentrant")
	}
	defer pl.running.Store(false)

	pl.mu.Lock()
	if pl.created != 0 || len(pl.free) != 0 {
		// Allow repeated Run calls on a quiesced platform by recycling.
		pl.free = pl.free[:0]
		pl.created = 0
	}
	p := &Proc{id: 0, pl: pl}
	pl.created = 1
	pl.live.Add(1)
	pl.mu.Unlock()
	pl.m.created.Inc(0)
	pl.m.acquired.Inc(0)
	pl.tracer.Emit(0, pl.evAcquire, 0)
	p.datum = initialDatum

	go func() {
		gls.Set(p)
		defer func() {
			r := recover()
			// Release the proc currently held at return time: the root
			// goroutine may have migrated to a different token by the
			// time the root function returns.
			if r == nil {
				if v, ok := gls.Get(); ok {
					pl.release(v.(*Proc))
				}
			}
			gls.Del()
			if r != nil && !cont.IsExit(r) {
				panic(r)
			}
		}()
		root()
	}()

	pl.live.Wait()
}
