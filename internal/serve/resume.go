package serve

// The resumable face of the connection state machine, used by the
// event-multiplexed front (internal/shard's poller threads).  Where the
// blocking path (ReadRequest/WriteResponses) owns its thread and parks
// on the CML clock whenever the socket stalls, the resumable path
// returns ErrWouldBlock the moment the socket drains and expects the
// owner to re-enter it when the poller reports readiness again.  All
// progress lives on the Conn itself — the residual buffer, the
// read-deadline latch, and the staged write buffer — so a connection
// costs only that parked state while idle, not a thread.
//
// Socket I/O on this path is raw: the owner hands the Conn its file
// descriptor (SetFD) and a shared scratch block, and reads/writes go
// through readFD/writeFD (fdio_unix.go) rather than net.Conn, keeping
// the Go runtime's own netpoller out of the loop entirely.

import (
	"bytes"
	"errors"
	"net"

	"repro/internal/proc"
)

// ErrWouldBlock reports that the socket drained (read) or filled
// (write) before the state machine could finish its step; the owner
// should park the connection until the poller reports it ready again.
var ErrWouldBlock = errors.New("serve: operation would block")

// ConnState is the explicit phase of a resumable connection.
type ConnState uint8

const (
	// StateIdle: between requests; only parked state is held.
	StateIdle ConnState = iota
	// StateReading: a request head or body is partially buffered.
	StateReading
	// StateDispatched: a parsed batch is in flight to a backend; the
	// connection must not be closed or recycled until the reply group
	// completes, or late deliveries would write into reused cells.
	StateDispatched
	// StateWriting: a rendered response batch is partially written.
	StateWriting
)

// State reports the connection's current phase.
func (c *Conn) State() ConnState { return c.state }

// SetState moves the machine to s.  The dispatch phase is driven by the
// owner (the poller thread), not by Conn itself, so the transition into
// and out of StateDispatched is the owner's to make.
func (c *Conn) SetState(s ConnState) { c.state = s }

// SetFD hands the Conn its raw file descriptor for the resumable I/O
// path.  The caller keeps the fd non-blocking and open for the Conn's
// lifetime; PollRead/PollWrite use it directly.
func (c *Conn) SetFD(fd int) { c.fd = fd }

// ReadDeadline reports the armed request deadline: (deadline, true)
// once the current request has started arriving, else (0, false) — the
// idle keep-alive budget before first byte is the owner's to track.
func (c *Conn) ReadDeadline() (int64, bool) { return c.rdDeadline, c.rdStarted }

// maxParkedBytes caps each per-connection buffer retained across an
// idle park.  A batch can transiently grow the residual buffer, arena,
// or staged write buffer well past this; trimming on park is what keeps
// the per-idle-connection footprint bounded at tens-of-thousands of
// connections.
const maxParkedBytes = 16 << 10

// PollRead is the resumable ReadRequest: it parses one request from the
// residual buffer plus whatever the socket yields without blocking,
// returning ErrWouldBlock when the socket drains mid-head or mid-body.
// Progress (partial bytes, the arrival tick, the armed deadline)
// persists on the Conn, so the next call resumes exactly where this one
// stopped.  scratch is the owner's read block — shared across all the
// connections a poller thread drives, which is what keeps an idle
// connection from owning a read buffer.  Deadline semantics match
// ReadRequest: headDeadline bounds the wait for the first byte, and the
// whole request must complete within budget ticks of that byte.
func (c *Conn) PollRead(scratch []byte, headDeadline, budget int64) (*Request, error) {
	if c.state != StateReading {
		// Fresh request wait: the previous batch is fully answered, so
		// the arena bodies are dead and the space can be reused.
		c.arena = c.arena[:0]
		c.state = StateReading
		c.rdStarted = len(c.acc) > 0
		c.rdArrival = c.cfg.Clock.Now()
		if c.rdStarted {
			c.rdDeadline = c.rdArrival + budget
		}
	}
	for {
		if headerEnd := bytes.Index(c.acc, crlf2); headerEnd >= 0 {
			return c.pollBody(scratch, headerEnd)
		}
		if len(c.acc) > maxHeaderBytes {
			return nil, ErrTooLarge
		}
		dl := headDeadline
		if c.rdStarted {
			dl = c.rdDeadline
		}
		if c.cfg.Clock.Now() >= dl {
			return nil, ErrDeadline
		}
		if c.cfg.Aborted != nil && c.cfg.Aborted() {
			return nil, ErrAborted
		}
		n, err := c.fill(scratch)
		if n > 0 && !c.rdStarted {
			c.rdStarted = true
			c.rdArrival = c.cfg.Clock.Now()
			c.rdDeadline = c.rdArrival + budget
		}
		if err != nil {
			return nil, err
		}
	}
}

// pollBody finishes a request whose head is fully buffered: parse, then
// pull the declared body without blocking.  The head is re-parsed on
// each resume — parsing is a scan over bytes already in cache, and
// keeping no parsed-but-unfinished state means ErrWouldBlock can be
// returned from anywhere without a half-built Request to carry.
func (c *Conn) pollBody(scratch []byte, headerEnd int) (*Request, error) {
	req, contentLength, err := parseHeader(c.acc[:headerEnd])
	if err != nil {
		return nil, err
	}
	if contentLength > maxBodyBytes {
		return nil, ErrTooLarge
	}
	total := headerEnd + 4 + contentLength
	for len(c.acc) < total {
		if c.cfg.Clock.Now() >= c.rdDeadline {
			return nil, ErrDeadline
		}
		if _, err := c.fill(scratch); err != nil {
			return nil, err
		}
	}
	req.Body = c.takeBody(headerEnd+4, total)
	req.Arrival = c.rdArrival
	req.Deadline = c.rdDeadline
	return req, nil
}

// fill performs one raw non-blocking read into scratch and appends the
// yield to the residual buffer.  A drained socket reports ErrWouldBlock,
// a closed peer io.EOF.
func (c *Conn) fill(scratch []byte) (int, error) {
	n, err := readFD(c.fd, scratch)
	if n > 0 {
		c.acc = append(c.acc, scratch[:n]...)
	}
	return n, err
}

// StageResponses renders a response batch into the connection's staged
// write buffer and arms StateWriting; PollWrite then drains it.  Every
// response except the last carries Connection: keep-alive (more of the
// batch follows by construction); the last takes keepAlive.  Rendering
// goes through a pooled respBuf and is copied out, so no pooled buffer
// is pinned while the connection parks mid-write.
func (c *Conn) StageResponses(resps []Response, keepAlive bool) {
	if len(resps) == 0 {
		return
	}
	if c.cfg.OnWriteBatch != nil {
		c.cfg.OnWriteBatch(len(resps))
	}
	shard, _ := proc.TrySelf()
	rb := c.cfg.Pool.get(shard)
	last := len(resps) - 1
	for i := range resps {
		renderResponse(rb, resps[i], i < last || keepAlive)
	}
	c.wbuf = append(c.wbuf[:0], rb.b.Bytes()...)
	c.woff = 0
	c.cfg.Pool.put(shard, rb)
	c.state = StateWriting
}

// PollWrite pushes the staged bytes at the socket without blocking.  It
// returns (true, nil) when the batch is fully written, (false, nil)
// when the socket filled — park for writability and call again — and a
// real socket error otherwise.
func (c *Conn) PollWrite() (bool, error) {
	for c.woff < len(c.wbuf) {
		n, err := writeFD(c.fd, c.wbuf[c.woff:])
		c.woff += n
		if err != nil {
			if err == ErrWouldBlock {
				return false, nil
			}
			return false, err
		}
	}
	c.wbuf = c.wbuf[:0]
	c.woff = 0
	return true, nil
}

// ParkIdle returns the machine to StateIdle between requests, trimming
// any batch-inflated buffer past maxParkedBytes so a parked idle
// connection holds only its small steady-state footprint.  The residual
// buffer is only trimmed when empty — buffered pipelined bytes are the
// next request.
//
// Staged-but-unflushed write bytes are never discarded: if the write
// buffer still holds bytes the socket hasn't taken (a chunk flush
// parked on EPOLLOUT mid-stream), the machine stays in StateWriting and
// only the read-side latches reset.  Silently dropping a partial flush
// would desynchronize the wire — the client already saw a prefix of the
// staged bytes — so the caller must finish or kill the connection, not
// park it idle.
func (c *Conn) ParkIdle() {
	c.rdStarted = false
	c.rdDeadline = 0
	if c.woff < len(c.wbuf) {
		c.state = StateWriting
		return
	}
	c.state = StateIdle
	if cap(c.wbuf) > maxParkedBytes {
		c.wbuf = nil
	}
	if cap(c.arena) > maxParkedBytes {
		c.arena = nil
	}
	if len(c.acc) == 0 && cap(c.acc) > maxParkedBytes {
		c.acc = nil
	}
}

// Reset rebinds a pooled Conn to a freshly accepted connection, keeping
// its allocated buffers — the conn-object recycling the multiplexed
// front uses so connection churn does not allocate.  Unlike ParkIdle,
// Reset deliberately truncates any staged bytes: they belonged to the
// previous (now closed) connection and must never leak into the fresh
// one's response stream.
func (c *Conn) Reset(nc net.Conn, fd int) {
	c.nc = nc
	c.fd = fd
	c.acc = c.acc[:0]
	c.arena = c.arena[:0]
	c.wbuf = c.wbuf[:0]
	c.woff = 0
	c.state = StateIdle
	c.rdStarted = false
	c.rdArrival = 0
	c.rdDeadline = 0
}
