//go:build linux

package serve

// Resumable state-machine tests: ErrWouldBlock mid-header and mid-body
// with exact resume, EOF and deadline surfacing, the wall backstop that
// keeps a stalled clock pump from extending budgets, and the zero-alloc
// guarantee on the park/resume/stage/write cycle.  Built on socketpairs
// so the raw-fd path (fdio_unix.go) is the one under test.

import (
	"io"
	"net"
	"syscall"
	"testing"
	"time"

	"repro/internal/cml"
)

// resumePair returns a Conn wired to one end of a non-blocking
// socketpair and the peer fd the test writes stimulus into.
func resumePair(t *testing.T) (*Conn, int) {
	t.Helper()
	var fds [2]int
	pair, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM, 0)
	if err != nil {
		t.Fatal(err)
	}
	fds = pair
	if err := syscall.SetNonblock(fds[0], true); err != nil {
		t.Fatal(err)
	}
	c := NewConn(nil, ConnConfig{Clock: cml.NewClock(), Pool: NewBufPool(1)})
	c.SetFD(fds[0])
	t.Cleanup(func() {
		syscall.Close(fds[0])
		syscall.Close(fds[1])
	})
	return c, fds[1]
}

func mustWrite(t *testing.T, fd int, s string) {
	t.Helper()
	if _, err := syscall.Write(fd, []byte(s)); err != nil {
		t.Fatal(err)
	}
}

// TestPollReadResumesMidHeader drains the socket mid-header: PollRead
// must return ErrWouldBlock with the partial head retained and the
// request deadline armed from the first byte, then parse the request on
// the next call once the rest arrives.
func TestPollReadResumesMidHeader(t *testing.T) {
	c, peer := resumePair(t)
	scratch := make([]byte, 4096)

	mustWrite(t, peer, "GET /a?x=1 HTTP/1.1\r\nHost: t\r\nCont")
	if _, err := c.PollRead(scratch, 100, 50); err != ErrWouldBlock {
		t.Fatalf("mid-header: err = %v, want ErrWouldBlock", err)
	}
	if c.State() != StateReading {
		t.Fatalf("state = %d, want StateReading", c.State())
	}
	if dl, started := c.ReadDeadline(); !started || dl != 50 {
		t.Fatalf("deadline = (%d, %v), want (50, true) armed from first byte", dl, started)
	}

	mustWrite(t, peer, "ent-Length: 0\r\n\r\n")
	req, err := c.PollRead(scratch, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/a" || req.Query("x") != "1" {
		t.Fatalf("resumed request = %+v", req)
	}
	if req.Deadline != req.Arrival+50 {
		t.Errorf("deadline = %d, want arrival %d + 50", req.Deadline, req.Arrival)
	}
}

// TestPollReadResumesMidBody stalls after the head and half the body;
// the resume must deliver the full body without re-reading what arrived.
func TestPollReadResumesMidBody(t *testing.T) {
	c, peer := resumePair(t)
	scratch := make([]byte, 4096)

	mustWrite(t, peer, "POST /b HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\n\r\nab")
	if _, err := c.PollRead(scratch, 100, 50); err != ErrWouldBlock {
		t.Fatalf("mid-body: err = %v, want ErrWouldBlock", err)
	}
	mustWrite(t, peer, "cde")
	req, err := c.PollRead(scratch, 100, 50)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "POST" || string(req.Body) != "abcde" {
		t.Fatalf("resumed request = %+v body %q", req, req.Body)
	}
}

// TestPollReadSurfacesEOF: a closed peer reports io.EOF, the silent
// hangup the owner's error taxonomy maps to a wordless close.
func TestPollReadSurfacesEOF(t *testing.T) {
	c, peer := resumePair(t)
	syscall.Close(peer)
	if _, err := c.PollRead(make([]byte, 64), 100, 50); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

// TestPollReadDeadlines: an expired idle budget surfaces ErrDeadline
// before the first byte, and an armed request deadline does after it.
func TestPollReadDeadlines(t *testing.T) {
	c, _ := resumePair(t)
	// Clock.Now() is 0 and headDeadline is 0: the idle budget is spent.
	if _, err := c.PollRead(make([]byte, 64), 0, 50); err != ErrDeadline {
		t.Fatalf("idle expiry: err = %v, want ErrDeadline", err)
	}

	c2, peer := resumePair(t)
	mustWrite(t, peer, "G")
	// budget 0: the deadline arms at the first byte and is immediately due.
	if _, err := c2.PollRead(make([]byte, 64), 100, 0); err != ErrDeadline {
		t.Fatalf("armed expiry: err = %v, want ErrDeadline", err)
	}
	if !c2.Partial() {
		t.Error("partial bytes must stay buffered across a deadline error")
	}
}

// TestReadRequestWallBackstopStalledClock freezes the tick domain (the
// clock is never pumped) and checks that the blocking read path still
// gives up: the wall backstop derived from Tick must bound the wait
// even though Clock.Now() never reaches the deadline.
func TestReadRequestWallBackstopStalledClock(t *testing.T) {
	for _, tc := range []struct {
		name string
		prep func(cl net.Conn)
	}{
		{"idle", func(net.Conn) {}},
		{"mid-header", func(cl net.Conn) { cl.Write([]byte("GET /x HTTP/1.1\r\nHo")) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl, sv := net.Pipe()
			defer cl.Close()
			defer sv.Close()
			c := NewConn(sv, ConnConfig{
				Clock:      cml.NewClock(), // never advanced: a stalled pump
				Park:       func(int64) {},
				PollWindow: time.Millisecond,
				Tick:       time.Millisecond,
			})
			go tc.prep(cl) // net.Pipe writes rendezvous with the reader
			done := make(chan error, 1)
			go func() {
				_, err := c.ReadRequest(50, 50)
				done <- err
			}()
			select {
			case err := <-done:
				if err != ErrDeadline {
					t.Fatalf("err = %v, want ErrDeadline from the wall backstop", err)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("ReadRequest rode the stalled clock far past its 50ms wall budget")
			}
		})
	}
}

// TestNoAllocsParkResume pins the multiplexed front's per-cycle cost:
// a poll that would block, a staged response, its non-blocking write,
// the idle park, and a pooled-conn Reset must not allocate.  (Request
// parsing allocates by design — header strings escape into the Request —
// so the cycle under test is the state-machine overhead around it.)
func TestNoAllocsParkResume(t *testing.T) {
	c, peer := resumePair(t)
	scratch := make([]byte, 4096)
	drain := make([]byte, 4096)
	resp := Response{Status: 200, Body: []byte("ok")}
	cycle := func() {
		if _, err := c.PollRead(scratch, 100, 50); err != ErrWouldBlock {
			t.Fatalf("err = %v, want ErrWouldBlock", err)
		}
		c.StageResponses([]Response{resp}, true)
		if done, err := c.PollWrite(); err != nil || !done {
			t.Fatalf("PollWrite = (%v, %v)", done, err)
		}
		c.ParkIdle()
		c.Reset(nil, c.fd)
		syscall.Read(peer, drain)
	}
	cycle() // warm the staged-write buffer and the pooled render buffer
	resps := [1]Response{resp}
	perRun := func() {
		c.PollRead(scratch, 100, 50)
		c.StageResponses(resps[:], true)
		c.PollWrite()
		c.ParkIdle()
		c.Reset(nil, c.fd)
		syscall.Read(peer, drain)
	}
	if n := testing.AllocsPerRun(200, perRun); n != 0 {
		t.Errorf("park/resume cycle allocates %.1f times per run, want 0", n)
	}
}
