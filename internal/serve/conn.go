package serve

// Conn is the reusable HTTP/1.1 connection state machine, extracted from
// the one-request-per-connection worker so that both the server's own
// direct path and the sharded front acceptor (internal/shard) drive
// persistent keep-alive connections through one implementation.
//
// The state the machine carries across requests is the residual read
// buffer: bytes that arrived beyond the previous request's body — the
// head of a pipelined next request — are retained and consumed before
// the socket is read again, so a client that writes several requests
// back-to-back has them answered back-to-back, in order.  All socket I/O
// is cooperative: each blocking call is capped by a short poll window,
// and on timeout the owning thread parks on its CML clock for a tick
// instead of holding its proc.

import (
	"bytes"
	"errors"
	"net"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/cml"
	"repro/internal/metrics"
	"repro/internal/proc"
)

var (
	// ErrDeadline reports that the request (or idle keep-alive) deadline
	// passed before a full request arrived or a response was written.
	ErrDeadline = errors.New("serve: request deadline exceeded")
	// ErrTooLarge reports a header block or declared body over the limits.
	ErrTooLarge = errors.New("serve: request too large")
	// ErrBadRequest reports an unparseable request head.
	ErrBadRequest = errors.New("serve: malformed request")
	// ErrAborted reports that the config's Aborted hook (drain) fired
	// while waiting for a request.
	ErrAborted = errors.New("serve: read aborted")
)

// ConnConfig wires a Conn to its owner's scheduling world.  Every field
// except Clock and Park is optional.
type ConnConfig struct {
	// Clock is the owner's virtual clock; deadlines are ticks on it.
	Clock *cml.Clock
	// Park suspends the calling thread for the given number of ticks.
	Park func(ticks int64)
	// PollWindow caps each blocking socket call (default 1ms).
	PollWindow time.Duration
	// Tick is the wall-clock length of one virtual-clock tick (default:
	// PollWindow).  It anchors the wall backstop the blocking I/O paths
	// derive from their tick deadlines, so a stalled clock pump bounds —
	// rather than extends — every idle and write budget.
	Tick time.Duration
	// Pool supplies response render buffers; nil allocates per response.
	Pool *BufPool
	// OnReadPark is called each time a blocked read parks (metrics hook).
	OnReadPark func()
	// OnWriteBatch is called with the number of responses coalesced into
	// each WriteResponses socket-write batch (metrics hook).
	OnWriteBatch func(n int)
	// Aborted, when non-nil and returning true, aborts an in-progress
	// ReadRequest with ErrAborted — the drain hook.
	Aborted func() bool
}

// Conn drives one client connection.  The first field group is shared
// by both faces of the machine; the second is the resumable path's
// parked state (resume.go) — deliberately small, because at the
// multiplexed front's scale it is the per-idle-connection cost.
type Conn struct {
	cfg   ConnConfig
	nc    net.Conn
	acc   []byte // unconsumed input: partial or pipelined next request
	buf   []byte // scratch read block (blocking path only; lazily allocated)
	arena []byte // request-body arena, reset at each batch start

	fd         int       // raw descriptor for the resumable path; -1 when unused
	state      ConnState // explicit phase (resumable path)
	rdStarted  bool      // current request has begun arriving
	rdArrival  int64     // tick the current request started
	rdDeadline int64     // tick the current request must complete by
	wbuf       []byte    // staged response bytes (StateWriting)
	woff       int       // staged bytes already written
}

// NewConn wraps an accepted connection.  The blocking path's read block
// is allocated on first use, so a multiplexed connection — which reads
// through its owner's shared scratch instead — never pays for one.
func NewConn(nc net.Conn, cfg ConnConfig) *Conn {
	if cfg.PollWindow <= 0 {
		cfg.PollWindow = time.Millisecond
	}
	if cfg.Tick <= 0 {
		cfg.Tick = cfg.PollWindow
	}
	return &Conn{cfg: cfg, nc: nc, fd: -1}
}

// Partial reports whether unconsumed request bytes are buffered — used
// by callers to distinguish an idle keep-alive deadline (close silently)
// from a mid-request stall (answer 504).
func (c *Conn) Partial() bool { return len(c.acc) > 0 }

var crlf2 = []byte("\r\n\r\n")

// ReadRequest reads and parses one request.  Until the first byte of the
// request is buffered the wait is bounded by headDeadline (the keep-alive
// idle budget); once the request has started arriving — including via
// residual pipelined bytes — the whole head+body must complete within
// budget ticks of that start.  On success the returned request carries
// Arrival (start tick) and Deadline (start + budget).
func (c *Conn) ReadRequest(headDeadline, budget int64) (*Request, error) {
	// A blocking read starts a new batch: every request of the previous
	// one has been handled and its response written, so the arena slices
	// handed out as bodies are dead and the space can be reused.
	c.arena = c.arena[:0]
	started := len(c.acc) > 0
	var deadline int64
	if started {
		deadline = c.cfg.Clock.Now() + budget
	}
	arrival := c.cfg.Clock.Now()

	dl := headDeadline
	if started {
		dl = deadline
	}
	wall := c.wallCap(dl)

	headerEnd := bytes.Index(c.acc, crlf2)
	for headerEnd < 0 {
		if len(c.acc) > maxHeaderBytes {
			return nil, ErrTooLarge
		}
		if c.cfg.Clock.Now() >= dl || !time.Now().Before(wall) {
			return nil, ErrDeadline
		}
		if c.cfg.Aborted != nil && c.cfg.Aborted() {
			return nil, ErrAborted
		}
		n, err := c.read(wall)
		if n > 0 {
			if !started {
				started = true
				arrival = c.cfg.Clock.Now()
				deadline = arrival + budget
				dl = deadline
				wall = c.wallCap(dl)
			}
			headerEnd = bytes.Index(c.acc, crlf2)
			if headerEnd >= 0 {
				break
			}
		}
		if err != nil {
			if isTimeout(err) {
				if c.cfg.OnReadPark != nil {
					c.cfg.OnReadPark()
				}
				// Pre-park backstop: Park rides the same clock the pump
				// drives, so an expired wall budget must return before
				// parking or a stalled pump strands the thread.
				if !time.Now().Before(wall) {
					return nil, ErrDeadline
				}
				c.cfg.Park(1)
				continue
			}
			return nil, err
		}
	}
	if !started { // whole head was already buffered
		deadline = arrival + budget
	}
	req, contentLength, err := parseHeader(c.acc[:headerEnd])
	if err != nil {
		return nil, err
	}
	if contentLength > maxBodyBytes {
		return nil, ErrTooLarge
	}
	total := headerEnd + 4 + contentLength
	for len(c.acc) < total {
		if c.cfg.Clock.Now() >= deadline || !time.Now().Before(wall) {
			return nil, ErrDeadline
		}
		n, err := c.read(wall)
		if n == 0 && err != nil {
			if isTimeout(err) {
				if c.cfg.OnReadPark != nil {
					c.cfg.OnReadPark()
				}
				if !time.Now().Before(wall) {
					return nil, ErrDeadline
				}
				c.cfg.Park(1)
				continue
			}
			return nil, err
		}
	}
	req.Body = c.takeBody(headerEnd+4, total)
	req.Arrival = arrival
	req.Deadline = deadline
	return req, nil
}

// ReadBuffered parses one more request from the residual buffer without
// touching the socket: after a blocking ReadRequest returns, the batching
// front drains any fully-buffered pipelined successors this way, so a
// client that wrote K requests back-to-back has all K forwarded as one
// multi-push.  It returns (nil, false, nil) when a complete request is
// not yet buffered — the partial head waits for the next blocking
// ReadRequest.  A head that is complete but malformed (or declares an
// oversized body) is surfaced immediately as ErrBadRequest/ErrTooLarge:
// the caller must answer it and close, because a poisoned pipeline would
// otherwise be re-parsed forever — the bytes can never become a valid
// request, and more reads only pile garbage behind them.
func (c *Conn) ReadBuffered(budget int64) (*Request, bool, error) {
	headerEnd := bytes.Index(c.acc, crlf2)
	if headerEnd < 0 {
		return nil, false, nil
	}
	req, contentLength, err := parseHeader(c.acc[:headerEnd])
	if err != nil {
		return nil, false, err
	}
	if contentLength > maxBodyBytes {
		return nil, false, ErrTooLarge
	}
	total := headerEnd + 4 + contentLength
	if len(c.acc) < total {
		return nil, false, nil
	}
	arrival := c.cfg.Clock.Now()
	req.Body = c.takeBody(headerEnd+4, total)
	req.Arrival = arrival
	req.Deadline = arrival + budget
	return req, true, nil
}

// takeBody moves acc[from:to] into the connection's arena and slides acc
// left to expose the next pipelined request, returning the body as a
// capacity-clipped arena slice.  The arena is reset at each blocking
// ReadRequest, so in the steady state (arena grown to the largest batch
// seen) the copy allocates nothing; a mid-batch arena growth leaves
// earlier bodies pointing into the old backing array, which stays valid.
func (c *Conn) takeBody(from, to int) []byte {
	off := len(c.arena)
	c.arena = append(c.arena, c.acc[from:to]...)
	c.acc = c.acc[:copy(c.acc, c.acc[to:])]
	return c.arena[off:len(c.arena):len(c.arena)]
}

// wallCap converts a tick-domain deadline into a wall-clock backstop,
// anchored at the moment the deadline is armed: now plus the remaining
// tick budget times the tick's wall length.  Socket deadlines and the
// pre-park expiry checks use this instant, so both time domains agree
// while the pump runs — and when the pump stalls, the wall anchor keeps
// counting, so a stall can only leave the budget at its armed length,
// never extend it.  (A stall before arming still over-reports the
// remaining ticks — Clock.Now() is stale — but the error is bounded by
// the stall, where the unanchored form was unbounded.)
func (c *Conn) wallCap(dl int64) time.Time {
	return time.Now().Add(time.Duration(dl-c.cfg.Clock.Now()) * c.cfg.Tick)
}

// read performs one poll-window-capped socket read into the residual
// buffer, returning the byte count and any error.  The socket deadline
// is the poll window clipped to the tick-derived wall backstop, so the
// read wakes no later than the budget it is serving.
func (c *Conn) read(wall time.Time) (int, error) {
	if c.buf == nil {
		c.buf = make([]byte, 4096)
	}
	window := time.Now().Add(c.cfg.PollWindow)
	if !wall.IsZero() && wall.Before(window) {
		window = wall
	}
	c.nc.SetReadDeadline(window)
	n, err := c.nc.Read(c.buf)
	if n > 0 {
		c.acc = append(c.acc, c.buf[:n]...)
	}
	return n, err
}

// WriteResponse renders resp — with correct Content-Length and a
// Connection header matching keepAlive — into a pooled buffer and writes
// it cooperatively, giving up at capTick on the virtual clock so a
// stalled client cannot hold the writing thread past the request's
// useful lifetime.
func (c *Conn) WriteResponse(resp Response, capTick int64, keepAlive bool) error {
	shard, _ := proc.TrySelf()
	rb := c.cfg.Pool.get(shard)
	renderResponse(rb, resp, keepAlive)
	err := c.writeAll(rb.b.Bytes(), capTick, c.wallCap(capTick))
	c.cfg.Pool.put(shard, rb)
	return err
}

// vectoredWriteBytes is the batch body volume above which WriteResponses
// stops flattening bodies into the render buffer and hands the kernel an
// iovec instead: past this point copying costs more than the writev
// setup, and the render buffer would balloon to the payload size.
const vectoredWriteBytes = 64 << 10

// WriteResponses writes a whole batch of responses with one deadline-set
// and one socket write in the common case — the reply-path complement of
// the request side's multi-push.  Every response except the last carries
// Connection: keep-alive (more of the batch follows by construction);
// the last takes the caller's keepAlive decision.  Small batches render
// into one pooled multi-response buffer; batches with large bodies
// render only the headers and ride a net.Buffers vectored write, so
// bodies are never copied.  Either way the socket write follows the same
// poll-window-then-park discipline as writeAll, giving up at capTick.
func (c *Conn) WriteResponses(resps []Response, capTick int64, keepAlive bool) error {
	if len(resps) == 0 {
		return nil
	}
	if c.cfg.OnWriteBatch != nil {
		c.cfg.OnWriteBatch(len(resps))
	}
	shard, _ := proc.TrySelf()
	rb := c.cfg.Pool.get(shard)
	defer c.cfg.Pool.put(shard, rb)
	total := 0
	for i := range resps {
		total += len(resps[i].Body)
	}
	last := len(resps) - 1
	wall := c.wallCap(capTick)
	if total <= vectoredWriteBytes {
		for i := range resps {
			renderResponse(rb, resps[i], i < last || keepAlive)
		}
		return c.writeAll(rb.b.Bytes(), capTick, wall)
	}
	// Vectored path: headers land contiguously in the pooled buffer (the
	// offsets are recorded first, because the buffer may move while it
	// grows), bodies are referenced in place.
	rb.offs = rb.offs[:0]
	for i := range resps {
		rb.offs = append(rb.offs, rb.b.Len())
		renderHeader(rb, resps[i], i < last || keepAlive, len(resps[i].Body))
	}
	hdrs := rb.b.Bytes()
	rb.iov = rb.iov[:0]
	for i := range resps {
		end := len(hdrs)
		if i < last {
			end = rb.offs[i+1]
		}
		rb.iov = append(rb.iov, hdrs[rb.offs[i]:end], resps[i].Body)
	}
	// writeBuffers consumes its argument, so hand it a window over the
	// assembly rather than the assembly itself; the window lives on the
	// pooled buffer (not the stack) so the escaping pointer costs nothing.
	rb.iovw = rb.iov
	err := c.writeBuffers(&rb.iovw, capTick, wall)
	clear(rb.iov) // drop header/body references for the collector
	rb.iov, rb.iovw = rb.iov[:0], nil
	return err
}

// writeBuffers writes an iovec batch with the same poll-window-then-park
// discipline as writeAll, giving up at capTick.  net.Buffers consumes
// its consumed prefix across calls, so a partial vectored write resumes
// exactly where the socket stalled.
func (c *Conn) writeBuffers(bufs *net.Buffers, capTick int64, wall time.Time) error {
	for len(*bufs) > 0 {
		if c.cfg.Clock.Now() >= capTick || !time.Now().Before(wall) {
			return ErrDeadline
		}
		c.nc.SetWriteDeadline(c.writeWindow(wall))
		if _, err := bufs.WriteTo(c.nc); err != nil {
			if isTimeout(err) && len(*bufs) > 0 {
				if !time.Now().Before(wall) {
					return ErrDeadline
				}
				c.cfg.Park(1)
				continue
			}
			return err
		}
	}
	return nil
}

// writeAll writes buf with the same poll-window-then-park discipline as
// ReadRequest, giving up at capTick (or its wall backstop).
func (c *Conn) writeAll(buf []byte, capTick int64, wall time.Time) error {
	off := 0
	for off < len(buf) {
		if c.cfg.Clock.Now() >= capTick || !time.Now().Before(wall) {
			return ErrDeadline
		}
		c.nc.SetWriteDeadline(c.writeWindow(wall))
		n, err := c.nc.Write(buf[off:])
		off += n
		if err != nil {
			if isTimeout(err) && off < len(buf) {
				if !time.Now().Before(wall) {
					return ErrDeadline
				}
				c.cfg.Park(1)
				continue
			}
			return err
		}
	}
	return nil
}

// writeWindow is the per-call socket write deadline: the poll window
// clipped to the tick-derived wall backstop.
func (c *Conn) writeWindow(wall time.Time) time.Time {
	window := time.Now().Add(c.cfg.PollWindow)
	if !wall.IsZero() && wall.Before(window) {
		window = wall
	}
	return window
}

// renderResponse builds the wire form of resp.  It is alloc-free in the
// steady state: ints are formatted through the respBuf's own scratch
// array and everything lands in its reused bytes.Buffer.
func renderResponse(rb *respBuf, resp Response, keepAlive bool) {
	renderHeader(rb, resp, keepAlive, len(resp.Body))
	rb.b.Write(resp.Body)
}

// renderHeader renders the status line and headers (through the blank
// line) for a response whose body is clen bytes — the shared front half
// of the flat and vectored render paths.
func renderHeader(rb *respBuf, resp Response, keepAlive bool, clen int) {
	ctype := resp.ContentType
	if ctype == "" {
		ctype = "text/plain; charset=utf-8"
	}
	b := &rb.b
	b.WriteString("HTTP/1.1 ")
	b.Write(strconv.AppendInt(rb.scratch[:0], int64(resp.Status), 10))
	b.WriteByte(' ')
	b.WriteString(statusText(resp.Status))
	b.WriteString("\r\nContent-Type: ")
	b.WriteString(ctype)
	b.WriteString("\r\nContent-Length: ")
	b.Write(strconv.AppendInt(rb.scratch[:0], int64(clen), 10))
	if resp.RetryAfter > 0 {
		b.WriteString("\r\nRetry-After: ")
		b.Write(strconv.AppendInt(rb.scratch[:0], int64(resp.RetryAfter), 10))
	}
	if keepAlive {
		b.WriteString("\r\nConnection: keep-alive\r\n\r\n")
	} else {
		b.WriteString("\r\nConnection: close\r\n\r\n")
	}
}

// respBuf is one pooled response render buffer; scratch backs integer
// formatting, offs and iov back the vectored batch path, so the render
// path never reaches for the heap.
type respBuf struct {
	b       bytes.Buffer
	scratch [24]byte
	offs    []int       // per-response header offsets into b (vectored path)
	iov     net.Buffers // reused iovec assembly (vectored path)
	iovw    net.Buffers // consumable window over iov handed to writeBuffers
}

// bufShard holds one proc's cached buffer alone on its cache line, the
// metrics-shard padding pattern: Get/Put are single uncontended atomic
// swaps on a line private to the calling proc.
type bufShard struct {
	p atomic.Pointer[respBuf]
	_ [metrics.CacheLineBytes - 8]byte
}

// BufPool is a per-proc pool of response render buffers.  A nil pool is
// valid and allocates per call.
type BufPool struct {
	mask   uint32
	shards []bufShard
}

// NewBufPool returns a pool with one shard per proc (rounded up to a
// power of two so any id masks to a valid shard).
func NewBufPool(procs int) *BufPool {
	n := 1
	for n < procs {
		n <<= 1
	}
	return &BufPool{mask: uint32(n - 1), shards: make([]bufShard, n)}
}

// get takes the shard's cached buffer (reset), or allocates one.
func (p *BufPool) get(shard int) *respBuf {
	if p == nil {
		return &respBuf{}
	}
	if rb := p.shards[uint32(shard)&p.mask].p.Swap(nil); rb != nil {
		rb.b.Reset()
		return rb
	}
	return &respBuf{}
}

// put caches the buffer on the shard the calling proc now occupies (a
// thread may have migrated since get; either shard is a valid home).
func (p *BufPool) put(shard int, rb *respBuf) {
	if p == nil {
		return
	}
	p.shards[uint32(shard)&p.mask].p.Store(rb)
}
