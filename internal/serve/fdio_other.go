//go:build !unix

package serve

// Stub fd I/O for platforms without the unix syscall read/write shape.
// The multiplexed front is unix-only (the netpoll fallback still
// compiles everywhere, but raw fd I/O does not); the blocking
// per-connection-thread path remains fully portable.

import "errors"

var errNoRawFD = errors.New("serve: raw fd I/O unsupported on this platform")

func readFD(fd int, buf []byte) (int, error)  { return 0, errNoRawFD }
func writeFD(fd int, buf []byte) (int, error) { return 0, errNoRawFD }
