package serve

// /work/mlalloc is the ML-heap-backed allocating kernel: the request
// path that finally connects the paper's memory-management half (§5,
// mlheap + gcsync) to the serving fabric built on its scheduling half.
// Each request attaches to the server's shared gcsync.World as a proc,
// builds an n-cell cons list with Record (bump allocation, clean points
// at every call), publishes its list head into a small shared registry
// record guarded by a GC-aware lock, folds the list back down, and
// detaches.  Under load, concurrent requests exhaust the nursery and
// meet at the clean-point barrier, where they collect in parallel —
// the /metrics counters mlheap.gc_pause_ticks, mlheap.par_copied_words
// and gcsync.section_entries expose exactly that machinery, and
// BENCH_gc.json compares it against the sequential ablation.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gcsync"
	"repro/internal/mlheap"
	"repro/internal/spinlock"
	"repro/internal/syncx"
)

const (
	mlSharedSlots = 16  // registry record slots shared across requests
	mlFoldStride  = 512 // list cells folded between explicit clean points
	mlMaxCells    = 1 << 16
)

// initMLAlloc wires the shared world into the server: the yield hook
// (barrier waiters on a green-thread world must yield the scheduler,
// not park the OS thread), the shared registry record the handlers
// publish into, its GC-aware guard lock, and the /work/mlalloc route.
// Called from New when Options.MLWorld is set.
func (srv *Server) initMLAlloc() {
	w := srv.opts.MLWorld
	srv.mlWorld = w
	switch {
	case srv.opts.FairLocks && srv.opts.MLGCAware:
		srv.mlLock = syncx.FairFactory(w, nil)()
	case srv.opts.FairLocks:
		srv.mlLock = syncx.FairFactory(nil, nil)()
	case srv.opts.MLGCAware:
		srv.mlLock = spinlock.GCAware(core.NewMutexLock, w)()
	default:
		srv.mlLock = core.NewMutexLock()
	}
	// Bootstrap the shared registry on the host goroutine: attach a
	// temporary proc, allocate the record, hand the root to the world.
	// This happens before the yield hook is installed — the host
	// goroutine is not a scheduler thread and must not green-yield.
	boot := w.Attach()
	slots := make([]mlheap.Value, mlSharedSlots)
	for i := range slots {
		slots[i] = mlheap.Int(0)
	}
	srv.mlShared = boot.Record(slots...)
	w.AddRoot(&srv.mlShared)
	boot.Detach()
	// From here the world's procs are serve's green threads: barrier
	// waiters must yield the thread scheduler, never park the OS thread
	// multiplexing the very threads the barrier is waiting for.
	w.SetYield(srv.sys.Yield)
	srv.Handle("/work/mlalloc", srv.handleMLAlloc)
}

// handleMLAlloc serves one allocating request:
// /work/mlalloc?n=<cells>&seed=<s>.  The reply carries the fold
// checksum plus the world's collection count, so load generators can
// assert collections actually happened.
func (srv *Server) handleMLAlloc(req *Request) Response {
	n := req.QueryInt("n", 2048)
	if n < 1 {
		n = 1
	}
	if n > mlMaxCells {
		n = mlMaxCells
	}
	seed := int64(req.QueryInt("seed", 1))

	// Attach as a proc.  TryAttach refuses while a collection is pending
	// (a fresh proc must not widen a closing barrier) and while all proc
	// slots are taken.  When the refusal coincides with a running
	// parallel copy and the server is GC-aware, steal copying work and
	// re-try immediately — a tick park (milliseconds) would otherwise
	// stretch every request that lands during a microsecond-scale stop.
	// TryHelp is lock-free by design: polling the world mutex here
	// would contend the very barrier the stop is waiting on.  In every
	// other case park a tick and retry rather than blocking a scheduler
	// thread; shed if the server starts draining meanwhile.
	var a *gcsync.Alloc
	for {
		if a = srv.mlWorld.TryAttach(); a != nil {
			break
		}
		if srv.Draining() || req.Expired() {
			return Response{Status: 503, Body: []byte("mlalloc: no proc slot\n")}
		}
		if srv.opts.MLGCAware && srv.mlWorld.TryHelp() {
			continue
		}
		srv.park(1)
	}
	// From here to Detach this thread is a proc: it must keep reaching
	// clean points (every Record is one) and must not park on the clock,
	// or it would stall every collection in the world.
	defer a.Detach()

	var list mlheap.Value = mlheap.Nil
	a.AddRoot(&list)
	defer a.RemoveRoot(&list)

	sum := int64(0)
	for i := 0; i < n; i++ {
		v := seed + int64(i)
		list = a.Record(mlheap.Int(v), list)
		sum += v
		if (i+1)%mlFoldStride == 0 {
			// The paper's preemption safe point: without it the
			// allocation loop monopolizes its scheduler thread for the
			// whole request and handlers serialize — no two procs would
			// ever overlap inside the ML section, and the stop barrier
			// would always find a world of one.  Yielding on quantum
			// expiry is what makes the parallel-collection machinery
			// reachable under serving load at all.
			srv.sys.CheckPreempt()
		}
	}

	// Publish the list head into the shared registry and mix in the
	// value another request left there.  The read must extract the Int
	// while the lock is held: after unlock the slot can be overwritten
	// and the old value collected.  The lock is GC-aware, so spinning
	// here can never convoy a collection raised by another proc.
	slot := int(seed) % mlSharedSlots
	if slot < 0 {
		slot += mlSharedSlots
	}
	h := srv.mlWorld.Heap()
	srv.mlLock.Lock()
	prev := h.Get(srv.mlShared, slot)
	if prev.IsInt() {
		sum += prev.Int()
	} else {
		sum += h.Get(prev, 0).Int() // head cell of an earlier request's list
	}
	a.Set(srv.mlShared, slot, list)
	srv.mlLock.Unlock()

	// Fold the list back down, taking an explicit clean point every
	// stride so a long fold cannot stall a collection.
	fold := int64(0)
	cells := 0
	for v := list; v != mlheap.Nil; v = h.Get(v, 1) {
		fold += h.Get(v, 0).Int()
		cells++
		if cells%mlFoldStride == 0 {
			a.CleanPoint()
			srv.sys.CheckPreempt()
		}
	}

	return Response{
		Status: 200,
		Body: fmt.Appendf(nil, "mlalloc n=%d cells=%d sum=%d fold=%d gcs=%d\n",
			n, cells, sum, fold, srv.mlWorld.GCs()),
	}
}

// MLStatsLine renders the world's GC state for /fabricz-style status
// pages; empty when the server has no world.
func (srv *Server) MLStatsLine() string {
	if srv.mlWorld == nil {
		return ""
	}
	st := srv.mlWorld.Heap().Stats()
	p := srv.mlWorld.PauseSummary()
	return fmt.Sprintf("gc: gcs=%d minor=%d major=%d escalations=%d live=%d pause_p50=%d pause_p99=%d pause_max=%d",
		srv.mlWorld.GCs(), st.MinorGCs, st.MajorGCs, st.Escalations, st.LiveWords, p.P50, p.P99, p.Max)
}
