package serve

// The acceptance test for the subsystem's central claim: the request
// path is built strictly on the MP public surface.  Rather than a
// fragile textual grep, the check tokenizes every non-test source file
// in this package and rejects the Go concurrency keywords outright —
// no `go` statements, no channel types, no receive/send arrows, no
// `select` — plus the imports that would smuggle them in (net/http's
// server forks a goroutine per connection; package sync is the
// platform's to wrap, not ours to call).

import (
	"go/parser"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func serveSources(t *testing.T) []string {
	t.Helper()
	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		t.Fatal("no sources found")
	}
	return files
}

func TestRequestPathUsesOnlyMPPrimitives(t *testing.T) {
	forbidden := map[token.Token]string{
		token.GO:     "go statement",
		token.CHAN:   "chan type",
		token.ARROW:  "channel send/receive",
		token.SELECT: "select statement",
	}
	for _, file := range serveSources(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		var s scanner.Scanner
		s.Init(fset.AddFile(file, fset.Base(), len(src)), src, nil, 0)
		for {
			pos, tok, _ := s.Scan()
			if tok == token.EOF {
				break
			}
			if why, bad := forbidden[tok]; bad {
				t.Errorf("%s: %s — the serve request path must use MP primitives only", fset.Position(pos), why)
			}
		}
	}
}

func TestForbiddenImports(t *testing.T) {
	banned := map[string]string{
		"net/http": "spawns goroutines per connection, bypassing the MP scheduler",
		"sync":     "raw Go synchronization; use core locks / syncx",
	}
	for _, file := range serveSources(t) {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, bad := banned[path]; bad {
				t.Errorf("%s imports %s: %s", filepath.Base(file), path, why)
			}
		}
	}
}
