package serve

// A minimal HTTP/1.1 subset implemented directly over net.Conn: one
// request per connection, Connection: close on every response.  net/http
// is deliberately not used — its server spawns goroutines per
// connection, which would route traffic around the MP scheduler.  All
// socket I/O here is cooperative: each blocking call is capped by a
// short poll window, and on timeout the thread parks on the CML clock
// until the next tick instead of holding its proc.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"repro/internal/proc"
	"repro/internal/threads"
)

const (
	maxHeaderBytes = 8 << 10
	maxBodyBytes   = 1 << 20
)

var (
	errDeadline   = errors.New("serve: request deadline exceeded")
	errTooLarge   = errors.New("serve: request too large")
	errBadRequest = errors.New("serve: malformed request")
)

// Request is one parsed HTTP request, plus the deadline bookkeeping
// handlers use to cancel themselves at safe points.
type Request struct {
	Method   string
	Path     string
	RawQuery string
	Proto    string
	Body     []byte
	Arrival  int64 // clock tick at accept
	Deadline int64 // clock tick after which the request is cancelled

	srv *Server
}

// Expired reports whether the request's deadline has passed; handlers
// call it at safe points and return early (the caller answers 504).
func (r *Request) Expired() bool { return r.srv.clock.Now() >= r.Deadline }

// Remaining returns the ticks left before the deadline (possibly
// negative).
func (r *Request) Remaining() int64 { return r.Deadline - r.srv.clock.Now() }

// Park suspends the handling thread for the given number of clock
// ticks; a cooperative sleep on the CML clock.
func (r *Request) Park(ticks int64) { r.srv.park(ticks) }

// CheckPreempt is a scheduling safe point: long-running handlers call it
// periodically so preemption and processor revocation stay honored.
func (r *Request) CheckPreempt() { r.srv.sys.CheckPreempt() }

// System returns the thread system, letting handlers fork parallel MP
// work (the /work kernels do).
func (r *Request) System() *threads.System { return r.srv.sys }

// Query returns the first value of the named query parameter, or "".
func (r *Request) Query(key string) string {
	q := r.RawQuery
	for len(q) > 0 {
		pair := q
		if i := strings.IndexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			q = ""
		}
		k, v := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			k, v = pair[:i], pair[i+1:]
		}
		if k == key {
			return v
		}
	}
	return ""
}

// QueryInt returns the named query parameter as an int, or def when
// absent or malformed.
func (r *Request) QueryInt(key string, def int) int {
	if s := r.Query(key); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return def
}

// Response is a handler's reply.
type Response struct {
	Status      int
	ContentType string // default "text/plain; charset=utf-8"
	Body        []byte
	RetryAfter  int // seconds; emitted as Retry-After when nonzero
}

// Handler serves one request.  Handlers run on MP threads; they may
// fork, park, and synchronize freely, and should poll req.Expired() at
// safe points during long computations.
type Handler func(req *Request) Response

type route struct {
	pattern string // exact path, or a prefix when it ends in "/"
	h       Handler
}

// Handle registers a handler.  A pattern ending in "/" matches by
// prefix; otherwise it matches exactly.  The longest pattern wins.
// Register before Serve; the route table is read without locks on the
// request path.
func (srv *Server) Handle(pattern string, h Handler) {
	srv.routes = append(srv.routes, route{pattern: pattern, h: h})
}

func (srv *Server) route(path string) Handler {
	var best Handler
	bestLen := -1
	for i := range srv.routes {
		rt := &srv.routes[i]
		ok := rt.pattern == path ||
			(strings.HasSuffix(rt.pattern, "/") && strings.HasPrefix(path, rt.pattern))
		if ok && len(rt.pattern) > bestLen {
			best, bestLen = rt.h, len(rt.pattern)
		}
	}
	return best
}

// readRequest reads and parses one request cooperatively: every blocked
// read is capped at the poll window, then the thread parks on the clock
// for a tick; the loop fails with errDeadline once the request deadline
// passes.
func (srv *Server) readRequest(p pending, deadline int64) (*Request, error) {
	var acc []byte
	buf := make([]byte, 4096)
	// Phase 1: accumulate until the end of the header block.
	headerEnd := -1
	for headerEnd < 0 {
		if srv.clock.Now() >= deadline {
			return nil, errDeadline
		}
		p.conn.SetReadDeadline(time.Now().Add(srv.opts.PollWindow))
		n, err := p.conn.Read(buf)
		if n > 0 {
			acc = append(acc, buf[:n]...)
			headerEnd = bytes.Index(acc, []byte("\r\n\r\n"))
			if headerEnd >= 0 {
				break
			}
			if len(acc) > maxHeaderBytes {
				return nil, errTooLarge
			}
		}
		if err != nil {
			if isTimeout(err) {
				srv.m.readParks.Inc(proc.Self())
				srv.park(1)
				continue
			}
			return nil, err
		}
	}
	req, contentLength, err := parseHeader(acc[:headerEnd])
	if err != nil {
		return nil, err
	}
	if contentLength > maxBodyBytes {
		return nil, errTooLarge
	}
	body := acc[headerEnd+4:]
	// Phase 2: accumulate the declared body.
	for len(body) < contentLength {
		if srv.clock.Now() >= deadline {
			return nil, errDeadline
		}
		p.conn.SetReadDeadline(time.Now().Add(srv.opts.PollWindow))
		n, err := p.conn.Read(buf)
		if n > 0 {
			body = append(body, buf[:n]...)
		}
		if err != nil {
			if isTimeout(err) {
				srv.m.readParks.Inc(proc.Self())
				srv.park(1)
				continue
			}
			return nil, err
		}
	}
	req.Body = body[:contentLength]
	req.Arrival = p.arrival
	req.Deadline = deadline
	req.srv = srv
	return req, nil
}

// parseHeader parses the request line and the headers serve cares about
// (Content-Length); header is the block up to, not including, the blank
// line.
func parseHeader(header []byte) (*Request, int, error) {
	lines := strings.Split(string(header), "\r\n")
	if len(lines) == 0 {
		return nil, 0, errBadRequest
	}
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, 0, errBadRequest
	}
	req := &Request{Method: parts[0], Proto: parts[2]}
	target := parts[1]
	if i := strings.IndexByte(target, '?'); i >= 0 {
		req.Path, req.RawQuery = target[:i], target[i+1:]
	} else {
		req.Path = target
	}
	if req.Path == "" || req.Path[0] != '/' {
		return nil, 0, errBadRequest
	}
	contentLength := 0
	for _, ln := range lines[1:] {
		i := strings.IndexByte(ln, ':')
		if i < 0 {
			continue
		}
		if strings.EqualFold(strings.TrimSpace(ln[:i]), "Content-Length") {
			n, err := strconv.Atoi(strings.TrimSpace(ln[i+1:]))
			if err != nil || n < 0 {
				return nil, 0, errBadRequest
			}
			contentLength = n
		}
	}
	return req, contentLength, nil
}

// statusText covers the statuses serve emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 409:
		return "Conflict"
	case 413:
		return "Content Too Large"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	case 504:
		return "Gateway Timeout"
	default:
		return "Status"
	}
}

// writeResponse renders and writes a response cooperatively.  The write
// is capped at capTick on the virtual clock so a stalled client cannot
// hold the writing thread past the request's useful lifetime.
func (srv *Server) writeResponse(conn net.Conn, resp Response, capTick int64) error {
	ctype := resp.ContentType
	if ctype == "" {
		ctype = "text/plain; charset=utf-8"
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", resp.Status, statusText(resp.Status))
	fmt.Fprintf(&b, "Content-Type: %s\r\n", ctype)
	fmt.Fprintf(&b, "Content-Length: %d\r\n", len(resp.Body))
	if resp.RetryAfter > 0 {
		fmt.Fprintf(&b, "Retry-After: %d\r\n", resp.RetryAfter)
	}
	b.WriteString("Connection: close\r\n\r\n")
	b.Write(resp.Body)
	return srv.writeAll(conn, b.Bytes(), capTick)
}

// writeAll writes buf with the same poll-window-then-park discipline as
// readRequest, giving up at capTick.
func (srv *Server) writeAll(conn net.Conn, buf []byte, capTick int64) error {
	off := 0
	for off < len(buf) {
		if srv.clock.Now() >= capTick {
			return errDeadline
		}
		conn.SetWriteDeadline(time.Now().Add(srv.opts.PollWindow))
		n, err := conn.Write(buf[off:])
		off += n
		if err != nil {
			if isTimeout(err) && off < len(buf) {
				srv.park(1)
				continue
			}
			return err
		}
	}
	return nil
}
