package serve

// The HTTP/1.1 request/response model: a deliberately small subset
// implemented directly over net.Conn (the connection state machine lives
// in conn.go).  net/http is deliberately not used — its server spawns
// goroutines per connection, which would route traffic around the MP
// scheduler.  Persistent connections follow the standard rules: HTTP/1.1
// requests keep the connection alive unless the client sends
// `Connection: close`; HTTP/1.0 requests close it unless the client
// sends `Connection: keep-alive`; responses always declare
// Content-Length and answer with an explicit Connection header.

import (
	"strconv"
	"strings"

	"repro/internal/threads"
)

const (
	maxHeaderBytes = 8 << 10
	maxBodyBytes   = 1 << 20
)

// hdrKV is one parsed header field.
type hdrKV struct {
	k, v string
}

// Request is one parsed HTTP request, plus the deadline bookkeeping
// handlers use to cancel themselves at safe points.
type Request struct {
	Method   string
	Path     string
	RawQuery string
	Proto    string
	Body     []byte
	Close    bool  // client asked for Connection: close (or HTTP/1.0 default)
	Arrival  int64 // clock tick at which the request started arriving
	Deadline int64 // clock tick after which the request is cancelled

	hdrs []hdrKV
	srv  *Server
}

// Header returns the first value of the named header, matched
// case-insensitively, or "".
func (r *Request) Header(name string) string {
	for i := range r.hdrs {
		if strings.EqualFold(r.hdrs[i].k, name) {
			return r.hdrs[i].v
		}
	}
	return ""
}

// Expired reports whether the request's deadline has passed; handlers
// call it at safe points and return early (the caller answers 504).
func (r *Request) Expired() bool { return r.srv.clock.Now() >= r.Deadline }

// Remaining returns the ticks left before the deadline (possibly
// negative).
func (r *Request) Remaining() int64 { return r.Deadline - r.srv.clock.Now() }

// Park suspends the handling thread for the given number of clock
// ticks; a cooperative sleep on the CML clock.
func (r *Request) Park(ticks int64) { r.srv.park(ticks) }

// CheckPreempt is a scheduling safe point: long-running handlers call it
// periodically so preemption and processor revocation stay honored.
func (r *Request) CheckPreempt() { r.srv.sys.CheckPreempt() }

// System returns the thread system, letting handlers fork parallel MP
// work (the /work kernels do).
func (r *Request) System() *threads.System { return r.srv.sys }

// Query returns the first value of the named query parameter, or "".
func (r *Request) Query(key string) string {
	q := r.RawQuery
	for len(q) > 0 {
		pair := q
		if i := strings.IndexByte(q, '&'); i >= 0 {
			pair, q = q[:i], q[i+1:]
		} else {
			q = ""
		}
		k, v := pair, ""
		if i := strings.IndexByte(pair, '='); i >= 0 {
			k, v = pair[:i], pair[i+1:]
		}
		if k == key {
			return v
		}
	}
	return ""
}

// QueryInt returns the named query parameter as an int, or def when
// absent or malformed.
func (r *Request) QueryInt(key string, def int) int {
	if s := r.Query(key); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			return n
		}
	}
	return def
}

// Response is a handler's reply.
type Response struct {
	Status      int
	ContentType string // default "text/plain; charset=utf-8"
	Body        []byte
	RetryAfter  int // seconds; emitted as Retry-After when nonzero

	// Stream, when non-nil, switches the reply to chunked streaming
	// delivery (stream.go): the header goes out with Transfer-Encoding:
	// chunked and Connection: close, then frames pulled from the
	// Streamer flow as chunks until it closes.  Body is ignored and the
	// connection always closes when the stream ends.  Any owner that
	// drops a stream response unwritten must Cancel it.
	Stream Streamer
}

// Handler serves one request.  Handlers run on MP threads; they may
// fork, park, and synchronize freely, and should poll req.Expired() at
// safe points during long computations.
type Handler func(req *Request) Response

type route struct {
	pattern string // exact path, or a prefix when it ends in "/"
	h       Handler
}

// Handle registers a handler.  A pattern ending in "/" matches by
// prefix; otherwise it matches exactly.  The longest pattern wins.
// Register before Serve; the route table is read without locks on the
// request path.
func (srv *Server) Handle(pattern string, h Handler) {
	srv.routes = append(srv.routes, route{pattern: pattern, h: h})
}

func (srv *Server) route(path string) Handler {
	var best Handler
	bestLen := -1
	for i := range srv.routes {
		rt := &srv.routes[i]
		ok := rt.pattern == path ||
			(strings.HasSuffix(rt.pattern, "/") && strings.HasPrefix(path, rt.pattern))
		if ok && len(rt.pattern) > bestLen {
			best, bestLen = rt.h, len(rt.pattern)
		}
	}
	return best
}

// parseHeader parses the request line and headers; header is the block
// up to, not including, the blank line.  It resolves Content-Length and
// the keep-alive decision (Close) from the Connection header and
// protocol version.
func parseHeader(header []byte) (*Request, int, error) {
	lines := strings.Split(string(header), "\r\n")
	if len(lines) == 0 {
		return nil, 0, ErrBadRequest
	}
	parts := strings.Split(lines[0], " ")
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return nil, 0, ErrBadRequest
	}
	req := &Request{Method: parts[0], Proto: parts[2]}
	target := parts[1]
	if i := strings.IndexByte(target, '?'); i >= 0 {
		req.Path, req.RawQuery = target[:i], target[i+1:]
	} else {
		req.Path = target
	}
	if req.Path == "" || req.Path[0] != '/' {
		return nil, 0, ErrBadRequest
	}
	contentLength := 0
	for _, ln := range lines[1:] {
		i := strings.IndexByte(ln, ':')
		if i < 0 {
			continue
		}
		k := strings.TrimSpace(ln[:i])
		v := strings.TrimSpace(ln[i+1:])
		req.hdrs = append(req.hdrs, hdrKV{k: k, v: v})
		if strings.EqualFold(k, "Content-Length") {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, 0, ErrBadRequest
			}
			contentLength = n
		}
	}
	// Keep-alive decision: HTTP/1.1 persists unless the client opts out;
	// HTTP/1.0 closes unless the client opts in.
	req.Close = req.Proto == "HTTP/1.0"
	for _, tok := range strings.Split(req.Header("Connection"), ",") {
		switch strings.ToLower(strings.TrimSpace(tok)) {
		case "close":
			req.Close = true
		case "keep-alive":
			req.Close = false
		}
	}
	return req, contentLength, nil
}

// statusText covers the statuses serve emits.
func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 409:
		return "Conflict"
	case 413:
		return "Content Too Large"
	case 429:
		return "Too Many Requests"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	case 504:
		return "Gateway Timeout"
	default:
		return "Status"
	}
}
