package serve

// Chunked streaming responses: the long-lived complement to the
// one-shot request/response path.  A handler that returns a Response
// with Stream set hands the connection to a frame source for the rest
// of the connection's life: the header goes out with
// Transfer-Encoding: chunked and Connection: close, then frames pulled
// from the Streamer flow as chunks until the source reports closed and
// the zero-length terminator ends the body.
//
// Both faces of the Conn machine carry it.  The blocking face
// (StreamResponse) owns its thread and parks on the CML clock between
// frames, exactly like ReadRequest's discipline.  The resumable face
// stages incrementally: StageStream arms the header (plus any
// responses batched ahead of the stream), StageChunks appends each
// frame burst, and the owner cycles the machine
// StateStreaming → StateWriting → StateStreaming so a subscriber
// connection parks on EPOLLOUT between events — at fan-out scale a
// quiet subscriber costs only its parked Conn, not a thread.

import (
	"io"
	"strconv"

	"repro/internal/proc"
)

// StateStreaming: a chunked streaming response owns the connection.
// The owner pulls frames from the response's Streamer, stages them with
// StageChunks (which re-arms StateWriting), and returns here when the
// flush drains.  Declared outside resume.go's iota block so the
// existing state numbering is untouched.
const StateStreaming ConnState = 4

// Streamer is a source of stream frames — the handler side of a
// chunked streaming response.  Pull is non-blocking: ok reports a frame
// was returned; open reports the stream still lives (ok=false,
// open=true means "nothing right now"; open=false means the source
// ended — drain pending frames, then write the terminator).  Cancel
// tells the source its consumer is gone (dead or refused connection)
// and must be idempotent.  Implementations must tolerate a puller and a
// producer in different scheduling worlds: the pubsub broker's delivery
// threads push while a front poller pulls.
type Streamer interface {
	Pull() (frame []byte, ok bool, open bool)
	Cancel()
}

// streamTerm is the chunked-encoding terminator: a zero-length chunk,
// no trailers.
var streamTerm = []byte("0\r\n\r\n")

// hbChunk is a one-byte heartbeat chunk ("\n"): it keeps a quiet
// stream's socket verifiably alive and lets the writer detect a dead
// subscriber between events.  Consumers treat bare-newline frames as
// padding.
var hbChunk = []byte("1\r\n\n\r\n")

// streamFlushFrames caps how many frames one flush coalesces, bounding
// the bytes a slow subscriber can pin in a staged buffer while parked
// on EPOLLOUT.
const streamFlushFrames = 32

// appendChunk appends one chunked-encoding frame — hex size, CRLF,
// data, CRLF — to dst.
func appendChunk(dst, frame []byte) []byte {
	var tmp [16]byte
	dst = append(dst, strconv.AppendInt(tmp[:0], int64(len(frame)), 16)...)
	dst = append(dst, '\r', '\n')
	dst = append(dst, frame...)
	return append(dst, '\r', '\n')
}

// renderStreamHeader renders the status line and headers for a chunked
// streaming response: no Content-Length, Transfer-Encoding: chunked,
// Connection: close — a stream takes the connection to its end, so
// keep-alive never applies.
func renderStreamHeader(rb *respBuf, resp Response) {
	ctype := resp.ContentType
	if ctype == "" {
		ctype = "text/plain; charset=utf-8"
	}
	b := &rb.b
	b.WriteString("HTTP/1.1 ")
	b.Write(strconv.AppendInt(rb.scratch[:0], int64(resp.Status), 10))
	b.WriteByte(' ')
	b.WriteString(statusText(resp.Status))
	b.WriteString("\r\nContent-Type: ")
	b.WriteString(ctype)
	b.WriteString("\r\nTransfer-Encoding: chunked")
	b.WriteString("\r\nConnection: close\r\n\r\n")
}

// StreamResponse is the blocking face of streaming delivery: write the
// chunked header, then pump frames until the source closes or the
// client dies, parking on the clock whenever the stream goes quiet.
// Each flush coalesces up to streamFlushFrames frames and is capped at
// flushTicks so a stalled client cannot pin the thread; hbTicks > 0
// sends a heartbeat chunk after that much quiet, which is also how a
// silently dead client is detected between events.  The Streamer is
// always left settled: Cancel on any write failure, fully drained on a
// clean close.  The caller closes the connection after.
func (c *Conn) StreamResponse(resp Response, hbTicks, flushTicks int64) error {
	s := resp.Stream
	shard, _ := proc.TrySelf()
	rb := c.cfg.Pool.get(shard)
	renderStreamHeader(rb, resp)
	capTick := c.cfg.Clock.Now() + flushTicks
	err := c.writeAll(rb.b.Bytes(), capTick, c.wallCap(capTick))
	c.cfg.Pool.put(shard, rb)
	if err != nil {
		s.Cancel()
		return err
	}
	lastWrite := c.cfg.Clock.Now()
	var buf []byte
	for {
		buf = buf[:0]
		final := false
		n := 0
		for n < streamFlushFrames {
			f, ok, open := s.Pull()
			if ok {
				buf = appendChunk(buf, f)
				n++
				continue
			}
			final = !open
			break
		}
		if final {
			buf = append(buf, streamTerm...)
		}
		if len(buf) > 0 {
			capTick = c.cfg.Clock.Now() + flushTicks
			if err := c.writeAll(buf, capTick, c.wallCap(capTick)); err != nil {
				s.Cancel()
				return err
			}
			lastWrite = c.cfg.Clock.Now()
		}
		if final {
			return nil
		}
		if n > 0 {
			continue // a burst drained; look again before parking
		}
		if hbTicks > 0 && c.cfg.Clock.Now()-lastWrite >= hbTicks {
			capTick = c.cfg.Clock.Now() + flushTicks
			if err := c.writeAll(hbChunk, capTick, c.wallCap(capTick)); err != nil {
				s.Cancel()
				return err
			}
			lastWrite = c.cfg.Clock.Now()
			continue
		}
		c.cfg.Park(1)
	}
}

// StageStream is the resumable entry into streaming: render any
// responses batched ahead of the stream (keep-alive — the stream
// header follows on the same socket) plus the stream's chunked header
// into the staged write buffer, and arm StateWriting.  When the flush
// drains the owner moves the machine to StateStreaming and pumps
// frames through StageChunks.
func (c *Conn) StageStream(prev []Response, resp Response) {
	shard, _ := proc.TrySelf()
	rb := c.cfg.Pool.get(shard)
	for i := range prev {
		renderResponse(rb, prev[i], true)
	}
	renderStreamHeader(rb, resp)
	c.wbuf = append(c.wbuf[:0], rb.b.Bytes()...)
	c.woff = 0
	c.cfg.Pool.put(shard, rb)
	c.state = StateWriting
}

// StageChunks appends frames (and, when final, the terminator) to the
// staged write buffer as chunked-encoding chunks and arms StateWriting.
// Unlike StageResponses it never resets the buffer while unflushed
// bytes remain: a subscriber parked on EPOLLOUT mid-flush accumulates
// new frames behind its backlog — bounded by the owner's pull batching
// — and loses nothing.
func (c *Conn) StageChunks(frames [][]byte, final bool) {
	if c.woff >= len(c.wbuf) {
		c.wbuf = c.wbuf[:0]
		c.woff = 0
	}
	for _, f := range frames {
		c.wbuf = appendChunk(c.wbuf, f)
	}
	if final {
		c.wbuf = append(c.wbuf, streamTerm...)
	}
	c.state = StateWriting
}

// ProbeDiscard reads and discards whatever the client sent — the
// streaming owner's liveness probe.  A subscriber has nothing left to
// say once its stream starts, so bytes are dropped; EOF or a reset
// surfaces as the error that tells the owner to close.
func (c *Conn) ProbeDiscard(scratch []byte) error {
	for {
		n, err := readFD(c.fd, scratch)
		if err != nil {
			if err == ErrWouldBlock {
				return nil
			}
			return err
		}
		if n == 0 {
			return io.EOF
		}
	}
}
