package serve

// End-to-end tests for the serving subsystem.  Test files are the
// *client* side of the wire (plus the harness that hosts System.Run), so
// raw goroutines and channels are fine here; the purity test only scans
// non-test sources.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proc"
	"repro/internal/threads"
	"repro/internal/trace"
)

// doReq performs one request with Connection: close semantics and
// returns status, headers, body.
func doReq(addr, method, path string, body []byte, timeout time.Duration) (int, map[string]string, []byte, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, nil, nil, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	fmt.Fprintf(conn, "%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\nConnection: close\r\n\r\n",
		method, path, len(body))
	if len(body) > 0 {
		if _, err := conn.Write(body); err != nil {
			return 0, nil, nil, err
		}
	}
	raw, err := io.ReadAll(conn)
	if err != nil && len(raw) == 0 {
		return 0, nil, nil, err
	}
	head, rest, ok := bytes.Cut(raw, []byte("\r\n\r\n"))
	if !ok {
		return 0, nil, nil, fmt.Errorf("no header terminator in %q", raw)
	}
	lines := strings.Split(string(head), "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 {
		return 0, nil, nil, fmt.Errorf("bad status line %q", lines[0])
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, nil, nil, err
	}
	hdr := map[string]string{}
	for _, ln := range lines[1:] {
		if k, v, ok := strings.Cut(ln, ":"); ok {
			hdr[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
		}
	}
	return status, hdr, rest, nil
}

type testServer struct {
	srv  *Server
	sys  *threads.System
	pl   *proc.Platform
	done chan struct{}
}

func (ts *testServer) addr() string { return ts.srv.Addr().String() }

// startServer hosts a server on its own thread system and registers a
// cleanup that drains it and waits for quiescence.
func startServer(t *testing.T, procs int, opts Options, register func(*Server)) *testServer {
	t.Helper()
	pl := proc.New(procs)
	sys := threads.New(pl, threads.Options{})
	opts.Addr = "127.0.0.1:0"
	srv, err := New(sys, opts)
	if err != nil {
		t.Fatal(err)
	}
	if register != nil {
		register(srv)
	}
	ts := &testServer{srv: srv, sys: sys, pl: pl, done: make(chan struct{})}
	go func() {
		sys.Run(func() { srv.Serve() })
		close(ts.done)
	}()
	healthy := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		if st, _, _, err := doReq(ts.addr(), "GET", "/healthz", nil, time.Second); err == nil && st == 200 {
			healthy = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !healthy {
		t.Fatal("server did not become healthy")
	}
	t.Cleanup(func() {
		srv.Drain()
		select {
		case <-ts.done:
		case <-time.After(30 * time.Second):
			t.Error("server did not quiesce after drain")
		}
	})
	return ts
}

// slowHandler parks for ?ticks= clock ticks, cancelling at safe points.
func slowHandler(req *Request) Response {
	target := req.srv.clock.Now() + int64(req.QueryInt("ticks", 10))
	for req.srv.clock.Now() < target {
		if req.Expired() {
			return Response{Status: 504, Body: []byte("cancelled\n")}
		}
		req.Park(1)
	}
	return Response{Status: 200, Body: []byte("slept\n")}
}

func TestEchoEndToEnd(t *testing.T) {
	ts := startServer(t, 4, Options{}, nil)
	st, _, body, err := doReq(ts.addr(), "POST", "/echo", []byte("hello mp"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st != 200 || string(body) != "hello mp" {
		t.Fatalf("got %d %q", st, body)
	}
	st, _, body, err = doReq(ts.addr(), "GET", "/echo?msg=query", nil, 5*time.Second)
	if err != nil || st != 200 || string(body) != "query" {
		t.Fatalf("query echo: %d %q %v", st, body, err)
	}
	if st, _, _, _ := doReq(ts.addr(), "GET", "/nosuch", nil, 5*time.Second); st != 404 {
		t.Fatalf("missing route: got %d, want 404", st)
	}
}

func TestWorkKernelsServeParallelJobs(t *testing.T) {
	ts := startServer(t, 4, Options{}, nil)
	for _, k := range []string{"mm", "allpairs", "abisort"} {
		st, _, body, err := doReq(ts.addr(), "GET", "/work/"+k+"?n=32&workers=2", nil, 15*time.Second)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if st != 200 || !bytes.Contains(body, []byte("checksum")) {
			t.Fatalf("%s: got %d %q", k, st, body)
		}
	}
	if st, _, _, _ := doReq(ts.addr(), "GET", "/work/nosuch", nil, 5*time.Second); st != 404 {
		t.Fatalf("unknown kernel: got %d, want 404", st)
	}
}

func TestBoundedInFlightAndLoadShedding(t *testing.T) {
	const maxInFlight, queueDepth, clients = 2, 2, 16
	var cur, peak atomic.Int32
	ts := startServer(t, 4, Options{MaxInFlight: maxInFlight, QueueDepth: queueDepth},
		func(srv *Server) {
			srv.Handle("/slow", func(req *Request) Response {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				defer cur.Add(-1)
				return slowHandler(req)
			})
		})

	var wg sync.WaitGroup
	var ok200, shed503, other atomic.Int32
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, hdr, _, err := doReq(ts.addr(), "GET", "/slow?ticks=30", nil, 20*time.Second)
			if err != nil {
				other.Add(1)
				return
			}
			switch st {
			case 200:
				ok200.Add(1)
			case 503:
				shed503.Add(1)
				if hdr["retry-after"] == "" {
					t.Error("503 without Retry-After header")
				}
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := ok200.Load() + shed503.Load() + other.Load(); got != clients {
		t.Fatalf("accounted %d of %d clients", got, clients)
	}
	if other.Load() != 0 {
		t.Errorf("%d clients got neither 200 nor 503", other.Load())
	}
	if peak.Load() > maxInFlight {
		t.Errorf("peak concurrent handlers = %d, want <= %d (bounded in-flight violated)", peak.Load(), maxInFlight)
	}
	if shed503.Load() == 0 {
		t.Error("no requests shed: overload did not trigger admission control")
	}
	if ok200.Load() == 0 {
		t.Error("no requests served under overload")
	}
	snap := ts.sys.Metrics().Snapshot()
	if snap.Get("serve.shed_queue_full") == 0 {
		t.Error("serve.shed_queue_full counter is zero despite 503s")
	}
	if snap.Get("serve.responded") != int64(clients)+1 { // +1 for /healthz
		t.Logf("responded = %d (healthz included)", snap.Get("serve.responded"))
	}
}

func TestDrainFinishesInFlightZeroDropped(t *testing.T) {
	const inFlight = 3
	ts := startServer(t, 4, Options{MaxInFlight: 8}, func(srv *Server) {
		srv.Handle("/slow", slowHandler)
	})

	results := make(chan int, inFlight)
	for i := 0; i < inFlight; i++ {
		go func() {
			st, _, _, err := doReq(ts.addr(), "GET", "/slow?ticks=80", nil, 30*time.Second)
			if err != nil {
				st = -1
			}
			results <- st
		}()
	}
	// Wait until all three are dispatched and handling.
	for deadline := time.Now().Add(10 * time.Second); ts.srv.InFlight() < inFlight; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d requests in flight", ts.srv.InFlight())
		}
		time.Sleep(2 * time.Millisecond)
	}

	ts.srv.Drain()

	// New arrivals during drain are shed (503) or refused outright once
	// the listener closes; both are acceptable, losing the connection to
	// a stall is not.
	if st, _, _, err := doReq(ts.addr(), "GET", "/slow?ticks=1", nil, 5*time.Second); err == nil && st != 503 {
		t.Errorf("request during drain: got %d, want 503 or connection error", st)
	}

	for i := 0; i < inFlight; i++ {
		select {
		case st := <-results:
			if st != 200 {
				t.Errorf("in-flight request got %d during drain, want 200 (zero dropped)", st)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("in-flight request never completed")
		}
	}

	select {
	case <-ts.done:
	case <-time.After(30 * time.Second):
		t.Fatal("platform did not quiesce after drain")
	}
	if live := ts.pl.Live(); live != 0 {
		t.Errorf("live procs after drain = %d, want 0", live)
	}
	snap := ts.sys.Metrics().Snapshot()
	if got := snap.Get("serve.dispatched"); got < inFlight {
		t.Errorf("dispatched = %d, want >= %d", got, inFlight)
	}
	if exp := snap.Get("serve.deadline_expired"); exp != 0 {
		t.Errorf("deadline_expired = %d during drain, want 0", exp)
	}
}

func TestDeadlineCancelsAtSafePoint(t *testing.T) {
	ts := startServer(t, 4, Options{DeadlineTicks: 15}, func(srv *Server) {
		srv.Handle("/slow", slowHandler)
	})
	st, _, body, err := doReq(ts.addr(), "GET", "/slow?ticks=5000", nil, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st != 504 {
		t.Fatalf("got %d %q, want 504", st, body)
	}
	if got := ts.sys.Metrics().Snapshot().Get("serve.deadline_expired"); got == 0 {
		t.Error("serve.deadline_expired counter is zero")
	}
}

func TestSilentClientTimesOut(t *testing.T) {
	ts := startServer(t, 4, Options{DeadlineTicks: 20}, nil)
	conn, err := net.Dial("tcp", ts.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(20 * time.Second))
	// Send nothing; the server should answer 504 once the request
	// deadline passes, rather than holding the connection forever.
	raw, _ := io.ReadAll(conn)
	if !bytes.Contains(raw, []byte("504")) {
		t.Fatalf("silent client got %q, want a 504 response", raw)
	}
}

func TestMetricsAndAccessLogEndpoints(t *testing.T) {
	ts := startServer(t, 4, Options{}, nil)
	for i := 0; i < 5; i++ {
		if st, _, _, err := doReq(ts.addr(), "GET", "/echo?msg=x", nil, 5*time.Second); err != nil || st != 200 {
			t.Fatalf("warmup: %d %v", st, err)
		}
	}
	st, _, body, err := doReq(ts.addr(), "GET", "/metrics", nil, 5*time.Second)
	if err != nil || st != 200 {
		t.Fatalf("/metrics: %d %v", st, err)
	}
	for _, want := range []string{"serve.accepted", "serve.dispatched", "serve.latency_ticks", "proc.acquired", "threads.dispatches"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	st, _, body, err = doReq(ts.addr(), "GET", "/log", nil, 5*time.Second)
	if err != nil || st != 200 {
		t.Fatalf("/log: %d %v", st, err)
	}
	lines := bytes.Split(bytes.TrimSpace(body), []byte("\n"))
	if len(lines) < 5 {
		t.Fatalf("access log has %d lines, want >= 5", len(lines))
	}
	for _, ln := range lines {
		if f := bytes.Fields(ln); len(f) != 7 {
			t.Errorf("torn or malformed access-log line %q", ln)
		}
	}
}

func TestTraceSnapshotUnderLoad(t *testing.T) {
	tr := trace.New(4, 1<<12)
	ts := startServer(t, 4, Options{Tracer: tr}, func(srv *Server) {
		srv.Handle("/slow", slowHandler)
	})
	tr.Enable()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				doReq(ts.addr(), "GET", "/slow?ticks=3", nil, 10*time.Second)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)

	st, hdr, body, err := doReq(ts.addr(), "GET", "/trace", nil, 30*time.Second)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st != 200 {
		t.Fatalf("/trace: got %d %q", st, body)
	}
	if hdr["content-type"] != "application/json" {
		t.Errorf("content-type = %q", hdr["content-type"])
	}
	if !bytes.HasPrefix(body, []byte("{\"displayTimeUnit\"")) {
		t.Errorf("trace body does not look like Chrome JSON: %.60q", body)
	}
	if !bytes.Contains(body, []byte("serve.accept")) {
		t.Error("trace has no serve.accept events")
	}
	// The world restarts after the snapshot.
	if st, _, _, err := doReq(ts.addr(), "GET", "/echo?msg=alive", nil, 10*time.Second); err != nil || st != 200 {
		t.Fatalf("server did not resume after /trace: %d %v", st, err)
	}
}

// TestDispatcherBatchedWakeupNoLoss is the regression test for the
// batched dispatcher's idle accounting: concurrent producers release
// batched credits (SubmitMany's single ReleaseN) while the dispatcher is
// mid-drain, and every submitted request must still be delivered exactly
// once.  Before the TryAcquireN-first rewrite the idle flag could read
// true while credits were in hand, so a batched V landing mid-drain was
// answered by no wakeup and the tail of the batch sat in the queue
// forever — this test deadlocks (and fails on the count) in that world.
// CI runs it under -race.
func TestDispatcherBatchedWakeupNoLoss(t *testing.T) {
	pl := proc.New(4)
	sys := threads.New(pl, threads.Options{})
	srv, err := New(sys, Options{
		NoListener:    true,
		DispatchBatch: 8,
		MaxInFlight:   4,
		QueueDepth:    4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Handle("/t", func(*Request) Response { return Response{Status: 200} })

	const producers, batches, batchSize = 4, 40, 8
	const total = producers * batches * batchSize
	var delivered atomic.Int64
	done := make(chan struct{})
	go func() {
		sys.Run(func() {
			srv.Serve()
			for p := 0; p < producers; p++ {
				sys.Fork(func() {
					jobs := make([]SubmitJob, batchSize)
					for b := 0; b < batches; b++ {
						for i := range jobs {
							jobs[i] = SubmitJob{
								Req:       &Request{Method: "GET", Path: "/t", Proto: "HTTP/1.1"},
								Remaining: 100000,
								Deliver:   func(Response) { delivered.Add(1) },
							}
						}
						if n := srv.SubmitMany(jobs); n != batchSize {
							// The queue depth is far above the whole test's
							// volume; a shortfall is an admission bug.  Count
							// the missing ones so the wait below still ends.
							t.Errorf("SubmitMany admitted %d of %d", n, batchSize)
							delivered.Add(int64(batchSize - n))
						}
						sys.Yield()
					}
				})
			}
		})
		close(done)
	}()

	for deadline := time.Now().Add(60 * time.Second); delivered.Load() < total; {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d responses — the dispatcher lost a wakeup",
				delivered.Load(), total)
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv.Drain()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("no quiescence after drain")
	}
	if got := delivered.Load(); got != total {
		t.Errorf("delivered %d responses, want exactly %d", got, total)
	}
	snap := sys.Metrics().Snapshot()
	if got := snap.Get("serve.submitted"); got != total {
		t.Errorf("serve.submitted = %d, want %d", got, total)
	}
	if got := snap.Get("serve.dispatched"); got != total {
		t.Errorf("serve.dispatched = %d, want %d", got, total)
	}
}

// TestSoakOverloadDrainRecovery drives the server through the full
// lifecycle the subsystem exists for: saturating overload (admission
// control sheds), recovery to normal service, processor revocation and
// regrow mid-traffic, then graceful drain with zero dropped in-flight
// requests.  CI runs this under -race.
func TestSoakOverloadDrainRecovery(t *testing.T) {
	ts := startServer(t, 4, Options{MaxInFlight: 2, QueueDepth: 2}, func(srv *Server) {
		srv.Handle("/slow", slowHandler)
	})

	// Phase 1: overload.
	var wg sync.WaitGroup
	var ok200, shed, failed atomic.Int32
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			path := "/slow?ticks=10"
			if i%3 == 0 {
				path = "/compute?n=200000"
			}
			st, _, _, err := doReq(ts.addr(), "GET", path, nil, 20*time.Second)
			switch {
			case err != nil:
				failed.Add(1)
			case st == 200:
				ok200.Add(1)
			case st == 503:
				shed.Add(1)
			default:
				failed.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Errorf("%d requests failed outright during overload", failed.Load())
	}
	if shed.Load() == 0 {
		t.Error("overload produced no sheds")
	}
	if ok200.Load() == 0 {
		t.Error("overload produced no successes")
	}

	// Phase 2: the OS withdraws processors mid-service and returns them;
	// traffic keeps flowing on the survivors (§3.1 revocation).
	ts.pl.SetLimit(1)
	for i := 0; i < 5; i++ {
		if st, _, _, err := doReq(ts.addr(), "GET", "/echo?msg=squeezed", nil, 15*time.Second); err != nil || st != 200 {
			t.Fatalf("request %d under shrunken allowance: %d %v", i, st, err)
		}
	}
	ts.pl.SetLimit(4)

	// Phase 3: recovery — sequential requests all succeed.
	for i := 0; i < 10; i++ {
		if st, _, _, err := doReq(ts.addr(), "GET", "/echo?msg=back", nil, 15*time.Second); err != nil || st != 200 {
			t.Fatalf("recovery request %d: %d %v", i, st, err)
		}
	}

	// Phase 4: drain with requests in flight; all must complete.
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			st, _, _, err := doReq(ts.addr(), "GET", "/slow?ticks=60", nil, 30*time.Second)
			if err != nil {
				st = -1
			}
			results <- st
		}()
	}
	for deadline := time.Now().Add(10 * time.Second); ts.srv.InFlight() < 2; {
		if time.Now().After(deadline) {
			t.Fatalf("in flight = %d, want 2", ts.srv.InFlight())
		}
		time.Sleep(2 * time.Millisecond)
	}
	ts.srv.Drain()
	for i := 0; i < 2; i++ {
		if st := <-results; st != 200 {
			t.Errorf("in-flight request during drain got %d, want 200", st)
		}
	}
	select {
	case <-ts.done:
	case <-time.After(30 * time.Second):
		t.Fatal("no quiescence after drain")
	}

	snap := ts.sys.Metrics().Snapshot()
	if snap.Get("serve.accepted") == 0 || snap.Get("serve.responded") == 0 {
		t.Error("serve counters empty after soak")
	}
	t.Logf("soak: accepted=%d responded=%d shed=%d expired=%d",
		snap.Get("serve.accepted"), snap.Get("serve.responded"),
		snap.Get("serve.shed_queue_full"), snap.Get("serve.deadline_expired"))
}
