package serve

// Reply-path write tests: renderResponse edge cases, the coalesced
// WriteResponses batch (flat and vectored), partial-write resumption and
// deadline aborts against a throttled fake conn, and the zero-alloc
// guarantees for the batched render and the request-body arena.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/cml"
)

// wtimeout is a net.Error whose Timeout() is true — what a poll-window
// write deadline expiry looks like to writeAll/writeBuffers.
type wtimeout struct{}

func (wtimeout) Error() string   { return "i/o timeout" }
func (wtimeout) Timeout() bool   { return true }
func (wtimeout) Temporary() bool { return true }

// throttledConn is a fake net.Conn that accepts at most chunk bytes per
// Write before reporting a timeout — a stalling client — or refuses
// writes entirely (stall), so the cooperative write loops' partial-write
// resumption and deadline-abort paths can be driven deterministically.
type throttledConn struct {
	buf    bytes.Buffer
	chunk  int  // max bytes accepted per Write; 0 means unlimited
	stall  bool // refuse every write with a timeout
	writes int  // Write calls that accepted at least one byte
}

func (c *throttledConn) Write(p []byte) (int, error) {
	if c.stall {
		return 0, wtimeout{}
	}
	c.writes++
	if c.chunk > 0 && len(p) > c.chunk {
		c.buf.Write(p[:c.chunk])
		return c.chunk, wtimeout{}
	}
	c.buf.Write(p)
	return len(p), nil
}

func (c *throttledConn) Read(p []byte) (int, error)       { return 0, io.EOF }
func (c *throttledConn) Close() error                     { return nil }
func (c *throttledConn) LocalAddr() net.Addr              { return fakeAddr{} }
func (c *throttledConn) RemoteAddr() net.Addr             { return fakeAddr{} }
func (c *throttledConn) SetDeadline(time.Time) error      { return nil }
func (c *throttledConn) SetReadDeadline(time.Time) error  { return nil }
func (c *throttledConn) SetWriteDeadline(time.Time) error { return nil }

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

// testConn wires a Conn to a throttled fake: parks advance the private
// clock, so a deadline-capped write observably runs out of ticks.
func testConn(tc *throttledConn) (*Conn, *cml.Clock) {
	clk := cml.NewClock()
	cfg := ConnConfig{
		Clock:      clk,
		Park:       func(ticks int64) { clk.Advance(nil, ticks) },
		PollWindow: time.Millisecond,
	}
	return NewConn(tc, cfg), clk
}

// ---------------------------------------------------------- render edges

func renderOne(resp Response, keepAlive bool) string {
	rb := &respBuf{}
	renderResponse(rb, resp, keepAlive)
	return rb.b.String()
}

func TestRenderResponseEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		resp      Response
		keepAlive bool
		want      []string
		reject    []string
	}{
		{
			name: "retry-after emitted when set",
			resp: Response{Status: 503, Body: []byte("busy\n"), RetryAfter: 7},
			want: []string{"HTTP/1.1 503 Service Unavailable\r\n", "\r\nRetry-After: 7\r\n", "\r\nConnection: close\r\n\r\nbusy\n"},
		},
		{
			name:   "no retry-after by default",
			resp:   Response{Status: 200, Body: []byte("ok")},
			reject: []string{"Retry-After"},
			want:   []string{"\r\nContent-Length: 2\r\n"},
		},
		{
			name: "empty body still frames content-length 0",
			resp: Response{Status: 404},
			want: []string{"HTTP/1.1 404 Not Found\r\n", "\r\nContent-Length: 0\r\n", "\r\nConnection: close\r\n\r\n"},
		},
		{
			name:      "custom content type overrides the default",
			resp:      Response{Status: 200, ContentType: "application/json", Body: []byte("{}")},
			keepAlive: true,
			want:      []string{"\r\nContent-Type: application/json\r\n", "\r\nConnection: keep-alive\r\n\r\n{}"},
			reject:    []string{"text/plain"},
		},
		{
			name: "status without canned text gets the generic reason",
			resp: Response{Status: 299, Body: []byte("x")},
			want: []string{"HTTP/1.1 299 Status\r\n"},
		},
	}
	for _, tc := range cases {
		got := renderOne(tc.resp, tc.keepAlive)
		for _, w := range tc.want {
			if !strings.Contains(got, w) {
				t.Errorf("%s: rendered %q lacks %q", tc.name, got, w)
			}
		}
		for _, r := range tc.reject {
			if strings.Contains(got, r) {
				t.Errorf("%s: rendered %q must not contain %q", tc.name, got, r)
			}
		}
	}
}

// ------------------------------------------------- cooperative write loops

// TestWriteAllResumesPartialWrites drips a response through a conn that
// takes 7 bytes per write: writeAll must park and resume until the whole
// rendered response is on the wire, byte-identical to an unthrottled one.
func TestWriteAllResumesPartialWrites(t *testing.T) {
	tc := &throttledConn{chunk: 7}
	c, _ := testConn(tc)
	resp := Response{Status: 200, Body: []byte("partial-write resumption body")}
	if err := c.WriteResponse(resp, 1_000_000, true); err != nil {
		t.Fatal(err)
	}
	if got, want := tc.buf.String(), renderOne(resp, true); got != want {
		t.Errorf("throttled write produced %q, want %q", got, want)
	}
	if tc.writes < 2 {
		t.Errorf("throttle did not engage (%d writes); the test exercised nothing", tc.writes)
	}
}

// TestWriteAllAbortsAtCapTick stalls the conn entirely: every park burns
// a tick, so the write must give up with ErrDeadline at capTick instead
// of spinning forever.
func TestWriteAllAbortsAtCapTick(t *testing.T) {
	tc := &throttledConn{stall: true}
	c, clk := testConn(tc)
	err := c.WriteResponse(Response{Status: 200, Body: []byte("never lands")}, clk.Now()+25, false)
	if err != ErrDeadline {
		t.Fatalf("stalled write returned %v, want ErrDeadline", err)
	}
}

// TestWriteResponsesCoalescesBatch checks the flat path: a batch lands
// with one socket write, every response but the last is keep-alive (more
// of the batch follows by construction), the last takes the caller's
// decision, and the hook reports the batch size.
func TestWriteResponsesCoalescesBatch(t *testing.T) {
	tc := &throttledConn{}
	c, _ := testConn(tc)
	var hooked int
	c.cfg.OnWriteBatch = func(n int) { hooked = n }
	batch := []Response{
		{Status: 200, Body: []byte("first")},
		{Status: 404, Body: []byte("second")},
		{Status: 200, Body: []byte("third")},
	}
	if err := c.WriteResponses(batch, 1_000_000, false); err != nil {
		t.Fatal(err)
	}
	want := renderOne(batch[0], true) + renderOne(batch[1], true) + renderOne(batch[2], false)
	if got := tc.buf.String(); got != want {
		t.Errorf("batched write produced %q, want %q", got, want)
	}
	if tc.writes != 1 {
		t.Errorf("batch took %d socket writes, want 1", tc.writes)
	}
	if hooked != len(batch) {
		t.Errorf("OnWriteBatch reported %d, want %d", hooked, len(batch))
	}
}

// TestWriteResponsesVectoredLargeBodies pushes the batch's body volume
// past vectoredWriteBytes so the iovec path runs, against a throttled
// conn so partial vectored writes must resume mid-buffer.  The wire
// bytes must still be exactly the concatenated rendered responses.
func TestWriteResponsesVectoredLargeBodies(t *testing.T) {
	big := bytes.Repeat([]byte("v"), vectoredWriteBytes)
	batch := []Response{
		{Status: 200, Body: big},
		{Status: 200, ContentType: "application/octet-stream", Body: []byte("tail")},
	}
	want := renderOne(batch[0], true) + renderOne(batch[1], true)

	tc := &throttledConn{chunk: 10_000}
	c, _ := testConn(tc)
	if err := c.WriteResponses(batch, 1_000_000, true); err != nil {
		t.Fatal(err)
	}
	if got := tc.buf.String(); got != want {
		t.Errorf("vectored write produced %d bytes (first 80: %q), want %d (%q)",
			len(got), got[:min(80, len(got))], len(want), want[:80])
	}
	if tc.writes < 2 {
		t.Errorf("throttle did not engage (%d writes)", tc.writes)
	}

	// And the stall-abort discipline holds on the vectored path too.
	ts := &throttledConn{stall: true}
	cs, clk := testConn(ts)
	if err := cs.WriteResponses(batch, clk.Now()+25, true); err != ErrDeadline {
		t.Fatalf("stalled vectored write returned %v, want ErrDeadline", err)
	}
}

// TestWriteResponsesEmptyBatch: nothing to write must be a no-op, not a
// render of zero responses.
func TestWriteResponsesEmptyBatch(t *testing.T) {
	tc := &throttledConn{}
	c, _ := testConn(tc)
	called := false
	c.cfg.OnWriteBatch = func(int) { called = true }
	if err := c.WriteResponses(nil, 10, true); err != nil {
		t.Fatal(err)
	}
	if tc.buf.Len() != 0 || tc.writes != 0 || called {
		t.Errorf("empty batch touched the socket (%d bytes, %d writes, hook=%v)",
			tc.buf.Len(), tc.writes, called)
	}
}

// ------------------------------------------------------------ zero alloc

// TestNoAllocsBatchedRender: in the steady state (pool warm, fake-conn
// buffer grown) writing a whole batch — render, coalesce, socket write —
// allocates nothing, on both the flat and the vectored path.
func TestNoAllocsBatchedRender(t *testing.T) {
	pool := NewBufPool(4)
	tc := &throttledConn{}
	clk := cml.NewClock()
	c := NewConn(tc, ConnConfig{Clock: clk, Park: func(int64) {}, Pool: pool})

	flat := []Response{
		{Status: 200, Body: []byte("alpha")},
		{Status: 200, Body: []byte("beta")},
		{Status: 404, Body: []byte("gamma")},
	}
	big := bytes.Repeat([]byte("v"), vectoredWriteBytes)
	vectored := []Response{{Status: 200, Body: big}, {Status: 200, Body: []byte("tail")}}

	for name, batch := range map[string][]Response{"flat": flat, "vectored": vectored} {
		batch := batch
		run := func() {
			tc.buf.Reset()
			if err := c.WriteResponses(batch, 1_000_000, true); err != nil {
				panic(err)
			}
		}
		run() // warm: grows the pooled buffer, iovec, and conn scratch
		if n := testing.AllocsPerRun(100, run); n != 0 {
			t.Errorf("%s batched write allocates %.1f times per batch, want 0", name, n)
		}
	}
}

// TestNoAllocsRequestBodyIngest: the arena replaces the per-request
// `append([]byte(nil), …)` body copy; once grown to the batch's size it
// must serve a full batch of body takes without touching the heap.
func TestNoAllocsRequestBodyIngest(t *testing.T) {
	c := &Conn{cfg: ConnConfig{Clock: cml.NewClock()}}
	payload := []byte("0123456789abcdef0123456789abcdef")
	total := 0
	ingest := func() {
		c.arena = c.arena[:0] // what each blocking ReadRequest does
		for i := 0; i < 16; i++ {
			c.acc = append(c.acc[:0], payload...)
			total += len(c.takeBody(4, len(payload)))
		}
	}
	ingest() // grow the arena to the batch's steady-state footprint
	if n := testing.AllocsPerRun(200, ingest); n != 0 {
		t.Errorf("steady-state body ingest allocates %.1f times per batch, want 0", n)
	}
	if total == 0 {
		t.Fatal("ingest moved no bytes")
	}
}

// TestArenaBodiesSurviveMidBatchGrowth: when the arena reallocates while
// a batch is mid-flight, bodies handed out earlier must stay intact (they
// keep the old backing array) and be capacity-clipped so a later append
// cannot scribble on a neighbor.
func TestArenaBodiesSurviveMidBatchGrowth(t *testing.T) {
	c := &Conn{cfg: ConnConfig{Clock: cml.NewClock()}}
	var bodies [][]byte
	for i := 0; i < 64; i++ {
		// Growing payloads force repeated arena reallocation mid-batch.
		payload := bytes.Repeat([]byte(fmt.Sprintf("%02d", i)), 8*(i+1))
		c.acc = append(c.acc[:0], payload...)
		bodies = append(bodies, c.takeBody(0, len(payload)))
	}
	for i, b := range bodies {
		want := bytes.Repeat([]byte(fmt.Sprintf("%02d", i)), 8*(i+1))
		if !bytes.Equal(b, want) {
			t.Fatalf("body %d corrupted after arena growth: %q", i, b[:min(16, len(b))])
		}
		if cap(b) != len(b) {
			t.Errorf("body %d not capacity-clipped (len %d cap %d)", i, len(b), cap(b))
		}
	}
}
