// Package serve is a network request-serving subsystem built strictly on
// the MP public surface: every stage of the request path — accept,
// admission, queueing, dispatch, handling, response — runs as MP threads
// (threads.Fork) synchronized with syncx semaphores, mutex locks, and the
// CML virtual clock; there is not a single raw goroutine, Go channel,
// receive expression or select statement in this package (a go/scanner
// test enforces it).  Serving is therefore a sixth, externally-driven
// workload for the platform: the paper's claim that procs + locks +
// continuations suffice for real concurrent clients, now taking traffic
// from outside the process.
//
// Pipeline (each arrow is an MP construct, not a Go one):
//
//		acceptor ──enqueue──▶ bounded accept queue ──items semaphore──▶
//		dispatcher ──slots semaphore──▶ forked worker ──respond──▶ client
//
//	  - The acceptor polls the TCP listener with short deadlines so it
//	    remains a cooperative thread (yield/preempt/drain at every loop).
//	  - Admission control is a bounded accept queue plus a bounded
//	    in-flight slot semaphore; when the queue is full the acceptor sheds
//	    the connection immediately with 503 + Retry-After instead of
//	    queueing unboundedly.
//	  - Connections are persistent (HTTP/1.1 keep-alive, see conn.go): a
//	    worker owns its connection for the connection's lifetime, serving
//	    pipelined requests in order, and the in-flight slot bounds
//	    concurrently-served connections.
//	  - Per-request deadlines ride on the CML clock (package cml): ticks
//	    are pumped from wall time by a dedicated thread, blocked reads and
//	    writes park on clock events instead of spinning, and handlers
//	    cancel at safe points when the deadline passes (504).
//	  - Graceful drain is wired to the platform's dynamic processor
//	    allowance: Drain marks the server draining and shrinks the
//	    allowance with proc.SetLimit, so procs release themselves at safe
//	    points (threads.Dispatch honors Revoked), in-flight requests finish
//	    on the survivors, queued-but-unstarted requests are shed, idle
//	    keep-alive connections close, and the platform quiesces — zero
//	    in-flight requests dropped.
//	  - Every stage emits to the unified observability spine
//	    (internal/metrics counters/histograms on the platform registry,
//	    internal/trace events on the acting proc's ring), exposed over HTTP
//	    via /metrics and /trace; the access log is written through
//	    internal/mlio under the per-stream locking policy and carries the
//	    server's shard id so fabric logs stay attributable.
//
// Beyond its own listener, a Server also serves as one *shard* of the
// internal/shard fabric: Options.NoListener suppresses the acceptor and
// Submit injects already-parsed requests (forwarded by the fabric's
// front acceptor over per-shard rings) into the same admission pipeline.
package serve

import (
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/cml"
	"repro/internal/core"
	"repro/internal/gcsync"
	"repro/internal/metrics"
	"repro/internal/mlheap"
	"repro/internal/mlio"
	"repro/internal/proc"
	"repro/internal/queue"
	"repro/internal/spinlock"
	"repro/internal/syncx"
	"repro/internal/threads"
	"repro/internal/trace"
)

// Options parameterize a Server.
type Options struct {
	// Addr is the TCP listen address; empty means "127.0.0.1:0".
	Addr string
	// NoListener suppresses the listener and acceptor thread entirely:
	// the server takes requests only via Submit — the shard-backend mode
	// used by internal/shard.
	NoListener bool
	// ShardID labels this server's access-log lines; fabric shards get
	// distinct ids (default 0).
	ShardID int
	// MaxInFlight bounds concurrently-served connections (default 64).
	MaxInFlight int
	// QueueDepth bounds the accept queue; a connection arriving with the
	// queue full is shed with 503 (default 128).
	QueueDepth int
	// DeadlineTicks is the per-request deadline in clock ticks, measured
	// from the request's first byte (default 2000).
	DeadlineTicks int64
	// DispatchBatch bounds how many queued units the dispatcher drains per
	// items-semaphore wakeup: one blocking P, then up to DispatchBatch-1
	// more credits taken without blocking, all dequeued under a single
	// state-lock critical section (default 16; 1 restores the pre-batching
	// one-wakeup-per-unit behavior).
	DispatchBatch int
	// KeepAliveIdleTicks bounds how long a persistent connection may sit
	// idle between requests before it is closed (default DeadlineTicks).
	KeepAliveIdleTicks int64
	// DisableKeepAlive forces Connection: close on every response, the
	// pre-fabric one-request-per-connection behavior (benchmark baseline).
	DisableKeepAlive bool
	// Tick is the wall duration of one clock tick (default 1ms).
	Tick time.Duration
	// PollWindow is how long a single blocking accept/read/write may hold
	// a proc before the thread parks on the clock (default 1ms).
	PollWindow time.Duration
	// RetryAfter is the Retry-After hint, in seconds, on shed responses
	// (default 1).
	RetryAfter int
	// StreamHeartbeatTicks is how long a chunked streaming response may
	// stay quiet before the worker writes a heartbeat chunk — both a
	// keep-alive and the dead-subscriber detector (default 2500; a
	// negative value disables heartbeats).
	StreamHeartbeatTicks int64
	// Log, when non-nil, is a shared mlio runtime for the access log; the
	// fabric passes one runtime to every shard so their lines interleave
	// in a single stream.  Pair with LogPolicy.  Default: a private
	// runtime under a per-stream lock.
	Log *mlio.Runtime
	// LogPolicy is the locking policy for access-log writes; must be set
	// when Log is shared (all writers need the same policy instance).
	LogPolicy mlio.Policy
	// Tracer, if non-nil, receives per-stage events; /trace serves its
	// contents via a stop-the-world snapshot.  It must be private to the
	// server — do not share it with threads.Options.Tracer: the snapshot
	// protocol quiesces serve's own emitters only, and scheduler emits
	// (dispatch/yield on every operation) would race with the ring
	// reads.  For a whole-system trace, attach a second tracer to the
	// scheduler and export it after Run returns, as cmd/mpbench does.
	Tracer *trace.Tracer
	// ExtraMetrics are additional named registries /metrics renders after
	// the platform and default registries — the fabric front hands its
	// own registry to every backend shard this way, so the front's
	// park/wakeup/resume counters show up on any shard's /metrics.
	ExtraMetrics []NamedRegistry
	// MLWorld, when non-nil, is a shared gcsync heap world for this
	// server's procs: the /work/mlalloc allocating kernel is installed,
	// the world's yield hook is pointed at the thread scheduler, and the
	// world's registry (pause/copy/section counters) joins /metrics.
	MLWorld *gcsync.World
	// MLGCAware guards the server's admission semaphores, state lock and
	// the mlalloc shared-registry lock with GC-aware locks over MLWorld
	// (spinlock.GCAware), so a thread spinning on serving-path locks
	// joins or helps a pending collection instead of convoying it.
	// Ignored without MLWorld; the off state is the ablation baseline.
	MLGCAware bool
	// FairLocks replaces the TAS spin locks guarding the admission
	// semaphores, state lock, and mlalloc registry lock with the FIFO
	// claim/release locks (syncx.FairLock): contenders queue in claim
	// order and releases hand off instead of re-racing, so under skew no
	// dispatcher loses the acquisition race repeatedly.  When MLWorld is
	// set with MLGCAware the fair claim loop also polls the GC section.
	// Off by default — the spin path is the ablation baseline.
	FairLocks bool
}

// NamedRegistry labels a metrics registry for /metrics rendering.
type NamedRegistry struct {
	Name string
	Reg  *metrics.Registry
}

func (o *Options) fill() {
	if o.Addr == "" {
		o.Addr = "127.0.0.1:0"
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	if o.DeadlineTicks <= 0 {
		o.DeadlineTicks = 2000
	}
	if o.DispatchBatch <= 0 {
		o.DispatchBatch = 16
	}
	if o.KeepAliveIdleTicks <= 0 {
		o.KeepAliveIdleTicks = o.DeadlineTicks
	}
	if o.Tick <= 0 {
		o.Tick = time.Millisecond
	}
	if o.PollWindow <= 0 {
		o.PollWindow = time.Millisecond
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = 1
	}
	if o.StreamHeartbeatTicks == 0 {
		o.StreamHeartbeatTicks = 2500
	} else if o.StreamHeartbeatTicks < 0 {
		o.StreamHeartbeatTicks = 0
	}
}

// job is one injected (fabric-forwarded) request awaiting dispatch.
type job struct {
	req     *Request
	deliver func(Response)
}

// pending is one unit of admitted work waiting for dispatch: an accepted
// connection (direct path) or an injected request (Submit path).
type pending struct {
	conn    net.Conn
	job     *job
	arrival int64 // clock tick at admission
}

// serveMetrics caches the server's instrument handles; all are sharded
// on the platform registry so the request path never takes the registry
// lock.
type serveMetrics struct {
	accepted      *metrics.Counter
	acceptErrs    *metrics.Counter
	queued        *metrics.Counter
	queueDepth    *metrics.Counter // gauge: +1 enqueue, -1 dequeue
	inflight      *metrics.Counter // gauge: +1 dispatch, -1 done
	submitted     *metrics.Counter
	shedQueue     *metrics.Counter
	shedDrain     *metrics.Counter
	dispatched    *metrics.Counter
	expired       *metrics.Counter
	handled       *metrics.Counter
	responded     *metrics.Counter
	keepalive     *metrics.Counter // requests served beyond a conn's first
	readErrs      *metrics.Counter
	readParks     *metrics.Counter
	latencyTicks  *metrics.Histogram
	queueTicks    *metrics.Histogram
	dispatchBatch *metrics.Histogram // units drained per items wakeup
	writeBatch    *metrics.Histogram // responses coalesced per socket-write batch
}

// Server is the serving subsystem; create with New, start with Serve
// from inside System.Run, stop with Drain.
type Server struct {
	sys  *threads.System
	pl   *proc.Platform
	opts Options
	ln   *net.TCPListener

	clock *cml.Clock
	items *syncx.Semaphore // accept-queue occupancy (V by acceptor, P by dispatcher)
	slots *syncx.Semaphore // in-flight connection capacity
	pool  *BufPool
	ccfg  ConnConfig

	mlWorld  *gcsync.World // shared ML heap world (Options.MLWorld)
	mlLock   core.Lock     // guards the mlalloc shared registry record
	mlShared mlheap.Value  // registry record /work/mlalloc requests publish into

	state          core.Lock // guards all fields below
	acceptQ        queue.Queue[pending]
	active         int // dispatched work units not yet finished
	holds          int // outstanding Hold()s keeping the pumps alive
	drainHooks     []func()
	draining       bool
	acceptorDone   bool
	dispatcherDone bool
	acceptorIdle   bool // parked by the trace-snapshot barrier
	dispatcherIdle bool // parked on the items semaphore
	tracePause     bool // a /trace snapshot is stopping the world

	routes []route

	m      serveMetrics
	tracer *trace.Tracer
	evAccept, evEnqueue, evShed, evDispatch,
	evHandle, evRespond, evDrain trace.EventID

	logrt  *mlio.Runtime
	logpol mlio.Policy
}

// New opens the listener (unless Options.NoListener) and prepares a
// server over the given thread system.  The system is not started here;
// call Serve from the root thread inside sys.Run.
func New(sys *threads.System, opts Options) (*Server, error) {
	opts.fill()
	var tln *net.TCPListener
	if !opts.NoListener {
		ln, err := net.Listen("tcp", opts.Addr)
		if err != nil {
			return nil, err
		}
		var ok bool
		tln, ok = ln.(*net.TCPListener)
		if !ok {
			ln.Close()
			return nil, fmt.Errorf("serve: listener %T is not a *net.TCPListener", ln)
		}
	}
	// With a GC-aware world, the admission semaphores' guards and the
	// state lock poll the GC section while spinning: these are exactly
	// the locks a stopped-for-collection worker may hold, and a spinner
	// that cannot reach a clean point would convoy the whole stop.
	// FairLocks swaps the spin flavors for the FIFO claim/release locks;
	// their claim loop polls the same GC section, so the two axes compose.
	lockf := core.LockFactory(core.NewMutexLock)
	if opts.MLWorld != nil && opts.MLGCAware {
		lockf = spinlock.GCAware(core.NewMutexLock, opts.MLWorld)
	}
	if opts.FairLocks {
		var gcw spinlock.GCWorld
		if opts.MLWorld != nil && opts.MLGCAware {
			gcw = opts.MLWorld
		}
		lockf = syncx.FairFactory(gcw, nil)
	}
	srv := &Server{
		sys:     sys,
		pl:      sys.Platform(),
		opts:    opts,
		ln:      tln,
		clock:   cml.NewClock(),
		items:   syncx.NewSemaphoreWith(sys, 0, lockf),
		slots:   syncx.NewSemaphoreWith(sys, opts.MaxInFlight, lockf),
		pool:    NewBufPool(sys.Platform().MaxProcs()),
		state:   lockf(),
		acceptQ: queue.NewFifo[pending](),
		tracer:  opts.Tracer,
		logrt:   opts.Log,
		logpol:  opts.LogPolicy,
	}
	if srv.logrt == nil {
		srv.logrt = mlio.NewRuntime()
	}
	if srv.logpol == nil {
		srv.logpol = mlio.NewPerStream()
	}
	if opts.NoListener {
		srv.acceptorDone = true
	}
	reg := sys.Metrics()
	bounds := []int64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000}
	srv.m = serveMetrics{
		accepted:     reg.Counter("serve.accepted"),
		acceptErrs:   reg.Counter("serve.accept_errors"),
		queued:       reg.Counter("serve.queued"),
		queueDepth:   reg.Counter("serve.queue_depth"),
		inflight:     reg.Counter("serve.inflight"),
		submitted:    reg.Counter("serve.submitted"),
		shedQueue:    reg.Counter("serve.shed_queue_full"),
		shedDrain:    reg.Counter("serve.shed_draining"),
		dispatched:   reg.Counter("serve.dispatched"),
		expired:      reg.Counter("serve.deadline_expired"),
		handled:      reg.Counter("serve.handled"),
		responded:    reg.Counter("serve.responded"),
		keepalive:    reg.Counter("serve.keepalive_reqs"),
		readErrs:     reg.Counter("serve.read_errors"),
		readParks:    reg.Counter("serve.read_parks"),
		latencyTicks: reg.Histogram("serve.latency_ticks", bounds),
		queueTicks:   reg.Histogram("serve.queue_ticks", bounds),
		dispatchBatch: reg.Histogram("serve.dispatch_batch",
			[]int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
		writeBatch: reg.Histogram("serve.write_batch",
			[]int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
	}
	if srv.tracer != nil {
		srv.evAccept = srv.tracer.Define("serve.accept")
		srv.evEnqueue = srv.tracer.Define("serve.enqueue")
		srv.evShed = srv.tracer.Define("serve.shed")
		srv.evDispatch = srv.tracer.Define("serve.dispatch")
		srv.evHandle = srv.tracer.Define("serve.handle")
		srv.evRespond = srv.tracer.Define("serve.respond")
		srv.evDrain = srv.tracer.Define("serve.drain")
	}
	srv.ccfg = ConnConfig{
		Clock:        srv.clock,
		Park:         srv.park,
		PollWindow:   srv.opts.PollWindow,
		Tick:         srv.opts.Tick,
		Pool:         srv.pool,
		OnReadPark:   func() { srv.m.readParks.Inc(proc.Self()) },
		OnWriteBatch: func(n int) { srv.m.writeBatch.Observe(proc.Self(), int64(n)) },
		Aborted:      srv.Draining,
	}
	srv.installBuiltins()
	if opts.MLWorld != nil {
		srv.initMLAlloc()
		srv.opts.ExtraMetrics = append(srv.opts.ExtraMetrics,
			NamedRegistry{Name: "mlheap", Reg: opts.MLWorld.Heap().Metrics()})
	}
	return srv, nil
}

// Addr returns the listener's address (useful with ":0"); nil in
// NoListener mode.
func (srv *Server) Addr() net.Addr {
	if srv.ln == nil {
		return nil
	}
	return srv.ln.Addr()
}

// Clock returns the server's CML clock; one tick is Options.Tick of
// wall time once Serve's pump thread is running.
func (srv *Server) Clock() *cml.Clock { return srv.clock }

// System returns the thread system the server schedules on.
func (srv *Server) System() *threads.System { return srv.sys }

// InFlight reports the number of dispatched, not-yet-finished work units
// (connections being served plus injected requests).
func (srv *Server) InFlight() int {
	srv.state.Lock()
	defer srv.state.Unlock()
	return srv.active
}

// QueueLen reports the current accept-queue depth.
func (srv *Server) QueueLen() int {
	srv.state.Lock()
	defer srv.state.Unlock()
	return srv.acceptQ.Len()
}

// Draining reports whether Drain has been called.
func (srv *Server) Draining() bool {
	srv.state.Lock()
	defer srv.state.Unlock()
	return srv.draining
}

// AccessLog snapshots the access log (one line per response, written
// through mlio's per-stream locking policy).
func (srv *Server) AccessLog() []byte { return srv.logrt.Contents("access") }

// Serve starts the serving threads — clock pump, dispatcher, and (with a
// listener) acceptor — and returns; it must be called from an MP thread
// (inside System.Run).  The system quiesces, and Run returns, after
// Drain completes.
func (srv *Server) Serve() {
	srv.sys.Fork(func() { srv.pump() })
	srv.sys.Fork(func() { srv.dispatcher() })
	if srv.ln != nil {
		srv.sys.Fork(func() { srv.acceptor() })
	}
}

// Drain initiates graceful shutdown: new connections are shed, queued
// requests are refused, in-flight requests run to completion, idle
// keep-alive connections close at their next safe point, and the
// physical-processor allowance is shrunk to one so procs release
// themselves at their next safe point (§3.1's revocation, reused as the
// drain mechanism).  Safe to call from any goroutine, including a signal
// handler outside the MP world; idempotent.
func (srv *Server) Drain() {
	srv.state.Lock()
	already := srv.draining
	srv.draining = true
	hooks := srv.drainHooks
	srv.drainHooks = nil
	srv.state.Unlock()
	if already {
		return
	}
	// Drain hooks fire exactly once, outside the state lock — subsystems
	// riding on this server (the pubsub broker) begin their own shutdown
	// here and release their Hold when done.
	for _, h := range hooks {
		h()
	}
	// Procs discover the shrunken allowance at dispatch safe points and
	// release; in-flight work finishes on the survivor.
	srv.pl.SetLimit(1)
	if srv.opts.NoListener {
		// No acceptor to poison the dispatcher; do it here.
		srv.items.Release()
	}
}

// OnDrain registers a hook run exactly once when Drain first fires (on
// the draining caller, before the allowance shrinks).  If the server is
// already draining the hook runs immediately.  Register before Serve or
// from any goroutine.
func (srv *Server) OnDrain(f func()) {
	srv.state.Lock()
	if srv.draining {
		srv.state.Unlock()
		f()
		return
	}
	srv.drainHooks = append(srv.drainHooks, f)
	srv.state.Unlock()
}

// Hold keeps the server's pumps (clock, scheduler occupancy) alive past
// the normal drain quiescence point until the returned release is
// called — how a subsystem with its own shutdown choreography (the
// pubsub broker flushing streams) extends the server's lifetime.  The
// release is idempotent and callable from any goroutine.
func (srv *Server) Hold() (release func()) {
	srv.state.Lock()
	srv.holds++
	srv.state.Unlock()
	released := false
	return func() {
		srv.state.Lock()
		if !released {
			released = true
			srv.holds--
		}
		srv.state.Unlock()
	}
}

// park suspends the calling thread for the given number of clock ticks
// by synchronizing on the CML clock; the pump thread's Advance wakes it.
func (srv *Server) park(ticks int64) {
	cml.Sync(srv.sys, srv.clock.AfterEvt(ticks))
}

// emit records a trace event on the calling proc's own ring (the rings
// are single-writer; every serve emit is by the acting thread).
func (srv *Server) emit(ev trace.EventID, arg int64) {
	srv.tracer.Emit(proc.Self(), ev, arg)
}

// ------------------------------------------------------------------ pump

// pump advances the CML clock from wall time: one tick per Options.Tick
// elapsed.  It is the server's only time source — read/write waits and
// deadline checks all observe the virtual clock, so tests may substitute
// a hand-driven clock by never starting the pump.  The pump exits last,
// once drain has completed and every other serving thread is gone.
func (srv *Server) pump() {
	start := time.Now()
	var emitted int64
	for {
		target := int64(time.Since(start) / srv.opts.Tick)
		if d := target - emitted; d > 0 {
			srv.clock.Advance(srv.sys, d)
			emitted = target
		}
		srv.state.Lock()
		done := srv.draining && srv.acceptorDone && srv.dispatcherDone &&
			srv.active == 0 && srv.holds == 0
		srv.state.Unlock()
		if done {
			return
		}
		srv.sys.CheckPreempt()
		// Bound the busy-wait: sleep a fraction of a tick (briefly holding
		// this proc), then yield so co-resident threads run.
		time.Sleep(srv.opts.Tick / 4)
		srv.sys.Yield()
	}
}

// -------------------------------------------------------------- acceptor

// acceptor polls the listener cooperatively: a short accept deadline per
// attempt, then a yield, so the thread honors preemption, revocation,
// drain, and the trace-snapshot barrier at every iteration.
func (srv *Server) acceptor() {
	self := func() int { return proc.Self() }
	for {
		srv.acceptorBarrier()
		srv.state.Lock()
		stop := srv.draining
		srv.state.Unlock()
		if stop {
			break
		}
		srv.ln.SetDeadline(time.Now().Add(srv.opts.PollWindow))
		conn, err := srv.ln.Accept()
		if err != nil {
			if isTimeout(err) {
				srv.sys.CheckPreempt()
				srv.sys.Yield()
				continue
			}
			srv.m.acceptErrs.Inc(self())
			srv.sys.Yield()
			continue
		}
		now := srv.clock.Now()
		srv.m.accepted.Inc(self())
		srv.emit(srv.evAccept, now)

		srv.state.Lock()
		if srv.draining {
			srv.state.Unlock()
			srv.shedConn(conn, now, srv.m.shedDrain, "draining")
			break
		}
		if srv.acceptQ.Len() >= srv.opts.QueueDepth {
			srv.state.Unlock()
			srv.shedConn(conn, now, srv.m.shedQueue, "accept queue full")
			continue
		}
		srv.acceptQ.Enq(pending{conn: conn, arrival: now})
		srv.state.Unlock()
		srv.m.queued.Inc(self())
		srv.m.queueDepth.Inc(self())
		srv.emit(srv.evEnqueue, now)
		srv.items.Release()
	}
	srv.ln.Close()
	srv.emit(srv.evDrain, 0)
	srv.state.Lock()
	srv.acceptorDone = true
	srv.state.Unlock()
	// Poison: wake the dispatcher so it can observe drain and exit.
	srv.items.Release()
}

// acceptorBarrier parks the acceptor while a /trace snapshot is in
// progress.  The state-lock handoff here is also the happens-before edge
// that orders the acceptor's last ring emit before the snapshot's reads.
func (srv *Server) acceptorBarrier() {
	srv.state.Lock()
	if !srv.tracePause {
		srv.state.Unlock()
		return
	}
	srv.acceptorIdle = true
	srv.state.Unlock()
	for {
		srv.park(1)
		srv.state.Lock()
		if !srv.tracePause {
			srv.acceptorIdle = false
			srv.state.Unlock()
			return
		}
		srv.state.Unlock()
	}
}

// shedConn refuses a connection with 503 + Retry-After, best-effort: the
// write is capped to a few ticks so a dead client cannot stall the
// shedding thread.
func (srv *Server) shedConn(conn net.Conn, arrival int64, counter *metrics.Counter, why string) {
	counter.Inc(proc.Self())
	srv.emit(srv.evShed, arrival)
	resp := Response{
		Status:     503,
		Body:       []byte("shedding load: " + why + "\n"),
		RetryAfter: srv.opts.RetryAfter,
	}
	c := NewConn(conn, srv.ccfg)
	c.WriteResponse(resp, srv.clock.Now()+20, false)
	conn.Close()
	srv.logAccess(resp.Status, arrival, "-", "-")
}

// ---------------------------------------------------------------- submit

// Submit injects an already-parsed request into the admission pipeline —
// the shard-backend entry point used by internal/shard's forwarders.
// The request's deadline is rebased onto this server's clock from the
// caller-supplied remaining tick budget (front and shard clocks are
// independent).  deliver is called exactly once, from a worker MP thread
// of this server's system, with the response — unless Submit returns
// false (queue full or draining), in which case deliver is never called
// and the caller owns the shed response.  Submit must be called from an
// MP thread of this server's system.
func (srv *Server) Submit(req *Request, remaining int64, deliver func(Response)) bool {
	now := srv.clock.Now()
	if remaining < 1 {
		remaining = 1
	}
	req.srv = srv
	req.Arrival = now
	req.Deadline = now + remaining
	self := proc.Self()
	srv.state.Lock()
	if srv.draining {
		srv.state.Unlock()
		srv.m.shedDrain.Inc(self)
		return false
	}
	if srv.acceptQ.Len() >= srv.opts.QueueDepth {
		srv.state.Unlock()
		srv.m.shedQueue.Inc(self)
		return false
	}
	srv.acceptQ.Enq(pending{job: &job{req: req, deliver: deliver}, arrival: now})
	srv.state.Unlock()
	srv.m.queued.Inc(self)
	srv.m.queueDepth.Inc(self)
	srv.m.submitted.Inc(self)
	srv.emit(srv.evEnqueue, now)
	srv.items.Release()
	return true
}

// SubmitJob is one request in a SubmitMany batch.
type SubmitJob struct {
	Req       *Request
	Remaining int64 // deadline budget in ticks, rebased onto this clock
	Deliver   func(Response)
}

// SubmitMany injects a batch of already-parsed requests under a single
// admission critical section and a single batched V on the items
// semaphore — the fabric's multi-push intake path.  It admits a prefix
// of jobs bounded by queue headroom and returns its length; the caller
// owns shed responses for the rejected suffix (and for everything when
// the server is draining, in which case 0 is returned).
func (srv *Server) SubmitMany(jobs []SubmitJob) int {
	if len(jobs) == 0 {
		return 0
	}
	now := srv.clock.Now()
	self := proc.Self()
	srv.state.Lock()
	if srv.draining {
		srv.state.Unlock()
		srv.m.shedDrain.Add(self, int64(len(jobs)))
		return 0
	}
	n := srv.opts.QueueDepth - srv.acceptQ.Len()
	if n > len(jobs) {
		n = len(jobs)
	}
	if n < 0 {
		n = 0
	}
	for i := 0; i < n; i++ {
		sj := jobs[i]
		rem := sj.Remaining
		if rem < 1 {
			rem = 1
		}
		sj.Req.srv = srv
		sj.Req.Arrival = now
		sj.Req.Deadline = now + rem
		srv.acceptQ.Enq(pending{job: &job{req: sj.Req, deliver: sj.Deliver}, arrival: now})
	}
	srv.state.Unlock()
	if n > 0 {
		srv.m.queued.Add(self, int64(n))
		srv.m.queueDepth.Add(self, int64(n))
		srv.m.submitted.Add(self, int64(n))
		srv.emit(srv.evEnqueue, now)
		srv.items.ReleaseN(n)
	}
	if n < len(jobs) {
		srv.m.shedQueue.Add(self, int64(len(jobs)-n))
	}
	return n
}

// QueueHeadroom reports how many more units the accept queue can take
// right now (0 while draining).  The fabric's intake uses it to bound a
// batched pop from the forward ring: work beyond the headroom stays in
// the ring, where an idle sibling shard can steal it.
func (srv *Server) QueueHeadroom() int {
	srv.state.Lock()
	defer srv.state.Unlock()
	if srv.draining {
		return 0
	}
	n := srv.opts.QueueDepth - srv.acceptQ.Len()
	if n < 0 {
		n = 0
	}
	return n
}

// ------------------------------------------------------------ dispatcher

// dispatcher moves admitted work from the accept queue into workers in
// batches: one blocking P on the items semaphore, then up to
// DispatchBatch-1 further credits taken without blocking, then a single
// state-lock critical section that marks the dispatcher busy and
// dequeues the whole batch — so a producer's batched V of N credits is
// answered by one wakeup, not N, and the idle flag can never read true
// while credits are in hand (the flag is only raised after a failed
// non-blocking drain, and lowered together with the dequeue).  In-flight
// slots are reserved for the live batch with one TryAcquireN, falling
// back to a blocking P only for the shortfall.
func (srv *Server) dispatcher() {
	batchMax := srv.opts.DispatchBatch
	batch := make([]pending, batchMax)
	for {
		credits := srv.items.TryAcquireN(batchMax)
		if credits == 0 {
			// Genuinely nothing queued: advertise idle (the /trace
			// quiesce barrier reads it), park, un-advertise.
			srv.state.Lock()
			srv.dispatcherIdle = true
			srv.state.Unlock()
			srv.items.Acquire()
			srv.state.Lock()
			srv.dispatcherIdle = false
			srv.state.Unlock()
			credits = 1 + srv.items.TryAcquireN(batchMax-1)
		}

		srv.state.Lock()
		n := 0
		for n < credits {
			p, err := srv.acceptQ.Deq()
			if err != nil {
				break
			}
			batch[n] = p
			n++
		}
		draining := srv.draining
		// Enq always precedes Release under the state lock, so the queue
		// holds at least one unit per non-poison credit: a shortfall means
		// the drain poison was among the credits, and this batch is the
		// dispatcher's last.
		poisoned := n < credits && draining && srv.acceptorDone
		if poisoned && n == 0 {
			srv.dispatcherDone = true
			srv.state.Unlock()
			return
		}
		srv.state.Unlock()
		if n == 0 {
			continue
		}

		self := proc.Self()
		srv.m.queueDepth.Add(self, -int64(n))
		srv.m.dispatchBatch.Observe(self, int64(n))
		now := srv.clock.Now()
		live := 0
		for i := 0; i < n; i++ {
			p := batch[i]
			if draining {
				srv.shedPending(p)
				continue
			}
			deadline := p.arrival + srv.opts.DeadlineTicks
			if p.job != nil {
				deadline = p.job.req.Deadline
			}
			if now >= deadline {
				// Expired while queued: answer 504 without consuming a slot.
				srv.m.expired.Inc(self)
				resp := Response{Status: 504, Body: []byte("deadline exceeded in accept queue\n")}
				if p.job != nil {
					p.job.deliver(resp)
				} else {
					c := NewConn(p.conn, srv.ccfg)
					c.WriteResponse(resp, now+20, false)
					p.conn.Close()
				}
				srv.logAccess(504, p.arrival, "-", "-")
				continue
			}
			batch[live] = p
			live++
		}
		reserved := srv.slots.TryAcquireN(live)
		for i := 0; i < live; i++ {
			p := batch[i]
			if reserved > 0 {
				reserved--
			} else {
				srv.slots.Acquire()
			}
			srv.m.dispatched.Inc(self)
			srv.m.inflight.Inc(self)
			srv.m.queueTicks.Observe(self, srv.clock.Now()-p.arrival)
			srv.emit(srv.evDispatch, p.arrival)
			srv.state.Lock()
			srv.active++
			srv.state.Unlock()
			srv.sys.Fork(func() { srv.worker(p) })
		}
		for i := range batch {
			batch[i] = pending{} // drop conn/job references
		}
		if poisoned {
			srv.state.Lock()
			srv.dispatcherDone = true
			srv.state.Unlock()
			return
		}
	}
}

// shedPending refuses queued-but-unstarted work during drain.
func (srv *Server) shedPending(p pending) {
	resp := Response{
		Status:     503,
		Body:       []byte("shedding load: draining\n"),
		RetryAfter: srv.opts.RetryAfter,
	}
	if p.job != nil {
		srv.m.shedDrain.Inc(proc.Self())
		srv.emit(srv.evShed, p.arrival)
		p.job.deliver(resp)
		srv.logAccess(503, p.arrival, "-", "-")
		return
	}
	srv.shedConn(p.conn, p.arrival, srv.m.shedDrain, "draining")
}

// ---------------------------------------------------------------- worker

// worker serves one admitted unit, then returns its in-flight slot.  For
// a direct connection that means the connection's whole keep-alive
// lifetime: requests are read and answered in order until the client
// closes, opts out of keep-alive, errs, goes idle past the keep-alive
// budget, or the server drains.  A pipelined run is answered as a batch:
// after the blocking read delivers a request, every complete successor
// already buffered is handled too, and the whole run's responses go out
// through one WriteResponses.  All blocking inside (reads, writes,
// handler parks) is cooperative: short poll windows plus CML clock
// parks.
func (srv *Server) worker(p pending) {
	if p.job != nil {
		srv.jobWorker(p.job)
		return
	}
	c := NewConn(p.conn, srv.ccfg)
	arrival := p.arrival
	served := 0
	var resps []Response
	for {
		headBudget := srv.opts.DeadlineTicks
		if served > 0 {
			headBudget = srv.opts.KeepAliveIdleTicks
		}
		req, err := c.ReadRequest(arrival+headBudget, srv.opts.DeadlineTicks)
		var resp Response
		silent := false
		switch {
		case err == nil:
			resp = srv.handle(req)
		case errors.Is(err, ErrDeadline):
			if served > 0 && !c.Partial() {
				// Idle keep-alive connection ran out its budget: close
				// without a response — nothing was asked.
				silent = true
				break
			}
			srv.m.expired.Inc(proc.Self())
			resp = Response{Status: 504, Body: []byte("deadline exceeded reading request\n")}
		case errors.Is(err, ErrAborted):
			if !c.Partial() {
				silent = true // draining; no request in progress
				break
			}
			resp = Response{
				Status:     503,
				Body:       []byte("shedding load: draining\n"),
				RetryAfter: srv.opts.RetryAfter,
			}
		case errors.Is(err, ErrTooLarge):
			resp = Response{Status: 413, Body: []byte("request too large\n")}
		case errors.Is(err, ErrBadRequest):
			resp = Response{Status: 400, Body: []byte("malformed request\n")}
		default:
			// Unreadable connection: clean close between requests, or a
			// reset / EOF mid-request — nothing to say either way.
			if c.Partial() || served == 0 {
				srv.m.readErrs.Inc(proc.Self())
			}
			silent = true
		}
		if silent {
			break
		}

		keepAlive := false
		capTick := srv.clock.Now() + 20
		if req != nil {
			keepAlive = err == nil && !req.Close && !srv.opts.DisableKeepAlive && !srv.Draining()
			capTick = req.Deadline + 20
		}
		// A streaming response takes the connection for the rest of its
		// life: responses batched ahead of it flush first (keep-alive —
		// the stream header follows on the same socket), then the chunk
		// pump runs until the stream closes or the client dies.
		var sresp Response
		resps = resps[:0]
		if resp.Stream != nil {
			sresp = resp
		} else {
			resps = append(resps, resp)
		}
		srv.accountResponse(req, resp, arrival, served)
		served++

		// Drain the residual pipelined run: every complete successor
		// already buffered joins this write batch.
		for keepAlive && sresp.Stream == nil {
			more, ok, rerr := c.ReadBuffered(srv.opts.DeadlineTicks)
			if rerr != nil {
				// Poisoned pipeline: the buffered bytes can never become a
				// valid request, so answer once and close the connection.
				bresp := Response{Status: 400, Body: []byte("malformed request\n")}
				if errors.Is(rerr, ErrTooLarge) {
					bresp = Response{Status: 413, Body: []byte("request too large\n")}
				}
				resps = append(resps, bresp)
				srv.accountResponse(nil, bresp, srv.clock.Now(), served)
				served++
				keepAlive = false
				break
			}
			if !ok {
				break
			}
			mresp := srv.handle(more)
			keepAlive = !more.Close && !srv.opts.DisableKeepAlive && !srv.Draining()
			capTick = more.Deadline + 20
			srv.accountResponse(more, mresp, more.Arrival, served)
			served++
			if mresp.Stream != nil {
				sresp = mresp
				break
			}
			resps = append(resps, mresp)
		}

		streaming := sresp.Stream != nil
		werr := c.WriteResponses(resps, capTick, keepAlive || streaming)
		if streaming {
			if werr != nil {
				sresp.Stream.Cancel()
			} else {
				c.StreamResponse(sresp, srv.opts.StreamHeartbeatTicks, srv.opts.DeadlineTicks)
			}
			break
		}
		if werr != nil || !keepAlive {
			break
		}
		arrival = srv.clock.Now()
	}
	p.conn.Close()

	// Last serve-side action: leave the in-flight set under the state
	// lock (ordering every emit above before a /trace snapshot's reads),
	// then free the slot so the dispatcher can admit the next unit.
	srv.finish()
}

// handle runs the handler for one parsed request and applies the
// deadline backstop: a 200 finishing past the deadline becomes the 504
// the client was promised.
func (srv *Server) handle(req *Request) Response {
	resp := srv.dispatchRequest(req)
	if resp.Status == 200 && srv.clock.Now() >= req.Deadline {
		if resp.Stream != nil {
			resp.Stream.Cancel() // the stream response is dropped unwritten
		}
		resp = Response{Status: 504, Body: []byte("deadline exceeded\n")}
	}
	if resp.Status == 504 {
		// Covers both the backstop and handlers that cancelled
		// themselves at a safe point.
		srv.m.expired.Inc(proc.Self())
	}
	return resp
}

// accountResponse emits the per-response metrics, trace event, and
// access-log line for one request of a write batch.  req may be nil
// (read-error responses); fallbackArrival stands in for its arrival.
func (srv *Server) accountResponse(req *Request, resp Response, fallbackArrival int64, served int) {
	method, path, reqArrival := "-", "-", fallbackArrival
	if req != nil {
		method, path, reqArrival = req.Method, req.Path, req.Arrival
	}
	self := proc.Self()
	srv.m.responded.Inc(self)
	srv.m.latencyTicks.Observe(self, srv.clock.Now()-reqArrival)
	srv.emit(srv.evRespond, int64(resp.Status))
	srv.logAccess(resp.Status, reqArrival, method, path)
	if served > 0 {
		srv.m.keepalive.Inc(self)
	}
}

// jobWorker handles one injected request end to end and delivers the
// response to the fabric's completion cell.
func (srv *Server) jobWorker(j *job) {
	req := j.req
	resp := srv.dispatchRequest(req)
	if resp.Status == 200 && srv.clock.Now() >= req.Deadline {
		if resp.Stream != nil {
			resp.Stream.Cancel() // the stream response is dropped unwritten
		}
		resp = Response{Status: 504, Body: []byte("deadline exceeded\n")}
	}
	self := proc.Self()
	if resp.Status == 504 {
		srv.m.expired.Inc(self)
	}
	srv.m.responded.Inc(self)
	srv.m.latencyTicks.Observe(self, srv.clock.Now()-req.Arrival)
	srv.emit(srv.evRespond, int64(resp.Status))
	srv.logAccess(resp.Status, req.Arrival, req.Method, req.Path)
	j.deliver(resp)
	srv.finish()
}

// finish retires one in-flight work unit.
func (srv *Server) finish() {
	srv.m.inflight.Add(proc.Self(), -1)
	srv.state.Lock()
	srv.active--
	srv.state.Unlock()
	srv.slots.Release()
}

// dispatchRequest routes and runs the handler for a parsed request.
func (srv *Server) dispatchRequest(req *Request) Response {
	req.srv = srv // Conn parses without a server; bind for Expired/Park/System
	h := srv.route(req.Path)
	if h == nil {
		return Response{Status: 404, Body: []byte("no handler for " + req.Path + "\n")}
	}
	self := proc.Self()
	srv.m.handled.Inc(self)
	srv.emit(srv.evHandle, req.Arrival)
	return h(req)
}

// logAccess writes one access-log line through mlio's locking policy:
// "shard tick proc status latency method path".  The shard id keeps
// lines attributable when fabric shards share one log stream.
func (srv *Server) logAccess(status int, arrival int64, method, path string) {
	now := srv.clock.Now()
	rec := fmt.Sprintf("%d %d %d %d %d %s %s",
		srv.opts.ShardID, now, proc.Self(), status, now-arrival, method, path)
	srv.logpol.Write(srv.logrt.Open("access"), []byte(rec))
}

// ----------------------------------------------------------------- misc

// isTimeout reports whether err is a network timeout (deadline expiry).
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
