//go:build unix

package serve

// Raw non-blocking fd I/O for the resumable path.  Accepted sockets are
// already O_NONBLOCK (the Go runtime sets it), so a drained read or a
// full send buffer surfaces as EAGAIN — normalized here to
// ErrWouldBlock, the state machine's park signal.  EINTR retries
// in place; a 0-byte read with no error is the peer's EOF.

import (
	"io"
	"syscall"
)

func readFD(fd int, buf []byte) (int, error) {
	for {
		n, err := syscall.Read(fd, buf)
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK {
			return 0, ErrWouldBlock
		}
		if n < 0 {
			n = 0
		}
		if n == 0 && err == nil {
			return 0, io.EOF
		}
		return n, err
	}
}

func writeFD(fd int, buf []byte) (int, error) {
	for {
		n, err := syscall.Write(fd, buf)
		if err == syscall.EINTR {
			continue
		}
		if err == syscall.EAGAIN || err == syscall.EWOULDBLOCK {
			return 0, ErrWouldBlock
		}
		if n < 0 {
			n = 0
		}
		return n, err
	}
}
