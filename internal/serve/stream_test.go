//go:build linux

package serve

// Streaming-path tests: the chunked wire format both faces produce, the
// blocking pump's heartbeat and cancel-on-dead-client behavior, the
// resumable StageStream/StageChunks cycle, and the regression that a
// connection parked mid-stream keeps its staged-but-unflushed bytes
// (ParkIdle) while a recycled conn object truncates them (Reset).

import (
	"bytes"
	"strings"
	"syscall"
	"testing"

	"repro/internal/cml"
)

// scriptStream is a deterministic Streamer: it hands out its frames,
// then stays open for `quiet` additional pulls, then reports closed.
type scriptStream struct {
	frames   [][]byte
	quiet    int
	pulls    int
	canceled bool
}

func (s *scriptStream) Pull() ([]byte, bool, bool) {
	s.pulls++
	if len(s.frames) > 0 {
		f := s.frames[0]
		s.frames = s.frames[1:]
		return f, true, true
	}
	if s.quiet > 0 {
		s.quiet--
		return nil, false, true
	}
	return nil, false, false
}

func (s *scriptStream) Cancel() { s.canceled = true }

func frames(ss ...string) [][]byte {
	var out [][]byte
	for _, s := range ss {
		out = append(out, []byte(s))
	}
	return out
}

func TestStreamResponseChunkedWire(t *testing.T) {
	tc := &throttledConn{}
	c, _ := testConn(tc)
	s := &scriptStream{frames: frames("hello", "world!!")}
	if err := c.StreamResponse(Response{Status: 200, Stream: s}, 0, 100); err != nil {
		t.Fatal(err)
	}
	got := tc.buf.String()
	head, body, ok := strings.Cut(got, "\r\n\r\n")
	if !ok {
		t.Fatalf("no header terminator in %q", got)
	}
	for _, want := range []string{
		"HTTP/1.1 200 OK",
		"Transfer-Encoding: chunked",
		"Connection: close",
	} {
		if !strings.Contains(head, want) {
			t.Errorf("header %q missing %q", head, want)
		}
	}
	if strings.Contains(head, "Content-Length") {
		t.Errorf("streaming header %q must not carry Content-Length", head)
	}
	if want := "5\r\nhello\r\n7\r\nworld!!\r\n0\r\n\r\n"; body != want {
		t.Errorf("body = %q, want %q", body, want)
	}
	if s.canceled {
		t.Error("clean close must not Cancel the source")
	}
}

func TestStreamResponseHeartbeatAfterQuiet(t *testing.T) {
	tc := &throttledConn{}
	c, _ := testConn(tc)
	// One frame, then a long quiet stretch, then close.  Each empty pull
	// parks one tick (testConn's Park advances the clock), so with
	// hbTicks=3 the quiet stretch must produce at least one heartbeat.
	s := &scriptStream{frames: frames("evt"), quiet: 10}
	if err := c.StreamResponse(Response{Status: 200, Stream: s}, 3, 1000); err != nil {
		t.Fatal(err)
	}
	_, body, _ := strings.Cut(tc.buf.String(), "\r\n\r\n")
	if !strings.Contains(body, "1\r\n\n\r\n") {
		t.Errorf("quiet stream body %q carries no heartbeat chunk", body)
	}
	if !strings.HasSuffix(body, "0\r\n\r\n") {
		t.Errorf("body %q does not end with the chunked terminator", body)
	}
}

func TestStreamResponseCancelsOnDeadClient(t *testing.T) {
	tc := &throttledConn{stall: true}
	c, clk := testConn(tc)
	_ = clk
	s := &scriptStream{frames: frames("x")}
	// The stalled socket never accepts the header; the write deadline
	// (flushTicks=5 on the parking clock) must surface an error and the
	// source must learn its consumer is gone.
	if err := c.StreamResponse(Response{Status: 200, Stream: s}, 0, 5); err == nil {
		t.Fatal("stalled client: want error, got nil")
	}
	if !s.canceled {
		t.Error("write failure must Cancel the stream source")
	}
}

// readAllAvailable drains whatever the peer end of a socketpair holds
// right now (the fd is flipped non-blocking so the drain terminates).
func readAllAvailable(t *testing.T, fd int) []byte {
	t.Helper()
	if err := syscall.SetNonblock(fd, true); err != nil {
		t.Fatal(err)
	}
	var out []byte
	buf := make([]byte, 1<<16)
	for {
		n, err := syscall.Read(fd, buf)
		if n > 0 {
			out = append(out, buf[:n]...)
			continue
		}
		if err == nil || err == syscall.EAGAIN {
			return out
		}
		t.Fatal(err)
		return out
	}
}

func TestStageStreamThenChunksWireFormat(t *testing.T) {
	c, peer := resumePair(t)

	prev := []Response{{Status: 200, Body: []byte("pre")}}
	c.StageStream(prev, Response{Status: 200, Stream: nil, ContentType: "text/event-stream"})
	if c.State() != StateWriting {
		t.Fatalf("state = %d, want StateWriting", c.State())
	}
	if done, err := c.PollWrite(); err != nil || !done {
		t.Fatalf("header flush: done=%v err=%v", done, err)
	}
	c.SetState(StateStreaming)

	c.StageChunks(frames("a", "bc"), false)
	if done, err := c.PollWrite(); err != nil || !done {
		t.Fatalf("chunk flush: done=%v err=%v", done, err)
	}
	c.SetState(StateStreaming)
	c.StageChunks(nil, true)
	if done, err := c.PollWrite(); err != nil || !done {
		t.Fatalf("terminator flush: done=%v err=%v", done, err)
	}

	got := string(readAllAvailable(t, peer))
	// The batched response precedes the stream header on the same socket.
	if !strings.Contains(got, "Content-Length: 3\r\n") || !strings.Contains(got, "pre") {
		t.Errorf("prior batched response missing from %q", got)
	}
	if !strings.Contains(got, "Transfer-Encoding: chunked") ||
		!strings.Contains(got, "text/event-stream") {
		t.Errorf("stream header missing from %q", got)
	}
	if !strings.Contains(got, "1\r\na\r\n2\r\nbc\r\n0\r\n\r\n") {
		t.Errorf("chunked body missing from %q", got)
	}
}

// TestParkIdlePreservesUnflushedStreamBytes is the regression for the
// recycle bug: a subscriber parked on EPOLLOUT mid-flush must keep its
// staged bytes and stay in StateWriting — ParkIdle silently dropping
// the partial flush would desynchronize the chunked wire.
func TestParkIdlePreservesUnflushedStreamBytes(t *testing.T) {
	c, peer := resumePair(t)
	c.StageChunks(frames("staged-mid-stream"), false)

	// Nothing flushed yet: the staged bytes are wholly unwritten.
	c.ParkIdle()
	if c.State() != StateWriting {
		t.Fatalf("ParkIdle with unflushed bytes: state = %d, want StateWriting", c.State())
	}
	if done, err := c.PollWrite(); err != nil || !done {
		t.Fatalf("flush after park: done=%v err=%v", done, err)
	}
	if got := string(readAllAvailable(t, peer)); !strings.Contains(got, "staged-mid-stream") {
		t.Errorf("staged frame lost across ParkIdle: wire = %q", got)
	}

	// Once drained, ParkIdle may park for real.
	c.ParkIdle()
	if c.State() != StateIdle {
		t.Fatalf("ParkIdle with empty buffer: state = %d, want StateIdle", c.State())
	}
}

// TestParkIdlePreservesPartialFlush drives a real partial write: the
// socket takes a prefix, the rest stays staged, and ParkIdle must not
// recycle it away.
func TestParkIdlePreservesPartialFlush(t *testing.T) {
	tc := &throttledConn{chunk: 8}
	clk := cml.NewClock()
	c := NewConn(tc, ConnConfig{Clock: clk, Park: func(int64) {}, Pool: NewBufPool(1)})
	// Route staged writes through the fake conn's fd-less path is not
	// possible — PollWrite uses the raw fd — so model the partial flush
	// directly: stage, then mark a prefix consumed.
	c.StageChunks(frames("0123456789abcdef"), false)
	c.woff = 8 // the socket took 8 bytes; the wire saw a chunk prefix

	c.ParkIdle()
	if c.State() != StateWriting {
		t.Fatalf("state = %d, want StateWriting with a partial flush staged", c.State())
	}
	if c.woff != 8 || len(c.wbuf) <= 8 {
		t.Fatalf("staged suffix lost: woff=%d len=%d", c.woff, len(c.wbuf))
	}
	// New frames accumulate behind the backlog, never clobbering it.
	before := string(c.wbuf)
	c.StageChunks(frames("next"), false)
	if !strings.HasPrefix(string(c.wbuf), before) {
		t.Error("StageChunks reset a buffer holding unflushed bytes")
	}
}

// TestResetTruncatesStagedStreamBytes: conn-object recycling must drop
// the previous connection's staged bytes — they must never leak into a
// fresh connection's response stream.
func TestResetTruncatesStagedStreamBytes(t *testing.T) {
	c, _ := resumePair(t)
	c.StageChunks(frames("stale"), false)
	c.woff = 2
	c.Reset(nil, -1)
	if len(c.wbuf) != 0 || c.woff != 0 {
		t.Fatalf("Reset kept staged bytes: len=%d woff=%d", len(c.wbuf), c.woff)
	}
	if c.State() != StateIdle {
		t.Fatalf("state = %d, want StateIdle", c.State())
	}
}

// TestStageChunksAppendsBehindBacklog: with unflushed bytes staged,
// StageChunks must append, and with a drained buffer it must reset to
// the front rather than grow without bound.
func TestStageChunksAppendsBehindBacklog(t *testing.T) {
	c, peer := resumePair(t)
	c.StageChunks(frames("one"), false)
	c.StageChunks(frames("two"), false)
	if done, err := c.PollWrite(); err != nil || !done {
		t.Fatalf("flush: done=%v err=%v", done, err)
	}
	got := string(readAllAvailable(t, peer))
	if want := "3\r\none\r\n3\r\ntwo\r\n"; got != want {
		t.Fatalf("wire = %q, want %q", got, want)
	}
	// Drained: the next stage reuses the buffer from offset zero.
	c.StageChunks(frames("three"), true)
	if c.woff != 0 {
		t.Fatalf("woff = %d after drained restage, want 0", c.woff)
	}
	if !bytes.HasSuffix(c.wbuf, []byte("0\r\n\r\n")) {
		t.Fatalf("final stage %q missing terminator", c.wbuf)
	}
}
