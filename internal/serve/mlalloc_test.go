package serve

// End-to-end tests for the /work/mlalloc allocating kernel: concurrent
// requests share one gcsync world, exhaust its nursery, and collect in
// parallel at clean-point barriers — on the live serving path.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gcsync"
	"repro/internal/mlheap"
)

func mlWorldForTest(procs int) *gcsync.World {
	return gcsync.NewWorld(mlheap.Config{
		NurseryWords: 1 << 14,
		SemiWords:    1 << 18,
		ChunkWords:   512,
		RegionWords:  256,
		Procs:        procs,
	})
}

func TestMLAllocEndToEnd(t *testing.T) {
	world := mlWorldForTest(8)
	ts := startServer(t, 4, Options{MLWorld: world, MLGCAware: true}, nil)

	const clients, reqs = 6, 5
	var wg sync.WaitGroup
	errs := make(chan error, clients*reqs)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < reqs; r++ {
				path := fmt.Sprintf("/work/mlalloc?n=3000&seed=%d", c*100+r)
				st, _, body, err := doReq(ts.addr(), "GET", path, nil, 30*time.Second)
				if err != nil {
					errs <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				if st != 200 {
					errs <- fmt.Errorf("client %d: status %d: %s", c, st, body)
					return
				}
				if !strings.Contains(string(body), "cells=3000") {
					errs <- fmt.Errorf("client %d: unexpected body %q", c, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if world.GCs() == 0 {
		t.Fatal("serving load performed no collections")
	}
	st, _, body, err := doReq(ts.addr(), "GET", "/metrics", nil, 10*time.Second)
	if err != nil || st != 200 {
		t.Fatalf("/metrics: %d %v", st, err)
	}
	for _, name := range []string{"mlheap.gc_pause_ticks", "mlheap.minor_gcs", "gcsync.section_entries"} {
		if !strings.Contains(string(body), name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
	snap := world.Heap().Metrics().Snapshot()
	if snap.Histograms["mlheap.gc_pause_ticks"].Count == 0 {
		t.Error("no pauses recorded in mlheap.gc_pause_ticks")
	}
}

// TestMLAllocSequentialAblation: the -gc-seq configuration must serve
// the same kernel correctly with the paper's one-collector stop.
func TestMLAllocSequentialAblation(t *testing.T) {
	world := mlWorldForTest(8)
	world.SetSequential(true)
	ts := startServer(t, 4, Options{MLWorld: world}, nil)

	for r := 0; r < 6; r++ {
		st, _, body, err := doReq(ts.addr(), "GET", fmt.Sprintf("/work/mlalloc?n=4000&seed=%d", r), nil, 30*time.Second)
		if err != nil || st != 200 {
			t.Fatalf("request %d: status %d err %v body %s", r, st, err, body)
		}
	}
	if world.GCs() == 0 {
		t.Fatal("sequential world performed no collections under load")
	}
}
