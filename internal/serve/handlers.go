package serve

// Built-in handlers: health, echo, a cancellable compute kernel, the
// five evaluation workloads as per-request parallel MP jobs, the
// observability endpoints (/metrics, /trace, /log).

import (
	"bytes"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/threads"
	"repro/internal/workloads"
)

// computeChunk is how many mixing rounds /compute runs between safe
// points (preemption check + deadline check).
const computeChunk = 1 << 14

func (srv *Server) installBuiltins() {
	srv.Handle("/healthz", handleHealth)
	srv.Handle("/echo", handleEcho)
	srv.Handle("/compute", handleCompute)
	srv.Handle("/park", handlePark)
	srv.Handle("/work/", srv.handleWork)
	srv.Handle("/metrics", srv.handleMetrics)
	srv.Handle("/trace", srv.handleTrace)
	srv.Handle("/log", srv.handleLog)
}

func handleHealth(req *Request) Response {
	return Response{Status: 200, Body: []byte("ok\n")}
}

// handleEcho returns the request body (or ?msg=... for GETs).
func handleEcho(req *Request) Response {
	body := req.Body
	if len(body) == 0 {
		body = []byte(req.Query("msg"))
	}
	return Response{Status: 200, Body: body}
}

// parkChunk bounds each cooperative sleep between safe points, so a
// long park stays responsive to deadline expiry and drain.
const parkChunk = 64

// handlePark sleeps ?ticks= on the shard's clock in bounded chunks —
// the I/O-bound workload: a parked request holds an in-flight seat but
// no proc, so a shard's throughput on /park is inflight/parktime
// regardless of its proc allowance.  That makes whole-shard scaling
// directly observable even on a small host: each member brings its own
// in-flight seats.
func handlePark(req *Request) Response {
	ticks := int64(req.QueryInt("ticks", 50))
	if ticks < 0 {
		ticks = 0
	}
	for done := int64(0); done < ticks; {
		step := int64(parkChunk)
		if rest := ticks - done; rest < step {
			step = rest
		}
		req.Park(step)
		done += step
		req.CheckPreempt()
		if req.Expired() {
			return Response{
				Status: 504,
				Body:   fmt.Appendf(nil, "cancelled at safe point after %d/%d ticks\n", done, ticks),
			}
		}
	}
	return Response{Status: 200, Body: fmt.Appendf(nil, "parked %d ticks\n", ticks)}
}

// handleCompute burns ?n=rounds of an integer mixing function, checking
// preemption and the request deadline every computeChunk rounds — the
// safe-point cancellation discipline long handlers follow.
func handleCompute(req *Request) Response {
	n := req.QueryInt("n", 1<<20)
	if n < 0 {
		n = 0
	}
	h := uint64(req.QueryInt("seed", 1)) | 1
	for done := 0; done < n; {
		step := computeChunk
		if rest := n - done; rest < step {
			step = rest
		}
		for i := 0; i < step; i++ {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
		}
		done += step
		req.CheckPreempt()
		if req.Expired() {
			return Response{
				Status: 504,
				Body:   fmt.Appendf(nil, "cancelled at safe point after %d/%d rounds\n", done, n),
			}
		}
	}
	return Response{Status: 200, Body: fmt.Appendf(nil, "%d rounds hash %d\n", n, h)}
}

// workKernel adapts one evaluation workload to query parameters, with
// problem sizes clamped so a single request stays bounded.
type workKernel struct {
	defaultN, maxN int
	run            func(s *threads.System, workers, n int, seed int64) int64
}

var workKernels = map[string]workKernel{
	"allpairs": {48, 128, workloads.Allpairs},
	"mst":      {120, 400, workloads.MST},
	"abisort":  {1 << 10, 1 << 13, workloads.Abisort},
	"simple": {48, 128, func(s *threads.System, workers, n int, seed int64) int64 {
		return workloads.Simple(s, workers, n, 1, seed)
	}},
	"mm": {48, 128, workloads.MM},
}

// handleWork runs one of the paper's evaluation kernels as a parallel MP
// job forked from the request's own thread: /work/<name>?n=&workers=&seed=.
// The kernels barrier internally, so each request briefly becomes a
// phased parallel program sharing procs with the rest of the server.
func (srv *Server) handleWork(req *Request) Response {
	name := req.Path[len("/work/"):]
	k, ok := workKernels[name]
	if !ok {
		return Response{Status: 404, Body: []byte("unknown kernel " + name + "\n")}
	}
	if req.Expired() {
		return Response{Status: 504, Body: []byte("deadline exceeded before kernel start\n")}
	}
	n := req.QueryInt("n", k.defaultN)
	if n < 1 {
		n = 1
	}
	if n > k.maxN {
		n = k.maxN
	}
	if name == "abisort" {
		// The bitonic network needs a power-of-two input size.
		p := 1
		for p*2 <= n {
			p *= 2
		}
		n = p
	}
	workers := req.QueryInt("workers", 2)
	if workers < 1 {
		workers = 1
	}
	if max := srv.pl.MaxProcs(); workers > max {
		workers = max
	}
	seed := int64(req.QueryInt("seed", 1))
	sum := k.run(srv.sys, workers, n, seed)
	return Response{
		Status: 200,
		Body:   fmt.Appendf(nil, "%s n=%d workers=%d checksum %d\n", name, n, workers, sum),
	}
}

// handleMetrics serves the unified metrics spine: the platform registry
// (proc, threads, serve), the process-wide default registry
// (sel/cml/spinlock), and any extra named registries the host wired in
// (the fabric front's, in sharded mode).
func (srv *Server) handleMetrics(req *Request) Response {
	var b bytes.Buffer
	b.WriteString("# platform registry\n")
	b.WriteString(srv.sys.Metrics().Snapshot().Format())
	b.WriteString("# default registry\n")
	b.WriteString(metrics.Default.Snapshot().Format())
	for _, nr := range srv.opts.ExtraMetrics {
		if nr.Reg == nil {
			continue
		}
		b.WriteString("# " + nr.Name + " registry\n")
		b.WriteString(nr.Reg.Snapshot().Format())
	}
	return Response{Status: 200, Body: b.Bytes()}
}

// handleLog serves the access log accumulated through mlio.
func (srv *Server) handleLog(req *Request) Response {
	return Response{Status: 200, Body: srv.AccessLog()}
}

// handleTrace serves a Chrome trace-event JSON snapshot of the tracer's
// rings.  The rings are single-writer and may only be read while
// emitters are quiescent, so this handler stops the serving world first:
//
//  1. it disables the tracer and raises the tracePause barrier, which
//     parks the acceptor at its loop top;
//  2. it waits (parking on the clock) until the acceptor is parked or
//     exited, the dispatcher is idle on the items semaphore or exited,
//     the accept queue is empty, and it is itself the only in-flight
//     request.  Every other emitter has by then either exited through
//     the state lock (workers decrement `active` after their last emit)
//     or parked after taking the state lock, so the lock handoffs order
//     all ring writes before the reads below;
//  3. it renders the JSON, lowers the barrier, and re-enables tracing.
//
// While the barrier is up no new item can enter the queue, so the
// dispatcher cannot wake: the quiescent state is stable for the whole
// read.  Concurrent /trace requests beyond the first are refused with
// 409; under sustained overload the wait is bounded by the in-flight
// requests' own deadlines.
func (srv *Server) handleTrace(req *Request) Response {
	if srv.tracer == nil {
		return Response{Status: 404, Body: []byte("no tracer attached\n")}
	}
	srv.state.Lock()
	if srv.tracePause {
		srv.state.Unlock()
		return Response{Status: 409, Body: []byte("trace snapshot already in progress\n")}
	}
	srv.tracePause = true
	srv.state.Unlock()
	srv.tracer.Disable()
	for {
		if req.Expired() {
			// Give up rather than stall the world past our own deadline.
			srv.endTracePause()
			return Response{Status: 503, Body: []byte("could not quiesce before deadline\n"), RetryAfter: srv.opts.RetryAfter}
		}
		srv.state.Lock()
		quiet := (srv.acceptorIdle || srv.acceptorDone) &&
			(srv.dispatcherIdle || srv.dispatcherDone) &&
			srv.acceptQ.Len() == 0 &&
			srv.active == 1
		srv.state.Unlock()
		if quiet {
			break
		}
		srv.park(1)
	}
	var b bytes.Buffer
	err := srv.tracer.WriteChromeJSON(&b)
	srv.endTracePause()
	if err != nil {
		return Response{Status: 500, Body: []byte(err.Error() + "\n")}
	}
	return Response{Status: 200, ContentType: "application/json", Body: b.Bytes()}
}

func (srv *Server) endTracePause() {
	srv.tracer.Enable()
	srv.state.Lock()
	srv.tracePause = false
	srv.state.Unlock()
}
