package serve

// Keep-alive and connection state machine tests: persistent connections,
// pipelining, idle-budget closes, and the zero-alloc respond path.

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cml"
)

// keepAliveConn is the client side of a persistent connection: it frames
// responses by Content-Length instead of reading to EOF.
type keepAliveConn struct {
	nc  net.Conn
	acc []byte
}

func dialKeepAlive(t *testing.T, addr string) *keepAliveConn {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &keepAliveConn{nc: nc}
}

func (k *keepAliveConn) send(method, path string, body []byte) error {
	_, err := fmt.Fprintf(k.nc, "%s %s HTTP/1.1\r\nHost: t\r\nContent-Length: %d\r\n\r\n",
		method, path, len(body))
	if err == nil && len(body) > 0 {
		_, err = k.nc.Write(body)
	}
	return err
}

// recv reads exactly one framed response off the connection.
func (k *keepAliveConn) recv(timeout time.Duration) (int, map[string]string, []byte, error) {
	deadline := time.Now().Add(timeout)
	buf := make([]byte, 4096)
	for {
		if head, rest, ok := bytes.Cut(k.acc, []byte("\r\n\r\n")); ok {
			lines := strings.Split(string(head), "\r\n")
			parts := strings.SplitN(lines[0], " ", 3)
			if len(parts) < 2 {
				return 0, nil, nil, fmt.Errorf("bad status line %q", lines[0])
			}
			status, err := strconv.Atoi(parts[1])
			if err != nil {
				return 0, nil, nil, err
			}
			hdr := map[string]string{}
			for _, ln := range lines[1:] {
				if kk, v, ok := strings.Cut(ln, ":"); ok {
					hdr[strings.ToLower(strings.TrimSpace(kk))] = strings.TrimSpace(v)
				}
			}
			clen, err := strconv.Atoi(hdr["content-length"])
			if err != nil {
				return 0, nil, nil, fmt.Errorf("missing Content-Length in %q", head)
			}
			for len(rest) < clen {
				k.nc.SetReadDeadline(deadline)
				n, err := k.nc.Read(buf)
				if n > 0 {
					rest = append(rest, buf[:n]...)
				} else if err != nil {
					return 0, nil, nil, err
				}
			}
			k.acc = append([]byte(nil), rest[clen:]...)
			return status, hdr, append([]byte(nil), rest[:clen]...), nil
		}
		k.nc.SetReadDeadline(deadline)
		n, err := k.nc.Read(buf)
		if n > 0 {
			k.acc = append(k.acc, buf[:n]...)
		} else if err != nil {
			return 0, nil, nil, err
		}
	}
}

// TestKeepAliveServesSequentialRequests reuses one connection for many
// requests and checks both the wire semantics (Connection: keep-alive on
// each response) and the serve.keepalive_reqs counter.
func TestKeepAliveServesSequentialRequests(t *testing.T) {
	ts := startServer(t, 4, Options{}, nil)
	kc := dialKeepAlive(t, ts.addr())
	const reqs = 8
	for i := 0; i < reqs; i++ {
		msg := fmt.Sprintf("msg-%d", i)
		if err := kc.send("GET", "/echo?msg="+msg, nil); err != nil {
			t.Fatal(err)
		}
		st, hdr, body, err := kc.recv(5 * time.Second)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if st != 200 || string(body) != msg {
			t.Fatalf("request %d: status %d body %q", i, st, body)
		}
		if hdr["connection"] != "keep-alive" {
			t.Fatalf("request %d: Connection = %q, want keep-alive", i, hdr["connection"])
		}
	}
	snap := ts.sys.Metrics().Snapshot()
	if got := snap.Get("serve.keepalive_reqs"); got < reqs-1 {
		t.Errorf("serve.keepalive_reqs = %d, want >= %d", got, reqs-1)
	}
	// The whole exchange is one connection, hence one accept and at most
	// one in-flight slot ever held for it.
	if got := snap.Get("serve.accepted"); got < 1 {
		t.Errorf("serve.accepted = %d", got)
	}
}

// TestPipelinedRequestsAnsweredInOrder writes several requests back to
// back before reading anything; the residual-buffer state machine must
// answer them all, in order.
func TestPipelinedRequestsAnsweredInOrder(t *testing.T) {
	ts := startServer(t, 4, Options{}, nil)
	kc := dialKeepAlive(t, ts.addr())
	const reqs = 5
	var batch bytes.Buffer
	for i := 0; i < reqs; i++ {
		fmt.Fprintf(&batch, "GET /echo?msg=p%d HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n", i)
	}
	if _, err := kc.nc.Write(batch.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < reqs; i++ {
		st, _, body, err := kc.recv(5 * time.Second)
		if err != nil {
			t.Fatalf("response %d: %v", i, err)
		}
		want := fmt.Sprintf("p%d", i)
		if st != 200 || string(body) != want {
			t.Fatalf("response %d: status %d body %q, want 200 %q", i, st, body, want)
		}
	}
}

// TestConnectionCloseHonored checks both opt-out paths: an explicit
// Connection: close request, and HTTP/1.0's close-by-default.
func TestConnectionCloseHonored(t *testing.T) {
	ts := startServer(t, 2, Options{}, nil)
	st, hdr, _, err := doReq(ts.addr(), "GET", "/healthz", nil, 5*time.Second)
	if err != nil || st != 200 {
		t.Fatalf("status %d err %v", st, err)
	}
	if hdr["connection"] != "close" {
		t.Errorf("Connection = %q, want close for a Connection: close request", hdr["connection"])
	}

	kc := dialKeepAlive(t, ts.addr())
	fmt.Fprintf(kc.nc, "GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n")
	st, hdr, _, err = kc.recv(5 * time.Second)
	if err != nil || st != 200 {
		t.Fatalf("HTTP/1.0: status %d err %v", st, err)
	}
	if hdr["connection"] != "close" {
		t.Errorf("Connection = %q, want close for HTTP/1.0", hdr["connection"])
	}
	// The server must actually close: the next read hits EOF.
	kc.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := kc.nc.Read(make([]byte, 1)); err != io.EOF {
		t.Errorf("read after HTTP/1.0 response: %v, want EOF", err)
	}
}

// TestIdleKeepAliveConnClosedSilently parks a connection past the idle
// budget after one successful request; the server must close it without
// writing anything (no spurious 504 on an idle conn).
func TestIdleKeepAliveConnClosedSilently(t *testing.T) {
	ts := startServer(t, 2, Options{KeepAliveIdleTicks: 40}, nil)
	kc := dialKeepAlive(t, ts.addr())
	if err := kc.send("GET", "/healthz", nil); err != nil {
		t.Fatal(err)
	}
	if st, _, _, err := kc.recv(5 * time.Second); err != nil || st != 200 {
		t.Fatalf("status %d err %v", st, err)
	}
	kc.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, err := kc.nc.Read(make([]byte, 64))
	if n != 0 || err != io.EOF {
		t.Errorf("idle conn: read %d bytes err %v, want 0 and EOF", n, err)
	}
}

// TestReadBufferedDrainsResidualPipelined feeds a Conn's residual buffer
// two complete pipelined requests plus a partial third: ReadBuffered must
// parse the complete ones in order — bodies copied out, deadlines set
// from the budget — without touching the socket, then report false and
// leave the partial head buffered for the next blocking ReadRequest.
func TestReadBufferedDrainsResidualPipelined(t *testing.T) {
	c := &Conn{cfg: ConnConfig{Clock: cml.NewClock()}}
	c.acc = []byte("POST /a HTTP/1.1\r\nHost: t\r\nContent-Length: 3\r\n\r\nabc" +
		"GET /b?x=1 HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n" +
		"GET /c HTTP/1.1\r\nHo")
	req, ok, err := c.ReadBuffered(50)
	if err != nil || !ok || req.Method != "POST" || req.Path != "/a" || string(req.Body) != "abc" {
		t.Fatalf("first buffered request: ok=%v err=%v %+v", ok, err, req)
	}
	if req.Deadline != req.Arrival+50 {
		t.Errorf("deadline = %d, want arrival %d + budget 50", req.Deadline, req.Arrival)
	}
	req, ok, err = c.ReadBuffered(50)
	if err != nil || !ok || req.Method != "GET" || req.Path != "/b" || req.Query("x") != "1" {
		t.Fatalf("second buffered request: ok=%v err=%v %+v", ok, err, req)
	}
	if req, ok, err := c.ReadBuffered(50); ok || err != nil {
		t.Fatalf("incomplete head: ok=%v err=%v %+v", ok, err, req)
	}
	if !c.Partial() {
		t.Error("partial third head was consumed; it must wait for the socket")
	}
}

// TestReadBufferedSurfacesPoisonedPipeline: a complete but unparseable
// (or oversized) head mid-pipeline can never become a valid request, so
// ReadBuffered must surface the error immediately — the caller answers
// 400/413 and closes — instead of stepping aside and letting the same
// garbage be re-parsed forever.
func TestReadBufferedSurfacesPoisonedPipeline(t *testing.T) {
	c := &Conn{cfg: ConnConfig{Clock: cml.NewClock()}}
	c.acc = []byte("NONSENSE\r\n\r\n")
	if req, ok, err := c.ReadBuffered(50); err != ErrBadRequest {
		t.Fatalf("malformed head: ok=%v err=%v %+v, want ErrBadRequest", ok, err, req)
	}
	c = &Conn{cfg: ConnConfig{Clock: cml.NewClock()}}
	c.acc = []byte("POST /a HTTP/1.1\r\nHost: t\r\nContent-Length: 99999999\r\n\r\n")
	if req, ok, err := c.ReadBuffered(50); err != ErrTooLarge {
		t.Fatalf("oversized body: ok=%v err=%v %+v, want ErrTooLarge", ok, err, req)
	}
}

// TestRespondPathSteadyStateAllocs measures the pooled render path: after
// warm-up, rendering an echo-sized response into a pooled buffer must not
// allocate.
func TestRespondPathSteadyStateAllocs(t *testing.T) {
	pool := NewBufPool(4)
	resp := Response{Status: 200, Body: []byte("hello, allocation-free world\n")}
	render := func() {
		rb := pool.get(1)
		renderResponse(rb, resp, true)
		pool.put(1, rb)
	}
	render() // warm the shard's cached buffer past the needed capacity
	if n := testing.AllocsPerRun(200, render); n != 0 {
		t.Errorf("steady-state respond path allocates %.1f times per response, want 0", n)
	}
}

// TestBufPoolPerProcReuse checks the swap discipline: a buffer put back
// on a shard is handed out again by the next get on that shard.
func TestBufPoolPerProcReuse(t *testing.T) {
	pool := NewBufPool(2)
	a := pool.get(0)
	pool.put(0, a)
	if b := pool.get(0); b != a {
		t.Error("pool did not reuse the shard's cached buffer")
	}
	// Nil pools are valid and simply allocate.
	var nilPool *BufPool
	if rb := nilPool.get(0); rb == nil {
		t.Error("nil pool returned nil buffer")
	}
	nilPool.put(0, &respBuf{})
}
