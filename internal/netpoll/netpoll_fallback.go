//go:build !linux

package netpoll

// Portable fallback: a degenerate level-triggered poller that reports
// every registered descriptor as ready on each Wait.  This is a legal —
// if maximally pessimistic — implementation of the level-triggered
// contract: owners read until EWOULDBLOCK and re-park, so a spurious
// "ready" costs one syscall that returns EAGAIN, never a correctness
// failure.  It exists so the tree builds and the state-machine tests
// run on non-Linux hosts; production deployments are Linux and use the
// epoll backend.  No kernel poll syscall is used because the portable
// ones (poll, select, kqueue) differ across the non-Linux platforms the
// fallback must cover.

import "time"

// Poller tracks the registered descriptor set.  Single-owner, like the
// Linux backend; see the package comment.
type Poller struct {
	fds    []int
	writes []bool
}

// New creates an empty poller.
func New() (*Poller, error) {
	return &Poller{}, nil
}

// Add registers fd.
func (p *Poller) Add(fd int, write bool) error {
	p.fds = append(p.fds, fd)
	p.writes = append(p.writes, write)
	return nil
}

// Modify switches fd's write interest.
func (p *Poller) Modify(fd int, write bool) error {
	for i, f := range p.fds {
		if f == fd {
			p.writes[i] = write
		}
	}
	return nil
}

// Remove deregisters fd.
func (p *Poller) Remove(fd int) error {
	for i, f := range p.fds {
		if f == fd {
			p.fds = append(p.fds[:i], p.fds[i+1:]...)
			p.writes = append(p.writes[:i], p.writes[i+1:]...)
			return nil
		}
	}
	return nil
}

// Wait reports every registered descriptor ready.  When nothing is
// registered it sleeps out the timeout so an idle poller does not
// busy-spin; with registrations it returns immediately — the owners'
// EWOULDBLOCK reads are the backpressure.
func (p *Poller) Wait(evs []Event, timeoutMS int) (int, error) {
	if len(p.fds) == 0 {
		if timeoutMS > 0 {
			time.Sleep(time.Duration(timeoutMS) * time.Millisecond)
		} else if timeoutMS < 0 {
			// Blocking wait with nothing registered would hang forever;
			// nap a tick instead and let the caller loop.
			time.Sleep(time.Millisecond)
		}
		return 0, nil
	}
	n := len(p.fds)
	if n > len(evs) {
		n = len(evs)
	}
	for i := 0; i < n; i++ {
		evs[i] = Event{FD: p.fds[i], Readable: true, Writable: p.writes[i]}
	}
	return n, nil
}

// Close releases the poller.
func (p *Poller) Close() error {
	p.fds, p.writes = nil, nil
	return nil
}
