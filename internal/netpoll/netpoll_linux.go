//go:build linux

package netpoll

// Linux backend: one epoll instance per Poller, level-triggered, raw
// syscalls only.  Level-triggered is the deliberate choice over
// edge-triggered: a spurious or repeated notification is harmless (the
// owner reads until EWOULDBLOCK and re-parks), whereas a lost edge would
// strand a connection forever.  The kernel's 8-byte epoll user data
// carries just the fd; the poller thread owns the fd→connection table,
// so no pointers cross the syscall boundary.

import "syscall"

// Poller is a single-owner epoll instance.  See the package comment for
// the ownership rules.
type Poller struct {
	epfd int
	evs  []syscall.EpollEvent // scratch for Wait, sized to the caller's batch
}

// New creates the epoll instance.  EPOLL_CLOEXEC keeps the fd out of any
// child the host process might exec.
func New() (*Poller, error) {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil, err
	}
	return &Poller{epfd: epfd}, nil
}

// events builds the epoll interest mask.  EPOLLRDHUP distinguishes a
// half-closed peer from plain readability so idle sweeps can reap dead
// keep-alive connections without a read syscall per sweep.
func events(write bool) uint32 {
	ev := uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP)
	if write {
		ev |= syscall.EPOLLOUT
	}
	return ev
}

// Add registers fd; write additionally asks for writability (a
// connection parked mid-write).  The fd must be non-blocking — the
// poller's owner reads it raw and relies on EWOULDBLOCK to re-park.
func (p *Poller) Add(fd int, write bool) error {
	ev := syscall.EpollEvent{Events: events(write), Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_ADD, fd, &ev)
}

// Modify switches fd's interest set between read-only and read+write.
func (p *Poller) Modify(fd int, write bool) error {
	ev := syscall.EpollEvent{Events: events(write), Fd: int32(fd)}
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, fd, &ev)
}

// Remove deregisters fd.  Callers must Remove before closing the fd:
// close drops the epoll registration implicitly, but only once every
// duplicate of the descriptor is gone, and relying on that invites
// stale events for a recycled fd number.
func (p *Poller) Remove(fd int) error {
	return syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, fd, nil)
}

// Wait fills evs with ready descriptors and returns the count.
// timeoutMS < 0 blocks; 0 polls; positive values are a cap in
// milliseconds.  EINTR reports as 0 events so the caller's loop
// re-evaluates its own deadline logic rather than resuming a blind
// block.
func (p *Poller) Wait(evs []Event, timeoutMS int) (int, error) {
	if len(evs) == 0 {
		return 0, nil
	}
	if len(p.evs) < len(evs) {
		p.evs = make([]syscall.EpollEvent, len(evs))
	}
	n, err := syscall.EpollWait(p.epfd, p.evs[:len(evs)], timeoutMS)
	if err != nil {
		if err == syscall.EINTR {
			return 0, nil
		}
		return 0, err
	}
	for i := 0; i < n; i++ {
		raw := &p.evs[i]
		closed := raw.Events&(syscall.EPOLLHUP|syscall.EPOLLRDHUP|syscall.EPOLLERR) != 0
		evs[i] = Event{
			FD: int(raw.Fd),
			// A closed peer is surfaced as readable too: the owner's
			// read observes EOF/ECONNRESET and runs its error path.
			Readable: raw.Events&syscall.EPOLLIN != 0 || closed,
			Writable: raw.Events&syscall.EPOLLOUT != 0,
			Closed:   closed,
		}
	}
	return n, nil
}

// Close releases the epoll instance.
func (p *Poller) Close() error {
	return syscall.Close(p.epfd)
}
