// Package netpoll is a minimal level-triggered readiness notifier for
// the event-multiplexed serving front: register socket file descriptors,
// then ask which are readable or writable.  On Linux it is a thin layer
// over raw epoll syscalls (netpoll_linux.go); elsewhere a portable
// degenerate poll stands in (netpoll_fallback.go) that reports every
// registered descriptor ready each wait — allowed by the level-triggered
// contract, since callers must read until EWOULDBLOCK anyway.
//
// The package follows the serving stack's purity rule: no goroutines, no
// channels, no select, and no net/http or sync — nothing but raw
// syscalls and plain data (the go/scanner test in purity_test.go
// enforces it).  Go's own runtime netpoller is deliberately not involved:
// the descriptors watched here are read and written with raw
// syscall.Read/Write by the poller MP threads, so readiness, scheduling,
// and I/O all stay inside the MP world.
//
// A Poller is intentionally single-owner: one poller MP thread creates
// it, registers and removes descriptors, and waits on it.  Nothing is
// locked, because nothing is shared — the front gives every poller
// thread its own Poller and partitions connections across them, which
// also sidesteps the thundering-herd ambiguity of multiple waiters on
// one epoll instance.
package netpoll

// Event is one readiness notification.  Closed reports a peer hangup or
// socket error; it is delivered with Readable set so the owner performs
// the read that observes EOF/ECONNRESET and runs its normal error path.
type Event struct {
	FD       int
	Readable bool
	Writable bool
	Closed   bool
}
