//go:build linux

package netpoll

// Behavioral checks for the epoll backend against a socketpair: data
// waiting means readable, a drained socket means silent, a closed peer
// reports Closed (and Readable, so the owner's read sees EOF), and
// write interest toggles with Modify.  The fallback backend's contract
// ("everything is ready") needs no test beyond compiling.

import (
	"syscall"
	"testing"
)

func pair(t *testing.T) (int, int) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_STREAM|syscall.SOCK_NONBLOCK|syscall.SOCK_CLOEXEC, 0)
	if err != nil {
		t.Fatal(err)
	}
	return fds[0], fds[1]
}

func waitOne(t *testing.T, p *Poller, timeoutMS int) (Event, bool) {
	t.Helper()
	evs := make([]Event, 8)
	n, err := p.Wait(evs, timeoutMS)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		return Event{}, false
	}
	return evs[0], true
}

func TestReadReadiness(t *testing.T) {
	a, b := pair(t)
	defer syscall.Close(a)
	defer syscall.Close(b)
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Add(a, false); err != nil {
		t.Fatal(err)
	}

	if ev, ok := waitOne(t, p, 0); ok {
		t.Fatalf("idle socket reported ready: %+v", ev)
	}

	if _, err := syscall.Write(b, []byte("x")); err != nil {
		t.Fatal(err)
	}
	ev, ok := waitOne(t, p, 1000)
	if !ok {
		t.Fatal("no event for pending data")
	}
	if ev.FD != a || !ev.Readable || ev.Closed {
		t.Fatalf("want readable fd %d, got %+v", a, ev)
	}

	// Level-triggered: still ready until drained.
	if _, ok := waitOne(t, p, 0); !ok {
		t.Fatal("level-triggered poller went silent with data pending")
	}
	buf := make([]byte, 16)
	if _, err := syscall.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if ev, ok := waitOne(t, p, 0); ok {
		t.Fatalf("drained socket reported ready: %+v", ev)
	}
}

func TestPeerCloseReportsClosed(t *testing.T) {
	a, b := pair(t)
	defer syscall.Close(a)
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Add(a, false); err != nil {
		t.Fatal(err)
	}
	syscall.Close(b)
	ev, ok := waitOne(t, p, 1000)
	if !ok {
		t.Fatal("no event for closed peer")
	}
	if !ev.Closed || !ev.Readable {
		t.Fatalf("want Closed+Readable, got %+v", ev)
	}
}

func TestWriteInterestToggles(t *testing.T) {
	a, b := pair(t)
	defer syscall.Close(a)
	defer syscall.Close(b)
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Add(a, false); err != nil {
		t.Fatal(err)
	}
	if ev, ok := waitOne(t, p, 0); ok {
		t.Fatalf("read-only interest reported ready: %+v", ev)
	}
	if err := p.Modify(a, true); err != nil {
		t.Fatal(err)
	}
	ev, ok := waitOne(t, p, 1000)
	if !ok {
		t.Fatal("no writable event on an empty send buffer")
	}
	if !ev.Writable {
		t.Fatalf("want writable, got %+v", ev)
	}
	if err := p.Modify(a, false); err != nil {
		t.Fatal(err)
	}
	if ev, ok := waitOne(t, p, 0); ok {
		t.Fatalf("after dropping write interest, got %+v", ev)
	}
}

func TestRemoveStopsEvents(t *testing.T) {
	a, b := pair(t)
	defer syscall.Close(a)
	defer syscall.Close(b)
	p, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Add(a, false); err != nil {
		t.Fatal(err)
	}
	if _, err := syscall.Write(b, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.Remove(a); err != nil {
		t.Fatal(err)
	}
	if ev, ok := waitOne(t, p, 0); ok {
		t.Fatalf("removed fd still reports events: %+v", ev)
	}
}
