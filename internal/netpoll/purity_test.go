package netpoll

// The purity rule extends to the poller: readiness notification is part
// of the MP front's hot path, so it is built on raw syscalls and plain
// data — no goroutines, channels, or select, and no imports that would
// smuggle them in.  Same scanner as internal/serve's and
// internal/shard's.

import (
	"go/parser"
	"go/scanner"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func netpollSources(t *testing.T) []string {
	t.Helper()
	ents, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		t.Fatal("no sources found")
	}
	return files
}

func TestNetpollUsesOnlyMPPrimitives(t *testing.T) {
	forbidden := map[token.Token]string{
		token.GO:     "go statement",
		token.CHAN:   "chan type",
		token.ARROW:  "channel send/receive",
		token.SELECT: "select statement",
	}
	for _, file := range netpollSources(t) {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		fset := token.NewFileSet()
		var s scanner.Scanner
		s.Init(fset.AddFile(file, fset.Base(), len(src)), src, nil, 0)
		for {
			pos, tok, _ := s.Scan()
			if tok == token.EOF {
				break
			}
			if why, bad := forbidden[tok]; bad {
				t.Errorf("%s: %s — netpoll must use raw syscalls only", fset.Position(pos), why)
			}
		}
	}
}

// TestPurityScanCoversNetpollFiles pins the scan's coverage: the shared
// surface and the platform backends must all be present in the directory
// the scanner iterates, so a rename cannot silently drop one from the
// purity rule.  Build tags keep only one backend in any given build, but
// both files sit in the directory and both get scanned.
func TestPurityScanCoversNetpollFiles(t *testing.T) {
	required := []string{"netpoll.go", "netpoll_linux.go", "netpoll_fallback.go"}
	have := map[string]bool{}
	for _, f := range netpollSources(t) {
		have[f] = true
	}
	for _, want := range required {
		if !have[want] {
			t.Errorf("purity scan does not cover %s — file missing or renamed", want)
		}
	}
}

func TestNetpollForbiddenImports(t *testing.T) {
	banned := map[string]string{
		"net/http": "spawns goroutines per connection, bypassing the MP scheduler",
		"sync":     "raw Go synchronization; a Poller is single-owner by contract",
		"net":      "netpoll works on raw fds; the net package's runtime poller must stay out",
		"os":       "os.File wraps fds back into the runtime poller",
	}
	for _, file := range netpollSources(t) {
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, file, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, bad := banned[path]; bad {
				t.Errorf("%s imports %s: %s", filepath.Base(file), path, why)
			}
		}
	}
}
