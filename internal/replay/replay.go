// Package replay provides deterministic record/replay of thread
// schedules, the foundation of the concurrent-debugging work the paper
// reports being built on MP (Tolmach & Appel, "Debuggable concurrency
// extensions for Standard ML").  Their debugger reproduced concurrent
// executions by logging scheduling decisions and replaying them under a
// deterministic uniprocessor scheduler; this package does the same thing
// using nothing but the thread functor's queue parameter:
//
//   - Record wraps any queue discipline (including the randomized one)
//     and logs the thread id of every dispatch;
//   - Replay is a queue discipline that serves ready threads in exactly
//     the order of a previous run's log.
//
// Because scheduling policy is just the functor's queue argument (the
// paper's central design point), the debugger needs no hooks inside the
// scheduler at all.  Replay requires a single proc, as the original
// debugger did: on one processor the dispatch order fully determines the
// interleaving.
package replay

import (
	"fmt"

	"repro/internal/queue"
	"repro/internal/threads"
)

// Log is a recorded schedule: thread ids in dispatch order.  After a
// replay, Divergence is non-empty if the replayed program stopped
// matching the recording (the replayer degrades to FIFO from that point,
// so the run still completes and the debugger can report the mismatch).
type Log struct {
	Order      []int
	Divergence string
}

// recordingQueue wraps an inner discipline and logs every Deq.
type recordingQueue struct {
	inner queue.Queue[threads.Entry]
	log   *Log
}

func (q *recordingQueue) Enq(e threads.Entry) { q.inner.Enq(e) }

func (q *recordingQueue) Deq() (threads.Entry, error) {
	e, err := q.inner.Deq()
	if err == nil {
		q.log.Order = append(q.log.Order, e.ID)
	}
	return e, err
}

func (q *recordingQueue) Len() int { return q.inner.Len() }

// Record returns a log and a queue factory that journals the dispatch
// order of the wrapped discipline (FIFO if inner is nil).  Use the
// factory as the thread functor's queue argument on a 1-proc platform.
func Record(inner queue.Factory[threads.Entry]) (*Log, queue.Factory[threads.Entry]) {
	if inner == nil {
		inner = queue.NewFifo[threads.Entry]
	}
	log := &Log{}
	return log, func() queue.Queue[threads.Entry] {
		return &recordingQueue{inner: inner(), log: log}
	}
}

// replayQueue serves pending entries in the order of a recorded log.
type replayQueue struct {
	pending []threads.Entry
	log     *Log
	pos     int
}

func (q *replayQueue) Enq(e threads.Entry) { q.pending = append(q.pending, e) }

func (q *replayQueue) Deq() (threads.Entry, error) {
	if len(q.pending) == 0 {
		return threads.Entry{}, queue.ErrEmpty
	}
	if q.log.Divergence == "" {
		if q.pos >= len(q.log.Order) {
			q.log.Divergence = fmt.Sprintf(
				"schedule exhausted after %d dispatches but %d thread(s) still ready",
				q.pos, len(q.pending))
		} else {
			want := q.log.Order[q.pos]
			for i, e := range q.pending {
				if e.ID == want {
					q.pos++
					q.pending = append(q.pending[:i], q.pending[i+1:]...)
					return e, nil
				}
			}
			q.log.Divergence = fmt.Sprintf(
				"dispatch %d expects thread %d, but only %v are ready",
				q.pos, want, readyIDs(q.pending))
		}
	}
	// Diverged: degrade to FIFO so the run completes.
	e := q.pending[0]
	q.pending = q.pending[1:]
	return e, nil
}

func readyIDs(es []threads.Entry) []int {
	ids := make([]int, len(es))
	for i, e := range es {
		ids[i] = e.ID
	}
	return ids
}

func (q *replayQueue) Len() int { return len(q.pending) }

// Replay returns a queue factory that reproduces the dispatch order in
// log.  The replayed program must create the same threads and block in
// the same places as the recorded run (true for deterministic program
// logic, since on one proc the schedule fully determines execution); a
// divergence panics with a diagnostic.
func Replay(log *Log) queue.Factory[threads.Entry] {
	return func() queue.Queue[threads.Entry] {
		return &replayQueue{log: log}
	}
}
