package replay

import (
	"testing"

	"repro/internal/proc"
	"repro/internal/queue"
	"repro/internal/threads"
)

// chaoticProgram forks several threads that interleave appends to a
// trace; the resulting trace depends entirely on the schedule.
func chaoticProgram(s *threads.System, trace *[]int) func() {
	return func() {
		for i := 0; i < 5; i++ {
			i := i
			s.Fork(func() {
				for j := 0; j < 4; j++ {
					*trace = append(*trace, i*10+j)
					s.Yield()
				}
			})
		}
	}
}

func runWith(mk queue.Factory[threads.Entry]) []int {
	s := threads.New(proc.New(1), threads.Options{NewQueue: mk})
	var trace []int
	s.Run(chaoticProgram(s, &trace))
	return trace
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRecordThenReplayReproducesRandomSchedule(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		// Record under a randomized discipline.
		log, recFactory := Record(func() queue.Queue[threads.Entry] {
			return queue.NewRandomSeeded[threads.Entry](seed)
		})
		recorded := runWith(recFactory)
		if len(log.Order) == 0 {
			t.Fatal("nothing recorded")
		}
		// Replay must reproduce the exact interleaving.
		replayed := runWith(Replay(log))
		if !equal(recorded, replayed) {
			t.Fatalf("seed %d: replay diverged:\nrecorded %v\nreplayed %v",
				seed, recorded, replayed)
		}
	}
}

func TestDifferentSeedsGiveDifferentSchedules(t *testing.T) {
	_, f1 := Record(func() queue.Queue[threads.Entry] {
		return queue.NewRandomSeeded[threads.Entry](1)
	})
	_, f2 := Record(func() queue.Queue[threads.Entry] {
		return queue.NewRandomSeeded[threads.Entry](2)
	})
	a := runWith(f1)
	b := runWith(f2)
	if equal(a, b) {
		t.Skip("two seeds coincidentally produced identical schedules")
	}
}

func TestRecordDefaultsToFIFO(t *testing.T) {
	log, rec := Record(nil)
	a := runWith(rec)
	b := runWith(Replay(log))
	if !equal(a, b) {
		t.Fatal("FIFO record/replay diverged")
	}
}

func TestReplayIsDeterministicItself(t *testing.T) {
	log, rec := Record(func() queue.Queue[threads.Entry] {
		return queue.NewRandomSeeded[threads.Entry](7)
	})
	runWith(rec)
	a := runWith(Replay(log))
	b := runWith(Replay(log))
	if !equal(a, b) {
		t.Fatal("two replays of one log differ")
	}
}

func TestDivergenceDetectedAndRunCompletes(t *testing.T) {
	// Record one program, replay a different one: the replayer must
	// flag the divergence (and degrade to FIFO) rather than silently
	// misschedule or wedge.
	log, rec := Record(nil)
	runWith(rec)

	s := threads.New(proc.New(1), threads.Options{NewQueue: Replay(log)})
	var trace []int
	ran := false
	s.Run(func() {
		// Twice as many threads as the recording.
		for k := 0; k < 2; k++ {
			chaoticProgram(s, &trace)()
		}
		ran = true
	})
	if !ran {
		t.Fatal("divergent replay did not complete")
	}
	if log.Divergence == "" {
		t.Fatal("divergence not detected")
	}
	if len(trace) != 2*5*4 {
		t.Fatalf("divergent run incomplete: %d of 40 events", len(trace))
	}
}

func TestFaithfulReplayHasNoDivergence(t *testing.T) {
	log, rec := Record(nil)
	runWith(rec)
	runWith(Replay(log))
	if log.Divergence != "" {
		t.Fatalf("faithful replay flagged divergence: %s", log.Divergence)
	}
}
