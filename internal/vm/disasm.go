package vm

import (
	"fmt"
	"strings"
)

// opNames maps opcodes to their assembly mnemonics.
var opNames = map[Op]string{
	OpNop:         "nop",
	OpLoadInt:     "loadi",
	OpMove:        "move",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpLess:        "less",
	OpEq:          "eq",
	OpJump:        "jump",
	OpBranchIf:    "brnz",
	OpRecord:      "record",
	OpSelect:      "select",
	OpUpdate:      "update",
	OpCapture:     "callcc",
	OpThrow:       "throw",
	OpGetDatum:    "getdatum",
	OpSetDatum:    "setdatum",
	OpTryLock:     "trylock",
	OpUnlock:      "unlock",
	OpAcquireProc: "acquire",
	OpHalt:        "halt",
}

// String returns the opcode's mnemonic.
func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// String renders one instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpNop:
		return "nop"
	case OpLoadInt:
		return fmt.Sprintf("loadi   r%d, %d", in.A, in.Imm)
	case OpMove:
		return fmt.Sprintf("move    r%d, r%d", in.A, in.B)
	case OpAdd, OpSub, OpMul, OpLess, OpEq:
		return fmt.Sprintf("%-7s r%d, r%d, r%d", in.Op, in.A, in.B, in.C)
	case OpJump:
		return fmt.Sprintf("jump    @%d", in.Imm)
	case OpBranchIf:
		return fmt.Sprintf("brnz    r%d, @%d", in.A, in.Imm)
	case OpRecord:
		return fmt.Sprintf("record  r%d, r%d..r%d", in.A, in.B, in.B+in.C-1)
	case OpSelect:
		return fmt.Sprintf("select  r%d, r%d[%d]", in.A, in.B, in.Imm)
	case OpUpdate:
		return fmt.Sprintf("update  r%d[%d], r%d", in.A, in.Imm, in.B)
	case OpCapture:
		return fmt.Sprintf("callcc  r%d, @%d", in.A, in.Imm)
	case OpThrow:
		return fmt.Sprintf("throw   r%d, r%d", in.A, in.B)
	case OpGetDatum:
		return fmt.Sprintf("getdatum r%d", in.A)
	case OpSetDatum:
		return fmt.Sprintf("setdatum r%d", in.A)
	case OpTryLock:
		return fmt.Sprintf("trylock r%d, [r%d]", in.A, in.B)
	case OpUnlock:
		return fmt.Sprintf("unlock  [r%d]", in.A)
	case OpAcquireProc:
		return fmt.Sprintf("acquire r%d, r%d", in.A, in.B)
	case OpHalt:
		return fmt.Sprintf("halt    r%d", in.A)
	default:
		return fmt.Sprintf("%s a=%d b=%d c=%d imm=%d", in.Op, in.A, in.B, in.C, in.Imm)
	}
}

// Disassemble renders the whole program with addresses, marking jump
// targets.
func (p *Program) Disassemble() string {
	targets := map[int64]bool{}
	for _, in := range p.Code {
		switch in.Op {
		case OpJump, OpBranchIf, OpCapture:
			targets[in.Imm] = true
		}
	}
	var b strings.Builder
	for i, in := range p.Code {
		mark := "  "
		if targets[int64(i)] {
			mark = "L:"
		}
		fmt.Fprintf(&b, "%s %4d  %s\n", mark, i, in)
	}
	return b.String()
}
