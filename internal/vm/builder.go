package vm

import "fmt"

// Builder assembles generic-machine programs with symbolic labels; it
// plays the role of the SML/NJ code generator, which "generates generic
// machine code, which is then translated into machine-specific
// instruction sequences" (§5).
type Builder struct {
	code   []Instr
	labels map[string]int
	fixups []fixup
}

type fixup struct {
	idx   int
	label string
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Label defines a jump target at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("vm: duplicate label %q", name))
	}
	b.labels[name] = len(b.code)
	return b
}

func (b *Builder) emit(i Instr) *Builder {
	b.code = append(b.code, i)
	return b
}

func (b *Builder) emitLabeled(i Instr, label string) *Builder {
	b.fixups = append(b.fixups, fixup{len(b.code), label})
	return b.emit(i)
}

// LoadInt sets register d to an immediate integer.
func (b *Builder) LoadInt(d int, v int64) *Builder {
	return b.emit(Instr{Op: OpLoadInt, A: d, Imm: v})
}

// Move copies register s to register d.
func (b *Builder) Move(d, s int) *Builder { return b.emit(Instr{Op: OpMove, A: d, B: s}) }

// Add sets d = x + y.
func (b *Builder) Add(d, x, y int) *Builder { return b.emit(Instr{Op: OpAdd, A: d, B: x, C: y}) }

// Sub sets d = x - y.
func (b *Builder) Sub(d, x, y int) *Builder { return b.emit(Instr{Op: OpSub, A: d, B: x, C: y}) }

// Mul sets d = x * y.
func (b *Builder) Mul(d, x, y int) *Builder { return b.emit(Instr{Op: OpMul, A: d, B: x, C: y}) }

// Less sets d = 1 if x < y else 0.
func (b *Builder) Less(d, x, y int) *Builder { return b.emit(Instr{Op: OpLess, A: d, B: x, C: y}) }

// Eq sets d = 1 if x == y else 0.
func (b *Builder) Eq(d, x, y int) *Builder { return b.emit(Instr{Op: OpEq, A: d, B: x, C: y}) }

// Jump transfers control to label.
func (b *Builder) Jump(label string) *Builder {
	return b.emitLabeled(Instr{Op: OpJump}, label)
}

// BranchIf jumps to label when register r holds a nonzero integer.
func (b *Builder) BranchIf(r int, label string) *Builder {
	return b.emitLabeled(Instr{Op: OpBranchIf, A: r}, label)
}

// Record sets d to a fresh record of registers base..base+n-1.
func (b *Builder) Record(d, base, n int) *Builder {
	return b.emit(Instr{Op: OpRecord, A: d, B: base, C: n})
}

// Select sets d to field of record s.
func (b *Builder) Select(d, s, field int) *Builder {
	return b.emit(Instr{Op: OpSelect, A: d, B: s, Imm: int64(field)})
}

// Update stores register src into field of record rec.
func (b *Builder) Update(rec, field, src int) *Builder {
	return b.emit(Instr{Op: OpUpdate, A: rec, B: src, Imm: int64(field)})
}

// Capture sets d to a continuation; throwing it resumes at label with
// the thrown value in d (callcc).
func (b *Builder) Capture(d int, label string) *Builder {
	return b.emitLabeled(Instr{Op: OpCapture, A: d}, label)
}

// Throw invokes continuation k with value v; control never falls through.
func (b *Builder) Throw(k, v int) *Builder { return b.emit(Instr{Op: OpThrow, A: k, B: v}) }

// GetDatum reads the dedicated proc-datum register into d.
func (b *Builder) GetDatum(d int) *Builder { return b.emit(Instr{Op: OpGetDatum, A: d}) }

// SetDatum writes register s to the proc-datum register.
func (b *Builder) SetDatum(s int) *Builder { return b.emit(Instr{Op: OpSetDatum, A: s}) }

// TryLock sets d = 1 if lock-vector slot (register slotReg) was acquired.
func (b *Builder) TryLock(d, slotReg int) *Builder {
	return b.emit(Instr{Op: OpTryLock, A: d, B: slotReg})
}

// Unlock releases lock-vector slot (register slotReg).
func (b *Builder) Unlock(slotReg int) *Builder {
	return b.emit(Instr{Op: OpUnlock, A: slotReg})
}

// Halt stops execution with register r as the proc's result.
func (b *Builder) Halt(r int) *Builder { return b.emit(Instr{Op: OpHalt, A: r}) }

// Build resolves labels and returns the program.
func (b *Builder) Build() (*Program, error) {
	code := append([]Instr(nil), b.code...)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("vm: undefined label %q", f.label)
		}
		code[f.idx].Imm = int64(target)
	}
	return &Program{Code: code}, nil
}

// MustBuild is Build, panicking on error; for tests and examples.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// AcquireProc sets d = 1 if continuation k now runs on a newly acquired
// proc (acquire_proc), 0 on No_More_Procs.
func (b *Builder) AcquireProc(d, k int) *Builder {
	return b.emit(Instr{Op: OpAcquireProc, A: d, B: k})
}
