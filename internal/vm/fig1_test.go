package vm

import (
	"fmt"
	"testing"
)

// TestFigure1ThreadPackageAsVMCode runs the paper's Figure 1 — the
// uniprocessor thread package built from callcc and a ready queue — as
// generic-machine code on the VM, the layer where SML/NJ actually
// executed it.  A parent thread forks a child; both interleave via
// yield; the ready queue holds first-class heap-allocated continuations.
//
// Figure 1 keeps current_id and next_id in ref cells, and the VM shows
// why that is forced: throwing a continuation restores every register,
// so only heap state can carry information across a dispatch.  The ids
// here live in an id box ([current, next]) and the observable is an
// accumulator box: each thread appends id*10+step as two decimal digits.
// Figure 1 semantics (fork queues the parent and runs the child, FIFO
// ready queue) force the interleaving
//
//	child step 0 (10), parent step 0 (00), child step 1 (11),
//	parent step 1 (01)  =>  acc = 10001101
func TestFigure1ThreadPackageAsVMCode(t *testing.T) {
	const (
		rQ   = 0 // ready queue record: [slot0, slot1, count]
		rAcc = 1 // accumulator box: [int]
		rIDs = 2 // id box: [current_id, next_id]  (Fig. 1's ref cells)
		rK   = 4
		rE   = 5 // entry record base (rE, rE+1)
		rT1  = 7
		rT2  = 8
		rT3  = 9
		rOne = 10
		rTen = 11
	)
	b := NewBuilder()
	labelN := 0
	fresh := func(prefix string) string {
		labelN++
		return fmt.Sprintf("%s_%d", prefix, labelN)
	}

	// enq(entry in rE): bounded 2-slot FIFO inside the rQ record.
	enq := func() {
		slot1 := fresh("enq_slot1")
		done := fresh("enq_done")
		b.Select(rT1, rQ, 2) // count
		b.BranchIf(rT1, slot1)
		b.Update(rQ, 0, rE)
		b.Jump(done)
		b.Label(slot1)
		b.Update(rQ, 1, rE)
		b.Label(done)
		b.Add(rT1, rT1, rOne)
		b.Update(rQ, 2, rT1)
	}

	// appendStep(step): acc = acc*100 + current_id*10 + step.
	appendStep := func(step int64) {
		b.Select(rT3, rIDs, 0) // current_id
		b.Mul(rT3, rT3, rTen)
		if step != 0 {
			b.LoadInt(rT2, step)
			b.Add(rT3, rT3, rT2)
		}
		b.Select(rT1, rAcc, 0)
		b.LoadInt(rT2, 100)
		b.Mul(rT1, rT1, rT2)
		b.Add(rT1, rT1, rT3)
		b.Update(rAcc, 0, rT1)
	}

	// reschedule: build entry (k in rK, current_id) and enqueue it.
	reschedule := func() {
		b.Move(rE, rK)
		b.Select(rE+1, rIDs, 0)
		b.Record(rE, rE, 2)
		enq()
	}

	// yield: capture, reschedule, dispatch (Fig. 1: yield).
	yield := func() {
		resume := fresh("yield_resume")
		b.Capture(rK, resume)
		reschedule()
		b.Jump("dispatch")
		b.Label(resume)
	}

	// --- program start ---
	b.LoadInt(rOne, 1)
	b.LoadInt(rTen, 10)
	// ready queue = (0, 0, 0)
	b.LoadInt(rT1, 0)
	b.LoadInt(rT2, 0)
	b.LoadInt(rT3, 0)
	b.Record(rQ, rT1, 3)
	// acc box = (0)
	b.LoadInt(rT1, 0)
	b.Record(rAcc, rT1, 1)
	// id box = (current 0, next 1)
	b.LoadInt(rT1, 0)
	b.LoadInt(rT2, 1)
	b.Record(rIDs, rT1, 2)

	// fork(child): capture parent, reschedule it, current_id = next_id++,
	// fall into the child's body (Fig. 1: fork).
	b.Capture(rK, "parent_body")
	reschedule()
	b.Select(rT1, rIDs, 1)
	b.Update(rIDs, 0, rT1) // current_id := next_id
	b.Add(rT1, rT1, rOne)
	b.Update(rIDs, 1, rT1) // next_id++

	// child body: two appends with a yield between, then dispatch (thread
	// exit in Fig. 1's fork is falling into dispatch).
	appendStep(0)
	yield()
	appendStep(1)
	b.Jump("dispatch")

	// parent body (resumed from the fork's capture with a dummy value).
	b.Label("parent_body")
	appendStep(0)
	yield()
	appendStep(1)
	b.Jump("dispatch")

	// dispatch (Fig. 1): dequeue (cont, id); current_id := id; throw cont.
	// Empty queue = computation finished: halt with the accumulator.
	b.Label("dispatch")
	b.Select(rT1, rQ, 2) // count
	b.BranchIf(rT1, "dispatch_pop")
	b.Select(rT1, rAcc, 0)
	b.Halt(rT1)
	b.Label("dispatch_pop")
	b.Select(rE, rQ, 0)  // entry = slot0
	b.Select(rT2, rQ, 1) // shift slot1 down
	b.Update(rQ, 0, rT2)
	b.Sub(rT1, rT1, rOne)
	b.Update(rQ, 2, rT1)
	b.Select(rT2, rE, 1)
	b.Update(rIDs, 0, rT2) // current_id := id   (heap write survives the throw)
	b.Select(rK, rE, 0)
	b.LoadInt(rT1, 0)
	b.Throw(rK, rT1)

	m := testMachine(1 << 14)
	v := run1(t, m, b.MustBuild())
	if v.Int() != 10001101 {
		t.Fatalf("interleaving accumulator = %d, want 10001101"+
			" (child0, parent0, child1, parent1)", v.Int())
	}
}
