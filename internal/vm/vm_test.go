package vm

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/mlheap"
)

func testMachine(nurseryWords int) *Machine {
	return NewMachine(mlheap.Config{
		NurseryWords: nurseryWords,
		SemiWords:    1 << 18,
		ChunkWords:   64,
		Procs:        8,
	}, 8)
}

func run1(t *testing.T, m *Machine, prog *Program) mlheap.Value {
	t.Helper()
	p := m.NewProc(prog)
	v, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestArithmeticLoop(t *testing.T) {
	// sum = 0; for i = 1..100 { sum += i }; halt sum
	b := NewBuilder()
	const (
		rSum = 0
		rI   = 1
		rN   = 2
		rOne = 3
		rCmp = 4
	)
	b.LoadInt(rSum, 0).LoadInt(rI, 1).LoadInt(rN, 101).LoadInt(rOne, 1)
	b.Label("loop")
	b.Less(rCmp, rI, rN)
	b.BranchIf(rCmp, "body")
	b.Halt(rSum)
	b.Label("body")
	b.Add(rSum, rSum, rI)
	b.Add(rI, rI, rOne)
	b.Jump("loop")
	v := run1(t, testMachine(1<<16), b.MustBuild())
	if v.Int() != 5050 {
		t.Fatalf("sum = %d, want 5050", v.Int())
	}
}

func TestRecordsAndFields(t *testing.T) {
	b := NewBuilder()
	b.LoadInt(0, 7).LoadInt(1, 8)
	b.Record(2, 0, 2) // r2 = (7, 8)
	b.Select(3, 2, 1) // r3 = 8
	b.LoadInt(4, 99)
	b.Update(2, 0, 4) // r2.0 = 99
	b.Select(5, 2, 0) // r5 = 99
	b.Add(6, 3, 5)    // 8 + 99
	b.Halt(6)
	v := run1(t, testMachine(1<<16), b.MustBuild())
	if v.Int() != 107 {
		t.Fatalf("got %d, want 107", v.Int())
	}
}

func TestListBuildingThroughGC(t *testing.T) {
	// Build a 3000-cell list (i, prev) in a small nursery, then walk it
	// summing the heads: collections must preserve the structure with
	// the registers as roots.
	b := NewBuilder()
	const (
		rList = 0
		rI    = 1
		rN    = 2
		rOne  = 3
		rCmp  = 4
		rHead = 5 // record base: head, then tail
		rTail = 6
		rSum  = 7
	)
	// The list terminates in a sentinel cell whose head is -1.
	b.LoadInt(rHead, -1).LoadInt(rTail, 0).Record(rList, rHead, 2)
	b.LoadInt(rI, 1).LoadInt(rN, 3001).LoadInt(rOne, 1)
	b.Label("build")
	b.Less(rCmp, rI, rN)
	b.BranchIf(rCmp, "cons")
	b.Jump("walk")
	b.Label("cons")
	b.Move(rHead, rI)
	b.Move(rTail, rList)
	b.Record(rList, rHead, 2)
	b.Add(rI, rI, rOne)
	b.Jump("build")
	b.Label("walk")
	b.LoadInt(rSum, 0)
	b.Label("walkloop")
	b.Select(rHead, rList, 0)
	b.LoadInt(rCmp, -1)
	b.Eq(rCmp, rHead, rCmp)
	b.BranchIf(rCmp, "done")
	b.Add(rSum, rSum, rHead)
	b.Select(rList, rList, 1)
	b.Jump("walkloop")
	b.Label("done")
	b.Halt(rSum)

	m := testMachine(2048) // tiny nursery: forces many collections
	v := run1(t, m, b.MustBuild())
	if v.Int() != 3000*3001/2 {
		t.Fatalf("sum = %d, want %d", v.Int(), 3000*3001/2)
	}
	if m.World().GCs() == 0 {
		t.Fatal("no collections exercised")
	}
}

func TestCallccEscape(t *testing.T) {
	// callcc-as-escape: capture k, then throw 42 to it; "resume" is only
	// reached by the throw, with 42 in the destination register.
	b := NewBuilder()
	b.Capture(0, "resume") // fallthrough path: r0 = k
	b.Move(1, 0)           // r1 = k
	b.LoadInt(2, 42)
	b.Throw(1, 2) // escape
	b.Label("resume")
	b.Halt(0) // throw path: r0 = 42
	v := run1(t, testMachine(1<<16), b.MustBuild())
	if v.Int() != 42 {
		t.Fatalf("got %v, want 42", v)
	}
}

func TestMultiShotViaHeapCell(t *testing.T) {
	// k is kept in a heap cell; the resumption path bumps a heap counter
	// and re-throws the SAME continuation until the counter reaches 5.
	// Each throw restores the captured registers — only heap state
	// persists — so reaching 5 proves the continuation fired 5 times.
	b := NewBuilder()
	const (
		rBox = 0 // heap cell: [k, count]; filled in after the capture
		rK   = 1
		rTmp = 2
		rCnt = 3
		rLim = 4
		rCmp = 5
		rV   = 6
	)
	// box = (0, 0)
	b.LoadInt(rTmp, 0).Move(rCnt, rTmp).Record(rBox, rTmp, 2)
	b.Capture(rK, "back")
	// box.k = k; rBox itself was captured by k, so every restore sees the
	// same box pointer while the box *contents* persist across throws.
	b.Update(rBox, 0, rK)
	b.LoadInt(rV, 100)
	b.Throw(rK, rV)
	b.Label("back")
	// rK = thrown value; box register was restored to the same cell.
	b.Select(rCnt, rBox, 1)
	b.LoadInt(rTmp, 1)
	b.Add(rCnt, rCnt, rTmp)
	b.Update(rBox, 1, rCnt)
	b.LoadInt(rLim, 5)
	b.Less(rCmp, rCnt, rLim)
	b.BranchIf(rCmp, "again")
	b.Halt(rCnt)
	b.Label("again")
	b.Select(rTmp, rBox, 0) // reload k from the heap
	b.LoadInt(rV, 100)
	b.Throw(rTmp, rV)
	v := run1(t, testMachine(1<<16), b.MustBuild())
	if v.Int() != 5 {
		t.Fatalf("resumption count = %v, want 5 (multi-shot broken)", v)
	}
}

func TestDatumRegister(t *testing.T) {
	b := NewBuilder()
	b.GetDatum(0)
	b.LoadInt(1, 1)
	b.Add(0, 0, 1)
	b.SetDatum(0)
	b.GetDatum(2)
	b.Halt(2)
	m := testMachine(1 << 16)
	p := m.NewProc(b.MustBuild())
	p.SetDatum(mlheap.Int(41))
	v, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 42 {
		t.Fatalf("datum = %v, want 42", v)
	}
}

func TestLockPrimops(t *testing.T) {
	b := NewBuilder()
	b.LoadInt(0, 3) // slot 3
	b.TryLock(1, 0) // should succeed -> 1
	b.TryLock(2, 0) // should fail -> 0
	b.Unlock(0)
	b.TryLock(3, 0) // succeeds again -> 1
	b.Unlock(0)
	b.Mul(4, 1, 3)
	b.Add(4, 4, 2) // 1*1 + 0 = 1
	b.Halt(4)
	v := run1(t, testMachine(1<<16), b.MustBuild())
	if v.Int() != 1 {
		t.Fatalf("lock primops = %v, want 1", v)
	}
}

// TestParallelProcsSharedCounter is Fig. 3's shared-memory story at the
// VM level: several generic machines on real parallelism, incrementing a
// shared heap counter under a lock-vector mutex, while allocating enough
// to force collections.
func TestParallelProcsSharedCounter(t *testing.T) {
	const procs, incs = 4, 300
	m := testMachine(4096)

	// Shared counter cell, built by a setup proc.
	var counter mlheap.Value
	m.World().AddRoot(&counter)
	setup := NewBuilder()
	setup.LoadInt(0, 0).Record(1, 0, 1).Halt(1)
	p0 := m.NewProc(setup.MustBuild())
	c, err := p0.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	counter = c

	// Worker: for incs times { spin on lock 0; counter.0++; unlock;
	// allocate garbage }.
	b := NewBuilder()
	const (
		rCtr  = 0 // shared counter (initial register)
		rI    = 1
		rN    = 2
		rOne  = 3
		rCmp  = 4
		rSlot = 5
		rGot  = 6
		rVal  = 7
		rJunk = 8
	)
	b.LoadInt(rI, 0).LoadInt(rN, incs).LoadInt(rOne, 1).LoadInt(rSlot, 0)
	b.Label("loop")
	b.Less(rCmp, rI, rN)
	b.BranchIf(rCmp, "body")
	b.Halt(rI)
	b.Label("body")
	b.Label("spin")
	b.TryLock(rGot, rSlot)
	b.BranchIf(rGot, "locked")
	b.Jump("spin")
	b.Label("locked")
	b.Select(rVal, rCtr, 0)
	b.Add(rVal, rVal, rOne)
	b.Update(rCtr, 0, rVal)
	b.Unlock(rSlot)
	b.Record(rJunk, rI, 3) // garbage: forces collections eventually
	b.Add(rI, rI, rOne)
	b.Jump("loop")
	prog := b.MustBuild()

	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		p := m.NewProc(prog)
		p.SetReg(rCtr, counter)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Run(0); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	got := m.World().Heap().Get(counter, 0).Int()
	if got != procs*incs {
		t.Fatalf("counter = %d, want %d", got, procs*incs)
	}
	if m.World().GCs() == 0 {
		t.Fatal("no collections exercised")
	}
}

func TestUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jump("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("undefined label accepted")
	}
}

func TestPreemptionHook(t *testing.T) {
	b := NewBuilder()
	b.LoadInt(0, 0).LoadInt(1, 1).LoadInt(2, 100000)
	b.Label("loop")
	b.Add(0, 0, 1)
	b.Less(3, 0, 2)
	b.BranchIf(3, "loop")
	b.Halt(0)
	m := testMachine(1 << 16)
	p := m.NewProc(b.MustBuild())
	ticks := 0
	p.Quantum = 1000
	p.Preempt = func() { ticks++ }
	if _, err := p.Run(0); err != nil {
		t.Fatal(err)
	}
	if ticks < 100 {
		t.Fatalf("preemption hook ran %d times, want ~%d", ticks, p.Steps()/1000)
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder()
	b.LoadInt(0, 5)
	b.Label("top")
	b.Capture(1, "top")
	b.Record(2, 0, 2)
	b.Select(3, 2, 1)
	b.Update(2, 0, 3)
	b.TryLock(4, 0)
	b.Unlock(0)
	b.AcquireProc(5, 1)
	b.GetDatum(6)
	b.SetDatum(6)
	b.Throw(1, 0)
	b.BranchIf(4, "top")
	b.Jump("top")
	b.Halt(0)
	asm := b.MustBuild().Disassemble()
	for _, want := range []string{"loadi", "callcc", "record", "select",
		"update", "trylock", "unlock", "acquire", "getdatum", "setdatum",
		"throw", "brnz", "jump", "halt", "L:"} {
		if !strings.Contains(asm, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, asm)
		}
	}
}

// BenchmarkVMInstructionThroughput measures raw generic-machine speed on
// an arithmetic loop.
func BenchmarkVMInstructionThroughput(b *testing.B) {
	bd := NewBuilder()
	bd.LoadInt(0, 0).LoadInt(1, 1).LoadInt(2, int64(b.N))
	bd.Label("loop")
	bd.Add(0, 0, 1)
	bd.Less(3, 0, 2)
	bd.BranchIf(3, "loop")
	bd.Halt(0)
	m := testMachine(1 << 16)
	p := m.NewProc(bd.MustBuild())
	b.ResetTimer()
	if _, err := p.Run(0); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(p.Steps())/float64(b.N), "instr/op")
}

// BenchmarkVMCallccThrow measures the §2 claim at the machine level:
// capturing and throwing a continuation is one heap record plus a
// register reload.
func BenchmarkVMCallccThrow(b *testing.B) {
	bd := NewBuilder()
	const (
		rI, rN, rOne, rK, rV, rCmp = 0, 1, 2, 3, 4, 5
	)
	bd.LoadInt(rI, 0).LoadInt(rN, int64(b.N)).LoadInt(rOne, 1)
	bd.Label("loop")
	bd.Capture(rK, "resume")
	bd.Move(rV, rI)
	bd.Throw(rK, rV) // capture + throw per iteration
	bd.Label("resume")
	bd.Move(rI, rK) // thrown value = old i
	bd.Add(rI, rI, rOne)
	bd.Less(rCmp, rI, rN)
	bd.BranchIf(rCmp, "loop")
	bd.Halt(rI)
	m := testMachine(1 << 20)
	p := m.NewProc(bd.MustBuild())
	b.ResetTimer()
	if _, err := p.Run(0); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkVMAllocation measures bump allocation through the clean-point
// protocol.
func BenchmarkVMAllocation(b *testing.B) {
	bd := NewBuilder()
	bd.LoadInt(0, 0).LoadInt(1, 1).LoadInt(2, int64(b.N))
	bd.Label("loop")
	bd.Record(3, 0, 2) // 3-word record per iteration
	bd.Add(0, 0, 1)
	bd.Less(4, 0, 2)
	bd.BranchIf(4, "loop")
	bd.Halt(0)
	m := testMachine(1 << 18)
	p := m.NewProc(bd.MustBuild())
	b.ResetTimer()
	if _, err := p.Run(0); err != nil {
		b.Fatal(err)
	}
}
