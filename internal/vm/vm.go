// Package vm implements the paper's §5 substrate: SML/NJ's *generic
// machine model*, the abstract register machine the compiler targets and
// the layer the MP work actually modified.  "The generic machine model
// includes general-purpose registers and transfer operations, and a set
// of primitive operators (primops) for arithmetic and logic functions and
// specialized tasks such as callcc...  To implement the proc_datum, we
// modified the SML/NJ generic machine model to include a new dedicated
// virtual register.  Two primops corresponding to get_datum and set_datum
// were added to read and write the register."
//
// The machine here has:
//
//   - general-purpose registers holding mlheap Values;
//   - the dedicated proc-datum register with GetDatum/SetDatum primops;
//   - record allocation and field selection/update primops over the real
//     copying heap (package mlheap via gcsync), with the heap-limit check
//     at allocation being the clean point, exactly as in SML/NJ;
//   - Capture/Throw primops building first-class, heap-allocated,
//     **multi-shot** continuations — a continuation is just a record of
//     the saved registers, so re-throwing it restores the machine state
//     again, recovering the full SML/NJ semantics that the Go-level
//     cont package (necessarily one-shot) cannot express;
//   - TryLock/Unlock primops over a machine-wide lock vector, the
//     hardware mutex facility of §3.3.
//
// Programs are built with the Builder (there is no parser — the SML/NJ
// compiler is out of scope; the builder plays the role of its code
// generator).  Multiple VM procs share one heap and lock vector and run
// on real MP procs.
package vm

import (
	"fmt"
	"sync"

	"repro/internal/gcsync"
	"repro/internal/mlheap"
	"repro/internal/spinlock"
)

// NumRegs is the number of general-purpose registers, matching the
// register-rich RISC targets the paper discusses.
const NumRegs = 16

// Op is a generic-machine instruction opcode.
type Op int

// The instruction set: transfer operations, arithmetic/logic primops,
// control, heap primops, continuation primops, the proc-datum primops,
// and the lock primops.
const (
	OpNop         Op = iota
	OpLoadInt        // R[A] = Imm
	OpMove           // R[A] = R[B]
	OpAdd            // R[A] = R[B] + R[C]
	OpSub            // R[A] = R[B] - R[C]
	OpMul            // R[A] = R[B] * R[C]
	OpLess           // R[A] = R[B] < R[C] (1/0)
	OpEq             // R[A] = R[B] == R[C] (1/0)
	OpJump           // pc = Imm
	OpBranchIf       // if R[A] != 0 { pc = Imm }
	OpRecord         // R[A] = new record of R[B..B+C-1]  (heap-limit clean point)
	OpSelect         // R[A] = field Imm of R[B]
	OpUpdate         // field Imm of R[A] = R[B]
	OpCapture        // R[A] = continuation resuming at Imm with result in R[A]
	OpThrow          // throw continuation R[A] the value R[B]; never falls through
	OpGetDatum       // R[A] = proc-datum register
	OpSetDatum       // proc-datum register = R[A]
	OpTryLock        // R[A] = TryLock(lock vector slot R[B]) (1/0)
	OpUnlock         // Unlock(lock vector slot R[A])
	OpAcquireProc    // R[A] = 1 if continuation R[B] now runs on a new proc, 0 if No_More_Procs
	OpHalt           // stop (release_proc); R[A] is the proc's result
)

// Instr is one generic-machine instruction.
type Instr struct {
	Op      Op
	A, B, C int
	Imm     int64
}

// Program is straight-line generic-machine code with absolute jump
// targets (the Builder resolves labels).
type Program struct {
	Code []Instr
}

// Machine is the shared multiprocessing state: the heap world, the lock
// vector, and the proc pool for OpAcquireProc (bounded like the paper's
// compile-time proc limit; the heap config's Procs field is the bound).
type Machine struct {
	world *gcsync.World
	locks []spinlock.Lock

	mu       sync.Mutex
	maxProcs int
	running  int
	spawned  sync.WaitGroup
	spawnErr error
}

// NewMachine builds a machine with the given heap configuration and lock
// vector size.  heap.Procs bounds the simultaneously executing VM procs.
func NewMachine(heap mlheap.Config, numLocks int) *Machine {
	m := &Machine{world: gcsync.NewWorld(heap), maxProcs: heap.Procs}
	for i := 0; i < numLocks; i++ {
		m.locks = append(m.locks, spinlock.NewBackoff())
	}
	return m
}

// Wait blocks until every proc started by OpAcquireProc has halted, and
// returns the first error any of them hit.
func (m *Machine) Wait() error {
	m.spawned.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.spawnErr
}

// tryAcquire starts a new VM proc resuming continuation k, mirroring
// acquire_proc: the continuation gets the new proc; the caller keeps the
// current one.  Returns false when the proc limit is reached
// (No_More_Procs).  The new proc's registers are restored and rooted on
// the caller's goroutine, before any collection can move k.
func (p *Proc) tryAcquire(k mlheap.Value) bool {
	m := p.m
	m.mu.Lock()
	// The calling proc counts against the limit too; `running` tracks
	// spawned procs only, so allow maxProcs-1 of them.
	if m.running >= m.maxProcs-1 {
		m.mu.Unlock()
		return false
	}
	m.running++
	m.mu.Unlock()

	np := m.NewProc(p.prog)
	np.Quantum, np.Preempt = p.Quantum, p.Preempt
	h := m.world.Heap()
	for i := 0; i < NumRegs; i++ {
		np.regs[i] = h.Get(k, kRegs+i)
	}
	np.datum = h.Get(k, kDatum)
	dst := int(h.Get(k, kDst).Int())
	np.regs[dst] = mlheap.Int(0) // continuation resumed with unit
	np.pc = int(h.Get(k, kResume).Int())

	m.spawned.Add(1)
	go func() {
		defer m.spawned.Done()
		defer func() {
			m.mu.Lock()
			m.running--
			m.mu.Unlock()
		}()
		if _, err := np.run(); err != nil {
			m.mu.Lock()
			if m.spawnErr == nil {
				m.spawnErr = err
			}
			m.mu.Unlock()
		}
	}()
	return true
}

// World exposes the heap world (for roots and stats).
func (m *Machine) World() *gcsync.World { return m.world }

// Proc is one executing generic machine: registers, the dedicated datum
// register, a program counter, and its per-proc allocation handle.
type Proc struct {
	m     *Machine
	prog  *Program
	regs  [NumRegs]mlheap.Value
	datum mlheap.Value
	pc    int
	alloc *gcsync.Alloc
	steps int64
	// Quantum, if nonzero, calls Preempt every Quantum instructions — the
	// signal-driven preemption hook (§3.4).
	Quantum int64
	Preempt func()
}

// NewProc attaches an executing machine to the shared state.  Callers
// running several procs concurrently must run each on its own
// goroutine/MP proc and Detach (via Halt return) when done.
func (m *Machine) NewProc(prog *Program) *Proc {
	p := &Proc{m: m, prog: prog, alloc: m.world.Attach()}
	for i := range p.regs {
		p.alloc.AddRoot(&p.regs[i])
	}
	p.alloc.AddRoot(&p.datum)
	return p
}

// SetReg initializes a register before Run.
func (p *Proc) SetReg(i int, v mlheap.Value) { p.regs[i] = v }

// SetDatum initializes the datum register before Run.
func (p *Proc) SetDatum(v mlheap.Value) { p.datum = v }

// Steps reports the number of instructions executed.
func (p *Proc) Steps() int64 { return p.steps }

// continuation record layout: [resumePC, dstReg, datum, regs...].
const (
	kResume = iota
	kDst
	kDatum
	kRegs
)

// Run executes the program from entry until Halt and returns the halt
// value.  The proc's allocation handle is detached on return.
func (p *Proc) Run(entry int) (mlheap.Value, error) {
	p.pc = entry
	return p.run()
}

// run executes from the current pc until Halt.
func (p *Proc) run() (mlheap.Value, error) {
	defer p.alloc.Detach()
	h := p.m.world.Heap()
	for {
		if p.pc < 0 || p.pc >= len(p.prog.Code) {
			return mlheap.Nil, fmt.Errorf("vm: pc %d out of range", p.pc)
		}
		in := p.prog.Code[p.pc]
		p.steps++
		if p.steps%64 == 0 {
			// Periodic clean point, the analogue of SML/NJ's heap-limit
			// check: a proc stuck in a non-allocating loop (e.g. spinning
			// on TryLock) must still let collections proceed.
			p.alloc.CleanPoint()
		}
		if p.Quantum > 0 && p.steps%p.Quantum == 0 && p.Preempt != nil {
			p.alloc.CleanPoint() // preemption points are clean points too
			p.Preempt()
		}
		switch in.Op {
		case OpNop:
		case OpLoadInt:
			p.regs[in.A] = mlheap.Int(in.Imm)
		case OpMove:
			p.regs[in.A] = p.regs[in.B]
		case OpAdd:
			p.regs[in.A] = mlheap.Int(p.regs[in.B].Int() + p.regs[in.C].Int())
		case OpSub:
			p.regs[in.A] = mlheap.Int(p.regs[in.B].Int() - p.regs[in.C].Int())
		case OpMul:
			p.regs[in.A] = mlheap.Int(p.regs[in.B].Int() * p.regs[in.C].Int())
		case OpLess:
			p.regs[in.A] = boolVal(p.regs[in.B].Int() < p.regs[in.C].Int())
		case OpEq:
			p.regs[in.A] = boolVal(p.regs[in.B] == p.regs[in.C])
		case OpJump:
			p.pc = int(in.Imm)
			continue
		case OpBranchIf:
			if p.regs[in.A].Int() != 0 {
				p.pc = int(in.Imm)
				continue
			}
		case OpRecord:
			slots := make([]mlheap.Value, in.C)
			copy(slots, p.regs[in.B:in.B+in.C])
			p.regs[in.A] = p.alloc.Record(slots...)
		case OpSelect:
			p.regs[in.A] = h.Get(p.regs[in.B], int(in.Imm))
		case OpUpdate:
			h.Set(p.regs[in.A], int(in.Imm), p.regs[in.B])
		case OpCapture:
			// callcc: allocate a closure holding the machine state.  "callcc
			// simply allocates and initializes a new closure without having
			// to copy anything [but the registers]" (§2).
			slots := make([]mlheap.Value, kRegs+NumRegs)
			slots[kResume] = mlheap.Int(in.Imm)
			slots[kDst] = mlheap.Int(int64(in.A))
			slots[kDatum] = p.datum
			copy(slots[kRegs:], p.regs[:])
			p.regs[in.A] = p.alloc.Record(slots...)
		case OpThrow:
			k := p.regs[in.A]
			v := p.regs[in.B]
			if !k.IsPtr() {
				return mlheap.Nil, fmt.Errorf("vm: throw to non-continuation at pc %d", p.pc)
			}
			// Restore the captured state; multi-shot by construction.
			for i := 0; i < NumRegs; i++ {
				p.regs[i] = h.Get(k, kRegs+i)
			}
			p.datum = h.Get(k, kDatum)
			dst := int(h.Get(k, kDst).Int())
			p.regs[dst] = v
			p.pc = int(h.Get(k, kResume).Int())
			continue
		case OpGetDatum:
			p.regs[in.A] = p.datum
		case OpSetDatum:
			p.datum = p.regs[in.A]
		case OpTryLock:
			slot := p.regs[in.B].Int()
			p.regs[in.A] = boolVal(p.m.locks[slot].TryLock())
		case OpUnlock:
			p.m.locks[p.regs[in.A].Int()].Unlock()
		case OpAcquireProc:
			p.regs[in.A] = boolVal(p.tryAcquire(p.regs[in.B]))
		case OpHalt:
			return p.regs[in.A], nil
		default:
			return mlheap.Nil, fmt.Errorf("vm: bad opcode %d at pc %d", in.Op, p.pc)
		}
		p.pc++
	}
}

func boolVal(b bool) mlheap.Value {
	if b {
		return mlheap.Int(1)
	}
	return mlheap.Int(0)
}
