package vm

import (
	"testing"

	"repro/internal/mlheap"
)

// TestFigure3ForkAsVMCode runs the heart of the paper's Figure 3 at the
// generic-machine level: fork captures the parent's continuation and
// hands it to acquire_proc, so the *parent* moves to a newly acquired
// proc while the *child* keeps the current one; both then update a
// shared heap counter under a mutex from the lock vector, in true
// parallelism, with collections synchronizing all procs at clean points.
func TestFigure3ForkAsVMCode(t *testing.T) {
	const (
		rCtr  = 0 // shared counter cell [n]
		rK    = 1
		rOK   = 2
		rI    = 3
		rN    = 4
		rOne  = 5
		rSlot = 6
		rGot  = 7
		rVal  = 8
		rJunk = 9
	)
	const perProc = 200

	b := NewBuilder()
	// Shared setup runs on the root proc: counter = (0).
	b.LoadInt(rVal, 0)
	b.Record(rCtr, rVal, 1)
	b.LoadInt(rOne, 1)
	b.LoadInt(rSlot, 0)
	b.LoadInt(rN, perProc)

	// fork: capture parent at "parent", acquire a proc for it (Fig. 3).
	b.Capture(rK, "parent")
	b.AcquireProc(rOK, rK)
	// If No_More_Procs the test still passes sequentially, but we assert
	// below that the acquire succeeded; fall through into the child.
	// child: increment loop, then halt (release_proc).
	b.Label("work")
	b.LoadInt(rI, 0)
	b.Label("loop")
	b.Less(rGot, rI, rN)
	b.BranchIf(rGot, "body")
	b.Halt(rOK) // child returns the acquire flag so the test can see it
	b.Label("body")
	b.Label("spin")
	b.TryLock(rGot, rSlot)
	b.BranchIf(rGot, "locked")
	b.Jump("spin")
	b.Label("locked")
	b.Select(rVal, rCtr, 0)
	b.Add(rVal, rVal, rOne)
	b.Update(rCtr, 0, rVal)
	b.Unlock(rSlot)
	b.Record(rJunk, rI, 2) // allocation pressure: forces shared GCs
	b.Add(rI, rI, rOne)
	b.Jump("loop")

	// parent: resumed on the acquired proc with 0 in rK; same work loop.
	b.Label("parent")
	b.LoadInt(rOK, 1) // mark the parent path
	b.Jump("work")

	m := NewMachine(mlheap.Config{
		NurseryWords: 4096, SemiWords: 1 << 18, ChunkWords: 64, Procs: 4,
	}, 4)
	p := m.NewProc(b.MustBuild())
	got, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 1 {
		t.Fatal("acquire_proc failed: No_More_Procs on an empty pool")
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}

	// To observe the final count the counter must outlive the procs whose
	// registers rooted it, so the full check reruns the program with the
	// counter built by a setup proc and registered as a world root.
	t.Run("rooted", func(t *testing.T) {
		m2 := NewMachine(mlheap.Config{
			NurseryWords: 512, SemiWords: 1 << 18, ChunkWords: 64, Procs: 4,
		}, 4)
		var ctr mlheap.Value
		m2.World().AddRoot(&ctr)
		// Build the counter with a setup proc, root it, then run the
		// forking program with rCtr preloaded.
		sb := NewBuilder()
		sb.LoadInt(0, 0).Record(1, 0, 1).Halt(1)
		sp := m2.NewProc(sb.MustBuild())
		c, err := sp.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		ctr = c

		// Same program minus the counter construction: skip to the fork.
		b2 := NewBuilder()
		b2.LoadInt(rOne, 1)
		b2.LoadInt(rSlot, 0)
		b2.LoadInt(rN, perProc)
		b2.Capture(rK, "parent")
		b2.AcquireProc(rOK, rK)
		b2.Label("work")
		b2.LoadInt(rI, 0)
		b2.Label("loop")
		b2.Less(rGot, rI, rN)
		b2.BranchIf(rGot, "body")
		b2.Halt(rOK)
		b2.Label("body")
		b2.Label("spin")
		b2.TryLock(rGot, rSlot)
		b2.BranchIf(rGot, "locked")
		b2.Jump("spin")
		b2.Label("locked")
		b2.Select(rVal, rCtr, 0)
		b2.Add(rVal, rVal, rOne)
		b2.Update(rCtr, 0, rVal)
		b2.Unlock(rSlot)
		b2.Record(rJunk, rI, 2)
		b2.Add(rI, rI, rOne)
		b2.Jump("loop")
		b2.Label("parent")
		b2.LoadInt(rOK, 1)
		b2.Jump("work")

		p2 := m2.NewProc(b2.MustBuild())
		p2.SetReg(rCtr, ctr)
		if _, err := p2.Run(0); err != nil {
			t.Fatal(err)
		}
		if err := m2.Wait(); err != nil {
			t.Fatal(err)
		}
		final := m2.World().Heap().Get(ctr, 0).Int()
		if final != 2*perProc {
			t.Fatalf("counter = %d, want %d (parent and child on separate procs)",
				final, 2*perProc)
		}
		if m2.World().GCs() == 0 {
			t.Fatal("no collections exercised")
		}
	})
}

// TestAcquireProcLimit: the pool is bounded; acquire past the limit
// reports No_More_Procs as a value, not an error.
func TestAcquireProcLimit(t *testing.T) {
	b := NewBuilder()
	// Try to acquire two procs on a 2-proc machine (self + 1): the first
	// succeeds, the second fails.
	b.Capture(1, "done1")
	b.AcquireProc(2, 1)
	b.Capture(3, "done2")
	b.AcquireProc(4, 3)
	b.LoadInt(5, 10)
	b.Mul(5, 2, 5)
	b.Add(5, 5, 4) // 10*first + second
	b.Halt(5)
	b.Label("done1")
	b.Halt(1) // acquired proc 1: halts immediately
	b.Label("done2")
	b.Halt(3)

	m := NewMachine(mlheap.Config{
		NurseryWords: 2048, SemiWords: 1 << 16, ChunkWords: 64, Procs: 2,
	}, 1)
	p := m.NewProc(b.MustBuild())
	v, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Wait(); err != nil {
		t.Fatal(err)
	}
	// The spawned parent may have halted before or after the second
	// acquire, so the second acquire may succeed (slot freed) or fail.
	if v.Int() != 10 && v.Int() != 11 {
		t.Fatalf("acquire flags = %d, want 10 (second refused) or 11 (slot recycled)", v.Int())
	}
}
