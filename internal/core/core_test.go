package core

import (
	"testing"
)

func TestPlatformSurface(t *testing.T) {
	pl := NewPlatform(2)
	if pl.MaxProcs() != 2 {
		t.Fatalf("MaxProcs = %d", pl.MaxProcs())
	}
	got := 0
	pl.Run(func() {
		SetDatum(5)
		if GetDatum() != 5 {
			t.Error("datum round trip failed")
		}
		if Self() != 0 {
			t.Errorf("root proc id = %d", Self())
		}
		got = Callcc(func(k *Cont[int]) int {
			Throw(k, 7)
			return 0
		})
	}, nil)
	if got != 7 {
		t.Fatalf("callcc/throw through facade = %d", got)
	}
}

func TestMutexLockSurface(t *testing.T) {
	l := NewMutexLock()
	if !l.TryLock() {
		t.Fatal("fresh lock not acquirable")
	}
	if l.TryLock() {
		t.Fatal("double acquire")
	}
	l.Unlock()
	l.Lock()
	l.Unlock()
}

func TestAcquireReleaseSurface(t *testing.T) {
	pl := NewPlatform(2)
	ran := false
	pl.Run(func() {
		Callcc(func(k *UnitCont) Unit {
			if err := pl.Acquire(PS{K: k, Datum: "x"}); err != nil {
				t.Errorf("acquire: %v", err)
				Throw(k, Unit{})
			}
			ran = true
			pl.Release()
			return Unit{}
		})
		if GetDatum() != "x" {
			t.Errorf("datum on acquired proc = %v", GetDatum())
		}
	}, nil)
	if !ran {
		t.Fatal("acquired-proc body did not run")
	}
}

func TestNoMoreProcsSurface(t *testing.T) {
	pl := NewPlatform(1)
	pl.Run(func() {
		err := Callcc(func(k *Cont[error]) error {
			e := pl.Acquire(PS{K: nil2unit(), Datum: nil})
			Throw(k, e)
			return nil
		})
		if err != ErrNoMoreProcs {
			t.Errorf("err = %v, want ErrNoMoreProcs", err)
		}
	}, nil)
}

// nil2unit builds a throwaway parked continuation for failure-path tests.
func nil2unit() *UnitCont {
	ch := make(chan *UnitCont, 1)
	pl := NewPlatform(1)
	go pl.Run(func() {
		Callcc(func(k *UnitCont) Unit {
			ch <- k
			pl.Release()
			return Unit{}
		})
	}, nil)
	return <-ch
}
