// Package core is the MP platform of Morrisett & Tolmach (PPoPP 1993),
// "Procs and Locks: A Portable Multiprocessing Platform for Standard ML of
// New Jersey" — the paper's primary contribution, §3.
//
// From the point of view of a thread system, or client, MP consists of a
// processor abstraction (Proc) and a mutex lock abstraction (Lock);
// together with first-class continuations (package cont, re-exported
// here), these facilities suffice to implement multiprocessor thread
// packages in a machine-independent fashion:
//
//	signature PROC = sig                      signature LOCK = sig
//	    type proc_datum                           type mutex_lock
//	    datatype proc_state =                     val mutex_lock: unit -> mutex_lock
//	        PS of (unit cont * proc_datum)        val try_lock : mutex_lock -> bool
//	    val acquire_proc: proc_state -> unit      val lock     : mutex_lock -> unit
//	    exception No_More_Procs                   val unlock   : mutex_lock -> unit
//	    val release_proc: unit -> 'a          end
//	    val initial_datum : proc_datum
//	    val get_datum : unit -> proc_datum
//	    val set_datum : proc_datum -> unit
//	end
//
// All heap memory is implicitly shared among all procs; mutex locks provide
// elementary exclusion, and more elaborate synchronization (reader/writer
// locks, semaphores, channels — see packages syncx, sel and cml) is
// synthesized from mutex locks, shared variables, and continuations.
//
// The repository's clients (internal/threads, internal/sel, internal/cml,
// internal/syncx) are built exclusively on this surface, which is the
// paper's portability claim: port the platform, and every client follows.
package core

import (
	"repro/internal/cont"
	"repro/internal/proc"
	"repro/internal/spinlock"
)

// Unit is SML's unit type.
type Unit = cont.Unit

// Cont is a first-class one-shot continuation carrying a T (SML's
// 'a cont).
type Cont[T any] = cont.Cont[T]

// UnitCont is the paper's `unit cont`, the type of suspended procs and
// threads.
type UnitCont = cont.Cont[Unit]

// Platform manages procs; see proc.Platform.
type Platform = proc.Platform

// PS is the paper's proc_state: a unit continuation paired with the
// client-defined proc datum.
type PS = proc.PS

// ErrNoMoreProcs is the exception No_More_Procs.
var ErrNoMoreProcs = proc.ErrNoMoreProcs

// NewPlatform returns a platform providing at most maxProcs procs.
func NewPlatform(maxProcs int) *Platform { return proc.New(maxProcs) }

// GetDatum returns the calling proc's private datum.
func GetDatum() any { return proc.GetDatum() }

// SetDatum overwrites the calling proc's private datum.
func SetDatum(d any) { proc.SetDatum(d) }

// Self returns the calling proc's id.
func Self() int { return proc.Self() }

// Callcc captures the current continuation, as SML/NJ's callcc.
func Callcc[T any](body func(k *cont.Cont[T]) T) T { return cont.Callcc(body) }

// Throw invokes a captured continuation with a value; it never returns.
func Throw[T any](k *cont.Cont[T], v T) { cont.Throw(k, v) }

// Lock is the paper's mutex_lock abstraction.
type Lock = spinlock.Lock

// LockFactory creates fresh locks; clients are parameterized by one.
type LockFactory = spinlock.Factory

// NewMutexLock returns a fresh lock in unlocked state (paper: mutex_lock).
// The default flavor is TTAS with exponential backoff, the strategy the
// paper cites Anderson for; other flavors live in package spinlock.
func NewMutexLock() Lock { return spinlock.NewBackoff() }
