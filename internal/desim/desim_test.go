package desim

import (
	"testing"
	"testing/quick"
)

func TestSingleProcessAdvances(t *testing.T) {
	e := New(1)
	var at []Time
	e.Spawn("p", func(p *Proc) {
		p.Advance(10)
		at = append(at, e.Now())
		p.Advance(5)
		at = append(at, e.Now())
	})
	end := e.Run()
	if end != 15 {
		t.Fatalf("end = %d, want 15", end)
	}
	if at[0] != 10 || at[1] != 15 {
		t.Fatalf("at = %v", at)
	}
}

func TestProcessesInterleaveByTime(t *testing.T) {
	e := New(1)
	var trace []string
	e.Spawn("a", func(p *Proc) {
		p.Advance(10)
		trace = append(trace, "a10")
		p.Advance(20) // to 30
		trace = append(trace, "a30")
	})
	e.Spawn("b", func(p *Proc) {
		p.Advance(15)
		trace = append(trace, "b15")
		p.Advance(20) // to 35
		trace = append(trace, "b35")
	})
	e.Run()
	want := []string{"a10", "b15", "a30", "b35"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestFIFOTieBreakAtSameTime(t *testing.T) {
	e := New(1)
	var trace []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Advance(100) // all wake at t=100
			trace = append(trace, i)
		})
	}
	e.Run()
	for i, v := range trace {
		if v != i {
			t.Fatalf("same-time events out of spawn order: %v", trace)
		}
	}
}

func TestParkUnpark(t *testing.T) {
	e := New(1)
	var consumer *Proc
	var got Time
	ready := false
	consumer = e.Spawn("consumer", func(p *Proc) {
		if !ready {
			p.Park()
		}
		got = e.Now()
	})
	e.Spawn("producer", func(p *Proc) {
		p.Advance(42)
		ready = true
		p.Unpark(consumer)
	})
	e.Run()
	if got != 42 {
		t.Fatalf("consumer resumed at %d, want 42", got)
	}
}

func TestAdvanceTo(t *testing.T) {
	e := New(1)
	e.Spawn("p", func(p *Proc) {
		p.AdvanceTo(50)
		if e.Now() != 50 {
			t.Errorf("now = %d", e.Now())
		}
		p.AdvanceTo(10) // in the past: no-op
		if e.Now() != 50 {
			t.Errorf("AdvanceTo went backwards: %d", e.Now())
		}
	})
	e.Run()
}

func TestDeadlockDetected(t *testing.T) {
	e := New(1)
	e.Spawn("stuck", func(p *Proc) { p.Park() })
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked run did not panic")
		}
	}()
	e.Run()
}

func TestSpawnFromProcess(t *testing.T) {
	e := New(1)
	var childAt Time
	e.Spawn("parent", func(p *Proc) {
		p.Advance(7)
		e.Spawn("child", func(q *Proc) {
			q.Advance(3)
			childAt = e.Now()
		})
		p.Advance(100)
	})
	e.Run()
	if childAt != 10 {
		t.Fatalf("child finished at %d, want 10", childAt)
	}
}

// TestQuickDeterminism: any program of random advances over several
// processes produces an identical final clock on every run with the same
// seed.
func TestQuickDeterminism(t *testing.T) {
	prop := func(delays []uint16, seed int64) bool {
		run := func() Time {
			e := New(seed)
			for pi := 0; pi < 3; pi++ {
				pi := pi
				e.Spawn("p", func(p *Proc) {
					for i, d := range delays {
						if i%3 == pi {
							p.Advance(Time(d))
						}
					}
				})
			}
			return e.Run()
		}
		return run() == run()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickClockMonotone: the engine clock never runs backwards.
func TestQuickClockMonotone(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := New(1)
		ok := true
		var last Time
		for pi := 0; pi < 4; pi++ {
			pi := pi
			e.Spawn("p", func(p *Proc) {
				for i, d := range delays {
					if i%4 == pi {
						p.Advance(Time(d))
						if e.Now() < last {
							ok = false
						}
						last = e.Now()
					}
				}
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
