// Package desim is a deterministic discrete-event simulation engine, the
// substrate under the machine models that stand in for the paper's 1993
// hardware (16-processor Sequent Symmetry S81, 8-processor SGI 4D/380S).
//
// The engine advances a virtual clock over a totally ordered event heap.
// Simulated activities are *processes*: goroutines that run strictly one
// at a time, hand-shaking with the engine at every timing operation, so a
// simulation is sequential and fully deterministic — the same seed yields
// the same event trace, clock, and statistics, which the repository's
// property tests verify.
//
// Process API (valid only inside a process function):
//
//   - Advance(d): let d nanoseconds of virtual time pass.
//   - AdvanceTo(t): advance to absolute time t (no-op if in the past).
//   - Park(): block until another process calls Unpark.
//   - Unpark(q): make q runnable now (q must be parked).
package desim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in nanoseconds.
type Time = int64

type event struct {
	t   Time
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Engine runs a deterministic discrete-event simulation.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	yield  chan struct{}
	rng    *rand.Rand
	parked int
	nprocs int
}

// New returns an engine with a seeded random source for deterministic
// tie-breaking decisions in client models.
func New(seed int64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Proc is a simulated process.
type Proc struct {
	e      *Engine
	name   string
	resume chan struct{}
	parked bool
	done   bool
}

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine the process belongs to.
func (p *Proc) Engine() *Engine { return p.e }

// Spawn creates a process running fn, scheduled to start at the current
// virtual time.  It may be called before Run or from inside a running
// process.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, resume: make(chan struct{})}
	e.nprocs++
	go func() {
		<-p.resume // wait for the engine to start us
		fn(p)
		p.done = true
		e.yield <- struct{}{} // return control; the goroutine is finished
	}()
	e.schedule(p, e.now)
	return p
}

func (e *Engine) schedule(p *Proc, t Time) {
	e.seq++
	heap.Push(&e.events, event{t: t, seq: e.seq, p: p})
}

// Run drives the simulation until no scheduled events remain and returns
// the final virtual time.  Processes still parked at that point are
// deadlocked; Run panics to surface the modeling bug.
func (e *Engine) Run() Time {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.t
		ev.p.resume <- struct{}{}
		<-e.yield
	}
	if e.parked > 0 {
		panic(fmt.Sprintf("desim: %d process(es) parked forever at t=%d", e.parked, e.now))
	}
	return e.now
}

// Parked reports how many processes are currently parked.
func (e *Engine) Parked() int { return e.parked }

// yieldToEngine hands control back and blocks until rescheduled.
func (p *Proc) yieldToEngine() {
	p.e.yield <- struct{}{}
	<-p.resume
}

// Advance lets d nanoseconds of virtual time pass for this process.
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic("desim: negative Advance")
	}
	p.e.schedule(p, p.e.now+d)
	p.yieldToEngine()
}

// AdvanceTo advances to absolute time t; a no-op if t is in the past.
func (p *Proc) AdvanceTo(t Time) {
	if t <= p.e.now {
		return
	}
	p.e.schedule(p, t)
	p.yieldToEngine()
}

// Park blocks the process until some other process calls Unpark on it.
func (p *Proc) Park() {
	if p.parked {
		panic("desim: Park on already parked process")
	}
	p.parked = true
	p.e.parked++
	p.yieldToEngine()
}

// Unpark makes a parked process runnable at the current virtual time.  It
// must be called from the currently running process (or before Run).
func (p *Proc) Unpark(q *Proc) {
	if !q.parked {
		panic(fmt.Sprintf("desim: Unpark of non-parked process %q", q.name))
	}
	q.parked = false
	p.e.parked--
	p.e.schedule(q, p.e.now)
}
