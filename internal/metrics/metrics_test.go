package metrics

import (
	"runtime"
	"strings"
	"sync"
	"testing"
)

func TestCounterShardingAndMerge(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("x")
	c.Inc(0)
	c.Inc(1)
	c.Inc(1)
	c.Add(3, 5)
	if got := c.Value(); got != 8 {
		t.Fatalf("Value = %d, want 8", got)
	}
	per := c.PerShard()
	if per[0] != 1 || per[1] != 2 || per[3] != 5 {
		t.Fatalf("PerShard = %v", per)
	}
	// Shard keys beyond the shard count mask down instead of panicking.
	c.Inc(4 + 1)
	if per := c.PerShard(); per[1] != 3 {
		t.Fatalf("masked shard: PerShard = %v", per)
	}
}

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry(2)
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned distinct counters")
	}
	if r.Shards() != 2 {
		t.Fatalf("Shards = %d, want 2", r.Shards())
	}
	if NewRegistry(5).Shards() != 8 {
		t.Fatal("shard count not rounded to power of two")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry(2)
	h := r.Histogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 5000} {
		h.Observe(0, v)
	}
	s := r.Snapshot().Histograms["lat"]
	want := []int64{2, 2, 0, 1} // <=10: {5,10}; <=100: {11,100}; overflow: {5000}
	for i, n := range want {
		if s.Counts[i] != n {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], n, s.Counts)
		}
	}
	if s.Count != 5 || s.Sum != 5+10+11+100+5000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry(2)
	c := r.Counter("ops")
	h := r.Histogram("sz", []int64{8})
	c.Add(0, 10)
	h.Observe(0, 4)
	before := r.Snapshot()
	c.Add(1, 7)
	h.Observe(1, 16)
	d := r.Snapshot().Diff(before)
	if d.Get("ops") != 7 {
		t.Fatalf("diff ops = %d, want 7", d.Get("ops"))
	}
	if d.PerShard["ops"][0] != 0 || d.PerShard["ops"][1] != 7 {
		t.Fatalf("diff per-shard = %v", d.PerShard["ops"])
	}
	hs := d.Histograms["sz"]
	if hs.Count != 1 || hs.Sum != 16 || hs.Counts[1] != 1 {
		t.Fatalf("diff hist = %+v", hs)
	}
	// Diff against an empty snapshot is the snapshot itself.
	if d2 := r.Snapshot().Diff(Snapshot{}); d2.Get("ops") != 17 {
		t.Fatalf("diff vs empty = %d, want 17", d2.Get("ops"))
	}
}

func TestFormatStable(t *testing.T) {
	r := NewRegistry(1)
	r.Counter("b.two").Inc(0)
	r.Counter("a.one").Add(0, 3)
	out := r.Snapshot().Format()
	if strings.Index(out, "a.one") > strings.Index(out, "b.two") {
		t.Fatalf("names not sorted:\n%s", out)
	}
}

// The acceptance criterion for the observability spine: the hot path
// allocates nothing.
func TestIncObserveZeroAlloc(t *testing.T) {
	r := NewRegistry(8)
	c := r.Counter("hot")
	h := r.Histogram("hist", []int64{1, 10, 100})
	if n := testing.AllocsPerRun(1000, func() { c.Inc(3) }); n != 0 {
		t.Fatalf("Counter.Inc allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(5, 42) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(2, 37) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v per op, want 0", n)
	}
}

// Concurrent increments from many goroutines on distinct shards must
// not lose counts (exercised under -race in CI).
func TestConcurrentShards(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	r := NewRegistry(workers)
	c := r.Counter("par")
	const per = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(w)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != int64(workers*per) {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}
