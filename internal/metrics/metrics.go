// Package metrics is the repository's unified observability spine: a
// registry of named, per-proc-sharded counters and fixed-bucket
// histograms replacing the bespoke Stats structs that used to live in
// proc, threads, mlheap and machine.
//
// The design follows the paper's own discipline for the allocation fast
// path (§5): anything a proc does on every operation must cost nothing
// and touch no shared cache line.  Counter.Inc and Histogram.Observe
// are therefore zero-allocation single atomic adds on a shard private
// to the calling proc, with every shard padded to its own cache line —
// the per-participant counters the contention literature (Chalmers &
// Pedersen) prescribes, instead of the shared atomics that bounce lines
// at 16 procs.  All merging work (summing shards, diffing runs) happens
// on the cold read side via Snapshot and Diff.
//
// Shard indices are masked to the registry's power-of-two shard count,
// so any non-negative id (proc id, thread id) is a safe shard key.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// CacheLineBytes is the padding unit for per-proc shards.  128 covers
// both 64-byte x86 lines (including adjacent-line prefetching, which
// pairs them) and 128-byte lines on newer ARM parts.
const CacheLineBytes = 128

// padded is one shard: a counter cell alone on its cache line.
type padded struct {
	v atomic.Int64
	_ [CacheLineBytes - 8]byte
}

// Counter is a monotone (or at least sum-meaningful) counter sharded
// per proc.  Inc/Add are the zero-allocation hot path; Value and
// PerShard merge on read.
type Counter struct {
	name   string
	mask   uint32
	shards []padded
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds 1 to the calling proc's shard.
func (c *Counter) Inc(shard int) { c.shards[uint32(shard)&c.mask].v.Add(1) }

// Add adds delta to the calling proc's shard.
func (c *Counter) Add(shard int, delta int64) { c.shards[uint32(shard)&c.mask].v.Add(delta) }

// Value sums all shards.
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.shards {
		t += c.shards[i].v.Load()
	}
	return t
}

// PerShard returns a copy of the per-shard values.
func (c *Counter) PerShard() []int64 {
	out := make([]int64, len(c.shards))
	for i := range c.shards {
		out[i] = c.shards[i].v.Load()
	}
	return out
}

// Histogram is a fixed-bucket histogram sharded per proc.  A value v
// falls in bucket i when v <= Bounds[i]; the last bucket is overflow.
// Observe is the zero-allocation hot path.  At most MaxHistogramBounds
// bounds per histogram, so each shard's buckets live inside the shard's
// own padded cache lines.
type Histogram struct {
	name   string
	bounds []int64
	mask   uint32
	shards []histShard
}

// MaxHistogramBounds is the most bucket bounds a histogram may carry:
// bounds+1 bucket counters plus the running sum fill exactly one
// CacheLineBytes padding unit, keeping the buckets — not just the shard
// header — off every other shard's cache lines.
const MaxHistogramBounds = 14

// histShard embeds its bucket array so the whole shard is one padded
// block; a separately heap-allocated bucket slice would let adjacent
// shards' buckets share cache lines.
type histShard struct {
	counts [MaxHistogramBounds + 1]atomic.Int64
	sum    atomic.Int64
}

// Compile-time check that a shard spans exactly one padding unit; both
// declarations have negative length if the size drifts either way.
var (
	_ [CacheLineBytes - unsafe.Sizeof(histShard{})]byte
	_ [unsafe.Sizeof(histShard{}) - CacheLineBytes]byte
)

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Bounds returns the histogram's upper bucket bounds.
func (h *Histogram) Bounds() []int64 { return append([]int64(nil), h.bounds...) }

// Observe records v on the calling proc's shard.
func (h *Histogram) Observe(shard int, v int64) {
	s := &h.shards[uint32(shard)&h.mask]
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	s.counts[i].Add(1)
	s.sum.Add(v)
}

// HistogramSnapshot is a histogram merged across shards.
type HistogramSnapshot struct {
	Bounds []int64
	Counts []int64 // len(Bounds)+1; the last bucket is overflow
	Count  int64
	Sum    int64
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.bounds)+1),
	}
	for i := range h.shards {
		for b := range s.Counts {
			n := h.shards[i].counts[b].Load()
			s.Counts[b] += n
			s.Count += n
		}
		s.Sum += h.shards[i].sum.Load()
	}
	return s
}

// Registry holds named counters and histograms sharing one shard
// geometry.  Counter/Histogram are get-or-create and safe for
// concurrent use; the returned handles are cached by callers so the
// registry lock never appears on a hot path.
type Registry struct {
	mu       sync.Mutex
	shards   int
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns a registry whose counters carry one shard per
// proc, rounded up to a power of two so shard keys can be masked.
func NewRegistry(procs int) *Registry {
	if procs < 1 {
		procs = 1
	}
	n := 1
	for n < procs {
		n <<= 1
	}
	return &Registry{
		shards:   n,
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Shards reports the registry's (power-of-two) shard count.
func (r *Registry) Shards() int { return r.shards }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, mask: uint32(r.shards - 1), shards: make([]padded, r.shards)}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram with the given bucket bounds
// (ascending, at most MaxHistogramBounds of them), creating it on first
// use.  Bounds on an existing histogram must match its registration.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if len(bounds) > MaxHistogramBounds {
		panic(fmt.Sprintf("metrics: histogram %q has %d bounds, max %d", name, len(bounds), MaxHistogramBounds))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h := &Histogram{
		name:   name,
		bounds: append([]int64(nil), bounds...),
		mask:   uint32(r.shards - 1),
		shards: make([]histShard, r.shards),
	}
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	Counters   map[string]int64
	PerShard   map[string][]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures all instruments without blocking writers: reads are
// per-shard atomic loads, so a snapshot taken mid-benchmark cannot
// perturb Inc/Observe timing.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		PerShard:   make(map[string][]int64, len(counters)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for _, c := range counters {
		per := c.PerShard()
		var t int64
		for _, v := range per {
			t += v
		}
		s.Counters[c.name] = t
		s.PerShard[c.name] = per
	}
	for _, h := range hists {
		s.Histograms[h.name] = h.snapshot()
	}
	return s
}

// Get returns a counter total by name (0 when absent).
func (s Snapshot) Get(name string) int64 { return s.Counters[name] }

// Diff returns s - prev, the activity between two snapshots.
// Instruments absent from prev are treated as zero, so a snapshot pair
// straddling a run isolates that run even on a long-lived registry.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		PerShard:   make(map[string][]int64, len(s.PerShard)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, per := range s.PerShard {
		d := append([]int64(nil), per...)
		for i, pv := range prev.PerShard[name] {
			if i < len(d) {
				d[i] -= pv
			}
		}
		out.PerShard[name] = d
	}
	for name, h := range s.Histograms {
		d := HistogramSnapshot{
			Bounds: append([]int64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Count:  h.Count,
			Sum:    h.Sum,
		}
		if p, ok := prev.Histograms[name]; ok && len(p.Counts) == len(d.Counts) {
			for i := range d.Counts {
				d.Counts[i] -= p.Counts[i]
			}
			d.Count -= p.Count
			d.Sum -= p.Sum
		}
		out.Histograms[name] = d
	}
	return out
}

// Names returns the snapshot's counter names, sorted.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Format renders the snapshot as an aligned name/total table (counters
// first, then histograms), in sorted order for stable output.
func (s Snapshot) Format() string {
	var b strings.Builder
	width := 0
	for name := range s.Counters {
		if len(name) > width {
			width = len(name)
		}
	}
	for name := range s.Histograms {
		if len(name) > width {
			width = len(name)
		}
	}
	for _, name := range s.Names() {
		fmt.Fprintf(&b, "  %-*s %12d\n", width, name, s.Counters[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "  %-*s %12d", width, name, h.Count)
		if h.Count > 0 {
			fmt.Fprintf(&b, "  mean %.1f", float64(h.Sum)/float64(h.Count))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// defaultShards sizes the process-wide Default registry: generous
// enough that distinct procs/threads rarely collide under the mask.
const defaultShards = 64

// Default is the process-wide registry used by packages that have no
// natural owner instance to hang a registry on (sel, cml, the spinlock
// contention hook).  Callers isolate a run with Snapshot/Diff pairs.
var Default = NewRegistry(defaultShards)
