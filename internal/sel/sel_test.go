package sel

import (
	"sync/atomic"
	"testing"

	"repro/internal/proc"
	"repro/internal/threads"
)

func newSys(procs int) *threads.System {
	return threads.New(proc.New(procs), threads.Options{})
}

func TestSendThenReceive(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		ch := NewChan[int](s)
		s.Fork(func() { ch.Send(42) })
		got = ch.Receive()
	})
	if got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestReceiveThenSend(t *testing.T) {
	s := newSys(2)
	var got int
	s.Run(func() {
		ch := NewChan[int](s)
		s.Fork(func() { got = ch.Receive() })
		s.Yield() // let the receiver park first
		ch.Send(7)
	})
	if got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestManyMessagesInOrderOneProc(t *testing.T) {
	// With one proc and FIFO scheduling, a single sender/receiver pair
	// sees values in order.
	s := newSys(1)
	var got []int
	s.Run(func() {
		ch := NewChan[int](s)
		s.Fork(func() {
			for i := 0; i < 100; i++ {
				ch.Send(i)
			}
		})
		for i := 0; i < 100; i++ {
			got = append(got, ch.Receive())
		}
	})
	if len(got) != 100 {
		t.Fatalf("received %d values", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestEachValueDeliveredExactlyOnce(t *testing.T) {
	// n senders, n receivers, one channel, several procs: every value must
	// arrive exactly once — the committed-lock protocol's core guarantee.
	const n = 200
	s := newSys(4)
	var sum atomic.Int64
	var count atomic.Int64
	s.Run(func() {
		ch := NewChan[int](s)
		for i := 0; i < n; i++ {
			i := i
			s.Fork(func() { ch.Send(i) })
		}
		for i := 0; i < n; i++ {
			s.Fork(func() {
				v := ch.Receive()
				sum.Add(int64(v))
				count.Add(1)
			})
		}
	})
	if count.Load() != n {
		t.Fatalf("delivered %d values, want %d", count.Load(), n)
	}
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("sum = %d, want %d (lost or duplicated values)", sum.Load(), want)
	}
}

func TestMultiChannelReceive(t *testing.T) {
	// A receiver parked on three channels must take from whichever channel
	// a sender arrives on, exactly once.
	s := newSys(4)
	counts := make([]atomic.Int64, 3)
	var received atomic.Int64
	s.Run(func() {
		chans := []*Chan[int]{NewChan[int](s), NewChan[int](s), NewChan[int](s)}
		const rounds = 90
		for i := 0; i < rounds; i++ {
			i := i
			s.Fork(func() { chans[i%3].Send(i % 3) })
		}
		for i := 0; i < rounds; i++ {
			s.Fork(func() {
				v := Receive(chans[0], chans[1], chans[2])
				counts[v].Add(1)
				received.Add(1)
			})
		}
	})
	if received.Load() != 90 {
		t.Fatalf("received %d, want 90", received.Load())
	}
	for i := range counts {
		if counts[i].Load() != 30 {
			t.Fatalf("channel %d delivered %d, want 30", i, counts[i].Load())
		}
	}
}

func TestCompetingSendersOnMultiReceive(t *testing.T) {
	// Two senders racing on different channels toward one multi-channel
	// receiver: exactly one wins immediately; the other must be received
	// by a subsequent receive, not lost (the Fig. 5 repair).
	for round := 0; round < 20; round++ {
		s := newSys(4)
		var first, second int
		s.Run(func() {
			a, b := NewChan[int](s), NewChan[int](s)
			s.Fork(func() { a.Send(1) })
			s.Fork(func() { b.Send(2) })
			first = Receive(a, b)
			second = Receive(a, b)
		})
		if first+second != 3 {
			t.Fatalf("round %d: received %d then %d; a send was lost or duplicated",
				round, first, second)
		}
	}
}

func TestPingPong(t *testing.T) {
	s := newSys(2)
	var transcript []int
	s.Run(func() {
		ping, pong := NewChan[int](s), NewChan[int](s)
		s.Fork(func() {
			for i := 0; i < 10; i++ {
				v := ping.Receive()
				pong.Send(v + 1)
			}
		})
		for i := 0; i < 10; i++ {
			ping.Send(i * 100)
			transcript = append(transcript, pong.Receive())
		}
	})
	if len(transcript) != 10 {
		t.Fatalf("transcript = %v", transcript)
	}
	for i, v := range transcript {
		if v != i*100+1 {
			t.Fatalf("transcript[%d] = %d", i, v)
		}
	}
}

func TestFanInFanOut(t *testing.T) {
	// Workers receive jobs from a shared channel and send results to a
	// shared channel; the collector must see every result.
	s := newSys(4)
	var total int
	s.Run(func() {
		jobs, results := NewChan[int](s), NewChan[int](s)
		for w := 0; w < 5; w++ {
			s.Fork(func() {
				for {
					j := jobs.Receive()
					if j < 0 {
						return
					}
					results.Send(j * j)
				}
			})
		}
		s.Fork(func() {
			for i := 1; i <= 30; i++ {
				jobs.Send(i)
			}
			for w := 0; w < 5; w++ {
				jobs.Send(-1)
			}
		})
		for i := 0; i < 30; i++ {
			total += results.Receive()
		}
	})
	want := 0
	for i := 1; i <= 30; i++ {
		want += i * i
	}
	if total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
}

func TestReceiveNoChannelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Receive() did not panic")
		}
	}()
	Receive[int]()
}
