package sel_test

import (
	"fmt"

	"repro/internal/proc"
	"repro/internal/sel"
	"repro/internal/threads"
)

// Synchronous channels with CSP-style send and multi-channel receive
// (paper Figs. 4 and 5).
func Example() {
	s := threads.New(proc.New(2), threads.Options{})
	s.Run(func() {
		ch := sel.NewChan[string](s)
		s.Fork(func() { ch.Send("hello from a thread") })
		fmt.Println(ch.Receive())
	})
	// Output:
	// hello from a thread
}

// Receive takes from whichever channel has a sender, committing exactly
// once.
func ExampleReceive() {
	s := threads.New(proc.New(2), threads.Options{})
	s.Run(func() {
		a := sel.NewChan[int](s)
		b := sel.NewChan[int](s)
		s.Fork(func() { b.Send(7) })
		s.Yield()
		fmt.Println(sel.Receive(a, b))
	})
	// Output:
	// 7
}
