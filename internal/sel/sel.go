// Package sel implements the paper's CSP-style selective communication
// facility (Figs. 4 and 5): dynamically created polymorphic channels, a
// blocking Send, and a Receive that nondeterministically takes a value
// from one of a list of channels.  The protocol is the one underlying the
// authors' multiprocessor Concurrent ML prototype.
//
// A channel holds a queue of blocked sender states and a queue of blocked
// receiver states, jointly protected by a mutex lock.  A receiver state
// carries a `committed` mutex lock used as a flag: the first party to
// try-lock it wins the right to resume that receiver, which is what makes
// multi-channel receive safe — a receiver parked on several channels is
// resumed exactly once even if senders arrive on all of them at once.
//
// One deliberate repair to Fig. 5: when a receiver dequeues a blocked
// sender but then fails to acquire its own committed lock (some other
// sender already resumed it), the figure drops the dequeued sender on the
// floor; we re-queue it so no send is ever lost.
package sel

import (
	"math/rand"

	"repro/internal/cont"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/queue"
)

// Protocol counters, sharded by the calling thread's id on the default
// registry: channels are ownerless values, so there is no per-instance
// registry to hang them on.  aborted_polls counts committed-lock races
// lost — a dequeued partner that some other channel's protocol already
// resumed.
var (
	mSends   = metrics.Default.Counter("sel.sends")
	mRecvs   = metrics.Default.Counter("sel.receives")
	mCommits = metrics.Default.Counter("sel.commits")
	mAborts  = metrics.Default.Counter("sel.aborted_polls")
)

// Scheduler is the slice of the thread package that the protocol needs:
// Fig. 5 calls reschedule, dispatch and Proc.get_datum, nothing more.
// threads.System implements it.
type Scheduler interface {
	// Reschedule makes a ready continuation thunk runnable under a thread
	// id; the thunk never returns.
	Reschedule(run func(), id int)
	// Dispatch transfers control to another ready thread; never returns.
	Dispatch()
	// ID returns the current thread's identifier.
	ID() int
}

// sndr is a blocked sender's state: its continuation, thread id, and the
// value it is sending.
type sndr[T any] struct {
	kont *core.UnitCont
	id   int
	val  T
}

// rcvr is a blocked receiver's state: its value continuation, thread id,
// and the committed lock that flags whether a sender has been determined.
type rcvr[T any] struct {
	kont      *cont.Cont[T]
	id        int
	committed core.Lock
}

// Chan is the paper's 'a chan.
type Chan[T any] struct {
	sched  Scheduler
	chLock core.Lock
	sndrs  queue.Queue[sndr[T]]
	rcvrs  queue.Queue[rcvr[T]]
}

// NewChan creates a channel (Fig. 4: chan).
func NewChan[T any](s Scheduler) *Chan[T] {
	return &Chan[T]{
		sched:  s,
		chLock: core.NewMutexLock(),
		sndrs:  queue.NewFifo[sndr[T]](),
		rcvrs:  queue.NewFifo[rcvr[T]](),
	}
}

// Send sends v to the channel, blocking until a receiver takes it
// (Fig. 4/5: send).
func (c *Chan[T]) Send(v T) {
	self := c.sched.ID()
	mSends.Inc(self)
	c.chLock.Lock()
	for {
		r, err := c.rcvrs.Deq()
		if err != nil {
			// No receiver available: park this sender on the channel and
			// give the proc to another thread.
			cont.Callcc(func(k *core.UnitCont) core.Unit {
				c.sndrs.Enq(sndr[T]{kont: k, id: self, val: v})
				c.chLock.Unlock()
				c.sched.Dispatch()
				return core.Unit{} // unreachable
			})
			return // resumed: some receiver took the value
		}
		if r.committed.TryLock() {
			c.chLock.Unlock()
			mCommits.Inc(self)
			// Effect the communication: reschedule the receiver's
			// continuation with the value bound in (the paper's
			// reschedule_thread converts the 'a cont plus value to a
			// reschedulable unit cont).
			kont, id := r.kont, r.id
			c.sched.Reschedule(func() { cont.Throw(kont, v) }, id)
			return
		}
		// This receiver was already resumed by another sender; discard its
		// stale entry and look for another.
		mAborts.Inc(self)
	}
}

// Receive takes a value from exactly one of the given channels,
// nondeterministically (Fig. 4/5: receive).  All channels must share a
// scheduler.  The calling thread blocks until some sender commits to it.
func Receive[T any](chans ...*Chan[T]) T {
	if len(chans) == 0 {
		panic("sel: Receive with no channels")
	}
	sched := chans[0].sched
	self := sched.ID()
	mRecvs.Inc(self)
	return cont.Callcc(func(k *cont.Cont[T]) T {
		r := rcvr[T]{kont: k, id: self, committed: core.NewMutexLock()}
		for _, c := range randomize(chans) {
			c.chLock.Lock()
			s, err := c.sndrs.Deq()
			if err != nil {
				// No sender here: leave our state on this channel's
				// receiver queue and try the next channel.
				c.rcvrs.Enq(r)
				c.chLock.Unlock()
				continue
			}
			if r.committed.TryLock() {
				c.chLock.Unlock()
				mCommits.Inc(self)
				sched.Reschedule(func() { cont.Throw(s.kont, core.Unit{}) }, s.id)
				return s.val // implicit throw to k: the receive completes
			}
			// Some sender already committed to us via another channel;
			// restore the dequeued sender (repairing Fig. 5) and abandon
			// this invocation — our continuation is already scheduled.
			mAborts.Inc(self)
			c.sndrs.Enq(s)
			c.chLock.Unlock()
			sched.Dispatch()
		}
		// Parked on every channel; wait for a sender to resume us.
		sched.Dispatch()
		panic("sel: Dispatch returned")
	})
}

// Receive is the single-channel convenience form.
func (c *Chan[T]) Receive() T { return Receive(c) }

// randomize returns the channels in pseudo-random order, as Fig. 5's
// receive loop does, so no channel in a multi-way receive is starved.
func randomize[T any](chans []*Chan[T]) []*Chan[T] {
	if len(chans) == 1 {
		return chans
	}
	out := make([]*Chan[T], len(chans))
	copy(out, chans)
	rand.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
