package mlheap_test

import (
	"fmt"

	"repro/internal/mlheap"
)

// Build an ML-style cons list, collect, and observe it intact: the
// collector preserves exactly the reachable graph.
func Example() {
	h := mlheap.New(mlheap.Config{
		NurseryWords: 1024, SemiWords: 4096, ChunkWords: 64, Procs: 1,
	})
	pa := h.NewProcAlloc()

	var list mlheap.Value = mlheap.Nil
	for i := 1; i <= 3; i++ {
		cell, err := pa.AllocRecord(mlheap.Int(int64(i)), list)
		if err != nil {
			panic(err)
		}
		list = cell
	}

	h.Collect([]*mlheap.Value{&list})

	for v := list; v != mlheap.Nil; v = h.Get(v, 1) {
		fmt.Println(h.Get(v, 0).Int())
	}
	st := h.Stats()
	fmt.Println("minor GCs:", st.MinorGCs)
	// Output:
	// 3
	// 2
	// 1
	// minor GCs: 1
}

// Byte objects hold ML strings; the collector moves them without
// scanning their payload.
func ExampleProcAlloc_AllocBytes() {
	h := mlheap.New(mlheap.Config{
		NurseryWords: 1024, SemiWords: 4096, ChunkWords: 64, Procs: 1,
	})
	pa := h.NewProcAlloc()
	s, _ := pa.AllocBytes([]byte("standard ml of new jersey"))
	root, _ := pa.AllocRecord(s)
	h.Collect([]*mlheap.Value{&root})
	fmt.Println(string(h.Bytes(h.Get(root, 0))))
	// Output:
	// standard ml of new jersey
}
