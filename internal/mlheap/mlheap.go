// Package mlheap is an SML/NJ-style heap: a word-addressed, two-generation
// copying memory manager reproducing the design the paper adapts for
// multiprocessing (§5):
//
//   - allocation is performed by in-line bump allocation ("approximately
//     one word per every 3-7 instructions"), so it must be synchronization
//     free: each proc allocates into a separate chunk of the shared
//     allocation region (the nursery);
//   - when one proc fills its share of the allocation region, it "steals"
//     spare memory from other procs — here, chunks beyond its initial
//     share of the common pool;
//   - when the region is completely filled, procs synchronize at clean
//     points and the collection is performed by one of them, sequentially;
//     afterwards the allocation region is redivided;
//   - a store list (SML/NJ's write barrier for ref assignment) records
//     old-to-young pointers so minor collections need not scan the old
//     generation.
//
// The object model is ML-like: a Value is either a tagged immediate
// integer or a pointer to a heap record of Values.  Records are mutable
// through Set, which applies the store-list barrier.
package mlheap

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// Value is a tagged word: immediates carry the low bit set, pointers are
// word indices shifted left.
type Value uint64

// Nil is the null pointer value (index 0 is never allocated).
const Nil Value = 0

// Int makes an immediate integer value.
func Int(i int64) Value { return Value(uint64(i)<<1 | 1) }

// IsInt reports whether v is an immediate integer.
func (v Value) IsInt() bool { return v&1 == 1 }

// Int returns the immediate integer in v.
func (v Value) Int() int64 {
	if !v.IsInt() {
		panic("mlheap: Int on pointer value")
	}
	return int64(v) >> 1
}

// IsPtr reports whether v is a non-nil heap pointer.
func (v Value) IsPtr() bool { return v != Nil && v&1 == 0 }

func ptrTo(idx uint64) Value { return Value(idx << 1) }
func (v Value) addr() uint64 { return uint64(v) >> 1 }

// header encoding: length<<2 | tag, where tag 0 is a scanned record, 2 is
// an unscanned byte object (SML/NJ strings — the paper notes string
// allocation is one of the runtime's assembly helpers), and bit 0 set
// marks a forwarded object whose new address is header>>2.
const (
	hdrForward = 1
	hdrBytes   = 2
)

// ErrNeedGC reports that the allocation region is exhausted (even after
// stealing): the client must synchronize procs at clean points and call
// Collect.
var ErrNeedGC = errors.New("mlheap: allocation region exhausted; collection required")

// Config sizes the heap.
type Config struct {
	NurseryWords int // the shared allocation region
	SemiWords    int // each old-generation semispace
	ChunkWords   int // per-refill chunk carved from the nursery
	Procs        int // number of allocating procs
	// RegionWords sizes the private to-space bump regions parallel
	// collectors grab from the shared top pointer — the collection-time
	// analogue of the nursery's ChunkWords (default 512, clamped to
	// SemiWords).  Irrelevant to the sequential collector.
	RegionWords int
}

// Stats counts heap activity.  It is a merged view of the heap's
// metrics registry (plus the LiveWords gauge).
type Stats struct {
	AllocatedWords int64 // total words ever allocated
	MinorGCs       int
	MajorGCs       int
	Escalations    int   // minor collections escalated to full
	CopiedWords    int64 // words copied by collections
	Steals         int64 // chunk refills beyond a proc's initial share
	LiveWords      int64 // live words in the old generation after last GC
}

// heapMetrics caches the heap's counter handles.  allocWords is sharded
// by proc-allocator index, which makes the bump-allocation fast path
// accounting a private-line atomic add — the mutex the old Stats struct
// took on *every* AllocRecord/AllocBytes serialized exactly the path §5
// demands be synchronization free.
type heapMetrics struct {
	allocWords  *metrics.Counter
	steals      *metrics.Counter
	minorGCs    *metrics.Counter
	majorGCs    *metrics.Counter
	copiedWords *metrics.Counter
	escalations *metrics.Counter // minor collections escalated to full
	recordSlots *metrics.Histogram
	parCopied   *metrics.Histogram // words copied per collector per parallel collection
}

// Heap is a two-generation copying heap shared by several procs.
type Heap struct {
	cfg Config

	words []uint64

	// Layout: [nursery | semiA | semiB]; index 0 is reserved so that a
	// pointer value of 0 can mean nil.
	nurLo, nurHi   uint64
	semiA, semiB   uint64
	fromLo, fromHi uint64 // current old semispace bounds
	toLo           uint64
	oldTop         uint64 // allocation point in the old generation

	mu        sync.Mutex
	nextChunk uint64 // next unissued nursery chunk
	allocs    []*ProcAlloc
	free      []*ProcAlloc // released allocator slots available for reuse
	stores    []store      // global store list (slow-path Heap.Set fallback)

	reg       *metrics.Registry
	m         heapMetrics
	liveWords int64 // gauge, written only under the collection stop
	liveAcct  int64 // live words by copy accounting (excludes parallel fillers)

	// plan is the reusable parallel collection scratch (roots, store
	// list, work pool).  Touched only by the collection coordinator
	// under the stop; reuse keeps StartCollect allocation-free in
	// steady state (see parallel.go's package comment).
	plan *Collection
}

type store struct {
	obj  uint64 // header index of the old object
	slot int
}

// New builds a heap.
func New(cfg Config) *Heap {
	if cfg.ChunkWords <= 0 || cfg.NurseryWords < cfg.ChunkWords || cfg.SemiWords <= 0 || cfg.Procs < 1 {
		panic("mlheap: bad config")
	}
	if cfg.RegionWords <= 0 {
		cfg.RegionWords = 512
	}
	if cfg.RegionWords > cfg.SemiWords {
		cfg.RegionWords = cfg.SemiWords
	}
	total := 1 + cfg.NurseryWords + 2*cfg.SemiWords
	h := &Heap{
		cfg:   cfg,
		words: make([]uint64, total),
		reg:   metrics.NewRegistry(cfg.Procs),
	}
	h.m = heapMetrics{
		allocWords:  h.reg.Counter("mlheap.alloc_words"),
		steals:      h.reg.Counter("mlheap.steals"),
		minorGCs:    h.reg.Counter("mlheap.minor_gcs"),
		majorGCs:    h.reg.Counter("mlheap.major_gcs"),
		copiedWords: h.reg.Counter("mlheap.copied_words"),
		escalations: h.reg.Counter("mlheap.gc_escalations"),
		recordSlots: h.reg.Histogram("mlheap.record_slots", []int64{2, 4, 8, 16, 64, 256}),
		parCopied: h.reg.Histogram("mlheap.par_copied_words",
			[]int64{64, 256, 1024, 4096, 16384, 65536, 1 << 18, 1 << 20}),
	}
	h.nurLo = 1
	h.nurHi = h.nurLo + uint64(cfg.NurseryWords)
	h.semiA = h.nurHi
	h.semiB = h.semiA + uint64(cfg.SemiWords)
	h.fromLo, h.fromHi = h.semiA, h.semiB
	h.toLo = h.semiB
	h.oldTop = h.fromLo
	h.nextChunk = h.nurLo
	return h
}

// Stats returns a merged snapshot of heap counters.  The counter reads
// are lock-free; only the LiveWords gauge takes the heap mutex.
func (h *Heap) Stats() Stats {
	h.mu.Lock()
	live := h.liveWords
	h.mu.Unlock()
	return Stats{
		AllocatedWords: h.m.allocWords.Value(),
		MinorGCs:       int(h.m.minorGCs.Value()),
		MajorGCs:       int(h.m.majorGCs.Value()),
		Escalations:    int(h.m.escalations.Value()),
		CopiedWords:    h.m.copiedWords.Value(),
		Steals:         h.m.steals.Value(),
		LiveWords:      live,
	}
}

// Metrics exposes the heap's registry for unified snapshots.
func (h *Heap) Metrics() *metrics.Registry { return h.reg }

// ProcAlloc is one proc's bump allocator over its current nursery chunk,
// plus the proc's private store buffer: the old-to-young write barrier
// appends here with no synchronization at all — the paper's requirement
// that the allocation-adjacent fast paths be synchronization-free — and
// the buffer is drained into the collection's root set at the stop.
type ProcAlloc struct {
	h          *Heap
	idx        int // allocator index: the proc's metrics shard
	cur, limit uint64
	share      int // chunks this proc may take before refills count as steals
	taken      int
	stores     []store // private store buffer, drained at collection time
}

// NewProcAlloc registers a per-proc allocator; call once per proc.  It
// reuses a slot released by ReleaseProcAlloc before minting a new one,
// and panics when the configured proc count is exhausted.
func (h *Heap) NewProcAlloc() *ProcAlloc {
	pa := h.TryNewProcAlloc()
	if pa == nil {
		panic("mlheap: more proc allocators than configured procs")
	}
	return pa
}

// TryNewProcAlloc is NewProcAlloc returning nil instead of panicking
// when all Config.Procs allocator slots are registered and none are
// free — the admission form a server uses to park-and-retry.
func (h *Heap) TryNewProcAlloc() *ProcAlloc {
	h.mu.Lock()
	defer h.mu.Unlock()
	if n := len(h.free); n > 0 {
		pa := h.free[n-1]
		h.free = h.free[:n-1]
		return pa
	}
	if len(h.allocs) >= h.cfg.Procs {
		return nil
	}
	pa := &ProcAlloc{
		h:     h,
		idx:   len(h.allocs),
		share: h.cfg.NurseryWords / h.cfg.ChunkWords / h.cfg.Procs,
	}
	h.allocs = append(h.allocs, pa)
	return pa
}

// ReleaseProcAlloc returns an allocator slot to the pool for a later
// TryNewProcAlloc.  The slot's private store buffer is flushed to the
// global list so barrier entries recorded by the departing proc are not
// lost; its unexhausted nursery chunk stays with the slot and is resumed
// by the next taker (or reclaimed at the next collection's redivide).
func (h *Heap) ReleaseProcAlloc(pa *ProcAlloc) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(pa.stores) > 0 {
		h.stores = append(h.stores, pa.stores...)
		pa.stores = pa.stores[:0]
	}
	h.free = append(h.free, pa)
}

// refill takes the next chunk from the shared region; refills past the
// proc's initial share are accounted as steals of other procs' spare
// memory.
func (pa *ProcAlloc) refill(need int) bool {
	h := pa.h
	h.mu.Lock()
	defer h.mu.Unlock()
	chunk := uint64(h.cfg.ChunkWords)
	if uint64(need) > chunk {
		chunk = uint64(need)
	}
	if h.nextChunk+chunk > h.nurHi {
		return false
	}
	pa.cur = h.nextChunk
	pa.limit = h.nextChunk + chunk
	h.nextChunk += chunk
	pa.taken++
	if pa.taken > pa.share {
		h.m.steals.Inc(pa.idx)
	}
	return true
}

// AllocRecord allocates a record with the given slots in the calling
// proc's nursery chunk.  It returns ErrNeedGC when the whole allocation
// region is exhausted; the client must then reach a clean point on every
// proc and call Collect.
func (pa *ProcAlloc) AllocRecord(slots ...Value) (Value, error) {
	need := len(slots) + 1
	if pa.cur+uint64(need) > pa.limit {
		if !pa.refill(need) {
			return Nil, ErrNeedGC
		}
	}
	h := pa.h
	idx := pa.cur
	pa.cur += uint64(need)
	h.words[idx] = uint64(len(slots)) << 2
	for i, s := range slots {
		h.words[idx+1+uint64(i)] = uint64(s)
	}
	h.m.allocWords.Add(pa.idx, int64(need))
	h.m.recordSlots.Observe(pa.idx, int64(len(slots)))
	return ptrTo(idx), nil
}

// AllocBytes allocates an unscanned byte object (an ML string) in the
// calling proc's nursery chunk, returning ErrNeedGC when the region is
// exhausted.  Layout: header (tagged hdrBytes), one word holding the
// byte length, then the packed data words — self-describing, so the
// copying collector moves it without a side table and the scan loops
// skip its payload.
func (pa *ProcAlloc) AllocBytes(data []byte) (Value, error) {
	dataWords := (len(data) + 7) / 8
	need := dataWords + 2 // header + length word + data
	if pa.cur+uint64(need) > pa.limit {
		if !pa.refill(need) {
			return Nil, ErrNeedGC
		}
	}
	h := pa.h
	idx := pa.cur
	pa.cur += uint64(need)
	h.words[idx] = uint64(dataWords+1)<<2 | hdrBytes
	h.words[idx+1] = uint64(len(data))
	for i := 0; i < dataWords; i++ {
		var w uint64
		for j := 0; j < 8; j++ {
			if k := i*8 + j; k < len(data) {
				w |= uint64(data[k]) << (8 * uint(j))
			}
		}
		h.words[idx+2+uint64(i)] = w
	}
	h.m.allocWords.Add(pa.idx, int64(need))
	return ptrTo(idx), nil
}

// Bytes returns a copy of a byte object's contents.
func (h *Heap) Bytes(v Value) []byte {
	a := v.addr()
	hdr := h.words[a]
	if hdr&hdrBytes == 0 {
		panic("mlheap: Bytes of non-byte object")
	}
	n := h.words[a+1]
	out := make([]byte, n)
	for k := range out {
		w := h.words[a+2+uint64(k/8)]
		out[k] = byte(w >> (8 * uint(k%8)))
	}
	return out
}

// IsBytes reports whether v is a byte object.
func (h *Heap) IsBytes(v Value) bool {
	return v.IsPtr() && h.words[v.addr()]&hdrBytes != 0
}

// Len returns the number of slots in the record v.
func (h *Heap) Len(v Value) int {
	if !v.IsPtr() {
		panic("mlheap: Len of non-pointer")
	}
	return int(h.words[v.addr()] >> 2)
}

// Get reads slot i of record v.
func (h *Heap) Get(v Value, i int) Value {
	a := v.addr()
	if h.words[a]&hdrBytes != 0 {
		panic("mlheap: Get on byte object")
	}
	n := int(h.words[a] >> 2)
	if i < 0 || i >= n {
		panic(fmt.Sprintf("mlheap: Get slot %d of %d-slot record", i, n))
	}
	return Value(h.words[a+1+uint64(i)])
}

// Set writes slot i of record v, applying the store-list write barrier
// when an old-generation object is made to point into the nursery.
// This form appends to the global store list under the heap mutex; procs
// on the hot path use ProcAlloc.Set, whose barrier is a lock-free append
// to the proc's private buffer.
func (h *Heap) Set(v Value, i int, x Value) {
	a := h.setChecked(v, i, x)
	if h.isOld(a) && x.IsPtr() && h.inNursery(x.addr()) {
		h.mu.Lock()
		h.stores = append(h.stores, store{obj: a, slot: i})
		h.mu.Unlock()
	}
}

// setChecked validates and performs the slot write, returning the
// record's header index for the barrier check.
func (h *Heap) setChecked(v Value, i int, x Value) uint64 {
	a := v.addr()
	if h.words[a]&hdrBytes != 0 {
		panic("mlheap: Set on byte object")
	}
	n := int(h.words[a] >> 2)
	if i < 0 || i >= n {
		panic(fmt.Sprintf("mlheap: Set slot %d of %d-slot record", i, n))
	}
	h.words[a+1+uint64(i)] = uint64(x)
	return a
}

// Set writes slot i of record v through this proc's allocator: the
// old-to-young barrier appends to the proc's private store buffer with
// no lock — §5's synchronization-free assignment path.  The buffer is
// drained into the root set when the world stops to collect.
func (pa *ProcAlloc) Set(v Value, i int, x Value) {
	h := pa.h
	a := h.setChecked(v, i, x)
	if h.isOld(a) && x.IsPtr() && h.inNursery(x.addr()) {
		pa.stores = append(pa.stores, store{obj: a, slot: i})
	}
}

// drainStores moves every proc's private store buffer into the global
// list and returns it.  Called only at a collection stop, when no proc
// is mutating; the clean-point barrier the caller runs provides the
// happens-before edge that makes the plain buffer reads safe.
func (h *Heap) drainStores() []store {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, pa := range h.allocs {
		if len(pa.stores) > 0 {
			h.stores = append(h.stores, pa.stores...)
			pa.stores = pa.stores[:0]
		}
	}
	return h.stores
}

func (h *Heap) inNursery(a uint64) bool { return a >= h.nurLo && a < h.nurHi }
func (h *Heap) isOld(a uint64) bool     { return a >= h.semiA }

// NurseryFree reports the unissued words remaining in the allocation
// region (chunks already issued to procs are not counted).
func (h *Heap) NurseryFree() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.nurHi - h.nextChunk)
}

// Collect performs a sequential stop-the-world collection.  The caller
// is responsible for the clean-point protocol: no proc may allocate or
// touch the heap during the call.  Roots are updated in place.  A minor
// collection copies live nursery data into the old generation; if the
// old generation then exceeds half its semispace, a major collection
// copies it to the other semispace.  When the old generation lacks room
// for even the worst-case minor survivor set, the minor collection
// escalates to a full collection (nursery and old generation copied
// together into the other semispace) instead of failing.
//
// The parallel counterpart is StartCollect/Run in parallel.go; this
// sequential collector remains the ablation baseline.
func (h *Heap) Collect(roots []*Value) {
	h.drainStores()
	if h.minorCapacityShort() {
		h.full(roots)
	} else {
		h.minor(roots)
		if h.oldTop-h.fromLo > uint64(h.cfg.SemiWords)/2 {
			h.major(roots)
		}
	}
	h.mu.Lock()
	h.liveWords = h.liveAcct
	h.mu.Unlock()
}

// issuedWords is the number of nursery words handed out to proc chunks —
// an upper bound on live nursery data.
func (h *Heap) issuedWords() uint64 { return h.nextChunk - h.nurLo }

// minorCapacityShort reports whether a minor collection could overflow
// the old generation: survivors are bounded by the issued nursery words,
// so when those exceed the old generation's remaining room the minor
// must escalate to a full collection.
func (h *Heap) minorCapacityShort() bool {
	return h.issuedWords() > h.fromHi-h.oldTop
}

// minor copies live nursery objects into the old generation (Cheney scan)
// and resets the allocation region.  Collect's capacity pre-check
// guarantees the old generation has room for the worst-case survivor
// set, so the overflow panic in forwardMinor is an invariant assertion,
// not a reachable failure.
func (h *Heap) minor(roots []*Value) {
	before := h.m.copiedWords.Value()
	scan := h.oldTop
	// Roots: client roots plus store-list entries.
	for _, r := range roots {
		*r = h.forwardMinor(*r)
	}
	for _, s := range h.stores {
		slot := s.obj + 1 + uint64(s.slot)
		h.words[slot] = uint64(h.forwardMinor(Value(h.words[slot])))
	}
	h.stores = h.stores[:0]
	// Cheney: scan newly copied objects for further nursery pointers;
	// byte objects carry no pointers and are skipped.
	for scan < h.oldTop {
		hdr := h.words[scan]
		n := hdr >> 2
		if hdr&hdrBytes == 0 {
			for i := uint64(0); i < n; i++ {
				h.words[scan+1+i] = uint64(h.forwardMinor(Value(h.words[scan+1+i])))
			}
		}
		scan += 1 + n
	}
	h.resetNursery()
	h.liveAcct += h.m.copiedWords.Value() - before
	h.m.minorGCs.Inc(0)
}

// resetNursery redivides the allocation region after a collection.
func (h *Heap) resetNursery() {
	h.nextChunk = h.nurLo
	for _, pa := range h.allocs {
		pa.cur, pa.limit, pa.taken = 0, 0, 0
	}
}

// forwardMinor copies a nursery object to the old generation, leaving a
// forwarding header; old-generation and immediate values pass through.
func (h *Heap) forwardMinor(v Value) Value {
	if !v.IsPtr() || !h.inNursery(v.addr()) {
		return v
	}
	a := v.addr()
	hdr := h.words[a]
	if hdr&hdrForward != 0 {
		return ptrTo(hdr >> 2)
	}
	n := hdr >> 2
	if h.oldTop+1+n > h.fromHi {
		panic("mlheap: old generation overflow during minor collection (escalation pre-check violated)")
	}
	dst := h.oldTop
	h.words[dst] = hdr
	copy(h.words[dst+1:dst+1+n], h.words[a+1:a+1+n])
	h.oldTop = dst + 1 + n
	h.words[a] = dst<<2 | hdrForward
	h.m.copiedWords.Add(0, int64(1+n))
	return ptrTo(dst)
}

// major copies the live old generation into the other semispace and swaps
// spaces.
func (h *Heap) major(roots []*Value) {
	before := h.m.copiedWords.Value()
	dstLo := h.toLo
	dstHi := dstLo + uint64(h.cfg.SemiWords)
	top := dstLo
	var forward func(v Value) Value
	forward = func(v Value) Value {
		if !v.IsPtr() || !h.isOldFrom(v.addr()) {
			return v
		}
		a := v.addr()
		hdr := h.words[a]
		if hdr&hdrForward != 0 {
			return ptrTo(hdr >> 2)
		}
		n := hdr >> 2
		if top+1+n > dstHi {
			panic("mlheap: live data exceeds a semispace during major collection")
		}
		dst := top
		h.words[dst] = hdr
		copy(h.words[dst+1:dst+1+n], h.words[a+1:a+1+n])
		top = dst + 1 + n
		h.words[a] = dst<<2 | hdrForward
		h.m.copiedWords.Add(0, int64(1+n))
		return ptrTo(dst)
	}
	scan := dstLo
	for _, r := range roots {
		*r = forward(*r)
	}
	for scan < top {
		hdr := h.words[scan]
		n := hdr >> 2
		if hdr&hdrBytes == 0 {
			for i := uint64(0); i < n; i++ {
				h.words[scan+1+i] = uint64(forward(Value(h.words[scan+1+i])))
			}
		}
		scan += 1 + n
	}
	h.swapSemis(top)
	h.liveAcct = h.m.copiedWords.Value() - before
	h.m.majorGCs.Inc(0)
}

// swapSemis flips from- and to-space after a major or full collection.
func (h *Heap) swapSemis(top uint64) {
	h.fromLo, h.toLo = h.toLo, h.fromLo
	h.fromHi = h.fromLo + uint64(h.cfg.SemiWords)
	h.oldTop = top
}

// full is the minor-to-major escalation: when a burst of survivors could
// overflow the old generation mid-minor, the nursery and the live old
// generation are collected together into the other semispace.  The store
// list is simply dropped — the full scan rediscovers every old-to-young
// edge.  A full collection does both generations' work, so it counts as
// one minor and one major, plus an escalation.
func (h *Heap) full(roots []*Value) {
	before := h.m.copiedWords.Value()
	dstLo := h.toLo
	dstHi := dstLo + uint64(h.cfg.SemiWords)
	top := dstLo
	var forward func(v Value) Value
	forward = func(v Value) Value {
		if !v.IsPtr() {
			return v
		}
		a := v.addr()
		if !h.inNursery(a) && !h.isOldFrom(a) {
			return v
		}
		hdr := h.words[a]
		if hdr&hdrForward != 0 {
			return ptrTo(hdr >> 2)
		}
		n := hdr >> 2
		if top+1+n > dstHi {
			panic("mlheap: live data exceeds a semispace during full collection")
		}
		dst := top
		h.words[dst] = hdr
		copy(h.words[dst+1:dst+1+n], h.words[a+1:a+1+n])
		top = dst + 1 + n
		h.words[a] = dst<<2 | hdrForward
		h.m.copiedWords.Add(0, int64(1+n))
		return ptrTo(dst)
	}
	scan := dstLo
	for _, r := range roots {
		*r = forward(*r)
	}
	for scan < top {
		hdr := h.words[scan]
		n := hdr >> 2
		if hdr&hdrBytes == 0 {
			for i := uint64(0); i < n; i++ {
				h.words[scan+1+i] = uint64(forward(Value(h.words[scan+1+i])))
			}
		}
		scan += 1 + n
	}
	h.stores = h.stores[:0]
	h.swapSemis(top)
	h.resetNursery()
	h.liveAcct = h.m.copiedWords.Value() - before
	h.m.minorGCs.Inc(0)
	h.m.majorGCs.Inc(0)
	h.m.escalations.Inc(0)
}

// isOldFrom reports whether a lies in the current old from-space region
// holding live data (below oldTop when called during major).
func (h *Heap) isOldFrom(a uint64) bool {
	return a >= h.fromLo && a < h.fromHi
}
