package mlheap

// Parallel stop-the-world collection: every proc that arrives at the
// clean-point barrier can become a collector.  The design follows the
// shape OC4MC gave OCaml's runtime and MPL gives MaPLe's:
//
//   - the root set (client root cells plus drained store-list entries)
//     is partitioned into fixed-size work units;
//   - each collector copies into a private bump region grabbed from a
//     shared atomic top-of-to-space pointer (grab-new-region on
//     overflow, the collection-time analogue of nursery chunks);
//   - forwarding pointers are installed with a claim-then-copy CAS on
//     the header word: racing forwards of the same object resolve to
//     one winner, the losers spin on the header until the winner
//     publishes the real forwarding pointer, so no object is ever
//     copied twice;
//   - the Cheney scan is driven from a shared grey-region queue: when a
//     collector retires a region with unscanned objects left in it, the
//     unscanned (object-aligned) tail is published for any collector to
//     steal;
//   - a region's unused tail is sealed with a filler byte object so
//     to-space remains linearly parseable despite per-collector holes;
//     live-word accounting sums copied words and therefore excludes
//     fillers;
//   - when the plan predicts a chained major (worst-case survivors would
//     push the old generation past half full), the minor-then-major
//     chain is replaced by one combined evacuation of both generations
//     into the other semispace, so minor survivors are copied once, not
//     twice — the sequential ablation keeps the paper-faithful chain.
//
// Memory-ordering contract (what keeps this -race clean): from-space
// header words are touched only through sync/atomic during a parallel
// phase; payload reads are read-only (mutators are stopped and losers
// never copy); every root cell has exactly one writer (deduplication at
// plan build), while store slots — which may appear in the drained list
// more than once — are read and written through sync/atomic, every
// racing writer storing the same forwarded value (forwarding is
// idempotent by the header CAS); and grey-region handoff goes through
// the work-pool mutex, ordering a publisher's plain to-space writes
// before any stealer's reads.
//
// The plan is scratch reused across collections (Heap.plan): at
// thousands of collections per second a fresh plan per stop — maps for
// deduplication, a work pool, unit slices — makes the collector a
// significant Go-allocation source of its own, and the host runtime's
// GC pauses then surface as outliers in *our* measured tail pauses.
// Steady state allocates nothing per collection.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// busyHdr is the claim sentinel a collector CASes into a from-space
// header before copying: a forwarding header whose target is the
// reserved index 0, which no real forward can produce.
const busyHdr = hdrForward

const (
	rootUnitCells  = 64  // root cells per work unit
	storeUnitSlots = 256 // store entries per work unit
	claimSpinYield = 64  // spins on a busy header before yielding the OS thread

	// coordYieldStride is how many work units the coordinating proc
	// processes between scheduler yields.  On a host with fewer cores
	// than procs nothing else can run while the coordinator spins
	// through the copy — Go only preempts a tight loop after
	// milliseconds — so without the yields no thread could ever arrive
	// mid-stop to steal work, and "every arriver becomes a collector"
	// would hold only on paper.  Yielding every few units keeps the
	// overhead negligible while letting arriving procs reach the helper
	// path and shorten the stop.
	coordYieldStride = 8
)

// phase kinds: which space a collection phase evacuates.  Escalation
// (nursery + old generation together when the old generation cannot
// absorb the survivors) always runs the sequential full collector: its
// pre-check would have to charge parallel region waste against the same
// semispace budget twice over, which is strictly harder to satisfy than
// the minor's check — the tightly packing sequential copy is the only
// sound remedy when capacity is short.  phaseFull, by contrast, is an
// *elective* combined evacuation chosen when capacity is plentiful; see
// StartCollect.
const (
	phaseMinor = iota // nursery -> old generation
	phaseMajor        // old from-space -> other semispace
	phaseFull         // nursery + old from-space -> other semispace, in one pass
	phaseSeq          // fallback: run the sequential collector under the stop
)

// Collection is one stop-the-world collection plan.  The proc that
// completes the clean-point barrier calls StartCollect then Run; any
// other stopped proc (or a GC-aware lock spinner) may call Help
// concurrently to steal work.  Run returns with the heap collected and
// every root cell updated in place.
type Collection struct {
	h      *Heap
	kind   int
	roots  []*Value // deduplicated root cells
	stores []store  // drained store-list entries (minor only; duplicates benign)

	cur atomic.Pointer[workState] // active phase's work pool; nil when idle

	top   atomic.Uint64 // shared to-space bump pointer for region grabs
	limit uint64        // to-space end for the current phase

	work workState // reusable phase work pool (reset per phase)

	finished atomic.Bool
}

// grey is an object-aligned span of copied-but-unscanned to-space.
type grey struct{ lo, hi uint64 }

// workState is one phase's work pool: undone units, the busy-collector
// count that (with empty queues) detects termination, and the pool of
// collector states so a helper that leaves and returns resumes an
// already-open region instead of stranding it.
type workState struct {
	c    *Collection
	kind int

	// pending counts queued units (roots, stores, greys).  A zero read
	// lets an idle helper bail out of step without taking the mutex —
	// on a saturated host the barrier waiters poll step constantly, and
	// uncontended polls must not serialize against working collectors.
	pending atomic.Int64

	mu         sync.Mutex
	rootUnits  [][]*Value
	storeUnits [][]store
	greys      []grey
	busy       int
	done       bool
	pool       []*gcWorker
	created    int
}

// gcWorker is one collector's private state: its open to-space region
// (lo==0 means none; index 0 is reserved so it is never a region start)
// and the words it has copied this collection.
type gcWorker struct {
	ws                    *workState
	ord                   int
	lo, scan, bump, limit uint64
	copied                int64
}

// workerCap bounds how many collector states a phase creates — and with
// them the worst-case to-space waste from open regions, which the
// capacity pre-checks account for.
func (h *Heap) workerCap() int { return h.cfg.Procs + 2 }

// parNeed is the to-space capacity a parallel phase must reserve to
// copy at most live words.  A region is only retired when an object
// smaller than RegionWords/8 fails to fit (larger objects get dedicated
// exact-size spans and leave the region open), so each retired region
// wastes under 1/8 of the RegionWords it consumed — total filler waste
// is bounded by live/7.  On top of that, every collector may hold one
// open region whose tail goes unused.
func (h *Heap) parNeed(live uint64) uint64 {
	return live + (live+6)/7 + uint64(h.workerCap()+1)*uint64(h.cfg.RegionWords)
}

// StartCollect builds a parallel collection plan under the stop: drains
// and deduplicates the store list, deduplicates the root cells (one
// writer per cell from here on), and picks the phase chain — a parallel
// minor (optionally chaining a major), or a sequential fallback when
// the heap is too tight for region-granular parallelism to be safe
// (including the escalation case, which the sequential collector packs
// exactly).  The caller then
// runs the plan with Run; other stopped procs may call Help.
func (h *Heap) StartCollect(roots []*Value) *Collection {
	c := h.plan
	if c == nil {
		c = &Collection{h: h}
		c.work.c = c
		h.plan = c
	}
	c.finished.Store(false)
	c.cur.Store(nil)

	// Deduplicate root cells so each has exactly one writer during the
	// copy.  The root set is small — one cell per proc root plus the
	// in-flight pinned refs — so a quadratic scan over reused scratch
	// beats building a map: the plan must not allocate (see the package
	// comment on plan reuse).
	c.roots = c.roots[:0]
outer:
	for _, r := range roots {
		for _, q := range c.roots {
			if q == r {
				continue outer
			}
		}
		c.roots = append(c.roots, r)
	}
	// Store entries are not deduplicated: duplicate slots are handled
	// with atomic slot accesses in step, every racing writer storing
	// the same forwarded value.
	c.stores = append(c.stores[:0], h.drainStores()...)
	h.stores = h.stores[:0]

	issued := h.issuedWords()
	oldLive := h.oldTop - h.fromLo
	if oldLive+issued > uint64(h.cfg.SemiWords)/2 && h.parNeed(oldLive+issued) <= uint64(h.cfg.SemiWords) {
		// Predictive combined evacuation: survivors are bounded by the
		// issued nursery words, so when even the worst case would push
		// the old generation past half full, a chained major is likely
		// — and a minor-then-major chain copies every minor survivor
		// twice.  Evacuate nursery and old generation together into the
		// other semispace instead: each live object moves exactly once,
		// and the store list drops entirely (a full scan rediscovers
		// every old-to-young edge, and the entries would dangle once the
		// old objects move).  This fires a major at most one collection
		// earlier than the chain trigger would, in exchange for removing
		// the double copy from exactly the collections that set the
		// pause tail.
		c.kind = phaseFull
		c.stores = c.stores[:0]
		c.top.Store(h.toLo)
		c.limit = h.toLo + uint64(h.cfg.SemiWords)
		c.cur.Store(c.work.reset(phaseFull))
		return c
	}
	if h.parNeed(issued) > h.fromHi-h.oldTop {
		// The old generation cannot absorb the worst-case survivor set
		// plus parallel region waste: run the sequential collector,
		// whose minor needs no waste budget and whose escalation packs
		// both generations tightly into the other semispace.
		c.kind = phaseSeq
		return c
	}
	c.kind = phaseMinor
	c.top.Store(h.oldTop)
	c.limit = h.fromHi
	c.cur.Store(c.work.reset(phaseMinor))
	return c
}

// reset re-arms the reusable work pool for a phase: units are rebuilt
// over the plan's scratch slices and pooled collector states are wiped,
// but the pool itself (and its created count) carries over, so steady
// state re-arms without allocating.  A stale helper still holding the
// previous collection's pointer transparently becomes a helper of the
// new phase — the pool is valid work either way.
func (ws *workState) reset(kind int) *workState {
	c := ws.c
	ws.mu.Lock()
	ws.kind = kind
	ws.done = false
	ws.rootUnits = ws.rootUnits[:0]
	ws.storeUnits = ws.storeUnits[:0]
	ws.greys = ws.greys[:0]
	for i := 0; i < len(c.roots); i += rootUnitCells {
		j := i + rootUnitCells
		if j > len(c.roots) {
			j = len(c.roots)
		}
		ws.rootUnits = append(ws.rootUnits, c.roots[i:j])
	}
	if kind == phaseMinor {
		for i := 0; i < len(c.stores); i += storeUnitSlots {
			j := i + storeUnitSlots
			if j > len(c.stores) {
				j = len(c.stores)
			}
			ws.storeUnits = append(ws.storeUnits, c.stores[i:j])
		}
	}
	for _, wk := range ws.pool {
		wk.lo, wk.scan, wk.bump, wk.limit, wk.copied = 0, 0, 0, 0, 0
	}
	ws.pending.Store(int64(len(ws.rootUnits) + len(ws.storeUnits)))
	ws.mu.Unlock()
	return ws
}

// Run executes the plan to completion: the caller collects alongside
// any helpers, waits for the phase to drain, chains a major phase when
// the minor leaves the old generation past half full, and finalizes
// heap state.  wait is called between participation rounds while other
// collectors are still busy; nil means runtime.Gosched.
func (c *Collection) Run(wait func()) {
	h := c.h
	if c.kind == phaseSeq {
		// Too tight for parallel regions: the whole collection runs
		// sequentially under the stop.  Re-seed the global store list the
		// plan drained so Collect's minor sees the barrier entries.
		h.mu.Lock()
		h.stores = append(h.stores[:0], c.stores...)
		h.mu.Unlock()
		h.Collect(c.roots)
		c.finished.Store(true)
		return
	}

	ws := c.cur.Load()
	c.runPhase(ws, wait)
	copied := ws.finish()
	h.m.copiedWords.Add(0, copied)

	if c.kind == phaseFull {
		// Combined evacuation: both generations moved in one pass.  It
		// does a minor's and a major's work, so it counts as both —
		// mirroring the sequential escalation's accounting, minus the
		// escalation counter (this path is elective, not a capacity
		// emergency).
		c.cur.Store(nil)
		h.swapSemis(c.top.Load())
		h.mu.Lock()
		h.resetNursery()
		h.mu.Unlock()
		h.liveAcct = copied
		h.m.minorGCs.Inc(0)
		h.m.majorGCs.Inc(0)
	} else {
		h.oldTop = c.top.Load()
		h.mu.Lock()
		h.resetNursery()
		h.mu.Unlock()
		h.liveAcct += copied
		h.m.minorGCs.Inc(0)
		if h.oldTop-h.fromLo > uint64(h.cfg.SemiWords)/2 {
			c.runMajor(wait)
		} else {
			c.cur.Store(nil)
		}
	}

	h.mu.Lock()
	h.liveWords = h.liveAcct
	h.mu.Unlock()
	c.finished.Store(true)
}

// runMajor chains the major phase after a minor: live old-generation
// data moves to the other semispace.  If region waste could make the
// parallel copy overflow a semispace the sequential major runs instead
// (it packs tightly and panics only when live data truly exceeds a
// semispace).
func (c *Collection) runMajor(wait func()) {
	h := c.h
	live := h.oldTop - h.fromLo
	if h.parNeed(live) > uint64(h.cfg.SemiWords) {
		c.cur.Store(nil)
		h.major(c.roots)
		return
	}
	c.top.Store(h.toLo)
	c.limit = h.toLo + uint64(h.cfg.SemiWords)
	ws := c.work.reset(phaseMajor)
	c.cur.Store(ws)
	c.runPhase(ws, wait)
	copied := ws.finish()
	c.cur.Store(nil)
	h.m.copiedWords.Add(0, copied)
	h.swapSemis(c.top.Load())
	h.liveAcct = copied
	h.m.majorGCs.Inc(0)
}

// runPhase participates in a phase until it is fully drained: no unit
// queued and no collector busy.
func (c *Collection) runPhase(ws *workState, wait func()) {
	for {
		n := 0
		for ws.step() {
			if n++; n%coordYieldStride == 0 {
				// Yield between units so threads arriving mid-stop get
				// scheduled, fail their attach, and reach the helper
				// path — see coordYieldStride.
				runtime.Gosched()
			}
		}
		if ws.quiescent() {
			return
		}
		if wait != nil {
			wait()
		} else {
			runtime.Gosched()
		}
	}
}

// Help lets any stopped proc — a barrier waiter, or a GC-aware lock
// spinner passing its clean point mid-spin — steal work from the active
// phase.  It returns when no work is momentarily available (more may
// appear later; callers poll), reporting whether it processed at least
// one unit so callers can yield only on empty polls.  Safe to call at
// any time, including after the collection finished, when it is a
// no-op.
func (c *Collection) Help() bool {
	any := false
	for {
		ws := c.cur.Load()
		if ws == nil || !ws.step() {
			return any
		}
		any = true
	}
}

// Finished reports whether Run has completed.
func (c *Collection) Finished() bool { return c.finished.Load() }

// step claims one work unit, processes it, and drains the collector's
// own region.  False when no unit is available right now.
func (ws *workState) step() bool {
	if ws.pending.Load() == 0 {
		// Nothing queued: don't serialize an idle poll against working
		// collectors.  More work may appear (busy collectors publish
		// greys); callers poll.
		return false
	}
	ws.mu.Lock()
	if ws.done {
		ws.mu.Unlock()
		return false
	}
	wk := ws.workerLocked()
	if wk == nil {
		ws.mu.Unlock()
		return false
	}
	kind, ri, si, g, ok := ws.takeLocked()
	if !ok {
		ws.pool = append(ws.pool, wk)
		ws.mu.Unlock()
		return false
	}
	ws.busy++
	ws.mu.Unlock()

	switch kind {
	case 0:
		for _, r := range ri {
			*r = ws.forward(wk, *r)
		}
	case 1:
		// Store slots may appear in more than one unit (the drained list
		// is not deduplicated): racing collectors each load, forward, and
		// store — forwarding is idempotent, so both store the identical
		// to-space value, and the atomics keep the benign race -race
		// clean.
		h := ws.c.h
		for _, s := range si {
			slot := s.obj + 1 + uint64(s.slot)
			v := Value(atomic.LoadUint64(&h.words[slot]))
			atomic.StoreUint64(&h.words[slot], uint64(ws.forward(wk, v)))
		}
	case 2:
		ws.scanSpan(wk, g.lo, g.hi)
	}
	ws.scanOwn(wk)

	ws.mu.Lock()
	ws.busy--
	ws.pool = append(ws.pool, wk)
	ws.mu.Unlock()
	return true
}

// workerLocked reuses a pooled collector state or creates one, up to
// the worker cap the capacity pre-checks budgeted for.
func (ws *workState) workerLocked() *gcWorker {
	if n := len(ws.pool); n > 0 {
		wk := ws.pool[n-1]
		ws.pool = ws.pool[:n-1]
		return wk
	}
	if ws.created >= ws.c.h.workerCap() {
		return nil
	}
	wk := &gcWorker{ws: ws, ord: ws.created}
	ws.created++
	return wk
}

// takeLocked pops one unit, preferring grey spans (hot in cache, and
// draining them bounds queue growth) over root and store units.
func (ws *workState) takeLocked() (kind int, ri []*Value, si []store, g grey, ok bool) {
	if n := len(ws.greys); n > 0 {
		g = ws.greys[n-1]
		ws.greys = ws.greys[:n-1]
		ws.pending.Add(-1)
		return 2, nil, nil, g, true
	}
	if n := len(ws.rootUnits); n > 0 {
		ri = ws.rootUnits[n-1]
		ws.rootUnits = ws.rootUnits[:n-1]
		ws.pending.Add(-1)
		return 0, ri, nil, grey{}, true
	}
	if n := len(ws.storeUnits); n > 0 {
		si = ws.storeUnits[n-1]
		ws.storeUnits = ws.storeUnits[:n-1]
		ws.pending.Add(-1)
		return 1, nil, si, grey{}, true
	}
	return 0, nil, nil, grey{}, false
}

// quiescent reports phase termination: nothing queued, nobody busy.
// Units are only ever added by busy collectors, so the state is stable.
func (ws *workState) quiescent() bool {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return ws.busy == 0 && len(ws.greys) == 0 && len(ws.rootUnits) == 0 && len(ws.storeUnits) == 0
}

// finish closes the phase: marks it done (step refuses new claims),
// seals every pooled collector's open region tail, and accounts copied
// words.  Called by Run after quiescent; every collector state is back
// in the pool by then.
func (ws *workState) finish() int64 {
	h := ws.c.h
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.done = true
	var total int64
	for _, wk := range ws.pool {
		wk.seal()
		if wk.copied > 0 {
			h.m.parCopied.Observe(wk.ord%h.cfg.Procs, wk.copied)
			total += wk.copied
		}
	}
	return total
}

// inFrom reports whether address a lies in the space this phase
// evacuates.
func (ws *workState) inFrom(a uint64) bool {
	h := ws.c.h
	switch ws.kind {
	case phaseMinor:
		return h.inNursery(a)
	case phaseFull:
		return h.inNursery(a) || h.isOldFrom(a)
	default:
		return h.isOldFrom(a)
	}
}

// forward returns v's to-space address, copying the object if this
// collector wins the publication race.  Two protocols by object size:
//
// Small objects (under the dedicated-span threshold, so always
// region-allocated) use copy-then-CAS: copy the payload into the
// collector's private region first, then publish with a single CAS of
// the forwarding header.  The forward pointer is the only path to dst
// and the CAS orders the plain payload writes before any reader that
// observes it, so no collector ever sees a partial copy; a lost race
// retracts the private bump exactly (nothing else touched the region
// since alloc), so the waste is zero and the capacity pre-check is
// unchanged.  One CAS per object — against claim-then-copy this drops
// the separate full-barrier publication store and all loser spins,
// which is most of the parallel collector's constant-factor tax over
// the sequential copy on a small host.
//
// Large objects (dedicated exact-size spans from the shared top, which
// cannot be retracted) keep claim-then-copy: CAS the header to
// busyHdr, copy, publish with an atomic store; losers spin until the
// forward appears.  Exactly one copy of each object is ever made
// either way.
func (ws *workState) forward(wk *gcWorker, v Value) Value {
	if !v.IsPtr() {
		return v
	}
	a := v.addr()
	if !ws.inFrom(a) {
		return v
	}
	h := ws.c.h
	region := uint64(h.cfg.RegionWords)
	for spins := 1; ; spins++ {
		hdr := atomic.LoadUint64(&h.words[a])
		if hdr&hdrForward != 0 {
			if hdr != busyHdr {
				return ptrTo(hdr >> 2)
			}
			// Claimed: a winner is copying a large object.  Wait for the
			// real forwarding pointer, yielding the OS thread
			// occasionally in case the winner's goroutine is descheduled.
			if spins%claimSpinYield == 0 {
				runtime.Gosched()
			}
			continue
		}
		n := hdr >> 2
		if 1+n < region/8 {
			// Small object: copy first, publish with one CAS.  alloc can
			// never return a dedicated span below the threshold, so dst
			// is region memory and retraction on a lost race is exact.
			dst, _ := wk.alloc(1 + n)
			h.words[dst] = hdr
			copy(h.words[dst+1:dst+1+n], h.words[a+1:a+1+n])
			if atomic.CompareAndSwapUint64(&h.words[a], hdr, dst<<2|hdrForward) {
				wk.copied += int64(1 + n)
				return ptrTo(dst)
			}
			wk.bump = dst // lost: retract and reload the winner's pointer
			continue
		}
		if atomic.CompareAndSwapUint64(&h.words[a], hdr, busyHdr) {
			dst, dedicated := wk.alloc(1 + n)
			h.words[dst] = hdr
			copy(h.words[dst+1:dst+1+n], h.words[a+1:a+1+n])
			atomic.StoreUint64(&h.words[a], dst<<2|hdrForward)
			wk.copied += int64(1 + n)
			if dedicated && hdr&hdrBytes == 0 {
				// A dedicated span is outside this collector's region, so
				// its own Cheney loop will never reach it: publish the
				// single-object span as grey work.  The mutex orders the
				// payload writes above before any stealer's reads.
				ws.mu.Lock()
				ws.greys = append(ws.greys, grey{dst, dst + 1 + n})
				ws.pending.Add(1)
				ws.mu.Unlock()
			}
			return ptrTo(dst)
		}
	}
}

// scanOwn is the collector's private Cheney loop: scan objects its own
// region holds between scan and bump.  The scan pointer is advanced
// past an object before its slots are forwarded, so if a forward
// switches regions mid-object (publishing [scan, bump) as grey), the
// published span is object-aligned and excludes the object in progress
// — whose remaining slots this collector alone finishes.
func (ws *workState) scanOwn(wk *gcWorker) {
	h := ws.c.h
	for wk.scan < wk.bump {
		obj := wk.scan
		hdr := h.words[obj]
		n := hdr >> 2
		wk.scan = obj + 1 + n
		if hdr&hdrBytes == 0 {
			for i := uint64(0); i < n; i++ {
				h.words[obj+1+i] = uint64(ws.forward(wk, Value(h.words[obj+1+i])))
			}
		}
	}
}

// scanSpan scans a stolen grey span: a fixed object-aligned range of
// to-space copied by another collector.
func (ws *workState) scanSpan(wk *gcWorker, lo, hi uint64) {
	h := ws.c.h
	for pos := lo; pos < hi; {
		hdr := h.words[pos]
		n := hdr >> 2
		if hdr&hdrBytes == 0 {
			for i := uint64(0); i < n; i++ {
				h.words[pos+1+i] = uint64(ws.forward(wk, Value(h.words[pos+1+i])))
			}
		}
		pos += 1 + n
	}
}

// alloc bumps n words out of the collector's region.  The second
// result reports a dedicated out-of-region span (the caller must
// publish it for scanning).
func (wk *gcWorker) alloc(n uint64) (uint64, bool) {
	if wk.lo != 0 && wk.bump+n <= wk.limit {
		d := wk.bump
		wk.bump += n
		return d, false
	}
	return wk.allocSlow(n)
}

// allocSlow handles an object that does not fit the open region.  A
// large object (≥ RegionWords/8) gets a dedicated exact-size span and
// leaves the region open, so only a small object can force a region
// switch — capping each sealed hole at RegionWords/8, the bound
// parNeed's capacity pre-check relies on.  A switch seals the old
// region's tail and publishes its unscanned object-aligned span as
// grey work before grabbing a fresh region from the shared top.
func (wk *gcWorker) allocSlow(n uint64) (uint64, bool) {
	ws := wk.ws
	c := ws.c
	region := uint64(c.h.cfg.RegionWords)
	if wk.lo != 0 && n >= region/8 {
		lo := c.top.Add(n) - n
		if lo+n > c.limit {
			panic("mlheap: to-space overflow during parallel collection (capacity pre-check violated)")
		}
		return lo, true
	}
	if wk.lo != 0 {
		wk.seal()
		if wk.scan < wk.bump {
			ws.mu.Lock()
			ws.greys = append(ws.greys, grey{wk.scan, wk.bump})
			ws.pending.Add(1)
			ws.mu.Unlock()
		}
	}
	size := region
	if n > size {
		size = n
	}
	lo := c.top.Add(size) - size
	if lo+size > c.limit {
		panic("mlheap: to-space overflow during parallel collection (capacity pre-check violated)")
	}
	wk.lo, wk.scan, wk.limit = lo, lo, lo+size
	wk.bump = lo + n
	return lo, false
}

// seal writes a filler byte object over the region tail [bump, limit)
// so a linear walk of to-space parses cleanly across the hole.  The
// filler is unreachable, so it is never forwarded and dies at the next
// collection of its space.
func (wk *gcWorker) seal() {
	if wk.lo == 0 {
		return
	}
	if hole := wk.limit - wk.bump; hole > 0 {
		wk.ws.c.h.words[wk.bump] = (hole-1)<<2 | hdrBytes
	}
}
