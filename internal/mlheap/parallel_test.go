package mlheap

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// parHeap is sized so the parallel minor/major paths actually run:
// parNeed(issued nursery) must fit the old generation with room for
// live data to accumulate (see parallel.go's capacity pre-checks).
func parHeap(procs int) *Heap {
	return New(Config{
		NurseryWords: 4096,
		SemiWords:    16384,
		ChunkWords:   128,
		RegionWords:  64,
		Procs:        procs,
	})
}

// buildShared grows a deterministic heap graph with heavy sharing: cons
// cells whose third slot points back at a pseudo-random earlier cell,
// plus interleaved byte objects.  Returns the list head; rng makes runs
// reproducible across the two heaps being compared.
func buildShared(t *testing.T, h *Heap, pa *ProcAlloc, rng *rand.Rand, cells int, root *Value) {
	t.Helper()
	recent := make([]Value, 0, 64)
	for i := 0; i < cells; i++ {
		back := *root
		if len(recent) > 0 {
			back = recent[rng.Intn(len(recent))]
		}
		cell, err := pa.AllocRecord(Int(int64(i)), *root, back)
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if len(recent) == cap(recent) {
			copy(recent, recent[1:])
			recent = recent[:len(recent)-1]
		}
		recent = append(recent, cell)
		*root = cell
		if i%17 == 0 {
			if _, err := pa.AllocBytes([]byte{byte(i), byte(i >> 8)}); err != nil {
				t.Fatalf("bytes %d: %v", i, err)
			}
		}
	}
}

// graphSig walks the reachable graph from root and produces a canonical
// signature: values in DFS order, with back-edges encoded as
// first-visit ordinals.  Two isomorphic graphs on different heaps (or
// the same heap before/after collection) produce identical signatures.
func graphSig(h *Heap, root Value) []uint64 {
	seen := make(map[uint64]uint64)
	var out []uint64
	var walk func(v Value)
	walk = func(v Value) {
		if !v.IsPtr() {
			out = append(out, uint64(v))
			return
		}
		a := v.addr()
		if id, ok := seen[a]; ok {
			out = append(out, 1<<62|id)
			return
		}
		seen[a] = uint64(len(seen))
		if h.IsBytes(v) {
			b := h.Bytes(v)
			out = append(out, 1<<61|uint64(len(b)))
			for _, x := range b {
				out = append(out, uint64(x))
			}
			return
		}
		n := h.Len(v)
		out = append(out, 1<<60|uint64(n))
		for i := 0; i < n; i++ {
			walk(h.Get(v, i))
		}
	}
	walk(root)
	return out
}

func sigsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// collectParallel runs one parallel collection with extra helper
// goroutines stealing work, the way barrier arrivers and GC-aware lock
// spinners do in gcsync.
func collectParallel(h *Heap, roots []*Value, helpers int) {
	c := h.StartCollect(roots)
	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !c.Finished() {
				c.Help()
				runtime.Gosched()
			}
		}()
	}
	c.Run(nil)
	wg.Wait()
}

// TestParallelMatchesSequential grows identical graphs on two heaps,
// collects one sequentially and one in parallel, and requires identical
// reachable structure and identical live-word accounting (fillers are
// excluded from liveWords by construction, so the totals must agree
// exactly).
func TestParallelMatchesSequential(t *testing.T) {
	seqH, parH := parHeap(4), parHeap(4)
	seqPA, parPA := seqH.NewProcAlloc(), parH.NewProcAlloc()
	var seqRoot, parRoot Value = Nil, Nil

	buildShared(t, seqH, seqPA, rand.New(rand.NewSource(9)), 900, &seqRoot)
	buildShared(t, parH, parPA, rand.New(rand.NewSource(9)), 900, &parRoot)

	before := graphSig(seqH, seqRoot)
	seqH.Collect([]*Value{&seqRoot})
	collectParallel(parH, []*Value{&parRoot}, 3)

	if got := graphSig(seqH, seqRoot); !sigsEqual(before, got) {
		t.Fatal("sequential collection altered the reachable graph")
	}
	if got := graphSig(parH, parRoot); !sigsEqual(before, got) {
		t.Fatal("parallel collection altered the reachable graph")
	}
	ss, ps := seqH.Stats(), parH.Stats()
	if ss.LiveWords != ps.LiveWords {
		t.Fatalf("live words diverge: sequential %d, parallel %d", ss.LiveWords, ps.LiveWords)
	}
	if ps.MinorGCs == 0 {
		t.Fatal("parallel heap recorded no minor collection")
	}
}

// TestParallelForwardingTorture drives many collection rounds with the
// maximum helper count under -race: a heavily shared graph means racing
// forwards of the same object on every round, exercising the
// claim-then-copy CAS protocol.  After each round the graph must be
// intact and match the sequential twin.
func TestParallelForwardingTorture(t *testing.T) {
	seqH, parH := parHeap(8), parHeap(8)
	seqPA, parPA := seqH.NewProcAlloc(), parH.NewProcAlloc()
	var seqRoot, parRoot Value = Nil, Nil

	for round := 0; round < 12; round++ {
		seed := int64(100 + round)
		buildShared(t, seqH, seqPA, rand.New(rand.NewSource(seed)), 250, &seqRoot)
		buildShared(t, parH, parPA, rand.New(rand.NewSource(seed)), 250, &parRoot)

		seqH.Collect([]*Value{&seqRoot})
		collectParallel(parH, []*Value{&parRoot}, 7)

		want := graphSig(seqH, seqRoot)
		got := graphSig(parH, parRoot)
		if !sigsEqual(want, got) {
			t.Fatalf("round %d: parallel graph diverged from sequential", round)
		}
		if s, p := seqH.Stats().LiveWords, parH.Stats().LiveWords; s != p {
			t.Fatalf("round %d: live words diverge: sequential %d, parallel %d", round, s, p)
		}
	}
	if parH.Stats().MajorGCs == 0 {
		t.Fatal("torture rounds never chained a major collection")
	}
}

// TestParallelBigObjects forces the dedicated-span path: objects at or
// above RegionWords/8 leave the open region in place and are published
// as single-object grey spans.
func TestParallelBigObjects(t *testing.T) {
	h := parHeap(4)
	pa := h.NewProcAlloc()
	var root Value = Nil
	big := make([]Value, h.cfg.RegionWords/4)
	for i := range big {
		big[i] = Int(int64(i))
	}
	for i := 0; i < 40; i++ {
		wide, err := pa.AllocRecord(big...)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := pa.AllocRecord(Int(int64(i)), root, wide)
		if err != nil {
			t.Fatal(err)
		}
		root = cell
	}
	before := graphSig(h, root)
	collectParallel(h, []*Value{&root}, 3)
	if got := graphSig(h, root); !sigsEqual(before, got) {
		t.Fatal("collection altered graph containing big objects")
	}
	if h.Stats().MinorGCs == 0 {
		t.Fatal("no minor collection ran")
	}
}

// TestParallelStoreBuffers checks the per-proc store buffers: an
// old-to-young edge written through ProcAlloc.Set (no global lock) must
// keep the young object alive across a parallel collection.
func TestParallelStoreBuffers(t *testing.T) {
	h := parHeap(2)
	pa := h.NewProcAlloc()
	old, err := pa.AllocRecord(Nil, Nil)
	if err != nil {
		t.Fatal(err)
	}
	root := old
	collectParallel(h, []*Value{&root}, 1) // promote old to the old generation

	young, err := pa.AllocRecord(Int(41), Int(42))
	if err != nil {
		t.Fatal(err)
	}
	pa.Set(root, 0, young)
	// No root references young directly: only the store buffer can save it.
	collectParallel(h, []*Value{&root}, 1)
	got := h.Get(root, 0)
	if !got.IsPtr() || h.Get(got, 1).Int() != 42 {
		t.Fatal("old-to-young edge recorded via ProcAlloc.Set lost across parallel collection")
	}
}

// reachableWords sums the header+payload words of every object
// reachable from root — the exact value LiveWords must equal after a
// collection that moves everything (major or combined full), since such
// a collection copies precisely the reachable set.
func reachableWords(h *Heap, root Value) uint64 {
	seen := make(map[uint64]bool)
	var total uint64
	var walk func(v Value)
	walk = func(v Value) {
		if !v.IsPtr() || seen[v.addr()] {
			return
		}
		seen[v.addr()] = true
		n := h.Len(v)
		if h.IsBytes(v) {
			hdr := h.words[v.addr()]
			total += 1 + hdr>>2
			return
		}
		total += 1 + uint64(n)
		for i := 0; i < n; i++ {
			walk(h.Get(v, i))
		}
	}
	walk(root)
	return total
}

// TestParallelCombinedEvacuation: once live data holds more than half a
// semispace, the planner must replace the minor-then-major chain with
// one combined evacuation of both generations (phaseFull) — each
// survivor copied once — counted as one minor plus one major with no
// escalation, preserving the graph and leaving live-word accounting
// exactly equal to the reachable set.
func TestParallelCombinedEvacuation(t *testing.T) {
	h := parHeap(4)
	pa := h.NewProcAlloc()
	var root Value = Nil
	rng := rand.New(rand.NewSource(31))
	// Grow fully-live data past half a semispace; every cell stays
	// reachable from root, so collections promote it all.
	for h.Stats().LiveWords <= int64(h.cfg.SemiWords)/2 {
		buildShared(t, h, pa, rng, 300, &root)
		collectParallel(h, []*Value{&root}, 2)
	}
	buildShared(t, h, pa, rng, 50, &root)

	before := graphSig(h, root)
	st := h.Stats()
	c := h.StartCollect([]*Value{&root})
	if c.kind != phaseFull {
		t.Fatalf("planner chose phase %d, want phaseFull with %d live words", c.kind, st.LiveWords)
	}
	c.Run(nil)
	if got := graphSig(h, root); !sigsEqual(before, got) {
		t.Fatal("combined evacuation altered the reachable graph")
	}
	now := h.Stats()
	if now.MinorGCs != st.MinorGCs+1 || now.MajorGCs != st.MajorGCs+1 {
		t.Fatalf("combined evacuation counted minor %d->%d major %d->%d, want both +1",
			st.MinorGCs, now.MinorGCs, st.MajorGCs, now.MajorGCs)
	}
	if now.Escalations != st.Escalations {
		t.Fatal("elective combined evacuation must not count as an escalation")
	}
	if want := int64(reachableWords(h, root)); now.LiveWords != want {
		t.Fatalf("live words %d after combined evacuation, want exactly the reachable %d", now.LiveWords, want)
	}
}

// TestParallelSequentialFallback: a heap too tight for region-granular
// parallelism (parNeed exceeds old-generation room) must fall back to
// the sequential collector inside the plan and still collect correctly.
func TestParallelSequentialFallback(t *testing.T) {
	h := New(Config{NurseryWords: 1024, SemiWords: 4096, ChunkWords: 64, RegionWords: 512, Procs: 2})
	pa := h.NewProcAlloc()
	var root Value = Nil
	buildShared(t, h, pa, rand.New(rand.NewSource(5)), 120, &root)
	before := graphSig(h, root)
	c := h.StartCollect([]*Value{&root})
	c.Help() // must be a harmless no-op on a sequential plan
	c.Run(nil)
	if !c.Finished() {
		t.Fatal("plan did not finish")
	}
	if got := graphSig(h, root); !sigsEqual(before, got) {
		t.Fatal("sequential-fallback collection altered the reachable graph")
	}
	if h.Stats().MinorGCs == 0 {
		t.Fatal("fallback ran no collection")
	}
}

// TestEscalationInsteadOfPanic: retaining more data than the old
// generation can absorb must escalate to a full collection (nursery and
// old generation repacked into the other semispace) instead of
// panicking, and must count the escalation.
func TestEscalationInsteadOfPanic(t *testing.T) {
	h := New(Config{NurseryWords: 2048, SemiWords: 3072, ChunkWords: 64, RegionWords: 64, Procs: 1})
	pa := h.NewProcAlloc()
	var roots []Value
	rootPtrs := func() []*Value {
		ps := make([]*Value, len(roots))
		for i := range roots {
			ps[i] = &roots[i]
		}
		return ps
	}
	// Retain about 1300 words (well past the 1024-word threshold where a
	// full 2048-word nursery can no longer fit the old generation) while
	// churning garbage, so a minor's survivor bound eventually exceeds
	// old-generation room and must escalate rather than panic.
	for i := 0; h.Stats().Escalations == 0; i++ {
		if i > 20000 {
			t.Fatal("no escalation after 20000 allocations")
		}
		r, err := pa.AllocRecord(Int(int64(len(roots))), Int(7), Int(8), Int(9))
		if err == ErrNeedGC {
			c := h.StartCollect(rootPtrs())
			c.Run(nil)
			continue
		} else if err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 && len(roots) < 260 {
			roots = append(roots, r)
		}
	}
	if h.Stats().Escalations == 0 {
		t.Fatal("no minor-to-full escalation recorded")
	}
	for i, r := range roots {
		if h.Get(r, 0).Int() != int64(i) || h.Get(r, 3).Int() != 9 {
			t.Fatalf("root %d corrupted after escalation", i)
		}
	}
}
