package mlheap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallHeap(procs int) *Heap {
	return New(Config{NurseryWords: 1024, SemiWords: 4096, ChunkWords: 64, Procs: procs})
}

func TestIntValues(t *testing.T) {
	for _, i := range []int64{0, 1, -1, 42, -12345, 1 << 40, -(1 << 40)} {
		v := Int(i)
		if !v.IsInt() || v.Int() != i {
			t.Fatalf("Int(%d) round trip = %d", i, v.Int())
		}
		if v.IsPtr() {
			t.Fatalf("Int(%d) claims to be a pointer", i)
		}
	}
}

func TestAllocAndAccess(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	r, err := pa.AllocRecord(Int(1), Int(2), Int(3))
	if err != nil {
		t.Fatal(err)
	}
	if h.Len(r) != 3 {
		t.Fatalf("Len = %d", h.Len(r))
	}
	for i := 0; i < 3; i++ {
		if h.Get(r, i).Int() != int64(i+1) {
			t.Fatalf("slot %d = %d", i, h.Get(r, i).Int())
		}
	}
	h.Set(r, 1, Int(99))
	if h.Get(r, 1).Int() != 99 {
		t.Fatal("Set did not stick")
	}
}

func TestNestedRecords(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	inner, _ := pa.AllocRecord(Int(7))
	outer, _ := pa.AllocRecord(inner, Int(8))
	if h.Get(h.Get(outer, 0), 0).Int() != 7 {
		t.Fatal("nested access failed")
	}
}

func TestExhaustionSignalsGC(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	var err error
	for i := 0; i < 10000; i++ {
		if _, err = pa.AllocRecord(Int(int64(i))); err != nil {
			break
		}
	}
	if err != ErrNeedGC {
		t.Fatalf("err = %v, want ErrNeedGC", err)
	}
}

func TestCollectPreservesReachableGraph(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	// list of (i, prev) cells
	var list Value = Nil
	for i := 0; i < 20; i++ {
		cell, err := pa.AllocRecord(Int(int64(i)), list)
		if err != nil {
			t.Fatal(err)
		}
		list = cell
	}
	h.Collect([]*Value{&list})
	// Walk the list: 19, 18, ..., 0.
	v := list
	for i := 19; i >= 0; i-- {
		if !v.IsPtr() {
			t.Fatalf("list truncated at %d", i)
		}
		if h.Get(v, 0).Int() != int64(i) {
			t.Fatalf("element = %d, want %d", h.Get(v, 0).Int(), i)
		}
		v = h.Get(v, 1)
	}
	if v != Nil {
		t.Fatal("list does not end in Nil")
	}
}

func TestSharingPreserved(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	shared, _ := pa.AllocRecord(Int(5))
	a, _ := pa.AllocRecord(shared)
	b, _ := pa.AllocRecord(shared)
	h.Collect([]*Value{&a, &b})
	if h.Get(a, 0) != h.Get(b, 0) {
		t.Fatal("shared object duplicated by collection")
	}
	h.Set(h.Get(a, 0), 0, Int(6))
	if h.Get(h.Get(b, 0), 0).Int() != 6 {
		t.Fatal("sharing broken: write through a not visible through b")
	}
}

func TestCyclePreserved(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	a, _ := pa.AllocRecord(Int(1), Nil)
	b, _ := pa.AllocRecord(Int(2), a)
	h.Set(a, 1, b) // a -> b -> a
	h.Collect([]*Value{&a})
	if h.Get(a, 0).Int() != 1 {
		t.Fatal("a corrupted")
	}
	b2 := h.Get(a, 1)
	if h.Get(b2, 0).Int() != 2 {
		t.Fatal("b corrupted")
	}
	if h.Get(b2, 1) != a {
		t.Fatal("cycle broken")
	}
}

func TestGarbageReclaimed(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	var keep Value = Nil
	// Allocate far more than the nursery, keeping only a little, with
	// collections whenever the region fills.
	allocated := 0
	for i := 0; i < 50; i++ {
		for {
			cell, err := pa.AllocRecord(Int(int64(i)), keep)
			if err == ErrNeedGC {
				h.Collect([]*Value{&keep})
				continue
			}
			allocated++
			if i%10 == 0 {
				keep = cell
			}
			break
		}
	}
	st := h.Stats()
	if st.MinorGCs == 0 {
		t.Skip("workload too small to force a GC")
	}
	if st.LiveWords >= st.AllocatedWords {
		t.Fatalf("no garbage reclaimed: live %d of %d", st.LiveWords, st.AllocatedWords)
	}
}

func TestStoreListCatchesOldToYoung(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	old, _ := pa.AllocRecord(Nil)
	h.Collect([]*Value{&old}) // old is now in the old generation
	young, _ := pa.AllocRecord(Int(77))
	h.Set(old, 0, young) // old -> young: must hit the store list
	// Collect with only old as a root: young must survive via the barrier.
	h.Collect([]*Value{&old})
	if h.Get(h.Get(old, 0), 0).Int() != 77 {
		t.Fatal("old-to-young pointer lost: store list broken")
	}
}

func TestMajorCollection(t *testing.T) {
	cfg := Config{NurseryWords: 256, SemiWords: 800, ChunkWords: 32, Procs: 1}
	h := New(cfg)
	pa := h.NewProcAlloc()
	var keep Value = Nil
	for i := 0; i < 500; i++ {
		for {
			cell, err := pa.AllocRecord(Int(int64(i)), keep)
			if err == ErrNeedGC {
				h.Collect([]*Value{&keep})
				continue
			}
			if i%3 == 0 {
				keep = cell
			}
			break
		}
	}
	st := h.Stats()
	if st.MajorGCs == 0 {
		t.Fatalf("no major collection after %d minors", st.MinorGCs)
	}
	// The kept chain must still be intact.
	n := 0
	for v := keep; v != Nil; v = h.Get(v, 1) {
		n++
	}
	if n == 0 {
		t.Fatal("kept chain lost")
	}
}

func TestPerProcChunksAndStealing(t *testing.T) {
	h := New(Config{NurseryWords: 640, SemiWords: 4096, ChunkWords: 64, Procs: 2})
	a := h.NewProcAlloc()
	b := h.NewProcAlloc()
	_ = b
	// Proc a allocates greedily: its share is 640/64/2 = 5 chunks; beyond
	// that it steals from the common pool.
	for {
		if _, err := a.AllocRecord(Int(1), Int(2), Int(3)); err != nil {
			break
		}
	}
	st := h.Stats()
	if st.Steals == 0 {
		t.Fatal("greedy proc never stole spare memory")
	}
}

func TestParallelAllocationSafe(t *testing.T) {
	h := New(Config{NurseryWords: 1 << 16, SemiWords: 1 << 16, ChunkWords: 256, Procs: 4})
	done := make(chan int, 4)
	for p := 0; p < 4; p++ {
		pa := h.NewProcAlloc()
		go func() {
			n := 0
			for {
				if _, err := pa.AllocRecord(Int(int64(n))); err != nil {
					break
				}
				n++
			}
			done <- n
		}()
	}
	total := 0
	for p := 0; p < 4; p++ {
		total += <-done
	}
	st := h.Stats()
	if st.AllocatedWords != int64(total*2) { // 1 header + 1 slot each
		t.Fatalf("allocated %d words for %d records", st.AllocatedWords, total)
	}
}

// TestQuickGraphIsomorphism builds a random object graph both in the heap
// and as a Go mirror, forces collections, and verifies the heap graph
// stays isomorphic to the mirror.
func TestQuickGraphIsomorphism(t *testing.T) {
	type node struct {
		val  int64
		kids []*node
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(Config{NurseryWords: 512, SemiWords: 8192, ChunkWords: 64, Procs: 1})
		pa := h.NewProcAlloc()

		var mirror []*node
		var heapv []Value
		alloc := func(val int64, kids []int) Value {
			slots := make([]Value, 0, len(kids)+1)
			slots = append(slots, Int(val))
			n := &node{val: val}
			for _, k := range kids {
				slots = append(slots, heapv[k])
				n.kids = append(n.kids, mirror[k])
			}
			for {
				v, err := pa.AllocRecord(slots...)
				if err == ErrNeedGC {
					h.Collect(ptrs(heapv))
					continue
				}
				mirror = append(mirror, n)
				heapv = append(heapv, v)
				return v
			}
		}
		for i := 0; i < 100; i++ {
			var kids []int
			for k := 0; k < rng.Intn(3) && len(heapv) > 0; k++ {
				kids = append(kids, rng.Intn(len(heapv)))
			}
			alloc(rng.Int63n(1000), kids)
		}
		h.Collect(ptrs(heapv))
		// Verify isomorphism with cycle-safe comparison.
		seen := map[[2]any]bool{}
		var eq func(v Value, n *node) bool
		eq = func(v Value, n *node) bool {
			key := [2]any{v, n}
			if seen[key] {
				return true
			}
			seen[key] = true
			if h.Len(v) != len(n.kids)+1 {
				return false
			}
			if h.Get(v, 0).Int() != n.val {
				return false
			}
			for i, kid := range n.kids {
				if !eq(h.Get(v, i+1), kid) {
					return false
				}
			}
			return true
		}
		for i := range heapv {
			if !eq(heapv[i], mirror[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func ptrs(vs []Value) []*Value {
	out := make([]*Value, len(vs))
	for i := range vs {
		out[i] = &vs[i]
	}
	return out
}

func TestBytesRoundTrip(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	for _, s := range []string{"", "a", "hello", "exactly8", "longer than eight bytes"} {
		v, err := pa.AllocBytes([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		if !h.IsBytes(v) {
			t.Fatalf("%q: not recognized as bytes", s)
		}
		if got := string(h.Bytes(v)); got != s {
			t.Fatalf("round trip %q = %q", s, got)
		}
	}
}

func TestBytesSurviveCollection(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	str, _ := pa.AllocBytes([]byte("the quick brown fox"))
	rec, _ := pa.AllocRecord(str, Int(5))
	// Churn until collections happen.
	var keep Value = rec
	for i := 0; i < 2000; i++ {
		c, err := pa.AllocRecord(Int(int64(i)), keep)
		if err == ErrNeedGC {
			h.Collect([]*Value{&keep})
			continue
		}
		if i%50 == 0 {
			keep = c
		}
	}
	h.Collect([]*Value{&keep})
	if h.Stats().MinorGCs == 0 {
		t.Skip("no GC exercised")
	}
	// Walk down to the original record and check the string.
	v := keep
	for h.Len(v) == 2 && !h.Get(v, 0).IsPtr() {
		v = h.Get(v, 1)
	}
	for {
		if h.Len(v) == 2 {
			if first := h.Get(v, 0); first.IsPtr() && h.IsBytes(first) {
				if got := string(h.Bytes(first)); got != "the quick brown fox" {
					t.Fatalf("string corrupted: %q", got)
				}
				return
			}
		}
		v = h.Get(v, 1)
		if v == Nil {
			t.Fatal("original record lost")
		}
	}
}

func TestBytesMixedGraphScanSkipsPayload(t *testing.T) {
	// A byte payload that looks like a plausible pointer must NOT be
	// chased by the collector.
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	evil := make([]byte, 16)
	for i := range evil {
		evil[i] = 0x02 // even word: looks like a pointer value
	}
	str, _ := pa.AllocBytes(evil)
	root, _ := pa.AllocRecord(str)
	h.Collect([]*Value{&root})
	if got := h.Bytes(h.Get(root, 0)); len(got) != 16 || got[3] != 0x02 {
		t.Fatalf("payload corrupted: %v", got)
	}
}

func TestGetOnBytesPanics(t *testing.T) {
	h := smallHeap(1)
	pa := h.NewProcAlloc()
	v, _ := pa.AllocBytes([]byte("x"))
	defer func() {
		if recover() == nil {
			t.Fatal("Get on bytes did not panic")
		}
	}()
	h.Get(v, 0)
}
