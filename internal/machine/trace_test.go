package machine

import (
	"reflect"
	"testing"

	"repro/internal/trace"
)

// DESIGN.md invariant: the simulation is deterministic — the same seed
// must produce the identical virtual-time event trace, with tracing
// enabled.  Guards against nondeterminism leaking into the desim engine
// or the tracer's clock plumbing.
func TestTraceDeterministic(t *testing.T) {
	run := func() []trace.Event {
		m := New(SequentS81(), 42, 0.05)
		tr := m.EnableTracing(1 << 12)
		lock := m.NewLock()
		for i := 0; i < 4; i++ {
			m.Spawn(func(p *P) {
				for j := 0; j < 50; j++ {
					p.Work(10_000, 2_000)
					p.Lock(lock)
					p.Compute(40)
					p.Unlock(lock)
				}
			})
		}
		m.Run()
		return tr.Events()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("trace is empty; workload produced no GC or lock-wait events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different traces: %d vs %d events", len(a), len(b))
	}
	// The counters the trace summarizes must be deterministic too.
	s1 := New(SequentS81(), 7, 0.05)
	s2 := New(SequentS81(), 7, 0.05)
	for _, m := range []*Machine{s1, s2} {
		m.Spawn(func(p *P) { p.Work(100_000, 30_000) })
		m.Run()
	}
	if !reflect.DeepEqual(s1.Totals(), s2.Totals()) {
		t.Fatalf("same seed produced different totals:\n%+v\n%+v", s1.Totals(), s2.Totals())
	}
}
