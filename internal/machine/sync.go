package machine

import "repro/internal/desim"

// SimLock is a simulated mutex lock: acquiring and releasing cost the
// machine's lock latency (§6 fn. 4), and contended acquires wait in FIFO
// order with the wait accounted as lock contention.
type SimLock struct {
	m       *Machine
	held    bool
	waiters []*P
}

// NewLock returns a fresh unlocked simulated mutex.
func (m *Machine) NewLock() *SimLock { return &SimLock{m: m} }

// Held reports whether the lock is currently held.
func (l *SimLock) Held() bool { return l.held }

// Lock latency is split into three parts of the configured pair cost:
// an acquire phase paid before holding (the try_lock bus transaction),
// a short serialized hold phase (the store that other procs observe),
// and a release phase paid after the lock is already free again.  Only
// the hold phase serializes contending procs, matching the behaviour of
// the paper's machines where the 46 µs Sequent round trip is mostly
// latency, not occupancy.
func lockSplit(pair int64) (acq, hold, rel int64) {
	acq = pair * 2 / 5
	hold = pair / 5
	rel = pair - acq - hold
	return
}

// Lock acquires l, paying the machine's acquire latency and queueing
// behind the current holder if contended.
func (p *P) Lock(l *SimLock) {
	p.stall()
	mm := &p.m.mm
	mm.lockOps.Inc(p.id)
	acq, hold, _ := lockSplit(p.m.cfg.LockPairNS)
	mm.busy.Add(p.id, acq)
	p.dp.Advance(acq)
	if l.held {
		l.waiters = append(l.waiters, p)
		start := p.m.eng.Now()
		p.dp.Park()
		// Resumed holding the lock (direct hand-off from the releaser).
		waited := p.m.eng.Now() - start
		mm.lockWait.Add(p.id, waited)
		p.m.tracer.Emit(p.id, p.m.evLockWait, waited)
	} else {
		l.held = true
	}
	mm.busy.Add(p.id, hold)
	p.dp.Advance(hold)
}

// TryLock attempts to acquire l without waiting.
func (p *P) TryLock(l *SimLock) bool {
	p.stall()
	mm := &p.m.mm
	mm.lockOps.Inc(p.id)
	acq, hold, _ := lockSplit(p.m.cfg.LockPairNS)
	mm.busy.Add(p.id, acq)
	p.dp.Advance(acq)
	if l.held {
		return false
	}
	l.held = true
	mm.busy.Add(p.id, hold)
	p.dp.Advance(hold)
	return true
}

// Unlock releases l; a queued waiter receives the lock directly, and the
// release latency is paid after the hand-off, overlapping the next
// holder's critical section.
func (p *P) Unlock(l *SimLock) {
	if !l.held {
		panic("machine: Unlock of unheld SimLock")
	}
	_, _, rel := lockSplit(p.m.cfg.LockPairNS)
	if len(l.waiters) > 0 {
		q := l.waiters[0]
		l.waiters = l.waiters[1:]
		// held stays true: ownership passes to q.
		p.dp.Unpark(q.dp)
	} else {
		l.held = false
	}
	p.m.mm.busy.Add(p.id, rel)
	p.dp.Advance(rel)
}

// SimBarrier synchronizes a fixed set of procs at phase boundaries; time
// spent waiting is idle time (the machine has nothing to run there).
type SimBarrier struct {
	m       *Machine
	parties int
	arrived int
	waiting []*P
}

// NewBarrier returns a cyclic barrier for the given number of procs.
func (m *Machine) NewBarrier(parties int) *SimBarrier {
	if parties < 1 {
		panic("machine: barrier needs at least one party")
	}
	return &SimBarrier{m: m, parties: parties}
}

// Await blocks until all parties arrive; the last arrival releases the
// rest.
func (p *P) Await(b *SimBarrier) {
	p.stall()
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		waiting := b.waiting
		b.waiting = nil
		for _, q := range waiting {
			p.dp.Unpark(q.dp)
		}
		return
	}
	b.waiting = append(b.waiting, p)
	start := p.m.eng.Now()
	p.dp.Park()
	p.m.mm.idle.Add(p.id, p.m.eng.Now()-start)
}

// LockLatency measures one uncontended lock+unlock round trip on the
// machine model, regenerating the §6 footnote comparison.
func (m *Machine) LockLatency() desim.Time {
	var dur desim.Time
	m.Spawn(func(p *P) {
		l := m.NewLock()
		start := p.Now()
		p.Lock(l)
		p.Unlock(l)
		dur = p.Now() - start
	})
	m.Run()
	return dur
}
