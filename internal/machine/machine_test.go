package machine

import (
	"testing"
	"testing/quick"
)

func small(procs int) Config {
	return Config{
		Name:           "test",
		Procs:          procs,
		MIPS:           1e6, // 1 instr = 1 µs: easy arithmetic
		BusBytesPerSec: 4e6, // 1 word (4B) = 1 µs
		WordBytes:      4,
		LockPairNS:     2_000,
		NurseryWords:   1 << 40, // effectively no GC unless shrunk
		GCWordsPerSec:  1e6,
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	m := New(small(1), 1, 0)
	m.Spawn(func(p *P) { p.Compute(1000) })
	if end := m.Run(); end != 1_000_000 {
		t.Fatalf("end = %d ns, want 1ms", end)
	}
	if m.Stats()[0].BusyNS != 1_000_000 {
		t.Fatalf("busy = %d", m.Stats()[0].BusyNS)
	}
}

func TestAllocUncontendedBus(t *testing.T) {
	m := New(small(1), 1, 0)
	m.Spawn(func(p *P) { p.Alloc(1000) })
	if end := m.Run(); end != 1_000_000 {
		t.Fatalf("end = %d, want 1ms (1000 words at 1µs/word)", end)
	}
	if m.BusBytes() != 4000 {
		t.Fatalf("bus bytes = %d", m.BusBytes())
	}
}

func TestBusContentionSerializes(t *testing.T) {
	// Two procs allocating simultaneously share the bus: makespan is the
	// sum of transfers, and the later proc records bus wait.
	m := New(small(2), 1, 0)
	for i := 0; i < 2; i++ {
		m.Spawn(func(p *P) { p.Alloc(1000) })
	}
	if end := m.Run(); end != 2_000_000 {
		t.Fatalf("end = %d, want 2ms (serialized bus)", end)
	}
	tot := m.Totals()
	if tot.BusWaitNS != 1_000_000 {
		t.Fatalf("bus wait = %d, want 1ms", tot.BusWaitNS)
	}
}

func TestComputeOverlapsAcrossProcs(t *testing.T) {
	m := New(small(4), 1, 0)
	for i := 0; i < 4; i++ {
		m.Spawn(func(p *P) { p.Compute(1000) })
	}
	if end := m.Run(); end != 1_000_000 {
		t.Fatalf("end = %d, want 1ms (perfect overlap)", end)
	}
}

func TestGCTriggersAndPausesWorld(t *testing.T) {
	cfg := small(2)
	cfg.NurseryWords = 1000
	m := New(cfg, 1, 0.5) // 500 live words -> 500µs sequential GC
	m.Spawn(func(p *P) {
		p.Alloc(1000) // fills the nursery: GC at t=1ms, until 1.5ms
		p.Compute(100)
	})
	m.Spawn(func(p *P) {
		p.Compute(500)  // ends at 0.5ms
		p.Compute(2000) // straddles the GC; next op stalls
		p.Compute(100)
	})
	m.Run()
	gcs, gcNS := m.GCs()
	if gcs != 1 {
		t.Fatalf("gcs = %d, want 1", gcs)
	}
	if gcNS != 500_000 {
		t.Fatalf("gc time = %d, want 500µs", gcNS)
	}
	tot := m.Totals()
	if tot.GCWorkNS != 500_000 {
		t.Fatalf("gc work = %d", tot.GCWorkNS)
	}
}

func TestLockMutualExclusionAndHandoff(t *testing.T) {
	m := New(small(2), 1, 0)
	l := m.NewLock()
	var order []int
	for i := 0; i < 2; i++ {
		i := i
		m.Spawn(func(p *P) {
			p.Lock(l)
			order = append(order, i)
			p.Compute(1000)
			p.Unlock(l)
		})
	}
	m.Run()
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
	tot := m.Totals()
	if tot.LockWaitNS == 0 {
		t.Fatal("no lock contention recorded for overlapping critical sections")
	}
	if tot.LockOps != 2 {
		t.Fatalf("lock ops = %d", tot.LockOps)
	}
}

func TestTryLock(t *testing.T) {
	m := New(small(1), 1, 0)
	m.Spawn(func(p *P) {
		l := m.NewLock()
		if !p.TryLock(l) {
			t.Error("TryLock on free lock failed")
		}
		if p.TryLock(l) {
			t.Error("TryLock on held lock succeeded")
		}
		p.Unlock(l)
	})
	m.Run()
}

func TestBarrierReleasesTogether(t *testing.T) {
	m := New(small(4), 1, 0)
	b := m.NewBarrier(4)
	var releaseTimes []int64
	for i := 0; i < 4; i++ {
		i := i
		m.Spawn(func(p *P) {
			p.Compute(int64(1000 * (i + 1))) // staggered arrivals
			p.Await(b)
			releaseTimes = append(releaseTimes, p.Now())
		})
	}
	m.Run()
	for _, ts := range releaseTimes {
		if ts != 4_000_000 {
			t.Fatalf("release times = %v, want all 4ms", releaseTimes)
		}
	}
	// Stragglers' waits are idle time.
	if m.Totals().IdleNS != (3+2+1)*1_000_000 {
		t.Fatalf("idle = %d, want 6ms", m.Totals().IdleNS)
	}
}

func TestLockLatencyMatchesConfig(t *testing.T) {
	for name, mk := range Configs {
		cfg := mk()
		m := New(cfg, 1, 0)
		got := m.LockLatency()
		if got != cfg.LockPairNS {
			t.Errorf("%s: lock latency = %d ns, want %d", name, got, cfg.LockPairNS)
		}
	}
}

func TestSequentVsSGILockLatency(t *testing.T) {
	// The §6 footnote: 46 µs on the Sequent versus 6 µs on the SGI.
	seq := New(SequentS81(), 1, 0).LockLatency()
	sgi := New(SGI4D380S(), 1, 0).LockLatency()
	if seq != 46_000 || sgi != 6_000 {
		t.Fatalf("lock latency sequent=%dns sgi=%dns, want 46µs and 6µs", seq, sgi)
	}
}

func TestSpawnBeyondProcsPanics(t *testing.T) {
	m := New(small(1), 1, 0)
	m.Spawn(func(p *P) {})
	defer func() {
		if recover() == nil {
			t.Fatal("over-spawn did not panic")
		}
	}()
	m.Spawn(func(p *P) {})
}

// TestQuickTimeAccounting: for random programs, every proc's accounted
// time categories sum to its active lifetime.
func TestQuickTimeAccounting(t *testing.T) {
	prop := func(work []uint16, allocs []uint16, seed int64) bool {
		cfg := small(4)
		cfg.NurseryWords = 5000
		m := New(cfg, seed, 0.3)
		for i := 0; i < 4; i++ {
			i := i
			m.Spawn(func(p *P) {
				for j := range work {
					if j%4 == i {
						w := int64(work[j])
						var a int64
						if j < len(allocs) {
							a = int64(allocs[j])
						}
						p.Work(w, a)
					}
				}
			})
		}
		m.Run()
		for _, s := range m.Stats() {
			lifetime := s.EndNS - s.StartNS
			sum := s.BusyNS + s.BusWaitNS + s.LockWaitNS + s.GCWorkNS + s.GCStallNS + s.IdleNS
			if sum != lifetime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickDeterminism: identical seeds and programs give identical
// makespans and stats.
func TestQuickDeterminism(t *testing.T) {
	prop := func(work []uint16, seed int64) bool {
		run := func() (int64, int64) {
			cfg := small(3)
			cfg.NurseryWords = 2000
			m := New(cfg, seed, 0.25)
			for i := 0; i < 3; i++ {
				i := i
				m.Spawn(func(p *P) {
					for j := range work {
						if j%3 == i {
							p.Work(int64(work[j]), int64(work[j]/2))
						}
					}
				})
			}
			end := m.Run()
			return end, m.Totals().BusyNS
		}
		e1, b1 := run()
		e2, b2 := run()
		return e1 == e2 && b1 == b2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCacheResidentNurseryAvoidsBus(t *testing.T) {
	cfg := small(1)
	cfg.CacheResidentNursery = true
	m := New(cfg, 1, 0)
	m.Spawn(func(p *P) { p.Alloc(1000) })
	m.Run()
	if m.BusBytes() != 0 {
		t.Fatalf("cache-resident allocation moved %d bus bytes", m.BusBytes())
	}
	// Allocation still costs cache-store time: 1000 words at 1 MIPS = 1ms.
	if m.Stats()[0].BusyNS != 1_000_000 {
		t.Fatalf("busy = %d", m.Stats()[0].BusyNS)
	}
}

func TestCacheResidentSurvivorsStillCrossBus(t *testing.T) {
	cfg := small(1)
	cfg.CacheResidentNursery = true
	cfg.NurseryWords = 1000
	m := New(cfg, 1, 0.5)
	m.Spawn(func(p *P) { p.Alloc(1000) })
	m.Run()
	if m.BusBytes() != 500*4 {
		t.Fatalf("survivor traffic = %d bytes, want 2000", m.BusBytes())
	}
}

func TestConcurrentGCDoesNotPauseWorld(t *testing.T) {
	mk := func(conc bool) int64 {
		cfg := small(2)
		cfg.NurseryWords = 1000
		cfg.ConcurrentGC = conc
		m := New(cfg, 1, 0.5)
		m.Spawn(func(p *P) {
			p.Alloc(1000) // triggers GC
		})
		m.Spawn(func(p *P) {
			p.Compute(100)
			p.Compute(1200) // ends mid-collection under STW
			p.Compute(100)  // stalls at this clean point under STW
		})
		m.Run()
		return m.Totals().GCStallNS
	}
	if stw := mk(false); stw == 0 {
		t.Fatal("stop-the-world GC stalled nobody")
	}
	if conc := mk(true); conc != 0 {
		t.Fatalf("concurrent GC stalled procs for %d ns", conc)
	}
}
