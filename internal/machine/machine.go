// Package machine models the shared-memory multiprocessors of the paper's
// evaluation (§6) on top of the desim engine.  The original hardware is
// unobtainable, so the models capture exactly the five effects the paper's
// analysis attributes its results to:
//
//  1. a shared memory bus of finite bandwidth with FCFS queueing, which
//     every heap allocation crosses — SML/NJ's heap allocation re-uses
//     memory only after collections, so "this strategy insures a
//     cache-miss on almost every allocation" (§7);
//  2. sequential stop-the-world garbage collection at clean points, with
//     per-proc allocation regions (§5), which serializes a fraction of the
//     computation;
//  3. application parallelism profiles — procs with no ready task idle;
//  4. mutex contention on run queues and data locks;
//  5. machine lock latency (§6 fn. 4: 46 µs on the Sequent, 6 µs on the
//     SGI).
//
// Times are virtual nanoseconds.  A Machine is single-client: build,
// Spawn workload procs, Run, read stats.
package machine

import (
	"fmt"

	"repro/internal/desim"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Config describes a machine model.
//
// The last two fields implement the paper's §7 future-work proposals as
// switchable model features, so their predicted effect can be measured:
//
//   - CacheResidentNursery: "using a multi-generational collector with
//     very small young generations that can fit in the cache" — when
//     set, allocation stores hit the cache instead of crossing the bus;
//     only collection survivors generate bus traffic.
//   - ConcurrentGC: "other important areas to address include concurrent
//     garbage collection" — when set, collections do not stop the world;
//     the collecting proc and the bus are occupied but other procs keep
//     running.
type Config struct {
	Name           string
	Procs          int     // physical processors
	MIPS           float64 // useful instructions per second per processor
	BusBytesPerSec float64 // shared-bus bandwidth
	WordBytes      int64   // heap word size
	LockPairNS     int64   // uncontended lock+unlock round trip
	NurseryWords   int64   // shared allocation region (divided among procs)
	GCWordsPerSec  float64 // sequential copying-collector speed

	CacheResidentNursery bool // §7: allocation hits the cache, not the bus
	ConcurrentGC         bool // §7: collection overlaps the mutators
}

// SequentS81 models the evaluation machine: a 16-processor Sequent
// Symmetry S81 with 16 MHz Intel 80386 CPUs (~4 MIPS each), a ~25 MB/s
// shared bus, 46 µs mutex lock round trips, and 100 MB of memory.
func SequentS81() Config {
	return Config{
		Name:           "sequent-s81",
		Procs:          16,
		MIPS:           4e6,
		BusBytesPerSec: 25e6,
		WordBytes:      4,
		LockPairNS:     46_000,
		NurseryWords:   256 * 1024,
		GCWordsPerSec:  4e5, // ~a word per 10 instructions of collector work
	}
}

// SGI4D380S models the 8-processor SGI 4D/380S: ~33 MHz R3000 CPUs
// (~25 MIPS), "much faster processors but only slightly larger bus
// bandwidth" (~30 MB/s), and 6 µs mutex locks.
func SGI4D380S() Config {
	return Config{
		Name:           "sgi-4d380s",
		Procs:          8,
		MIPS:           25e6,
		BusBytesPerSec: 30e6,
		WordBytes:      4,
		LockPairNS:     6_000,
		NurseryWords:   256 * 1024,
		GCWordsPerSec:  2.5e6,
	}
}

// Luna88k models the 4-processor Omron Luna88k (25 MHz MC88100, ~17 MIPS)
// running Mach, with an atomic-exchange lock primitive.
func Luna88k() Config {
	return Config{
		Name:           "luna88k",
		Procs:          4,
		MIPS:           17e6,
		BusBytesPerSec: 35e6,
		WordBytes:      4,
		LockPairNS:     8_000,
		NurseryWords:   256 * 1024,
		GCWordsPerSec:  1.7e6,
	}
}

// Uniprocessor models the trivial single-proc implementation that "works
// on all processors that run SML/NJ".
func Uniprocessor() Config {
	return Config{
		Name:           "uniprocessor",
		Procs:          1,
		MIPS:           10e6,
		BusBytesPerSec: 40e6,
		WordBytes:      4,
		NurseryWords:   256 * 1024,
		LockPairNS:     1_000,
		GCWordsPerSec:  1e6,
	}
}

// Configs names every machine model for sweeps.
var Configs = map[string]func() Config{
	"sequent": SequentS81,
	"sgi":     SGI4D380S,
	"luna":    Luna88k,
	"uni":     Uniprocessor,
}

// ProcStats is the per-processor time and traffic breakdown.  BusyNS +
// BusWaitNS + LockWaitNS + GCWorkNS + GCStallNS + IdleNS accounts for a
// proc's entire active lifetime.  It is a merged view over the machine's
// metrics registry; Metrics exposes the registry itself.
type ProcStats struct {
	BusyNS     int64 // computing and transferring (useful work)
	BusWaitNS  int64 // queueing for the shared bus
	LockWaitNS int64 // blocked on simulated mutex locks
	GCWorkNS   int64 // performing collections
	GCStallNS  int64 // stopped at a clean point while another proc collects
	IdleNS     int64 // parked with no ready task
	AllocWords int64
	LockOps    int64
	StartNS    int64 // virtual time the proc started
	EndNS      int64 // virtual time the proc finished
}

// machMetrics caches the machine's counter handles; every accounting
// line in the model body is a sharded counter add on these.
type machMetrics struct {
	busy       *metrics.Counter
	busWait    *metrics.Counter
	lockWait   *metrics.Counter
	gcWork     *metrics.Counter
	gcStall    *metrics.Counter
	idle       *metrics.Counter
	allocWords *metrics.Counter
	lockOps    *metrics.Counter
}

// procSpan records a proc's simulated lifetime; spans are not counters,
// so they live beside the registry.
type procSpan struct {
	start, end int64
}

// Machine is one simulated run: a config, an engine, a bus, a GC state,
// and a set of workload processors.
type Machine struct {
	cfg Config
	eng *desim.Engine

	busBusyUntil desim.Time
	busBytes     int64

	pauseUntil   desim.Time // global GC stop-the-world horizon
	allocSinceGC int64
	survival     float64 // fraction of nursery live at collection time
	gcCount      int
	gcNS         int64

	reg   *metrics.Registry
	mm    machMetrics
	spans []procSpan
	next  int

	tracer     *trace.Tracer
	evGC       trace.EventID
	evLockWait trace.EventID
}

// New builds a machine with a deterministic seed and a workload survival
// rate (the fraction of allocated words still live at each collection,
// which fixes the sequential GC cost).
func New(cfg Config, seed int64, survival float64) *Machine {
	if survival < 0 || survival > 1 {
		panic("machine: survival must be in [0,1]")
	}
	m := &Machine{
		cfg:      cfg,
		eng:      desim.New(seed),
		survival: survival,
		reg:      metrics.NewRegistry(cfg.Procs),
	}
	m.mm = machMetrics{
		busy:       m.reg.Counter("machine.busy_ns"),
		busWait:    m.reg.Counter("machine.buswait_ns"),
		lockWait:   m.reg.Counter("machine.lockwait_ns"),
		gcWork:     m.reg.Counter("machine.gcwork_ns"),
		gcStall:    m.reg.Counter("machine.gcstall_ns"),
		idle:       m.reg.Counter("machine.idle_ns"),
		allocWords: m.reg.Counter("machine.alloc_words"),
		lockOps:    m.reg.Counter("machine.lock_ops"),
	}
	return m
}

// Metrics exposes the machine's registry for unified snapshots.
func (m *Machine) Metrics() *metrics.Registry { return m.reg }

// EnableTracing attaches an event tracer driven by the engine's virtual
// clock: collections appear as spans on the collecting proc's timeline
// and contended lock acquisitions as instants carrying the wait in
// nanoseconds.  ringSize is events retained per proc (rounded up to a
// power of two).  The returned tracer is ready for WriteChromeJSON
// after Run.
func (m *Machine) EnableTracing(ringSize int) *trace.Tracer {
	t := trace.New(m.cfg.Procs, ringSize)
	t.SetClock(func() int64 { return int64(m.eng.Now()) })
	t.Enable()
	m.tracer = t
	m.evGC = t.Define("machine.gc")
	m.evLockWait = t.Define("machine.lock_wait")
	return t
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Engine exposes the underlying simulation engine.
func (m *Machine) Engine() *desim.Engine { return m.eng }

// P is a simulated processor executing workload code.
type P struct {
	m  *Machine
	id int
	dp *desim.Proc
}

// ID returns the processor's index.
func (p *P) ID() int { return p.id }

// Machine returns the machine the processor belongs to.
func (p *P) Machine() *Machine { return p.m }

// Now returns the current virtual time.
func (p *P) Now() desim.Time { return p.m.eng.Now() }

// Spawn adds a workload processor running body.  At most Config.Procs
// processors may be spawned.
func (m *Machine) Spawn(body func(p *P)) *P {
	if m.next >= m.cfg.Procs {
		panic(fmt.Sprintf("machine %s: more workload procs than processors (%d)",
			m.cfg.Name, m.cfg.Procs))
	}
	id := m.next
	m.next++
	m.spans = append(m.spans, procSpan{})
	p := &P{m: m, id: id}
	p.dp = m.eng.Spawn(fmt.Sprintf("cpu%d", id), func(dp *desim.Proc) {
		m.spans[id].start = m.eng.Now()
		body(p)
		m.spans[id].end = m.eng.Now()
	})
	return p
}

// Run drives the simulation to completion and returns the makespan.
func (m *Machine) Run() desim.Time { return m.eng.Run() }

// Stats returns the per-proc breakdown, reconstructed from the metrics
// registry's per-shard values.
func (m *Machine) Stats() []ProcStats {
	busy := m.mm.busy.PerShard()
	busWait := m.mm.busWait.PerShard()
	lockWait := m.mm.lockWait.PerShard()
	gcWork := m.mm.gcWork.PerShard()
	gcStall := m.mm.gcStall.PerShard()
	idle := m.mm.idle.PerShard()
	alloc := m.mm.allocWords.PerShard()
	lockOps := m.mm.lockOps.PerShard()
	out := make([]ProcStats, len(m.spans))
	for i := range out {
		out[i] = ProcStats{
			BusyNS:     busy[i],
			BusWaitNS:  busWait[i],
			LockWaitNS: lockWait[i],
			GCWorkNS:   gcWork[i],
			GCStallNS:  gcStall[i],
			IdleNS:     idle[i],
			AllocWords: alloc[i],
			LockOps:    lockOps[i],
			StartNS:    m.spans[i].start,
			EndNS:      m.spans[i].end,
		}
	}
	return out
}

// Totals sums the per-proc breakdown.
func (m *Machine) Totals() ProcStats {
	var t ProcStats
	for _, s := range m.Stats() {
		t.BusyNS += s.BusyNS
		t.BusWaitNS += s.BusWaitNS
		t.LockWaitNS += s.LockWaitNS
		t.GCWorkNS += s.GCWorkNS
		t.GCStallNS += s.GCStallNS
		t.IdleNS += s.IdleNS
		t.AllocWords += s.AllocWords
		t.LockOps += s.LockOps
	}
	return t
}

// GCs returns the number of collections and the total sequential GC time.
func (m *Machine) GCs() (int, int64) { return m.gcCount, m.gcNS }

// BusBytes returns the total bytes moved across the shared bus.
func (m *Machine) BusBytes() int64 { return m.busBytes }

// stall synchronizes the proc with any stop-the-world collection in
// progress: procs reach clean points between operations, and a proc
// arriving at one during a collection waits for the collector.
func (p *P) stall() {
	if now := p.m.eng.Now(); now < p.m.pauseUntil {
		p.m.mm.gcStall.Add(p.id, p.m.pauseUntil-now)
		p.dp.AdvanceTo(p.m.pauseUntil)
	}
}

// Compute executes instrs instructions of pure computation.
func (p *P) Compute(instrs int64) {
	p.stall()
	if instrs <= 0 {
		return
	}
	ns := int64(float64(instrs) / p.m.cfg.MIPS * 1e9)
	p.m.mm.busy.Add(p.id, ns)
	p.dp.Advance(ns)
}

// Alloc allocates words of heap, moving them across the shared bus (every
// allocation is a cache miss in SML/NJ's re-use-after-GC regime) and
// triggering a collection when the allocation region is exhausted.
func (p *P) Alloc(words int64) {
	p.stall()
	if words <= 0 {
		return
	}
	p.m.mm.allocWords.Add(p.id, words)

	if p.m.cfg.CacheResidentNursery {
		// §7 future work: the young generation fits in the cache, so
		// allocation is a cache-speed store (one cycle per word); only
		// survivors cross the bus, at collection time.
		ns := int64(float64(words) / p.m.cfg.MIPS * 1e9)
		p.m.mm.busy.Add(p.id, ns)
		p.dp.Advance(ns)
	} else {
		bytes := words * p.m.cfg.WordBytes
		dur := int64(float64(bytes) / p.m.cfg.BusBytesPerSec * 1e9)
		now := p.m.eng.Now()
		start := now
		if p.m.busBusyUntil > start {
			start = p.m.busBusyUntil
		}
		p.m.busBusyUntil = start + dur
		p.m.busBytes += bytes
		p.m.mm.busWait.Add(p.id, start-now)
		p.m.mm.busy.Add(p.id, dur)
		p.dp.AdvanceTo(start + dur)
	}

	p.m.allocSinceGC += words
	if p.m.allocSinceGC >= p.m.cfg.NurseryWords {
		p.collect()
	}
}

// workQuantumWords bounds how much allocation a single Work slice batches:
// real allocation is spread through the computation a word at a time, so
// large tasks are sliced to keep the bus model smooth instead of issuing
// one bulk transfer at task end.
const workQuantumWords = 1024

// Work interleaves instrs instructions of computation with allocWords of
// heap allocation, in slices of at most workQuantumWords allocation each.
func (p *P) Work(instrs, allocWords int64) {
	if allocWords <= workQuantumWords {
		p.Compute(instrs)
		p.Alloc(allocWords)
		return
	}
	slices := (allocWords + workQuantumWords - 1) / workQuantumWords
	instrSlice := instrs / slices
	allocSlice := allocWords / slices
	for i := int64(0); i < slices-1; i++ {
		p.Compute(instrSlice)
		p.Alloc(allocSlice)
	}
	p.Compute(instrs - instrSlice*(slices-1))
	p.Alloc(allocWords - allocSlice*(slices-1))
}

// collect performs a sequential stop-the-world collection on this proc:
// the world pauses until it finishes, and the copying traffic occupies the
// bus.
func (p *P) collect() {
	m := p.m
	live := float64(m.allocSinceGC) * m.survival
	dur := int64(live / m.cfg.GCWordsPerSec * 1e9)
	m.allocSinceGC = 0
	m.gcCount++
	m.gcNS += dur
	now := m.eng.Now()
	end := now + dur
	liveBytes := int64(live) * m.cfg.WordBytes
	m.busBytes += liveBytes
	m.tracer.Begin(p.id, m.evGC)
	if m.cfg.ConcurrentGC {
		// §7 future work: the collector runs beside the mutators.  Its
		// copying traffic is an ordinary queued bus transfer rather than
		// a bus monopoly, and the world is not paused; the collecting
		// proc is occupied for the scan plus its share of the bus.
		xfer := int64(float64(liveBytes) / m.cfg.BusBytesPerSec * 1e9)
		start := now
		if m.busBusyUntil > start {
			start = m.busBusyUntil
		}
		m.busBusyUntil = start + xfer
		if end < start+xfer {
			end = start + xfer
		}
		m.mm.gcWork.Add(p.id, end-now)
		p.dp.AdvanceTo(end)
		m.tracer.End(p.id, m.evGC)
		return
	}
	// Sequential stop-the-world collection (§5): every proc stalls at its
	// next clean point until the collector finishes, and the copying
	// traffic owns the bus.
	if m.pauseUntil < end {
		m.pauseUntil = end
	}
	if m.busBusyUntil < end {
		m.busBusyUntil = end
	}
	m.mm.gcWork.Add(p.id, dur)
	p.dp.AdvanceTo(end)
	m.tracer.End(p.id, m.evGC)
}

// Park blocks the proc until another proc calls UnparkInto(p); the time
// parked is accounted as idle.
func (p *P) Park() {
	start := p.m.eng.Now()
	p.dp.Park()
	p.m.mm.idle.Add(p.id, p.m.eng.Now()-start)
}

// Unpark makes a parked proc q runnable now.
func (p *P) Unpark(q *P) { p.dp.Unpark(q.dp) }

// AdvanceIdle lets d nanoseconds pass as idle time (spin-waiting for work).
func (p *P) AdvanceIdle(d int64) {
	p.m.mm.idle.Add(p.id, d)
	p.dp.Advance(d)
}
