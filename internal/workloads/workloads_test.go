package workloads

import (
	"testing"

	"repro/internal/proc"
	"repro/internal/threads"
)

// run executes f as the root thread of a fresh w-proc thread system and
// returns its result.
func run(w int, f func(s *threads.System) int64) int64 {
	s := threads.New(proc.New(w), threads.Options{})
	var out int64
	s.Run(func() { out = f(s) })
	return out
}

func TestAllpairsMatchesReference(t *testing.T) {
	want := FloydReference(40, 7)
	for _, w := range []int{1, 2, 4} {
		got := run(w, func(s *threads.System) int64 { return Allpairs(s, w, 40, 7) })
		if got != want {
			t.Fatalf("workers=%d: allpairs = %d, want %d", w, got, want)
		}
	}
}

func TestAllpairsDeterministicAcrossWorkerCounts(t *testing.T) {
	a := run(1, func(s *threads.System) int64 { return Allpairs(s, 1, 75, 1) })
	b := run(4, func(s *threads.System) int64 { return Allpairs(s, 4, 75, 1) })
	if a != b {
		t.Fatalf("allpairs differs: %d vs %d", a, b)
	}
}

func TestMSTMatchesReference(t *testing.T) {
	want := MSTReference(120, 3)
	for _, w := range []int{1, 2, 4} {
		got := run(w, func(s *threads.System) int64 { return MST(s, w, 120, 3) })
		if got != want {
			t.Fatalf("workers=%d: mst = %d, want %d", w, got, want)
		}
	}
}

func TestAbisortSorts(t *testing.T) {
	for _, w := range []int{1, 2, 4} {
		ok := false
		run(w, func(s *threads.System) int64 {
			ok = IsSortedCheck(s, w, 1<<10, 11)
			return 0
		})
		if !ok {
			t.Fatalf("workers=%d: abisort output mismatch", w)
		}
	}
}

func TestSimpleDeterministicAcrossWorkerCounts(t *testing.T) {
	a := run(1, func(s *threads.System) int64 { return Simple(s, 1, 64, 2, 5) })
	b := run(3, func(s *threads.System) int64 { return Simple(s, 3, 64, 2, 5) })
	c := run(4, func(s *threads.System) int64 { return Simple(s, 4, 64, 2, 5) })
	if a != b || b != c {
		t.Fatalf("simple checksums differ: %d %d %d", a, b, c)
	}
}

func TestMMMatchesReference(t *testing.T) {
	want := MMReference(60, 9)
	for _, w := range []int{1, 3, 4} {
		got := run(w, func(s *threads.System) int64 { return MM(s, w, 60, 9) })
		if got != want {
			t.Fatalf("workers=%d: mm = %d, want %d", w, got, want)
		}
	}
}

func TestSeqCopiesDeterministic(t *testing.T) {
	a := run(2, func(s *threads.System) int64 { return SeqCopies(s, 2, 1) })
	b := run(2, func(s *threads.System) int64 { return SeqCopies(s, 2, 1) })
	if a != b {
		t.Fatalf("seq not deterministic: %d vs %d", a, b)
	}
}

func TestSpecsRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size workloads")
	}
	for _, spec := range Specs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			got := run(2, func(s *threads.System) int64 { return spec.Run(s, 2, 1) })
			// Checksums are workload-defined; just require a stable value.
			again := run(2, func(s *threads.System) int64 { return spec.Run(s, 2, 1) })
			if got != again {
				t.Fatalf("%s unstable: %d vs %d", spec.Name, got, again)
			}
		})
	}
}

func TestChunkPartition(t *testing.T) {
	for _, n := range []int{1, 7, 75, 100} {
		for _, workers := range []int{1, 2, 3, 8, 16} {
			covered := 0
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := chunk(n, workers, w)
				if lo != prevHi {
					t.Fatalf("gap at n=%d workers=%d w=%d", n, workers, w)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("partition covers %d of %d", covered, n)
			}
		}
	}
}
