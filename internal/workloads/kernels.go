package workloads

import (
	"math/rand"

	"repro/internal/syncx"
	"repro/internal/threads"
)

// Abisort sorts 2^k random integers with the classic bitonic sorting
// network, parallelized per phase (the documented substitution for
// adaptive bitonic sort: same log^2 n phase structure).  It returns a
// positional checksum of the sorted array.
func Abisort(s *threads.System, workers, n int, seed int64) int64 {
	if n&(n-1) != 0 {
		panic("workloads: abisort size must be a power of two")
	}
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(rng.Intn(1 << 20))
	}

	// Enumerate the (k, j) phases of the bitonic network.
	type phase struct{ k, j int }
	var phases []phase
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			phases = append(phases, phase{k, j})
		}
	}

	parallelPhases(s, workers, len(phases), func(w, ph int) {
		k, j := phases[ph].k, phases[ph].j
		lo, hi := chunk(n, workers, w)
		for i := lo; i < hi; i++ {
			ixj := i ^ j
			if ixj <= i {
				continue
			}
			asc := i&k == 0
			if (asc && a[i] > a[ixj]) || (!asc && a[i] < a[ixj]) {
				a[i], a[ixj] = a[ixj], a[i]
			}
		}
	})

	var sum int64
	for i, v := range a {
		sum += int64(i+1) * v
	}
	return sum
}

// IsSortedCheck re-runs the bitonic sort and reports whether the output
// is sorted; used by tests.
func IsSortedCheck(s *threads.System, workers, n int, seed int64) bool {
	// Reproduce the input and sort it sequentially for comparison.
	rng := rand.New(rand.NewSource(seed))
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(rng.Intn(1 << 20))
	}
	// Sequential bitonic (same network).
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			for i := 0; i < n; i++ {
				ixj := i ^ j
				if ixj <= i {
					continue
				}
				asc := i&k == 0
				if (asc && a[i] > a[ixj]) || (!asc && a[i] < a[ixj]) {
					a[i], a[ixj] = a[ixj], a[i]
				}
			}
		}
	}
	for i := 1; i < n; i++ {
		if a[i-1] > a[i] {
			return false
		}
	}
	var want int64
	for i, v := range a {
		want += int64(i+1) * v
	}
	return Abisort(s, workers, n, seed) == want
}

// Simple runs `steps` timesteps of a hydrodynamics-flavoured kernel on an
// n x n grid: a sequential global timestep reduction followed by parallel
// stencil sweeps over pressure, velocity and energy fields (the
// documented simplification of the Livermore SIMPLE code, preserving its
// narrow-reduction / wide-sweep alternation).  Fixed-point integer
// arithmetic keeps the checksum exact.
func Simple(s *threads.System, workers, n, steps int, seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	alloc := func() [][]int64 {
		g := make([][]int64, n)
		for i := range g {
			g[i] = make([]int64, n)
			for j := range g[i] {
				g[i][j] = int64(rng.Intn(1000) + 1)
			}
		}
		return g
	}
	p := alloc() // pressure
	v := alloc() // velocity
	e := alloc() // energy

	partial := make([]int64, workers)
	var dt int64

	// Per step: phase 0 = parallel partial min; phase 1 = sequential
	// reduce; phase 2 = velocity sweep; phase 3 = energy sweep.
	parallelPhases(s, workers, 4*steps, func(w, ph int) {
		switch ph % 4 {
		case 0: // courant condition: min over the grid
			lo, hi := chunk(n, workers, w)
			min := int64(1) << 62
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					c := p[i][j] + v[i][j]
					if c < min {
						min = c
					}
				}
			}
			partial[w] = min
		case 1:
			if w == 0 {
				dt = int64(1) << 62
				for _, m := range partial {
					if m < dt {
						dt = m
					}
				}
				dt = dt%97 + 1 // keep magnitudes bounded
			}
		case 2: // velocity from pressure gradient
			lo, hi := chunk(n, workers, w)
			for i := max(lo, 1); i < min(hi, n-1); i++ {
				for j := 1; j < n-1; j++ {
					grad := p[i+1][j] - p[i-1][j] + p[i][j+1] - p[i][j-1]
					v[i][j] = (v[i][j] + dt*grad/4) % 1_000_003
				}
			}
		case 3: // energy from velocity divergence
			lo, hi := chunk(n, workers, w)
			for i := max(lo, 1); i < min(hi, n-1); i++ {
				for j := 1; j < n-1; j++ {
					div := v[i+1][j] - v[i-1][j] + v[i][j+1] - v[i][j-1]
					e[i][j] = (e[i][j] + dt*div/4) % 1_000_003
					p[i][j] = (p[i][j] + e[i][j]/8) % 1_000_003
				}
			}
		}
	})

	var sum int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum += p[i][j] + v[i][j] + 2*e[i][j]
		}
	}
	return sum
}

// MM multiplies two random n x n integer matrices with one thread per row
// band and returns a checksum of the product.
func MM(s *threads.System, workers, n int, seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]int64, n)
	b := make([][]int64, n)
	c := make([][]int64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int64, n)
		b[i] = make([]int64, n)
		c[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			a[i][j] = int64(rng.Intn(100))
			b[i][j] = int64(rng.Intn(100))
		}
	}

	wg := syncx.NewWaitGroup(s, workers)
	for w := 0; w < workers; w++ {
		w := w
		s.Fork(func() {
			lo, hi := chunk(n, workers, w)
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					var acc int64
					for k := 0; k < n; k++ {
						acc += a[i][k] * b[k][j]
					}
					c[i][j] = acc
				}
			}
			wg.Done()
		})
	}
	wg.Wait()

	var sum int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sum += int64(i+j+1) * c[i][j]
		}
	}
	return sum
}

// MMReference is the sequential reference for MM, used by tests.
func MMReference(n int, seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]int64, n)
	b := make([][]int64, n)
	for i := 0; i < n; i++ {
		a[i] = make([]int64, n)
		b[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			a[i][j] = int64(rng.Intn(100))
			b[i][j] = int64(rng.Intn(100))
		}
	}
	var sum int64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc int64
			for k := 0; k < n; k++ {
				acc += a[i][k] * b[k][j]
			}
			sum += int64(i+j+1) * acc
		}
	}
	return sum
}

// SeqCopies runs `workers` independent allocation-heavy list-building
// computations, one per thread — the paper's seq control.  The checksum
// combines every copy's result.
func SeqCopies(s *threads.System, workers int, seed int64) int64 {
	type cell struct {
		v    int64
		next *cell
	}
	results := make([]int64, workers)
	wg := syncx.NewWaitGroup(s, workers)
	for w := 0; w < workers; w++ {
		w := w
		s.Fork(func() {
			rng := rand.New(rand.NewSource(seed + int64(w)))
			var head *cell
			for i := 0; i < 20000; i++ {
				head = &cell{v: int64(rng.Intn(1000)), next: head}
				if i%100 == 99 {
					head = head.next // drop a cell: garbage
				}
			}
			var sum int64
			for c := head; c != nil; c = c.next {
				sum += c.v
			}
			results[w] = sum
			wg.Done()
		})
	}
	wg.Wait()
	var sum int64
	for _, r := range results {
		sum += r
	}
	return sum
}
