// Package workloads contains real, runnable parallel implementations of
// the paper's five evaluation benchmarks (§6) plus the seq control, built
// strictly on the MP client stack (threads + syncx): forked threads,
// barriers and wait groups over mutex locks and continuations.  These are
// what `cmd/mpbench`, `examples/speedup` and the native half of
// bench_test.go run; the simulated counterparts for the 1993 machines live
// in package simwork.
//
// Two documented substitutions (DESIGN.md):
//   - abisort uses the classic bitonic sorting network rather than the
//     adaptive bitonic trees of Bilardi & Nicolau: same log^2-depth
//     phase structure and memory behaviour, far simpler code;
//   - simple is a compact hydrodynamics-flavoured kernel (stencil sweeps
//     plus global reductions on a 100x100 grid) rather than the full
//     Livermore SIMPLE code, preserving its alternating
//     narrow-reduction / wide-sweep phase profile.
package workloads

import (
	"math/rand"

	"repro/internal/syncx"
	"repro/internal/threads"
)

// Spec describes a workload instance.
type Spec struct {
	Name string
	Run  func(s *threads.System, workers int, seed int64) int64 // returns a checksum
}

// Specs lists the benchmarks in the paper's order, at the paper's problem
// sizes.
func Specs() []Spec {
	return []Spec{
		{"allpairs", func(s *threads.System, w int, seed int64) int64 { return Allpairs(s, w, 75, seed) }},
		{"mst", func(s *threads.System, w int, seed int64) int64 { return MST(s, w, 200, seed) }},
		{"abisort", func(s *threads.System, w int, seed int64) int64 { return Abisort(s, w, 1<<12, seed) }},
		{"simple", func(s *threads.System, w int, seed int64) int64 { return Simple(s, w, 100, 1, seed) }},
		{"mm", func(s *threads.System, w int, seed int64) int64 { return MM(s, w, 100, seed) }},
		{"seq", func(s *threads.System, w int, seed int64) int64 { return SeqCopies(s, w, seed) }},
	}
}

// chunk returns the half-open range [lo, hi) of items owned by worker w
// of workers over n items.
func chunk(n, workers, w int) (lo, hi int) {
	lo = n * w / workers
	hi = n * (w + 1) / workers
	return
}

// parallelPhases forks `workers` threads that each run body(w, phase) for
// every phase in order, with a barrier between phases, and waits for all
// of them.  This is the execution skeleton of every phased benchmark, the
// direct analogue of the thread-per-band structure the paper's
// evaluation programs used.
func parallelPhases(s *threads.System, workers, phases int, body func(w, phase int)) {
	bar := syncx.NewBarrier(s, workers)
	wg := syncx.NewWaitGroup(s, workers)
	for w := 0; w < workers; w++ {
		w := w
		s.Fork(func() {
			for ph := 0; ph < phases; ph++ {
				body(w, ph)
				bar.Await()
			}
			wg.Done()
		})
	}
	wg.Wait()
}

// Allpairs runs Floyd's all-shortest-paths algorithm on a random n-node
// weighted graph and returns the sum of all path lengths.
func Allpairs(s *threads.System, workers, n int, seed int64) int64 {
	const inf = int64(1) << 40
	rng := rand.New(rand.NewSource(seed))
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = make([]int64, n)
		for j := range dist[i] {
			switch {
			case i == j:
				dist[i][j] = 0
			case rng.Intn(4) != 0: // 75% dense random weights
				dist[i][j] = int64(1 + rng.Intn(100))
			default:
				dist[i][j] = inf
			}
		}
	}

	parallelPhases(s, workers, n, func(w, k int) {
		lo, hi := chunk(n, workers, w)
		dk := dist[k]
		for i := lo; i < hi; i++ {
			di := dist[i]
			dik := di[k]
			if dik >= inf {
				continue
			}
			for j := 0; j < n; j++ {
				if alt := dik + dk[j]; alt < di[j] {
					di[j] = alt
				}
			}
		}
	})

	var sum int64
	for i := range dist {
		for j := range dist[i] {
			if dist[i][j] < inf {
				sum += dist[i][j]
			}
		}
	}
	return sum
}

// FloydReference is the sequential reference for Allpairs, used by tests.
func FloydReference(n int, seed int64) int64 {
	const inf = int64(1) << 40
	rng := rand.New(rand.NewSource(seed))
	dist := make([][]int64, n)
	for i := range dist {
		dist[i] = make([]int64, n)
		for j := range dist[i] {
			switch {
			case i == j:
				dist[i][j] = 0
			case rng.Intn(4) != 0:
				dist[i][j] = int64(1 + rng.Intn(100))
			default:
				dist[i][j] = inf
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if dist[i][k] >= inf {
				continue
			}
			for j := 0; j < n; j++ {
				if alt := dist[i][k] + dist[k][j]; alt < dist[i][j] {
					dist[i][j] = alt
				}
			}
		}
	}
	var sum int64
	for i := range dist {
		for j := range dist[i] {
			if dist[i][j] < inf {
				sum += dist[i][j]
			}
		}
	}
	return sum
}

// MST computes the weight (in squared distance, to stay in integers) of a
// minimum spanning tree over n random points with Prim's algorithm: in
// each round workers relax their slice against the last chosen node and
// find a local closest candidate in parallel; after a barrier, worker 0
// reduces the candidates, extends the tree, and a second barrier
// publishes the choice — the paper's finest-grained benchmark.
func MST(s *threads.System, workers, n int, seed int64) int64 {
	xs, ys := randomPoints(n, seed)
	sq := func(a int64) int64 { return a * a }
	d2 := func(i, j int) int64 { return sq(xs[i]-xs[j]) + sq(ys[i]-ys[j]) }

	const inf = int64(1) << 62
	best := make([]int64, n) // squared distance from node i to the tree
	in := make([]bool, n)
	for i := range best {
		best[i] = inf
	}
	in[0] = true
	chosen := 0
	localMin := make([]int, workers)
	var total int64

	parallelPhases(s, workers, 2*(n-1), func(w, phase int) {
		if phase%2 == 0 {
			// Relax this worker's slice against the last chosen node and
			// record the local closest remaining candidate.
			lo, hi := chunk(n, workers, w)
			min := -1
			for i := lo; i < hi; i++ {
				if in[i] {
					continue
				}
				if nd := d2(i, chosen); nd < best[i] {
					best[i] = nd
				}
				if min == -1 || best[i] < best[min] {
					min = i
				}
			}
			localMin[w] = min
			return
		}
		if w == 0 {
			// Sequential reduction and tree extension.
			min := -1
			for _, m := range localMin {
				if m != -1 && !in[m] && (min == -1 || best[m] < best[min]) {
					min = m
				}
			}
			in[min] = true
			total += best[min]
			chosen = min
		}
	})
	return total
}

// MSTReference is the sequential Prim reference for MST, used by tests.
func MSTReference(n int, seed int64) int64 {
	xs, ys := randomPoints(n, seed)
	sq := func(a int64) int64 { return a * a }
	d2 := func(i, j int) int64 { return sq(xs[i]-xs[j]) + sq(ys[i]-ys[j]) }
	const inf = int64(1) << 62
	best := make([]int64, n)
	in := make([]bool, n)
	for i := range best {
		best[i] = inf
	}
	in[0] = true
	chosen := 0
	var total int64
	for round := 0; round < n-1; round++ {
		min := -1
		for i := 0; i < n; i++ {
			if in[i] {
				continue
			}
			if nd := d2(i, chosen); nd < best[i] {
				best[i] = nd
			}
			if min == -1 || best[i] < best[min] {
				min = i
			}
		}
		in[min] = true
		total += best[min]
		chosen = min
	}
	return total
}

func randomPoints(n int, seed int64) ([]int64, []int64) {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int64, n)
	ys := make([]int64, n)
	for i := range xs {
		xs[i] = int64(rng.Intn(10000))
		ys[i] = int64(rng.Intn(10000))
	}
	return xs, ys
}
