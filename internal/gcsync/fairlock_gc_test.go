package gcsync

// Regression coverage for the fair claim/release protocol's GC
// composition (extends TestGCAwareLockSpinnerJoins): claimants parked
// in a FairLock's FIFO queue during a stop-the-world must not stall the
// parallel collection.  The fair queue is the worst case for the MPL
// lockTake discipline — the holder never releases during the stop and
// every queued claimant is ordered behind it, so if the claim loop were
// not a safe point the whole queue would convoy the barrier.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mlheap"
	"repro/internal/syncx"
)

// TestFairLockSaturatedQueueDoesNotStallSTW: the claim queue is first
// saturated — a holder plus several queued claimants, one of them a
// bound allocating proc — and only then is a collection raised.  The
// stop must complete while the lock is still held and the queue still
// full: the bound claimant joins the clean-point barrier from inside
// its claim loop, the unbound ones help copy, and nobody waits for a
// grant the stopped holder cannot issue.
func TestFairLockSaturatedQueueDoesNotStallSTW(t *testing.T) {
	const queued = 3 // unbound claimants behind the bound one
	w := NewWorld(parCfg(2))
	lock := syncx.FairFactory(w, nil)().(*syncx.FairLock)

	// The lock is held by this test goroutine — NOT an attached proc —
	// for the entire collection, so no grant can free the queue.
	lock.Lock()
	a, b := w.Attach(), w.Attach()

	var gcDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1 + queued)

	// The bound proc claims first: its only clean point while queued is
	// the one the fair claim loop takes.
	go func() {
		defer wg.Done()
		defer b.Detach()
		b.Bind()
		defer b.Unbind()
		lock.Lock()
		if !gcDone.Load() {
			t.Error("bound claimant granted before the collection finished")
		}
		lock.Unlock()
	}()
	// Unbound claimants (front-style threads): they help the copy from
	// their claim loops.
	for i := 0; i < queued; i++ {
		go func() {
			defer wg.Done()
			lock.Lock()
			if !gcDone.Load() {
				t.Error("queued claimant granted before the collection finished")
			}
			lock.Unlock()
		}()
	}

	// Saturate the queue before raising the collection: holder + bound
	// claimant + the unbound ones must all hold tickets.
	deadline := time.Now().Add(10 * time.Second)
	for lock.QueueDepth() < int64(2+queued) {
		if time.Now().After(deadline) {
			t.Fatalf("claim queue never saturated: depth %d", lock.QueueDepth())
		}
		time.Sleep(time.Millisecond)
	}

	// Proc A exhausts the nursery and raises the stop, then waits at the
	// barrier for proc B — who is sitting in the claim queue.
	var allocWG sync.WaitGroup
	allocWG.Add(1)
	go func() {
		defer allocWG.Done()
		defer a.Detach()
		var root mlheap.Value = mlheap.Nil
		a.AddRoot(&root)
		defer a.RemoveRoot(&root)
		for w.GCs() == 0 {
			root = a.Record(mlheap.Int(1), root)
		}
	}()

	// The collection must complete while the lock is still held and the
	// claim queue still saturated.
	for w.GCs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("collection did not complete with a saturated claim queue")
		}
		time.Sleep(time.Millisecond)
	}
	if d := lock.QueueDepth(); d < int64(2+queued) {
		t.Errorf("claim queue drained to %d during the stop; no grant should have been issued", d)
	}
	gcDone.Store(true)
	lock.Unlock()
	wg.Wait()
	allocWG.Wait()

	snap := w.Heap().Metrics().Snapshot()
	if snap.Get("gcsync.section_entries") == 0 {
		t.Fatal("fair claim loop took no section entries")
	}
}
