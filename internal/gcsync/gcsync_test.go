package gcsync

import (
	"sync"
	"testing"

	"repro/internal/mlheap"
)

func smallWorld(procs int) *World {
	return NewWorld(mlheap.Config{
		NurseryWords: 2048,
		SemiWords:    1 << 16,
		ChunkWords:   64,
		Procs:        procs,
	})
}

func TestSingleProcAllocatesThroughGCs(t *testing.T) {
	w := smallWorld(1)
	a := w.Attach()
	var list mlheap.Value = mlheap.Nil
	a.AddRoot(&list)
	for i := 0; i < 5000; i++ {
		list = a.Record(mlheap.Int(int64(i)), list)
	}
	if w.GCs() == 0 {
		t.Fatal("no collections for 5000 records in a 2048-word nursery")
	}
	// Walk: 4999..0.
	h := w.Heap()
	v := list
	for i := 4999; i >= 0; i-- {
		if h.Get(v, 0).Int() != int64(i) {
			t.Fatalf("element %d corrupted", i)
		}
		v = h.Get(v, 1)
	}
	if v != mlheap.Nil {
		t.Fatal("list tail corrupted")
	}
}

func TestInFlightSlotsSurviveGC(t *testing.T) {
	// Record's slot values must be forwarded if a collection happens
	// inside the call: allocate pairs whose car is a fresh cell made just
	// before the Record that may trigger GC.
	w := smallWorld(1)
	a := w.Attach()
	var keep mlheap.Value = mlheap.Nil
	a.AddRoot(&keep)
	h := w.Heap()
	for i := 0; i < 3000; i++ {
		inner := a.Record(mlheap.Int(int64(i)))
		outer := a.Record(inner, keep) // inner is in-flight if GC strikes here
		if h.Get(h.Get(outer, 0), 0).Int() != int64(i) {
			t.Fatalf("in-flight slot lost at %d (GCs=%d)", i, w.GCs())
		}
		keep = outer
	}
	if w.GCs() == 0 {
		t.Fatal("test never exercised a collection")
	}
}

func TestParallelProcsCollectTogether(t *testing.T) {
	const procs = 4
	w := smallWorld(procs)
	var wg sync.WaitGroup
	heads := make([]mlheap.Value, procs)
	allocs := make([]*Alloc, procs)
	for p := 0; p < procs; p++ {
		allocs[p] = w.Attach()
		heads[p] = mlheap.Nil
		// World-level roots: the lists outlive their building procs.
		w.AddRoot(&heads[p])
	}
	const per = 4000
	for p := 0; p < procs; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := allocs[p]
			// A proc that stops allocating must detach so it cannot
			// stall later collections (see package doc).
			defer a.Detach()
			for i := 0; i < per; i++ {
				heads[p] = a.Record(mlheap.Int(int64(p*1_000_000+i)), heads[p])
			}
		}()
	}
	wg.Wait()
	if w.GCs() == 0 {
		t.Fatal("no collections despite heavy allocation")
	}
	h := w.Heap()
	for p := 0; p < procs; p++ {
		v := heads[p]
		for i := per - 1; i >= 0; i-- {
			want := int64(p*1_000_000 + i)
			if got := h.Get(v, 0).Int(); got != want {
				t.Fatalf("proc %d element %d = %d, want %d", p, i, got, want)
			}
			v = h.Get(v, 1)
		}
		if v != mlheap.Nil {
			t.Fatalf("proc %d list tail corrupted", p)
		}
	}
}

func TestDetachUnblocksPendingGC(t *testing.T) {
	w := smallWorld(2)
	a := w.Attach()
	b := w.Attach()

	var list mlheap.Value = mlheap.Nil
	a.AddRoot(&list)

	done := make(chan struct{})
	go func() {
		// Fill the nursery: proc a will raise a GC and wait for b.
		for i := 0; i < 3000; i++ {
			list = a.Record(mlheap.Int(int64(i)), list)
		}
		close(done)
	}()

	// Proc b never allocates; detaching it must let a's collection run.
	b.Detach()
	<-done
	if w.GCs() == 0 {
		t.Fatal("no collection happened")
	}
}

func TestCleanPointJoinsPendingGC(t *testing.T) {
	w := smallWorld(2)
	a := w.Attach()
	b := w.Attach()
	var list mlheap.Value = mlheap.Nil
	a.AddRoot(&list)

	done := make(chan struct{})
	go func() {
		for i := 0; i < 3000; i++ {
			list = a.Record(mlheap.Int(int64(i)), list)
		}
		close(done)
	}()

	// Proc b computes without allocating but visits clean points, as §5
	// requires; that must be enough for a's collections to proceed.
	for {
		select {
		case <-done:
			if w.GCs() == 0 {
				t.Fatal("no collection happened")
			}
			b.Detach()
			return
		default:
			b.CleanPoint()
		}
	}
}

func TestSharedStructureAcrossProcs(t *testing.T) {
	// Proc a builds a structure; proc b links to it; collections must
	// preserve the sharing (heap memory is implicitly shared among all
	// procs, §3.3).
	w := smallWorld(2)
	a := w.Attach()
	b := w.Attach()
	h := w.Heap()

	shared := a.Record(mlheap.Int(777))
	var fromA, fromB mlheap.Value = mlheap.Nil, mlheap.Nil
	w.AddRoot(&fromA)
	w.AddRoot(&fromB)
	fromA = a.Record(shared)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer a.Detach()
		for i := 0; i < 2000; i++ {
			fromA = a.Record(h.Get(fromA, 0), fromA)
		}
	}()
	go func() {
		defer wg.Done()
		defer b.Detach()
		for i := 0; i < 2000; i++ {
			fromB = b.Record(mlheap.Int(int64(i)), fromB)
		}
	}()
	wg.Wait()

	if h.Get(h.Get(fromA, 0), 0).Int() != 777 {
		t.Fatal("shared structure corrupted")
	}
	if w.GCs() == 0 {
		t.Fatal("no collections exercised")
	}
}

func TestRemoveRootDropsLiveness(t *testing.T) {
	w := smallWorld(1)
	a := w.Attach()
	var temp mlheap.Value = mlheap.Nil
	a.AddRoot(&temp)
	temp = a.Record(mlheap.Int(1))
	a.RemoveRoot(&temp)
	// Force collections; the removed root must not be forwarded (its
	// Value will dangle, which is fine — it is dead by contract).
	var keep mlheap.Value = mlheap.Nil
	a.AddRoot(&keep)
	for i := 0; i < 3000; i++ {
		keep = a.Record(mlheap.Int(int64(i)), keep)
	}
	st := w.Heap().Stats()
	if st.MinorGCs == 0 {
		t.Fatal("no GC exercised")
	}
}

func TestBytesThroughGC(t *testing.T) {
	w := smallWorld(1)
	a := w.Attach()
	var rec mlheap.Value
	w.AddRoot(&rec)
	s := a.Bytes([]byte("persistent string"))
	rec = a.Record(s)
	var churn mlheap.Value = mlheap.Nil
	a.AddRoot(&churn)
	for i := 0; i < 4000; i++ {
		churn = a.Record(mlheap.Int(int64(i)), churn)
	}
	if w.GCs() == 0 {
		t.Fatal("no GC exercised")
	}
	if got := string(w.Heap().Bytes(w.Heap().Get(rec, 0))); got != "persistent string" {
		t.Fatalf("string corrupted: %q", got)
	}
}
