// Package gcsync implements the paper's multiprocessor collection
// protocol (§5) for real: "When the allocation region is completely
// filled and a garbage collection (GC) is required, the procs are
// synchronized at clean points, the collection is performed by one of
// them, and the allocation region is redivided."
//
// A World couples an mlheap.Heap with the set of procs currently
// allocating from it.  Each proc holds an Alloc handle; Record is the
// allocation fast path (a bump in the proc's private region).  When the
// region is exhausted, the allocating proc raises a collection request;
// every registered proc stops at its next clean point (Record or
// CleanPoint call).
//
// Where the paper stops — "the collection is performed by one of them"
// — this package goes on: the last proc to arrive builds a parallel
// collection plan (mlheap.StartCollect) and every other arriver helps
// copy instead of sleeping, the way OC4MC parallelized OCaml's stop.
// The world also exports the GC section to lock implementations:
// InSection is a lock-free flag a spinner can poll, and SectionPoint
// lets a spinner mid-spin either join the collection at a true clean
// point (if its goroutine is Bound to an Alloc) or steal copying work —
// MPL's Parallel_lockTake discipline, so a proc spinning on any lock
// can never convoy a collection.  SetSequential selects the paper's
// one-collector behaviour as the ablation baseline.
//
// Constraints inherited from the paper's design: a proc must not spin
// on a mutex held by a proc that is blocked in a collection unless the
// spin is GC-aware (spinlock.GCAware), and a proc that stops allocating
// for a long stretch should call CleanPoint periodically or Detach so
// it cannot stall a collection.
package gcsync

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gls"
	"repro/internal/metrics"
	"repro/internal/mlheap"
	"repro/internal/trace"
)

// pauseRing bounds how many recent pause durations PauseSummary keeps
// for exact percentiles; the histogram keeps the full distribution.
const pauseRing = 512

// World is a shared heap plus its clean-point protocol state.
type World struct {
	heap *mlheap.Heap

	mu         sync.Mutex
	cond       *sync.Cond
	procs      []*Alloc
	global     []*mlheap.Value // world-wide roots, independent of any proc
	gcNeeded   bool
	gcFlag     atomic.Bool // lock-free mirror of gcNeeded for hot clean points
	collecting bool        // a collection is executing; registration changes must wait
	arrived    int
	generation uint64
	genAtomic  atomic.Uint64 // lock-free mirror of generation, for unlocked helper spins
	gcs        int
	sequential bool          // ablation: one proc collects, the rest wait
	yield      func()        // how barrier waiters idle (green-thread systems install sys.Yield)
	now        func() int64  // tick source for pause accounting (virtual in tests)
	stopStart  int64         // tick when the current stop was requested
	bound      map[uint64]*Alloc

	plan atomic.Pointer[mlheap.Collection] // active parallel plan, for lock-free Help

	rootScratch []*mlheap.Value // reused root-gather buffer (one collection at a time)

	pauses   [pauseRing]int64
	pauseLen int
	pauseIdx int

	pauseTicks *metrics.Histogram // mlheap.gc_pause_ticks: request-to-release
	stopTicks  *metrics.Histogram // mlheap.gc_stop_ticks: request-to-all-stopped
	maxPause   *metrics.Counter   // mlheap.gc_max_pause_ticks: high-water mark
	maxStop    *metrics.Counter   // mlheap.gc_max_stop_ticks: high-water mark of the gather phase
	sections   *metrics.Counter   // gcsync.section_entries: spinner clean points taken
	helps      *metrics.Counter   // gcsync.gc_helps: copying work stolen by non-procs
	attachBusy *metrics.Counter   // gcsync.attach_busy: TryAttach refusals (stop or full slots)

	tracer *trace.Tracer
	evGC   trace.EventID
}

// pauseBounds are in ticks — microseconds under the default clock.
var pauseBounds = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000, 25000}

// NewWorld wraps a heap.  The heap's configured proc count bounds how
// many Allocs may be attached at once.
func NewWorld(cfg mlheap.Config) *World {
	w := &World{heap: mlheap.New(cfg), bound: make(map[uint64]*Alloc)}
	w.cond = sync.NewCond(&w.mu)
	base := time.Now()
	w.now = func() int64 { return time.Since(base).Microseconds() }
	reg := w.heap.Metrics()
	w.pauseTicks = reg.Histogram("mlheap.gc_pause_ticks", pauseBounds)
	w.stopTicks = reg.Histogram("mlheap.gc_stop_ticks", pauseBounds)
	w.maxPause = reg.Counter("mlheap.gc_max_pause_ticks")
	w.maxStop = reg.Counter("mlheap.gc_max_stop_ticks")
	w.sections = reg.Counter("gcsync.section_entries")
	w.helps = reg.Counter("gcsync.gc_helps")
	w.attachBusy = reg.Counter("gcsync.attach_busy")
	return w
}

// Heap exposes the underlying heap for reads (Get/Set/Len).
func (w *World) Heap() *mlheap.Heap { return w.heap }

// SetSequential selects the paper's sequential collection (one proc
// collects, the rest wait) instead of the parallel plan — the ablation
// baseline.  Call before the first allocation.
func (w *World) SetSequential(seq bool) {
	w.mu.Lock()
	w.sequential = seq
	w.mu.Unlock()
}

// SetYield installs the wait primitive barrier waiters use while a
// collection is pending.  Worlds whose procs are green threads MUST
// install their scheduler's yield (e.g. threads.System.Yield): a
// blocked sync.Cond wait would park the OS-level proc and starve the
// green threads the barrier is waiting for.  Raw-goroutine worlds leave
// it nil and block on a cond var.
func (w *World) SetYield(y func()) {
	w.mu.Lock()
	w.yield = y
	w.mu.Unlock()
}

// SetNow replaces the pause-accounting tick source (default: wall-clock
// microseconds from a monotonic base).  Tests install a virtual clock
// for deterministic pause histograms.  Call before the first
// allocation.
func (w *World) SetNow(now func() int64) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

// SetTracer attaches an event tracer; each collection appears as a
// "gc.collect" span on the collecting proc's ring.  Call before the
// first allocation.
//
// The ring/tid an Alloc emits on is the proc id recorded at attach
// time.  When the tracer is shared with other instrumented layers
// (proc.Platform, threads.System), attach with AttachProc(proc.Self())
// so GC spans land on the same track as that proc's scheduler events;
// plain Attach uses attach order, a private id domain that only lines
// up with platform proc ids by accident.
func (w *World) SetTracer(t *trace.Tracer) {
	w.tracer = t
	if t != nil {
		w.evGC = t.Define("gc.collect")
	}
}

// AddRoot registers a world-wide root cell: its Value survives
// collections and is forwarded in place regardless of which procs are
// attached.  Use it for structures that outlive the proc that built
// them; per-proc roots belong on the Alloc instead.
func (w *World) AddRoot(r *mlheap.Value) {
	w.mu.Lock()
	w.waitRegistrationLocked()
	w.global = append(w.global, r)
	w.mu.Unlock()
}

// RemoveRoot unregisters a world-wide root cell.
func (w *World) RemoveRoot(r *mlheap.Value) {
	w.mu.Lock()
	w.waitRegistrationLocked()
	for i, x := range w.global {
		if x == r {
			w.global = append(w.global[:i], w.global[i+1:]...)
			break
		}
	}
	w.mu.Unlock()
}

// waitRegistrationLocked holds registration changes (attach, detach,
// root add/remove) off until no collection is executing: the collector
// snapshots the root set and redivides the allocation region, and must
// not race membership changes.  Must be called with w.mu held; may drop
// and retake it.
func (w *World) waitRegistrationLocked() {
	for w.collecting {
		if w.yield != nil {
			y := w.yield
			w.mu.Unlock()
			y()
			w.mu.Lock()
		} else {
			w.cond.Wait()
		}
	}
}

// GCs reports how many collections the world has performed.
func (w *World) GCs() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gcs
}

// InSection reports whether the world is inside (or entering) a GC
// section: a collection has been requested and not yet completed.  It
// is a single atomic load, safe from any goroutine; GC-aware locks poll
// it while spinning.
func (w *World) InSection() bool { return w.gcFlag.Load() }

// SectionPoint is the mid-spin clean point a GC-aware lock takes when
// InSection reports a pending collection.  A goroutine Bound to an
// Alloc joins the collection as that proc — the full clean-point
// barrier, releasing the collection it would otherwise stall.  Any
// other goroutine steals copying work from the active parallel plan if
// one is running, else yields so the stopping procs can run.  Safe from
// any goroutine at any time.
func (w *World) SectionPoint() {
	if !w.gcFlag.Load() {
		return
	}
	id := gls.ID()
	w.sections.Inc(int(id))
	w.mu.Lock()
	a := w.bound[id]
	w.mu.Unlock()
	if a != nil {
		a.CleanPoint()
		return
	}
	if c := w.plan.Load(); c != nil {
		if c.Help() {
			w.helps.Inc(int(id))
		}
		return
	}
	runtime.Gosched()
}

// TryHelp steals copying work from the active parallel plan without
// touching the world lock: the entry point for threads that already
// know they are outside the world (an attach retry loop, a poller) and
// must never contend the barrier's mutex while procs are arriving — a
// SectionPoint storm from such threads would starve the very arrivals
// the stop is waiting on.  Reports whether a plan was active; counts a
// section entry when it was.
func (w *World) TryHelp() bool {
	c := w.plan.Load()
	if c == nil {
		return false
	}
	w.sections.Inc(0)
	if c.Help() {
		w.helps.Inc(0)
	} else {
		runtime.Gosched()
	}
	return true
}

// PauseSummary is an exact summary of recent collection pauses (up to
// the last pauseRing collections), in ticks.
type PauseSummary struct {
	Count    int // collections observed (may exceed retained window)
	P50, P99 int64
	Max      int64 // all-time maximum, not windowed
}

// PauseSummary computes exact percentiles over the retained pause
// window plus the all-time maximum.
func (w *World) PauseSummary() PauseSummary {
	w.mu.Lock()
	buf := append([]int64(nil), w.pauses[:w.pauseLen]...)
	count := w.gcs
	max := w.maxPause.Value()
	w.mu.Unlock()
	s := PauseSummary{Count: count, Max: max}
	if len(buf) == 0 {
		return s
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	s.P50 = buf[len(buf)/2]
	s.P99 = buf[(len(buf)*99)/100]
	return s
}

// Alloc is one proc's allocation handle: a private bump region plus the
// proc's registered roots.
type Alloc struct {
	w       *World
	pa      *mlheap.ProcAlloc
	tid     int // proc id recorded at attach time: the trace ring/track
	roots   []*mlheap.Value
	pending []*mlheap.Value // in-flight Record slots, roots during a GC

	// scratch/refs are the stash for in-flight Record slot values when a
	// collection interrupts the call: the values are copied here, their
	// addresses registered as roots, and the (possibly forwarded) values
	// copied back after — so the variadic slice itself never escapes and
	// the no-GC fast path allocates nothing.
	scratch []mlheap.Value
	refs    []*mlheap.Value
}

// Attach registers a new allocating proc with the world, using attach
// order as its trace proc id — fine for a tracer private to this world,
// but see SetTracer when the tracer is shared across layers.
func (w *World) Attach() *Alloc {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.attachLocked(len(w.procs))
}

// AttachProc registers a new allocating proc recording procID as its
// trace proc id, so GC spans merge onto the right track when the tracer
// is shared with the MP platform (pass proc.Self()).
func (w *World) AttachProc(procID int) *Alloc {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.attachLocked(procID)
}

func (w *World) attachLocked(procID int) *Alloc {
	w.waitRegistrationLocked()
	a := &Alloc{w: w, pa: w.heap.NewProcAlloc(), tid: procID}
	w.procs = append(w.procs, a)
	return a
}

// TryAttach registers a new allocating proc if the world can take one
// right now: it returns nil while a collection is pending or executing
// (a fresh proc must not widen the barrier a stopping world is
// waiting on) and when every proc slot is in use.  Callers on serving
// paths park briefly and retry rather than block a scheduler thread.
func (w *World) TryAttach() *Alloc {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.gcNeeded || w.collecting {
		w.attachBusy.Inc(0)
		return nil
	}
	pa := w.heap.TryNewProcAlloc()
	if pa == nil {
		w.attachBusy.Inc(0)
		return nil
	}
	a := &Alloc{w: w, pa: pa, tid: len(w.procs)}
	w.procs = append(w.procs, a)
	return a
}

// Detach removes the proc from the world; a detached proc can no longer
// stall collections.  Its allocator slot (and any store-buffer entries
// it holds) returns to the heap's pool for the next attacher.
func (a *Alloc) Detach() {
	w := a.w
	w.mu.Lock()
	w.waitRegistrationLocked()
	for i, p := range w.procs {
		if p == a {
			w.procs = append(w.procs[:i], w.procs[i+1:]...)
			break
		}
	}
	w.heap.ReleaseProcAlloc(a.pa)
	// A pending collection may now have everyone it is waiting for; the
	// detaching proc performs it, so the span goes on its own ring.
	if w.gcNeeded && w.arrived == len(w.procs) && len(w.procs) > 0 {
		w.runCollectionLocked(a)
	}
	w.mu.Unlock()
}

// Bind associates the calling goroutine with this Alloc for the
// duration: a GC-aware lock spun on this goroutine will join pending
// collections as this proc (SectionPoint's bound path) instead of
// merely helping.  Unbind before the goroutine exits or hands the Alloc
// elsewhere; goroutine identities are reused.
func (a *Alloc) Bind() {
	w := a.w
	id := gls.ID()
	w.mu.Lock()
	w.bound[id] = a
	w.mu.Unlock()
}

// Unbind removes the calling goroutine's Bind association.
func (a *Alloc) Unbind() {
	w := a.w
	id := gls.ID()
	w.mu.Lock()
	delete(w.bound, id)
	w.mu.Unlock()
}

// AddRoot registers a cell whose Value must survive collections and be
// forwarded in place; the typical pattern is one root per long-lived
// data structure the proc owns.
func (a *Alloc) AddRoot(r *mlheap.Value) {
	a.w.mu.Lock()
	a.w.waitRegistrationLocked()
	a.roots = append(a.roots, r)
	a.w.mu.Unlock()
}

// RemoveRoot unregisters a previously added root cell.
func (a *Alloc) RemoveRoot(r *mlheap.Value) {
	a.w.mu.Lock()
	a.w.waitRegistrationLocked()
	for i, x := range a.roots {
		if x == r {
			a.roots = append(a.roots[:i], a.roots[i+1:]...)
			break
		}
	}
	a.w.mu.Unlock()
}

// stash copies the in-flight slot values into the Alloc's scratch space
// and returns root cells pointing at the copies.  unstash writes the
// (possibly forwarded) values back.  Keeping the cells on the Alloc —
// not built fresh per call — is what makes Record's no-GC path
// allocation-free.
func (a *Alloc) stash(slots []mlheap.Value) []*mlheap.Value {
	a.scratch = append(a.scratch[:0], slots...)
	a.refs = a.refs[:0]
	for i := range a.scratch {
		a.refs = append(a.refs, &a.scratch[i])
	}
	return a.refs
}

func (a *Alloc) unstash(slots []mlheap.Value) {
	copy(slots, a.scratch)
	a.refs = a.refs[:0]
	a.scratch = a.scratch[:0]
}

// Record allocates a record, synchronizing with collections as needed.
// The slot values are protected across any collection that happens
// inside the call — whether raised by this proc or joined at the clean
// point on behalf of another — by registering them as roots, so callers
// may freely pass heap pointers.  When no collection intervenes the
// call performs zero Go-heap allocations.
func (a *Alloc) Record(slots ...mlheap.Value) mlheap.Value {
	for {
		if a.w.gcFlag.Load() {
			a.joinInflight(slots)
		}
		v, err := a.pa.AllocRecord(slots...)
		if err == nil {
			return v
		}
		// Region exhausted: raise a collection.
		a.raiseInflight(slots)
	}
}

// joinInflight joins a pending collection with the given in-flight slot
// values registered as roots.
func (a *Alloc) joinInflight(slots []mlheap.Value) {
	w := a.w
	w.mu.Lock()
	if w.gcNeeded {
		a.waitForGCLocked(a.stash(slots))
		a.unstash(slots)
	}
	w.mu.Unlock()
}

// raiseInflight raises (or joins) a collection request with the given
// in-flight slot values registered as roots.
func (a *Alloc) raiseInflight(slots []mlheap.Value) {
	w := a.w
	w.mu.Lock()
	w.raiseLocked()
	a.waitForGCLocked(a.stash(slots))
	a.unstash(slots)
	w.mu.Unlock()
}

// CleanPoint is the paper's clean point: if a collection has been
// requested, the calling proc stops here until it completes.  Procs that
// compute for long stretches without allocating should call it
// periodically.
func (a *Alloc) CleanPoint() { a.cleanPoint(nil) }

// cleanPoint joins any pending collection, registering the caller's
// in-flight values as roots for the duration.  The fast path is a single
// atomic load, so instruction-level callers (the vm package polls every
// few dozen instructions) pay almost nothing when no collection is
// pending.
func (a *Alloc) cleanPoint(inflight []*mlheap.Value) {
	w := a.w
	if !w.gcFlag.Load() {
		return
	}
	w.mu.Lock()
	if w.gcNeeded {
		a.waitForGCLocked(inflight)
	}
	w.mu.Unlock()
}

// raiseLocked marks a collection as needed, time-stamping the start of
// the stop on the first raise.
func (w *World) raiseLocked() {
	if !w.gcNeeded {
		w.gcNeeded = true
		w.gcFlag.Store(true)
		w.stopStart = w.now()
	}
}

// requestGC raises (or joins) a collection request with extra in-flight
// roots.
func (a *Alloc) requestGC(extra []*mlheap.Value) {
	w := a.w
	w.mu.Lock()
	w.raiseLocked()
	a.waitForGCLocked(extra)
	w.mu.Unlock()
}

// waitForGCLocked joins the clean-point barrier; the last proc to
// arrive collects, and under the parallel plan the earlier arrivers
// steal copying work instead of sleeping.  Called with w.mu held;
// returns with w.mu held, after the collection.
func (a *Alloc) waitForGCLocked(extra []*mlheap.Value) {
	w := a.w
	a.pending = extra
	w.arrived++
	if w.arrived == len(w.procs) {
		w.runCollectionLocked(a)
		a.pending = nil
		return
	}
	gen := w.generation
	for w.generation == gen {
		if c := w.plan.Load(); c != nil {
			// A parallel plan is running: become a collector.  Spin off
			// the world lock entirely — the atomic generation mirror ends
			// the spin — so the helpers' polling never contends w.mu
			// against the coordinator's relock; on one CPU that
			// contention is pure pause inflation.
			y := w.yield
			w.mu.Unlock()
			for w.genAtomic.Load() == gen {
				if c.Help() {
					continue // more work may follow what we just did
				}
				if y != nil {
					y()
				} else {
					runtime.Gosched()
				}
			}
			w.mu.Lock()
			continue
		}
		if w.yield != nil {
			// Green-thread proc: blocking the cond var would park the OS
			// thread multiplexing the very threads the barrier awaits.
			y := w.yield
			w.mu.Unlock()
			y()
			w.mu.Lock()
		} else {
			w.cond.Wait()
		}
	}
	a.pending = nil
}

// runCollectionLocked performs the collection over every registered
// root and releases the barrier.  Called with w.mu held; collector is
// the Alloc of the goroutine actually performing the collection, so the
// trace span is emitted on a ring that goroutine owns (trace rings are
// single-writer).
//
// Under the parallel plan the lock is dropped while the copy runs so
// that barrier waiters (and GC-aware lock spinners) can steal work; the
// collecting flag keeps registration changes out for the duration.  The
// coordinating goroutine itself polls with runtime.Gosched — never the
// green yield hook, because Detach-driven collections may run on host
// goroutines where a green yield would be invalid, and the coordinator
// makes progress regardless: helpers are an optimization, never a
// dependency.
func (w *World) runCollectionLocked(collector *Alloc) {
	w.tracer.Begin(collector.tid, w.evGC)
	// Reused scratch: the root gather runs thousands of times a second
	// and must not feed the host runtime's allocator (whose GC pauses
	// would surface in our tails).  Safe to reuse — one collection at a
	// time, and the heap copies the roots it retains into its own plan.
	roots := w.rootScratch[:0]
	roots = append(roots, w.global...)
	for _, p := range w.procs {
		roots = append(roots, p.roots...)
		roots = append(roots, p.pending...)
	}
	w.rootScratch = roots
	w.collecting = true
	stopped := w.now()
	if w.sequential {
		w.heap.Collect(roots)
	} else {
		c := w.heap.StartCollect(roots)
		w.plan.Store(c)
		w.cond.Broadcast() // switch cond-blocked waiters into helpers
		w.mu.Unlock()
		c.Run(nil)
		w.mu.Lock()
		w.plan.Store(nil)
	}
	end := w.now()
	stop, pause := stopped-w.stopStart, end-w.stopStart
	w.stopTicks.Observe(collector.tid, stop)
	w.pauseTicks.Observe(collector.tid, pause)
	if cur := w.maxPause.Value(); pause > cur {
		// Single-writer under w.mu: raise the high-water counter by the
		// delta so Value always reads the maximum.
		w.maxPause.Add(0, pause-cur)
	}
	if cur := w.maxStop.Value(); stop > cur {
		w.maxStop.Add(0, stop-cur)
	}
	w.pauses[w.pauseIdx] = pause
	w.pauseIdx = (w.pauseIdx + 1) % pauseRing
	if w.pauseLen < pauseRing {
		w.pauseLen++
	}
	w.tracer.End(collector.tid, w.evGC)
	w.gcs++
	w.collecting = false
	w.gcNeeded = false
	w.gcFlag.Store(false)
	w.arrived = 0
	w.generation++
	w.genAtomic.Store(w.generation)
	w.cond.Broadcast()
}

// Bytes allocates a byte object (an ML string), synchronizing with
// collections as needed.
func (a *Alloc) Bytes(data []byte) mlheap.Value {
	for {
		a.cleanPoint(nil)
		v, err := a.pa.AllocBytes(data)
		if err == nil {
			return v
		}
		a.requestGC(nil)
	}
}

// Set writes slot i of record v through this proc's allocator: the
// old-to-young write barrier goes to the proc's private store buffer
// with no lock — §5's synchronization-free assignment path.
func (a *Alloc) Set(v mlheap.Value, i int, x mlheap.Value) { a.pa.Set(v, i, x) }
