// Package gcsync implements the paper's multiprocessor collection
// protocol (§5) for real: "When the allocation region is completely
// filled and a garbage collection (GC) is required, the procs are
// synchronized at clean points, the collection is performed by one of
// them, and the allocation region is redivided."
//
// A World couples an mlheap.Heap with the set of procs currently
// allocating from it.  Each proc holds an Alloc handle; Record is the
// allocation fast path (a bump in the proc's private region).  When the
// region is exhausted, the allocating proc raises a collection request;
// every registered proc stops at its next clean point (Record or
// CleanPoint call); the last to arrive performs the sequential collection
// over all registered roots — including the in-flight slot values of
// every blocked Record, which the collector must treat as roots and
// forward — and then releases the world.
//
// Constraints inherited from the paper's design: a proc must not spin on
// a mutex held by a proc that is blocked in a collection (keep critical
// sections allocation-free), and a proc that stops allocating for a long
// stretch should call CleanPoint periodically or Detach so it cannot
// stall a collection.
package gcsync

import (
	"sync"
	"sync/atomic"

	"repro/internal/mlheap"
	"repro/internal/trace"
)

// World is a shared heap plus its clean-point protocol state.
type World struct {
	heap *mlheap.Heap

	mu         sync.Mutex
	cond       *sync.Cond
	procs      []*Alloc
	global     []*mlheap.Value // world-wide roots, independent of any proc
	gcNeeded   bool
	gcFlag     atomic.Bool // lock-free mirror of gcNeeded for hot clean points
	arrived    int
	generation uint64
	gcs        int

	tracer *trace.Tracer
	evGC   trace.EventID
}

// NewWorld wraps a heap.  The heap's configured proc count bounds how
// many Allocs may be attached at once.
func NewWorld(cfg mlheap.Config) *World {
	w := &World{heap: mlheap.New(cfg)}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Heap exposes the underlying heap for reads (Get/Set/Len).
func (w *World) Heap() *mlheap.Heap { return w.heap }

// SetTracer attaches an event tracer; each collection appears as a
// "gc.collect" span on the collecting proc's ring.  Call before the
// first allocation.
//
// The ring/tid an Alloc emits on is the proc id recorded at attach
// time.  When the tracer is shared with other instrumented layers
// (proc.Platform, threads.System), attach with AttachProc(proc.Self())
// so GC spans land on the same track as that proc's scheduler events;
// plain Attach uses attach order, a private id domain that only lines
// up with platform proc ids by accident.
func (w *World) SetTracer(t *trace.Tracer) {
	w.tracer = t
	if t != nil {
		w.evGC = t.Define("gc.collect")
	}
}

// AddRoot registers a world-wide root cell: its Value survives
// collections and is forwarded in place regardless of which procs are
// attached.  Use it for structures that outlive the proc that built
// them; per-proc roots belong on the Alloc instead.
func (w *World) AddRoot(r *mlheap.Value) {
	w.mu.Lock()
	w.global = append(w.global, r)
	w.mu.Unlock()
}

// RemoveRoot unregisters a world-wide root cell.
func (w *World) RemoveRoot(r *mlheap.Value) {
	w.mu.Lock()
	for i, x := range w.global {
		if x == r {
			w.global = append(w.global[:i], w.global[i+1:]...)
			break
		}
	}
	w.mu.Unlock()
}

// GCs reports how many collections the world has performed.
func (w *World) GCs() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.gcs
}

// Alloc is one proc's allocation handle: a private bump region plus the
// proc's registered roots.
type Alloc struct {
	w       *World
	pa      *mlheap.ProcAlloc
	tid     int // proc id recorded at attach time: the trace ring/track
	roots   []*mlheap.Value
	pending []*mlheap.Value // in-flight Record slots, roots during a GC
}

// Attach registers a new allocating proc with the world, using attach
// order as its trace proc id — fine for a tracer private to this world,
// but see SetTracer when the tracer is shared across layers.
func (w *World) Attach() *Alloc {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.attachLocked(len(w.procs))
}

// AttachProc registers a new allocating proc recording procID as its
// trace proc id, so GC spans merge onto the right track when the tracer
// is shared with the MP platform (pass proc.Self()).
func (w *World) AttachProc(procID int) *Alloc {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.attachLocked(procID)
}

func (w *World) attachLocked(procID int) *Alloc {
	a := &Alloc{w: w, pa: w.heap.NewProcAlloc(), tid: procID}
	w.procs = append(w.procs, a)
	return a
}

// Detach removes the proc from the world; a detached proc can no longer
// stall collections.  Its registered roots remain live until the Alloc
// is garbage (the collector keeps scanning them), so Detach first hands
// them to the world.
func (a *Alloc) Detach() {
	w := a.w
	w.mu.Lock()
	for i, p := range w.procs {
		if p == a {
			w.procs = append(w.procs[:i], w.procs[i+1:]...)
			break
		}
	}
	// A pending collection may now have everyone it is waiting for; the
	// detaching proc performs it, so the span goes on its own ring.
	if w.gcNeeded && w.arrived == len(w.procs) {
		w.collectLocked(a)
	}
	w.mu.Unlock()
}

// AddRoot registers a cell whose Value must survive collections and be
// forwarded in place; the typical pattern is one root per long-lived
// data structure the proc owns.
func (a *Alloc) AddRoot(r *mlheap.Value) {
	a.w.mu.Lock()
	a.roots = append(a.roots, r)
	a.w.mu.Unlock()
}

// RemoveRoot unregisters a previously added root cell.
func (a *Alloc) RemoveRoot(r *mlheap.Value) {
	a.w.mu.Lock()
	for i, x := range a.roots {
		if x == r {
			a.roots = append(a.roots[:i], a.roots[i+1:]...)
			break
		}
	}
	a.w.mu.Unlock()
}

// Record allocates a record, synchronizing with collections as needed.
// The slot values are protected across any collection that happens
// inside the call — whether raised by this proc or joined at the clean
// point on behalf of another — by registering them as roots, so callers
// may freely pass heap pointers.
func (a *Alloc) Record(slots ...mlheap.Value) mlheap.Value {
	refs := make([]*mlheap.Value, len(slots))
	for i := range slots {
		refs[i] = &slots[i]
	}
	for {
		a.cleanPoint(refs)
		v, err := a.pa.AllocRecord(slots...)
		if err == nil {
			return v
		}
		// Region exhausted: raise a collection.
		a.requestGC(refs)
	}
}

// CleanPoint is the paper's clean point: if a collection has been
// requested, the calling proc stops here until it completes.  Procs that
// compute for long stretches without allocating should call it
// periodically.
func (a *Alloc) CleanPoint() { a.cleanPoint(nil) }

// cleanPoint joins any pending collection, registering the caller's
// in-flight values as roots for the duration.  The fast path is a single
// atomic load, so instruction-level callers (the vm package polls every
// few dozen instructions) pay almost nothing when no collection is
// pending.
func (a *Alloc) cleanPoint(inflight []*mlheap.Value) {
	w := a.w
	if !w.gcFlag.Load() {
		return
	}
	w.mu.Lock()
	if w.gcNeeded {
		a.waitForGCLocked(inflight)
	}
	w.mu.Unlock()
}

// requestGC raises (or joins) a collection request with extra in-flight
// roots.
func (a *Alloc) requestGC(extra []*mlheap.Value) {
	w := a.w
	w.mu.Lock()
	w.gcNeeded = true
	w.gcFlag.Store(true)
	a.waitForGCLocked(extra)
	w.mu.Unlock()
}

// waitForGCLocked joins the clean-point barrier; the last proc to arrive
// collects.  Called with w.mu held; returns with w.mu held, after the
// collection.
func (a *Alloc) waitForGCLocked(extra []*mlheap.Value) {
	w := a.w
	a.pending = extra
	w.arrived++
	if w.arrived == len(w.procs) {
		w.collectLocked(a)
		a.pending = nil
		return
	}
	gen := w.generation
	for w.generation == gen {
		w.cond.Wait()
	}
	a.pending = nil
}

// collectLocked performs the sequential collection over every registered
// root and releases the barrier.  Called with w.mu held; collector is
// the Alloc of the goroutine actually performing the collection, so the
// span is emitted on a ring that goroutine owns (trace rings are
// single-writer).
func (w *World) collectLocked(collector *Alloc) {
	w.tracer.Begin(collector.tid, w.evGC)
	roots := append([]*mlheap.Value(nil), w.global...)
	for _, p := range w.procs {
		roots = append(roots, p.roots...)
		roots = append(roots, p.pending...)
	}
	w.heap.Collect(roots)
	w.tracer.End(collector.tid, w.evGC)
	w.gcs++
	w.gcNeeded = false
	w.gcFlag.Store(false)
	w.arrived = 0
	w.generation++
	w.cond.Broadcast()
}

// Bytes allocates a byte object (an ML string), synchronizing with
// collections as needed.
func (a *Alloc) Bytes(data []byte) mlheap.Value {
	for {
		a.cleanPoint(nil)
		v, err := a.pa.AllocBytes(data)
		if err == nil {
			return v
		}
		a.requestGC(nil)
	}
}
