package gcsync

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mlheap"
	"repro/internal/spinlock"
)

// parCfg sizes a world so the parallel collection path actually runs
// (see mlheap's parNeed capacity pre-check).
func parCfg(procs int) mlheap.Config {
	return mlheap.Config{
		NurseryWords: 4096,
		SemiWords:    16384,
		ChunkWords:   128,
		RegionWords:  64,
		Procs:        procs,
	}
}

// TestRecordNoGCPathAllocationFree: the Record fast path must not touch
// the Go heap — the in-flight root cells are only materialized when a
// collection actually interrupts the call (satellite: zero-alloc
// Record).
func TestRecordNoGCPathAllocationFree(t *testing.T) {
	w := NewWorld(parCfg(1))
	a := w.Attach()
	defer a.Detach()
	x := a.Record(mlheap.Int(1), mlheap.Int(2))
	allocs := testing.AllocsPerRun(50, func() {
		x = a.Record(mlheap.Int(3), x, mlheap.Int(4))
	})
	if allocs != 0 {
		t.Fatalf("Record no-GC path allocates %.1f objects per call, want 0", allocs)
	}
}

// TestGCAwareLockSpinnerJoins is the MPL scenario: a proc spinning on a
// held GC-aware lock must join a pending collection mid-spin, so the
// collection completes even though the lock is never released.  Without
// the GCAware wrapper the spinner would never reach a clean point and
// the world would deadlock here.
func TestGCAwareLockSpinnerJoins(t *testing.T) {
	w := NewWorld(parCfg(2))
	lock := spinlock.GCAware(spinlock.NewTAS, w)()

	// The lock is held by this test goroutine — which is NOT an attached
	// proc — for the entire collection.  Both procs attach before any
	// allocation so the barrier always awaits both.
	lock.Lock()
	a, b := w.Attach(), w.Attach()

	var gcDone atomic.Bool
	var wg sync.WaitGroup
	wg.Add(2)

	// Proc A exhausts the nursery and raises a collection, then waits at
	// the barrier for proc B.
	go func() {
		defer wg.Done()
		defer a.Detach()
		var root mlheap.Value = mlheap.Nil
		a.AddRoot(&root)
		defer a.RemoveRoot(&root)
		for w.GCs() == 0 {
			root = a.Record(mlheap.Int(1), root)
		}
	}()

	// Proc B binds its goroutine and spins on the held lock.  Its only
	// clean point is the one the GC-aware spin loop takes.
	go func() {
		defer wg.Done()
		defer b.Detach()
		b.Bind()
		defer b.Unbind()
		lock.Lock()
		// The lock was only released after the collection completed.
		if !gcDone.Load() {
			t.Error("spinner acquired the lock before the collection finished")
		}
		lock.Unlock()
	}()

	// Wait for the collection to complete WHILE the lock is still held:
	// proves the spinner joined rather than convoying the stop.
	deadline := time.Now().Add(10 * time.Second)
	for w.GCs() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("collection did not complete while lock was held: spinner never joined")
		}
		time.Sleep(time.Millisecond)
	}
	gcDone.Store(true)
	lock.Unlock()
	wg.Wait()

	snap := w.Heap().Metrics().Snapshot()
	if snap.Get("gcsync.section_entries") == 0 {
		t.Fatal("GC-aware spin path took no section entries")
	}
}

// TestVirtualClockPauses pins the pause accounting with a deterministic
// tick source: every collection observes exactly one tick of stop time
// (request -> all procs stopped) and two ticks of pause (request ->
// world released), regardless of how long the copy really took.
func TestVirtualClockPauses(t *testing.T) {
	w := NewWorld(parCfg(1))
	var ticks int64
	w.SetNow(func() int64 { ticks++; return ticks })
	a := w.Attach()
	defer a.Detach()

	var root mlheap.Value = mlheap.Nil
	a.AddRoot(&root)
	defer a.RemoveRoot(&root)
	for w.GCs() < 3 {
		root = a.Record(mlheap.Int(7), root)
		root = mlheap.Nil // retain nothing; churn until three collections
	}

	s := w.PauseSummary()
	if s.Count != 3 {
		t.Fatalf("PauseSummary.Count = %d, want 3", s.Count)
	}
	if s.P50 != 2 || s.P99 != 2 || s.Max != 2 {
		t.Fatalf("pause summary = %+v, want P50=P99=Max=2 ticks", s)
	}
	snap := w.Heap().Metrics().Snapshot()
	if got := snap.Histograms["mlheap.gc_pause_ticks"].Count; got != 3 {
		t.Fatalf("gc_pause_ticks count = %d, want 3", got)
	}
	if got := snap.Histograms["mlheap.gc_stop_ticks"].Count; got != 3 {
		t.Fatalf("gc_stop_ticks count = %d, want 3", got)
	}
	if got := snap.Get("mlheap.gc_max_pause_ticks"); got != 2 {
		t.Fatalf("gc_max_pause_ticks = %d, want 2", got)
	}
}

// TestParallelWorldTorture runs many allocating procs through repeated
// parallel collections under -race: every proc keeps a private list and
// re-verifies its full contents after the churn.
func TestParallelWorldTorture(t *testing.T) {
	const procs, cells = 6, 1500
	w := NewWorld(parCfg(procs))
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			a := w.Attach()
			defer a.Detach()
			var list mlheap.Value = mlheap.Nil
			a.AddRoot(&list)
			defer a.RemoveRoot(&list)
			for i := 0; i < cells; i++ {
				list = a.Record(mlheap.Int(int64(p*cells+i)), list)
			}
			// Walk the whole list: every cell must have survived every
			// collection intact and in order.
			h := w.Heap()
			for i := cells - 1; i >= 0; i-- {
				if got := h.Get(list, 0).Int(); got != int64(p*cells+i) {
					t.Errorf("proc %d: cell %d holds %d", p, i, got)
					return
				}
				list = h.Get(list, 1)
			}
			if list != mlheap.Nil {
				t.Errorf("proc %d: list tail not Nil", p)
			}
		}(p)
	}
	wg.Wait()
	if w.GCs() == 0 {
		t.Fatal("torture run performed no collections")
	}
	if w.Heap().Stats().MinorGCs == 0 {
		t.Fatal("no minor collections recorded")
	}
}

// TestSequentialAblationFlag: SetSequential must select the paper's
// one-collector path (the BENCH_gc baseline) and still collect
// correctly.
func TestSequentialAblationFlag(t *testing.T) {
	w := NewWorld(parCfg(2))
	w.SetSequential(true)
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			a := w.Attach()
			defer a.Detach()
			var list mlheap.Value = mlheap.Nil
			a.AddRoot(&list)
			defer a.RemoveRoot(&list)
			for i := 0; i < 800; i++ {
				list = a.Record(mlheap.Int(int64(i)), list)
			}
			h := w.Heap()
			for i := 799; i >= 0; i-- {
				if h.Get(list, 0).Int() != int64(i) {
					t.Errorf("proc %d: cell %d corrupted", p, i)
					return
				}
				list = h.Get(list, 1)
			}
		}(p)
	}
	wg.Wait()
	if w.GCs() == 0 {
		t.Fatal("sequential world performed no collections")
	}
}

// TestTryAttachRefusals: TryAttach must refuse while a collection is
// pending and when all proc slots are taken, and succeed again after
// Detach returns a slot to the pool.
func TestTryAttachRefusals(t *testing.T) {
	w := NewWorld(parCfg(2))
	a := w.TryAttach()
	b := w.TryAttach()
	if a == nil || b == nil {
		t.Fatal("TryAttach failed with free slots")
	}
	if c := w.TryAttach(); c != nil {
		t.Fatal("TryAttach succeeded beyond the proc limit")
	}
	b.Detach()
	c := w.TryAttach()
	if c == nil {
		t.Fatal("TryAttach failed after a slot was released")
	}
	c.Detach()
	a.Detach()
}
