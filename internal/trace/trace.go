// Package trace is the event half of the observability spine: per-proc
// fixed-size ring buffers of timestamped events, drained on the cold
// side into a merged, deterministic event list or a Chrome trace-event
// JSON file loadable by chrome://tracing (or https://ui.perfetto.dev).
//
// The hot path, Emit/Begin/End, is a single bounds-masked store into
// the calling proc's private ring — no locks, no allocation, no shared
// cache line — so tracing can stay wired into the scheduler and GC
// without perturbing the timings it records.  Rings overwrite their
// oldest entries when full, bounding memory for arbitrarily long runs.
//
// Rings are strictly single-writer: at any instant at most one goroutine
// may emit on a given proc's ring, and handing a ring to another writer
// (e.g. when a proc token is recycled) requires a happens-before edge
// between the old writer's last emit and the new writer's first — the
// proc platform gets this from its free-list mutex.  Emitting on a ring
// the calling goroutine does not own is a data race; events about
// another proc belong on the *caller's* ring, with the other proc's id
// as the argument.
//
// Timestamps default to wall-clock nanoseconds since the tracer's
// creation; simulated clients (internal/machine) install the desim
// virtual clock with SetClock, which together with single-threaded ring
// writes makes traces fully deterministic: same seed, same trace —
// DESIGN.md invariant §5, guarded by a test in internal/machine.
//
// All methods are nil-receiver safe, so instrumented packages carry an
// optional *Tracer and call it unconditionally; a nil or disabled
// tracer costs one predictable branch.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventID names an event kind registered with Define.
type EventID uint16

// Phase is the Chrome trace-event phase of an emitted event.
type Phase byte

// The supported Chrome trace phases.
const (
	PhaseInstant Phase = 'i' // a point event
	PhaseBegin   Phase = 'B' // opens a duration span on the proc's track
	PhaseEnd     Phase = 'E' // closes the innermost open span
)

// event is one ring entry: 24 bytes, plain stores only.
type event struct {
	ts    int64
	arg   int64
	id    EventID
	phase Phase
}

// ring is one proc's event buffer.  pos is monotone and written only by
// the proc owning the ring; padding keeps neighboring rings' write
// cursors off each other's cache lines.
type ring struct {
	buf []event
	pos uint64
	_   [96]byte
}

// Tracer owns per-proc rings and the event-name table.
type Tracer struct {
	enabled atomic.Bool
	clock   func() int64
	rings   []ring
	mask    uint32

	mu    sync.Mutex
	names []string
}

// New returns a tracer with one ring per proc, each holding ringSize
// events (rounded up to a power of two).  Proc ids are masked into the
// ring count, so any non-negative id is safe; ids should be dense in
// [0, procs) for exclusive rings.
func New(procs, ringSize int) *Tracer {
	if procs < 1 {
		procs = 1
	}
	n := 1
	for n < procs {
		n <<= 1
	}
	sz := 1
	for sz < ringSize {
		sz <<= 1
	}
	t := &Tracer{rings: make([]ring, n), mask: uint32(n - 1)}
	for i := range t.rings {
		t.rings[i].buf = make([]event, sz)
	}
	epoch := time.Now()
	t.clock = func() int64 { return int64(time.Since(epoch)) }
	return t
}

// Define registers an event name and returns its id.  Call at setup
// time, before Enable; Emit carries only the id.
func (t *Tracer) Define(name string) EventID {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, n := range t.names {
		if n == name {
			return EventID(i)
		}
	}
	t.names = append(t.names, name)
	return EventID(len(t.names) - 1)
}

// SetClock replaces the timestamp source (e.g. with a desim virtual
// clock).  Call at setup time, before Enable.
func (t *Tracer) SetClock(now func() int64) { t.clock = now }

// Enable turns event recording on.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled.Store(true)
	}
}

// Disable turns event recording off; rings retain their contents.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled.Store(false)
	}
}

// Enabled reports whether the tracer is recording.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Emit records an instant event with an argument on proc's ring.  The
// calling goroutine must be the ring's current (sole) writer; see the
// package comment for the ownership rule.
func (t *Tracer) Emit(proc int, id EventID, arg int64) { t.emit(proc, id, PhaseInstant, arg) }

// Begin opens a duration span on proc's track.
func (t *Tracer) Begin(proc int, id EventID) { t.emit(proc, id, PhaseBegin, 0) }

// End closes the innermost open span on proc's track.
func (t *Tracer) End(proc int, id EventID) { t.emit(proc, id, PhaseEnd, 0) }

func (t *Tracer) emit(proc int, id EventID, ph Phase, arg int64) {
	if t == nil || !t.enabled.Load() {
		return
	}
	r := &t.rings[uint32(proc)&t.mask]
	r.buf[r.pos&uint64(len(r.buf)-1)] = event{ts: t.clock(), arg: arg, id: id, phase: ph}
	r.pos++
}

// Event is one recorded event, resolved and merged across rings.
type Event struct {
	Proc  int
	Name  string
	Phase Phase
	TS    int64 // nanoseconds on the tracer's clock
	Arg   int64
}

// Events drains every ring into one list ordered by (TS, Proc, ring
// order).  The order is a pure function of ring contents, so a
// deterministic clock yields a deterministic list.  Call only while
// emitters are quiescent (after a run).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	names := append([]string(nil), t.names...)
	t.mu.Unlock()
	var out []Event
	for pi := range t.rings {
		r := &t.rings[pi]
		n := uint64(len(r.buf))
		start := uint64(0)
		if r.pos > n {
			start = r.pos - n
		}
		for i := start; i < r.pos; i++ {
			e := r.buf[i&(n-1)]
			name := "?"
			if int(e.id) < len(names) {
				name = names[e.id]
			}
			out = append(out, Event{Proc: pi, Name: name, Phase: e.phase, TS: e.ts, Arg: e.arg})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Proc < out[j].Proc
	})
	return out
}

// Dropped reports how many events were overwritten by ring wrap-around,
// so exporters can say what a trace is missing instead of silently
// presenting a truncated run as complete.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	var d int64
	for i := range t.rings {
		if n := uint64(len(t.rings[i].buf)); t.rings[i].pos > n {
			d += int64(t.rings[i].pos - n)
		}
	}
	return d
}

// WriteChromeJSON writes the trace in the Chrome trace-event format:
// one JSON object with a traceEvents array, timestamps in microseconds,
// pid 0, and one tid per proc.  Load the file in chrome://tracing or
// ui.perfetto.dev.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	events := t.Events()
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range events {
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		var err error
		switch e.Phase {
		case PhaseBegin, PhaseEnd:
			_, err = fmt.Fprintf(w,
				"{\"name\":%q,\"ph\":%q,\"ts\":%.3f,\"pid\":0,\"tid\":%d}%s\n",
				e.Name, string(e.Phase), float64(e.TS)/1e3, e.Proc, sep)
		default:
			_, err = fmt.Fprintf(w,
				"{\"name\":%q,\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"v\":%d}}%s\n",
				e.Name, float64(e.TS)/1e3, e.Proc, e.Arg, sep)
		}
		if err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}
