package trace

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// fixed installs a deterministic clock counting call order.
func fixed(t *Tracer) *int64 {
	var tick int64
	t.SetClock(func() int64 { tick++; return tick })
	return &tick
}

func TestEmitCollectOrder(t *testing.T) {
	tr := New(2, 8)
	fixed(tr)
	gc := tr.Define("gc")
	yield := tr.Define("yield")
	tr.Enable()
	tr.Begin(0, gc)      // ts 1
	tr.Emit(1, yield, 7) // ts 2
	tr.End(0, gc)        // ts 3
	tr.Disable()
	tr.Emit(0, yield, 9) // dropped: disabled

	evs := tr.Events()
	want := []Event{
		{Proc: 0, Name: "gc", Phase: PhaseBegin, TS: 1},
		{Proc: 1, Name: "yield", Phase: PhaseInstant, TS: 2, Arg: 7},
		{Proc: 0, Name: "gc", Phase: PhaseEnd, TS: 3},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("events = %+v, want %+v", evs, want)
	}
}

func TestRingOverwrite(t *testing.T) {
	tr := New(1, 4)
	fixed(tr)
	e := tr.Define("e")
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Emit(0, e, int64(i))
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if evs[0].Arg != 6 || evs[3].Arg != 9 {
		t.Fatalf("ring kept %+v, want newest args 6..9", evs)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
}

func TestDefineIdempotent(t *testing.T) {
	tr := New(1, 4)
	if tr.Define("a") != tr.Define("a") {
		t.Fatal("same name got two ids")
	}
	if tr.Define("a") == tr.Define("b") {
		t.Fatal("distinct names share an id")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(0, 0, 1)
	tr.Begin(0, 0)
	tr.End(0, 0)
	tr.Enable()
	tr.Disable()
	if tr.Enabled() || tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer not inert")
	}
}

// The acceptance criterion: an enabled Emit allocates nothing, with
// both the default wall clock and an installed virtual clock.
func TestEmitZeroAlloc(t *testing.T) {
	tr := New(4, 64)
	e := tr.Define("hot")
	tr.Enable()
	if n := testing.AllocsPerRun(1000, func() { tr.Emit(1, e, 42) }); n != 0 {
		t.Fatalf("Emit (wall clock) allocates %v per op, want 0", n)
	}
	fixed(tr)
	if n := testing.AllocsPerRun(1000, func() { tr.Emit(1, e, 42) }); n != 0 {
		t.Fatalf("Emit (virtual clock) allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { tr.Begin(2, e); tr.End(2, e) }); n != 0 {
		t.Fatalf("Begin/End allocates %v per op, want 0", n)
	}
	var nilTr *Tracer
	if n := testing.AllocsPerRun(1000, func() { nilTr.Emit(0, e, 1) }); n != 0 {
		t.Fatalf("nil Emit allocates %v per op, want 0", n)
	}
}

func TestChromeJSON(t *testing.T) {
	tr := New(2, 8)
	fixed(tr)
	gc := tr.Define("gc")
	ev := tr.Define(`quote"name`)
	tr.Enable()
	tr.Begin(0, gc)
	tr.Emit(1, ev, 5)
	tr.End(0, gc)

	var b strings.Builder
	if err := tr.WriteChromeJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("traceEvents = %d entries, want 3", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "B" || doc.TraceEvents[0]["name"] != "gc" {
		t.Fatalf("first event = %v", doc.TraceEvents[0])
	}
	inst := doc.TraceEvents[1]
	if inst["ph"] != "i" || inst["s"] != "t" {
		t.Fatalf("instant event = %v", inst)
	}
	if args, ok := inst["args"].(map[string]any); !ok || args["v"] != float64(5) {
		t.Fatalf("instant args = %v", inst["args"])
	}
	// Empty tracer still writes a loadable document.
	var empty strings.Builder
	if err := New(1, 4).WriteChromeJSON(&empty); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(empty.String()), &doc); err != nil {
		t.Fatalf("empty trace not valid JSON: %v", err)
	}
}
