// Package mlio models the paper's multiprocessor I/O story (§3.4): "two
// procs may perform I/O operations simultaneously, possibly accessing the
// same runtime-system data structures.  MP takes no specific steps to
// prevent such conflicts since different clients may have different
// locking needs.  For instance, our CML implementation protects the data
// structures by a single global lock.  Other clients may wish to use
// finer-grained locking."
//
// A Runtime is the runtime system's I/O state: buffered streams whose
// buffer operations are deliberately unsynchronized, exactly like the
// 1993 runtime.  Clients choose a policy:
//
//   - Unlocked — raw runtime calls; concurrent writers may interleave
//     mid-record (the hazard §3.4 describes);
//   - GlobalLock — one lock around every runtime entry, the CML
//     prototype's choice;
//   - PerStream — finer-grained locking, one lock per stream.
//
// Tests demonstrate that the global-lock and per-stream policies keep
// records atomic while raw access does not (under the Go race detector
// the raw policy is also a *detected* data race, which is the point).
package mlio

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/spinlock"
)

// Stream is one buffered output stream inside the runtime; its methods
// are NOT synchronized, mirroring the 1993 runtime's C buffers.
type Stream struct {
	name string
	buf  bytes.Buffer
}

// Name returns the stream's name.
func (st *Stream) Name() string { return st.name }

// writeRecord appends one record byte-by-byte; the slow path is what
// makes unsynchronized interleaving observable.
func (st *Stream) writeRecord(rec []byte) {
	for _, b := range rec {
		st.buf.WriteByte(b)
	}
	st.buf.WriteByte('\n')
}

// Runtime is the runtime-system I/O state shared by all procs.
type Runtime struct {
	streams map[string]*Stream
	meta    spinlock.Lock // guards the stream table only (runtime internal)
}

// NewRuntime returns an empty runtime I/O state.
func NewRuntime() *Runtime {
	return &Runtime{
		streams: make(map[string]*Stream),
		meta:    core.NewMutexLock(),
	}
}

// Open returns the named stream, creating it if needed.  The stream
// table itself is runtime-internal state and is always protected (§5:
// "a few remaining globals are shared under protection of internal mutex
// locks").
func (r *Runtime) Open(name string) *Stream {
	r.meta.Lock()
	defer r.meta.Unlock()
	st, ok := r.streams[name]
	if !ok {
		st = &Stream{name: name}
		r.streams[name] = st
	}
	return st
}

// Contents snapshots a stream's buffer.
func (r *Runtime) Contents(name string) []byte {
	r.meta.Lock()
	st := r.streams[name]
	r.meta.Unlock()
	if st == nil {
		return nil
	}
	return append([]byte(nil), st.buf.Bytes()...)
}

// Policy is a client locking discipline for runtime I/O.
type Policy interface {
	// Write emits one record to the named stream under the policy's
	// locking discipline.
	Write(st *Stream, rec []byte)
}

// Unlocked performs raw runtime calls with no client locking; concurrent
// records may interleave.
type Unlocked struct{}

// Write emits the record with no locking.
func (Unlocked) Write(st *Stream, rec []byte) { st.writeRecord(rec) }

// GlobalLock serializes every runtime I/O call through one lock, the CML
// prototype's policy.
type GlobalLock struct {
	lk core.Lock
}

// NewGlobalLock returns the single-global-lock policy.
func NewGlobalLock() *GlobalLock { return &GlobalLock{lk: core.NewMutexLock()} }

// Write emits the record under the global lock.
func (g *GlobalLock) Write(st *Stream, rec []byte) {
	g.lk.Lock()
	st.writeRecord(rec)
	g.lk.Unlock()
}

// PerStream locks each stream separately — the finer-grained discipline
// §3.4 anticipates for other clients.
type PerStream struct {
	mu    spinlock.Lock
	locks map[*Stream]core.Lock
}

// NewPerStream returns the per-stream locking policy.
func NewPerStream() *PerStream {
	return &PerStream{mu: core.NewMutexLock(), locks: make(map[*Stream]core.Lock)}
}

func (p *PerStream) lockFor(st *Stream) core.Lock {
	p.mu.Lock()
	defer p.mu.Unlock()
	l, ok := p.locks[st]
	if !ok {
		l = core.NewMutexLock()
		p.locks[st] = l
	}
	return l
}

// Write emits the record under the stream's own lock.
func (p *PerStream) Write(st *Stream, rec []byte) {
	l := p.lockFor(st)
	l.Lock()
	st.writeRecord(rec)
	l.Unlock()
}
