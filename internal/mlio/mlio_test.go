package mlio

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/proc"
	"repro/internal/syncx"
	"repro/internal/threads"
)

// hammer writes n records per writer from several threads under the given
// policy and returns the stream contents.
func hammer(t *testing.T, pol Policy, writers, n int) []byte {
	t.Helper()
	rt := NewRuntime()
	s := threads.New(proc.New(4), threads.Options{})
	s.Run(func() {
		st := rt.Open("out")
		wg := syncx.NewWaitGroup(s, writers)
		for w := 0; w < writers; w++ {
			w := w
			s.Fork(func() {
				for i := 0; i < n; i++ {
					pol.Write(st, []byte(fmt.Sprintf("writer%02d-record%04d", w, i)))
					if i%8 == 0 {
						s.Yield()
					}
				}
				wg.Done()
			})
		}
		wg.Wait()
	})
	return rt.Contents("out")
}

// checkAtomic verifies that every line of the output is a complete,
// well-formed record.
func checkAtomic(data []byte, writers, n int) error {
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	if len(lines) != writers*n {
		return fmt.Errorf("%d records, want %d", len(lines), writers*n)
	}
	counts := map[string]int{}
	for _, l := range lines {
		if len(l) != len("writer00-record0000") {
			return fmt.Errorf("torn record %q", l)
		}
		counts[string(l)]++
	}
	for rec, c := range counts {
		if c != 1 {
			return fmt.Errorf("record %q appears %d times", rec, c)
		}
	}
	return nil
}

func TestGlobalLockKeepsRecordsAtomic(t *testing.T) {
	data := hammer(t, NewGlobalLock(), 6, 50)
	if err := checkAtomic(data, 6, 50); err != nil {
		t.Fatal(err)
	}
}

func TestPerStreamKeepsRecordsAtomic(t *testing.T) {
	data := hammer(t, NewPerStream(), 6, 50)
	if err := checkAtomic(data, 6, 50); err != nil {
		t.Fatal(err)
	}
}

func TestPerStreamAllowsParallelStreams(t *testing.T) {
	// Different streams must not serialize against each other under the
	// per-stream policy; functional check: both streams complete and are
	// individually intact.
	rt := NewRuntime()
	pol := NewPerStream()
	s := threads.New(proc.New(4), threads.Options{})
	s.Run(func() {
		wg := syncx.NewWaitGroup(s, 2)
		for _, name := range []string{"a", "b"} {
			name := name
			s.Fork(func() {
				st := rt.Open(name)
				for i := 0; i < 100; i++ {
					pol.Write(st, []byte(fmt.Sprintf("writer00-record%04d", i)))
				}
				wg.Done()
			})
		}
		wg.Wait()
	})
	for _, name := range []string{"a", "b"} {
		if err := checkAtomic(rt.Contents(name), 1, 100); err != nil {
			t.Fatalf("stream %s: %v", name, err)
		}
	}
}

// TestPerStreamConcurrentWritersNoTornLines is the serving-path variant
// of the atomicity check: two MP threads write *variable-length* records
// to the same stream (the access-log shape — every line a different
// width), released simultaneously through a barrier so their write
// windows genuinely overlap, yielding between every record to force
// interleaving at the scheduler level.  Under the per-stream lock every
// line must still come out whole: correct prefix, correct
// length-for-sequence-number, correct terminator.
func TestPerStreamConcurrentWritersNoTornLines(t *testing.T) {
	const perWriter = 200
	rt := NewRuntime()
	pol := NewPerStream()
	s := threads.New(proc.New(4), threads.Options{})
	s.Run(func() {
		st := rt.Open("access")
		start := syncx.NewBarrier(s, 2)
		wg := syncx.NewWaitGroup(s, 2)
		for w := 0; w < 2; w++ {
			w := w
			s.Fork(func() {
				start.Await()
				for i := 0; i < perWriter; i++ {
					// Record length varies with the sequence number.
					rec := fmt.Sprintf("w%d|%s|%04d", w, bytes.Repeat([]byte{'x'}, i%37), i)
					pol.Write(st, []byte(rec))
					s.Yield()
				}
				wg.Done()
			})
		}
		wg.Wait()
	})

	lines := bytes.Split(bytes.TrimSuffix(rt.Contents("access"), []byte("\n")), []byte("\n"))
	if len(lines) != 2*perWriter {
		t.Fatalf("%d lines, want %d", len(lines), 2*perWriter)
	}
	seen := map[string]int{}
	for _, l := range lines {
		parts := bytes.Split(l, []byte("|"))
		if len(parts) != 3 || len(parts[0]) != 2 || parts[0][0] != 'w' {
			t.Fatalf("torn line %q", l)
		}
		var seq int
		if _, err := fmt.Sscanf(string(parts[2]), "%04d", &seq); err != nil {
			t.Fatalf("torn line %q: bad sequence field: %v", l, err)
		}
		if want := seq % 37; len(parts[1]) != want || bytes.Count(parts[1], []byte{'x'}) != want {
			t.Fatalf("torn line %q: body %d bytes, want %d", l, len(parts[1]), want)
		}
		seen[string(l)]++
	}
	for rec, c := range seen {
		if c != 1 {
			t.Errorf("record %q appears %d times", rec, c)
		}
	}
}

func TestOpenIsIdempotent(t *testing.T) {
	rt := NewRuntime()
	pl := proc.New(1)
	pl.Run(func() {
		a := rt.Open("x")
		b := rt.Open("x")
		if a != b {
			t.Error("Open returned two streams for one name")
		}
	}, nil)
}

func TestUnlockedSingleWriterIsFine(t *testing.T) {
	// The raw policy is correct for a single writer — the point of §3.4
	// is that MP leaves the policy to the client.
	data := hammer(t, Unlocked{}, 1, 100)
	if err := checkAtomic(data, 1, 100); err != nil {
		t.Fatal(err)
	}
}
