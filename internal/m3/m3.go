// Package m3 is a Modula-3 style thread package, the client the paper
// reports first building on MP ("an enhanced and portable version of ML
// Threads, a Modula-3 style thread package", which in turn carried the
// concurrent-debugging and transaction work).  It layers the Modula-3
// threads interface — fork/join with result values, mutexes, condition
// variables, and alerts — over the Fig. 3 scheduler and the syncx
// constructs, which are themselves pure MP clients.
//
// Alerts: the paper provides no facility for procs to alert one another
// and suggests simulating such operations by polling in the target
// (§3.4).  Accordingly Alert sets a flag on the target thread, and the
// alertable operations (TestAlert, AlertWait, AlertJoin) observe it at
// their own synchronization points, raising ErrAlerted exactly as
// Modula-3's Alerted exception would.
package m3

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/syncx"
	"repro/internal/threads"
)

// ErrAlerted reports that an alertable wait observed an alert, the
// analogue of Modula-3's Alerted exception.
var ErrAlerted = errors.New("m3: thread alerted")

// Mutex and Cond re-export the syncx constructs under their Modula-3
// names.
type (
	// Mutex is Modula-3's MUTEX.
	Mutex = syncx.Mutex
	// Cond is Modula-3's Thread.Condition.
	Cond = syncx.Cond
)

// T is a thread handle: forked threads can be joined for their result
// and alerted.
type T[R any] struct {
	sys     *threads.System
	result  R
	err     error
	done    bool
	alerted atomic.Bool
	mu      *syncx.Mutex
	cv      *syncx.Cond
	id      int
}

// System wraps a threads.System with the Modula-3 surface.
type System struct {
	s *threads.System
}

// New wraps a thread scheduler.
func New(s *threads.System) *System { return &System{s: s} }

// Threads returns the underlying scheduler.
func (m *System) Threads() *threads.System { return m.s }

// NewMutex returns an unheld mutex.
func (m *System) NewMutex() *Mutex { return syncx.NewMutex(m.s) }

// NewCond returns a condition variable tied to mu.
func (m *System) NewCond(mu *Mutex) *Cond { return syncx.NewCond(m.s, mu) }

// Fork starts a thread computing f and returns its handle
// (Thread.Fork).  A panic in f is captured and re-delivered to Join.
func Fork[R any](m *System, f func() R) *T[R] {
	t := &T[R]{sys: m.s}
	t.mu = syncx.NewMutex(m.s)
	t.cv = syncx.NewCond(m.s, t.mu)
	m.s.Fork(func() {
		t.id = m.s.ID()
		res, err := runCaptured(f)
		t.mu.Lock()
		t.result, t.err = res, err
		t.done = true
		t.cv.Broadcast()
		t.mu.Unlock()
	})
	return t
}

func runCaptured[R any](f func() R) (res R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("m3: thread panicked: %v", r)
		}
	}()
	res = f()
	return
}

// Join waits for the thread to finish and returns its result
// (Thread.Join).  If the thread panicked, Join returns the captured
// error.
func (t *T[R]) Join() (R, error) {
	t.mu.Lock()
	for !t.done {
		t.cv.Wait()
	}
	res, err := t.result, t.err
	t.mu.Unlock()
	return res, err
}

// AlertJoin is the alertable form of Join: it returns ErrAlerted early
// if the handle is alerted before the thread finishes (alerts attach to
// handles in this package, since Go code cannot ask "which thread am
// I?" without being handed its own handle).
func (t *T[R]) AlertJoin() (R, error) {
	t.mu.Lock()
	for !t.done {
		if t.alerted.Load() {
			t.mu.Unlock()
			var zero R
			return zero, ErrAlerted
		}
		t.cv.Wait()
	}
	res, err := t.result, t.err
	t.mu.Unlock()
	return res, err
}

// Alert requests that the thread stop what it is doing (Thread.Alert).
// Delivery is by polling: the target observes the alert at its next
// TestAlert or alertable wait, as §3.4 prescribes for inter-proc
// signalling.  Alert also wakes alertable waiters on the handle.
func (t *T[R]) Alert() {
	t.alerted.Store(true)
	t.mu.Lock()
	t.cv.Broadcast()
	t.mu.Unlock()
}

// TestAlert reports and consumes a pending alert on the handle
// (Thread.TestAlert); the running thread polls it at convenient points.
func (t *T[R]) TestAlert() bool {
	return t.alerted.Swap(false)
}

// Alerted reports a pending alert without consuming it.
func (t *T[R]) Alerted() bool { return t.alerted.Load() }

// AlertWait is Thread.AlertWait: wait on a condition, but raise
// ErrAlerted (re-acquiring the mutex first, per Modula-3 semantics) if
// the handle is alerted.  The caller passes its own handle, since the
// package cannot see which thread is running.
func AlertWait[R any](t *T[R], mu *Mutex, cv *Cond) error {
	if t.TestAlert() {
		return ErrAlerted
	}
	cv.Wait()
	if t.TestAlert() {
		return ErrAlerted
	}
	return nil
}

// Pause yields the processor, a convenient poll point (Thread.Pause with
// zero duration; MP has no timers).
func (m *System) Pause() { m.s.Yield() }
