package m3_test

import (
	"errors"
	"fmt"

	"repro/internal/m3"
	"repro/internal/proc"
	"repro/internal/threads"
)

// Modula-3 style fork/join: threads are handles carrying result values.
func ExampleFork() {
	sys := m3.New(threads.New(proc.New(2), threads.Options{}))
	sys.Threads().Run(func() {
		th := m3.Fork(sys, func() int { return 6 * 7 })
		v, err := th.Join()
		fmt.Println(v, err)
	})
	// Output:
	// 42 <nil>
}

// Alerts are delivered by polling, the §3.4 discipline for inter-proc
// signalling.
func ExampleT_Alert() {
	sys := m3.New(threads.New(proc.New(2), threads.Options{}))
	sys.Threads().Run(func() {
		hch := make(chan *m3.T[string], 1)
		th := m3.Fork(sys, func() string {
			self := <-hch
			for !self.TestAlert() {
				sys.Pause()
			}
			return "stopped politely"
		})
		hch <- th
		sys.Pause()
		th.Alert()
		v, err := th.Join()
		fmt.Println(v, errors.Is(err, m3.ErrAlerted))
	})
	// Output:
	// stopped politely false
}
