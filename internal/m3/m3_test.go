package m3

import (
	"errors"
	"sync/atomic"
	"testing"

	"repro/internal/proc"
	"repro/internal/threads"
)

func runM3(procs int, f func(m *System)) {
	s := threads.New(proc.New(procs), threads.Options{})
	s.Run(func() { f(New(s)) })
}

func TestForkJoinResult(t *testing.T) {
	runM3(2, func(m *System) {
		th := Fork(m, func() int { return 6 * 7 })
		v, err := th.Join()
		if err != nil || v != 42 {
			t.Errorf("Join = %d, %v", v, err)
		}
	})
}

func TestJoinAfterCompletion(t *testing.T) {
	runM3(2, func(m *System) {
		th := Fork(m, func() string { return "done" })
		m.Pause()
		m.Pause() // thread very likely finished by now
		v, err := th.Join()
		if err != nil || v != "done" {
			t.Errorf("Join = %q, %v", v, err)
		}
		// Join is idempotent.
		v2, err2 := th.Join()
		if err2 != nil || v2 != "done" {
			t.Errorf("second Join = %q, %v", v2, err2)
		}
	})
}

func TestManyForkJoin(t *testing.T) {
	runM3(4, func(m *System) {
		var hs []*T[int]
		for i := 0; i < 50; i++ {
			i := i
			hs = append(hs, Fork(m, func() int {
				m.Pause()
				return i * i
			}))
		}
		sum := 0
		for _, h := range hs {
			v, err := h.Join()
			if err != nil {
				t.Errorf("join: %v", err)
			}
			sum += v
		}
		want := 0
		for i := 0; i < 50; i++ {
			want += i * i
		}
		if sum != want {
			t.Errorf("sum = %d, want %d", sum, want)
		}
	})
}

func TestPanicCapturedAsError(t *testing.T) {
	runM3(2, func(m *System) {
		th := Fork(m, func() int { panic("boom") })
		_, err := th.Join()
		if err == nil {
			t.Error("panic not delivered to Join")
		}
	})
}

func TestAlertPolling(t *testing.T) {
	runM3(2, func(m *System) {
		var polls atomic.Int32
		// The child starts before Fork returns the handle to the parent
		// (Fig. 3 semantics: the child takes the current proc), so hand
		// the thread its own handle through a buffered channel.
		hch := make(chan *T[string], 1)
		th := Fork(m, func() string {
			self := <-hch
			for {
				polls.Add(1)
				if self.TestAlert() {
					return "alerted"
				}
				m.Pause()
			}
		})
		hch <- th
		m.Pause()
		th.Alert()
		v, err := th.Join()
		if err != nil || v != "alerted" {
			t.Errorf("Join = %q, %v", v, err)
		}
		if polls.Load() == 0 {
			t.Error("thread never polled")
		}
	})
}

func TestTestAlertConsumes(t *testing.T) {
	runM3(1, func(m *System) {
		th := Fork(m, func() int { return 0 })
		th.Alert()
		if !th.Alerted() {
			t.Error("Alerted = false after Alert")
		}
		if !th.TestAlert() {
			t.Error("TestAlert = false after Alert")
		}
		if th.TestAlert() {
			t.Error("TestAlert did not consume the alert")
		}
	})
}

func TestAlertJoinReturnsEarly(t *testing.T) {
	runM3(2, func(m *System) {
		release := false
		mu := m.NewMutex()
		cv := m.NewCond(mu)
		th := Fork(m, func() int {
			mu.Lock()
			for !release {
				cv.Wait()
			}
			mu.Unlock()
			return 1
		})
		th.Alert()
		_, err := th.AlertJoin()
		if !errors.Is(err, ErrAlerted) {
			t.Errorf("AlertJoin err = %v, want ErrAlerted", err)
		}
		// Release the worker so the system quiesces.
		mu.Lock()
		release = true
		cv.Broadcast()
		mu.Unlock()
		if v, err := th.Join(); err != nil || v != 1 {
			t.Errorf("final Join = %d, %v", v, err)
		}
	})
}

func TestMutexCondProducerConsumer(t *testing.T) {
	runM3(2, func(m *System) {
		mu := m.NewMutex()
		cv := m.NewCond(mu)
		queue := 0
		consumed := 0
		cons := Fork(m, func() int {
			mu.Lock()
			for consumed < 20 {
				for queue == 0 {
					cv.Wait()
				}
				queue--
				consumed++
			}
			mu.Unlock()
			return consumed
		})
		for i := 0; i < 20; i++ {
			mu.Lock()
			queue++
			cv.Signal()
			mu.Unlock()
			m.Pause()
		}
		v, err := cons.Join()
		if err != nil || v != 20 {
			t.Errorf("consumer = %d, %v", v, err)
		}
	})
}

func TestNestedFork(t *testing.T) {
	runM3(4, func(m *System) {
		outer := Fork(m, func() int {
			inner := Fork(m, func() int { return 10 })
			v, _ := inner.Join()
			return v + 1
		})
		v, err := outer.Join()
		if err != nil || v != 11 {
			t.Errorf("nested = %d, %v", v, err)
		}
	})
}
