// FairLock is the fair, spin-free claim/release protocol of Chalmers &
// Pedersen (PAPERS.md: fair synchronisation without spinning or kernel
// locks, for cooperatively scheduled runtimes), recast onto the paper's
// LOCK signature so it can stand in for any spinlock in the platform.
//
// The protocol replaces the TAS race — where whichever proc loses the
// cache-line coherence race repeatedly sets the tail — with an explicit
// FIFO claim queue and handoff on release:
//
//   - claim: an acquirer atomically draws the next ticket, which is its
//     position in the queue.  No retry, no race: one fetch-and-add and
//     the claim is registered, so overtaking is bounded (in fact zero —
//     grants are in ticket order).
//   - wait: the claimant is cooperatively scheduled while it waits — it
//     yields the processor on *every* check rather than burning a spin
//     budget, so there is no unbounded TAS spinning and a waiter never
//     starves the holder (or, on this platform, a pending collection).
//   - release: the holder advances the now-serving counter, handing the
//     lock directly to the head claimant instead of re-opening a race.
//
// The claim loop is GC-aware in the sense of PR 9 (spinlock.GCAware,
// MPL's Parallel_lockTake): when constructed over a GCWorld, every wait
// iteration polls the world's section flag and enters/leaves the GC
// section while queued, so a stop-the-world parallel collection
// proceeds even with a full claim queue — a parked claimant helps copy
// or joins the clean-point barrier, then resumes waiting for its grant.
package syncx

import (
	"runtime"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/spinlock"
)

// FairLock is a FIFO claim/release lock satisfying spinlock.Lock (and
// hence core.Lock): any proc may Unlock it, the zero value is unlocked,
// and TryLock never jumps the claim queue.  Use NewFairLock /
// FairFactory to construct; the zero value works but has no GC world or
// observer.
type FairLock struct {
	next    atomic.Uint64 // next ticket to hand out (tail of the claim queue)
	serving atomic.Uint64 // ticket currently granted (head of the claim queue)

	w       spinlock.GCWorld  // optional: poll the GC section while queued
	observe func(iters int64) // optional: wait-time observer, in claim-loop yields
}

// NewFairLock returns an unlocked FairLock with no GC world or observer.
func NewFairLock() *FairLock { return &FairLock{} }

// FairFactory returns a lock factory producing independent FairLocks,
// each polling w's GC section while queued (nil w disables the poll) and
// reporting every contended claim's wait length — in claim-loop yields —
// to observe (nil disables).  The factory slots anywhere the platform
// takes a core.LockFactory, exactly as spinlock.GCAware does for the
// spinning flavors.
func FairFactory(w spinlock.GCWorld, observe func(iters int64)) core.LockFactory {
	return func() core.Lock { return &FairLock{w: w, observe: observe} }
}

// TryLock claims the lock only if it is free *and* no claim is queued:
// it atomically advances the ticket counter from the now-serving value.
// A TryLock can therefore never overtake a queued claimant — callers
// with an abort discipline (the shard stealer) back off instead of
// cutting the line.
func (f *FairLock) TryLock() bool {
	t := f.serving.Load()
	return f.next.CompareAndSwap(t, t+1)
}

// Lock claims a queue position and waits, cooperatively, for its grant.
func (f *FairLock) Lock() { f.await(f.claim()) }

// Unlock releases the lock, handing it to the head queued claimant (if
// any) rather than re-opening a race.  Any proc may call it.
func (f *FairLock) Unlock() {
	f.serving.Add(1)
}

// QueueDepth reports how many claims are outstanding, counting the
// holder: 0 means unlocked, 1 held and uncontended, n>1 held with n-1
// queued claimants.  Racy by nature; for observability only.
func (f *FairLock) QueueDepth() int64 {
	return int64(f.next.Load() - f.serving.Load())
}

// claim draws this claimant's ticket — its FIFO queue position.  Split
// from await so tests can register claims in a known order and assert
// grants follow it.
func (f *FairLock) claim() uint64 { return f.next.Add(1) - 1 }

// await waits until ticket t is granted.  The loop yields every
// iteration (cooperative scheduling, not a spin budget) and takes the
// GC section as a safe point first, so a queued claimant can never
// convoy a collection: if the holder is stopped at the clean-point
// barrier, every waiter behind it is helping the collection, not
// spinning on the grant the stopped holder cannot issue.
func (f *FairLock) await(t uint64) {
	var iters int64
	for {
		if w := f.w; w != nil && w.InSection() {
			w.SectionPoint()
		}
		if f.serving.Load() == t {
			break
		}
		iters++
		runtime.Gosched()
	}
	if iters > 0 {
		if h := spinlock.OnContention; h != nil {
			h(iters)
		}
	}
	if ob := f.observe; ob != nil {
		ob(iters)
	}
}
