package syncx

import (
	"sync/atomic"
	"testing"

	"repro/internal/proc"
	"repro/internal/threads"
)

func newSys(procs int) *threads.System {
	return threads.New(proc.New(procs), threads.Options{})
}

func TestSemaphoreAsMutex(t *testing.T) {
	s := newSys(4)
	sem := NewSemaphore(s, 1)
	counter := 0
	s.Run(func() {
		wg := NewWaitGroup(s, 50)
		for i := 0; i < 50; i++ {
			s.Fork(func() {
				for j := 0; j < 20; j++ {
					sem.Acquire()
					counter++
					sem.Release()
				}
				wg.Done()
			})
		}
		wg.Wait()
	})
	if counter != 1000 {
		t.Fatalf("counter = %d, want 1000", counter)
	}
}

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	s := newSys(4)
	sem := NewSemaphore(s, 3)
	var cur, peak atomic.Int32
	s.Run(func() {
		for i := 0; i < 30; i++ {
			s.Fork(func() {
				sem.Acquire()
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				s.Yield()
				cur.Add(-1)
				sem.Release()
			})
		}
	})
	if p := peak.Load(); p > 3 {
		t.Fatalf("peak concurrency %d exceeds semaphore bound 3", p)
	}
}

func TestTryAcquire(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		sem := NewSemaphore(s, 1)
		if !sem.TryAcquire() {
			t.Error("TryAcquire on count 1 failed")
		}
		if sem.TryAcquire() {
			t.Error("TryAcquire on count 0 succeeded")
		}
		sem.Release()
		if !sem.TryAcquire() {
			t.Error("TryAcquire after Release failed")
		}
	})
}

func TestTryAcquireN(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		sem := NewSemaphore(s, 5)
		if n := sem.TryAcquireN(3); n != 3 {
			t.Errorf("TryAcquireN(3) on count 5 = %d, want 3", n)
		}
		if n := sem.TryAcquireN(10); n != 2 {
			t.Errorf("TryAcquireN(10) on count 2 = %d, want 2", n)
		}
		if n := sem.TryAcquireN(4); n != 0 {
			t.Errorf("TryAcquireN(4) on count 0 = %d, want 0", n)
		}
		if n := sem.TryAcquireN(0); n != 0 {
			t.Errorf("TryAcquireN(0) = %d, want 0", n)
		}
		sem.Release()
		if n := sem.TryAcquireN(4); n != 1 {
			t.Errorf("TryAcquireN(4) after one Release = %d, want 1", n)
		}
	})
}

func TestReleaseNWakesParkedWaiters(t *testing.T) {
	s := newSys(4)
	var woke atomic.Int32
	s.Run(func() {
		sem := NewSemaphore(s, 0)
		wg := NewWaitGroup(s, 7)
		for i := 0; i < 7; i++ {
			s.Fork(func() {
				sem.Acquire()
				woke.Add(1)
				wg.Done()
			})
		}
		for i := 0; i < 5; i++ {
			s.Yield() // let waiters park
		}
		sem.ReleaseN(4) // wakes 4 of the parked waiters in one V
		sem.ReleaseN(0) // no-op
		sem.ReleaseN(3) // wakes the rest
		wg.Wait()
	})
	if woke.Load() != 7 {
		t.Fatalf("woke = %d, want 7", woke.Load())
	}
}

func TestReleaseNSurplusBecomesCount(t *testing.T) {
	s := newSys(2)
	s.Run(func() {
		sem := NewSemaphore(s, 0)
		wg := NewWaitGroup(s, 1)
		s.Fork(func() {
			sem.Acquire()
			wg.Done()
		})
		for i := 0; i < 3; i++ {
			s.Yield()
		}
		sem.ReleaseN(5) // one waiter absorbs a credit, 4 land in the count
		wg.Wait()
		if n := sem.TryAcquireN(10); n != 4 {
			t.Fatalf("surplus count = %d, want 4", n)
		}
	})
}

// TestBatchedHandoffNoLostWakeup hammers the batched P/V pair: producers
// ReleaseN batches while consumers drain with Acquire+TryAcquireN, the
// exact shape of the serving dispatcher.  Every produced credit must be
// consumed — a lost wakeup deadlocks the run (caught by test timeout).
func TestBatchedHandoffNoLostWakeup(t *testing.T) {
	s := newSys(4)
	const producers, batches, batch = 4, 25, 8
	var consumed atomic.Int32
	total := int32(producers * batches * batch)
	s.Run(func() {
		sem := NewSemaphore(s, 0)
		wg := NewWaitGroup(s, producers+1)
		for p := 0; p < producers; p++ {
			s.Fork(func() {
				for b := 0; b < batches; b++ {
					sem.ReleaseN(batch)
					s.Yield()
				}
				wg.Done()
			})
		}
		s.Fork(func() {
			for consumed.Load() < total {
				sem.Acquire()
				n := 1 + sem.TryAcquireN(batch-1)
				consumed.Add(int32(n))
			}
			wg.Done()
		})
		wg.Wait()
	})
	if consumed.Load() != total {
		t.Fatalf("consumed = %d, want %d", consumed.Load(), total)
	}
}

func TestMutexExclusion(t *testing.T) {
	s := newSys(4)
	mu := NewMutex(s)
	counter := 0
	s.Run(func() {
		for i := 0; i < 40; i++ {
			s.Fork(func() {
				for j := 0; j < 25; j++ {
					mu.Lock()
					counter++
					mu.Unlock()
				}
			})
		}
	})
	if counter != 1000 {
		t.Fatalf("counter = %d, want 1000", counter)
	}
}

func TestMutexUnlockUnheldPanics(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		mu := NewMutex(s)
		defer func() {
			if recover() == nil {
				t.Error("Unlock of unheld mutex did not panic")
			}
		}()
		mu.Unlock()
	})
}

func TestRWLockReadersShareWritersExclude(t *testing.T) {
	s := newSys(4)
	l := NewRWLock(s)
	var readers, writers, peakR atomic.Int32
	bad := false
	s.Run(func() {
		for i := 0; i < 20; i++ {
			s.Fork(func() {
				for j := 0; j < 10; j++ {
					l.RLock()
					r := readers.Add(1)
					for {
						p := peakR.Load()
						if r <= p || peakR.CompareAndSwap(p, r) {
							break
						}
					}
					if writers.Load() != 0 {
						bad = true
					}
					s.Yield()
					readers.Add(-1)
					l.RUnlock()
				}
			})
		}
		for i := 0; i < 4; i++ {
			s.Fork(func() {
				for j := 0; j < 10; j++ {
					l.Lock()
					if writers.Add(1) != 1 || readers.Load() != 0 {
						bad = true
					}
					s.Yield()
					writers.Add(-1)
					l.Unlock()
				}
			})
		}
	})
	if bad {
		t.Fatal("reader/writer exclusion violated")
	}
	if peakR.Load() < 2 {
		t.Logf("note: peak concurrent readers = %d (no sharing observed)", peakR.Load())
	}
}

func TestCondSignal(t *testing.T) {
	s := newSys(2)
	var got []int
	s.Run(func() {
		mu := NewMutex(s)
		c := NewCond(s, mu)
		queueLen := 0
		wg := NewWaitGroup(s, 2)
		s.Fork(func() { // consumer
			mu.Lock()
			for i := 0; i < 10; i++ {
				for queueLen == 0 {
					c.Wait()
				}
				queueLen--
				got = append(got, i)
			}
			mu.Unlock()
			wg.Done()
		})
		s.Fork(func() { // producer
			for i := 0; i < 10; i++ {
				mu.Lock()
				queueLen++
				c.Signal()
				mu.Unlock()
				s.Yield()
			}
			wg.Done()
		})
		wg.Wait()
	})
	if len(got) != 10 {
		t.Fatalf("consumed %d items, want 10", len(got))
	}
}

func TestCondBroadcast(t *testing.T) {
	s := newSys(4)
	var woke atomic.Int32
	s.Run(func() {
		mu := NewMutex(s)
		c := NewCond(s, mu)
		ready := false
		wg := NewWaitGroup(s, 10)
		for i := 0; i < 10; i++ {
			s.Fork(func() {
				mu.Lock()
				for !ready {
					c.Wait()
				}
				mu.Unlock()
				woke.Add(1)
				wg.Done()
			})
		}
		for i := 0; i < 5; i++ {
			s.Yield() // let waiters park
		}
		mu.Lock()
		ready = true
		c.Broadcast()
		mu.Unlock()
		wg.Wait()
	})
	if woke.Load() != 10 {
		t.Fatalf("woke = %d, want 10", woke.Load())
	}
}

func TestBarrierPhases(t *testing.T) {
	s := newSys(4)
	const parties, phases = 6, 8
	var phase [parties]int
	bad := atomic.Bool{}
	s.Run(func() {
		b := NewBarrier(s, parties)
		wg := NewWaitGroup(s, parties)
		for i := 0; i < parties; i++ {
			i := i
			s.Fork(func() {
				for p := 0; p < phases; p++ {
					phase[i] = p
					b.Await()
					// After the barrier, every party must have reached
					// phase p.
					for j := 0; j < parties; j++ {
						if phase[j] < p {
							bad.Store(true)
						}
					}
					b.Await()
				}
				wg.Done()
			})
		}
		wg.Wait()
	})
	if bad.Load() {
		t.Fatal("barrier released a party before all arrived")
	}
}

func TestOnceRunsExactlyOnce(t *testing.T) {
	s := newSys(4)
	var runs atomic.Int32
	var after atomic.Int32
	s.Run(func() {
		o := NewOnce(s)
		for i := 0; i < 20; i++ {
			s.Fork(func() {
				o.Do(func() {
					s.Yield() // widen the window
					runs.Add(1)
				})
				after.Add(1)
			})
		}
	})
	if runs.Load() != 1 {
		t.Fatalf("Once ran %d times", runs.Load())
	}
	if after.Load() != 20 {
		t.Fatalf("only %d callers returned from Do", after.Load())
	}
}

func TestWaitGroupJoin(t *testing.T) {
	s := newSys(4)
	var done atomic.Int32
	joined := false
	s.Run(func() {
		wg := NewWaitGroup(s, 0)
		for i := 0; i < 25; i++ {
			wg.Add(1)
			s.Fork(func() {
				s.Yield()
				done.Add(1)
				wg.Done()
			})
		}
		wg.Wait()
		if done.Load() != 25 {
			t.Errorf("Wait returned with %d of 25 done", done.Load())
		}
		joined = true
	})
	if !joined {
		t.Fatal("Wait never returned")
	}
}

func TestWaitGroupZeroFastPath(t *testing.T) {
	s := newSys(1)
	s.Run(func() {
		wg := NewWaitGroup(s, 0)
		wg.Wait() // must not block
	})
}
