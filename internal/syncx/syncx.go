// Package syncx synthesizes higher-level synchronization constructs from
// the MP platform's primitives, demonstrating the paper's §3.3 claim:
// "More elaborate synchronization constructs such as reader/writer locks,
// semaphores, channels, etc., can be synthesized from mutex locks, refs,
// and first-class continuations."
//
// Every construct follows the same shape as the paper's clients: a mutex
// lock guards the construct's state; a thread that must block captures its
// continuation with callcc, parks it on a wait queue inside the critical
// section, and dispatches; a thread that releases the construct moves a
// parked continuation to the scheduler's ready queue.
package syncx

import (
	"repro/internal/cont"
	"repro/internal/core"
	"repro/internal/queue"
)

// Scheduler is the slice of the thread package the constructs need;
// threads.System implements it.
type Scheduler interface {
	Reschedule(run func(), id int)
	Dispatch()
	ID() int
}

// waiter is a parked thread: its unit continuation and thread id.
type waiter struct {
	k  *core.UnitCont
	id int
}

// park captures the current thread's continuation, runs register(w) inside
// the caller's critical section (the caller must hold lk), releases lk and
// dispatches.  It returns when some other thread reschedules w.
func park(s Scheduler, lk core.Lock, register func(w waiter)) {
	cont.Callcc(func(k *core.UnitCont) core.Unit {
		register(waiter{k: k, id: s.ID()})
		lk.Unlock()
		s.Dispatch()
		return core.Unit{} // unreachable
	})
}

// Semaphore is a counting semaphore.
type Semaphore struct {
	s     Scheduler
	lk    core.Lock
	count int
	wait  queue.Queue[waiter]
}

// NewSemaphore returns a semaphore with the given initial count.
func NewSemaphore(s Scheduler, initial int) *Semaphore {
	return NewSemaphoreWith(s, initial, core.NewMutexLock)
}

// NewSemaphoreWith is NewSemaphore with the guard lock supplied by f —
// the hook that lets servers sharing a gcsync heap guard their admission
// semaphores with GC-aware locks (spinlock.GCAware), so a dispatcher
// spinning for credits cannot convoy a pending collection.
func NewSemaphoreWith(s Scheduler, initial int, f core.LockFactory) *Semaphore {
	if initial < 0 {
		panic("syncx: negative semaphore count")
	}
	return &Semaphore{s: s, lk: f(), count: initial, wait: queue.NewFifo[waiter]()}
}

// Acquire decrements the semaphore, blocking while the count is zero
// (Dijkstra's P).
func (m *Semaphore) Acquire() {
	m.lk.Lock()
	if m.count > 0 {
		m.count--
		m.lk.Unlock()
		return
	}
	park(m.s, m.lk, func(w waiter) { m.wait.Enq(w) })
}

// TryAcquire decrements the semaphore if possible without blocking.
func (m *Semaphore) TryAcquire() bool {
	m.lk.Lock()
	ok := m.count > 0
	if ok {
		m.count--
	}
	m.lk.Unlock()
	return ok
}

// TryAcquireN takes up to max credits without blocking and returns how
// many it took (possibly zero).  One lock acquisition regardless of the
// count — the batched P the serving dispatcher drains its queue with: a
// single blocking Acquire, then one TryAcquireN for the rest of the
// batch, instead of a lock round-trip per unit.
func (m *Semaphore) TryAcquireN(max int) int {
	if max <= 0 {
		return 0
	}
	m.lk.Lock()
	n := m.count
	if n > max {
		n = max
	}
	m.count -= n
	m.lk.Unlock()
	return n
}

// Release increments the semaphore, waking one waiter if any (Dijkstra's
// V).  A waiter woken by Release absorbs the increment.
func (m *Semaphore) Release() {
	m.lk.Lock()
	if w, err := m.wait.Deq(); err == nil {
		m.lk.Unlock()
		m.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
		return
	}
	m.count++
	m.lk.Unlock()
}

// ReleaseN performs n Vs under a single lock acquisition: up to n parked
// waiters are dequeued (each absorbs one increment) and the remainder is
// added to the count, all before the lock is released.  The batched
// wakeup lets one producer admit a whole batch of work without n lock
// round-trips, and because waiter handoff and count update are one
// critical section, no concurrent Acquire can observe an intermediate
// state where a credit exists but its wakeup is lost.
func (m *Semaphore) ReleaseN(n int) {
	if n <= 0 {
		return
	}
	var wake []waiter
	m.lk.Lock()
	for len(wake) < n {
		w, err := m.wait.Deq()
		if err != nil {
			break
		}
		wake = append(wake, w)
	}
	m.count += n - len(wake)
	m.lk.Unlock()
	for _, w := range wake {
		w := w
		m.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
	}
}

// RWLock is a readers/writer lock: any number of concurrent readers, or
// one writer.  Writers are preferred once waiting, preventing writer
// starvation.
type RWLock struct {
	s       Scheduler
	lk      core.Lock
	readers int // active readers
	writing bool
	waitW   queue.Queue[waiter]
	waitR   queue.Queue[waiter]
}

// NewRWLock returns an unheld readers/writer lock.
func NewRWLock(s Scheduler) *RWLock {
	return &RWLock{s: s, lk: core.NewMutexLock(), waitW: queue.NewFifo[waiter](), waitR: queue.NewFifo[waiter]()}
}

// RLock acquires the lock for reading.
func (l *RWLock) RLock() {
	l.lk.Lock()
	if !l.writing && l.waitW.Len() == 0 {
		l.readers++
		l.lk.Unlock()
		return
	}
	park(l.s, l.lk, func(w waiter) { l.waitR.Enq(w) })
}

// RUnlock releases a read acquisition.
func (l *RWLock) RUnlock() {
	l.lk.Lock()
	if l.readers <= 0 {
		l.lk.Unlock()
		panic("syncx: RUnlock without RLock")
	}
	l.readers--
	if l.readers == 0 {
		if w, err := l.waitW.Deq(); err == nil {
			l.writing = true
			l.lk.Unlock()
			l.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
			return
		}
	}
	l.lk.Unlock()
}

// Lock acquires the lock for writing.
func (l *RWLock) Lock() {
	l.lk.Lock()
	if !l.writing && l.readers == 0 {
		l.writing = true
		l.lk.Unlock()
		return
	}
	park(l.s, l.lk, func(w waiter) { l.waitW.Enq(w) })
}

// Unlock releases a write acquisition, preferring a waiting writer, else
// admitting all waiting readers.
func (l *RWLock) Unlock() {
	l.lk.Lock()
	if !l.writing {
		l.lk.Unlock()
		panic("syncx: Unlock without Lock")
	}
	if w, err := l.waitW.Deq(); err == nil {
		// Hand the write lock directly to the next writer.
		l.lk.Unlock()
		l.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
		return
	}
	l.writing = false
	var wake []waiter
	for {
		w, err := l.waitR.Deq()
		if err != nil {
			break
		}
		wake = append(wake, w)
	}
	l.readers += len(wake)
	l.lk.Unlock()
	for _, w := range wake {
		w := w
		l.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
	}
}

// Mutex is a blocking (non-spinning) mutual-exclusion lock for threads:
// contenders park their continuations instead of burning the proc, the
// "user-level mutex locks built on top of Lock mutex locks" the
// evaluation's thread package uses for shared memory.
type Mutex struct {
	s    Scheduler
	lk   core.Lock
	held bool
	wait queue.Queue[waiter]
}

// NewMutex returns an unheld thread mutex.
func NewMutex(s Scheduler) *Mutex {
	return &Mutex{s: s, lk: core.NewMutexLock(), wait: queue.NewFifo[waiter]()}
}

// Lock acquires the mutex, parking the calling thread if it is held.
func (m *Mutex) Lock() {
	m.lk.Lock()
	if !m.held {
		m.held = true
		m.lk.Unlock()
		return
	}
	park(m.s, m.lk, func(w waiter) { m.wait.Enq(w) })
}

// Unlock releases the mutex, handing it directly to the next waiter if
// any.
func (m *Mutex) Unlock() {
	m.lk.Lock()
	if !m.held {
		m.lk.Unlock()
		panic("syncx: Unlock of unheld Mutex")
	}
	if w, err := m.wait.Deq(); err == nil {
		// Ownership passes to w; held stays true.
		m.lk.Unlock()
		m.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
		return
	}
	m.held = false
	m.lk.Unlock()
}

// Cond is a condition variable associated with a Mutex, in the style of
// the Modula-3 thread package the platform was used to build.
type Cond struct {
	s    Scheduler
	mu   *Mutex
	lk   core.Lock
	wait queue.Queue[waiter]
}

// NewCond returns a condition variable tied to mu.
func NewCond(s Scheduler, mu *Mutex) *Cond {
	return &Cond{s: s, mu: mu, lk: core.NewMutexLock(), wait: queue.NewFifo[waiter]()}
}

// Wait atomically releases the mutex and parks the calling thread; when
// signaled it re-acquires the mutex before returning.
func (c *Cond) Wait() {
	c.lk.Lock()
	cont.Callcc(func(k *core.UnitCont) core.Unit {
		c.wait.Enq(waiter{k: k, id: c.s.ID()})
		// Order matters: we are on the wait queue before the mutex is
		// released, so a signal between Unlock and Dispatch finds us.
		c.mu.Unlock()
		c.lk.Unlock()
		c.s.Dispatch()
		return core.Unit{} // unreachable
	})
	c.mu.Lock()
}

// Signal wakes one waiter, if any.
func (c *Cond) Signal() {
	c.lk.Lock()
	w, err := c.wait.Deq()
	c.lk.Unlock()
	if err == nil {
		c.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
	}
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	c.lk.Lock()
	var wake []waiter
	for {
		w, err := c.wait.Deq()
		if err != nil {
			break
		}
		wake = append(wake, w)
	}
	c.lk.Unlock()
	for _, w := range wake {
		w := w
		c.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
	}
}

// Barrier is a cyclic barrier for n parties, the phase synchronization the
// evaluation benchmarks (allpairs, simple) are built around.
type Barrier struct {
	s       Scheduler
	lk      core.Lock
	parties int
	arrived int
	gen     int
	wait    queue.Queue[waiter]
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(s Scheduler, parties int) *Barrier {
	if parties < 1 {
		panic("syncx: barrier needs at least one party")
	}
	return &Barrier{s: s, lk: core.NewMutexLock(), parties: parties, wait: queue.NewFifo[waiter]()}
}

// Await blocks until all parties have arrived, then releases them all and
// resets for the next phase.
func (b *Barrier) Await() {
	b.lk.Lock()
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.gen++
		var wake []waiter
		for {
			w, err := b.wait.Deq()
			if err != nil {
				break
			}
			wake = append(wake, w)
		}
		b.lk.Unlock()
		for _, w := range wake {
			w := w
			b.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
		}
		return
	}
	park(b.s, b.lk, func(w waiter) { b.wait.Enq(w) })
}

// Once runs its function exactly once across all threads; later callers
// block until the first completes.
type Once struct {
	s    Scheduler
	lk   core.Lock
	done bool
	busy bool
	wait queue.Queue[waiter]
}

// NewOnce returns a fresh Once.
func NewOnce(s Scheduler) *Once {
	return &Once{s: s, lk: core.NewMutexLock(), wait: queue.NewFifo[waiter]()}
}

// Do runs f if no other call has; concurrent callers park until f
// completes.
func (o *Once) Do(f func()) {
	o.lk.Lock()
	if o.done {
		o.lk.Unlock()
		return
	}
	if o.busy {
		park(o.s, o.lk, func(w waiter) { o.wait.Enq(w) })
		return
	}
	o.busy = true
	o.lk.Unlock()

	f()

	o.lk.Lock()
	o.done = true
	var wake []waiter
	for {
		w, err := o.wait.Deq()
		if err != nil {
			break
		}
		wake = append(wake, w)
	}
	o.lk.Unlock()
	for _, w := range wake {
		w := w
		o.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
	}
}

// WaitGroup counts outstanding work, with Wait parking until the count
// reaches zero; the join primitive the native benchmarks use.
type WaitGroup struct {
	s     Scheduler
	lk    core.Lock
	count int
	wait  queue.Queue[waiter]
}

// NewWaitGroup returns a WaitGroup with the given initial count.
func NewWaitGroup(s Scheduler, initial int) *WaitGroup {
	if initial < 0 {
		panic("syncx: negative WaitGroup count")
	}
	return &WaitGroup{s: s, lk: core.NewMutexLock(), count: initial, wait: queue.NewFifo[waiter]()}
}

// Add adjusts the count by delta.
func (g *WaitGroup) Add(delta int) {
	g.lk.Lock()
	g.count += delta
	if g.count < 0 {
		g.lk.Unlock()
		panic("syncx: negative WaitGroup count")
	}
	if g.count > 0 {
		g.lk.Unlock()
		return
	}
	var wake []waiter
	for {
		w, err := g.wait.Deq()
		if err != nil {
			break
		}
		wake = append(wake, w)
	}
	g.lk.Unlock()
	for _, w := range wake {
		w := w
		g.s.Reschedule(func() { cont.Throw(w.k, core.Unit{}) }, w.id)
	}
}

// Done decrements the count by one.
func (g *WaitGroup) Done() { g.Add(-1) }

// Wait parks the calling thread until the count is zero.
func (g *WaitGroup) Wait() {
	g.lk.Lock()
	if g.count == 0 {
		g.lk.Unlock()
		return
	}
	park(g.s, g.lk, func(w waiter) { g.wait.Enq(w) })
}
