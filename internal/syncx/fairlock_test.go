package syncx

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/proc"
	"repro/internal/threads"
)

func TestFairLockBasic(t *testing.T) {
	l := NewFairLock()
	if d := l.QueueDepth(); d != 0 {
		t.Fatalf("fresh lock QueueDepth = %d, want 0", d)
	}
	if !l.TryLock() {
		t.Fatal("TryLock on a free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on a held lock succeeded")
	}
	if d := l.QueueDepth(); d != 1 {
		t.Fatalf("held lock QueueDepth = %d, want 1", d)
	}
	l.Unlock()
	l.Lock()
	l.Unlock()
	if d := l.QueueDepth(); d != 0 {
		t.Fatalf("released lock QueueDepth = %d, want 0", d)
	}
}

// TestFairLockTryLockNeverOvertakes pins the claim/release protocol's
// no-line-cutting rule: once any claim is queued, TryLock fails even at
// the exact moment the lock is released, because the release hands the
// grant to the head claimant instead of re-opening a race.
func TestFairLockTryLockNeverOvertakes(t *testing.T) {
	l := NewFairLock()
	l.Lock()        // holder: ticket 0
	tk := l.claim() // queued claimant: ticket 1
	if l.TryLock() {
		t.Fatal("TryLock succeeded with a claim queued")
	}
	l.Unlock() // grant passes to ticket 1, not to a TryLock racer
	if l.TryLock() {
		t.Fatal("TryLock overtook the queued claimant after release")
	}
	l.await(tk) // granted immediately
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock failed on a drained queue")
	}
	l.Unlock()
}

// TestFairLockFIFOOrder is the fairness property test: N contending MP
// threads each register a claim, then record the order grants arrive.
// The protocol promises grants in claim order — zero overtaking — so
// the grant log must equal the ticket sequence exactly.  Run under
// -race this also exercises the handoff's happens-before edge (the
// critical-section writes to the shared log are ordered by the lock
// alone).
func TestFairLockFIFOOrder(t *testing.T) {
	const (
		procs   = 4
		workers = 8
		rounds  = 50
	)
	l := NewFairLock()
	var grants []uint64
	s := threads.New(proc.New(procs), threads.Options{})
	s.Run(func() {
		wg := NewWaitGroup(s, workers)
		for i := 0; i < workers; i++ {
			s.Fork(func() {
				for r := 0; r < rounds; r++ {
					tk := l.claim()
					l.await(tk)
					grants = append(grants, tk)
					l.Unlock()
					s.Yield()
				}
				wg.Done()
			})
		}
		wg.Wait()
	})
	if len(grants) != workers*rounds {
		t.Fatalf("recorded %d grants, want %d", len(grants), workers*rounds)
	}
	for i, tk := range grants {
		if tk != uint64(i) {
			t.Fatalf("grant %d went to ticket %d: claim order violated (overtaking)", i, tk)
		}
	}
}

// fakeGCWorld is a GC world whose section stays pending until enough
// claimants have taken the section point.
type fakeGCWorld struct {
	pending atomic.Bool
	points  atomic.Int64
	need    int64
}

func (w *fakeGCWorld) InSection() bool { return w.pending.Load() }

func (w *fakeGCWorld) SectionPoint() {
	if w.points.Add(1) >= w.need {
		w.pending.Store(false)
	}
}

// TestFairLockQueuedClaimantTakesSectionPoint checks the GC-aware claim
// loop: a claimant queued behind a holder that never releases during
// the collection must still take the world's section point, so a
// stop-the-world can complete with a full claim queue.  The fake world
// "completes" its collection only after the queued claimant has
// contributed section points; the holder never takes one.
func TestFairLockQueuedClaimantTakesSectionPoint(t *testing.T) {
	w := &fakeGCWorld{need: 3}
	l := FairFactory(w, nil)().(*FairLock)
	l.Lock() // holder; takes no section points while holding

	w.pending.Store(true) // collection raised while the lock is held
	done := make(chan struct{})
	go func() {
		l.Lock() // queued claimant: must help the collection while waiting
		l.Unlock()
		close(done)
	}()

	// The collection must finish on the claimant's section points alone,
	// while the lock is still held.
	for w.InSection() {
	}
	if got := w.points.Load(); got < w.need {
		t.Fatalf("collection finished after %d section points, want >= %d", got, w.need)
	}
	l.Unlock()
	<-done
}

// TestFairLockObserver checks the wait-time observer contract: called
// once per Lock with the claim-loop yield count — zero when the grant
// was immediate, positive when queued.
func TestFairLockObserver(t *testing.T) {
	var calls, waited atomic.Int64
	l := FairFactory(nil, func(iters int64) {
		calls.Add(1)
		waited.Add(iters)
	})().(*FairLock)

	l.Lock() // uncontended
	l.Unlock()
	if c, w := calls.Load(), waited.Load(); c != 1 || w != 0 {
		t.Fatalf("uncontended Lock: observer calls=%d waited=%d, want 1, 0", c, w)
	}

	l.Lock()
	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		l.Lock() // queued: must report a positive wait
		l.Unlock()
	}()
	<-started
	for l.QueueDepth() < 2 { // wait until the claim is registered
	}
	l.Unlock()
	wg.Wait()
	if c, w := calls.Load(), waited.Load(); c != 3 || w <= 0 {
		t.Fatalf("contended Lock: observer calls=%d waited=%d, want 3 calls and waited > 0", c, w)
	}
}
