package syncx_test

import (
	"fmt"

	"repro/internal/proc"
	"repro/internal/syncx"
	"repro/internal/threads"
)

// Synchronization synthesized from locks and continuations (§3.3): a
// barrier coordinating phased workers.
func ExampleBarrier() {
	s := threads.New(proc.New(1), threads.Options{})
	s.Run(func() {
		b := syncx.NewBarrier(s, 3)
		wg := syncx.NewWaitGroup(s, 3)
		for w := 0; w < 3; w++ {
			w := w
			s.Fork(func() {
				fmt.Printf("worker %d phase 1\n", w)
				b.Await()
				fmt.Printf("worker %d phase 2\n", w)
				wg.Done()
			})
		}
		wg.Wait()
	})
	// Unordered output:
	// worker 0 phase 1
	// worker 1 phase 1
	// worker 2 phase 1
	// worker 0 phase 2
	// worker 1 phase 2
	// worker 2 phase 2
}

// A counting semaphore bounding concurrent holders.
func ExampleSemaphore() {
	s := threads.New(proc.New(1), threads.Options{})
	s.Run(func() {
		sem := syncx.NewSemaphore(s, 2)
		sem.Acquire()
		sem.Acquire()
		fmt.Println("two permits held; third available:", sem.TryAcquire())
		sem.Release()
		fmt.Println("after release:", sem.TryAcquire())
	})
	// Output:
	// two permits held; third available: false
	// after release: true
}
