package signals

import (
	"sync/atomic"
	"testing"

	"repro/internal/cont"
	"repro/internal/proc"
)

func run1(f func()) {
	pl := proc.New(1)
	pl.Run(f, nil)
}

func TestInstallAndPoll(t *testing.T) {
	run1(func() {
		tab := New(1)
		var got []Sig
		tab.Install(SigInt, func(s Sig, p int) { got = append(got, s) })
		tab.Deliver(SigInt)
		if n := tab.Poll(); n != 1 {
			t.Fatalf("Poll ran %d handlers, want 1", n)
		}
		if len(got) != 1 || got[0] != SigInt {
			t.Fatalf("got = %v", got)
		}
		// Pending bit consumed.
		if n := tab.Poll(); n != 0 {
			t.Fatalf("second Poll ran %d handlers, want 0", n)
		}
	})
}

func TestMaskBlocksDelivery(t *testing.T) {
	run1(func() {
		tab := New(1)
		ran := 0
		tab.Install(SigUsr1, func(Sig, int) { ran++ })
		tab.Mask(SigUsr1)
		if !tab.Masked(SigUsr1) {
			t.Fatal("Masked = false after Mask")
		}
		tab.Deliver(SigUsr1)
		if tab.Poll() != 0 {
			t.Fatal("masked signal was delivered")
		}
		tab.Unmask(SigUsr1)
		if tab.Poll() != 1 || ran != 1 {
			t.Fatal("pending signal not delivered after Unmask")
		}
	})
}

func TestMaskingIsPerProc(t *testing.T) {
	// Two procs: proc A masks; a broadcast signal must still reach proc B.
	pl := proc.New(2)
	tab := New(2)
	var delivered atomic.Int32
	tab.Install(SigUsr2, func(Sig, int) { delivered.Add(1) })
	pl.Run(func() {
		tab.Mask(SigUsr2) // mask on the root proc only
		tab.Deliver(SigUsr2)
		if tab.Poll() != 0 {
			panic("masked proc ran handler")
		}
		// The other proc polls via a fresh acquire.
		done := make(chan struct{})
		acquireAndPoll(pl, tab, done)
		<-done
	}, nil)
	if delivered.Load() != 1 {
		t.Fatalf("delivered = %d, want 1 (only the unmasked proc)", delivered.Load())
	}
}

// acquireAndPoll runs tab.Poll on a newly acquired proc of pl.
func acquireAndPoll(pl *proc.Platform, tab *Table, done chan struct{}) {
	boot := proc.New(1)
	kch := make(chan *cont.Cont[cont.Unit], 1)
	go boot.Run(func() {
		cont.Callcc(func(k *cont.Cont[cont.Unit]) cont.Unit {
			kch <- k
			boot.Release()
			return cont.Unit{}
		})
		// Resumed on a proc of pl.
		tab.Poll()
		close(done)
		pl.Release()
	}, nil)
	k := <-kch
	if err := pl.Acquire(proc.PS{K: k, Datum: nil}); err != nil {
		panic(err)
	}
}

func TestHandlersAreGlobal(t *testing.T) {
	run1(func() {
		tab := New(1)
		old := tab.Install(SigAlarm, func(Sig, int) {})
		if old != nil {
			t.Fatal("fresh table had a handler")
		}
		prev := tab.Install(SigAlarm, func(Sig, int) {})
		if prev == nil {
			t.Fatal("Install did not return previous handler")
		}
	})
}

func TestPendingFastPath(t *testing.T) {
	run1(func() {
		tab := New(1)
		tab.Install(SigInt, func(Sig, int) {})
		if tab.Pending() {
			t.Fatal("Pending on fresh table")
		}
		tab.Deliver(SigInt)
		if !tab.Pending() {
			t.Fatal("not Pending after Deliver")
		}
		tab.Poll()
		if tab.Pending() {
			t.Fatal("Pending after Poll consumed the signal")
		}
	})
}

func TestHandlerRunsWithSignalMasked(t *testing.T) {
	run1(func() {
		tab := New(1)
		depth, runs := 0, 0
		tab.Install(SigInt, func(Sig, int) {
			depth++
			runs++
			if depth > 1 {
				t.Error("handler re-entered")
			}
			// Delivering while handling must not recurse.
			tab.Deliver(SigInt)
			tab.Poll()
			depth--
		})
		tab.Deliver(SigInt)
		tab.Poll()
		if runs != 1 {
			t.Fatalf("handler ran %d times, want 1", runs)
		}
		// The re-delivered signal is still pending for the next poll.
		if tab.Poll() != 1 {
			t.Fatal("re-delivered signal lost")
		}
	})
}

func TestBroadcastReachesAllProcs(t *testing.T) {
	tab := New(4)
	tab.Deliver(SigUsr1)
	// Inspect pending bits directly: all four procs flagged.
	for i := 0; i < 4; i++ {
		if tab.pending[i]&(1<<uint(SigUsr1)) == 0 {
			t.Fatalf("proc %d did not receive broadcast", i)
		}
	}
}

func TestDeliverTo(t *testing.T) {
	tab := New(3)
	tab.DeliverTo(SigUsr1, 1)
	for i := 0; i < 3; i++ {
		got := tab.pending[i] != 0
		if got != (i == 1) {
			t.Fatalf("proc %d pending = %v", i, got)
		}
	}
}
