// Package signals implements the paper's multiprocessor signal conventions
// (§3.4): "Signal handlers are installed on a global basis, i.e., all procs
// share the same signal-handling functions, and all procs receive each
// delivered signal.  However, masking and unmasking of signals is
// controlled on a per-proc basis."
//
// Go cannot interrupt a goroutine asynchronously, so delivery is by the
// timer-driven polling the paper itself recommends for inter-proc alerts:
// Deliver marks a signal pending on every proc, and procs invoke their
// handlers at Poll points (the thread package's safe points call Poll).
// This mirrors how SML/NJ itself delivers signals only at clean points
// (heap-limit checks), so the substitution is behaviorally close.
package signals

import (
	"sync"

	"repro/internal/proc"
)

// Sig identifies a signal.
type Sig int

// Signals understood by the platform; the set mirrors what the 1993
// runtime used (alarm for preemption, int for user interrupt, usr1/usr2
// for client protocols).
const (
	SigAlarm Sig = iota
	SigInt
	SigUsr1
	SigUsr2
	numSigs
)

// Handler is a signal-handling function; it receives the signal and the
// proc id it is running on.
type Handler func(sig Sig, procID int)

// Table is a per-platform signal state: a global handler table plus
// per-proc pending and mask bits.
type Table struct {
	mu       sync.Mutex
	handlers [numSigs]Handler
	pending  []uint32 // bitmask per proc
	masked   []uint32 // bitmask per proc
}

// New returns a signal table for a platform with maxProcs procs.
func New(maxProcs int) *Table {
	return &Table{
		pending: make([]uint32, maxProcs),
		masked:  make([]uint32, maxProcs),
	}
}

// Install sets the global handler for sig, shared by all procs, and
// returns the previous handler (nil if none).
func (t *Table) Install(sig Sig, h Handler) Handler {
	t.mu.Lock()
	defer t.mu.Unlock()
	old := t.handlers[sig]
	t.handlers[sig] = h
	return old
}

// Deliver marks sig pending on every proc: "all procs receive each
// delivered signal".
func (t *Table) Deliver(sig Sig) {
	t.mu.Lock()
	for i := range t.pending {
		t.pending[i] |= 1 << uint(sig)
	}
	t.mu.Unlock()
}

// DeliverTo marks sig pending on a single proc; this is the primitive the
// paper suggests for simulating proc-to-proc alerts by polling.
func (t *Table) DeliverTo(sig Sig, procID int) {
	t.mu.Lock()
	if procID >= 0 && procID < len(t.pending) {
		t.pending[procID] |= 1 << uint(sig)
	}
	t.mu.Unlock()
}

// Mask blocks delivery of sig on the calling proc.
func (t *Table) Mask(sig Sig) {
	id := proc.Self()
	t.mu.Lock()
	t.masked[id] |= 1 << uint(sig)
	t.mu.Unlock()
}

// Unmask re-enables delivery of sig on the calling proc.
func (t *Table) Unmask(sig Sig) {
	id := proc.Self()
	t.mu.Lock()
	t.masked[id] &^= 1 << uint(sig)
	t.mu.Unlock()
}

// Masked reports whether sig is masked on the calling proc.
func (t *Table) Masked(sig Sig) bool {
	id := proc.Self()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.masked[id]&(1<<uint(sig)) != 0
}

// Poll runs the handlers for every pending unmasked signal on the calling
// proc, in signal order, and reports how many handlers ran.  Handlers run
// with their signal masked, as the SML/NJ signal interface arranges.
func (t *Table) Poll() int {
	id := proc.Self()
	ran := 0
	for s := Sig(0); s < numSigs; s++ {
		bit := uint32(1) << uint(s)
		t.mu.Lock()
		deliverable := t.pending[id]&bit != 0 && t.masked[id]&bit == 0 && t.handlers[s] != nil
		var h Handler
		if deliverable {
			t.pending[id] &^= bit
			t.masked[id] |= bit
			h = t.handlers[s]
		}
		t.mu.Unlock()
		if deliverable {
			h(s, id)
			t.mu.Lock()
			t.masked[id] &^= bit
			t.mu.Unlock()
			ran++
		}
	}
	return ran
}

// Pending reports whether any unmasked signal is pending on the calling
// proc — a cheap check for hot loops before paying for Poll.
func (t *Table) Pending() bool {
	id := proc.Self()
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pending[id]&^t.masked[id] != 0
}
