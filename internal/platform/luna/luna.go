// Package luna is the Omron Luna88k port: Mach provides kernel threads
// directly, and the MC88100 has an atomic exchange instruction on any
// word of memory, so mutex locks are boolean refs swapped atomically.
package luna

import (
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/spinlock"
)

// Backend returns the Luna88k port.
func Backend() platform.Backend {
	return platform.Backend{
		Name:        "luna",
		Description: "Omron Luna88k, 4x MC88100/25MHz, Mach; xmem exchange locks",
		NewLock:     spinlock.NewTAS,
		MaxProcs:    4,
		Machine:     machine.Luna88k,
	}
}
