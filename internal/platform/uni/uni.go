// Package uni is the trivial uniprocessor port that "works on all
// processors that run SML/NJ": one proc, so locks never spin and the
// cheapest available primitive suffices.
package uni

import (
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/spinlock"
)

// Backend returns the uniprocessor port.
func Backend() platform.Backend {
	return platform.Backend{
		Name:        "uni",
		Description: "uniprocessor fallback; single proc, uncontended locks",
		NewLock:     spinlock.NewTAS,
		MaxProcs:    1,
		Machine:     machine.Uniprocessor,
	}
}
