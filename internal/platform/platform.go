// Package platform defines the system-dependent layer boundary.  The
// paper's portability claim (§5, §6) is that MP splits into a large
// generic layer and a small system-dependent layer — 144 lines of C for
// the SGI, 267 for the Sequent, 630 for the Luna, against a ~6,750-line
// runtime.  This repository mirrors the split: everything outside
// internal/platform is generic; each subpackage here is one port,
// supplying only what the paper's ports supplied — the mutex-lock
// primitive appropriate to the machine's hardware (atomic exchange on the
// Sequent and Luna, a hardware lock bank on the MIPS-based SGI, which has
// no test-and-set instruction), the proc limit, and the simulated machine
// model.  cmd/portability counts these packages' lines to regenerate the
// paper's portability table.
package platform

import (
	"repro/internal/machine"
	"repro/internal/spinlock"
)

// Backend is one port of the platform.
type Backend struct {
	// Name identifies the port (sequent, sgi, luna, uni, native).
	Name string
	// Description summarizes the machine and its lock primitive.
	Description string
	// NewLock is the port's mutex-lock primitive.
	NewLock spinlock.Factory
	// MaxProcs is the port's compile-time proc limit.
	MaxProcs int
	// Machine builds the simulated machine model; nil for the native
	// port, which runs on the host.
	Machine func() machine.Config
}
