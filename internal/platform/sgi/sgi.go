// Package sgi is the SGI 4D/380S port.  The MIPS R3000 has no test-and-
// set instruction; the machine instead provides a limited number of
// hardware locks implemented by a separate lock memory and bus.  As in
// the paper's port, the runtime uses the hardware lock bank to control an
// extensible set of software locks: each software mutex hashes onto one
// hardware lock, which is held only for the instant needed to test and
// set the software lock word.
package sgi

import (
	"runtime"
	"sync/atomic"

	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/spinlock"
)

// bankSize is the number of hardware locks; the 4D/380S lock memory is
// small, which is why software locks must be multiplexed over it.
const bankSize = 64

// bank is the machine-wide hardware lock memory.
var bank [bankSize]spinlock.TAS

var nextLock atomic.Uint64

// swLock is a software mutex: a plain word whose test-and-set is made
// atomic by briefly holding one hardware lock from the bank.
type swLock struct {
	hw   *spinlock.TAS
	held atomic.Bool // plain word in the ML heap; hw serializes access
}

// NewLock returns a software mutex multiplexed over the hardware bank.
func NewLock() spinlock.Lock {
	i := nextLock.Add(1)
	return &swLock{hw: &bank[i%bankSize]}
}

func (l *swLock) TryLock() bool {
	l.hw.Lock()
	ok := !l.held.Load()
	if ok {
		l.held.Store(true)
	}
	l.hw.Unlock()
	return ok
}

func (l *swLock) Lock() {
	for i := 1; !l.TryLock(); i++ {
		if i%64 == 0 {
			runtime.Gosched()
		}
	}
}

func (l *swLock) Unlock() {
	l.hw.Lock()
	if !l.held.Swap(false) {
		l.hw.Unlock()
		panic("sgi: unlock of unlocked software lock")
	}
	l.hw.Unlock()
}

// Backend returns the SGI 4D/380S port.
func Backend() platform.Backend {
	return platform.Backend{
		Name:        "sgi",
		Description: "SGI 4D/380S, 8x R3000/33MHz, Irix; hardware lock bank over software locks",
		NewLock:     NewLock,
		MaxProcs:    8,
		Machine:     machine.SGI4D380S,
	}
}
