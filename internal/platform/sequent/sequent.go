// Package sequent is the Sequent Symmetry port: Dynix has no kernel
// threads, so procs map onto processes sharing an address space, and the
// hardware provides an atomic-exchange facility, so mutex locks are plain
// test-and-set words.
package sequent

import (
	"repro/internal/machine"
	"repro/internal/platform"
	"repro/internal/spinlock"
)

// Backend returns the Sequent Symmetry S81 port.
func Backend() platform.Backend {
	return platform.Backend{
		Name:        "sequent",
		Description: "Sequent Symmetry S81, 16x i386/16MHz, Dynix; atomic-exchange locks",
		NewLock:     spinlock.NewTAS,
		MaxProcs:    16,
		Machine:     machine.SequentS81,
	}
}
