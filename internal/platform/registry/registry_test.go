package registry

import (
	"sync"
	"testing"

	"repro/internal/proc"
	"repro/internal/threads"
)

func TestAllPortsPresent(t *testing.T) {
	want := map[string]bool{"sequent": true, "sgi": true, "luna": true, "uni": true, "native": true}
	for _, b := range All() {
		if !want[b.Name] {
			t.Fatalf("unexpected port %q", b.Name)
		}
		delete(want, b.Name)
		if b.NewLock == nil || b.MaxProcs < 1 || b.Description == "" {
			t.Fatalf("port %q incomplete: %+v", b.Name, b)
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing ports: %v", want)
	}
}

func TestByName(t *testing.T) {
	if b, ok := ByName("sgi"); !ok || b.Name != "sgi" {
		t.Fatal("ByName(sgi) failed")
	}
	if _, ok := ByName("vax"); ok {
		t.Fatal("ByName(vax) succeeded (the VAX port is uniprocessor-only!)")
	}
}

func TestEveryPortLockIsAMutex(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			l := b.NewLock()
			if !l.TryLock() {
				t.Fatal("fresh lock not acquirable")
			}
			if l.TryLock() {
				t.Fatal("double TryLock succeeded")
			}
			l.Unlock()

			// Mutual exclusion under contention.
			counter := 0
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 1000; i++ {
						l.Lock()
						counter++
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != 8000 {
				t.Fatalf("counter = %d, want 8000", counter)
			}
		})
	}
}

func TestSimMachinesMatchPortLimits(t *testing.T) {
	for _, b := range All() {
		if b.Machine == nil {
			continue
		}
		cfg := b.Machine()
		if cfg.Procs != b.MaxProcs {
			t.Errorf("%s: machine model has %d procs, port limit %d",
				b.Name, cfg.Procs, b.MaxProcs)
		}
	}
}

// TestThreadPackageRunsOnEveryPort is the portability claim in action: the
// same generic client (the Fig. 3 thread package) runs unchanged over each
// port's lock primitive.
func TestThreadPackageRunsOnEveryPort(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			procs := b.MaxProcs
			if procs > 4 {
				procs = 4
			}
			s := threads.New(proc.New(procs), threads.Options{NewLock: b.NewLock})
			total := 0
			mu := b.NewLock()
			s.Run(func() {
				for i := 0; i < 30; i++ {
					s.Fork(func() {
						s.Yield()
						mu.Lock()
						total++
						mu.Unlock()
					})
				}
			})
			if total != 30 {
				t.Fatalf("port %s: total = %d, want 30", b.Name, total)
			}
		})
	}
}
