// Package registry aggregates every port of the platform, the analogue of
// the runtime's per-machine build configuration.
package registry

import (
	"repro/internal/platform"
	"repro/internal/platform/luna"
	"repro/internal/platform/native"
	"repro/internal/platform/sequent"
	"repro/internal/platform/sgi"
	"repro/internal/platform/uni"
)

// All returns every port.
func All() []platform.Backend {
	return []platform.Backend{
		sequent.Backend(),
		sgi.Backend(),
		luna.Backend(),
		uni.Backend(),
		native.Backend(),
	}
}

// ByName returns the named port.
func ByName(name string) (platform.Backend, bool) {
	for _, b := range All() {
		if b.Name == name {
			return b, true
		}
	}
	return platform.Backend{}, false
}
