// Package native is the port to the host machine this repository actually
// runs on: procs are backed by goroutines scheduled over GOMAXPROCS OS
// threads, and the lock primitive is test-and-test-and-set with
// exponential backoff, the strategy the paper cites Anderson for on
// modern cache-coherent hardware.
package native

import (
	"runtime"

	"repro/internal/platform"
	"repro/internal/spinlock"
)

// Backend returns the host-machine port.
func Backend() platform.Backend {
	return platform.Backend{
		Name:        "native",
		Description: "host machine; goroutine-backed procs, TTAS+backoff locks",
		NewLock:     spinlock.NewBackoff,
		MaxProcs:    runtime.GOMAXPROCS(0),
		Machine:     nil,
	}
}
